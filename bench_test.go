package zoomlens

// Benchmark harness: one target per table and figure of the paper. Each
// benchmark regenerates its experiment's rows/series and reports the
// headline quantities as benchmark metrics; the first iteration prints
// the reproduced table or series summary to stdout so that
//
//	go test -bench=. -benchmem
//
// emits the full set of reproductions. EXPERIMENTS.md records the
// paper-vs-measured comparison in prose.
//
// Campus-backed targets share one simulated campus excerpt (the smallCampus
// fixture) — the workload's *shape* carries the paper's findings; scale is
// configurable via the example programs for longer runs.

import (
	"fmt"
	"math"
	"net/netip"
	"sync"
	"testing"
	"time"
)

var printOnce sync.Map

func printReport(key, body string) {
	if _, done := printOnce.LoadOrStore(key, true); !done {
		fmt.Printf("\n===== %s =====\n%s\n", key, body)
	}
}

// BenchmarkTable1HeaderFields regenerates Table 1 and measures the
// encode+decode round trip of the documented header layout.
func BenchmarkTable1HeaderFields(b *testing.B) {
	printReport("Table 1", Table1().String())
	pkt := ZoomPacket{
		ServerBased: true,
		SFU:         SFUEncap{Type: 0x05, Sequence: 7, Direction: 0x04},
		Media: MediaEncap{
			Type: TypeVideo, Sequence: 9, Timestamp: 90000,
			FrameSequence: 3, PacketsInFrame: 2,
		},
		RTP: RTPPacket{},
	}
	pkt.RTP.PayloadType = 98
	pkt.RTP.SSRC = 16778241
	pkt.RTP.Payload = make([]byte, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire, err := pkt.Marshal()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ParseZoomPacket(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2EncapTypes regenerates Table 2 from the campus run.
func BenchmarkTable2EncapTypes(b *testing.B) {
	r := campus(b)
	printReport("Table 2", Table2(r).String())
	shares := Table2Shares(r)
	var mediaPct float64
	for _, s := range shares {
		if s.Type == TypeVideo || s.Type == TypeAudio || s.Type == TypeScreenShare {
			mediaPct += s.PacketsPct
		}
	}
	b.ReportMetric(mediaPct, "media-pkt-%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Table2Shares(r)
	}
}

// BenchmarkTable3PayloadTypes regenerates Table 3.
func BenchmarkTable3PayloadTypes(b *testing.B) {
	r := campus(b)
	printReport("Table 3", Table3(r).String())
	shares := Table3Shares(r)
	b.ReportMetric(shares[0].PacketsPct, "top-substream-pkt-%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Table3Shares(r)
	}
}

// BenchmarkTable4MetricMatrix regenerates the metric capability matrix.
func BenchmarkTable4MetricMatrix(b *testing.B) {
	printReport("Table 4", Table4().String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(Table4Matrix()) != 6 {
			b.Fatal("matrix rows")
		}
	}
}

// BenchmarkTable5P4Resources regenerates the Tofino resource model.
func BenchmarkTable5P4Resources(b *testing.B) {
	printReport("Table 5", Table5())
	reports := Table5Reports()
	b.ReportMetric(reports[1].SRAMPct, "p2p-sram-%")
	b.ReportMetric(reports[1].HashUnitsPct, "p2p-hash-%")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Table5Reports()
	}
}

// BenchmarkTable6CaptureSummary regenerates the capture summary.
func BenchmarkTable6CaptureSummary(b *testing.B) {
	r := campus(b)
	printReport("Table 6", Table6(r).String())
	s := r.Analyzer.Summary()
	b.ReportMetric(float64(s.Packets), "zoom-packets")
	b.ReportMetric(float64(s.Streams), "rtp-streams")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Analyzer.Summary()
	}
}

// BenchmarkTable7ServerLocations regenerates the infrastructure survey
// (the timed body is the full 427k-address rDNS+Geo sweep).
func BenchmarkTable7ServerLocations(b *testing.B) {
	inv := BuildInventory(1)
	printReport("Table 7", Table7(inv).String())
	res := inv.Survey()
	b.ReportMetric(float64(res.TotalMMR), "mmrs")
	b.ReportMetric(float64(res.TotalZC), "zcs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = inv.Survey()
	}
}

// BenchmarkFig2P2PEstablishment reproduces the Figure 2 sequence.
func BenchmarkFig2P2PEstablishment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := RunP2PEstablishment(int64(i + 1))
		if !p.STUNSeen || !p.P2PSeen || !p.P2PSamePort || !p.RevertedToSFU {
			b.Fatalf("sequence incomplete: %+v", p)
		}
		if i == 0 {
			printReport("Figure 2", fmt.Sprintf(
				"STUN exchange at %s on port %d (client port %d)\nP2P media at %s on the same client port: %v\nreverted to SFU after third join: %v",
				p.STUNTime.Format("15:04:05.000"), p.STUNPort, p.ClientPort,
				p.P2PTime.Format("15:04:05.000"), p.P2PSamePort, p.RevertedToSFU))
			b.ReportMetric(p.P2PTime.Sub(p.STUNTime).Seconds(), "stun-to-p2p-s")
		}
	}
}

// BenchmarkFig5EntropyAnalysis reproduces the header classification.
func BenchmarkFig5EntropyAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := RunEntropyAnalysis(int64(i + 1))
		if i == 0 {
			body := ""
			for _, k := range []string{"sfu.type", "sfu.seq", "media.type", "media.seq", "media.ts", "rtp.seq", "rtp.ts", "rtp.ssrc", "payload"} {
				body += fmt.Sprintf("%-11s %v\n", k, rep.Classes[k])
			}
			body += fmt.Sprintf("RTP signature offsets: %v (true RTP header at 32, seq field at 34)", rep.RTPOffsets)
			printReport("Figure 5", body)
			found := false
			for _, off := range rep.RTPOffsets {
				if off == 34 {
					found = true
				}
			}
			if !found {
				b.Fatal("RTP signature not recovered")
			}
		}
	}
}

func fpsSeriesSummary(v *ValidationResult) string {
	body := "t[s]  est-fps  qos-fps\n"
	qos := map[int64]float64{}
	for _, s := range v.QoSFPS {
		qos[s.Time.Unix()] = s.Value
	}
	if len(v.EstimatedFPS) == 0 {
		return body
	}
	t0 := v.EstimatedFPS[0].Time.Unix()
	for i, s := range v.EstimatedFPS {
		if i%15 != 0 {
			continue
		}
		q, ok := qos[s.Time.Unix()]
		if !ok {
			continue
		}
		body += fmt.Sprintf("%4d  %7.1f  %7.1f\n", s.Time.Unix()-t0, s.Value, q)
	}
	return body
}

// BenchmarkFig10aFrameRateAccuracy validates frame-rate estimation
// against the client's QoS data.
func BenchmarkFig10aFrameRateAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := RunValidation(180, int64(i+1))
		if i == 0 {
			printReport("Figure 10a", fpsSeriesSummary(v)+fmt.Sprintf("frame-rate MAE = %.2f fps", v.FPSMae))
			b.ReportMetric(v.FPSMae, "fps-mae")
			if math.IsNaN(v.FPSMae) || v.FPSMae > 5 {
				b.Fatalf("fps MAE = %v", v.FPSMae)
			}
		}
	}
}

// BenchmarkFig10bLatencyAccuracy validates RTT estimation density and
// agreement.
func BenchmarkFig10bLatencyAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := RunValidation(180, int64(i+100))
		if i == 0 {
			var estMean float64
			for _, s := range v.EstimatedRTTMS {
				estMean += s.Value
			}
			estMean /= float64(len(v.EstimatedRTTMS))
			var qosMean float64
			for _, s := range v.QoSLatencyMS {
				qosMean += s.Value
			}
			qosMean /= float64(len(v.QoSLatencyMS))
			printReport("Figure 10b", fmt.Sprintf(
				"estimate: %d samples, mean %.1f ms (monitor↔SFU RTT)\nZoom QoS: %d samples (5 s refresh), mean %.1f ms (client↔SFU RTT)",
				len(v.EstimatedRTTMS), estMean, len(v.QoSLatencyMS), qosMean))
			b.ReportMetric(estMean, "est-rtt-ms")
			b.ReportMetric(float64(len(v.EstimatedRTTMS))/float64(len(v.QoSLatencyMS)), "sample-density-ratio")
		}
	}
}

// BenchmarkFig10cJitterAccuracy reproduces the jitter comparison,
// including the paper's surprising finding that Zoom's own jitter stat
// stays tiny under congestion while the RFC 3550 estimate responds.
func BenchmarkFig10cJitterAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v := RunValidation(180, int64(i+200))
		if i == 0 {
			maxEst, maxQoS := 0.0, 0.0
			for _, s := range v.EstimatedJitterMS {
				if s.Value > maxEst {
					maxEst = s.Value
				}
			}
			for _, s := range v.QoSJitterMS {
				if s.Value > maxQoS {
					maxQoS = s.Value
				}
			}
			printReport("Figure 10c", fmt.Sprintf(
				"RFC 3550 frame-level jitter: max %.1f ms during congestion\nZoom QoS jitter: max %.2f ms (never responds — the paper's observation)",
				maxEst, maxQoS))
			b.ReportMetric(maxEst, "est-jitter-max-ms")
			b.ReportMetric(maxQoS, "qos-jitter-max-ms")
			if maxQoS > 3 {
				b.Fatalf("QoS jitter should stay tiny, got %v", maxQoS)
			}
		}
	}
}

// BenchmarkFig11TCPRTT reproduces the latency decomposition via the TCP
// control connection.
func BenchmarkFig11TCPRTT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := RunTCPRTT(30, int64(i+1))
		if i == 0 {
			body := ""
			for client, sp := range r.PerClient {
				body += fmt.Sprintf("%s: to-server %.1f ms (%d samples), to-client %.1f ms (%d samples)\n",
					client,
					float64(sp.ToServerMean)/1e6, sp.ToServerSamples,
					float64(sp.ToClientMean)/1e6, sp.ToClientSamples)
			}
			printReport("Figure 11", body)
		}
	}
}

// BenchmarkFig14MediaBitRate regenerates the per-media-type rate series.
func BenchmarkFig14MediaBitRate(b *testing.B) {
	r := campus(b)
	series := r.MediaRateSeries()
	if _, done := printOnce.LoadOrStore("Figure 14", true); !done {
		body := "per-type media rate (Mbit/s), 30 s resolution:\nt[s]   video   audio  screen\n"
		idx := map[MediaType]map[int64]float64{}
		for mt, ss := range series {
			idx[mt] = map[int64]float64{}
			for _, s := range ss {
				idx[mt][s.Time.Unix()] = s.Value
			}
		}
		start := r.Cfg.Start.Unix()
		for off := int64(0); off < int64(r.Cfg.Duration/time.Second); off += 30 {
			body += fmt.Sprintf("%4d  %6.2f  %6.2f  %6.2f\n", off,
				idx[TypeVideo][start+off], idx[TypeAudio][start+off], idx[TypeScreenShare][start+off])
		}
		fmt.Printf("\n===== Figure 14 =====\n%s\n", body)
	}
	var vSum float64
	for _, s := range series[TypeVideo] {
		vSum += s.Value
	}
	b.ReportMetric(vSum/float64(len(series[TypeVideo])+1), "video-mbps-mean")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.MediaRateSeries()
	}
}

// BenchmarkFig15Distributions regenerates the four CDFs.
func BenchmarkFig15Distributions(b *testing.B) {
	r := campus(b)
	d := r.Distributions(100)
	if _, done := printOnce.LoadOrStore("Figure 15", true); !done {
		body := ""
		q := func(vals []float64, at float64) float64 {
			if len(vals) == 0 {
				return math.NaN()
			}
			return NewCDF(vals).Quantile(at)
		}
		body += fmt.Sprintf("15a data rate Mbit/s  p50: video %.3f, audio %.3f, screen %.3f\n",
			q(d.DataRateMbps[TypeVideo], .5), q(d.DataRateMbps[TypeAudio], .5), q(d.DataRateMbps[TypeScreenShare], .5))
		body += fmt.Sprintf("15b frame rate fps    p50: video %.1f, screen %.1f; screen zero-fps share %.2f\n",
			q(d.FrameRate[TypeVideo], .5), q(d.FrameRate[TypeScreenShare], .5), zeroShare(d.FrameRate[TypeScreenShare]))
		body += fmt.Sprintf("15c frame size B      p50: video %.0f, screen %.0f; video P(<2000) %.2f, screen P(<500) %.2f\n",
			q(d.FrameSize[TypeVideo], .5), q(d.FrameSize[TypeScreenShare], .5),
			NewCDF(d.FrameSize[TypeVideo]).At(2000), NewCDF(d.FrameSize[TypeScreenShare]).At(500))
		body += fmt.Sprintf("15d video jitter ms   p50: %.2f, P(<20ms): %.2f, P(>40ms): %.3f\n",
			q(d.JitterMS[TypeVideo], .5), NewCDF(d.JitterMS[TypeVideo]).At(20), 1-NewCDF(d.JitterMS[TypeVideo]).At(40))
		fmt.Printf("\n===== Figure 15 =====\n%s\n", body)
	}
	b.ReportMetric(NewCDF(d.FrameSize[TypeVideo]).At(2000), "video-frames-under-2000B")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Distributions(100)
	}
}

func zeroShare(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range vals {
		if v == 0 {
			n++
		}
	}
	return float64(n) / float64(len(vals))
}

// BenchmarkFig16JitterCorrelation regenerates the (absence of)
// correlation between jitter and bit rate / frame rate.
func BenchmarkFig16JitterCorrelation(b *testing.B) {
	r := campus(b)
	rBit, rFps, n := r.JitterCorrelation()
	printReport("Figure 16", fmt.Sprintf(
		"jitter↔bitrate Pearson r = %.3f, jitter↔frame-rate r = %.3f over %d stream-seconds\n(the paper's finding: no meaningful correlation — poor rate/fps is usually user-driven, not network-driven)",
		rBit, rFps, n))
	b.ReportMetric(math.Abs(rBit), "abs-r-bitrate")
	b.ReportMetric(math.Abs(rFps), "abs-r-framerate")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = r.JitterCorrelation()
	}
}

// benchTrace lazily records one simulated two-meeting capture for the
// throughput benchmarks so every worker-count variant replays identical
// packets.
var benchTraceOnce sync.Once
var benchTraceAt []time.Time
var benchTraceFrames [][]byte
var benchTraceOpts WorldOptions

func benchTrace(b testing.TB) ([]time.Time, [][]byte, Config) {
	benchTraceOnce.Do(func() {
		opts := DefaultWorldOptions()
		w := NewWorld(opts)
		w.Monitor = func(at time.Time, frame []byte) {
			cp := make([]byte, len(frame))
			copy(cp, frame)
			benchTraceAt = append(benchTraceAt, at)
			benchTraceFrames = append(benchTraceFrames, cp)
		}
		m1 := w.NewMeeting()
		m1.Join(w.NewClient("a", true), DefaultMediaSet())
		m1.Join(w.NewClient("b", true), DefaultMediaSet())
		m1.Join(w.NewClient("c", true), DefaultMediaSet())
		m2 := w.NewMeeting()
		m2.Join(w.NewClient("d", true), DefaultMediaSet())
		m2.Join(w.NewClient("e", false), DefaultMediaSet())
		w.Run(opts.Start.Add(30 * time.Second))
		benchTraceOpts = opts
	})
	if len(benchTraceFrames) == 0 {
		b.Fatal("empty benchmark trace")
	}
	return benchTraceAt, benchTraceFrames, Config{
		ZoomNetworks:   []netip.Prefix{benchTraceOpts.ZoomNet},
		CampusNetworks: []netip.Prefix{benchTraceOpts.CampusNet},
	}
}

// BenchmarkAnalyzerPipeline compares the sequential analyzer against the
// sharded parallel pipeline at several worker counts on one recorded
// trace. The pkts/s metric is the headline: with ≥2 cores the sharded
// path should scale near-linearly until dispatch (parse + classify +
// route, single-threaded by design so the stateful capture filter sees
// packets in order) becomes the bottleneck.
func BenchmarkAnalyzerPipeline(b *testing.B) {
	at, frames, cfg := benchTrace(b)
	var bytes int64
	for _, f := range frames {
		bytes += int64(len(f))
	}
	pps := func(b *testing.B) {
		b.ReportMetric(float64(len(frames))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
	}

	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			a := NewAnalyzer(cfg)
			for j := range frames {
				a.Packet(at[j], frames[j])
			}
			a.Finish()
		}
		pps(b)
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(bytes)
			for i := 0; i < b.N; i++ {
				pa := NewParallelAnalyzer(cfg, workers)
				for j := range frames {
					pa.Packet(at[j], frames[j])
				}
				pa.Finish()
			}
			pps(b)
		})
	}
}

// BenchmarkFig17PacketRate regenerates the all-vs-Zoom packet rates.
func BenchmarkFig17PacketRate(b *testing.B) {
	r := campus(b)
	var all, zm float64
	for _, s := range r.AllPerSecond {
		all += s.Value
	}
	for _, s := range r.ZoomPerSecond {
		zm += s.Value
	}
	secs := float64(len(r.AllPerSecond))
	printReport("Figure 17", fmt.Sprintf(
		"mean packet rate at monitor: all %.0f pps, Zoom %.0f pps (%.1f%% of traffic filtered through)",
		all/secs, zm/secs, 100*zm/all))
	b.ReportMetric(all/secs, "all-pps")
	b.ReportMetric(zm/secs, "zoom-pps")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n float64
		for _, s := range r.ZoomPerSecond {
			n += s.Value
		}
		_ = n
	}
}
