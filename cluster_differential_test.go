package zoomlens

// Differential test for cluster-mode scale-out: splitting a capture
// across N worker processes (modeled in-process: splitter → pcapng
// streams → sequential pre-filtered engines → observation logs →
// checkpointed state) and aggregating the parts must render a report
// byte-identical to one engine having read the whole capture — at every
// fan-out width, from classic pcap and pcapng inputs alike, and across
// a mid-trace checkpoint-drain worker migration.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"zoomlens/internal/cluster"
	"zoomlens/internal/core"
	"zoomlens/internal/pcap"
)

// feedWorkerStream replays one splitter output stream into a worker
// engine, carrying the splitter's global sequence numbers.
func feedWorkerStream(t *testing.T, a *Analyzer, stream []byte) {
	t.Helper()
	if len(stream) == 0 {
		return
	}
	s, err := pcap.OpenStream(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !rec.HasPacketID {
			t.Fatal("splitter stream record lacks epb_packetid")
		}
		a.PacketSeq(rec.Timestamp, rec.Data, rec.PacketID)
	}
}

// clusterRun models one full cluster run over recs at the given fan-out
// width and returns the merged report. migrateAt >= 0 drains and
// migrates every worker at that input-packet index: the splitter
// rotates all streams, each worker checkpoints, is discarded, and a
// restored successor consumes the post-cut stream, appending to the
// same observation log.
func clusterRun(t *testing.T, cfg Config, recs []pcap.Record, workers, migrateAt int) string {
	t.Helper()

	// Splitter tier.
	sp := cluster.NewSplitter(cfg, workers)
	first := make([]*bytes.Buffer, workers)
	second := make([]*bytes.Buffer, workers)
	for i := range first {
		first[i] = &bytes.Buffer{}
		if err := sp.Attach(i, first[i]); err != nil {
			t.Fatal(err)
		}
	}
	for pi, rec := range recs {
		if pi == migrateAt {
			for i := range second {
				second[i] = &bytes.Buffer{}
				if err := sp.Attach(i, second[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sp.Packet(rec.Timestamp, rec.Data); err != nil {
			t.Fatal(err)
		}
	}
	head := sp.Head(false)

	// Worker tier: sequential pre-filtered engines, observations
	// diverted to per-worker logs, state exported pre-Finish.
	workerCfg := cfg
	workerCfg.PreFiltered = true
	parts := make([]*core.Analyzer, workers)
	obsLogs := make([]*bytes.Buffer, workers)
	for i := 0; i < workers; i++ {
		obsLogs[i] = &bytes.Buffer{}
		a := NewAnalyzer(workerCfg)
		ow := cluster.NewObsWriter(obsLogs[i])
		if err := a.SetClusterSink(ow.Add); err != nil {
			t.Fatal(err)
		}
		feedWorkerStream(t, a, first[i].Bytes())
		if migrateAt >= 0 {
			// Drain: flush the log, checkpoint the worker, discard it,
			// restore the successor, and resume on the rotated stream
			// with a fresh log segment appended to the same file.
			if err := ow.Flush(); err != nil {
				t.Fatal(err)
			}
			var ck bytes.Buffer
			if err := a.Checkpoint(&ck); err != nil {
				t.Fatal(err)
			}
			eng, err := RestoreAnalyzer(bytes.NewReader(ck.Bytes()), workerCfg)
			if err != nil {
				t.Fatal(err)
			}
			a = eng.(*Analyzer)
			ow = cluster.NewObsWriter(obsLogs[i])
			if err := a.SetClusterSink(ow.Add); err != nil {
				t.Fatal(err)
			}
			feedWorkerStream(t, a, second[i].Bytes())
		}
		if err := ow.Flush(); err != nil {
			t.Fatal(err)
		}
		var state bytes.Buffer
		if err := a.Checkpoint(&state); err != nil {
			t.Fatal(err)
		}
		eng, err := RestoreAnalyzer(bytes.NewReader(state.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		part, ok := eng.(*Analyzer)
		if !ok {
			t.Fatalf("worker %d state restored as %T, want *Analyzer", i, eng)
		}
		parts[i] = part
	}

	// Aggregator tier.
	readers := make([]*cluster.ObsReader, workers)
	for i := range readers {
		r, err := cluster.NewObsReader(obsLogs[i].Bytes())
		if err != nil {
			t.Fatal(err)
		}
		readers[i] = r
	}
	next, errf := cluster.MergeObs(readers)
	merged := core.MergeCluster(cfg, parts, head, next)
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	merged.Finish()
	return renderReport(merged)
}

func TestClusterDifferential(t *testing.T) {
	raw, ngRaw := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	for _, input := range []struct {
		name string
		data []byte
	}{{"pcap", raw}, {"pcapng", ngRaw}} {
		recs, truncated := tracePackets(t, input.data)
		if truncated {
			t.Fatalf("%s trace unexpectedly truncated", input.name)
		}
		if len(recs) < 100 {
			t.Fatalf("%s trace too short: %d packets", input.name, len(recs))
		}

		// Single-engine reference.
		ref := NewAnalyzer(cfg)
		for _, rec := range recs {
			ref.Packet(rec.Timestamp, rec.Data)
		}
		ref.Finish()
		want := renderReport(ref)
		if !strings.Contains(want, "stream ") {
			t.Fatalf("reference report is streamless:\n%.400s", want)
		}

		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", input.name, workers), func(t *testing.T) {
				if got := clusterRun(t, cfg, recs, workers, -1); got != want {
					t.Errorf("cluster report diverges from single engine (lens %d vs %d)\nfirst diff: %s",
						len(got), len(want), firstDiffLine(want, got))
				}
			})
			t.Run(fmt.Sprintf("%s/workers=%d/migrate", input.name, workers), func(t *testing.T) {
				if got := clusterRun(t, cfg, recs, workers, len(recs)/2); got != want {
					t.Errorf("post-migration cluster report diverges (lens %d vs %d)\nfirst diff: %s",
						len(got), len(want), firstDiffLine(want, got))
				}
			})
		}
	}
}

// TestClusterObsLogRoundTrip pins the observation-log format: records
// survive a write → append-second-segment → read cycle in order, and
// the k-way merge interleaves logs by sequence number.
func TestClusterObsLogRoundTrip(t *testing.T) {
	mk := func(seqs ...uint64) core.ClusterObs {
		return core.ClusterObs{Seq: seqs[0], PT: uint8(seqs[0] % 128), RTPSeq: uint16(seqs[0]), RTPTS: uint32(seqs[0] * 90)}
	}
	var buf bytes.Buffer
	w := cluster.NewObsWriter(&buf)
	w.Add(mk(1))
	w.Add(mk(4))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// A migrated worker's second life: new segment, same buffer.
	w2 := cluster.NewObsWriter(&buf)
	w2.Add(mk(7))
	if err := w2.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := cluster.NewObsReader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		o, ok, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, o.Seq)
	}
	if fmt.Sprint(got) != "[1 4 7]" {
		t.Fatalf("round-trip seqs = %v, want [1 4 7]", got)
	}

	// K-way merge across two logs.
	var b2 bytes.Buffer
	w3 := cluster.NewObsWriter(&b2)
	w3.Add(mk(2))
	w3.Add(mk(3))
	w3.Add(mk(9))
	if err := w3.Flush(); err != nil {
		t.Fatal(err)
	}
	ra, _ := cluster.NewObsReader(buf.Bytes())
	rb, _ := cluster.NewObsReader(b2.Bytes())
	next, errf := cluster.MergeObs([]*cluster.ObsReader{ra, rb})
	got = got[:0]
	for {
		o, ok := next()
		if !ok {
			break
		}
		got = append(got, o.Seq)
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[1 2 3 4 7 9]" {
		t.Fatalf("merged seqs = %v, want [1 2 3 4 7 9]", got)
	}
}
