package zoomlens

// Allocation-regression tests for the ingest hot path. The engine
// refactor's core promise is O(1) amortized heap allocations per packet:
// the zero-copy readers allocate nothing per record at steady state, and
// the analysis pipeline's per-packet allocations stay bounded by a pinned
// budget. testing.AllocsPerRun makes the promise enforceable — a change
// that re-introduces a per-packet copy or a per-record make fails here,
// not in a benchmark someone has to remember to read.

import (
	"bytes"
	"testing"

	"zoomlens/internal/pcap"
)

// readerWarmup grows the reader's reused buffer past the largest record
// it will see during measurement, so the measured region is steady state.
const readerWarmup = 256

// TestIngestReadAllocsZero pins the zero-copy record readers at exactly
// zero allocations per record once their reused buffer has grown.
func TestIngestReadAllocsZero(t *testing.T) {
	raw, ngRaw := ingestTrace(t)

	t.Run("pcap", func(t *testing.T) {
		r, err := pcap.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var rec pcap.Record
		for i := 0; i < readerWarmup; i++ {
			if err := r.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := r.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("classic NextInto: %v allocs/record at steady state, want 0", allocs)
		}
	})

	t.Run("pcapng", func(t *testing.T) {
		ng, err := pcap.NewNGReader(bytes.NewReader(ngRaw))
		if err != nil {
			t.Fatal(err)
		}
		var rec pcap.Record
		for i := 0; i < readerWarmup; i++ {
			if err := ng.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := ng.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("pcapng NextInto: %v allocs/record at steady state, want 0", allocs)
		}
	})
}

// TestIngestAnalyzeAllocsBounded pins the full read+analyze pipeline's
// amortized allocation budget per packet. The analyzer legitimately
// allocates as it grows per-stream metric series, so the bound is not
// zero — but it must stay a small constant. The budget has headroom over
// the measured steady state (~1.9 allocs/pkt sequential after the
// zero-copy refactor, down from ~3.7 before it); a regression that
// reintroduces a per-packet frame copy or record allocation (+1 or more
// per packet, and in practice two-plus) blows it.
func TestIngestAnalyzeAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement over the full trace is slow")
	}
	raw, _ := ingestTrace(t)
	_, frames, cfg := benchTrace(t)
	n := len(frames)

	const budget = 3.0 // allocs per packet, sequential full pipeline
	allocs := testing.AllocsPerRun(3, func() {
		if err := ingestAnalyzePass(raw, cfg, 1); err != nil {
			t.Fatal(err)
		}
	})
	perPacket := allocs / float64(n)
	t.Logf("analyze/seq: %.3f allocs/packet over %d packets", perPacket, n)
	if perPacket > budget {
		t.Errorf("analyze/seq allocates %.3f per packet, budget %.1f", perPacket, budget)
	}
}
