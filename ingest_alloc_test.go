package zoomlens

// Allocation-regression tests for the ingest hot path. The engine
// refactor's core promise is O(1) amortized heap allocations per packet:
// the zero-copy readers allocate nothing per record at steady state, and
// the analysis pipeline's per-packet allocations stay bounded by a pinned
// budget. testing.AllocsPerRun makes the promise enforceable — a change
// that re-introduces a per-packet copy or a per-record make fails here,
// not in a benchmark someone has to remember to read.

import (
	"bytes"
	"testing"

	"zoomlens/internal/pcap"
)

// readerWarmup grows the reader's reused buffer past the largest record
// it will see during measurement, so the measured region is steady state.
const readerWarmup = 256

// TestIngestReadAllocsZero pins the zero-copy record readers at exactly
// zero allocations per record once their reused buffer has grown.
func TestIngestReadAllocsZero(t *testing.T) {
	raw, ngRaw := ingestTrace(t)

	t.Run("pcap", func(t *testing.T) {
		r, err := pcap.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		var rec pcap.Record
		for i := 0; i < readerWarmup; i++ {
			if err := r.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := r.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("classic NextInto: %v allocs/record at steady state, want 0", allocs)
		}
	})

	t.Run("pcapng", func(t *testing.T) {
		ng, err := pcap.NewNGReader(bytes.NewReader(ngRaw))
		if err != nil {
			t.Fatal(err)
		}
		var rec pcap.Record
		for i := 0; i < readerWarmup; i++ {
			if err := ng.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if err := ng.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("pcapng NextInto: %v allocs/record at steady state, want 0", allocs)
		}
	})
}

// TestIngestAnalyzeAllocsBounded pins the full read+analyze pipeline's
// amortized allocation budget per packet, sequentially and sharded. The
// analyzer legitimately allocates as it grows per-stream metric series,
// so the bound is not zero — but it must stay a small constant. Budgets
// have headroom over the measured steady state (~0.5 allocs/pkt for
// both engines after the frame-assembler freelist and batched shard
// rings; AllocsPerRun runs a GC between passes, so sync.Pool reuse is
// not flattered here); a regression that reintroduces a per-packet
// frame copy or record allocation (+1 or more per packet) blows them.
// The parallel budget is deliberately tighter than the sequential one
// used to be: the shard batch pool must amortize its buffers, not
// reallocate them per batch.
func TestIngestAnalyzeAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement over the full trace is slow")
	}
	raw, _ := ingestTrace(t)
	_, frames, cfg := benchTrace(t)
	n := len(frames)

	for _, tc := range []struct {
		name    string
		workers int
		budget  float64 // allocs per packet
	}{
		{"seq", 1, 3.0},
		{"workers4", 4, 1.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(3, func() {
				if err := ingestAnalyzePass(raw, cfg, tc.workers); err != nil {
					t.Fatal(err)
				}
			})
			perPacket := allocs / float64(n)
			t.Logf("analyze/%s: %.3f allocs/packet over %d packets", tc.name, perPacket, n)
			if perPacket > tc.budget {
				t.Errorf("analyze/%s allocates %.3f per packet, budget %.1f", tc.name, perPacket, tc.budget)
			}
		})
	}
}
