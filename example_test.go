package zoomlens_test

import (
	"fmt"
	"net/netip"
	"time"

	"zoomlens"
)

// Parsing one Zoom packet: build a server-based video packet in the
// documented wire format and decode it back.
func ExampleParseZoomPacket() {
	pkt := zoomlens.ZoomPacket{
		ServerBased: true,
		SFU:         zoomlens.SFUEncap{Type: 0x05, Sequence: 42, Direction: 0x04},
		Media: zoomlens.MediaEncap{
			Type:           zoomlens.TypeVideo,
			Sequence:       100,
			Timestamp:      900000,
			FrameSequence:  7,
			PacketsInFrame: 3,
		},
	}
	pkt.RTP.PayloadType = 98
	pkt.RTP.SequenceNumber = 5555
	pkt.RTP.Timestamp = 900000
	pkt.RTP.SSRC = 16778241
	pkt.RTP.Payload = []byte("encrypted")

	wire, _ := pkt.Marshal()
	got, err := zoomlens.ParseZoomPacket(wire)
	if err != nil {
		panic(err)
	}
	fmt.Println(got.Media.Type, "frame", got.Media.FrameSequence, "ssrc", got.RTP.SSRC)
	// Output: video frame 7 ssrc 16778241
}

// The Appendix B infrastructure survey reproduces Table 7's totals.
func ExampleBuildInventory() {
	inv := zoomlens.BuildInventory(1)
	res := inv.Survey()
	fmt.Printf("%d networks, %d addresses, %d MMRs, %d ZCs\n",
		len(inv.Networks), inv.TotalAddresses(), res.TotalMMR, res.TotalZC)
	// Output: 117 networks, 427168 addresses, 5452 MMRs, 256 ZCs
}

// Empirical CDFs back the Figure 15 distributions.
func ExampleNewCDF() {
	c := zoomlens.NewCDF([]float64{1, 2, 2, 3, 10})
	fmt.Printf("P(x<=2) = %.1f, median = %.1f\n", c.At(2), c.Quantile(0.5))
	// Output: P(x<=2) = 0.6, median = 2.0
}

// The full pipeline over simulated traffic: the monitor callback feeds
// the analyzer directly, no pcap file needed. Deterministic per seed.
func ExampleNewAnalyzer() {
	opts := zoomlens.DefaultWorldOptions()
	world := zoomlens.NewWorld(opts)
	analyzer := zoomlens.NewAnalyzer(zoomlens.Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
	world.Monitor = analyzer.Packet

	m := world.NewMeeting()
	m.Join(world.NewClient("alice", true), zoomlens.DefaultMediaSet())
	m.Join(world.NewClient("bob", true), zoomlens.DefaultMediaSet())
	world.Run(opts.Start.Add(10 * time.Second))
	analyzer.Finish()

	s := analyzer.Summary()
	fmt.Printf("meetings=%d streams=%d flows=%d\n", s.Meetings, s.Streams, s.Flows)
	// Output: meetings=1 streams=8 flows=8
}
