package zoomlens

// Differential test for the protocol-plugin layer: a mixed-app campus
// trace — Zoom and standards-RTC meetings side by side on the same
// border link — must render byte-identical reports across the
// sequential engine, the sharded parallel engine at several widths, and
// a 2-way cluster run, from classic pcap and pcapng serializations
// alike. A second test pins the zoom-only invariant the refactor is
// accountable to: on a pure Zoom trace, enabling the webrtc plugin (the
// default set) and pinning -proto zoom produce the same report to the
// byte.

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"zoomlens/internal/pcap"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/trace"
)

// mixedCampus is a fast mixed-app campus workload: roughly half the
// scheduled meetings belong to the standards-RTC application.
func mixedCampus() CampusConfig {
	cfg := DefaultCampusConfig()
	cfg.Start = time.Date(2022, 5, 5, 9, 58, 0, 0, time.UTC)
	cfg.Duration = 2 * time.Minute
	cfg.MeetingsPerHourPeak = 40
	cfg.BackgroundPPS = 500
	cfg.WebRTCFraction = 0.5
	return cfg
}

// mixedTrace lazily records the mixed-app capture and serializes it to
// classic pcap and pcapng, mirroring ingestTrace for the zoom-only
// benchmark trace.
var mixedTraceOnce sync.Once
var mixedTracePcap, mixedTraceNG []byte
var mixedTraceCfg Config

func mixedTrace(tb testing.TB) (pcapBytes, ngBytes []byte, cfg Config) {
	tb.Helper()
	mixedTraceOnce.Do(func() {
		ccfg := mixedCampus()
		opts := DefaultWorldOptions()
		opts.Seed = ccfg.Seed
		opts.Start = ccfg.Start
		opts.SkipExternalDelivery = true
		w := NewWorld(opts)

		var at []time.Time
		var frames [][]byte
		w.Monitor = func(t time.Time, frame []byte) {
			cp := make([]byte, len(frame))
			copy(cp, frame)
			at = append(at, t)
			frames = append(frames, cp)
		}
		r := trace.NewRunner(ccfg, w)
		r.Install(trace.Schedule(ccfg))
		w.Run(ccfg.Start.Add(ccfg.Duration))

		var buf bytes.Buffer
		pw, err := pcap.NewWriter(&buf, pcap.WriterOptions{Nanosecond: true})
		if err != nil {
			panic(err)
		}
		for i := range frames {
			if err := pw.WriteRecord(at[i], frames[i]); err != nil {
				panic(err)
			}
		}
		mixedTracePcap = buf.Bytes()

		var ngBuf bytes.Buffer
		ng, err := pcap.NewNGWriter(&ngBuf, uint16(pcap.LinkTypeEthernet))
		if err != nil {
			panic(err)
		}
		for i := range frames {
			if err := ng.WriteRecord(at[i], frames[i]); err != nil {
				panic(err)
			}
		}
		mixedTraceNG = ngBuf.Bytes()

		mixedTraceCfg = Config{
			ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
			CampusNetworks: []netip.Prefix{opts.CampusNet},
		}
	})
	if len(mixedTracePcap) == 0 {
		tb.Fatal("empty mixed-app trace")
	}
	return mixedTracePcap, mixedTraceNG, mixedTraceCfg
}

// replayProto replays one serialized capture through an engine built
// from cfg and returns both the rendered report and the analyzer (for
// counter assertions).
func replayProto(t *testing.T, serialized []byte, cfg Config, workers int) (string, *Analyzer) {
	t.Helper()
	s, err := pcap.OpenStream(bytes.NewReader(serialized))
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	if workers > 1 {
		eng = NewParallelAnalyzer(cfg, workers)
	} else {
		eng = NewAnalyzer(cfg)
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		eng.Packet(rec.Timestamp, rec.Data)
	}
	eng.Finish()
	a := eng.Result()
	return renderReport(a), a
}

func TestProtoDifferentialMixedApps(t *testing.T) {
	raw, ngRaw, cfg := mixedTrace(t)

	want, ref := replayProto(t, raw, cfg, 1)
	if !strings.Contains(want, "stream ") {
		t.Fatalf("sequential report is streamless:\n%.400s", want)
	}
	// The trace must genuinely exercise both plugins, through to the
	// per-app report surfaces.
	if ref.ProtoDecoded[rtcproto.IDZoom] == 0 || ref.ProtoDecoded[rtcproto.IDWebRTC] == 0 {
		t.Fatalf("ProtoDecoded = %v, want both apps decoded", ref.ProtoDecoded)
	}
	apps := map[string]bool{}
	for _, rep := range ref.MeetingReports() {
		apps[rep.App] = true
	}
	if !apps["zoom"] || !apps["webrtc"] {
		t.Fatalf("meeting report apps = %v, want both zoom and webrtc", apps)
	}
	if !strings.Contains(want, " webrtc ") || !strings.Contains(want, " zoom ") {
		t.Fatal("rendered report lacks per-app stream/meeting tags")
	}

	for _, input := range []struct {
		name string
		data []byte
	}{{"pcap", raw}, {"pcapng", ngRaw}} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", input.name, workers), func(t *testing.T) {
				if got, _ := replayProto(t, input.data, cfg, workers); got != want {
					t.Errorf("report diverges from sequential pcap replay (lens %d vs %d)\nfirst diff: %s",
						len(got), len(want), firstDiffLine(want, got))
				}
			})
		}
	}

	// Cluster tier: split the capture across two workers and aggregate;
	// also across a mid-trace checkpoint-drain migration.
	recs, truncated := tracePackets(t, raw)
	if truncated {
		t.Fatal("mixed trace unexpectedly truncated")
	}
	t.Run("cluster/workers=2", func(t *testing.T) {
		if got := clusterRun(t, cfg, recs, 2, -1); got != want {
			t.Errorf("cluster report diverges (lens %d vs %d)\nfirst diff: %s",
				len(got), len(want), firstDiffLine(want, got))
		}
	})
	t.Run("cluster/workers=2/migrate", func(t *testing.T) {
		if got := clusterRun(t, cfg, recs, 2, len(recs)/2); got != want {
			t.Errorf("post-migration cluster report diverges (lens %d vs %d)\nfirst diff: %s",
				len(got), len(want), firstDiffLine(want, got))
		}
	})
}

// TestProtoZoomOnlyUnchanged pins the refactor's backward-compatibility
// contract: on a pure Zoom trace, the default plugin set (zoom+webrtc)
// and an explicitly pinned zoom-only set produce byte-identical
// reports, and the webrtc plugin decodes nothing.
func TestProtoZoomOnlyUnchanged(t *testing.T) {
	raw, _ := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	want, def := replayProto(t, raw, cfg, 1)
	if !strings.Contains(want, "stream ") {
		t.Fatalf("default-set report is streamless:\n%.400s", want)
	}
	if def.ProtoDecoded[rtcproto.IDWebRTC] != 0 {
		t.Errorf("ProtoDecoded[webrtc] = %d on a zoom-only trace, want 0",
			def.ProtoDecoded[rtcproto.IDWebRTC])
	}
	pinned := cfg
	pinned.Protos = []rtcproto.Plugin{rtcproto.Zoom()}
	if got, _ := replayProto(t, raw, pinned, 1); got != want {
		t.Errorf("-proto zoom diverges from the default set on a zoom-only trace (lens %d vs %d)\nfirst diff: %s",
			len(got), len(want), firstDiffLine(want, got))
	}
}
