package zoomlens

// Differential test for the checkpoint/restore boundary: a run that is
// checkpointed mid-trace, thrown away, restored from the checkpoint
// bytes, and run to completion must render a report byte-identical to a
// run that was never interrupted — at one worker and at every sharded
// worker count, from classic pcap and pcapng serializations alike. This
// is the tentpole invariant: if any layer's State/Restore loses or
// reorders state, the reports diverge here.

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"zoomlens/internal/pcap"
)

// tracePackets decodes a serialized capture into (timestamp, frame)
// pairs so tests can split replay at exact packet boundaries.
func tracePackets(t *testing.T, serialized []byte) ([]pcap.Record, bool) {
	t.Helper()
	s, err := pcap.OpenStream(bytes.NewReader(serialized))
	if err != nil {
		t.Fatal(err)
	}
	var out []pcap.Record
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		cp := make([]byte, len(rec.Data))
		copy(cp, rec.Data)
		out = append(out, pcap.Record{Timestamp: rec.Timestamp, Data: cp})
	}
	return out, s.Truncated()
}

func newEngineFor(cfg Config, workers int) Engine {
	if workers > 1 {
		return NewParallelAnalyzer(cfg, workers)
	}
	return NewAnalyzer(cfg)
}

func TestCheckpointRestoreDifferential(t *testing.T) {
	raw, ngRaw := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	for _, input := range []struct {
		name string
		data []byte
	}{{"pcap", raw}, {"pcapng", ngRaw}} {
		recs, truncated := tracePackets(t, input.data)
		if truncated {
			t.Fatalf("%s trace unexpectedly truncated", input.name)
		}
		if len(recs) < 100 {
			t.Fatalf("%s trace too short for a meaningful split: %d packets", input.name, len(recs))
		}

		for _, workers := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", input.name, workers), func(t *testing.T) {
				// The uninterrupted reference run.
				ref := newEngineFor(cfg, workers)
				for _, rec := range recs {
					ref.Packet(rec.Timestamp, rec.Data)
				}
				ref.Finish()
				want := renderReport(ref.Result())
				if !strings.Contains(want, "stream ") {
					t.Fatalf("reference report is streamless:\n%.400s", want)
				}

				// Checkpoint at several cut points, including pathological
				// ones (before any packet, after the last).
				cuts := []int{0, 1, len(recs) / 3, len(recs) / 2, 2 * len(recs) / 3, len(recs) - 1, len(recs)}
				for _, cut := range cuts {
					first := newEngineFor(cfg, workers)
					for _, rec := range recs[:cut] {
						first.Packet(rec.Timestamp, rec.Data)
					}
					var ckpt bytes.Buffer
					if err := first.Checkpoint(&ckpt); err != nil {
						t.Fatalf("cut=%d: checkpoint: %v", cut, err)
					}

					// A second checkpoint of untouched state must be
					// byte-identical (deterministic encoding).
					var again bytes.Buffer
					if err := first.Checkpoint(&again); err != nil {
						t.Fatalf("cut=%d: re-checkpoint: %v", cut, err)
					}
					if !bytes.Equal(ckpt.Bytes(), again.Bytes()) {
						t.Fatalf("cut=%d: repeated checkpoint of identical state differs", cut)
					}

					resumed, err := RestoreAnalyzer(bytes.NewReader(ckpt.Bytes()), cfg)
					if err != nil {
						t.Fatalf("cut=%d: restore: %v", cut, err)
					}
					for _, rec := range recs[cut:] {
						resumed.Packet(rec.Timestamp, rec.Data)
					}
					resumed.Finish()
					if got := renderReport(resumed.Result()); got != want {
						t.Errorf("cut=%d: restored report diverges from uninterrupted run (lens %d vs %d)",
							cut, len(got), len(want))
					}
				}
			})
		}
	}
}

// TestCheckpointRestoreWorkerCount pins the restore contract: the
// worker count is engine state, so a checkpoint taken at N workers
// restores to N workers regardless of what the restoring deployment
// would otherwise configure.
func TestCheckpointRestoreWorkerCount(t *testing.T) {
	raw, _ := ingestTrace(t)
	_, _, cfg := benchTrace(t)
	recs, _ := tracePackets(t, raw)

	eng := NewParallelAnalyzer(cfg, 4)
	for _, rec := range recs[:len(recs)/2] {
		eng.Packet(rec.Timestamp, rec.Data)
	}
	var ckpt bytes.Buffer
	if err := eng.Checkpoint(&ckpt); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreAnalyzer(bytes.NewReader(ckpt.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	pa, ok := restored.(*ParallelAnalyzer)
	if !ok {
		t.Fatalf("restored engine is %T, want *ParallelAnalyzer", restored)
	}
	if pa.Workers() != 4 {
		t.Fatalf("restored worker count = %d, want 4", pa.Workers())
	}
	pa.Finish()
}

// TestFinishIdempotent is the regression test for the double-Finish
// double-flush: ReadPCAP finishes internally, and callers that follow
// it with their own Finish (every CLI does, via the engine driver) must
// get the same report as a single Finish.
func TestFinishIdempotent(t *testing.T) {
	raw, _ := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	once := NewAnalyzer(cfg)
	if err := once.ReadPCAP(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	want := renderReport(once)
	if !strings.Contains(want, "stream ") {
		t.Fatalf("report is streamless:\n%.400s", want)
	}

	twice := NewAnalyzer(cfg)
	if err := twice.ReadPCAP(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	twice.Finish()
	twice.Finish()
	if got := renderReport(twice); got != want {
		t.Error("repeated Finish changed the report")
	}

	// Same contract through the parallel engine.
	preps := NewParallelAnalyzer(cfg, 4)
	if err := preps.ReadPCAP(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
	preps.Finish()
	preps.Finish()
	if got := renderReport(preps.Result()); got != want {
		t.Error("parallel repeated Finish diverges from sequential single Finish")
	}
}

// TestRotateWindows checks windowed rotation: rotating mid-trace yields
// two window reports whose packet totals partition the trace, rotation
// is equivalent across worker counts, and the post-rotation engine
// starts an empty window.
func TestRotateWindows(t *testing.T) {
	raw, _ := ingestTrace(t)
	_, _, cfg := benchTrace(t)
	recs, _ := tracePackets(t, raw)
	cut := len(recs) / 2

	type windows struct{ first, second string }
	run := func(workers int) windows {
		eng := newEngineFor(cfg, workers)
		for _, rec := range recs[:cut] {
			eng.Packet(rec.Timestamp, rec.Data)
		}
		win := eng.Rotate(recs[cut].Timestamp)
		first := renderReport(win)
		for _, rec := range recs[cut:] {
			eng.Packet(rec.Timestamp, rec.Data)
		}
		eng.Finish()
		return windows{first: first, second: renderReport(eng.Result())}
	}

	want := run(1)
	if !strings.Contains(want.first, "stream ") || !strings.Contains(want.second, "stream ") {
		t.Fatalf("window reports are streamless")
	}
	for _, workers := range []int{2, 4} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d rotated windows diverge from sequential", workers)
		}
	}

	// The two windows partition the packet stream.
	eng := NewAnalyzer(cfg)
	for _, rec := range recs[:cut] {
		eng.Packet(rec.Timestamp, rec.Data)
	}
	win := eng.Rotate(recs[cut].Timestamp)
	if got := win.Summary().Packets; got != uint64(cut) {
		t.Errorf("first window packets = %d, want %d", got, cut)
	}
	if got := eng.Summary().Packets; got != 0 {
		t.Errorf("post-rotation engine reports %d packets, want 0", got)
	}
	for _, rec := range recs[cut:] {
		eng.Packet(rec.Timestamp, rec.Data)
	}
	eng.Finish()
	if got := eng.Summary().Packets; got != uint64(len(recs)-cut) {
		t.Errorf("second window packets = %d, want %d", got, len(recs)-cut)
	}
}
