package zoomlens

import (
	"fmt"

	"zoomlens/internal/analysis"
	"zoomlens/internal/capture"
	"zoomlens/internal/flow"
	"zoomlens/internal/infra"
	"zoomlens/internal/zoom"
)

// This file regenerates the paper's tables. Table 1/4 are structural
// (they describe the format and the metric capability matrix and are
// verified by the codec test suites); Tables 2/3/6 come from a campus
// run; Table 5 from the P4 resource model; Table 7 from the
// infrastructure survey.

// Table1 renders the cleartext header-field table (Table 1) from the
// implemented wire format, so the documentation can never drift from
// the code.
func Table1() *TextTable {
	t := &TextTable{
		Title:   "Table 1: Select Header Fields in Cleartext",
		Headers: []string{"Field Name", "Byte Range", "Comment"},
	}
	t.AddRow("Zoom SFU Encapsulation", "", "")
	t.AddRow("- Type", "0", fmt.Sprintf("0x%02x indicates media encapsulation follows", zoom.SFUTypeMedia))
	t.AddRow("- Sequence #", "1-2", "")
	t.AddRow("- Direction", "7", fmt.Sprintf("0x%02x/0x%02x - to/from SFU", zoom.DirToSFU, zoom.DirFromSFU))
	t.AddRow("Zoom Media Encapsulation", "", "")
	t.AddRow("- Type", "0", "media type or RTCP")
	t.AddRow("- Sequence #", "9-10", "")
	t.AddRow("- Timestamp", "11-14", "")
	t.AddRow("- Frame seq. #", "21-22", "only in video packets")
	t.AddRow("- # Packets/frame", "23", "only in video packets")
	return t
}

// Table2 renders the media-encapsulation type shares of a campus run
// (Table 2): type value, payload kind, RTP/RTCP offset, % packets, %
// bytes. Denominators are all captured Zoom UDP packets (decodable or
// not).
func Table2(r *CampusResult) *TextTable {
	shares := r.Analyzer.Flows.EncapShares(r.Analyzer.UDPKeptPackets, r.Analyzer.UDPKeptBytes)

	t := &TextTable{
		Title:   "Table 2: Zoom Media Encapsulation Type Values",
		Headers: []string{"Value", "Packet Type", "Offset", "% Pkts", "% Bytes"},
	}
	desc := map[MediaType]string{
		TypeVideo:       "RTP: video",
		TypeAudio:       "RTP: audio",
		TypeScreenShare: "RTP: screen share",
		TypeRTCPSRSDES:  "RTCP: SR + SDES",
		TypeRTCPSR:      "RTCP: SR",
	}
	var pktSum, byteSum float64
	for _, s := range shares {
		t.AddRow(
			fmt.Sprintf("%d", uint8(s.Type)),
			desc[s.Type],
			fmt.Sprintf("%d", s.Type.HeaderLen()),
			analysis.F(s.PacketsPct, 2),
			analysis.F(s.BytesPct, 2),
		)
		pktSum += s.PacketsPct
		byteSum += s.BytesPct
	}
	t.AddRow("", "Sum:", "", analysis.F(pktSum, 2), analysis.F(byteSum, 2))
	return t
}

// Table2Shares exposes the raw Table 2 rows for assertions.
func Table2Shares(r *CampusResult) []flow.EncapTypeShare {
	return r.Analyzer.Flows.EncapShares(r.Analyzer.UDPKeptPackets, r.Analyzer.UDPKeptBytes)
}

// Table3 renders the RTP payload-type mix (Table 3).
func Table3(r *CampusResult) *TextTable {
	shares := r.Analyzer.Flows.PayloadTypeShares(r.Analyzer.UDPKeptPackets, r.Analyzer.UDPKeptBytes)
	t := &TextTable{
		Title:   "Table 3: RTP Payload Type Values in Trace",
		Headers: []string{"Media Type", "RTP PT", "Description", "% Pkts", "% Bytes"},
	}
	descr := map[Substream]string{
		zoom.SubVideoMain:       "main stream",
		zoom.SubAudioSpeaking:   "speaking mode",
		zoom.SubVideoFEC:        "FEC",
		zoom.SubScreenShareMain: "main stream",
		zoom.SubAudioMobile:     "mode unknown",
		zoom.SubAudioSilent:     "silent mode",
		zoom.SubAudioFEC:        "FEC",
	}
	for _, s := range shares {
		t.AddRow(
			fmt.Sprintf("%s (%d)", s.Media, uint8(s.Media)),
			fmt.Sprintf("%d", s.PayloadType),
			descr[s.Substream],
			analysis.F(s.PacketsPct, 2),
			analysis.F(s.BytesPct, 2),
		)
	}
	return t
}

// Table3Shares exposes the raw Table 3 rows for assertions.
func Table3Shares(r *CampusResult) []flow.PayloadTypeShare {
	return r.Analyzer.Flows.PayloadTypeShares(r.Analyzer.UDPKeptPackets, r.Analyzer.UDPKeptBytes)
}

// MetricCapability is one row of Table 4.
type MetricCapability struct {
	Metric          string
	Section         string
	RequiresHeaders bool
	InZoomClient    bool
	Validated       string // figure reference, or ""
}

// Table4Matrix returns the metric capability matrix (Table 4). Each row
// is implemented by this library; the RequiresHeaders column records
// whether computing it needs the parsed Zoom headers.
func Table4Matrix() []MetricCapability {
	return []MetricCapability{
		{"Overall Bit Rate", "§5.1", false, false, ""},
		{"Media Bit Rate", "§5.1", true, false, ""},
		{"Frame Rate", "§5.2", true, true, "Fig. 10a"},
		{"Frame Size", "§5.2", true, false, ""},
		{"Latency", "§5.3", true, true, "Fig. 10b"},
		{"Jitter", "§5.4", true, true, "Fig. 10c"},
	}
}

// Table4 renders the matrix.
func Table4() *TextTable {
	t := &TextTable{
		Title:   "Table 4: Key Zoom Performance and Quality Metrics",
		Headers: []string{"Metric", "Requires Headers", "Available in Z. Client", "Validated"},
	}
	mark := func(b bool) string {
		if b {
			return "+"
		}
		return ""
	}
	for _, m := range Table4Matrix() {
		t.AddRow(m.Metric+" ("+m.Section+")", mark(m.RequiresHeaders), mark(m.InZoomClient), m.Validated)
	}
	return t
}

// Table5 renders the P4 pipeline resource model (Table 5).
func Table5() string {
	return "Table 5: Hardware Resource Usage of the Tofino-based Capture Program\n" +
		capture.FormatTable(capture.DefaultPipelineModel().Resources(capture.DefaultTofinoBudget()))
}

// Table5Reports exposes the raw rows for assertions.
func Table5Reports() []capture.UsageReport {
	return capture.DefaultPipelineModel().Resources(capture.DefaultTofinoBudget())
}

// Table6 renders the capture summary of a campus run (Table 6).
func Table6(r *CampusResult) *TextTable {
	s := r.Analyzer.Summary()
	t := &TextTable{
		Title:   "Table 6: Capture Summary",
		Headers: []string{"Quantity", "Value"},
	}
	t.AddRow("Capture duration", s.Duration.String())
	perSec := float64(0)
	if s.Duration > 0 {
		perSec = float64(s.Packets) / s.Duration.Seconds()
	}
	t.AddRow("Zoom packets", fmt.Sprintf("%d (%.0f/s)", s.Packets, perSec))
	t.AddRow("Zoom flows", fmt.Sprintf("%d", s.Flows))
	mbps := float64(0)
	if s.Duration > 0 {
		mbps = float64(s.Bytes) * 8 / s.Duration.Seconds() / 1e6
	}
	t.AddRow("Zoom data", fmt.Sprintf("%d MB (%.1f Mbit/s)", s.Bytes/1e6, mbps))
	t.AddRow("RTP media streams", fmt.Sprintf("%d", s.Streams))
	t.AddRow("Meetings (inferred)", fmt.Sprintf("%d", s.Meetings))
	return t
}

// Table7 renders the server-location survey (Table 7).
func Table7(inv *Inventory) *TextTable {
	res := inv.Survey()
	t := &TextTable{
		Title:   "Table 7: Locations of Zoom Servers",
		Headers: []string{"Location", "# MMRs", "# ZCs"},
	}
	// US aggregate first, as the paper prints it.
	var usMMR, usZC int
	for _, r := range res.Rows {
		if r.Country == "United States" {
			usMMR += r.MMRs
			usZC += r.ZCs
		}
	}
	t.AddRow("United States (all)", fmt.Sprintf("%d", usMMR), fmt.Sprintf("%d", usZC))
	for _, r := range res.Rows {
		name := r.Country + " (" + r.City + ")"
		if r.Country == "United States" {
			name = "- " + r.City
		}
		t.AddRow(name, fmt.Sprintf("%d", r.MMRs), fmt.Sprintf("%d", r.ZCs))
	}
	t.AddRow("Total", fmt.Sprintf("%d", res.TotalMMR), fmt.Sprintf("%d", res.TotalZC))
	return t
}

// Table7Survey exposes the raw survey for assertions.
func Table7Survey(inv *Inventory) infra.SurveyResult { return inv.Survey() }
