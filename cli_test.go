package zoomlens

// End-to-end CLI integration: builds every command once, then drives the
// documented pipeline (zoomsim → zoomcap → analysis tools) in a temp
// directory, asserting each tool produces sane output on the others'
// artifacts.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	cliOnce sync.Once
	cliDir  string
	cliErr  error
)

// buildCLI compiles all commands into a shared temp dir once per test
// process.
func buildCLI(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("short mode: skipping CLI build")
	}
	cliOnce.Do(func() {
		cliDir, cliErr = os.MkdirTemp("", "zoomlens-cli-*")
		if cliErr != nil {
			return
		}
		cmd := exec.Command("go", "build", "-o", cliDir+string(os.PathSeparator), "./cmd/...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			cliErr = err
			cliDir = string(out)
		}
	})
	if cliErr != nil {
		t.Fatalf("building CLI: %v (%s)", cliErr, cliDir)
	}
	return cliDir
}

func runTool(t *testing.T, dir, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(dir, name), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	campusRaw := filepath.Join(work, "campus.pcap")
	filtered := filepath.Join(work, "zoom.pcap")

	// 1. Synthesize a controlled meeting and a short campus excerpt.
	out := runTool(t, bin, "zoomsim", "-o", meeting, "-mode", "meeting", "-duration", "20s", "-congest")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("zoomsim output: %s", out)
	}
	runTool(t, bin, "zoomsim", "-o", campusRaw, "-mode", "campus", "-duration", "90s", "-rate", "30", "-bg", "150")
	p2pPcap := filepath.Join(work, "p2p.pcap")
	runTool(t, bin, "zoomsim", "-o", p2pPcap, "-mode", "meeting", "-duration", "25s", "-p2p", "-screen")
	ngPcap := filepath.Join(work, "meeting.pcapng")
	runTool(t, bin, "zoomsim", "-o", ngPcap, "-mode", "meeting", "-duration", "10s", "-format", "pcapng")
	if out := runTool(t, bin, "zoomflows", "-i", ngPcap, "-what", "summary"); !strings.Contains(out, "streams=8") {
		t.Fatalf("pcapng summary: %s", out)
	}
	if out := runTool(t, bin, "zoomflows", "-i", p2pPcap, "-what", "flows"); !strings.Contains(out, "p2p") {
		t.Fatalf("p2p flows: %s", out)
	}

	// 2. Filter the campus capture; anonymize prefix-preservingly.
	out = runTool(t, bin, "zoomcap", "-i", campusRaw, "-o", filtered, "-anon", "-anon-mode", "prefix", "-key", "k")
	if !strings.Contains(out, "processed") || !strings.Contains(out, "dropped") {
		t.Fatalf("zoomcap output: %s", out)
	}

	// 3. Flows / meetings / reports / summary on the filtered capture.
	if out = runTool(t, bin, "zoomflows", "-i", filtered, "-what", "summary"); !strings.Contains(out, "meetings=") {
		t.Fatalf("summary: %s", out)
	}
	if out = runTool(t, bin, "zoomflows", "-i", meeting, "-what", "meetings"); strings.Count(out, "\n") < 2 {
		t.Fatalf("meetings csv: %s", out)
	}
	if out = runTool(t, bin, "zoomflows", "-i", meeting, "-what", "reports"); !strings.Contains(out, "video_fps") {
		t.Fatalf("reports csv: %s", out)
	}

	// 4. Metrics: series, rtt, loss, talk, clock.
	for _, what := range []string{"series", "rtt", "loss", "talk", "clock"} {
		out = runTool(t, bin, "zoomqoe", "-i", meeting, "-what", what)
		if strings.Count(out, "\n") < 2 {
			t.Fatalf("zoomqoe %s produced %d lines:\n%s", what, strings.Count(out, "\n"), out)
		}
	}
	if out = runTool(t, bin, "zoomqoe", "-i", meeting, "-what", "clock"); !strings.Contains(out, "90000") {
		t.Fatalf("clock sweep did not find 90 kHz:\n%s", out)
	}

	// 5. Dissection and entropy analysis.
	if out = runTool(t, bin, "zoomdissect", "-i", meeting, "-n", "5"); !strings.Contains(out, "Zoom Media Encapsulation") {
		t.Fatalf("dissect: %s", out)
	}
	if out = runTool(t, bin, "zoomentropy", "-i", meeting, "-max-offset", "48"); !strings.Contains(out, "RTP signature") {
		t.Fatalf("entropy: %s", out)
	}

	// 6. Feature export: versioned header plus a header-free column.
	if out = runTool(t, bin, "zoomfeatures", "-i", meeting); !strings.Contains(out, "#zoomlens-features v2") || !strings.Contains(out, "wire_kbps") {
		t.Fatalf("features: %s", out)
	}

	// 7. Infrastructure survey and artifact generators.
	if out = runTool(t, bin, "zoominfra"); !strings.Contains(out, "5452") {
		t.Fatalf("infra: %s", out)
	}
	if out = runTool(t, bin, "zoomdissect", "-export-lua"); !strings.Contains(out, "Proto(") {
		t.Fatalf("lua export: %s", out)
	}
	if out = runTool(t, bin, "zoomcap", "-export-p4"); !strings.Contains(out, "V1Switch") {
		t.Fatalf("p4 export: %s", out)
	}
	if out = runTool(t, bin, "zoomcap", "-resources"); !strings.Contains(out, "Anonymization") {
		t.Fatalf("resources: %s", out)
	}
}

func TestCLIExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, ex := range []struct {
		dir  string
		want string
		args []string
	}{
		{"./examples/quickstart", "per-stream metrics", nil},
		{"./examples/validation", "Figure 10c", nil},
		{"./examples/p2pdetect", "meeting is P2P: true", nil},
		{"./examples/campus", "Figure 17", []string{"-duration", "3m", "-rate", "15"}},
	} {
		args := append([]string{"run", ex.dir}, ex.args...)
		cmd := exec.Command("go", args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s: %v\n%s", ex.dir, err, out)
		}
		if !strings.Contains(string(out), ex.want) {
			t.Errorf("%s output missing %q:\n%s", ex.dir, ex.want, out)
		}
	}
}
