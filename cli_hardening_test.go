package zoomlens

// CLI-level robustness: interrupted runs and truncated captures must
// exit 0 with a parseable partial report, hard caps must surface their
// rejection counts, and bad flag values must fail with usage errors
// instead of panics.

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// runStatus mirrors the JSON status object zoomqoe/zoomflows emit on
// stderr.
type runStatus struct {
	Partial         bool   `json:"partial"`
	Reason          string `json:"reason"`
	Packets         uint64 `json:"packets"`
	Flows           int    `json:"flows"`
	Streams         int    `json:"streams"`
	EvictedFlows    uint64 `json:"evicted_flows"`
	EvictedStreams  uint64 `json:"evicted_streams"`
	RejectedPackets uint64 `json:"rejected_packets"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	Quarantined     uint64 `json:"quarantined"`
	Truncated       bool   `json:"truncated"`
}

func parseStatus(t *testing.T, stderr string) runStatus {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(stderr), "\n")
	last := lines[len(lines)-1]
	var st runStatus
	if err := json.Unmarshal([]byte(last), &st); err != nil {
		t.Fatalf("status line is not JSON: %q (%v)\nfull stderr:\n%s", last, err, stderr)
	}
	return st
}

func simMeeting(t *testing.T, bin, path string) {
	t.Helper()
	runTool(t, bin, "zoomsim", "-o", path, "-mode", "meeting", "-duration", "15s")
}

// TestCLIInterruptEmitsPartialReport interrupts zoomqoe mid-read (the
// input is a FIFO, so the tool is genuinely mid-capture) and requires a
// clean exit with a partial report.
func TestCLIInterruptEmitsPartialReport(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	simMeeting(t, bin, meeting)
	capture, err := os.ReadFile(meeting)
	if err != nil {
		t.Fatal(err)
	}

	fifo := filepath.Join(work, "stream.pcap")
	if err := syscall.Mkfifo(fifo, 0o600); err != nil {
		t.Skipf("mkfifo unavailable: %v", err)
	}
	cmd := exec.Command(filepath.Join(bin, "zoomqoe"), "-i", fifo, "-what", "series")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	w, err := os.OpenFile(fifo, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Feed roughly half the capture, interrupt, then hang up. The tool
	// must notice the signal, finalize what it saw, and exit 0.
	if _, err := w.Write(capture[:len(capture)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	w.Close()

	if err := cmd.Wait(); err != nil {
		t.Fatalf("zoomqoe did not exit cleanly after SIGINT: %v\nstderr:\n%s", err, stderr.String())
	}
	st := parseStatus(t, stderr.String())
	if !st.Partial {
		t.Errorf("status not marked partial: %+v", st)
	}
	if st.Reason != "interrupted" {
		t.Errorf("reason = %q, want interrupted", st.Reason)
	}
	if st.Packets == 0 {
		t.Error("partial report analyzed zero packets")
	}
}

// TestCLITruncatedCapturePartialReport cuts a capture mid-record and
// requires both analysis tools to deliver the readable prefix, flag the
// truncation, and exit 0.
func TestCLITruncatedCapturePartialReport(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	simMeeting(t, bin, meeting)
	capture, err := os.ReadFile(meeting)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(work, "cut.pcap")
	// Chop mid-record: any offset that is not a record boundary works,
	// and 3/4 of the way through a capture never is one exactly.
	if err := os.WriteFile(cut, capture[:len(capture)*3/4+1], 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(filepath.Join(bin, "zoomflows"), "-i", cut, "-what", "summary")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("zoomflows failed on truncated capture: %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "truncated=true") {
		t.Errorf("summary does not flag truncation: %s", stdout.String())
	}
	st := parseStatus(t, stderr.String())
	if !st.Partial || st.Reason != "truncated_capture" || !st.Truncated {
		t.Errorf("status = %+v, want partial truncated_capture", st)
	}
	if st.Packets == 0 {
		t.Error("no packets recovered from the readable prefix")
	}
}

// TestCLIBoundedStateFlags runs zoomflows with a one-flow cap and an
// aggressive TTL and requires the rejections to surface in the status.
func TestCLIBoundedStateFlags(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	simMeeting(t, bin, meeting)

	cmd := exec.Command(filepath.Join(bin, "zoomflows"),
		"-i", meeting, "-what", "summary", "-max-flows", "1", "-flow-ttl", "2s",
		"-quarantine", filepath.Join(work, "quarantine.pcap"))
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("zoomflows with caps failed: %v\nstderr:\n%s", err, stderr.String())
	}
	st := parseStatus(t, stderr.String())
	if st.RejectedPackets == 0 {
		t.Errorf("a one-flow cap on a multi-flow meeting rejected nothing: %+v", st)
	}
	if st.Partial {
		t.Errorf("capped but complete run wrongly marked partial: %+v", st)
	}
	if st.PanicsRecovered != 0 || st.Quarantined != 0 {
		t.Errorf("clean capture triggered panics: %+v", st)
	}
	if _, err := os.Stat(filepath.Join(work, "quarantine.pcap")); !os.IsNotExist(err) {
		t.Error("quarantine pcap written despite zero panics")
	}
}

// TestCLIEntropyPlotValidation feeds zoomentropy an unsupported -plot
// width and expects a usage error, not a panic.
func TestCLIEntropyPlotValidation(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	meeting := filepath.Join(work, "meeting.pcap")
	simMeeting(t, bin, meeting)

	cmd := exec.Command(filepath.Join(bin, "zoomentropy"), "-i", meeting, "-plot", "4:3")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("zoomentropy accepted -plot width 3")
	}
	if strings.Contains(string(out), "panic") {
		t.Fatalf("zoomentropy panicked instead of failing cleanly:\n%s", out)
	}
	if !strings.Contains(string(out), "width must be 1, 2, or 4") {
		t.Errorf("missing usage error, got:\n%s", out)
	}
}
