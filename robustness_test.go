package zoomlens

// Robustness tests: the analyzer is built for hostile input (a border
// tap sees everything), so no packet — truncated, corrupted, or
// adversarial — may panic it or corrupt its state.

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/rtp"
	"zoomlens/internal/stun"
	"zoomlens/internal/zoom"
)

func TestAnalyzerSurvivesRandomGarbage(t *testing.T) {
	a := NewAnalyzer(Config{ZoomNetworks: DefaultZoomNetworks()})
	rng := rand.New(rand.NewSource(99))
	at := time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 20000; i++ {
		n := rng.Intn(200)
		frame := make([]byte, n)
		rng.Read(frame)
		a.Packet(at.Add(time.Duration(i)*time.Millisecond), frame)
	}
	a.Finish()
	if a.Packets != 20000 {
		t.Errorf("packets = %d", a.Packets)
	}
	_ = a.Summary()
	_ = a.Meetings()
}

func TestAnalyzerSurvivesBitFlippedZoomTraffic(t *testing.T) {
	// Generate real Zoom frames, then flip random bits/truncate before
	// analysis: parse failures must be counted, never fatal.
	opts := DefaultWorldOptions()
	w := NewWorld(opts)
	a := NewAnalyzer(Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
	rng := rand.New(rand.NewSource(5))
	w.Monitor = func(at time.Time, frame []byte) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		switch rng.Intn(4) {
		case 0: // flip a random byte
			cp[rng.Intn(len(cp))] ^= byte(1 + rng.Intn(255))
		case 1: // truncate
			cp = cp[:rng.Intn(len(cp)+1)]
		case 2: // corrupt the payload area heavily
			for j := 0; j < 8 && len(cp) > 40; j++ {
				cp[40+rng.Intn(len(cp)-40)] ^= 0xff
			}
		}
		a.Packet(at, cp)
	}
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), DefaultMediaSet())
	m.Join(w.NewClient("b", true), DefaultMediaSet())
	w.Run(opts.Start.Add(10 * time.Second))
	a.Finish()
	if a.Packets == 0 {
		t.Fatal("nothing analyzed")
	}
	// Some packets survive corruption (case 3 untouched), some don't.
	if a.ZoomUDP == 0 {
		t.Error("no packets decoded at all")
	}
	if a.Undecodable == 0 {
		t.Error("corruption never detected — parser too lax?")
	}
}

func TestQuickParsersNeverPanic(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = zoom.ParsePacket(data, zoom.ModeAuto)
		_, _ = zoom.ParsePacket(data, zoom.ModeServer)
		_, _ = zoom.ParsePacket(data, zoom.ModeP2P)
		_, _ = rtp.Parse(data)
		_, _ = rtp.ParseCompound(data)
		_, _ = stun.Parse(data)
		_ = stun.Is(data)
		var p layers.Packet
		_ = (&layers.Parser{}).Parse(data, &p)
		_ = (&layers.Parser{First: layers.FirstIP}).Parse(data, &p)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestQuickZoomParseMarshalStable(t *testing.T) {
	// Whatever parses must re-marshal to identical bytes (opaque header
	// regions included) — parse(x) ok ⇒ marshal(parse(x)) == x.
	f := func(data []byte) bool {
		zp, err := zoom.ParsePacket(data, zoom.ModeAuto)
		if err != nil {
			return true
		}
		// RTCP compound packets with multiple SRs or trailing packets do
		// not round-trip through the single-SR marshaller; skip them.
		if zp.Media.Type.IsRTCP() {
			return true
		}
		out, err := zp.Marshal()
		if err != nil {
			return false
		}
		if len(out) != len(data) {
			return false
		}
		for i := range out {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			// Bias generation toward nearly-valid Zoom packets so the
			// parser accepts a useful fraction.
			pkt := zoom.Packet{
				ServerBased: rng.Intn(2) == 0,
				SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: uint16(rng.Uint32())},
				Media: zoom.MediaEncap{
					Type:      []zoom.MediaType{zoom.TypeAudio, zoom.TypeVideo, zoom.TypeScreenShare}[rng.Intn(3)],
					Sequence:  uint16(rng.Uint32()),
					Timestamp: rng.Uint32(),
				},
				RTP: rtp.Packet{
					Header: rtp.Header{
						PayloadType:    uint8(rng.Intn(128)),
						SequenceNumber: uint16(rng.Uint32()),
						Timestamp:      rng.Uint32(),
						SSRC:           rng.Uint32(),
						Marker:         rng.Intn(2) == 0,
					},
					Payload: make([]byte, rng.Intn(64)),
				},
			}
			rng.Read(pkt.RTP.Payload)
			wire, err := pkt.Marshal()
			if err != nil {
				wire = []byte{0}
			}
			// Sometimes corrupt a byte so the negative path is covered.
			if rng.Intn(3) == 0 && len(wire) > 0 {
				wire[rng.Intn(len(wire))] ^= byte(1 + rng.Intn(255))
			}
			vals[0] = reflect.ValueOf(wire)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestGroupingOrderInvariance checks a key property of the §4.3
// heuristic as implemented: the inferred meeting *partition* does not
// depend on record order (merging makes assignment order-insensitive).
func TestGroupingOrderInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mkClient := func(ip byte, port uint16) netip.AddrPort {
		return netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 8, 0, ip}), port)
	}
	base := time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	// Three ground-truth meetings sharing streams/clients internally.
	var records []meeting.StreamRecord
	uid := meeting.UnifiedID(1)
	for g := 0; g < 3; g++ {
		nClients := 2 + rng.Intn(3)
		clients := make([]netip.AddrPort, nClients)
		for i := range clients {
			clients[i] = mkClient(byte(10*g+i+1), uint16(40000+100*g+i))
		}
		for s := 0; s < 4; s++ {
			// Each unified stream is observed at 1–3 clients of its group.
			n := 1 + rng.Intn(3)
			for c := 0; c < n && c < nClients; c++ {
				records = append(records, meeting.StreamRecord{
					Unified: uid,
					Client:  clients[(s+c)%nClients],
					Start:   base.Add(time.Duration(rng.Intn(60)) * time.Second),
					End:     base.Add(time.Duration(60+rng.Intn(60)) * time.Second),
				})
			}
			uid++
		}
	}

	partition := func(recs []meeting.StreamRecord) map[meeting.UnifiedID]int {
		ms := meeting.Group(recs)
		out := map[meeting.UnifiedID]int{}
		for gi, m := range ms {
			for _, s := range m.Streams {
				out[s] = gi
			}
		}
		return out
	}
	ref := partition(records)
	for trial := 0; trial < 20; trial++ {
		shuffled := make([]meeting.StreamRecord, len(records))
		copy(shuffled, records)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := partition(shuffled)
		// Same-partition relation must match (group indices may differ).
		for a := range ref {
			for b := range ref {
				same := ref[a] == ref[b]
				gotSame := got[a] == got[b]
				if same != gotSame {
					t.Fatalf("trial %d: streams %d,%d partition differs (ref %v, got %v)", trial, a, b, same, gotSame)
				}
			}
		}
	}
}
