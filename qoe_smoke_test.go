package zoomlens

// End-to-end smoke for the header-free QoE inference loop (§8 of the
// paper): simulate a congested meeting with SDK-style ground truth,
// stream feature rows out of the analyzer, train the logistic model,
// and require it to beat the majority-class baseline on a held-out
// meeting it never saw. TestBenchPredictJSON additionally snapshots the
// feature layer's ingest overhead and the held-out accuracy into
// BENCH_predict.json (env-gated; `make qoe-smoke` sets the variable)
// and gates the overhead at ≤1.10× the featureless ingest path.

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"os"
	"sort"
	"testing"
	"time"

	"zoomlens/internal/features"
	"zoomlens/internal/netsim"
	"zoomlens/internal/predict"
	"zoomlens/internal/qos"
	"zoomlens/internal/zoom"
)

// qoeLabeledRows simulates one congested two-party meeting, extracts
// streaming feature rows, and joins the video rows against the clients'
// ground-truth QoS series — the zoomsim -congest -qos-out →
// zoomfeatures -train data path, in process.
func qoeLabeledRows(tb testing.TB, seed int64, dur time.Duration) []features.LabeledRow {
	tb.Helper()
	opts := DefaultWorldOptions()
	opts.Seed = seed
	world := NewWorld(opts)
	var at []time.Time
	var frames [][]byte
	world.Monitor = func(t time.Time, frame []byte) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		at = append(at, t)
		frames = append(frames, cp)
	}
	m := world.NewMeeting()
	a := world.NewClient("alice", true)
	b := world.NewClient("bob", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())
	world.WanDown.Episodes = append(world.WanDown.Episodes,
		netsim.Congestion{Start: opts.Start.Add(dur / 4), End: opts.Start.Add(dur/4 + 15*time.Second), ExtraDelay: 25 * time.Millisecond, ExtraJitter: 35 * time.Millisecond, LossRate: 0.02},
		netsim.Congestion{Start: opts.Start.Add(2 * dur / 3), End: opts.Start.Add(2*dur/3 + 20*time.Second), ExtraDelay: 35 * time.Millisecond, ExtraJitter: 45 * time.Millisecond, LossRate: 0.03},
	)
	world.Run(opts.Start.Add(dur))

	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		FeatureWindow:  time.Second,
	}
	eng := NewAnalyzer(cfg)
	for i := range frames {
		eng.Packet(at[i], frames[i])
	}
	eng.Finish()
	rows := eng.DrainFeatures()

	var entries []qos.Entry
	for _, c := range []*SimClient{a, b} {
		if rec := c.QoS(); rec != nil {
			entries = append(entries, rec.Entries...)
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Time.Before(entries[j].Time) })

	video := rows[:0]
	for _, r := range rows {
		if r.ID.Key.Type == zoom.TypeVideo {
			video = append(video, r)
		}
	}
	labeled := features.Join(video, entries, 30)
	if len(labeled) == 0 {
		tb.Fatalf("no labeled rows: %d video rows, %d QoS entries", len(video), len(entries))
	}
	return labeled
}

// TestQoESmoke trains on one congested meeting and scores a different
// seed's meeting: the model must beat the majority baseline on data it
// never saw, or the whole inference loop is decorative.
func TestQoESmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	train := qoeLabeledRows(t, 1, 2*time.Minute)
	heldout := qoeLabeledRows(t, 7, 90*time.Second)

	model, err := predict.Train(train, predict.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fit := predict.Evaluate(model, train)
	ev := predict.Evaluate(model, heldout)
	t.Logf("train n=%d acc=%.3f base=%.3f | heldout n=%d acc=%.3f base=%.3f",
		fit.N, fit.Accuracy, fit.Baseline, ev.N, ev.Accuracy, ev.Baseline)

	if fit.Baseline >= 1 {
		t.Fatalf("degenerate training set: single-class baseline %.3f", fit.Baseline)
	}
	if fit.Accuracy <= fit.Baseline {
		t.Errorf("training accuracy %.3f does not beat baseline %.3f", fit.Accuracy, fit.Baseline)
	}
	if ev.Accuracy <= ev.Baseline {
		t.Errorf("held-out accuracy %.3f does not beat baseline %.3f", ev.Accuracy, ev.Baseline)
	}
	if ev.Accuracy < 0.80 {
		t.Errorf("held-out accuracy %.3f below the 0.80 floor", ev.Accuracy)
	}
}

// TestBenchPredictJSON snapshots the QoE layer's numbers into the file
// named by BENCH_PREDICT_OUT: the feature windower's per-packet ingest
// overhead relative to a featureless run (gated at ≤1.10×) and the
// held-out evaluation of a freshly trained model. A plain `go test`
// skips it.
func TestBenchPredictJSON(t *testing.T) {
	out := os.Getenv("BENCH_PREDICT_OUT")
	if out == "" {
		t.Skip("BENCH_PREDICT_OUT not set")
	}
	raw, _ := ingestTrace(t)
	_, frames, baseCfg := benchTrace(t)
	featCfg := baseCfg
	featCfg.FeatureWindow = time.Second
	n := len(frames)

	// The two variants are measured back to back inside each round and
	// the gate takes the best paired ratio: pairing cancels the slow
	// thermal/scheduler drift that dominates run-to-run variance on a
	// shared box, which a tight ratio gate would otherwise misread as
	// feature-layer cost.
	measure := func(cfg Config) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				if err := ingestAnalyzePass(raw, cfg, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(res.NsPerOp()) / float64(n)
	}
	measure(baseCfg) // warmup
	baseNs, featNs, ratio := 0.0, 0.0, 0.0
	for round := 0; round < 6; round++ {
		b := measure(baseCfg)
		f := measure(featCfg)
		if r := f / b; round == 0 || r < ratio {
			baseNs, featNs, ratio = b, f, r
		}
	}

	train := qoeLabeledRows(t, 1, 2*time.Minute)
	heldout := qoeLabeledRows(t, 7, 90*time.Second)
	model, err := predict.Train(train, predict.TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := predict.Evaluate(model, heldout)

	report := map[string]any{
		"trace_packets": n,
		"feature_overhead": map[string]float64{
			"base_ns_per_packet":     baseNs,
			"features_ns_per_packet": featNs,
			"ratio":                  ratio,
		},
		"eval": map[string]any{
			"train_rows":    len(train),
			"heldout_rows":  ev.N,
			"accuracy":      ev.Accuracy,
			"baseline":      ev.Baseline,
			"confusion":     ev.Confusion,
			"feature_names": predict.FeatureNames,
		},
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("feature overhead %.3fx (%.0f → %.0f ns/pkt); held-out accuracy %.3f (baseline %.3f)\n",
		ratio, baseNs, featNs, ev.Accuracy, ev.Baseline)

	if ratio > 1.10 {
		t.Errorf("feature layer overhead %.3fx exceeds the 1.10x gate", ratio)
	}
	if ev.Accuracy <= ev.Baseline {
		t.Errorf("held-out accuracy %.3f does not beat baseline %.3f", ev.Accuracy, ev.Baseline)
	}
}
