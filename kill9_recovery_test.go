package zoomlens

// Crash-recovery differential: a run killed without warning — torn
// checkpoint temp files and a half-written tail record on disk — must
// restore to the newest provable state and, fed the rest of the
// capture, render a report byte-identical to a run that was never
// interrupted. In-process tests control the exact packet cut for the
// byte-level comparison; a subprocess test delivers a real SIGKILL to a
// live tool and proves the restore path up through the CLI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"zoomlens/internal/engine"
)

func TestKill9RecoveryDifferential(t *testing.T) {
	raw, ngRaw := ingestTrace(t)
	_, _, cfg := benchTrace(t)

	for _, input := range []struct {
		name string
		data []byte
	}{{"pcap", raw}, {"pcapng", ngRaw}} {
		recs, truncated := tracePackets(t, input.data)
		if truncated {
			t.Fatalf("%s trace unexpectedly truncated", input.name)
		}
		n := len(recs)
		cut1, cut2 := n/3, 2*n/3

		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", input.name, workers), func(t *testing.T) {
				// The uninterrupted reference run.
				ref := newEngineFor(cfg, workers)
				for _, rec := range recs {
					ref.Packet(rec.Timestamp, rec.Data)
				}
				ref.Finish()
				want := renderReport(ref.Result())

				// The doomed run: full at cut1, delta at cut2, then a crash
				// leaves a half-written delta and an orphaned temp file.
				dir := t.TempDir()
				base := filepath.Join(dir, "state.zlcp")
				doomed := newEngineFor(cfg, workers)
				ck := engine.NewCheckpointer(base, 2, true, nil)
				for _, rec := range recs[:cut1] {
					doomed.Packet(rec.Timestamp, rec.Data)
				}
				if err := ck.WriteFull(doomed); err != nil {
					t.Fatal(err)
				}
				for _, rec := range recs[cut1:cut2] {
					doomed.Packet(rec.Timestamp, rec.Data)
				}
				if err := ck.WriteDelta(doomed); err != nil {
					t.Fatal(err)
				}
				// The kill lands mid-write of the next delta: the record is
				// written whole, then torn in half, exactly what a crash
				// between write and fsync/rename can leave if the rename
				// raced the kill. A stray temp file is debris of the same
				// crash.
				for _, rec := range recs[cut2 : cut2+50] {
					doomed.Packet(rec.Timestamp, rec.Data)
				}
				if err := ck.WriteDelta(doomed); err != nil {
					t.Fatal(err)
				}
				tornName := base + ".00000002.delta.zlcp"
				fi, err := os.Stat(tornName)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.Truncate(tornName, fi.Size()/2); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(base+".tmp-killed", []byte("torn"), 0o644); err != nil {
					t.Fatal(err)
				}
				// The doomed process's memory is gone; only the files remain.

				// Reboot: startup sweeps the debris, restore walks back past
				// the torn record to the cut2 state.
				ck2 := engine.NewCheckpointer(base, 2, true, nil)
				if ck2.TmpCleaned == 0 {
					t.Error("startup did not sweep the orphaned temp file")
				}
				resumed, fallbacks, err := engine.RestoreEngine(base, cfg, nil)
				if err != nil {
					t.Fatal(err)
				}
				if fallbacks == 0 {
					t.Error("no fallback counted for the torn record")
				}
				for _, rec := range recs[cut2:] {
					resumed.Packet(rec.Timestamp, rec.Data)
				}
				resumed.Finish()
				if got := renderReport(resumed.Result()); got != want {
					t.Errorf("kill -9 recovery report diverges from the uninterrupted run\n%s",
						firstDiffLine(want, got))
				}
			})
		}
	}
}

// firstDiffLine locates the first differing line of two reports for a
// readable failure message.
func firstDiffLine(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\nwant: %s\ngot:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestCLISigkillRecovery delivers a real SIGKILL to a checkpointing
// zoomqoe mid-capture, then proves a second invocation restores from
// the chain the dead process left behind: -restore succeeds, the
// status line reports the recovery, and the tool renders a report.
func TestCLISigkillRecovery(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	pcapPath := filepath.Join(work, "meeting.pcap")
	runTool(t, bin, "zoomsim", "-o", pcapPath, "-mode", "meeting", "-duration", "60s", "-congest")
	data, err := os.ReadFile(pcapPath)
	if err != nil {
		t.Fatal(err)
	}
	ckBase := filepath.Join(work, "state.zlcp")

	// First life: ingest from a pipe held open so the process is alive
	// and checkpointing when the kill lands.
	cmd := exec.Command(filepath.Join(bin, "zoomqoe"),
		"-i", "-", "-what", "loss", "-workers", "2",
		"-checkpoint", ckBase, "-checkpoint-interval", "5s", "-checkpoint-delta", "1s")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := stdin.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	// Wait for the chain to materialize (trace-clock checkpoints fire
	// while the half capture drains), then kill without ceremony.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m, _ := filepath.Glob(ckBase + ".*.full.zlcp"); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no full checkpoint appeared before the kill")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	stdin.Close()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("expected death by SIGKILL, got %v", err)
	}
	// Plant crash debris the second life must sweep.
	if err := os.WriteFile(ckBase+".tmp-crashed", []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: restore the chain and finish the capture. (The file
	// is replayed from the start here — the goal is proving the CLI
	// restore path; the packet-exact differential is the in-process test
	// above.)
	cmd = exec.Command(filepath.Join(bin, "zoomqoe"),
		"-i", pcapPath, "-what", "loss",
		"-restore", ckBase, "-checkpoint", ckBase, "-checkpoint-delta", "1s")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("restore run: %v\n%s", err, stderr.String())
	}
	if strings.Count(stdout.String(), "\n") < 1 {
		t.Errorf("restored run produced no report:\n%s", stdout.String())
	}

	// The status line (last JSON object on stderr) must record the
	// recovery: restored, the swept temp file, and a live chain.
	status := lastJSONLine(t, stderr.String())
	if status["restored"] != true {
		t.Errorf("status restored = %v, want true", status["restored"])
	}
	if n, _ := status["tmp_cleaned"].(float64); n < 1 {
		t.Errorf("status tmp_cleaned = %v, want >= 1", status["tmp_cleaned"])
	}
	if n, _ := status["checkpoints"].(float64); n < 1 {
		t.Errorf("status checkpoints = %v, want >= 1", status["checkpoints"])
	}
}

// lastJSONLine parses the last JSON object line of a stderr dump.
func lastJSONLine(t *testing.T, stderr string) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(stderr), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		ln := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(ln, "{") {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("status line does not parse: %v\n%s", err, ln)
		}
		return m
	}
	t.Fatalf("no status JSON on stderr:\n%s", stderr)
	return nil
}
