package zoomlens

// Benchmarks for the checkpoint codec at production scale: a campus
// border at the paper's traffic levels tracks on the order of 10k live
// streams, and the engine driver checkpoints on a timer while holding
// the packet path. The budget is <100ms to encode that state — enforced
// by TestBenchCheckpointJSON, which `make bench` runs to snapshot the
// encode/restore numbers into BENCH_checkpoint.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// checkpointStateAnalyzer grows an analyzer to the requested number of
// live media streams: every stream is a distinct (flow, SSRC) pair with
// a handful of packets, so StreamMetrics, the flow table, and dedup
// state all scale with the stream count the way they do in production.
func checkpointStateAnalyzer(tb testing.TB, streams int) *Analyzer {
	tb.Helper()
	cfg := Config{
		PreFiltered:       true,
		MaxFlows:          4 * streams,
		MaxStreams:        2 * streams,
		MaxSubstreams:     4 * streams,
		MaxMeetingStreams: 4 * streams,
		MaxFinished:       streams,
	}
	a := NewAnalyzer(cfg)
	dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 7}), 8801)
	start := time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)
	const packetsPerStream = 4
	for s := 0; s < streams; s++ {
		src := netip.AddrPortFrom(
			netip.AddrFrom4([4]byte{10, byte(s >> 10 & 0x3f), byte(s >> 4 & 0x3f), byte(1 + s&0xf)}),
			uint16(20000+s%16),
		)
		for p := 0; p < packetsPerStream; p++ {
			zp := zoom.Packet{
				ServerBased: true,
				SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: uint16(p), Direction: zoom.DirToSFU},
				Media: zoom.MediaEncap{
					Type:      zoom.TypeVideo,
					Sequence:  uint16(p),
					Timestamp: uint32(p * 3000),
				},
				RTP: rtp.Packet{
					Header: rtp.Header{
						PayloadType:    98,
						SequenceNumber: uint16(p),
						Timestamp:      uint32(p * 3000),
						SSRC:           uint32(s + 1),
					},
					Payload: []byte{0xde, 0xad, 0xbe, 0xef},
				},
			}
			payload, err := zp.Marshal()
			if err != nil {
				tb.Fatal(err)
			}
			frame := layers.EthernetIPv4UDP(src, dst, 64, payload)
			a.Packet(start.Add(time.Duration(p)*33*time.Millisecond), frame)
		}
	}
	return a
}

func BenchmarkCheckpoint(b *testing.B) {
	for _, streams := range []int{1000, 10000} {
		a := checkpointStateAnalyzer(b, streams)
		var buf bytes.Buffer
		if err := a.Checkpoint(&buf); err != nil {
			b.Fatal(err)
		}
		size := buf.Len()

		b.Run(fmt.Sprintf("encode/streams=%d", streams), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			for i := 0; i < b.N; i++ {
				if err := a.Checkpoint(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("restore/streams=%d", streams), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(size))
			cfg := Config{PreFiltered: true}
			for i := 0; i < b.N; i++ {
				if _, err := RestoreAnalyzer(bytes.NewReader(buf.Bytes()), cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchCheckpointJSON snapshots the checkpoint codec numbers into
// the file named by BENCH_CHECKPOINT_OUT and enforces the recovery-path
// budgets: a 10k-stream checkpoint must serialize in under 100ms (the
// engine driver holds the packet path while encoding) and restore in
// under 100ms (a crashed tap must be back on the wire promptly). `make
// bench` sets the variable; plain `go test` skips.
func TestBenchCheckpointJSON(t *testing.T) {
	out := os.Getenv("BENCH_CHECKPOINT_OUT")
	if out == "" {
		t.Skip("BENCH_CHECKPOINT_OUT not set")
	}
	const streams = 10000
	a := checkpointStateAnalyzer(t, streams)
	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	encode := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := a.Checkpoint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	restore := testing.Benchmark(func(b *testing.B) {
		cfg := Config{PreFiltered: true}
		for i := 0; i < b.N; i++ {
			if _, err := RestoreAnalyzer(bytes.NewReader(buf.Bytes()), cfg); err != nil {
				b.Fatal(err)
			}
		}
	})

	encodeMS := float64(encode.NsPerOp()) / 1e6
	restoreMS := float64(restore.NsPerOp()) / 1e6
	report := map[string]any{
		"streams":           streams,
		"checkpoint_bytes":  buf.Len(),
		"bytes_per_stream":  float64(buf.Len()) / streams,
		"encode_ms":         encodeMS,
		"restore_ms":        restoreMS,
		"encode_budget_ms":  100,
		"restore_budget_ms": 100,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (encode %.2fms, restore %.2fms, %d bytes)", out, encodeMS, restoreMS, buf.Len())

	if encodeMS > 100 {
		t.Errorf("10k-stream checkpoint encodes in %.1fms, budget is 100ms", encodeMS)
	}
	if restoreMS > 100 {
		t.Errorf("10k-stream checkpoint restores in %.1fms, budget is 100ms", restoreMS)
	}
}
