package stun

import (
	"net/netip"
	"testing"
)

// FuzzSTUNParse drives the STUN codec with arbitrary datagrams: Parse
// and the attribute accessors must never panic, and any message that
// parses must survive a marshal → parse round trip with its identity
// intact.
func FuzzSTUNParse(f *testing.F) {
	tid := TransactionID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	req := NewBindingRequest(tid)
	f.Add(req.Marshal())
	resp := NewBindingResponse(tid, netip.MustParseAddrPort("192.0.2.9:43210"))
	f.Add(resp.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, headerLen))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		_, _ = m.MappedAddress()
		_ = m.IsBindingRequest()
		out := m.Marshal()
		if !Is(out) {
			t.Fatal("marshal output fails Is()")
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("re-parse of marshal output failed: %v", err)
		}
		if back.Type != m.Type || back.TransactionID != m.TransactionID {
			t.Fatalf("round trip changed identity: %v/%v -> %v/%v", m.Type, m.TransactionID, back.Type, back.TransactionID)
		}
	})
}
