package stun

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBindingRequestRoundTrip(t *testing.T) {
	tid := NewTransactionID()
	req := NewBindingRequest(tid)
	wire := req.Marshal()
	if !Is(wire) {
		t.Fatal("Is = false for a valid binding request")
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.IsBindingRequest() {
		t.Errorf("type = %#04x", got.Type)
	}
	if got.TransactionID != tid {
		t.Error("transaction ID mismatch")
	}
	if sw, ok := got.Attr(AttrSoftware); !ok || string(sw) != "zoomlens-sim" {
		t.Errorf("software attr = %q ok=%v", sw, ok)
	}
}

func TestBindingResponseIPv4(t *testing.T) {
	tid := NewTransactionID()
	mapped := netip.MustParseAddrPort("203.0.113.7:52143")
	resp := NewBindingResponse(tid, mapped)
	got, err := Parse(resp.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.IsBindingResponse() {
		t.Errorf("type = %#04x", got.Type)
	}
	addr, ok := got.MappedAddress()
	if !ok {
		t.Fatal("MappedAddress not found")
	}
	if addr != mapped {
		t.Errorf("mapped = %v, want %v", addr, mapped)
	}
}

func TestBindingResponseIPv6(t *testing.T) {
	tid := NewTransactionID()
	mapped := netip.MustParseAddrPort("[2001:db8::99]:4567")
	resp := NewBindingResponse(tid, mapped)
	got, err := Parse(resp.Marshal())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	addr, ok := got.MappedAddress()
	if !ok {
		t.Fatal("MappedAddress not found")
	}
	if addr != mapped {
		t.Errorf("mapped = %v, want %v", addr, mapped)
	}
}

func TestPlainMappedAddress(t *testing.T) {
	// Hand-build a MAPPED-ADDRESS (non-XOR) attribute.
	var tid TransactionID
	v := []byte{0, 0x01, 0x1f, 0x90, 10, 0, 0, 1} // port 8080, 10.0.0.1
	m := Message{Type: TypeBindingResponse, TransactionID: tid,
		Attributes: []Attribute{{Type: AttrMappedAddress, Value: v}}}
	got, err := Parse(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	addr, ok := got.MappedAddress()
	if !ok || addr != netip.MustParseAddrPort("10.0.0.1:8080") {
		t.Errorf("mapped = %v ok=%v", addr, ok)
	}
}

func TestIsRejectsNonSTUN(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		func() []byte { // RTP-looking payload: version bits set
			b := make([]byte, 20)
			b[0] = 0x80
			return b
		}(),
		make([]byte, 20), // zero cookie
		func() []byte { // right cookie, bad length alignment
			m := NewBindingRequest(TransactionID{})
			b := m.Marshal()
			b[3] = 1
			return b
		}(),
	}
	for i, c := range cases {
		if Is(c) {
			t.Errorf("case %d: Is = true", i)
		}
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d: Parse succeeded", i)
		}
	}
}

func TestParseTruncatedAttribute(t *testing.T) {
	m := NewBindingRequest(TransactionID{1, 2, 3})
	wire := m.Marshal()
	// Declare a longer attribute than present by bumping the attr length.
	wire[headerLen+3] += 40
	wire[3] += 0 // keep message length; attribute now overruns
	if _, err := Parse(wire); err == nil {
		t.Error("expected truncated attribute error")
	}
}

func TestAttributePaddingRoundTrip(t *testing.T) {
	// Attribute values of every length mod 4 must survive.
	for n := 0; n < 9; n++ {
		val := bytes.Repeat([]byte{0xab}, n)
		m := Message{Type: TypeBindingRequest, Attributes: []Attribute{{Type: 0x7777, Value: val}}}
		got, err := Parse(m.Marshal())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		v, ok := got.Attr(0x7777)
		if !ok || !bytes.Equal(v, val) {
			t.Errorf("n=%d: attr = %x ok=%v", n, v, ok)
		}
	}
}

func TestQuickXorMappedAddressRoundTrip(t *testing.T) {
	f := func(a [4]byte, port uint16, tid TransactionID) bool {
		mapped := netip.AddrPortFrom(netip.AddrFrom4(a), port)
		resp := NewBindingResponse(tid, mapped)
		got, err := Parse(resp.Marshal())
		if err != nil {
			return false
		}
		addr, ok := got.MappedAddress()
		return ok && addr == mapped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTransactionIDsDistinct(t *testing.T) {
	a, b := NewTransactionID(), NewTransactionID()
	if a == b {
		t.Error("two random transaction IDs collided")
	}
}

func BenchmarkIs(b *testing.B) {
	m := NewBindingRequest(TransactionID{1, 2, 3})
	wire := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Is(wire) {
			b.Fatal("not stun")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	m := NewBindingResponse(TransactionID{9}, netip.MustParseAddrPort("10.0.0.1:5000"))
	wire := m.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
