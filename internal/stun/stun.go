// Package stun implements the subset of Session Traversal Utilities for
// NAT (RFC 5389) that Zoom uses during peer-to-peer connection
// establishment: binding requests and success responses with
// (XOR-)MAPPED-ADDRESS attributes, exchanged in cleartext on UDP port
// 3478 with a Zoom zone controller before a P2P media flow starts
// (paper §4.1, Figure 2).
package stun

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"
	"net/netip"
)

// Port is the well-known STUN UDP port used by Zoom zone controllers.
const Port = 3478

// MagicCookie is the fixed value in every RFC 5389 message.
const MagicCookie uint32 = 0x2112a442

// headerLen is the fixed STUN message header length.
const headerLen = 20

// Message types (method | class) used by Zoom's exchange.
const (
	TypeBindingRequest  uint16 = 0x0001
	TypeBindingResponse uint16 = 0x0101
	TypeBindingError    uint16 = 0x0111
)

// Attribute types.
const (
	AttrMappedAddress    uint16 = 0x0001
	AttrXorMappedAddress uint16 = 0x0020
	AttrSoftware         uint16 = 0x8022
	AttrFingerprint      uint16 = 0x8028
)

// Errors returned by the codec.
var (
	ErrNotSTUN   = errors.New("stun: not a STUN message")
	ErrTruncated = errors.New("stun: truncated message")
)

// TransactionID is the 96-bit STUN transaction identifier.
type TransactionID [12]byte

// NewTransactionID returns a cryptographically random transaction ID.
// Transaction IDs here only need uniqueness (they label simulated
// exchanges, never secure real ones), so if the system entropy source
// fails the function falls back to math/rand instead of panicking — a
// measurement tap must not crash because /dev/urandom hiccupped.
func NewTransactionID() TransactionID {
	var id TransactionID
	if _, err := rand.Read(id[:]); err != nil {
		for i := range id {
			id[i] = byte(mrand.Int())
		}
	}
	return id
}

// Attribute is a raw STUN attribute.
type Attribute struct {
	Type  uint16
	Value []byte
}

// Message is a decoded STUN message.
type Message struct {
	Type          uint16
	TransactionID TransactionID
	Attributes    []Attribute
}

// IsBindingRequest reports whether the message is a binding request.
func (m *Message) IsBindingRequest() bool { return m.Type == TypeBindingRequest }

// IsBindingResponse reports whether the message is a binding success
// response.
func (m *Message) IsBindingResponse() bool { return m.Type == TypeBindingResponse }

// Attr returns the first attribute of the given type.
func (m *Message) Attr(t uint16) ([]byte, bool) {
	for _, a := range m.Attributes {
		if a.Type == t {
			return a.Value, true
		}
	}
	return nil, false
}

// MappedAddress extracts the reflexive transport address from either an
// XOR-MAPPED-ADDRESS or a MAPPED-ADDRESS attribute.
func (m *Message) MappedAddress() (netip.AddrPort, bool) {
	if v, ok := m.Attr(AttrXorMappedAddress); ok {
		return decodeAddress(v, m.TransactionID, true)
	}
	if v, ok := m.Attr(AttrMappedAddress); ok {
		return decodeAddress(v, m.TransactionID, false)
	}
	return netip.AddrPort{}, false
}

func decodeAddress(v []byte, tid TransactionID, xored bool) (netip.AddrPort, bool) {
	if len(v) < 8 {
		return netip.AddrPort{}, false
	}
	family := v[1]
	port := binary.BigEndian.Uint16(v[2:4])
	if xored {
		port ^= uint16(MagicCookie >> 16)
	}
	switch family {
	case 0x01: // IPv4
		var a [4]byte
		copy(a[:], v[4:8])
		if xored {
			var cookie [4]byte
			binary.BigEndian.PutUint32(cookie[:], MagicCookie)
			for i := range a {
				a[i] ^= cookie[i]
			}
		}
		return netip.AddrPortFrom(netip.AddrFrom4(a), port), true
	case 0x02: // IPv6
		if len(v) < 20 {
			return netip.AddrPort{}, false
		}
		var a [16]byte
		copy(a[:], v[4:20])
		if xored {
			var key [16]byte
			binary.BigEndian.PutUint32(key[0:4], MagicCookie)
			copy(key[4:], tid[:])
			for i := range a {
				a[i] ^= key[i]
			}
		}
		return netip.AddrPortFrom(netip.AddrFrom16(a), port), true
	}
	return netip.AddrPort{}, false
}

// Parse decodes a STUN message. Is reports quickly (without full parsing)
// whether a payload could be STUN; Parse validates the structure fully.
func Parse(data []byte) (Message, error) {
	var m Message
	if len(data) < headerLen {
		return m, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if data[0]&0xc0 != 0 {
		return m, fmt.Errorf("%w: first two bits set", ErrNotSTUN)
	}
	if binary.BigEndian.Uint32(data[4:8]) != MagicCookie {
		return m, fmt.Errorf("%w: bad magic cookie", ErrNotSTUN)
	}
	m.Type = binary.BigEndian.Uint16(data[0:2])
	msgLen := int(binary.BigEndian.Uint16(data[2:4]))
	if msgLen%4 != 0 {
		return m, fmt.Errorf("%w: length %d not a multiple of 4", ErrNotSTUN, msgLen)
	}
	if len(data) < headerLen+msgLen {
		return m, fmt.Errorf("%w: declared %d, have %d", ErrTruncated, msgLen, len(data)-headerLen)
	}
	copy(m.TransactionID[:], data[8:20])
	rest := data[headerLen : headerLen+msgLen]
	for len(rest) > 0 {
		if len(rest) < 4 {
			return m, fmt.Errorf("%w: attribute header", ErrTruncated)
		}
		at := binary.BigEndian.Uint16(rest[0:2])
		al := int(binary.BigEndian.Uint16(rest[2:4]))
		padded := (al + 3) &^ 3
		if len(rest) < 4+padded {
			return m, fmt.Errorf("%w: attribute body (type %#04x len %d)", ErrTruncated, at, al)
		}
		m.Attributes = append(m.Attributes, Attribute{Type: at, Value: rest[4 : 4+al]})
		rest = rest[4+padded:]
	}
	return m, nil
}

// Is reports whether data plausibly begins with a STUN message: correct
// leading bits, magic cookie, and a consistent length field.
func Is(data []byte) bool {
	if len(data) < headerLen {
		return false
	}
	if data[0]&0xc0 != 0 {
		return false
	}
	if binary.BigEndian.Uint32(data[4:8]) != MagicCookie {
		return false
	}
	msgLen := int(binary.BigEndian.Uint16(data[2:4]))
	return msgLen%4 == 0 && len(data) >= headerLen+msgLen
}

// Marshal serializes the message.
func (m *Message) Marshal() []byte {
	bodyLen := 0
	for _, a := range m.Attributes {
		bodyLen += 4 + (len(a.Value)+3)&^3
	}
	out := make([]byte, 0, headerLen+bodyLen)
	out = binary.BigEndian.AppendUint16(out, m.Type)
	out = binary.BigEndian.AppendUint16(out, uint16(bodyLen))
	out = binary.BigEndian.AppendUint32(out, MagicCookie)
	out = append(out, m.TransactionID[:]...)
	for _, a := range m.Attributes {
		out = binary.BigEndian.AppendUint16(out, a.Type)
		out = binary.BigEndian.AppendUint16(out, uint16(len(a.Value)))
		out = append(out, a.Value...)
		if pad := (4 - len(a.Value)%4) % 4; pad > 0 {
			out = append(out, make([]byte, pad)...)
		}
	}
	return out
}

// NewBindingRequest builds the binding request Zoom clients send to a zone
// controller from the ephemeral port later used for P2P media.
func NewBindingRequest(tid TransactionID) Message {
	return Message{
		Type:          TypeBindingRequest,
		TransactionID: tid,
		Attributes: []Attribute{
			{Type: AttrSoftware, Value: []byte("zoomlens-sim")},
		},
	}
}

// NewBindingResponse builds a binding success response reporting mapped as
// the client's reflexive address, encoded as XOR-MAPPED-ADDRESS.
func NewBindingResponse(tid TransactionID, mapped netip.AddrPort) Message {
	var v []byte
	port := mapped.Port() ^ uint16(MagicCookie>>16)
	if mapped.Addr().Is4() {
		v = make([]byte, 8)
		v[1] = 0x01
		binary.BigEndian.PutUint16(v[2:4], port)
		a := mapped.Addr().As4()
		var cookie [4]byte
		binary.BigEndian.PutUint32(cookie[:], MagicCookie)
		for i := 0; i < 4; i++ {
			v[4+i] = a[i] ^ cookie[i]
		}
	} else {
		v = make([]byte, 20)
		v[1] = 0x02
		binary.BigEndian.PutUint16(v[2:4], port)
		a := mapped.Addr().As16()
		var key [16]byte
		binary.BigEndian.PutUint32(key[0:4], MagicCookie)
		copy(key[4:], tid[:])
		for i := 0; i < 16; i++ {
			v[4+i] = a[i] ^ key[i]
		}
	}
	return Message{
		Type:          TypeBindingResponse,
		TransactionID: tid,
		Attributes:    []Attribute{{Type: AttrXorMappedAddress, Value: v}},
	}
}
