// Package flow tracks the aggregation levels of Figure 6 in the paper:
// UDP flows (IP 5-tuples) carry media streams (identified by SSRC and
// Zoom media type), each of which carries up to three substreams
// (identified by RTP payload type), which in turn carry frames
// (identified by RTP timestamp) split across packets (identified by RTP
// sequence number).
//
// The Table keeps per-flow and per-stream accounting used by the Table
// 2/3/6 reproductions and hands structured records to downstream
// consumers (meeting grouping, metrics).
package flow

import (
	"sort"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/zoom"
)

// Record is one parsed Zoom packet in its flow context. It is the unit
// handed to metric engines and the meeting-grouping heuristic.
type Record struct {
	Time time.Time
	Flow layers.FiveTuple
	// WireLen is the full frame length on the wire, for overall bit
	// rates (§5.1).
	WireLen int
	// UDPPayloadLen is the Zoom payload length.
	UDPPayloadLen int
	// Z is the parsed Zoom packet.
	Z zoom.Packet
}

// MediaStreamID identifies a media stream at the vantage point: the same
// SSRC+type can legitimately appear on several flows (stream copies
// forwarded by the SFU, or an SFU→P2P transition), which step 1 of the
// grouping heuristic detects (§4.3.2).
type MediaStreamID struct {
	Flow layers.FiveTuple
	Key  zoom.StreamKey
}

// SubstreamStats accumulates per-payload-type counters within a stream.
type SubstreamStats struct {
	PayloadType uint8
	Packets     uint64
	Bytes       uint64 // RTP payload bytes
}

// StreamStats is the per-media-stream accounting record.
type StreamStats struct {
	ID         MediaStreamID
	FirstSeen  time.Time
	LastSeen   time.Time
	Packets    uint64
	WireBytes  uint64
	MediaBytes uint64 // RTP payload bytes across substreams
	// FirstRTPTimestamp and LastRTPTimestamp are the stream's RTP
	// timestamp range, consumed by duplicate-stream detection.
	FirstRTPTimestamp uint32
	LastRTPTimestamp  uint32
	FirstSeq          uint16
	LastSeq           uint16
	Substreams        map[uint8]*SubstreamStats
	RTCPPackets       uint64
}

// FlowStats is the per-5-tuple accounting record.
type FlowStats struct {
	Flow        layers.FiveTuple
	FirstSeen   time.Time
	LastSeen    time.Time
	Packets     uint64
	WireBytes   uint64
	ServerBased uint64 // packets with an SFU encapsulation
	P2P         uint64
	// ByEncapType counts packets per media encapsulation type value
	// (Table 2).
	ByEncapType map[zoom.MediaType]uint64
}

// Table demultiplexes records into flows and streams.
type Table struct {
	flows   map[layers.FiveTuple]*FlowStats
	streams map[MediaStreamID]*StreamStats

	// Totals for Table 2/6.
	totalPackets uint64
	totalBytes   uint64
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		flows:   make(map[layers.FiveTuple]*FlowStats),
		streams: make(map[MediaStreamID]*StreamStats),
	}
}

// Observe ingests one record, updating flow and stream state. It returns
// the stream's stats entry (nil for RTCP-only bookkeeping is never nil:
// RTCP packets are attributed to the stream of their first referenced
// SSRC when one exists).
func (t *Table) Observe(r *Record) *StreamStats {
	t.totalPackets++
	t.totalBytes += uint64(r.WireLen)

	f := t.flows[r.Flow]
	if f == nil {
		f = &FlowStats{Flow: r.Flow, FirstSeen: r.Time, ByEncapType: make(map[zoom.MediaType]uint64)}
		t.flows[r.Flow] = f
	}
	f.LastSeen = r.Time
	f.Packets++
	f.WireBytes += uint64(r.WireLen)
	f.ByEncapType[r.Z.Media.Type]++
	if r.Z.ServerBased {
		f.ServerBased++
	} else {
		f.P2P++
	}

	var key zoom.StreamKey
	switch {
	case r.Z.IsMedia():
		key = zoom.StreamKey{SSRC: r.Z.RTP.SSRC, Type: r.Z.Media.Type}
	case r.Z.Media.Type.IsRTCP() && len(r.Z.RTCP.SenderReports) > 0:
		// Attribute the report to the stream it describes. RTCP SRs for a
		// media stream use the media type of their carrying encapsulation
		// only (33/34), so find any existing stream on this flow with the
		// SSRC.
		ssrc := r.Z.RTCP.SenderReports[0].SSRC
		if s := t.findStreamBySSRC(r.Flow, ssrc); s != nil {
			s.RTCPPackets++
			s.LastSeen = r.Time
			return s
		}
		return nil
	default:
		return nil
	}

	id := MediaStreamID{Flow: r.Flow, Key: key}
	s := t.streams[id]
	if s == nil {
		s = &StreamStats{
			ID:                id,
			FirstSeen:         r.Time,
			FirstRTPTimestamp: r.Z.RTP.Timestamp,
			FirstSeq:          r.Z.RTP.SequenceNumber,
			Substreams:        make(map[uint8]*SubstreamStats),
		}
		t.streams[id] = s
	}
	s.LastSeen = r.Time
	s.Packets++
	s.WireBytes += uint64(r.WireLen)
	s.MediaBytes += uint64(len(r.Z.RTP.Payload))
	s.LastRTPTimestamp = r.Z.RTP.Timestamp
	s.LastSeq = r.Z.RTP.SequenceNumber
	sub := s.Substreams[r.Z.RTP.PayloadType]
	if sub == nil {
		sub = &SubstreamStats{PayloadType: r.Z.RTP.PayloadType}
		s.Substreams[r.Z.RTP.PayloadType] = sub
	}
	sub.Packets++
	sub.Bytes += uint64(len(r.Z.RTP.Payload))
	return s
}

func (t *Table) findStreamBySSRC(ft layers.FiveTuple, ssrc uint32) *StreamStats {
	for _, mt := range []zoom.MediaType{zoom.TypeVideo, zoom.TypeAudio, zoom.TypeScreenShare} {
		if s, ok := t.streams[MediaStreamID{Flow: ft, Key: zoom.StreamKey{SSRC: ssrc, Type: mt}}]; ok {
			return s
		}
	}
	return nil
}

// Flows returns all flow records, ordered by first-seen time. Flow keys
// are rendered once before sorting: String() inside the comparator would
// allocate O(n log n) strings.
func (t *Table) Flows() []*FlowStats {
	out := make([]*FlowStats, 0, len(t.flows))
	keys := make(map[*FlowStats]string, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
		keys[f] = f.Flow.String()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return keys[out[i]] < keys[out[j]]
	})
	return out
}

// Streams returns all stream records, ordered by first-seen time.
func (t *Table) Streams() []*StreamStats {
	out := make([]*StreamStats, 0, len(t.streams))
	keys := make(map[*StreamStats]string, len(t.streams))
	for _, s := range t.streams {
		out = append(out, s)
		keys[s] = s.ID.Flow.String()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		if out[i].ID.Key.SSRC != out[j].ID.Key.SSRC {
			return out[i].ID.Key.SSRC < out[j].ID.Key.SSRC
		}
		return keys[out[i]] < keys[out[j]]
	})
	return out
}

// Absorb merges src's flows, streams, and totals into t, leaving src
// unchanged. The sharded parallel analyzer calls it at merge time; shard
// tables are keyed by disjoint five-tuple sets there, but overlapping
// keys are combined correctly anyway (counters summed, first/last seen
// widened) so Absorb is safe for general table union.
func (t *Table) Absorb(src *Table) {
	t.totalPackets += src.totalPackets
	t.totalBytes += src.totalBytes
	for k, f := range src.flows {
		dst := t.flows[k]
		if dst == nil {
			t.flows[k] = f
			continue
		}
		if f.FirstSeen.Before(dst.FirstSeen) {
			dst.FirstSeen = f.FirstSeen
		}
		if f.LastSeen.After(dst.LastSeen) {
			dst.LastSeen = f.LastSeen
		}
		dst.Packets += f.Packets
		dst.WireBytes += f.WireBytes
		dst.ServerBased += f.ServerBased
		dst.P2P += f.P2P
		for mt, n := range f.ByEncapType {
			dst.ByEncapType[mt] += n
		}
	}
	for k, s := range src.streams {
		dst := t.streams[k]
		if dst == nil {
			t.streams[k] = s
			continue
		}
		if s.FirstSeen.Before(dst.FirstSeen) {
			dst.FirstSeen = s.FirstSeen
			dst.FirstRTPTimestamp = s.FirstRTPTimestamp
			dst.FirstSeq = s.FirstSeq
		}
		if s.LastSeen.After(dst.LastSeen) {
			dst.LastSeen = s.LastSeen
			dst.LastRTPTimestamp = s.LastRTPTimestamp
			dst.LastSeq = s.LastSeq
		}
		dst.Packets += s.Packets
		dst.WireBytes += s.WireBytes
		dst.MediaBytes += s.MediaBytes
		dst.RTCPPackets += s.RTCPPackets
		for pt, sub := range s.Substreams {
			d := dst.Substreams[pt]
			if d == nil {
				dst.Substreams[pt] = sub
				continue
			}
			d.Packets += sub.Packets
			d.Bytes += sub.Bytes
		}
	}
}

// Stream looks up one stream record.
func (t *Table) Stream(id MediaStreamID) (*StreamStats, bool) {
	s, ok := t.streams[id]
	return s, ok
}

// Totals summarizes the table for the Table 6 reproduction.
type Totals struct {
	Packets uint64
	Bytes   uint64
	Flows   int
	Streams int
}

// Totals returns the capture summary counters.
func (t *Table) Totals() Totals {
	return Totals{
		Packets: t.totalPackets,
		Bytes:   t.totalBytes,
		Flows:   len(t.flows),
		Streams: len(t.streams),
	}
}

// EncapTypeShare is one row of the Table 2 reproduction.
type EncapTypeShare struct {
	Type       zoom.MediaType
	Packets    uint64
	Bytes      uint64
	PacketsPct float64
	BytesPct   float64
}

// EncapShares aggregates packet and byte shares by media encapsulation
// type across all flows (Table 2). totalPackets/totalBytes are the
// denominators; pass the capture totals including undecodable packets to
// match the paper's accounting.
func (t *Table) EncapShares(totalPackets, totalBytes uint64) []EncapTypeShare {
	type agg struct{ pkts, bytes uint64 }
	byType := map[zoom.MediaType]*agg{}
	for _, s := range t.streams {
		a := byType[s.ID.Key.Type]
		if a == nil {
			a = &agg{}
			byType[s.ID.Key.Type] = a
		}
		a.pkts += s.Packets
		a.bytes += s.WireBytes
	}
	// RTCP packets are not in stream records' packet counts; count them
	// from flows.
	for _, f := range t.flows {
		for mt, n := range f.ByEncapType {
			if !mt.IsRTCP() {
				continue
			}
			a := byType[mt]
			if a == nil {
				a = &agg{}
				byType[mt] = a
			}
			a.pkts += n
		}
	}
	out := make([]EncapTypeShare, 0, len(byType))
	for mt, a := range byType {
		share := EncapTypeShare{Type: mt, Packets: a.pkts, Bytes: a.bytes}
		if totalPackets > 0 {
			share.PacketsPct = 100 * float64(a.pkts) / float64(totalPackets)
		}
		if totalBytes > 0 {
			share.BytesPct = 100 * float64(a.bytes) / float64(totalBytes)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Packets > out[j].Packets })
	return out
}

// PayloadTypeShare is one row of the Table 3 reproduction.
type PayloadTypeShare struct {
	Media       zoom.MediaType
	PayloadType uint8
	Substream   zoom.Substream
	Packets     uint64
	Bytes       uint64
	PacketsPct  float64
	BytesPct    float64
}

// PayloadTypeShares aggregates substream shares by (media type, RTP PT)
// across all streams (Table 3).
func (t *Table) PayloadTypeShares(totalPackets, totalBytes uint64) []PayloadTypeShare {
	type key struct {
		mt zoom.MediaType
		pt uint8
	}
	type agg struct{ pkts, bytes uint64 }
	byKey := map[key]*agg{}
	for _, s := range t.streams {
		for pt, sub := range s.Substreams {
			k := key{s.ID.Key.Type, pt}
			a := byKey[k]
			if a == nil {
				a = &agg{}
				byKey[k] = a
			}
			a.pkts += sub.Packets
			a.bytes += sub.Bytes
		}
	}
	out := make([]PayloadTypeShare, 0, len(byKey))
	for k, a := range byKey {
		share := PayloadTypeShare{
			Media:       k.mt,
			PayloadType: k.pt,
			Substream:   zoom.ClassifySubstream(k.mt, k.pt),
			Packets:     a.pkts,
			Bytes:       a.bytes,
		}
		if totalPackets > 0 {
			share.PacketsPct = 100 * float64(a.pkts) / float64(totalPackets)
		}
		if totalBytes > 0 {
			share.BytesPct = 100 * float64(a.bytes) / float64(totalBytes)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Packets > out[j].Packets })
	return out
}
