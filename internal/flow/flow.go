// Package flow tracks the aggregation levels of Figure 6 in the paper:
// UDP flows (IP 5-tuples) carry media streams (identified by SSRC and
// Zoom media type), each of which carries up to three substreams
// (identified by RTP payload type), which in turn carry frames
// (identified by RTP timestamp) split across packets (identified by RTP
// sequence number).
//
// The Table keeps per-flow and per-stream accounting used by the Table
// 2/3/6 reproductions and hands structured records to downstream
// consumers (meeting grouping, metrics).
package flow

import (
	"sort"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/zoom"
)

// Record is one parsed Zoom packet in its flow context. It is the unit
// handed to metric engines and the meeting-grouping heuristic.
type Record struct {
	Time time.Time
	Flow layers.FiveTuple
	// WireLen is the full frame length on the wire, for overall bit
	// rates (§5.1).
	WireLen int
	// UDPPayloadLen is the Zoom payload length.
	UDPPayloadLen int
	// Proto tags the protocol plugin (rtcproto.ID) whose decoder
	// produced Z; it becomes part of every StreamKey the record creates.
	Proto uint8
	// Z is the parsed media packet, normalized to the Zoom container by
	// the decoding plugin.
	Z zoom.Packet
}

// MediaStreamID identifies a media stream at the vantage point: the same
// SSRC+type can legitimately appear on several flows (stream copies
// forwarded by the SFU, or an SFU→P2P transition), which step 1 of the
// grouping heuristic detects (§4.3.2).
type MediaStreamID struct {
	Flow layers.FiveTuple
	Key  zoom.StreamKey
}

// SubstreamStats accumulates per-payload-type counters within a stream.
type SubstreamStats struct {
	PayloadType uint8
	Packets     uint64
	Bytes       uint64 // RTP payload bytes
}

// StreamStats is the per-media-stream accounting record.
type StreamStats struct {
	ID         MediaStreamID
	FirstSeen  time.Time
	LastSeen   time.Time
	Packets    uint64
	WireBytes  uint64
	MediaBytes uint64 // RTP payload bytes across substreams
	// FirstRTPTimestamp and LastRTPTimestamp are the stream's RTP
	// timestamp range, consumed by duplicate-stream detection.
	FirstRTPTimestamp uint32
	LastRTPTimestamp  uint32
	FirstSeq          uint16
	LastSeq           uint16
	Substreams        map[uint8]*SubstreamStats
	RTCPPackets       uint64

	// dirty marks the record as mutated since the last checkpoint encode
	// (delta checkpoints re-serialize only dirty records).
	dirty bool
}

// FlowStats is the per-5-tuple accounting record.
type FlowStats struct {
	Flow        layers.FiveTuple
	FirstSeen   time.Time
	LastSeen    time.Time
	Packets     uint64
	WireBytes   uint64
	ServerBased uint64 // packets with an SFU encapsulation
	P2P         uint64
	// ByEncapType counts packets per media encapsulation type value
	// (Table 2).
	ByEncapType map[zoom.MediaType]uint64

	// dirty marks the record as mutated since the last checkpoint encode.
	dirty bool
}

// Limits bounds the table's hot maps for long-lived deployments: a
// production tap must keep memory flat under a flood of garbage or
// hostile five-tuples. Zero values mean unlimited (the default, matching
// one-shot trace analysis).
type Limits struct {
	// MaxFlows caps the number of live flow entries. A packet for a new
	// flow arriving at the cap is counted (RejectedFlowPackets) but
	// creates no state; idle-TTL eviction frees room over time.
	MaxFlows int
	// MaxStreams caps live media-stream entries the same way.
	MaxStreams int
	// MaxSubstreams caps substream entries per stream (the RTP payload
	// type byte offers 128 values to an attacker; real Zoom streams use
	// at most three).
	MaxSubstreams int
}

// EvictionStats reports what bounded-state enforcement did, so capped
// runs surface what was aged out or turned away instead of dropping it
// silently.
type EvictionStats struct {
	// EvictedFlows and EvictedStreams count entries removed by EvictIdle.
	// Their packet/byte contributions remain in Totals and in the Table
	// 2/3 share aggregates.
	EvictedFlows   uint64
	EvictedStreams uint64
	// RejectedFlowPackets counts packets that would have created a flow
	// beyond MaxFlows; RejectedStreamPackets and RejectedSubstreamPackets
	// likewise for streams and substreams.
	RejectedFlowPackets      uint64
	RejectedStreamPackets    uint64
	RejectedSubstreamPackets uint64
}

type ptKey struct {
	mt zoom.MediaType
	pt uint8
}

type shareAgg struct{ pkts, bytes uint64 }

// Table demultiplexes records into flows and streams.
type Table struct {
	flows   map[layers.FiveTuple]*FlowStats
	streams map[MediaStreamID]*StreamStats

	// Totals for Table 2/6.
	totalPackets uint64
	totalBytes   uint64

	limits Limits
	ev     EvictionStats
	// evictedEncap and evictedPT preserve the Table 2/3 contributions of
	// evicted entries so the final report counts them.
	evictedEncap map[zoom.MediaType]*shareAgg
	evictedPT    map[ptKey]*shareAgg

	// Delta-checkpoint tracking (see delta.go). armed turns on deletion
	// tombstones; it is set by the first checkpoint encode, so runs that
	// never checkpoint pay nothing.
	armed       bool
	overflow    bool
	deadFlows   []layers.FiveTuple
	deadStreams []MediaStreamID
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{
		flows:   make(map[layers.FiveTuple]*FlowStats),
		streams: make(map[MediaStreamID]*StreamStats),
	}
}

// SetLimits installs state bounds; it can be called once, before any
// record is observed.
func (t *Table) SetLimits(l Limits) { t.limits = l }

// Evictions returns the bounded-state counters.
func (t *Table) Evictions() EvictionStats { return t.ev }

// Observe ingests one record, updating flow and stream state. It returns
// the stream's stats entry (nil for RTCP-only bookkeeping is never nil:
// RTCP packets are attributed to the stream of their first referenced
// SSRC when one exists).
func (t *Table) Observe(r *Record) *StreamStats {
	t.totalPackets++
	t.totalBytes += uint64(r.WireLen)

	f := t.flows[r.Flow]
	if f == nil {
		if t.limits.MaxFlows > 0 && len(t.flows) >= t.limits.MaxFlows {
			t.ev.RejectedFlowPackets++
			return nil
		}
		f = &FlowStats{Flow: r.Flow, FirstSeen: r.Time, ByEncapType: make(map[zoom.MediaType]uint64)}
		t.flows[r.Flow] = f
	}
	f.LastSeen = r.Time
	f.dirty = true
	f.Packets++
	f.WireBytes += uint64(r.WireLen)
	f.ByEncapType[r.Z.Media.Type]++
	if r.Z.ServerBased {
		f.ServerBased++
	} else {
		f.P2P++
	}

	var key zoom.StreamKey
	switch {
	case r.Z.IsMedia():
		key = zoom.StreamKey{SSRC: r.Z.RTP.SSRC, Type: r.Z.Media.Type, Proto: r.Proto}
	case r.Z.Media.Type.IsRTCP() && len(r.Z.RTCP.SenderReports) > 0:
		// Attribute the report to the stream it describes. RTCP SRs for a
		// media stream use the media type of their carrying encapsulation
		// only (33/34), so find any existing stream on this flow with the
		// SSRC.
		ssrc := r.Z.RTCP.SenderReports[0].SSRC
		if s := t.findStreamBySSRC(r.Flow, ssrc, r.Proto); s != nil {
			s.RTCPPackets++
			s.LastSeen = r.Time
			s.dirty = true
			return s
		}
		return nil
	default:
		return nil
	}

	id := MediaStreamID{Flow: r.Flow, Key: key}
	s := t.streams[id]
	if s == nil {
		if t.limits.MaxStreams > 0 && len(t.streams) >= t.limits.MaxStreams {
			t.ev.RejectedStreamPackets++
			return nil
		}
		s = &StreamStats{
			ID:                id,
			FirstSeen:         r.Time,
			FirstRTPTimestamp: r.Z.RTP.Timestamp,
			FirstSeq:          r.Z.RTP.SequenceNumber,
			Substreams:        make(map[uint8]*SubstreamStats),
		}
		t.streams[id] = s
	}
	s.LastSeen = r.Time
	s.dirty = true
	s.Packets++
	s.WireBytes += uint64(r.WireLen)
	s.MediaBytes += uint64(len(r.Z.RTP.Payload))
	s.LastRTPTimestamp = r.Z.RTP.Timestamp
	s.LastSeq = r.Z.RTP.SequenceNumber
	sub := s.Substreams[r.Z.RTP.PayloadType]
	if sub == nil {
		if t.limits.MaxSubstreams > 0 && len(s.Substreams) >= t.limits.MaxSubstreams {
			t.ev.RejectedSubstreamPackets++
			return s
		}
		sub = &SubstreamStats{PayloadType: r.Z.RTP.PayloadType}
		s.Substreams[r.Z.RTP.PayloadType] = sub
	}
	sub.Packets++
	sub.Bytes += uint64(len(r.Z.RTP.Payload))
	return s
}

// EvictIdle removes every flow and stream whose last packet is not after
// cutoff, folding their Table 2/3 contributions into hidden aggregates so
// EncapShares, PayloadTypeShares, and Totals still count them. It returns
// the number of flows and streams evicted. Because a flow's LastSeen is
// at least as recent as any of its streams', a pass never evicts a flow
// while keeping one of its streams.
func (t *Table) EvictIdle(cutoff time.Time) (flows, streams int) {
	for id, s := range t.streams {
		if s.LastSeen.After(cutoff) {
			continue
		}
		t.foldStream(s)
		delete(t.streams, id)
		t.tombstoneStream(id)
		t.ev.EvictedStreams++
		streams++
	}
	for k, f := range t.flows {
		if f.LastSeen.After(cutoff) {
			continue
		}
		t.foldFlow(f)
		delete(t.flows, k)
		t.tombstoneFlow(k)
		t.ev.EvictedFlows++
		flows++
	}
	return flows, streams
}

func (t *Table) evictedEncapAgg(mt zoom.MediaType) *shareAgg {
	if t.evictedEncap == nil {
		t.evictedEncap = make(map[zoom.MediaType]*shareAgg)
	}
	a := t.evictedEncap[mt]
	if a == nil {
		a = &shareAgg{}
		t.evictedEncap[mt] = a
	}
	return a
}

func (t *Table) foldStream(s *StreamStats) {
	a := t.evictedEncapAgg(s.ID.Key.Type)
	a.pkts += s.Packets
	a.bytes += s.WireBytes
	if t.evictedPT == nil {
		t.evictedPT = make(map[ptKey]*shareAgg)
	}
	for pt, sub := range s.Substreams {
		k := ptKey{s.ID.Key.Type, pt}
		p := t.evictedPT[k]
		if p == nil {
			p = &shareAgg{}
			t.evictedPT[k] = p
		}
		p.pkts += sub.Packets
		p.bytes += sub.Bytes
	}
}

func (t *Table) foldFlow(f *FlowStats) {
	// Streams carry their own packet counts; a flow's independent Table 2
	// contribution is its RTCP packets (EncapShares counts those from
	// flows, not streams).
	for mt, n := range f.ByEncapType {
		if !mt.IsRTCP() {
			continue
		}
		t.evictedEncapAgg(mt).pkts += n
	}
}

func (t *Table) findStreamBySSRC(ft layers.FiveTuple, ssrc uint32, proto uint8) *StreamStats {
	for _, mt := range []zoom.MediaType{zoom.TypeVideo, zoom.TypeAudio, zoom.TypeScreenShare} {
		if s, ok := t.streams[MediaStreamID{Flow: ft, Key: zoom.StreamKey{SSRC: ssrc, Type: mt, Proto: proto}}]; ok {
			return s
		}
	}
	return nil
}

// Flows returns all flow records, ordered by first-seen time. Flow keys
// are rendered once before sorting: String() inside the comparator would
// allocate O(n log n) strings.
func (t *Table) Flows() []*FlowStats {
	out := make([]*FlowStats, 0, len(t.flows))
	keys := make(map[*FlowStats]string, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
		keys[f] = f.Flow.String()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		return keys[out[i]] < keys[out[j]]
	})
	return out
}

// Streams returns all stream records, ordered by first-seen time.
func (t *Table) Streams() []*StreamStats {
	out := make([]*StreamStats, 0, len(t.streams))
	keys := make(map[*StreamStats]string, len(t.streams))
	for _, s := range t.streams {
		out = append(out, s)
		keys[s] = s.ID.Flow.String()
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].FirstSeen.Equal(out[j].FirstSeen) {
			return out[i].FirstSeen.Before(out[j].FirstSeen)
		}
		if out[i].ID.Key.SSRC != out[j].ID.Key.SSRC {
			return out[i].ID.Key.SSRC < out[j].ID.Key.SSRC
		}
		return keys[out[i]] < keys[out[j]]
	})
	return out
}

// Absorb merges src's flows, streams, and totals into t, leaving src
// unchanged. The sharded parallel analyzer calls it at merge time; shard
// tables are keyed by disjoint five-tuple sets there, but overlapping
// keys are combined correctly anyway (counters summed, first/last seen
// widened) so Absorb is safe for general table union.
func (t *Table) Absorb(src *Table) {
	t.totalPackets += src.totalPackets
	t.totalBytes += src.totalBytes
	t.ev.EvictedFlows += src.ev.EvictedFlows
	t.ev.EvictedStreams += src.ev.EvictedStreams
	t.ev.RejectedFlowPackets += src.ev.RejectedFlowPackets
	t.ev.RejectedStreamPackets += src.ev.RejectedStreamPackets
	t.ev.RejectedSubstreamPackets += src.ev.RejectedSubstreamPackets
	for mt, a := range src.evictedEncap {
		d := t.evictedEncapAgg(mt)
		d.pkts += a.pkts
		d.bytes += a.bytes
	}
	for k, a := range src.evictedPT {
		if t.evictedPT == nil {
			t.evictedPT = make(map[ptKey]*shareAgg)
		}
		d := t.evictedPT[k]
		if d == nil {
			d = &shareAgg{}
			t.evictedPT[k] = d
		}
		d.pkts += a.pkts
		d.bytes += a.bytes
	}
	for k, f := range src.flows {
		dst := t.flows[k]
		if dst == nil {
			t.flows[k] = f
			continue
		}
		if f.FirstSeen.Before(dst.FirstSeen) {
			dst.FirstSeen = f.FirstSeen
		}
		if f.LastSeen.After(dst.LastSeen) {
			dst.LastSeen = f.LastSeen
		}
		dst.Packets += f.Packets
		dst.WireBytes += f.WireBytes
		dst.ServerBased += f.ServerBased
		dst.P2P += f.P2P
		for mt, n := range f.ByEncapType {
			dst.ByEncapType[mt] += n
		}
	}
	for k, s := range src.streams {
		dst := t.streams[k]
		if dst == nil {
			t.streams[k] = s
			continue
		}
		if s.FirstSeen.Before(dst.FirstSeen) {
			dst.FirstSeen = s.FirstSeen
			dst.FirstRTPTimestamp = s.FirstRTPTimestamp
			dst.FirstSeq = s.FirstSeq
		}
		if s.LastSeen.After(dst.LastSeen) {
			dst.LastSeen = s.LastSeen
			dst.LastRTPTimestamp = s.LastRTPTimestamp
			dst.LastSeq = s.LastSeq
		}
		dst.Packets += s.Packets
		dst.WireBytes += s.WireBytes
		dst.MediaBytes += s.MediaBytes
		dst.RTCPPackets += s.RTCPPackets
		for pt, sub := range s.Substreams {
			d := dst.Substreams[pt]
			if d == nil {
				dst.Substreams[pt] = sub
				continue
			}
			d.Packets += sub.Packets
			d.Bytes += sub.Bytes
		}
	}
}

// Stream looks up one stream record.
func (t *Table) Stream(id MediaStreamID) (*StreamStats, bool) {
	s, ok := t.streams[id]
	return s, ok
}

// Totals summarizes the table for the Table 6 reproduction.
type Totals struct {
	Packets uint64
	Bytes   uint64
	Flows   int
	Streams int
}

// Totals returns the capture summary counters.
func (t *Table) Totals() Totals {
	return Totals{
		Packets: t.totalPackets,
		Bytes:   t.totalBytes,
		Flows:   len(t.flows),
		Streams: len(t.streams),
	}
}

// EncapTypeShare is one row of the Table 2 reproduction.
type EncapTypeShare struct {
	Type       zoom.MediaType
	Packets    uint64
	Bytes      uint64
	PacketsPct float64
	BytesPct   float64
}

// EncapShares aggregates packet and byte shares by media encapsulation
// type across all flows (Table 2). totalPackets/totalBytes are the
// denominators; pass the capture totals including undecodable packets to
// match the paper's accounting.
func (t *Table) EncapShares(totalPackets, totalBytes uint64) []EncapTypeShare {
	type agg struct{ pkts, bytes uint64 }
	byType := map[zoom.MediaType]*agg{}
	for _, s := range t.streams {
		a := byType[s.ID.Key.Type]
		if a == nil {
			a = &agg{}
			byType[s.ID.Key.Type] = a
		}
		a.pkts += s.Packets
		a.bytes += s.WireBytes
	}
	// RTCP packets are not in stream records' packet counts; count them
	// from flows.
	for _, f := range t.flows {
		for mt, n := range f.ByEncapType {
			if !mt.IsRTCP() {
				continue
			}
			a := byType[mt]
			if a == nil {
				a = &agg{}
				byType[mt] = a
			}
			a.pkts += n
		}
	}
	// Evicted entries still count toward the report.
	for mt, ea := range t.evictedEncap {
		a := byType[mt]
		if a == nil {
			a = &agg{}
			byType[mt] = a
		}
		a.pkts += ea.pkts
		a.bytes += ea.bytes
	}
	out := make([]EncapTypeShare, 0, len(byType))
	for mt, a := range byType {
		share := EncapTypeShare{Type: mt, Packets: a.pkts, Bytes: a.bytes}
		if totalPackets > 0 {
			share.PacketsPct = 100 * float64(a.pkts) / float64(totalPackets)
		}
		if totalBytes > 0 {
			share.BytesPct = 100 * float64(a.bytes) / float64(totalBytes)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Packets > out[j].Packets })
	return out
}

// PayloadTypeShare is one row of the Table 3 reproduction.
type PayloadTypeShare struct {
	Media       zoom.MediaType
	PayloadType uint8
	Substream   zoom.Substream
	Packets     uint64
	Bytes       uint64
	PacketsPct  float64
	BytesPct    float64
}

// PayloadTypeShares aggregates substream shares by (media type, RTP PT)
// across all streams (Table 3).
func (t *Table) PayloadTypeShares(totalPackets, totalBytes uint64) []PayloadTypeShare {
	type agg struct{ pkts, bytes uint64 }
	byKey := map[ptKey]*agg{}
	for _, s := range t.streams {
		for pt, sub := range s.Substreams {
			k := ptKey{s.ID.Key.Type, pt}
			a := byKey[k]
			if a == nil {
				a = &agg{}
				byKey[k] = a
			}
			a.pkts += sub.Packets
			a.bytes += sub.Bytes
		}
	}
	// Evicted substreams still count toward the report.
	for k, ea := range t.evictedPT {
		a := byKey[k]
		if a == nil {
			a = &agg{}
			byKey[k] = a
		}
		a.pkts += ea.pkts
		a.bytes += ea.bytes
	}
	out := make([]PayloadTypeShare, 0, len(byKey))
	for k, a := range byKey {
		share := PayloadTypeShare{
			Media:       k.mt,
			PayloadType: k.pt,
			Substream:   zoom.ClassifySubstream(k.mt, k.pt),
			Packets:     a.pkts,
			Bytes:       a.bytes,
		}
		if totalPackets > 0 {
			share.PacketsPct = 100 * float64(a.pkts) / float64(totalPackets)
		}
		if totalBytes > 0 {
			share.BytesPct = 100 * float64(a.bytes) / float64(totalBytes)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Packets > out[j].Packets })
	return out
}
