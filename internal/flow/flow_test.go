package flow

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

var (
	t0  = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	ftA = layers.FiveTuple{
		Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"),
		SrcPort: 52000, DstPort: 8801, Proto: layers.ProtoUDP,
	}
	ftB = layers.FiveTuple{
		Src: netip.MustParseAddr("52.81.3.4"), Dst: netip.MustParseAddr("10.8.9.9"),
		SrcPort: 8801, DstPort: 61000, Proto: layers.ProtoUDP,
	}
)

func mediaRecord(ft layers.FiveTuple, at time.Time, mt zoom.MediaType, pt uint8, ssrc uint32, seq uint16, ts uint32, payloadLen int) *Record {
	z := zoom.Packet{
		ServerBased: true,
		SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia},
		Media:       zoom.MediaEncap{Type: mt, Sequence: seq, Timestamp: ts},
		RTP: rtp.Packet{
			Header:  rtp.Header{PayloadType: pt, SequenceNumber: seq, Timestamp: ts, SSRC: ssrc},
			Payload: make([]byte, payloadLen),
		},
	}
	if mt == zoom.TypeVideo {
		z.Media.FrameSequence = seq
		z.Media.PacketsInFrame = 1
	}
	return &Record{Time: at, Flow: ft, WireLen: payloadLen + 70, UDPPayloadLen: payloadLen + 36, Z: z}
}

func rtcpRecord(ft layers.FiveTuple, at time.Time, ssrc uint32) *Record {
	z := zoom.Packet{
		ServerBased: true,
		SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia},
		Media:       zoom.MediaEncap{Type: zoom.TypeRTCPSR},
		RTCP:        rtp.CompoundPacket{SenderReports: []rtp.SenderReport{{SSRC: ssrc}}},
	}
	return &Record{Time: at, Flow: ft, WireLen: 90, UDPPayloadLen: 56, Z: z}
}

func TestObserveBuildsStreamsAndSubstreams(t *testing.T) {
	tbl := NewTable()
	// Video stream: main + FEC substreams over one flow.
	for i := 0; i < 10; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*33*time.Millisecond), zoom.TypeVideo, zoom.PTVideoMain, 100, uint16(i), uint32(i*2970), 1000))
	}
	for i := 0; i < 3; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*100*time.Millisecond), zoom.TypeVideo, zoom.PTFEC, 100, uint16(1000+i), uint32(i*2970), 400))
	}
	// Audio stream on the same flow, different SSRC.
	for i := 0; i < 5; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*20*time.Millisecond), zoom.TypeAudio, zoom.PTAudioSpeak, 101, uint16(i), uint32(i*320), 120))
	}

	streams := tbl.Streams()
	if len(streams) != 2 {
		t.Fatalf("streams = %d, want 2", len(streams))
	}
	var video, audio *StreamStats
	for _, s := range streams {
		switch s.ID.Key.Type {
		case zoom.TypeVideo:
			video = s
		case zoom.TypeAudio:
			audio = s
		}
	}
	if video == nil || audio == nil {
		t.Fatal("missing stream kind")
	}
	if video.Packets != 13 {
		t.Errorf("video packets = %d, want 13", video.Packets)
	}
	if len(video.Substreams) != 2 {
		t.Errorf("video substreams = %d, want 2", len(video.Substreams))
	}
	if video.Substreams[zoom.PTVideoMain].Packets != 10 || video.Substreams[zoom.PTFEC].Packets != 3 {
		t.Errorf("substream split = %+v", video.Substreams)
	}
	if video.MediaBytes != 10*1000+3*400 {
		t.Errorf("video media bytes = %d", video.MediaBytes)
	}
	if audio.Packets != 5 || audio.Substreams[zoom.PTAudioSpeak].Bytes != 600 {
		t.Errorf("audio = %+v", audio)
	}
	if got := tbl.Totals(); got.Flows != 1 || got.Streams != 2 || got.Packets != 18 {
		t.Errorf("totals = %+v", got)
	}
}

func TestSameSSRCDifferentFlowsAreDistinctStreams(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(mediaRecord(ftA, t0, zoom.TypeVideo, zoom.PTVideoMain, 100, 1, 100, 900))
	tbl.Observe(mediaRecord(ftB, t0.Add(20*time.Millisecond), zoom.TypeVideo, zoom.PTVideoMain, 100, 1, 100, 900))
	if got := len(tbl.Streams()); got != 2 {
		t.Errorf("streams = %d, want 2 (SFU copy is a distinct stream record)", got)
	}
}

func TestRTCPAttributedToStream(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(mediaRecord(ftA, t0, zoom.TypeVideo, zoom.PTVideoMain, 100, 1, 100, 900))
	s := tbl.Observe(rtcpRecord(ftA, t0.Add(time.Second), 100))
	if s == nil {
		t.Fatal("RTCP not attributed")
	}
	if s.RTCPPackets != 1 {
		t.Errorf("RTCPPackets = %d", s.RTCPPackets)
	}
	// RTCP for an unknown SSRC returns nil but still counts at flow level.
	if got := tbl.Observe(rtcpRecord(ftA, t0.Add(2*time.Second), 999)); got != nil {
		t.Errorf("unknown-SSRC RTCP attributed to %+v", got.ID)
	}
	flows := tbl.Flows()
	if len(flows) != 1 {
		t.Fatalf("flows = %d", len(flows))
	}
	if flows[0].ByEncapType[zoom.TypeRTCPSR] != 2 {
		t.Errorf("RTCP count = %d", flows[0].ByEncapType[zoom.TypeRTCPSR])
	}
}

func TestEncapSharesTable2Shape(t *testing.T) {
	tbl := NewTable()
	// Construct a trace skewed like Table 2: video dominates packets and
	// bytes, audio second, screen share third, RTCP <1 %.
	for i := 0; i < 660; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*time.Millisecond), zoom.TypeVideo, zoom.PTVideoMain, 1, uint16(i), uint32(i), 1100))
	}
	for i := 0; i < 280; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*time.Millisecond), zoom.TypeAudio, zoom.PTAudioSpeak, 2, uint16(i), uint32(i), 120))
	}
	for i := 0; i < 40; i++ {
		tbl.Observe(mediaRecord(ftA, t0.Add(time.Duration(i)*time.Millisecond), zoom.TypeScreenShare, zoom.PTScreenShare, 3, uint16(i), uint32(i), 800))
	}
	for i := 0; i < 10; i++ {
		tbl.Observe(rtcpRecord(ftA, t0.Add(time.Duration(i)*time.Second), 1))
	}
	tot := tbl.Totals()
	shares := tbl.EncapShares(tot.Packets, tot.Bytes)
	if shares[0].Type != zoom.TypeVideo {
		t.Errorf("most common type = %v, want video", shares[0].Type)
	}
	var pctSum float64
	byType := map[zoom.MediaType]EncapTypeShare{}
	for _, s := range shares {
		byType[s.Type] = s
		pctSum += s.PacketsPct
	}
	if pctSum < 99.9 || pctSum > 100.1 {
		t.Errorf("packet pct sum = %f", pctSum)
	}
	if !(byType[zoom.TypeVideo].BytesPct > byType[zoom.TypeAudio].BytesPct) {
		t.Error("video should dominate bytes")
	}
	if byType[zoom.TypeRTCPSR].PacketsPct > 2 {
		t.Errorf("RTCP packet share = %f%%, want tiny", byType[zoom.TypeRTCPSR].PacketsPct)
	}
}

func TestPayloadTypeSharesTable3Shape(t *testing.T) {
	tbl := NewTable()
	for i := 0; i < 620; i++ {
		tbl.Observe(mediaRecord(ftA, t0, zoom.TypeVideo, zoom.PTVideoMain, 1, uint16(i), uint32(i), 1100))
	}
	for i := 0; i < 61; i++ {
		tbl.Observe(mediaRecord(ftA, t0, zoom.TypeVideo, zoom.PTFEC, 1, uint16(2000+i), uint32(i), 1000))
	}
	for i := 0; i < 220; i++ {
		tbl.Observe(mediaRecord(ftA, t0, zoom.TypeAudio, zoom.PTAudioSpeak, 2, uint16(i), uint32(i), 120))
	}
	for i := 0; i < 26; i++ {
		tbl.Observe(mediaRecord(ftA, t0, zoom.TypeAudio, zoom.PTAudioSilent, 2, uint16(3000+i), uint32(i), zoom.SilentAudioPayloadLen))
	}
	tot := tbl.Totals()
	shares := tbl.PayloadTypeShares(tot.Packets, tot.Bytes)
	if len(shares) != 4 {
		t.Fatalf("shares = %d, want 4", len(shares))
	}
	if shares[0].Substream != zoom.SubVideoMain {
		t.Errorf("top substream = %v", shares[0].Substream)
	}
	// The same PT value 99 must stay separated per media type.
	for _, s := range shares {
		if s.PayloadType == 99 && s.Media != zoom.TypeAudio {
			t.Errorf("PT 99 attributed to %v", s.Media)
		}
	}
}

func TestStreamTimestampRangeTracked(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(mediaRecord(ftA, t0, zoom.TypeVideo, zoom.PTVideoMain, 5, 10, 1000, 900))
	tbl.Observe(mediaRecord(ftA, t0.Add(33*time.Millisecond), zoom.TypeVideo, zoom.PTVideoMain, 5, 11, 3970, 900))
	s, ok := tbl.Stream(MediaStreamID{Flow: ftA, Key: zoom.StreamKey{SSRC: 5, Type: zoom.TypeVideo}})
	if !ok {
		t.Fatal("stream missing")
	}
	if s.FirstRTPTimestamp != 1000 || s.LastRTPTimestamp != 3970 {
		t.Errorf("ts range = [%d,%d]", s.FirstRTPTimestamp, s.LastRTPTimestamp)
	}
	if s.FirstSeq != 10 || s.LastSeq != 11 {
		t.Errorf("seq range = [%d,%d]", s.FirstSeq, s.LastSeq)
	}
}
