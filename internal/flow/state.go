package flow

import (
	"slices"

	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Checkpoint boundary for the flow table. Limits are configuration, not
// state: Restore keeps whatever SetLimits installed on the receiver, so
// a checkpoint taken under one deployment's caps restores cleanly under
// another's.

// tableStateV2 added the protocol byte inside every encoded
// zoom.StreamKey (the rtcproto plugin refactor). V1 state interleaves
// keys without it and cannot be decoded; it is rejected by version.
const (
	tableStateV1 = 1
	tableStateV2 = 2
)

// encodeFlowStats writes one flow record (key included).
func encodeFlowStats(w *statecodec.Writer, f *FlowStats) {
	f.Flow.EncodeTo(w)
	w.Time(f.FirstSeen)
	w.Time(f.LastSeen)
	w.U64(f.Packets)
	w.U64(f.WireBytes)
	w.U64(f.ServerBased)
	w.U64(f.P2P)
	var encapScratch [8]zoom.MediaType
	encapKeys := encapScratch[:0]
	for mt := range f.ByEncapType {
		encapKeys = append(encapKeys, mt)
	}
	slices.Sort(encapKeys)
	w.Int(len(encapKeys))
	for _, mt := range encapKeys {
		w.U8(uint8(mt))
		w.U64(f.ByEncapType[mt])
	}
}

// decodeFlowStatsInto fills f from the codec, returning its key.
func decodeFlowStatsInto(r *statecodec.Reader, f *FlowStats) layers.FiveTuple {
	k := layers.DecodeFiveTuple(r)
	f.Flow = k
	f.FirstSeen = r.Time()
	f.LastSeen = r.Time()
	f.Packets = r.U64()
	f.WireBytes = r.U64()
	f.ServerBased = r.U64()
	f.P2P = r.U64()
	ne := r.Count(2)
	f.ByEncapType = make(map[zoom.MediaType]uint64, ne)
	for j := 0; j < ne; j++ {
		mt := zoom.MediaType(r.U8())
		f.ByEncapType[mt] = r.U64()
	}
	return k
}

// encodeStreamStats writes one stream record (key included).
func encodeStreamStats(w *statecodec.Writer, s *StreamStats) {
	s.ID.Flow.EncodeTo(w)
	s.ID.Key.EncodeTo(w)
	w.Time(s.FirstSeen)
	w.Time(s.LastSeen)
	w.U64(s.Packets)
	w.U64(s.WireBytes)
	w.U64(s.MediaBytes)
	w.U32(s.FirstRTPTimestamp)
	w.U32(s.LastRTPTimestamp)
	w.U16(s.FirstSeq)
	w.U16(s.LastSeq)
	w.U64(s.RTCPPackets)
	var ptScratch [16]uint8
	pts := ptScratch[:0]
	for pt := range s.Substreams {
		pts = append(pts, pt)
	}
	slices.Sort(pts)
	w.Int(len(pts))
	for _, pt := range pts {
		sub := s.Substreams[pt]
		w.U8(pt)
		w.U64(sub.Packets)
		w.U64(sub.Bytes)
	}
}

// decodeStreamStatsInto fills s from the codec, drawing substream records
// from *subSlab (refilled in chunks), and returns the stream's key.
func decodeStreamStatsInto(r *statecodec.Reader, s *StreamStats, subSlab *[]SubstreamStats) MediaStreamID {
	id := MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
	s.ID = id
	s.FirstSeen = r.Time()
	s.LastSeen = r.Time()
	s.Packets = r.U64()
	s.WireBytes = r.U64()
	s.MediaBytes = r.U64()
	s.FirstRTPTimestamp = r.U32()
	s.LastRTPTimestamp = r.U32()
	s.FirstSeq = r.U16()
	s.LastSeq = r.U16()
	s.RTCPPackets = r.U64()
	np := r.Count(3)
	s.Substreams = make(map[uint8]*SubstreamStats, np)
	for j := 0; j < np; j++ {
		if len(*subSlab) == 0 {
			*subSlab = make([]SubstreamStats, 256)
		}
		sub := &(*subSlab)[0]
		*subSlab = (*subSlab)[1:]
		pt := r.U8()
		*sub = SubstreamStats{PayloadType: pt, Packets: r.U64(), Bytes: r.U64()}
		s.Substreams[pt] = sub
	}
	return id
}

// encodeShareAggs writes the evicted-entry share aggregates; both the
// full and delta codecs carry them whole (they are bounded by the small
// media-type / payload-type domains, not by stream count).
func (t *Table) encodeShareAggs(w *statecodec.Writer) {
	encapKeys := make([]zoom.MediaType, 0, len(t.evictedEncap))
	for mt := range t.evictedEncap {
		encapKeys = append(encapKeys, mt)
	}
	slices.Sort(encapKeys)
	w.Int(len(encapKeys))
	for _, mt := range encapKeys {
		a := t.evictedEncap[mt]
		w.U8(uint8(mt))
		w.U64(a.pkts)
		w.U64(a.bytes)
	}

	ptKeys := make([]ptKey, 0, len(t.evictedPT))
	for k := range t.evictedPT {
		ptKeys = append(ptKeys, k)
	}
	slices.SortFunc(ptKeys, func(a, b ptKey) int {
		if a.mt != b.mt {
			return int(a.mt) - int(b.mt)
		}
		return int(a.pt) - int(b.pt)
	})
	w.Int(len(ptKeys))
	for _, k := range ptKeys {
		a := t.evictedPT[k]
		w.U8(uint8(k.mt))
		w.U8(k.pt)
		w.U64(a.pkts)
		w.U64(a.bytes)
	}
}

func (t *Table) decodeShareAggs(r *statecodec.Reader) {
	nee := r.Count(3)
	t.evictedEncap = nil
	if nee > 0 {
		t.evictedEncap = make(map[zoom.MediaType]*shareAgg, nee)
	}
	for i := 0; i < nee; i++ {
		mt := zoom.MediaType(r.U8())
		t.evictedEncap[mt] = &shareAgg{pkts: r.U64(), bytes: r.U64()}
	}

	nep := r.Count(4)
	t.evictedPT = nil
	if nep > 0 {
		t.evictedPT = make(map[ptKey]*shareAgg, nep)
	}
	for i := 0; i < nep; i++ {
		k := ptKey{mt: zoom.MediaType(r.U8()), pt: r.U8()}
		t.evictedPT[k] = &shareAgg{pkts: r.U64(), bytes: r.U64()}
	}
}

func (t *Table) encodeScalars(w *statecodec.Writer) {
	w.U64(t.totalPackets)
	w.U64(t.totalBytes)
	w.U64(t.ev.EvictedFlows)
	w.U64(t.ev.EvictedStreams)
	w.U64(t.ev.RejectedFlowPackets)
	w.U64(t.ev.RejectedStreamPackets)
	w.U64(t.ev.RejectedSubstreamPackets)
}

func (t *Table) decodeScalars(r *statecodec.Reader) {
	t.totalPackets = r.U64()
	t.totalBytes = r.U64()
	t.ev.EvictedFlows = r.U64()
	t.ev.EvictedStreams = r.U64()
	t.ev.RejectedFlowPackets = r.U64()
	t.ev.RejectedStreamPackets = r.U64()
	t.ev.RejectedSubstreamPackets = r.U64()
}

// State encodes the table for a checkpoint. Maps are written in sorted
// key order so identical state yields identical bytes.
func (t *Table) State(w *statecodec.Writer) {
	w.U8(tableStateV2)
	t.encodeScalars(w)

	flowKeys := make([]layers.FiveTuple, 0, len(t.flows))
	for k := range t.flows {
		flowKeys = append(flowKeys, k)
	}
	slices.SortFunc(flowKeys, layers.FiveTuple.Compare)
	w.Int(len(flowKeys))
	for _, k := range flowKeys {
		encodeFlowStats(w, t.flows[k])
	}

	streamKeys := make([]MediaStreamID, 0, len(t.streams))
	for k := range t.streams {
		streamKeys = append(streamKeys, k)
	}
	slices.SortFunc(streamKeys, CompareStreamID)
	w.Int(len(streamKeys))
	for _, k := range streamKeys {
		encodeStreamStats(w, t.streams[k])
	}

	t.encodeShareAggs(w)
}

// CompareStreamID orders stream identifiers by (flow, key); checkpoint
// writers use it to serialize stream maps deterministically.
func CompareStreamID(a, b MediaStreamID) int {
	if c := a.Flow.Compare(b.Flow); c != 0 {
		return c
	}
	return a.Key.Compare(b.Key)
}

// Restore rebuilds the table from a checkpoint, replacing every live map
// but preserving the limits installed on the receiver.
func (t *Table) Restore(r *statecodec.Reader) error {
	r.Version("flow.Table", tableStateV2)
	t.decodeScalars(r)

	// Flow and stream records decode into chunk-allocated slabs — one
	// allocation per few thousand entries instead of one each, which is
	// where a large table's restore time went. Chunking keeps a hostile
	// count from forcing a huge allocation before decoding fails.
	nf := r.Count(8)
	flowSlab := []FlowStats{}
	t.flows = make(map[layers.FiveTuple]*FlowStats, nf)
	for i := 0; i < nf; i++ {
		if len(flowSlab) == 0 {
			flowSlab = make([]FlowStats, min(nf-i, 4096))
		}
		f := &flowSlab[0]
		flowSlab = flowSlab[1:]
		k := decodeFlowStatsInto(r, f)
		if r.Err() != nil {
			return r.Err()
		}
		t.flows[k] = f
	}

	ns := r.Count(12)
	streamSlab := []StreamStats{}
	var subSlab []SubstreamStats
	t.streams = make(map[MediaStreamID]*StreamStats, ns)
	for i := 0; i < ns; i++ {
		if len(streamSlab) == 0 {
			streamSlab = make([]StreamStats, min(ns-i, 4096))
		}
		s := &streamSlab[0]
		streamSlab = streamSlab[1:]
		id := decodeStreamStatsInto(r, s, &subSlab)
		if r.Err() != nil {
			return r.Err()
		}
		t.streams[id] = s
	}

	t.decodeShareAggs(r)
	return r.Err()
}
