package flow

import (
	"slices"

	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Delta checkpoints re-serialize only what changed since the previous
// checkpoint encode: records whose dirty bit is set, plus deletion
// tombstones for entries evicted in between. The table arms itself at
// the first full encode (MarkCheckpointed), so runs that never
// checkpoint record no tombstones and pay only a per-mutation bool
// store.

// tableDeltaV2 added the protocol byte inside every encoded
// zoom.StreamKey; V1 deltas are rejected by version.
const (
	tableDeltaV1 = 1
	tableDeltaV2 = 2
)

// maxDeltaTombstones bounds the eviction backlog a delta is willing to
// carry. Past it the table flags overflow and the next delta encode
// reports itself unavailable, forcing the caller back to a full
// snapshot (which resets everything).
const maxDeltaTombstones = 1 << 20

func (t *Table) tombstoneFlow(k layers.FiveTuple) {
	if !t.armed || t.overflow {
		return
	}
	if len(t.deadFlows) >= maxDeltaTombstones {
		t.overflow = true
		return
	}
	t.deadFlows = append(t.deadFlows, k)
}

func (t *Table) tombstoneStream(id MediaStreamID) {
	if !t.armed || t.overflow {
		return
	}
	if len(t.deadStreams) >= maxDeltaTombstones {
		t.overflow = true
		return
	}
	t.deadStreams = append(t.deadStreams, id)
}

// DeltaOverflow reports whether the eviction backlog outgrew what a
// delta can carry; the owner must fall back to a full snapshot.
func (t *Table) DeltaOverflow() bool { return t.overflow }

// MarkCheckpointed resets delta tracking after a checkpoint encode (full
// or delta) or a restore: every record is now captured, so dirty bits
// and tombstones clear and the table arms for the next delta.
func (t *Table) MarkCheckpointed() {
	for _, f := range t.flows {
		f.dirty = false
	}
	for _, s := range t.streams {
		s.dirty = false
	}
	t.deadFlows = t.deadFlows[:0]
	t.deadStreams = t.deadStreams[:0]
	t.overflow = false
	t.armed = true
}

// Disarm turns delta tracking off (window rotation starts a fresh table
// lineage that the old checkpoint chain no longer describes).
func (t *Table) Disarm() {
	t.deadFlows = nil
	t.deadStreams = nil
	t.overflow = false
	t.armed = false
}

// StateDelta encodes the table mutations since the last checkpoint
// encode: scalars (cheap, always carried whole), deletion tombstones,
// then every dirty flow/stream record in full. Callers must check
// DeltaOverflow first and must call MarkCheckpointed after a successful
// encode.
func (t *Table) StateDelta(w *statecodec.Writer) {
	w.U8(tableDeltaV2)
	t.encodeScalars(w)

	slices.SortFunc(t.deadFlows, layers.FiveTuple.Compare)
	w.Int(len(t.deadFlows))
	for _, k := range t.deadFlows {
		k.EncodeTo(w)
	}
	slices.SortFunc(t.deadStreams, CompareStreamID)
	w.Int(len(t.deadStreams))
	for _, id := range t.deadStreams {
		id.Flow.EncodeTo(w)
		id.Key.EncodeTo(w)
	}

	dirtyFlows := make([]layers.FiveTuple, 0, 64)
	for k, f := range t.flows {
		if f.dirty {
			dirtyFlows = append(dirtyFlows, k)
		}
	}
	slices.SortFunc(dirtyFlows, layers.FiveTuple.Compare)
	w.Int(len(dirtyFlows))
	for _, k := range dirtyFlows {
		encodeFlowStats(w, t.flows[k])
	}

	dirtyStreams := make([]MediaStreamID, 0, 64)
	for id, s := range t.streams {
		if s.dirty {
			dirtyStreams = append(dirtyStreams, id)
		}
	}
	slices.SortFunc(dirtyStreams, CompareStreamID)
	w.Int(len(dirtyStreams))
	for _, id := range dirtyStreams {
		encodeStreamStats(w, t.streams[id])
	}

	t.encodeShareAggs(w)
}

// ApplyDelta replays a StateDelta record onto the table: deletions
// first, then dirty records upserted whole. The caller owns chain
// integrity (the record must follow the checkpoint this table was
// restored from); on error the table may hold partially applied state
// and must be discarded.
func (t *Table) ApplyDelta(r *statecodec.Reader) error {
	r.Version("flow.Table delta", tableDeltaV2)
	t.decodeScalars(r)

	ndf := r.Count(13)
	for i := 0; i < ndf; i++ {
		k := layers.DecodeFiveTuple(r)
		if r.Err() != nil {
			return r.Err()
		}
		delete(t.flows, k)
	}
	nds := r.Count(17)
	for i := 0; i < nds; i++ {
		id := MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		if r.Err() != nil {
			return r.Err()
		}
		delete(t.streams, id)
	}

	nf := r.Count(8)
	for i := 0; i < nf; i++ {
		f := &FlowStats{}
		k := decodeFlowStatsInto(r, f)
		if r.Err() != nil {
			return r.Err()
		}
		t.flows[k] = f
	}
	ns := r.Count(12)
	var subSlab []SubstreamStats
	for i := 0; i < ns; i++ {
		s := &StreamStats{}
		id := decodeStreamStatsInto(r, s, &subSlab)
		if r.Err() != nil {
			return r.Err()
		}
		t.streams[id] = s
	}

	t.decodeShareAggs(r)
	if r.Err() != nil {
		return r.Err()
	}
	t.MarkCheckpointed()
	return nil
}
