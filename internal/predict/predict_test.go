package predict

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/features"
)

// synthRows builds a separable labeled set: good streams are fast and
// smooth, degraded ones slower and burstier, bad ones sparse with long
// gaps — the shape congestion actually produces.
func synthRows(n int) []features.LabeledRow {
	t0 := time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	mk := func(i int, lab features.Label, pkts uint64, bytesPer uint64, iatMean, iatStd, iatMax float64, bursts int, entropy float64) features.LabeledRow {
		jitter := float64(i%7) * 0.13
		return features.LabeledRow{
			Row: features.Row{
				Start:        t0.Add(time.Duration(i) * time.Second),
				Window:       time.Second,
				Packets:      pkts,
				WireBytes:    pkts * bytesPer,
				PayloadBytes: pkts * (bytesPer - 70),
				IATMeanMS:    iatMean + jitter,
				IATStdMS:     iatStd + jitter/2,
				IATMaxMS:     iatMax + jitter*3,
				Bursts:       bursts,
				MaxBurstPkts: int(pkts) / max(bursts, 1),
				SizeMeanB:    float64(bytesPer),
				SizeStdB:     10 + jitter,
				SizeEntropy:  entropy,
			},
			Label: lab,
		}
	}
	var rows []features.LabeledRow
	for i := 0; i < n; i++ {
		rows = append(rows,
			mk(i, features.LabelGood, 30, 1000, 33, 3, 40, 30, 0.5),
			mk(i, features.LabelDegraded, 18, 700, 55, 25, 160, 9, 1.5),
			mk(i, features.LabelBad, 6, 400, 160, 90, 500, 3, 2.5),
		)
	}
	return rows
}

func TestTrainBeatsBaseline(t *testing.T) {
	rows := synthRows(40)
	m, err := Train(rows, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ev := Evaluate(m, rows)
	if ev.N != len(rows) {
		t.Fatalf("evaluated %d rows (want %d)", ev.N, len(rows))
	}
	if ev.Accuracy <= ev.Baseline {
		t.Fatalf("accuracy %.3f does not beat majority baseline %.3f", ev.Accuracy, ev.Baseline)
	}
	if ev.Accuracy < 0.9 {
		t.Fatalf("accuracy %.3f on separable data (want >= 0.9); confusion %v", ev.Accuracy, ev.Confusion)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rows := synthRows(10)
	m1, err := Train(rows, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(rows, TrainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("two trainings on identical data diverged")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rows := synthRows(10)
	m, err := Train(rows, TrainOptions{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatal("save/load round trip changed the model")
	}
	for i := range rows {
		wantLab, _ := m.Predict(&rows[i].Row)
		gotLab, _ := got.Predict(&rows[i].Row)
		if wantLab != gotLab {
			t.Fatalf("row %d: loaded model predicts %v, original %v", i, gotLab, wantLab)
		}
	}
}

func TestLoadRejects(t *testing.T) {
	rows := synthRows(5)
	m, err := Train(rows, TrainOptions{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	encode := func(mut func(*Model)) string {
		c := *m
		c.Features = append([]string(nil), m.Features...)
		mut(&c)
		var buf bytes.Buffer
		if err := c.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	cases := map[string]string{
		"garbage":         "{not json",
		"bad version":     encode(func(c *Model) { c.Version = 99 }),
		"feature rename":  encode(func(c *Model) { c.Features[0] = "other" }),
		"feature missing": encode(func(c *Model) { c.Features = c.Features[:len(c.Features)-1] }),
		"zero std":        encode(func(c *Model) { c.Std = make([]float64, len(c.Std)) }),
		"short weights":   encode(func(c *Model) { c.Weights = c.Weights[:1] }),
	}
	for name, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Load accepted a bad model", name)
		}
	}
}

func TestTrainRejectsEmpty(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("Train accepted an empty set")
	}
}

func TestVectorMatchesFeatureNames(t *testing.T) {
	r := features.Row{Packets: 10, WireBytes: 5000, PayloadBytes: 4000, Window: time.Second}
	if got := len(Vector(&r)); got != len(FeatureNames) {
		t.Fatalf("Vector has %d dims, FeatureNames %d", got, len(FeatureNames))
	}
}

func TestPredictProbabilities(t *testing.T) {
	rows := synthRows(10)
	m, err := Train(rows, TrainOptions{Epochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	_, probs := m.Predict(&rows[0].Row)
	if len(probs) != features.NumLabels {
		t.Fatalf("got %d probabilities", len(probs))
	}
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}
