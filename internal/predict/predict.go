// Package predict turns streaming feature rows into QoE labels — the
// §8 application of the paper: once passive feature extraction runs in
// the network, a lightweight model trained against client-side ground
// truth can infer user experience for every stream the tap sees,
// including the overwhelming majority with no SDK instrumentation.
//
// The model is multinomial logistic regression over the header-free
// feature columns, trained by deterministic full-batch gradient descent
// (zero init, fixed epochs, no randomness — the same data always yields
// the same model). Pure Go, no external dependencies: inference is a
// dot product per class, cheap enough to run inline on the drain path
// of a live tap.
package predict

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"zoomlens/internal/features"
)

// FeatureNames lists the model inputs, in vector order. All are
// derivable from encrypted traffic (packet sizes and timing only);
// none touches the RTP header oracle columns.
var FeatureNames = []string{
	"pkt_rate",
	"wire_kbps",
	"payload_ratio",
	"iat_mean_ms",
	"iat_std_ms",
	"iat_max_ms",
	"bursts",
	"max_burst_pkts",
	"size_mean_b",
	"size_std_b",
	"size_entropy_bits",
}

// Vector extracts the model input vector from one feature row.
func Vector(r *features.Row) []float64 {
	ratio := 0.0
	if r.WireBytes > 0 {
		ratio = float64(r.PayloadBytes) / float64(r.WireBytes)
	}
	return []float64{
		r.PktRate(),
		r.WireKbps(),
		ratio,
		r.IATMeanMS,
		r.IATStdMS,
		r.IATMaxMS,
		float64(r.Bursts),
		float64(r.MaxBurstPkts),
		r.SizeMeanB,
		r.SizeStdB,
		r.SizeEntropy,
	}
}

// Model is a trained softmax classifier with input standardization
// folded in. The zero Model is not usable; build one with Train or
// Load.
type Model struct {
	// Version guards the JSON encoding.
	Version int `json:"version"`
	// Features names the input columns, in vector order. Load rejects
	// a file whose columns do not match the running binary's extractor.
	Features []string `json:"features"`
	// Mean and Std standardize each input: x' = (x - mean) / std.
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
	// Weights is one row per label (features.NumLabels), each holding
	// one weight per input plus a trailing bias term.
	Weights [][]float64 `json:"weights"`
}

// modelVersion is the current JSON encoding version.
const modelVersion = 1

// TrainOptions tunes the gradient descent. The zero value selects the
// defaults.
type TrainOptions struct {
	// Epochs is the number of full passes over the training set
	// (default 300).
	Epochs int
	// LearningRate is the gradient step size (default 0.1).
	LearningRate float64
	// L2 is the weight decay coefficient applied to everything but the
	// bias (default 1e-4).
	L2 float64
}

func (o *TrainOptions) defaults() {
	if o.Epochs <= 0 {
		o.Epochs = 300
	}
	if o.LearningRate <= 0 {
		o.LearningRate = 0.1
	}
	if o.L2 < 0 {
		o.L2 = 0
	} else if o.L2 == 0 {
		o.L2 = 1e-4
	}
}

// Train fits a model on labeled rows. Training is deterministic: the
// same rows in the same order always produce bit-identical weights.
func Train(rows []features.LabeledRow, opts TrainOptions) (*Model, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("predict: no training rows")
	}
	opts.defaults()
	dims := len(FeatureNames)
	m := &Model{
		Version:  modelVersion,
		Features: append([]string(nil), FeatureNames...),
		Mean:     make([]float64, dims),
		Std:      make([]float64, dims),
		Weights:  make([][]float64, features.NumLabels),
	}
	for k := range m.Weights {
		m.Weights[k] = make([]float64, dims+1)
	}

	// Standardization from the training set; a constant column gets
	// std 1 so it contributes zero after centering instead of NaN.
	xs := make([][]float64, len(rows))
	for i := range rows {
		xs[i] = Vector(&rows[i].Row)
		for j, v := range xs[i] {
			m.Mean[j] += v
		}
	}
	n := float64(len(rows))
	for j := range m.Mean {
		m.Mean[j] /= n
	}
	for i := range xs {
		for j, v := range xs[i] {
			d := v - m.Mean[j]
			m.Std[j] += d * d
		}
	}
	for j := range m.Std {
		m.Std[j] = math.Sqrt(m.Std[j] / n)
		if m.Std[j] == 0 {
			m.Std[j] = 1
		}
	}
	for i := range xs {
		for j := range xs[i] {
			xs[i][j] = (xs[i][j] - m.Mean[j]) / m.Std[j]
		}
	}

	// Full-batch softmax gradient descent.
	grad := make([][]float64, features.NumLabels)
	for k := range grad {
		grad[k] = make([]float64, dims+1)
	}
	probs := make([]float64, features.NumLabels)
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for k := range grad {
			for j := range grad[k] {
				grad[k][j] = 0
			}
		}
		for i, x := range xs {
			m.softmaxStd(x, probs)
			y := int(rows[i].Label)
			if y < 0 || y >= features.NumLabels {
				return nil, fmt.Errorf("predict: row %d has label %d out of range", i, y)
			}
			for k := range probs {
				d := probs[k]
				if k == y {
					d -= 1
				}
				g := grad[k]
				for j, xv := range x {
					g[j] += d * xv
				}
				g[dims] += d
			}
		}
		step := opts.LearningRate / n
		for k, g := range grad {
			w := m.Weights[k]
			for j := 0; j < dims; j++ {
				w[j] -= step*g[j] + opts.LearningRate*opts.L2*w[j]
			}
			w[dims] -= step * g[dims]
		}
	}
	return m, nil
}

// softmaxStd computes class probabilities for an already-standardized
// input vector, writing into probs (len features.NumLabels).
func (m *Model) softmaxStd(x []float64, probs []float64) {
	maxZ := math.Inf(-1)
	for k, w := range m.Weights {
		z := w[len(x)]
		for j, xv := range x {
			z += w[j] * xv
		}
		probs[k] = z
		if z > maxZ {
			maxZ = z
		}
	}
	var sum float64
	for k, z := range probs {
		e := math.Exp(z - maxZ)
		probs[k] = e
		sum += e
	}
	for k := range probs {
		probs[k] /= sum
	}
}

// Predict classifies one feature row, returning the label and the full
// class probability vector (indexed by features.Label).
func (m *Model) Predict(r *features.Row) (features.Label, []float64) {
	x := Vector(r)
	for j := range x {
		x[j] = (x[j] - m.Mean[j]) / m.Std[j]
	}
	probs := make([]float64, len(m.Weights))
	m.softmaxStd(x, probs)
	best := 0
	for k := 1; k < len(probs); k++ {
		if probs[k] > probs[best] {
			best = k
		}
	}
	return features.Label(best), probs
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Load reads a model written by Save, validating version, feature
// columns, and weight shape against the running binary.
func Load(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("predict: decoding model: %w", err)
	}
	if m.Version != modelVersion {
		return nil, fmt.Errorf("predict: model version %d not supported (want %d)", m.Version, modelVersion)
	}
	if len(m.Features) != len(FeatureNames) {
		return nil, fmt.Errorf("predict: model has %d features (binary extracts %d)", len(m.Features), len(FeatureNames))
	}
	for i, name := range m.Features {
		if name != FeatureNames[i] {
			return nil, fmt.Errorf("predict: model feature %d is %q (binary extracts %q)", i, name, FeatureNames[i])
		}
	}
	dims := len(FeatureNames)
	if len(m.Mean) != dims || len(m.Std) != dims || len(m.Weights) != features.NumLabels {
		return nil, fmt.Errorf("predict: model shape mismatch")
	}
	for k, w := range m.Weights {
		if len(w) != dims+1 {
			return nil, fmt.Errorf("predict: weight row %d has %d entries (want %d)", k, len(w), dims+1)
		}
	}
	for j, s := range m.Std {
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("predict: model std[%d] = %v is unusable", j, s)
		}
	}
	return &m, nil
}

// Eval summarizes model quality on a labeled set.
type Eval struct {
	// N is the number of evaluated rows.
	N int
	// Correct counts rows the model labeled correctly.
	Correct int
	// Accuracy is Correct/N.
	Accuracy float64
	// Baseline is the majority-class accuracy on the same set — the
	// floor any useful model must beat.
	Baseline float64
	// Confusion[actual][predicted] counts outcomes.
	Confusion [features.NumLabels][features.NumLabels]int
}

// Evaluate scores the model against labeled rows.
func Evaluate(m *Model, rows []features.LabeledRow) Eval {
	var ev Eval
	var byLabel [features.NumLabels]int
	for i := range rows {
		y := int(rows[i].Label)
		if y < 0 || y >= features.NumLabels {
			continue
		}
		pred, _ := m.Predict(&rows[i].Row)
		ev.N++
		byLabel[y]++
		ev.Confusion[y][int(pred)]++
		if int(pred) == y {
			ev.Correct++
		}
	}
	if ev.N == 0 {
		return ev
	}
	ev.Accuracy = float64(ev.Correct) / float64(ev.N)
	maxC := 0
	for _, c := range byLabel {
		if c > maxC {
			maxC = c
		}
	}
	ev.Baseline = float64(maxC) / float64(ev.N)
	return ev
}
