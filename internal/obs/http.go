package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Serve exposes a registry over HTTP on addr (host:port; port 0 picks a
// free port): Prometheus text format at /metrics, the process expvars at
// /debug/vars, and the pprof suite at /debug/pprof/. It returns the
// listening server and its resolved address; callers own shutdown via
// srv.Close.
func Serve(addr string, reg *Registry) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}

// Handler returns the observability mux: /metrics, /debug/vars, and
// /debug/pprof/* on a private mux (nothing leaks onto
// http.DefaultServeMux).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The response is already streaming; nothing to do but stop.
			return
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "zoomlens observability: /metrics /debug/vars /debug/pprof/\n")
	})
	return mux
}
