// Package obs is the live observability layer for the analysis
// pipeline: a dependency-free metric registry (atomic counters, gauges,
// and histograms rendered in Prometheus text exposition format), an
// optional HTTP endpoint serving /metrics plus expvar and pprof, and a
// lightweight stage-tracing hook.
//
// The paper's pitch is *continuous* passive monitoring; an operator
// watching a live tap needs to see packets per decode stage, state-table
// occupancy against the bounded-state caps, recovered panics, and
// rolling QoE — while the capture is still running, not after Finish.
// Everything here is cheap enough for the per-packet hot path: one
// atomic add per event, no locks after registration.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {stage="media"}, {shard="3"}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Store mirrors an externally maintained cumulative value into the
// counter (for state that already keeps its own monotone totals).
func (c *Counter) Store(v uint64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram, safe for concurrent
// observation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; implicit +Inf last
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // Float64bits accumulator
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets is a general-purpose duration bucket ladder in seconds.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// series is one (labelset, value) inside a family.
type series struct {
	labels    string // rendered {k="v",...} or ""
	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
	lblPairs  []Label
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string
	series map[string]*series
}

// Registry holds named metrics and renders them. Registration takes a
// lock; registered Counter/Gauge/Histogram handles are lock-free.
// Registering the same name and label set twice returns the same handle,
// so independent pipeline components can share counters safely.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) seriesFor(name, help string, kind metricKind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	key := renderLabels(labels)
	s := f.series[key]
	if s == nil {
		s = &series{labels: key, lblPairs: labels}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter registers (or looks up) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or looks up) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or looks up) a histogram with the given upper
// bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := r.seriesFor(name, help, kindHistogram, labels)
	if s.histogram == nil {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bounds := make([]float64, len(buckets))
		copy(bounds, buckets)
		s.histogram = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}
	return s.histogram
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		typ := "counter"
		switch f.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.histogram
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.lblPairs, formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLE(s.lblPairs, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, s.labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

func mergeLE(labels []Label, le string) string {
	merged := make([]Label, 0, len(labels)+1)
	merged = append(merged, labels...)
	merged = append(merged, Label{Key: "le", Value: le})
	return renderLabels(merged)
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}
