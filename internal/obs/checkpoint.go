package obs

import "time"

// CheckpointMetrics instruments the engine driver's checkpoint writer
// and report rotation: how many checkpoints were written (or failed),
// how long the last one took, how big it was, and when it landed (the
// age an operator alerts on is time() - zoomlens_checkpoint_last_unix).
// Every method is safe on a nil receiver and on handles from a nil
// Registry, matching the rest of the package.
type CheckpointMetrics struct {
	Written   *Counter
	Failed    *Counter
	Restored  *Counter
	Rotations *Counter
	// RotateFailures counts windows whose report file could not be
	// written; Rotations counts only successful window emissions.
	RotateFailures *Counter
	DurationMS     *Gauge
	SizeBytes      *Gauge
	LastUnix       *Gauge

	// DeltaWritten counts incremental (delta) checkpoint records;
	// Written counts fulls only, so the two partition the chain.
	DeltaWritten *Counter
	// Fallbacks counts corrupt or torn checkpoint generations skipped
	// during restore before a valid one loaded.
	Fallbacks *Counter
	// TmpCleaned counts orphaned checkpoint temp files removed at
	// startup (debris of a crash mid-write).
	TmpCleaned *Counter
}

// NewCheckpointMetrics registers the checkpoint series on r (nil r
// yields inert handles).
func NewCheckpointMetrics(r *Registry) *CheckpointMetrics {
	return &CheckpointMetrics{
		Written:        r.Counter("zoomlens_checkpoints_written_total", "Checkpoints written successfully."),
		Failed:         r.Counter("zoomlens_checkpoint_failures_total", "Checkpoint writes that failed."),
		Restored:       r.Counter("zoomlens_checkpoint_restores_total", "Runs resumed from a checkpoint."),
		Rotations:      r.Counter("zoomlens_report_rotations_total", "Report windows rotated out."),
		RotateFailures: r.Counter("zoomlens_report_rotation_failures_total", "Report windows whose file write failed."),
		DurationMS:     r.Gauge("zoomlens_checkpoint_duration_ms", "Wall-clock duration of the last checkpoint write."),
		SizeBytes:      r.Gauge("zoomlens_checkpoint_size_bytes", "Encoded size of the last checkpoint."),
		LastUnix:       r.Gauge("zoomlens_checkpoint_last_unix", "Unix time of the last successful checkpoint."),

		DeltaWritten: r.Counter("zoomlens_checkpoint_deltas_total", "Incremental (delta) checkpoint records written."),
		Fallbacks:    r.Counter("zoomlens_checkpoint_restore_fallbacks_total", "Corrupt checkpoint generations skipped during restore."),
		TmpCleaned:   r.Counter("zoomlens_checkpoint_tmp_cleaned_total", "Orphaned checkpoint temp files removed at startup."),
	}
}

// Record notes one successful checkpoint write.
func (m *CheckpointMetrics) Record(d time.Duration, size int64, at time.Time) {
	if m == nil {
		return
	}
	m.Written.Inc()
	m.DurationMS.Set(d.Milliseconds())
	m.SizeBytes.Set(size)
	m.LastUnix.Set(at.Unix())
}
