package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer receives coarse stage timings so tools can report where
// wall-clock goes (pcap read, analysis, merge, report emission). The
// default is no tracer at all: every hook site accepts nil, and Stage on
// a nil Tracer costs one branch.
type Tracer interface {
	// StageDone records that one execution of the named stage took d.
	StageDone(stage string, d time.Duration)
}

// NopTracer discards all timings.
type NopTracer struct{}

// StageDone implements Tracer.
func (NopTracer) StageDone(string, time.Duration) {}

// Stage starts timing a stage and returns the completion function:
//
//	defer obs.Stage(tr, "merge")()
//
// A nil tracer yields a no-op closure.
func Stage(tr Tracer, name string) func() {
	if tr == nil {
		return func() {}
	}
	start := time.Now()
	return func() { tr.StageDone(name, time.Since(start)) }
}

// StageStats is a Tracer accumulating per-stage call counts and total
// durations. Safe for concurrent use.
type StageStats struct {
	mu     sync.Mutex
	order  []string
	totals map[string]*stageAgg
}

type stageAgg struct {
	calls uint64
	total time.Duration
}

// NewStageStats returns an empty accumulator.
func NewStageStats() *StageStats {
	return &StageStats{totals: make(map[string]*stageAgg)}
}

// StageDone implements Tracer.
func (s *StageStats) StageDone(stage string, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.totals[stage]
	if a == nil {
		a = &stageAgg{}
		s.totals[stage] = a
		s.order = append(s.order, stage)
	}
	a.calls++
	a.total += d
}

// Report renders an aligned per-stage breakdown, stages ordered by total
// time descending.
func (s *StageStats) Report() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	stages := make([]string, len(s.order))
	copy(stages, s.order)
	sort.SliceStable(stages, func(i, j int) bool {
		return s.totals[stages[i]].total > s.totals[stages[j]].total
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %10s %14s %14s\n", "stage", "calls", "total", "mean")
	for _, st := range stages {
		a := s.totals[st]
		mean := time.Duration(0)
		if a.calls > 0 {
			mean = a.total / time.Duration(a.calls)
		}
		fmt.Fprintf(&b, "%-24s %10d %14s %14s\n", st, a.calls, a.total.Round(time.Microsecond), mean.Round(time.Microsecond))
	}
	return b.String()
}

// RegistryTracer is a Tracer that feeds per-stage duration histograms in
// a Registry, so stage timings show up on the /metrics endpoint.
type RegistryTracer struct {
	reg *Registry

	mu     sync.Mutex
	stages map[string]*Histogram
}

// NewRegistryTracer returns a tracer recording into reg as
// zoomlens_stage_duration_seconds{stage="..."}.
func NewRegistryTracer(reg *Registry) *RegistryTracer {
	return &RegistryTracer{reg: reg, stages: make(map[string]*Histogram)}
}

// StageDone implements Tracer.
func (rt *RegistryTracer) StageDone(stage string, d time.Duration) {
	rt.mu.Lock()
	h := rt.stages[stage]
	if h == nil {
		h = rt.reg.Histogram("zoomlens_stage_duration_seconds",
			"Wall-clock spent per pipeline stage.", DefBuckets, L("stage", stage))
		rt.stages[stage] = h
	}
	rt.mu.Unlock()
	h.Observe(d.Seconds())
}

// MultiTracer fans one timing out to several tracers.
type MultiTracer []Tracer

// StageDone implements Tracer.
func (m MultiTracer) StageDone(stage string, d time.Duration) {
	for _, tr := range m {
		if tr != nil {
			tr.StageDone(stage, d)
		}
	}
}
