package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_packets_total", "Packets ingested.")
	c.Inc()
	c.Add(9)
	stage := r.Counter("test_stage_total", "Per-stage packets.", L("stage", "media"))
	stage.Add(3)
	r.Counter("test_stage_total", "Per-stage packets.", L("stage", "stun")).Add(2)
	g := r.Gauge("test_occupancy", "Table occupancy.", L("table", "flows"), L("shard", "0"))
	g.Set(42)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_packets_total Packets ingested.",
		"# TYPE test_packets_total counter",
		"test_packets_total 10",
		`test_stage_total{stage="media"} 3`,
		`test_stage_total{stage="stun"} 2`,
		"# TYPE test_occupancy gauge",
		`test_occupancy{shard="0",table="flows"} 42`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDedupsHandles(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "x", L("k", "v"))
	b := r.Counter("dup_total", "x", L("k", "v"))
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
	if r.Counter("dup_total", "x", L("k", "other")) == a {
		t.Fatal("distinct labels shared a counter")
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc() // nil counter: no-op, no panic
	var g *Gauge
	g.Set(3)
	var h *Histogram
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics should read zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() < 5.55 || h.Sum() > 5.56 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	h := r.Histogram("conc_seconds", "", []float64{1})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d histogram = %d, want 8000", c.Value(), h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %v, want 4000", h.Sum())
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "Served.").Add(7)
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "served_total 7") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "memstats") {
		t.Errorf("/debug/vars missing memstats")
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ index missing goroutine profile")
	}
}

func TestStageStatsAndRegistryTracer(t *testing.T) {
	stats := NewStageStats()
	reg := NewRegistry()
	tr := MultiTracer{stats, NewRegistryTracer(reg), nil}
	done := Stage(tr, "read")
	time.Sleep(time.Millisecond)
	done()
	tr.StageDone("finish", 2*time.Second)
	tr.StageDone("finish", 4*time.Second)

	rep := stats.Report()
	if !strings.Contains(rep, "read") || !strings.Contains(rep, "finish") {
		t.Fatalf("report missing stages:\n%s", rep)
	}
	// finish (6s total) must sort above read.
	if strings.Index(rep, "finish") > strings.Index(rep, "read") {
		t.Errorf("stages not ordered by total time:\n%s", rep)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `zoomlens_stage_duration_seconds_count{stage="finish"} 2`) {
		t.Errorf("registry tracer missing stage histogram:\n%s", b.String())
	}
	// Stage with a nil tracer is a safe no-op.
	Stage(nil, "x")()
}
