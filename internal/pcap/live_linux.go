//go:build linux

package pcap

import (
	"fmt"
	"net"
	"syscall"
	"time"
)

// LiveSource captures packets from a network interface via an AF_PACKET
// raw socket — the stdlib-only path to running the analyzer on live
// traffic instead of a pcap file (the paper's campus deployment fed the
// analyzer from a tap; on commodity Linux a mirror/SPAN port plus this
// source is the equivalent).
//
// Requires CAP_NET_RAW (typically root).
type LiveSource struct {
	fd      int
	ifname  string
	snaplen int
}

// htons converts to network byte order for the protocol field.
func htons(v uint16) uint16 { return v<<8 | v>>8 }

// OpenLive opens an interface for capture. Pass snaplen 0 for the
// default (65535).
func OpenLive(ifname string, snaplen int) (*LiveSource, error) {
	if snaplen <= 0 {
		snaplen = 65535
	}
	const ethPAll = 0x0003 // ETH_P_ALL
	fd, err := syscall.Socket(syscall.AF_PACKET, syscall.SOCK_RAW, int(htons(ethPAll)))
	if err != nil {
		return nil, fmt.Errorf("pcap: opening AF_PACKET socket: %w", err)
	}
	iface, err := net.InterfaceByName(ifname)
	if err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("pcap: interface %q: %w", ifname, err)
	}
	sll := &syscall.SockaddrLinklayer{
		Protocol: htons(ethPAll),
		Ifindex:  iface.Index,
	}
	if err := syscall.Bind(fd, sll); err != nil {
		syscall.Close(fd)
		return nil, fmt.Errorf("pcap: binding to %q: %w", ifname, err)
	}
	return &LiveSource{fd: fd, ifname: ifname, snaplen: snaplen}, nil
}

// Next blocks for the next packet. Timestamps are taken in user space on
// receipt (adequate for the millisecond-scale metrics of the paper;
// kernel timestamping would need SO_TIMESTAMPNS handling).
func (l *LiveSource) Next() (Record, error) {
	buf := make([]byte, l.snaplen)
	for {
		n, _, err := syscall.Recvfrom(l.fd, buf, 0)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return Record{}, fmt.Errorf("pcap: recvfrom on %q: %w", l.ifname, err)
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		return Record{Timestamp: time.Now().UTC(), OriginalLen: n, Data: data}, nil
	}
}

// SetReadDeadlineBestEffort applies a receive timeout so Next can return
// periodically (for clean shutdown loops).
func (l *LiveSource) SetReadDeadlineBestEffort(d time.Duration) error {
	tv := syscall.NsecToTimeval(d.Nanoseconds())
	return syscall.SetsockoptTimeval(l.fd, syscall.SOL_SOCKET, syscall.SO_RCVTIMEO, &tv)
}

// Close releases the socket.
func (l *LiveSource) Close() error { return syscall.Close(l.fd) }
