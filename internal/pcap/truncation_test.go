package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

// twoRecordCapture builds a classic pcap holding two records and returns
// the bytes plus the offset where the second record starts.
func twoRecordCapture(t *testing.T) ([]byte, int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(time.Unix(10, 0), bytes.Repeat([]byte{0xaa}, 40)); err != nil {
		t.Fatal(err)
	}
	secondStart := buf.Len()
	if err := w.WriteRecord(time.Unix(11, 0), bytes.Repeat([]byte{0xbb}, 40)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), secondStart
}

// TestTruncatedMidRecordIsPartialResult is the regression test for the
// graceful-degradation contract: a capture cut mid-record (mid-body or
// mid-header) yields every complete record followed by a clean io.EOF,
// with Truncated() reporting the cut — not a hard error that throws away
// the readable prefix.
func TestTruncatedMidRecordIsPartialResult(t *testing.T) {
	full, secondStart := twoRecordCapture(t)
	cuts := map[string]int{
		"mid_body":   secondStart + recordHeaderLen + 20,
		"mid_header": secondStart + 7,
	}
	for name, cut := range cuts {
		t.Run(name, func(t *testing.T) {
			r, err := NewReader(bytes.NewReader(full[:cut]))
			if err != nil {
				t.Fatal(err)
			}
			rec, err := r.Next()
			if err != nil {
				t.Fatalf("first (complete) record: %v", err)
			}
			if len(rec.Data) != 40 || rec.Data[0] != 0xaa {
				t.Fatalf("first record corrupted: %d bytes", len(rec.Data))
			}
			if r.Truncated() {
				t.Error("Truncated() true before the cut was reached")
			}
			if _, err := r.Next(); err != io.EOF {
				t.Fatalf("cut record: err = %v, want io.EOF", err)
			}
			if !r.Truncated() {
				t.Error("Truncated() false after a mid-record cut")
			}
		})
	}
}

// TestCleanEOFNotTruncated guards the other side of the contract: a
// complete capture must not be flagged.
func TestCleanEOFNotTruncated(t *testing.T) {
	full, _ := twoRecordCapture(t)
	r, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("read %d records, want 2", n)
	}
	if r.Truncated() {
		t.Error("Truncated() true on a clean EOF")
	}
}

// TestOpenStreamTruncated checks the format-sniffing stream wrapper
// forwards the truncation flag for both classic and pcapng inputs.
func TestOpenStreamTruncated(t *testing.T) {
	classic, secondStart := twoRecordCapture(t)

	var ngBuf bytes.Buffer
	ngw, err := NewNGWriter(&ngBuf, uint16(LinkTypeEthernet))
	if err != nil {
		t.Fatal(err)
	}
	if err := ngw.WriteRecord(time.Unix(10, 0), bytes.Repeat([]byte{0xaa}, 40)); err != nil {
		t.Fatal(err)
	}
	ngFirstEnd := ngBuf.Len()
	if err := ngw.WriteRecord(time.Unix(11, 0), bytes.Repeat([]byte{0xbb}, 40)); err != nil {
		t.Fatal(err)
	}
	ng := ngBuf.Bytes()

	cases := map[string][]byte{
		"classic": classic[:secondStart+recordHeaderLen+20],
		"pcapng":  ng[:ngFirstEnd+10],
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			s, err := OpenStream(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				_, err := s.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("record %d: %v", n, err)
				}
				n++
			}
			if n != 1 {
				t.Fatalf("read %d complete records, want 1", n)
			}
			if !s.Truncated() {
				t.Error("Stream.Truncated() false after a mid-record cut")
			}
		})
	}
}
