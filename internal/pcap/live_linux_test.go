//go:build linux

package pcap

import (
	"errors"
	"os"
	"syscall"
	"testing"
	"time"
)

func TestOpenLiveLoopback(t *testing.T) {
	src, err := OpenLive("lo", 2048)
	if err != nil {
		if errors.Is(err, syscall.EPERM) || errors.Is(err, syscall.EACCES) || os.Geteuid() != 0 {
			t.Skipf("needs CAP_NET_RAW: %v", err)
		}
		t.Fatalf("OpenLive: %v", err)
	}
	defer src.Close()
	if err := src.SetReadDeadlineBestEffort(200 * time.Millisecond); err != nil {
		t.Fatalf("deadline: %v", err)
	}
	// Generate loopback traffic so Next has something to return.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_DGRAM, 0)
		if err != nil {
			return
		}
		defer syscall.Close(c)
		addr := &syscall.SockaddrInet4{Port: 9, Addr: [4]byte{127, 0, 0, 1}}
		for i := 0; i < 20; i++ {
			syscall.Sendto(c, []byte("zoomlens-live-test"), 0, addr)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	deadline := time.Now().Add(3 * time.Second)
	got := false
	for time.Now().Before(deadline) {
		rec, err := src.Next()
		if err != nil {
			continue // timeout tick
		}
		if len(rec.Data) > 0 && !rec.Timestamp.IsZero() {
			got = true
			break
		}
	}
	<-done
	if !got {
		t.Error("no packets captured on loopback")
	}
}

func TestOpenLiveBadInterface(t *testing.T) {
	if os.Geteuid() != 0 {
		t.Skip("needs CAP_NET_RAW")
	}
	if _, err := OpenLive("definitely-not-an-iface", 0); err == nil {
		t.Error("expected error for missing interface")
	}
}
