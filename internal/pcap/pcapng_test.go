package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// ngWriter builds pcapng streams for tests.
type ngWriter struct {
	buf   bytes.Buffer
	order binary.ByteOrder
}

func newNGWriter() *ngWriter { return &ngWriter{order: binary.LittleEndian} }

func (w *ngWriter) block(btype uint32, body []byte) {
	total := uint32(12 + len(body))
	pad := (4 - len(body)%4) % 4
	total += uint32(pad)
	var hdr [8]byte
	w.order.PutUint32(hdr[0:4], btype)
	w.order.PutUint32(hdr[4:8], total)
	w.buf.Write(hdr[:])
	w.buf.Write(body)
	w.buf.Write(make([]byte, pad))
	var tail [4]byte
	w.order.PutUint32(tail[:], total)
	w.buf.Write(tail[:])
}

func (w *ngWriter) shb() {
	body := make([]byte, 16)
	w.order.PutUint32(body[0:4], byteOrderMagic)
	w.order.PutUint16(body[4:6], 1)
	w.order.PutUint16(body[6:8], 0)
	for i := 8; i < 16; i++ {
		body[i] = 0xff // unknown section length
	}
	w.block(blockSHB, body)
}

// idb writes an interface description; tsresol 6 = microseconds, 9 = ns.
func (w *ngWriter) idb(linkType uint16, tsresol byte) {
	body := make([]byte, 8)
	w.order.PutUint16(body[0:2], linkType)
	// snaplen 0 (no limit)
	if tsresol != 0 {
		opt := []byte{9, 0, 1, 0, tsresol, 0, 0, 0} // if_tsresol + pad
		w.order.PutUint16(opt[0:2], 9)
		w.order.PutUint16(opt[2:4], 1)
		body = append(body, opt...)
		end := make([]byte, 4) // opt_endofopt
		body = append(body, end...)
	}
	w.block(blockIDB, body)
}

func (w *ngWriter) epb(ifIdx uint32, ts time.Time, unitsPerSecond uint64, data []byte) {
	raw := uint64(ts.Unix())*unitsPerSecond + uint64(ts.Nanosecond())*unitsPerSecond/uint64(time.Second)
	body := make([]byte, 20)
	w.order.PutUint32(body[0:4], ifIdx)
	w.order.PutUint32(body[4:8], uint32(raw>>32))
	w.order.PutUint32(body[8:12], uint32(raw))
	w.order.PutUint32(body[12:16], uint32(len(data)))
	w.order.PutUint32(body[16:20], uint32(len(data)))
	body = append(body, data...)
	w.block(blockEPB, body)
}

func TestNGReaderMicroseconds(t *testing.T) {
	w := newNGWriter()
	w.shb()
	w.idb(1, 6) // Ethernet, 10^-6
	ts := time.Date(2022, 5, 5, 12, 0, 0, 123456000, time.UTC)
	payload := []byte{1, 2, 3, 4, 5}
	w.epb(0, ts, 1_000_000, payload)

	ng, err := NewNGReader(&w.buf)
	if err != nil {
		t.Fatalf("NewNGReader: %v", err)
	}
	rec, err := ng.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if !rec.Timestamp.Equal(ts) {
		t.Errorf("ts = %v, want %v", rec.Timestamp, ts)
	}
	if !bytes.Equal(rec.Data, payload) || rec.OriginalLen != len(payload) {
		t.Errorf("data = %x len=%d", rec.Data, rec.OriginalLen)
	}
	if _, err := ng.Next(); err != io.EOF {
		t.Errorf("EOF expected, got %v", err)
	}
}

func TestNGReaderNanosecondResolution(t *testing.T) {
	w := newNGWriter()
	w.shb()
	w.idb(1, 9) // 10^-9
	ts := time.Date(2022, 5, 5, 12, 0, 0, 123456789, time.UTC)
	w.epb(0, ts, 1_000_000_000, []byte{0xaa})

	ng, err := NewNGReader(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ng.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Timestamp.Nanosecond() != 123456789 {
		t.Errorf("nsec = %d", rec.Timestamp.Nanosecond())
	}
}

func TestNGReaderSkipsUnknownBlocks(t *testing.T) {
	w := newNGWriter()
	w.shb()
	w.idb(1, 0)
	w.block(0x00000005, make([]byte, 12)) // interface statistics: skip
	w.epb(0, time.Unix(1000, 0), 1_000_000, []byte{7})
	ng, err := NewNGReader(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ng.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Data) != 1 || rec.Data[0] != 7 {
		t.Errorf("data = %x", rec.Data)
	}
}

func TestNGReaderMultiSection(t *testing.T) {
	w := newNGWriter()
	w.shb()
	w.idb(1, 6)
	w.epb(0, time.Unix(10, 0), 1_000_000, []byte{1})
	// New section resets interfaces.
	w.shb()
	w.idb(1, 9)
	w.epb(0, time.Unix(20, 0).Add(5*time.Nanosecond), 1_000_000_000, []byte{2})

	ng, err := NewNGReader(&w.buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ng.Next()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ng.Next()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Data[0] != 1 || r2.Data[0] != 2 {
		t.Errorf("order: %x %x", r1.Data, r2.Data)
	}
	if r2.Timestamp.Nanosecond() != 5 {
		t.Errorf("second-section nsec = %d", r2.Timestamp.Nanosecond())
	}
}

func TestNGReaderRejectsGarbage(t *testing.T) {
	if _, err := NewNGReader(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("accepted zero stream")
	}
	// SHB type but bad byte-order magic.
	var b bytes.Buffer
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:4], blockSHB)
	binary.LittleEndian.PutUint32(hdr[4:8], 28)
	b.Write(hdr)
	if _, err := NewNGReader(&b); err == nil {
		t.Error("accepted bad byte-order magic")
	}
}

func TestOpenAnyDispatch(t *testing.T) {
	// Classic pcap.
	var classic bytes.Buffer
	pw, _ := NewWriter(&classic, WriterOptions{})
	_ = pw.WriteRecord(time.Unix(5, 0), []byte{9, 9})
	next, err := OpenAny(&classic)
	if err != nil {
		t.Fatalf("OpenAny(classic): %v", err)
	}
	rec, err := next()
	if err != nil || len(rec.Data) != 2 {
		t.Errorf("classic rec = %v err=%v", rec, err)
	}

	// pcapng.
	w := newNGWriter()
	w.shb()
	w.idb(1, 6)
	w.epb(0, time.Unix(7, 0), 1_000_000, []byte{1, 2, 3})
	next2, err := OpenAny(&w.buf)
	if err != nil {
		t.Fatalf("OpenAny(ng): %v", err)
	}
	rec2, err := next2()
	if err != nil || len(rec2.Data) != 3 {
		t.Errorf("ng rec = %v err=%v", rec2, err)
	}

	// Garbage.
	if _, err := OpenAny(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6})); err == nil {
		t.Error("OpenAny accepted garbage")
	}
}

func TestNGWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewNGWriter(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2022, 5, 5, 12, 0, 0, 987654321, time.UTC)
	payloads := [][]byte{{1}, {2, 3}, {4, 5, 6, 7, 8}}
	for i, p := range payloads {
		if err := w.WriteRecord(ts.Add(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewNGReader(&buf)
	if err != nil {
		t.Fatalf("reading own output: %v", err)
	}
	for i, want := range payloads {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, want) {
			t.Errorf("record %d data = %x", i, rec.Data)
		}
		wantTS := ts.Add(time.Duration(i) * time.Millisecond)
		if !rec.Timestamp.Equal(wantTS) {
			t.Errorf("record %d ts = %v, want %v", i, rec.Timestamp, wantTS)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestNGWriterOpenAny(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewNGWriter(&buf, 1)
	_ = w.WriteRecord(time.Unix(100, 0), []byte{0xaa, 0xbb})
	next, err := OpenAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := next()
	if err != nil || len(rec.Data) != 2 {
		t.Fatalf("rec=%v err=%v", rec, err)
	}
}
