package pcap

// Tests for the zero-copy read path: NextInto's borrowed-buffer
// contract, Next/NextInto equivalence, and — for the pcapng reader —
// the same truncation contract the classic reader has had since the
// hardening PR: a stream cut mid-block yields every complete record,
// then a clean io.EOF with Truncated() set, and never a hard error.

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// zcPayloads are the test records; distinct lengths exercise the reused
// buffer both growing and shrinking between records.
var zcPayloads = [][]byte{
	bytes.Repeat([]byte{0x11}, 60),
	bytes.Repeat([]byte{0x22}, 9),
	bytes.Repeat([]byte{0x33}, 128),
}

func zcClassic(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range zcPayloads {
		if err := w.WriteRecord(time.Unix(int64(100+i), 0), p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func zcNG(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewNGWriter(&buf, uint16(LinkTypeEthernet))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range zcPayloads {
		if err := w.WriteRecord(time.Unix(int64(100+i), 0), p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestNextIntoBorrowsBuffer pins the lifetime contract: the Data slice
// filled by NextInto is invalidated by the next read (the reader reuses
// its buffer), while Next returns stable caller-owned copies.
func TestNextIntoBorrowsBuffer(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"pcap", zcClassic(t)},
		{"pcapng", zcNG(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := OpenStream(bytes.NewReader(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			var rec Record
			if err := s.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
			borrowed := rec.Data
			if !bytes.Equal(borrowed, zcPayloads[0]) {
				t.Fatalf("record 0 = %x", borrowed)
			}
			if err := s.NextInto(&rec); err != nil {
				t.Fatal(err)
			}
			// Record 1 is shorter than record 0, so it lands in the same
			// backing array: the borrowed slice must now see the new bytes.
			if bytes.Equal(borrowed[:len(zcPayloads[1])], zcPayloads[0][:len(zcPayloads[1])]) {
				t.Error("previous Data survived the next read; buffer is not reused (copy crept back in)")
			}

			owned, err := s.Next()
			if err != nil {
				t.Fatal(err)
			}
			keep := owned.Data
			if _, err := s.Next(); err != io.EOF {
				t.Fatalf("want EOF, got %v", err)
			}
			if !bytes.Equal(keep, zcPayloads[2]) {
				t.Error("Next's Data changed after subsequent reads; it must be caller-owned")
			}
		})
	}
}

// TestNextMatchesNextInto replays the same capture through both APIs
// and demands identical records.
func TestNextMatchesNextInto(t *testing.T) {
	for _, tc := range []struct {
		name string
		raw  []byte
	}{
		{"pcap", zcClassic(t)},
		{"pcapng", zcNG(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, err := OpenStream(bytes.NewReader(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			b, err := OpenStream(bytes.NewReader(tc.raw))
			if err != nil {
				t.Fatal(err)
			}
			var rec Record
			for {
				errA := a.NextInto(&rec)
				got, errB := b.Next()
				if (errA == io.EOF) != (errB == io.EOF) {
					t.Fatalf("EOF disagreement: NextInto=%v Next=%v", errA, errB)
				}
				if errA == io.EOF {
					break
				}
				if errA != nil || errB != nil {
					t.Fatalf("NextInto=%v Next=%v", errA, errB)
				}
				if !rec.Timestamp.Equal(got.Timestamp) || rec.OriginalLen != got.OriginalLen || !bytes.Equal(rec.Data, got.Data) {
					t.Fatalf("record mismatch: NextInto=%+v Next=%+v", rec, got)
				}
			}
		})
	}
}

// drainCut reads a capture prefix to exhaustion, returning the complete
// records recovered and the reader's truncation verdict. Any error but
// io.EOF fails the test: a cut capture must degrade, never explode.
func drainCut(t *testing.T, prefix []byte) (recs int, truncated bool) {
	t.Helper()
	s, err := OpenStream(bytes.NewReader(prefix))
	if err != nil {
		t.Fatalf("OpenStream on cut capture: %v", err)
	}
	var rec Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			return recs, s.Truncated()
		}
		if err != nil {
			t.Fatalf("cut capture must yield io.EOF, got %v after %d records", err, recs)
		}
		recs++
	}
}

// TestTruncationParityClassicVsNG cuts the same three-record capture at
// every byte offset in both serializations and checks the shared
// contract the engine relies on: every record fully contained in the
// prefix is recovered, and Truncated() is set exactly when the cut fell
// mid-record (classic) / mid-block (pcapng) — so both formats degrade
// identically under a crashed capture writer.
func TestTruncationParityClassicVsNG(t *testing.T) {
	classic := zcClassic(t)
	ng := zcNG(t)

	// Classic: fixed 24-byte file header, then 16-byte record headers.
	classicEnds := []int{24}
	for _, p := range zcPayloads {
		classicEnds = append(classicEnds, classicEnds[len(classicEnds)-1]+recordHeaderLen+len(p))
	}
	// pcapng: block boundaries, found by walking the little-endian
	// total-length field at offset 4 of each block.
	var ngEnds []int
	packetStart := -1 // offset of the first EPB
	for off := 0; off < len(ng); {
		total := int(binary.LittleEndian.Uint32(ng[off+4 : off+8]))
		btype := binary.LittleEndian.Uint32(ng[off : off+4])
		if btype == blockEPB && packetStart < 0 {
			packetStart = off
		}
		off += total
		ngEnds = append(ngEnds, off)
	}
	if packetStart < 0 {
		t.Fatal("no EPB in serialized pcapng")
	}

	check := func(t *testing.T, raw []byte, firstCut int, ends []int) {
		boundary := func(n int) bool {
			for _, e := range ends {
				if n == e {
					return true
				}
			}
			return false
		}
		completeBefore := func(n int) int {
			recs := 0
			for i, e := range ends {
				// ends[0] for classic is the file header; for pcapng the
				// leading entries are SHB/IDB blocks. Count only ends at or
				// after the first packet's end.
				if e <= n && ends[i] > firstCut {
					recs++
				}
			}
			return recs
		}
		for cut := firstCut + 1; cut < len(raw); cut++ {
			recs, truncated := drainCut(t, raw[:cut])
			if want := completeBefore(cut); recs != want {
				t.Fatalf("cut at %d: recovered %d records, want %d", cut, recs, want)
			}
			if want := !boundary(cut); truncated != want {
				t.Fatalf("cut at %d: Truncated() = %v, want %v", cut, truncated, want)
			}
		}
	}
	t.Run("pcap", func(t *testing.T) { check(t, classic, 24, classicEnds[1:]) })
	t.Run("pcapng", func(t *testing.T) { check(t, ng, packetStart, ngEnds) })
}
