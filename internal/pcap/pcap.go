// Package pcap reads and writes packet capture files in the classic
// libpcap format (the format produced by tcpdump and consumed by
// Wireshark). Both microsecond- and nanosecond-resolution captures are
// supported, in either byte order, without external dependencies.
//
// The package is deliberately small: a Reader that yields one Record at a
// time and a Writer that appends records. Higher layers (decoding,
// filtering) live elsewhere.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers identifying the global header, per the libpcap file format.
const (
	MagicMicroseconds        = 0xa1b2c3d4
	MagicNanoseconds         = 0xa1b23c4d
	magicMicrosecondsSwapped = 0xd4c3b2a1
	magicNanosecondsSwapped  = 0x4d3cb2a1
)

// Link types used by this repository. Values follow the pcap LINKTYPE
// registry.
const (
	LinkTypeEthernet uint32 = 1
	LinkTypeRawIP    uint32 = 101
)

const (
	globalHeaderLen = 24
	recordHeaderLen = 16
	// DefaultSnapLen is the snapshot length written to new files. Zoom
	// analysis needs full packets, so it is generous.
	DefaultSnapLen = 262144
)

// ErrBadMagic reports that the stream does not begin with a known pcap
// magic number.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Header is the decoded pcap global header.
type Header struct {
	// Nanosecond reports whether record timestamps carry nanoseconds
	// (true) or microseconds (false) in their sub-second field.
	Nanosecond bool
	// VersionMajor and VersionMinor are the format version, normally 2.4.
	VersionMajor uint16
	VersionMinor uint16
	// SnapLen is the maximum number of bytes captured per packet.
	SnapLen uint32
	// LinkType identifies the layer-2 framing of every record.
	LinkType uint32
}

// Record is a single captured packet.
type Record struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// OriginalLen is the packet's length on the wire, which may exceed
	// len(Data) if the capture was truncated by the snap length.
	OriginalLen int
	// Data is the captured bytes, starting at the file's link type.
	Data []byte
	// PacketID is the 64-bit epb_packetid option of a pcapng enhanced
	// packet block, valid only when HasPacketID is set. The cluster
	// splitter uses it to carry the global capture sequence number to
	// worker processes; classic pcap has no per-record options, so
	// records read from it never carry one.
	PacketID    uint64
	HasPacketID bool
}

// Reader reads records from a pcap stream.
type Reader struct {
	r         io.Reader
	order     binary.ByteOrder
	hdr       Header
	truncated bool
	scratch   [recordHeaderLen]byte
	// buf is the reused record body buffer NextInto lends out; it grows
	// to the largest record seen and is never returned to the caller's
	// ownership.
	buf []byte
}

// NewReader parses the global header from r and returns a Reader
// positioned at the first record.
func NewReader(r io.Reader) (*Reader, error) {
	var buf [globalHeaderLen]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	var order binary.ByteOrder
	var nano bool
	switch binary.LittleEndian.Uint32(buf[0:4]) {
	case MagicMicroseconds:
		order, nano = binary.LittleEndian, false
	case MagicNanoseconds:
		order, nano = binary.LittleEndian, true
	case magicMicrosecondsSwapped:
		order, nano = binary.BigEndian, false
	case magicNanosecondsSwapped:
		order, nano = binary.BigEndian, true
	default:
		return nil, ErrBadMagic
	}
	rd := &Reader{r: r, order: order}
	rd.hdr = Header{
		Nanosecond:   nano,
		VersionMajor: order.Uint16(buf[4:6]),
		VersionMinor: order.Uint16(buf[6:8]),
		SnapLen:      order.Uint32(buf[16:20]),
		LinkType:     order.Uint32(buf[20:24]),
	}
	return rd, nil
}

// Header returns the file's global header.
func (r *Reader) Header() Header { return r.hdr }

// Truncated reports whether the stream ended mid-record: the capture was
// cut (a crashed or interrupted tcpdump, a partial copy). Every record
// before the cut was returned normally, so the results computed from
// them are valid partial results. Matching the pcapng reader, the cut
// itself surfaces as a clean io.EOF from Next, not an error.
func (r *Reader) Truncated() bool { return r.truncated }

// NextInto reads the next record into rec without allocating: rec.Data
// borrows a buffer owned by the Reader and is valid only until the next
// NextInto or Next call. Callers that retain the bytes must copy them.
// io.EOF marks a clean end of stream; a cut mid-record yields io.EOF
// with Truncated() set.
func (r *Reader) NextInto(rec *Record) error {
	if _, err := io.ReadFull(r.r, r.scratch[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			r.truncated = true
			return io.EOF
		}
		return fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.order.Uint32(r.scratch[0:4])
	sub := r.order.Uint32(r.scratch[4:8])
	capLen := r.order.Uint32(r.scratch[8:12])
	origLen := r.order.Uint32(r.scratch[12:16])
	if capLen > r.hdr.SnapLen && r.hdr.SnapLen != 0 {
		return fmt.Errorf("pcap: record capture length %d exceeds snap length %d", capLen, r.hdr.SnapLen)
	}
	const sanityCap = 1 << 26
	if capLen > sanityCap {
		return fmt.Errorf("pcap: implausible record capture length %d", capLen)
	}
	if int(capLen) > cap(r.buf) {
		r.buf = make([]byte, capLen)
	}
	data := r.buf[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.truncated = true
			return io.EOF
		}
		return fmt.Errorf("pcap: reading record body: %w", err)
	}
	nsec := int64(sub)
	if !r.hdr.Nanosecond {
		nsec *= 1000
	}
	rec.Timestamp = time.Unix(int64(sec), nsec).UTC()
	rec.OriginalLen = int(origLen)
	rec.Data = data
	rec.PacketID = 0
	rec.HasPacketID = false
	return nil
}

// Next returns the next record, or io.EOF at a clean end of stream. The
// returned Data slice is a fresh copy owned by the caller; hot loops
// should prefer NextInto, which lends the Reader's buffer instead. A
// stream cut mid-record yields io.EOF with Truncated() set.
func (r *Reader) Next() (Record, error) {
	var rec Record
	if err := r.NextInto(&rec); err != nil {
		return Record{}, err
	}
	data := make([]byte, len(rec.Data))
	copy(data, rec.Data)
	rec.Data = data
	return rec, nil
}

// Writer appends pcap records to an underlying stream. Writers always emit
// little-endian, version 2.4 files.
type Writer struct {
	w       io.Writer
	nano    bool
	snapLen uint32
	scratch [recordHeaderLen]byte
}

// WriterOptions configures NewWriter.
type WriterOptions struct {
	// LinkType of all records; defaults to Ethernet.
	LinkType uint32
	// SnapLen written to the global header; defaults to DefaultSnapLen.
	SnapLen uint32
	// Nanosecond selects nanosecond timestamp resolution.
	Nanosecond bool
}

// NewWriter writes a global header to w and returns a Writer.
func NewWriter(w io.Writer, opts WriterOptions) (*Writer, error) {
	if opts.LinkType == 0 {
		opts.LinkType = LinkTypeEthernet
	}
	if opts.SnapLen == 0 {
		opts.SnapLen = DefaultSnapLen
	}
	magic := uint32(MagicMicroseconds)
	if opts.Nanosecond {
		magic = MagicNanoseconds
	}
	var buf [globalHeaderLen]byte
	le := binary.LittleEndian
	le.PutUint32(buf[0:4], magic)
	le.PutUint16(buf[4:6], 2)
	le.PutUint16(buf[6:8], 4)
	// thiszone and sigfigs stay zero.
	le.PutUint32(buf[16:20], opts.SnapLen)
	le.PutUint32(buf[20:24], opts.LinkType)
	if _, err := w.Write(buf[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w, nano: opts.Nanosecond, snapLen: opts.SnapLen}, nil
}

// WriteRecord appends one packet. Data longer than the snap length is
// truncated, with OriginalLen preserved.
func (w *Writer) WriteRecord(ts time.Time, data []byte) error {
	origLen := len(data)
	if uint32(len(data)) > w.snapLen {
		data = data[:w.snapLen]
	}
	le := binary.LittleEndian
	sec := ts.Unix()
	var sub int64
	if w.nano {
		sub = int64(ts.Nanosecond())
	} else {
		sub = int64(ts.Nanosecond()) / 1000
	}
	le.PutUint32(w.scratch[0:4], uint32(sec))
	le.PutUint32(w.scratch[4:8], uint32(sub))
	le.PutUint32(w.scratch[8:12], uint32(len(data)))
	le.PutUint32(w.scratch[12:16], uint32(origLen))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record body: %w", err)
	}
	return nil
}
