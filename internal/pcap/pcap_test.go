package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripMicroseconds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	ts := time.Date(2022, 5, 5, 12, 0, 0, 123456000, time.UTC)
	payload := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	if err := w.WriteRecord(ts, payload); err != nil {
		t.Fatalf("WriteRecord: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	hdr := r.Header()
	if hdr.Nanosecond {
		t.Error("expected microsecond resolution")
	}
	if hdr.LinkType != LinkTypeEthernet {
		t.Errorf("LinkType = %d, want %d", hdr.LinkType, LinkTypeEthernet)
	}
	if hdr.VersionMajor != 2 || hdr.VersionMinor != 4 {
		t.Errorf("version = %d.%d, want 2.4", hdr.VersionMajor, hdr.VersionMinor)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if !rec.Timestamp.Equal(ts) {
		t.Errorf("Timestamp = %v, want %v", rec.Timestamp, ts)
	}
	if !bytes.Equal(rec.Data, payload) {
		t.Errorf("Data = %x, want %x", rec.Data, payload)
	}
	if rec.OriginalLen != len(payload) {
		t.Errorf("OriginalLen = %d, want %d", rec.OriginalLen, len(payload))
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("Next after last record = %v, want io.EOF", err)
	}
}

func TestRoundTripNanoseconds(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{Nanosecond: true, LinkType: LinkTypeRawIP})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	ts := time.Date(2022, 5, 5, 12, 0, 0, 123456789, time.UTC)
	if err := w.WriteRecord(ts, []byte{1, 2, 3}); err != nil {
		t.Fatalf("WriteRecord: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !r.Header().Nanosecond {
		t.Error("expected nanosecond resolution")
	}
	if r.Header().LinkType != LinkTypeRawIP {
		t.Errorf("LinkType = %d, want %d", r.Header().LinkType, LinkTypeRawIP)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if rec.Timestamp.Nanosecond() != 123456789 {
		t.Errorf("nanoseconds = %d, want 123456789", rec.Timestamp.Nanosecond())
	}
}

func TestBigEndianFile(t *testing.T) {
	// Hand-build a big-endian microsecond file with one 4-byte record.
	var buf bytes.Buffer
	be := binary.BigEndian
	var gh [24]byte
	be.PutUint32(gh[0:4], MagicMicroseconds)
	be.PutUint16(gh[4:6], 2)
	be.PutUint16(gh[6:8], 4)
	be.PutUint32(gh[16:20], 65535)
	be.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh[:])
	var rh [16]byte
	be.PutUint32(rh[0:4], 1651752000)
	be.PutUint32(rh[4:8], 42)
	be.PutUint32(rh[8:12], 4)
	be.PutUint32(rh[12:16], 4)
	buf.Write(rh[:])
	buf.Write([]byte{9, 8, 7, 6})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if got := rec.Timestamp.Unix(); got != 1651752000 {
		t.Errorf("sec = %d, want 1651752000", got)
	}
	if got := rec.Timestamp.Nanosecond(); got != 42000 {
		t.Errorf("nsec = %d, want 42000", got)
	}
	if !bytes.Equal(rec.Data, []byte{9, 8, 7, 6}) {
		t.Errorf("Data = %x", rec.Data)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if err == nil {
		t.Error("expected error for truncated global header")
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterOptions{})
	_ = w.WriteRecord(time.Unix(0, 0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected error for truncated record body")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, WriterOptions{SnapLen: 4})
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	if err := w.WriteRecord(time.Unix(1, 0), []byte{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatalf("WriteRecord: %v", err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if len(rec.Data) != 4 {
		t.Errorf("len(Data) = %d, want 4", len(rec.Data))
	}
	if rec.OriginalLen != 6 {
		t.Errorf("OriginalLen = %d, want 6", rec.OriginalLen)
	}
}

func TestImplausibleCaptureLength(t *testing.T) {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var gh [24]byte
	le.PutUint32(gh[0:4], MagicMicroseconds)
	le.PutUint32(gh[16:20], 0) // snaplen 0: skip snaplen check
	le.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh[:])
	var rh [16]byte
	le.PutUint32(rh[8:12], 1<<27) // absurd caplen
	buf.Write(rh[:])
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected error for implausible capture length")
	}
}

// TestQuickRoundTrip checks that arbitrary payload/timestamp combinations
// survive a write/read cycle.
func TestQuickRoundTrip(t *testing.T) {
	f := func(payload []byte, sec uint32, usec uint32) bool {
		usec %= 1_000_000
		ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
		var buf bytes.Buffer
		w, err := NewWriter(&buf, WriterOptions{})
		if err != nil {
			return false
		}
		if err := w.WriteRecord(ts, payload); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		rec, err := r.Next()
		if err != nil {
			return false
		}
		return rec.Timestamp.Equal(ts) && bytes.Equal(rec.Data, payload) && rec.OriginalLen == len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestManyRecordsSequential(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, WriterOptions{Nanosecond: true})
	rng := rand.New(rand.NewSource(1))
	const n = 500
	want := make([][]byte, n)
	base := time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		b := make([]byte, 1+rng.Intn(1400))
		rng.Read(b)
		want[i] = b
		if err := w.WriteRecord(base.Add(time.Duration(i)*time.Millisecond), b); err != nil {
			t.Fatalf("WriteRecord %d: %v", i, err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if !bytes.Equal(rec.Data, want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
		if wantTS := base.Add(time.Duration(i) * time.Millisecond); !rec.Timestamp.Equal(wantTS) {
			t.Fatalf("record %d timestamp = %v, want %v", i, rec.Timestamp, wantTS)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}
