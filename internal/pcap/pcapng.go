package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// This file adds a reader for the pcapng format (the default output of
// modern Wireshark/dumpcap), so traces captured with current tooling
// feed the analyzer without conversion. Supported blocks: section
// header (SHB), interface description (IDB), enhanced packet (EPB), and
// the obsolete simple packet block (SPB); all other block types are
// skipped. Multi-section files and per-interface timestamp resolutions
// are handled.

// pcapng block type codes.
const (
	blockSHB = 0x0a0d0d0a
	blockIDB = 0x00000001
	blockEPB = 0x00000006
	blockSPB = 0x00000003
)

const byteOrderMagic = 0x1a2b3c4d

// ErrNotPcapng reports that the stream does not begin with a section
// header block.
var ErrNotPcapng = errors.New("pcap: not a pcapng stream")

// NGReader reads packets from a pcapng stream.
type NGReader struct {
	r     io.Reader
	order binary.ByteOrder
	// interfaces carries per-interface metadata of the current section.
	interfaces []ngInterface
	snapLen    uint32
	truncated  bool
	// buf is the reused block buffer; record Data returned by NextInto
	// aliases it and is valid only until the next block is read.
	buf []byte
	// hdr is the persistent block-header scratch: a local would escape
	// through the io.Reader interface call and cost one heap allocation
	// per block.
	hdr [8]byte
}

// Truncated reports whether the stream ended mid-block (a cut capture).
// Records before the cut were returned normally.
func (ng *NGReader) Truncated() bool { return ng.truncated }

type ngInterface struct {
	linkType uint16
	// tsDivisor converts raw timestamp units to nanoseconds:
	// nanos = raw * 1e9 / unitsPerSecond.
	unitsPerSecond uint64
}

// NewNGReader parses the leading section header and returns a reader.
func NewNGReader(r io.Reader) (*NGReader, error) {
	ng := &NGReader{r: r}
	btype, body, err := ng.readBlockHeaderless()
	if err != nil {
		return nil, err
	}
	if btype != blockSHB {
		return nil, ErrNotPcapng
	}
	if err := ng.parseSHB(body); err != nil {
		return nil, err
	}
	return ng, nil
}

// readBlockHeaderless reads one block assuming little-endian lengths
// (resolved properly once the SHB fixes the byte order; the SHB's own
// type code is order-independent).
func (ng *NGReader) readBlockHeaderless() (uint32, []byte, error) {
	if _, err := io.ReadFull(ng.r, ng.hdr[:]); err != nil {
		return 0, nil, err
	}
	btype := binary.LittleEndian.Uint32(ng.hdr[0:4])
	if btype == blockSHB {
		// Peek the byte-order magic to determine endianness before
		// trusting the length.
		var bom [4]byte
		if _, err := io.ReadFull(ng.r, bom[:]); err != nil {
			return 0, nil, midEOF(err)
		}
		switch binary.LittleEndian.Uint32(bom[:]) {
		case byteOrderMagic:
			ng.order = binary.LittleEndian
		case 0x4d3c2b1a:
			ng.order = binary.BigEndian
		default:
			return 0, nil, ErrNotPcapng
		}
		total := ng.order.Uint32(ng.hdr[4:8])
		if total < 16 || total%4 != 0 || total > 1<<20 {
			return 0, nil, fmt.Errorf("pcap: bad SHB length %d", total)
		}
		body := ng.grow(int(total - 8))
		copy(body, bom[:])
		if _, err := io.ReadFull(ng.r, body[4:]); err != nil {
			return 0, nil, midEOF(err)
		}
		return btype, body[:total-12], nil
	}
	if ng.order == nil {
		return 0, nil, ErrNotPcapng
	}
	total := ng.order.Uint32(ng.hdr[4:8])
	if total < 12 || total%4 != 0 || total > 1<<26 {
		return 0, nil, fmt.Errorf("pcap: bad block length %d", total)
	}
	body := ng.grow(int(total - 8))
	if _, err := io.ReadFull(ng.r, body); err != nil {
		return 0, nil, midEOF(err)
	}
	return btype, body[:total-12], nil
}

// grow returns ng.buf resized to n bytes, reallocating only when the
// block is larger than any seen before.
func (ng *NGReader) grow(n int) []byte {
	if n > cap(ng.buf) {
		ng.buf = make([]byte, n)
	}
	return ng.buf[:n]
}

// midEOF upgrades a bare io.EOF hit after a block header was already
// consumed to io.ErrUnexpectedEOF, so Next can tell a clean end of
// stream from a mid-block cut.
func midEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func (ng *NGReader) parseSHB(body []byte) error {
	// body: byte-order magic (4), version (4), section length (8), options.
	if len(body) < 16 {
		return fmt.Errorf("pcap: SHB too short")
	}
	ng.interfaces = ng.interfaces[:0]
	return nil
}

func (ng *NGReader) parseIDB(body []byte) error {
	if len(body) < 8 {
		return fmt.Errorf("pcap: IDB too short")
	}
	iface := ngInterface{
		linkType:       ng.order.Uint16(body[0:2]),
		unitsPerSecond: 1_000_000, // default: microseconds
	}
	// Options begin at offset 8: scan for if_tsresol (code 9).
	opts := body[8:]
	for len(opts) >= 4 {
		code := ng.order.Uint16(opts[0:2])
		olen := int(ng.order.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if len(opts) < 4+padded {
			break
		}
		if code == 9 && olen >= 1 {
			v := opts[4]
			if v&0x80 != 0 {
				iface.unitsPerSecond = 1 << (v & 0x7f)
			} else {
				iface.unitsPerSecond = pow10(v)
			}
		}
		if code == 0 {
			break
		}
		opts = opts[4+padded:]
	}
	ng.interfaces = append(ng.interfaces, iface)
	return nil
}

func pow10(n uint8) uint64 {
	out := uint64(1)
	for i := uint8(0); i < n && i < 19; i++ {
		out *= 10
	}
	return out
}

// NextInto reads the next packet record into rec, skipping non-packet
// blocks, without allocating: rec.Data borrows the reader's block
// buffer and is valid only until the next NextInto or Next call.
// io.EOF marks a clean end of stream; a cut mid-block yields io.EOF
// with Truncated() set.
func (ng *NGReader) NextInto(rec *Record) error {
	for {
		btype, body, err := ng.readBlockHeaderless()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				ng.truncated = true
				return io.EOF
			}
			return err
		}
		switch btype {
		case blockSHB:
			if err := ng.parseSHB(body); err != nil {
				return err
			}
		case blockIDB:
			if err := ng.parseIDB(body); err != nil {
				return err
			}
		case blockEPB:
			return ng.parseEPB(body, rec)
		case blockSPB:
			return ng.parseSPB(body, rec)
		default:
			// skip
		}
	}
}

// Next returns the next packet record, skipping non-packet blocks. The
// returned Data slice is a fresh copy owned by the caller; hot loops
// should prefer NextInto. io.EOF marks a clean end of stream.
func (ng *NGReader) Next() (Record, error) {
	var rec Record
	if err := ng.NextInto(&rec); err != nil {
		return Record{}, err
	}
	data := make([]byte, len(rec.Data))
	copy(data, rec.Data)
	rec.Data = data
	return rec, nil
}

func (ng *NGReader) parseEPB(body []byte, rec *Record) error {
	if len(body) < 20 {
		return fmt.Errorf("pcap: EPB too short")
	}
	ifIdx := ng.order.Uint32(body[0:4])
	tsHigh := ng.order.Uint32(body[4:8])
	tsLow := ng.order.Uint32(body[8:12])
	capLen := ng.order.Uint32(body[12:16])
	origLen := ng.order.Uint32(body[16:20])
	if int(capLen) > len(body)-20 {
		return fmt.Errorf("pcap: EPB capture length %d exceeds block", capLen)
	}
	units := uint64(1_000_000)
	if int(ifIdx) < len(ng.interfaces) {
		units = ng.interfaces[ifIdx].unitsPerSecond
	}
	raw := uint64(tsHigh)<<32 | uint64(tsLow)
	sec := raw / units
	frac := raw % units
	nsec := frac * uint64(time.Second) / units
	rec.Timestamp = time.Unix(int64(sec), int64(nsec)).UTC()
	rec.OriginalLen = int(origLen)
	rec.Data = body[20 : 20+capLen]
	rec.PacketID = 0
	rec.HasPacketID = false
	// Options follow the padded packet data: scan for epb_packetid
	// (code 5, a 64-bit per-packet identifier — the cluster splitter's
	// global capture sequence number).
	opts := body[20+((int(capLen)+3)&^3):]
	for len(opts) >= 4 {
		code := ng.order.Uint16(opts[0:2])
		olen := int(ng.order.Uint16(opts[2:4]))
		padded := (olen + 3) &^ 3
		if len(opts) < 4+padded {
			break
		}
		if code == 5 && olen == 8 {
			rec.PacketID = ng.order.Uint64(opts[4:12])
			rec.HasPacketID = true
		}
		if code == 0 {
			break
		}
		opts = opts[4+padded:]
	}
	return nil
}

func (ng *NGReader) parseSPB(body []byte, rec *Record) error {
	if len(body) < 4 {
		return fmt.Errorf("pcap: SPB too short")
	}
	origLen := ng.order.Uint32(body[0:4])
	capLen := uint32(len(body) - 4)
	if ng.snapLen > 0 && origLen < capLen {
		capLen = origLen
	}
	rec.Timestamp = time.Time{}
	rec.OriginalLen = int(origLen)
	rec.Data = body[4 : 4+capLen]
	rec.PacketID = 0
	rec.HasPacketID = false
	return nil
}

// Stream is a format-agnostic record iterator over either classic pcap
// or pcapng, carrying the reader-level truncation state alongside the
// records.
type Stream struct {
	next      func() (Record, error)
	nextInto  func(*Record) error
	truncated func() bool
	nano      bool
}

// Next returns the next record, or io.EOF at end of stream (clean or
// cut — consult Truncated to distinguish). The returned Data is a fresh
// copy owned by the caller; hot loops should prefer NextInto.
func (s *Stream) Next() (Record, error) { return s.next() }

// NextInto reads the next record into rec without allocating: rec.Data
// borrows the underlying reader's buffer and is valid only until the
// next NextInto or Next call.
func (s *Stream) NextInto(rec *Record) error { return s.nextInto(rec) }

// Truncated reports whether the underlying stream was cut mid-record.
func (s *Stream) Truncated() bool { return s.truncated() }

// Nanosecond reports whether record timestamps carry full nanosecond
// resolution: the global-header flag for classic pcap, always true for
// pcapng. Writers that preserve timestamp resolution consult this.
func (s *Stream) Nanosecond() bool { return s.nano }

// OpenStream sniffs the stream and returns a record iterator for either
// classic pcap or pcapng. It reads the first four bytes to decide.
func OpenStream(r io.Reader) (*Stream, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("pcap: sniffing magic: %w", err)
	}
	joined := io.MultiReader(bytesReader(magic[:]), r)
	if binary.LittleEndian.Uint32(magic[:]) == blockSHB {
		ng, err := NewNGReader(joined)
		if err != nil {
			return nil, err
		}
		return &Stream{next: ng.Next, nextInto: ng.NextInto, truncated: ng.Truncated, nano: true}, nil
	}
	pr, err := NewReader(joined)
	if err != nil {
		return nil, err
	}
	return &Stream{next: pr.Next, nextInto: pr.NextInto, truncated: pr.Truncated, nano: pr.Header().Nanosecond}, nil
}

// OpenAny is OpenStream without the truncation accessor, kept for
// callers that only need the iterator.
func OpenAny(r io.Reader) (func() (Record, error), error) {
	s, err := OpenStream(r)
	if err != nil {
		return nil, err
	}
	return s.Next, nil
}

// bytesReader avoids importing bytes for one call site.
type byteSliceReader struct {
	b []byte
}

func bytesReader(b []byte) io.Reader { return &byteSliceReader{b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// NGWriter writes pcapng streams (one section, one Ethernet interface,
// enhanced packet blocks with nanosecond timestamps) so zoomlens output
// opens in modern Wireshark without conversion.
type NGWriter struct {
	w io.Writer
}

// NewNGWriter emits the section header and interface description and
// returns a writer.
func NewNGWriter(w io.Writer, linkType uint16) (*NGWriter, error) {
	ng := &NGWriter{w: w}
	// SHB: byte-order magic, version 1.0, unknown section length.
	shb := make([]byte, 16)
	binary.LittleEndian.PutUint32(shb[0:4], byteOrderMagic)
	binary.LittleEndian.PutUint16(shb[4:6], 1)
	for i := 8; i < 16; i++ {
		shb[i] = 0xff
	}
	if err := ng.writeBlock(blockSHB, shb); err != nil {
		return nil, err
	}
	// IDB: link type, snaplen 0, if_tsresol = 9 (nanoseconds).
	idb := make([]byte, 8, 20)
	binary.LittleEndian.PutUint16(idb[0:2], linkType)
	idb = append(idb, 9, 0, 1, 0, 9, 0, 0, 0) // option 9 len 1 value 9 + pad
	idb = append(idb, 0, 0, 0, 0)             // opt_endofopt
	if err := ng.writeBlock(blockIDB, idb); err != nil {
		return nil, err
	}
	return ng, nil
}

// WriteRecord appends one enhanced packet block.
func (ng *NGWriter) WriteRecord(ts time.Time, data []byte) error {
	raw := uint64(ts.UnixNano())
	body := make([]byte, 20, 20+len(data))
	binary.LittleEndian.PutUint32(body[0:4], 0) // interface 0
	binary.LittleEndian.PutUint32(body[4:8], uint32(raw>>32))
	binary.LittleEndian.PutUint32(body[8:12], uint32(raw))
	binary.LittleEndian.PutUint32(body[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(body[16:20], uint32(len(data)))
	body = append(body, data...)
	return ng.writeBlock(blockEPB, body)
}

// WriteRecordID appends one enhanced packet block carrying an
// epb_packetid option (code 5). The cluster splitter stamps each
// forwarded frame with its global capture sequence number this way, so
// worker processes can reconstruct the exact cross-worker capture order
// the byte-identical merge invariant depends on.
func (ng *NGWriter) WriteRecordID(ts time.Time, data []byte, id uint64) error {
	raw := uint64(ts.UnixNano())
	pad := (4 - len(data)%4) % 4
	body := make([]byte, 20, 20+len(data)+pad+16)
	binary.LittleEndian.PutUint32(body[0:4], 0) // interface 0
	binary.LittleEndian.PutUint32(body[4:8], uint32(raw>>32))
	binary.LittleEndian.PutUint32(body[8:12], uint32(raw))
	binary.LittleEndian.PutUint32(body[12:16], uint32(len(data)))
	binary.LittleEndian.PutUint32(body[16:20], uint32(len(data)))
	body = append(body, data...)
	for i := 0; i < pad; i++ {
		body = append(body, 0) // options start 32-bit aligned
	}
	body = append(body, 5, 0, 8, 0) // epb_packetid, length 8
	body = binary.LittleEndian.AppendUint64(body, id)
	body = append(body, 0, 0, 0, 0) // opt_endofopt
	return ng.writeBlock(blockEPB, body)
}

func (ng *NGWriter) writeBlock(btype uint32, body []byte) error {
	pad := (4 - len(body)%4) % 4
	total := uint32(12 + len(body) + pad)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], btype)
	binary.LittleEndian.PutUint32(hdr[4:8], total)
	if _, err := ng.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := ng.w.Write(body); err != nil {
		return err
	}
	if pad > 0 {
		if _, err := ng.w.Write(make([]byte, pad)); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], total)
	_, err := ng.w.Write(tail[:])
	return err
}
