// Package netsim is a small discrete-event network simulator: a virtual
// clock with an event queue, and point-to-point links with configurable
// delay, jitter, loss, and scheduled congestion episodes.
//
// It stands in for the physical networks of the paper's controlled
// experiments (§5, Figure 10: a two-party call with injected
// cross-traffic) and campus deployment (§6), so that the analysis
// pipeline can be exercised on byte-exact Zoom traffic with known ground
// truth.
package netsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Engine is a run-to-completion discrete event simulator.
type Engine struct {
	now   time.Time
	queue eventQueue
	seq   uint64 // tiebreaker for deterministic ordering
}

// NewEngine starts the virtual clock at start.
func NewEngine(start time.Time) *Engine {
	return &Engine{now: start}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Time { return e.now }

// Schedule runs f at the given virtual time. Times in the past run "now"
// (immediately on the next dispatch), preserving causal order.
func (e *Engine) Schedule(at time.Time, f func()) {
	if at.Before(e.now) {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at.UnixNano(), seq: e.seq, f: f})
}

// After schedules f after a virtual delay.
func (e *Engine) After(d time.Duration, f func()) { e.Schedule(e.now.Add(d), f) }

// Every schedules f at a fixed period until the predicate (if non-nil)
// returns false.
func (e *Engine) Every(period time.Duration, f func(), while func() bool) {
	var tick func()
	tick = func() {
		if while != nil && !while() {
			return
		}
		f()
		e.After(period, tick)
	}
	e.After(period, tick)
}

// Run dispatches events until the queue is empty or the clock passes
// until. Events at exactly until still run.
func (e *Engine) Run(until time.Time) {
	lim := until.UnixNano()
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.at > lim {
			return
		}
		heap.Pop(&e.queue)
		e.now = time.Unix(0, ev.at).UTC()
		ev.f()
	}
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

type event struct {
	at  int64 // UnixNano; avoids time.Time comparison cost in the hot heap
	seq uint64
	f   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Congestion is a scheduled impairment episode on a link, modeling the
// cross-traffic injections of §5 ("we introduced cross-traffic twice
// during each call by running a network bandwidth test").
type Congestion struct {
	Start      time.Time
	End        time.Time
	ExtraDelay time.Duration
	// ExtraJitter is the additional uniform jitter amplitude.
	ExtraJitter time.Duration
	// LossRate is the additional loss probability (0..1).
	LossRate float64
}

// Active reports whether the episode covers t.
func (c Congestion) Active(t time.Time) bool {
	return !t.Before(c.Start) && t.Before(c.End)
}

// Link is a unidirectional path segment with delay, jitter, and loss.
// Delivery order is not enforced: a large jitter draw can reorder
// packets, as on real networks.
type Link struct {
	// BaseDelay is the propagation+processing delay.
	BaseDelay time.Duration
	// Jitter is the amplitude of uniform random extra delay in
	// [0, Jitter).
	Jitter time.Duration
	// LossRate is the steady-state loss probability (0..1).
	LossRate float64
	// Episodes are scheduled congestion periods.
	Episodes []Congestion

	rng *rand.Rand
	eng *Engine
}

// NewLink builds a link bound to an engine with its own deterministic
// random stream.
func NewLink(eng *Engine, base, jitter time.Duration, loss float64, seed int64) *Link {
	return &Link{
		BaseDelay: base,
		Jitter:    jitter,
		LossRate:  loss,
		rng:       rand.New(rand.NewSource(seed)),
		eng:       eng,
	}
}

// Send transmits: deliver runs after the sampled delay unless the packet
// is lost. It returns whether the packet survived and the sampled
// arrival time (zero time if lost).
func (l *Link) Send(deliver func(arrival time.Time)) (ok bool, arrival time.Time) {
	now := l.eng.Now()
	delay := l.BaseDelay
	jitter := l.Jitter
	loss := l.LossRate
	for _, ep := range l.Episodes {
		if ep.Active(now) {
			delay += ep.ExtraDelay
			jitter += ep.ExtraJitter
			loss += ep.LossRate
		}
	}
	if loss > 0 && l.rng.Float64() < loss {
		return false, time.Time{}
	}
	if jitter > 0 {
		delay += time.Duration(l.rng.Int63n(int64(jitter)))
	}
	at := now.Add(delay)
	l.eng.Schedule(at, func() { deliver(at) })
	return true, at
}

// CurrentDelayBounds returns the min and max one-way delay at time t
// (base plus active episodes, with and without jitter). Useful for
// ground-truth latency reporting.
func (l *Link) CurrentDelayBounds(t time.Time) (min, max time.Duration) {
	min = l.BaseDelay
	j := l.Jitter
	for _, ep := range l.Episodes {
		if ep.Active(t) {
			min += ep.ExtraDelay
			j += ep.ExtraJitter
		}
	}
	return min, min + j
}
