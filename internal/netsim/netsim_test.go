package netsim

import (
	"testing"
	"time"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	e.Schedule(t0.Add(3*time.Second), func() { got = append(got, 3) })
	e.Schedule(t0.Add(1*time.Second), func() { got = append(got, 1) })
	e.Schedule(t0.Add(2*time.Second), func() { got = append(got, 2) })
	e.Run(t0.Add(time.Minute))
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
	if e.Now() != t0.Add(3*time.Second) {
		t.Errorf("now = %v", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine(t0)
	var got []int
	at := t0.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(at, func() { got = append(got, i) })
	}
	e.Run(t0.Add(time.Minute))
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine(t0)
	ran := 0
	e.Schedule(t0.Add(time.Second), func() { ran++ })
	e.Schedule(t0.Add(time.Hour), func() { ran++ })
	e.Run(t0.Add(time.Minute))
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(t0)
	var times []time.Time
	e.Schedule(t0.Add(time.Second), func() {
		e.After(time.Second, func() { times = append(times, e.Now()) })
	})
	e.Run(t0.Add(time.Minute))
	if len(times) != 1 || !times[0].Equal(t0.Add(2*time.Second)) {
		t.Errorf("times = %v", times)
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	e := NewEngine(t0)
	var at time.Time
	e.Schedule(t0.Add(time.Second), func() {
		e.Schedule(t0, func() { at = e.Now() }) // in the past
	})
	e.Run(t0.Add(time.Minute))
	if !at.Equal(t0.Add(time.Second)) {
		t.Errorf("past event ran at %v", at)
	}
}

func TestEveryStopsOnPredicate(t *testing.T) {
	e := NewEngine(t0)
	n := 0
	e.Every(time.Second, func() { n++ }, func() bool { return n < 5 })
	e.Run(t0.Add(time.Hour))
	if n != 5 {
		t.Errorf("n = %d, want 5", n)
	}
}

func TestLinkDelivery(t *testing.T) {
	e := NewEngine(t0)
	l := NewLink(e, 20*time.Millisecond, 0, 0, 1)
	var arrived time.Time
	ok, at := l.Send(func(a time.Time) { arrived = a })
	if !ok {
		t.Fatal("lossless link dropped a packet")
	}
	e.Run(t0.Add(time.Second))
	if !arrived.Equal(t0.Add(20*time.Millisecond)) || !at.Equal(arrived) {
		t.Errorf("arrived = %v, at = %v", arrived, at)
	}
}

func TestLinkLossRate(t *testing.T) {
	e := NewEngine(t0)
	l := NewLink(e, time.Millisecond, 0, 0.3, 42)
	lost := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if ok, _ := l.Send(func(time.Time) {}); !ok {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("loss rate = %v, want ~0.3", rate)
	}
}

func TestLinkJitterBounds(t *testing.T) {
	e := NewEngine(t0)
	l := NewLink(e, 10*time.Millisecond, 5*time.Millisecond, 0, 7)
	for i := 0; i < 1000; i++ {
		ok, at := l.Send(func(time.Time) {})
		if !ok {
			t.Fatal("unexpected loss")
		}
		d := at.Sub(t0)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("delay %v out of [10ms,15ms)", d)
		}
	}
}

func TestLinkCongestionEpisode(t *testing.T) {
	e := NewEngine(t0)
	l := NewLink(e, 10*time.Millisecond, 0, 0, 9)
	l.Episodes = []Congestion{{
		Start:      t0.Add(time.Second),
		End:        t0.Add(2 * time.Second),
		ExtraDelay: 40 * time.Millisecond,
	}}
	// Before the episode.
	_, at := l.Send(func(time.Time) {})
	if got := at.Sub(t0); got != 10*time.Millisecond {
		t.Errorf("pre-episode delay = %v", got)
	}
	// During.
	e.Schedule(t0.Add(1500*time.Millisecond), func() {
		_, at := l.Send(func(time.Time) {})
		if got := at.Sub(e.Now()); got != 50*time.Millisecond {
			t.Errorf("mid-episode delay = %v", got)
		}
	})
	// After.
	e.Schedule(t0.Add(3*time.Second), func() {
		_, at := l.Send(func(time.Time) {})
		if got := at.Sub(e.Now()); got != 10*time.Millisecond {
			t.Errorf("post-episode delay = %v", got)
		}
	})
	e.Run(t0.Add(time.Minute))

	min, max := l.CurrentDelayBounds(t0.Add(1500 * time.Millisecond))
	if min != 50*time.Millisecond || max != 50*time.Millisecond {
		t.Errorf("bounds = [%v,%v]", min, max)
	}
}

func TestLinkDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := NewEngine(t0)
		l := NewLink(e, 10*time.Millisecond, 8*time.Millisecond, 0.1, seed)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			if ok, at := l.Send(func(time.Time) {}); ok {
				out = append(out, at.Sub(t0))
			} else {
				out = append(out, -1)
			}
		}
		return out
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}
