package core

import (
	"testing"
	"time"

	"zoomlens/internal/sim"
)

func TestMeetingReportHealthy(t *testing.T) {
	a, _ := runMeetingCapture(t, 20, false)
	reps := a.MeetingReports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	r := reps[0]
	if len(r.Participants) != 2 {
		t.Fatalf("participants = %d", len(r.Participants))
	}
	if r.MeetingWideDegradation {
		t.Error("healthy meeting flagged degraded")
	}
	for _, p := range r.Participants {
		if p.Degraded {
			t.Errorf("participant %v degraded on a clean network", p.Client)
		}
		if p.VideoFPSMean < 20 {
			t.Errorf("participant %v fps = %v", p.Client, p.VideoFPSMean)
		}
		if p.Streams == 0 {
			t.Errorf("participant %v has no streams", p.Client)
		}
	}
	if r.MeanRTT <= 0 {
		t.Error("no RTT estimate for the meeting")
	}
}

// TestMeetingReportSingleAffectedParticipant gives one participant a
// bad last mile: only that participant should be flagged, and the
// meeting must not be marked as suffering overall — the exact
// distinction §4.3 sets out to enable.
func TestMeetingReportSingleAffectedParticipant(t *testing.T) {
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	good := w.NewClient("good", true)
	bad := w.NewClient("bad", true)
	third := w.NewClient("third", true)
	m.Join(good, sim.DefaultMediaSet())
	m.Join(bad, sim.DefaultMediaSet())
	m.Join(third, sim.DefaultMediaSet())

	// Degrade only bad's access links, persistently.
	bad.DegradeAccess(120*time.Millisecond, 0.05)
	w.Run(opts.Start.Add(30 * time.Second))
	a.Finish()

	reps := a.MeetingReports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	r := reps[0]
	if len(r.Participants) != 3 {
		t.Fatalf("participants = %d", len(r.Participants))
	}
	var degraded, healthy int
	for _, p := range r.Participants {
		if p.Degraded {
			degraded++
		} else {
			healthy++
		}
	}
	if degraded == 0 {
		t.Error("impaired participant not flagged")
	}
	if degraded > 1 {
		t.Errorf("flagged %d participants, only one path is impaired", degraded)
	}
	if r.MeetingWideDegradation {
		t.Error("meeting-wide flag set when only one path is impaired")
	}
}
