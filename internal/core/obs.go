package core

import (
	"zoomlens/internal/metrics"
	"zoomlens/internal/obs"
	"zoomlens/internal/rtcproto"
)

// This file binds the analyzer to the live observability layer
// (internal/obs). A nil Config.Obs keeps every hook a single branch;
// with a registry configured the pipeline maintains:
//
//   - per-decode-stage packet counters (the live Table 2 view),
//   - state-table occupancy gauges against the PR 2 bounded-state caps
//     (labeled per shard in parallel mode),
//   - eviction / rejection / panic counters, and
//   - a snapshot counter.
//
// Counters that aggregate across shards (stage counts, panics,
// evictions) are registered unlabeled and shared — every shard adds to
// the same atomic. Occupancy and cap gauges are per-shard, since shard
// tables partition the state.

// obsUpdateEvery is the packet cadence for refreshing occupancy gauges.
const obsUpdateEvery = 2048

// coreObs holds the registered metric handles of one analyzer. All
// methods are nil-receiver safe.
type coreObs struct {
	packets *obs.Counter
	bytes   *obs.Counter

	stageUndecodable *obs.Counter
	stageFiltered    *obs.Counter
	stageSTUN        *obs.Counter
	stageTCP         *obs.Counter
	stageZoomUDP     *obs.Counter
	stageMedia       *obs.Counter

	// protoDecoded counts decoded media packets per protocol plugin
	// (indexed by rtcproto.ID); protoUndecodable counts kept UDP
	// payloads no plugin decoded.
	protoDecodedC    [rtcproto.NumIDs]*obs.Counter
	protoUndecodable *obs.Counter

	panics    *obs.Counter
	snapshots *obs.Counter

	shedPackets *obs.Counter
	shedBytes   *obs.Counter

	evicted  map[string]*obs.Counter // kind → counter (shared)
	rejected map[string]*obs.Counter // reason → counter (shared)
	occ      map[string]*obs.Gauge   // table → gauge (per shard)
	caps     map[string]*obs.Gauge   // table → cap gauge (per shard)

	// prev tracks this analyzer's cumulative eviction/rejection counts so
	// the shared counters receive deltas, not double-counted totals.
	prev map[*obs.Counter]uint64
}

// stateTables are the occupancy/cap gauge dimensions.
var stateTables = []string{"flows", "streams", "tcp", "dedup_streams", "copy_pending", "finished"}

// newCoreObs registers the analyzer's metrics; shard is the shard label
// ("" for the sequential / merged analyzer).
func newCoreObs(reg *obs.Registry, shard string, cfg Config) *coreObs {
	if reg == nil {
		return nil
	}
	shardLbl := func(extra ...obs.Label) []obs.Label {
		if shard == "" {
			return extra
		}
		return append(extra, obs.L("shard", shard))
	}
	o := &coreObs{
		packets: reg.Counter("zoomlens_packets_total", "Frames ingested by the analyzer."),
		bytes:   reg.Counter("zoomlens_bytes_total", "Wire bytes ingested by the analyzer."),

		stageUndecodable: reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "undecodable")),
		stageFiltered:    reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "filtered")),
		stageSTUN:        reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "stun")),
		stageTCP:         reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "tcp")),
		stageZoomUDP:     reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "zoom_udp")),
		stageMedia:       reg.Counter("zoomlens_decode_stage_packets_total", "Packets per decode stage.", obs.L("stage", "media")),

		protoUndecodable: reg.Counter("zoomlens_proto_undecodable_total", "Kept UDP payloads no protocol plugin decoded."),

		panics:    reg.Counter("zoomlens_panics_recovered_total", "Packets whose processing panicked and was quarantined."),
		snapshots: reg.Counter("zoomlens_snapshots_total", "QoE snapshots taken."),

		shedPackets: reg.Counter("zoomlens_shed_packets_total", "Packets dropped at full shard rings under overload shedding."),
		shedBytes:   reg.Counter("zoomlens_shed_bytes_total", "Wire bytes dropped at full shard rings under overload shedding."),

		evicted:  make(map[string]*obs.Counter),
		rejected: make(map[string]*obs.Counter),
		occ:      make(map[string]*obs.Gauge),
		caps:     make(map[string]*obs.Gauge),
		prev:     make(map[*obs.Counter]uint64),
	}
	for id := rtcproto.ID(0); id < rtcproto.NumIDs; id++ {
		o.protoDecodedC[id] = reg.Counter("zoomlens_proto_decoded_total", "Decoded media packets per protocol plugin.", obs.L("proto", id.String()))
	}
	for _, kind := range []string{"flows", "streams", "tcp", "archived"} {
		o.evicted[kind] = reg.Counter("zoomlens_evicted_total", "State entries evicted by idle TTL.", obs.L("kind", kind))
	}
	for _, reason := range []string{"flow", "stream", "substream", "tcp"} {
		o.rejected[reason] = reg.Counter("zoomlens_rejected_packets_total", "Packets refused new state at a hard cap.", obs.L("reason", reason))
	}
	for _, table := range stateTables {
		o.occ[table] = reg.Gauge("zoomlens_state_occupancy", "Live entries per state table.", shardLbl(obs.L("table", table))...)
		o.caps[table] = reg.Gauge("zoomlens_state_cap", "Configured cap per state table (0 = unlimited).", shardLbl(obs.L("table", table))...)
	}
	o.caps["flows"].Set(int64(cfg.MaxFlows))
	o.caps["streams"].Set(int64(cfg.MaxStreams))
	o.caps["tcp"].Set(int64(cfg.MaxTCP))
	o.caps["dedup_streams"].Set(int64(cfg.MaxMeetingStreams))
	cp := effectiveMaxCopyPending(cfg)
	if cp == 0 {
		cp = metrics.DefaultMaxPending
	}
	o.caps["copy_pending"].Set(int64(cp))
	o.caps["finished"].Set(int64(cfg.MaxFinished))
	return o
}

func (o *coreObs) packetIn(wireLen int) {
	if o == nil {
		return
	}
	o.packets.Inc()
	o.bytes.Add(uint64(wireLen))
}

func (o *coreObs) undecodable() {
	if o == nil {
		return
	}
	o.stageUndecodable.Inc()
}

func (o *coreObs) filtered() {
	if o == nil {
		return
	}
	o.stageFiltered.Inc()
}

func (o *coreObs) stun() {
	if o == nil {
		return
	}
	o.stageSTUN.Inc()
}

func (o *coreObs) tcp() {
	if o == nil {
		return
	}
	o.stageTCP.Inc()
}

func (o *coreObs) zoomUDP() {
	if o == nil {
		return
	}
	o.stageZoomUDP.Inc()
}

func (o *coreObs) protoDecoded(id rtcproto.ID) {
	if o == nil {
		return
	}
	o.protoDecodedC[id].Inc()
}

func (o *coreObs) protoUndecoded() {
	if o == nil {
		return
	}
	o.protoUndecodable.Inc()
}

func (o *coreObs) media() {
	if o == nil {
		return
	}
	o.stageMedia.Inc()
}

func (o *coreObs) panicRecovered() {
	if o == nil {
		return
	}
	o.panics.Inc()
}

func (o *coreObs) snapshot() {
	if o == nil {
		return
	}
	o.snapshots.Inc()
}

func (o *coreObs) shed(packets, bytes int) {
	if o == nil {
		return
	}
	o.shedPackets.Add(uint64(packets))
	o.shedBytes.Add(uint64(bytes))
}

// mirror feeds a shared counter the delta between this analyzer's
// cumulative count and what it last pushed, so shard analyzers can all
// mirror into one counter without double counting.
func (o *coreObs) mirror(c *obs.Counter, cur uint64) {
	if d := cur - o.prev[c]; d > 0 {
		c.Add(d)
		o.prev[c] = cur
	}
}

// resetMirrors clears the delta baselines. Rotate re-seeds the
// analyzer's cumulative counters back to zero; without a baseline reset
// the next mirror would compute cur-prev on uint64s and wrap.
func (o *coreObs) resetMirrors() {
	if o == nil {
		return
	}
	for c := range o.prev {
		delete(o.prev, c)
	}
}

// bindObs (re)registers the analyzer's metric handles under the given
// shard label. NewAnalyzer binds with ""; NewParallelAnalyzer rebinds
// each shard analyzer with its index.
func (a *Analyzer) bindObs(shard string) {
	a.o = newCoreObs(a.cfg.Obs, shard, a.cfg)
}

// updateObsGauges refreshes occupancy gauges and eviction/rejection
// mirrors from the analyzer's current state. Called on a packet-count
// cadence, at Finish, and at every snapshot.
func (a *Analyzer) updateObsGauges() {
	o := a.o
	if o == nil {
		return
	}
	tot := a.Flows.Totals()
	o.occ["flows"].Set(int64(tot.Flows))
	o.occ["streams"].Set(int64(tot.Streams))
	o.occ["tcp"].Set(int64(len(a.TCP)))
	o.occ["dedup_streams"].Set(int64(a.Dedup.Len()))
	o.occ["copy_pending"].Set(int64(a.Copies.Pending()))
	o.occ["finished"].Set(int64(len(a.Finished)))
	ev := a.Flows.Evictions()
	o.mirror(o.rejected["flow"], ev.RejectedFlowPackets)
	o.mirror(o.rejected["stream"], ev.RejectedStreamPackets)
	o.mirror(o.rejected["substream"], ev.RejectedSubstreamPackets)
	o.mirror(o.rejected["tcp"], a.RejectedTCPPackets)
	o.mirror(o.evicted["flows"], ev.EvictedFlows)
	o.mirror(o.evicted["streams"], ev.EvictedStreams)
	o.mirror(o.evicted["tcp"], a.EvictedTCP)
	o.mirror(o.evicted["archived"], uint64(len(a.Finished))+a.FinishedDropped)
}
