package core

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// reportBytes renders an analyzer's complete results as a deterministic
// byte blob: summary, meetings, every stream's loss stats and series,
// and the RTT samples. Two runs whose blobs match are byte-identical for
// reporting purposes.
func reportBytes(t *testing.T, a *Analyzer) []byte {
	t.Helper()
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	must := func(v any) {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	must(a.Summary())
	must(a.Meetings())
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		must(id)
		must(sm.LossStats())
		must(sm.FrameRate.Samples)
		must(sm.MediaRate.Samples)
		must(sm.WireRate.Samples)
		must(sm.JitterMS.Samples)
		must(sm.FrameSize.Samples)
		must(sm.FrameDelay.Samples)
	}
	must(a.Copies.Samples)
	return b.Bytes()
}

// TestSnapshotsDoNotPerturbResults is the acceptance gate for the
// observability layer: enabling periodic snapshots must leave the final
// report byte-identical — sequential and 4-worker parallel alike — to a
// run without snapshots, and the snapshot streams themselves must match
// between sequential and parallel runs at the same packet boundaries.
func TestSnapshotsDoNotPerturbResults(t *testing.T) {
	tr, opts := seededTrace(t, 20)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	const interval = 2 * time.Second

	// Baseline: sequential, no snapshots.
	base := NewAnalyzer(cfg)
	tr.feed(base.Packet)
	base.Finish()
	want := reportBytes(t, base)

	// Sequential with snapshots every 2 seconds of trace time.
	seq := NewAnalyzer(cfg)
	var seqSnaps bytes.Buffer
	sw := &SnapshotWriter{Interval: interval, W: &seqSnaps, Snap: seq.Snapshot}
	tr.feed(func(at time.Time, frame []byte) {
		seq.Packet(at, frame)
		sw.Tick(at)
	})
	seq.Finish()
	if err := sw.Err(); err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, seq); !bytes.Equal(got, want) {
		t.Error("sequential report changed when snapshots were enabled")
	}

	// 4-worker parallel with the same snapshot cadence.
	pa := NewParallelAnalyzer(cfg, 4)
	var parSnaps bytes.Buffer
	pw := &SnapshotWriter{Interval: interval, W: &parSnaps, Snap: pa.Snapshot}
	tr.feed(func(at time.Time, frame []byte) {
		pa.Packet(at, frame)
		pw.Tick(at)
	})
	pa.Finish()
	if err := pw.Err(); err != nil {
		t.Fatal(err)
	}
	if got := reportBytes(t, pa.Result()); !bytes.Equal(got, want) {
		t.Error("parallel report changed when snapshots were enabled")
	}

	// The snapshot stream is itself deterministic across modes: the same
	// packet prefix quiesced at the same boundary yields the same bytes.
	if !bytes.Equal(seqSnaps.Bytes(), parSnaps.Bytes()) {
		t.Errorf("snapshot streams diverge between sequential and parallel:\n--- sequential\n%s--- parallel\n%s",
			&seqSnaps, &parSnaps)
	}

	checkSnapshotStream(t, seqSnaps.String(), interval)
}

// checkSnapshotStream validates the JSON-lines snapshot output: every
// line parses, fields are sane, and cumulative packet counts are
// monotone over time (summed across meetings — meeting IDs may merge
// between snapshots).
func checkSnapshotStream(t *testing.T, out string, interval time.Duration) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected several snapshot lines over the trace, got %d:\n%s", len(lines), out)
	}
	sumAt := make(map[time.Time]uint64)
	var times []time.Time
	var sawMedia, sawRTT bool
	for _, ln := range lines {
		var ms MeetingSnapshot
		if err := json.Unmarshal([]byte(ln), &ms); err != nil {
			t.Fatalf("snapshot line does not parse: %v\n%s", err, ln)
		}
		if ms.Time.IsZero() || ms.Meeting <= 0 || ms.Streams <= 0 || ms.Participants <= 0 {
			t.Fatalf("implausible snapshot: %+v", ms)
		}
		if _, seen := sumAt[ms.Time]; !seen {
			times = append(times, ms.Time)
		}
		sumAt[ms.Time] += ms.Packets
		if ms.MediaBPS > 0 {
			sawMedia = true
		}
		if ms.RTTSamples > 0 {
			sawRTT = true
		}
	}
	if !sawMedia {
		t.Error("no snapshot reported a positive media bit rate")
	}
	if !sawRTT {
		t.Error("no snapshot reported RTT samples (copy-rich trace should)")
	}
	var prev uint64
	for i, ts := range times {
		if i > 0 && ts.Sub(times[i-1]) < interval {
			t.Errorf("snapshots %v and %v closer than the interval", times[i-1], ts)
		}
		if sumAt[ts] < prev {
			t.Errorf("cumulative packets regressed at %v: %d < %d", ts, sumAt[ts], prev)
		}
		prev = sumAt[ts]
	}
}

// TestSnapshotAfterFinish checks Snapshot remains callable once the
// parallel pipeline has merged (it reads the merged analyzer).
func TestSnapshotAfterFinish(t *testing.T) {
	tr, opts := seededTrace(t, 6)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	pa := NewParallelAnalyzer(cfg, 2)
	tr.feed(pa.Packet)
	pa.Finish()
	end := tr.at[len(tr.at)-1]
	snaps := pa.Snapshot(end, 10*time.Second)
	if len(snaps) == 0 {
		t.Fatal("no snapshot from finished analyzer")
	}
	seq := NewAnalyzer(cfg)
	tr.feed(seq.Packet)
	seq.Finish()
	want := seq.Snapshot(end, 10*time.Second)
	got, _ := json.Marshal(snaps)
	wantB, _ := json.Marshal(want)
	if !bytes.Equal(got, wantB) {
		t.Errorf("post-finish snapshot diverges:\n%s\n%s", got, wantB)
	}
}
