package core

import "sync"

// framePool is the one pool behind every transient frame copy the
// package makes: dispatcher shard batches, snapshot-quiesce sync
// batches, and quarantine forensic copies all draw *pbatch values from
// it and return them when drained. One pool instead of one per consumer
// means a burst in any path (a quarantine storm, a deep shard backlog)
// reuses buffers warmed by the others rather than growing its own.
var framePool = sync.Pool{New: func() any { return new(pbatch) }}

// A pooled batch normally holds at most shardBatchSize frames; the caps
// below bound what a pooled batch may retain. A batch that grew past
// them (a burst of jumbo frames, a quarantine copy of a pathological
// capture) drops its buffer on put instead of pinning the high-water
// mark in the pool forever — that retention is what once held workers-4
// at ~1.6x the sequential bytes/packet.
const (
	maxPooledBatchData  = shardBatchSize * 2048 // 512 KiB of frame bytes
	maxPooledBatchItems = 4 * shardBatchSize
)

// getBatch checks a reset batch out of the pool.
func getBatch() *pbatch { return framePool.Get().(*pbatch) }

// putBatch resets a batch and returns it to the pool. The caller must
// be the last holder: items, data, and any packet slices rebased onto
// data become invalid the moment it lands back in the pool.
func putBatch(b *pbatch) {
	if cap(b.items) > maxPooledBatchItems {
		b.items = nil
	} else {
		b.items = b.items[:0]
	}
	if cap(b.data) > maxPooledBatchData {
		b.data = nil
	} else {
		b.data = b.data[:0]
	}
	b.sync = nil
	framePool.Put(b)
}
