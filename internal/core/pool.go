package core

import "sync"

// framePool is the one pool behind every transient frame copy the
// package makes: dispatcher shard batches, snapshot-quiesce sync
// batches, and quarantine forensic copies all draw *pbatch values from
// it and return them when drained. One pool instead of one per consumer
// means a burst in any path (a quarantine storm, a deep shard backlog)
// reuses buffers warmed by the others rather than growing its own.
var framePool = sync.Pool{New: func() any { return new(pbatch) }}

// getBatch checks a reset batch out of the pool.
func getBatch() *pbatch { return framePool.Get().(*pbatch) }

// putBatch resets a batch and returns it to the pool. The caller must
// be the last holder: items, data, and any packet slices rebased onto
// data become invalid the moment it lands back in the pool.
func putBatch(b *pbatch) {
	b.items = b.items[:0]
	b.data = b.data[:0]
	b.sync = nil
	framePool.Put(b)
}
