package core

import "testing"

// TestRingLenClamp pins the backlog-gauge fix: len()'s two loads are
// not atomic together, so the consumer can advance head past the tail
// value already read — the uint64 difference must clamp to 0 instead of
// wrapping to ~2^64 and poisoning the occupancy gauge.
func TestRingLenClamp(t *testing.T) {
	r := newSPSCRing(4)
	// Model the torn read: head observed ahead of tail.
	r.tail.Store(3)
	r.head.Store(5)
	if got := r.len(); got != 0 {
		t.Fatalf("len() = %d with head past tail, want 0 (wrap clamped)", got)
	}
	r.tail.Store(7)
	if got := r.len(); got != 2 {
		t.Fatalf("len() = %d, want 2", got)
	}
	r.head.Store(7)
	if got := r.len(); got != 0 {
		t.Fatalf("len() = %d when drained, want 0", got)
	}
}
