package core

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/obs"
)

// promDump renders a registry for assertion.
func promDump(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestAnalyzerObsCounters runs the seeded trace through an instrumented
// sequential analyzer and checks the exposition reflects the pipeline:
// total packets, per-stage decode counts consistent with the analyzer's
// own totals, and occupancy/cap gauges for every state table.
func TestAnalyzerObsCounters(t *testing.T) {
	tr, opts := seededTrace(t, 8)
	reg := obs.NewRegistry()
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		MaxFlows:       4096,
		MaxStreams:     1024,
		Obs:            reg,
	}
	a := NewAnalyzer(cfg)
	tr.feed(a.Packet)
	a.Finish()

	check := func(name string, want uint64) {
		t.Helper()
		c := reg.Counter(name, "")
		if c.Value() != want {
			t.Errorf("%s = %d, want %d", name, c.Value(), want)
		}
	}
	check("zoomlens_packets_total", a.Packets)
	if reg.Counter("zoomlens_bytes_total", "").Value() != a.Bytes {
		t.Error("bytes counter diverges from analyzer total")
	}
	stage := func(s string) uint64 {
		return reg.Counter("zoomlens_decode_stage_packets_total", "", obs.L("stage", s)).Value()
	}
	if got := stage("zoom_udp"); got != a.ZoomUDP {
		t.Errorf("zoom_udp stage = %d, want %d", got, a.ZoomUDP)
	}
	if got := stage("stun"); got != a.STUNPackets {
		t.Errorf("stun stage = %d, want %d", got, a.STUNPackets)
	}
	if got := stage("tcp"); got != a.TCPPackets {
		t.Errorf("tcp stage = %d, want %d", got, a.TCPPackets)
	}
	if got := stage("undecodable"); got != a.Undecodable {
		t.Errorf("undecodable stage = %d, want %d", got, a.Undecodable)
	}
	if got := stage("filtered"); got != a.DroppedByFilter {
		t.Errorf("filtered stage = %d, want %d", got, a.DroppedByFilter)
	}
	if stage("media") == 0 {
		t.Error("media stage never counted on a media-rich trace")
	}

	out := promDump(t, reg)
	for _, want := range []string{
		`zoomlens_state_occupancy{table="flows"}`,
		`zoomlens_state_occupancy{table="streams"}`,
		`zoomlens_state_cap{table="flows"} 4096`,
		`zoomlens_state_cap{table="streams"} 1024`,
		`zoomlens_state_cap{table="copy_pending"} 262144`, // 256 × MaxStreams
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	tot := a.Flows.Totals()
	if got := reg.Gauge("zoomlens_state_occupancy", "", obs.L("table", "flows")).Value(); got != int64(tot.Flows) {
		t.Errorf("flow occupancy gauge = %d, want %d", got, tot.Flows)
	}
}

// TestParallelObsAggregates runs the parallel pipeline against a
// registry: shared counters must aggregate across dispatcher and shards
// to the same totals as the sequential run, and per-shard occupancy
// series must appear.
func TestParallelObsAggregates(t *testing.T) {
	tr, opts := seededTrace(t, 8)
	base := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	seq := NewAnalyzer(base)
	tr.feed(seq.Packet)
	seq.Finish()

	reg := obs.NewRegistry()
	cfg := base
	cfg.Obs = reg
	cfg.MaxFlows = 4096
	pa := NewParallelAnalyzer(cfg, 4)
	tr.feed(pa.Packet)
	pa.Finish()

	if got := reg.Counter("zoomlens_packets_total", "").Value(); got != seq.Packets {
		t.Errorf("packets_total = %d, want %d", got, seq.Packets)
	}
	stage := func(s string) uint64 {
		return reg.Counter("zoomlens_decode_stage_packets_total", "", obs.L("stage", s)).Value()
	}
	if got, want := stage("zoom_udp"), seq.ZoomUDP; got != want {
		t.Errorf("zoom_udp stage = %d, want %d", got, want)
	}
	if got, want := stage("stun")+stage("tcp"), seq.STUNPackets+seq.TCPPackets; got != want {
		t.Errorf("stun+tcp stages = %d, want %d", got, want)
	}

	out := promDump(t, reg)
	for _, want := range []string{
		`zoomlens_state_occupancy{shard="0",table="flows"}`,
		`zoomlens_state_occupancy{shard="3",table="flows"}`,
		`zoomlens_state_cap{shard="0",table="flows"} 1024`, // 4096 / 4 workers
		`zoomlens_state_cap{table="flows"} 4096`,
		"zoomlens_shard_queue_depth",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestShardQueueDepthDrains checks the per-shard backlog gauge reports
// zero once the pipeline has drained. The dispatcher samples the gauge
// on enqueue only, so without the shard-side updates (and the explicit
// zeroing at quiesce and Finish) an idle shard would advertise its last
// enqueue-time backlog forever.
func TestShardQueueDepthDrains(t *testing.T) {
	tr, opts := seededTrace(t, 8)
	reg := obs.NewRegistry()
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		Obs:            reg,
	}
	const workers = 4
	pa := NewParallelAnalyzer(cfg, workers)
	tr.feed(pa.Packet)

	depth := func(shard string) int64 {
		return reg.Gauge("zoomlens_shard_queue_depth", "", obs.L("shard", shard)).Value()
	}
	// A quiesce boundary (Snapshot) must leave every ring empty and say so.
	pa.Snapshot(tr.at[len(tr.at)-1], time.Second)
	for i := 0; i < workers; i++ {
		if got := depth(string(rune('0' + i))); got != 0 {
			t.Errorf("after snapshot quiesce: shard %d queue depth gauge = %d, want 0", i, got)
		}
	}

	// More traffic (so gauges move again), then Finish must zero them.
	tr.feed(pa.Packet)
	pa.Finish()
	for i := 0; i < workers; i++ {
		if got := depth(string(rune('0' + i))); got != 0 {
			t.Errorf("after Finish: shard %d queue depth gauge = %d, want 0", i, got)
		}
	}
}

// TestObsPanicCounter checks recovered panics surface on the shared
// counter (sequential path; the injected panic is quarantined).
func TestObsPanicCounter(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAnalyzer(Config{PreFiltered: true, Obs: reg})
	fired := false
	a.panicHook = func(at time.Time, frame []byte) {
		if !fired {
			fired = true
			panic("injected")
		}
	}
	at := time.Unix(1700000000, 0)
	a.Packet(at, []byte{0xde, 0xad})
	a.Packet(at.Add(time.Millisecond), []byte{0xbe, 0xef})
	if got := reg.Counter("zoomlens_panics_recovered_total", "").Value(); got != 1 {
		t.Errorf("panics counter = %d, want 1", got)
	}
	if a.PanicsRecovered != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", a.PanicsRecovered)
	}
}

// TestStageTracerOnFinish checks the Finish/merge stages report through
// the configured tracer in both modes.
func TestStageTracerOnFinish(t *testing.T) {
	tr, opts := seededTrace(t, 4)
	stats := obs.NewStageStats()
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		Tracer:         stats,
	}
	pa := NewParallelAnalyzer(cfg, 2)
	tr.feed(pa.Packet)
	pa.Snapshot(tr.at[len(tr.at)-1], time.Second)
	pa.Finish()
	rep := stats.Report()
	for _, stage := range []string{"merge", "finish", "snapshot"} {
		if !strings.Contains(rep, stage) {
			t.Errorf("trace report missing stage %q:\n%s", stage, rep)
		}
	}
}
