package core

// Lock-free plumbing for the sharded parallel pipeline: a single-producer
// single-consumer batch ring per shard, a pooled chunk list for the
// media-observation log, and a raw-header scanner that lets the
// dispatcher route frames without a full decode.

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"sync/atomic"

	"zoomlens/internal/layers"
)

// spscRing is a bounded single-producer single-consumer queue of
// batches. The fast path is two atomic loads and one atomic store per
// push/pop, with no locks and no channel transfer of the payload; the
// notify channels only carry park/wake signals when one side runs dry
// (consumer starved) or full (producer backpressured), so an in-balance
// pipeline never context-switches on the queue.
//
// Only one goroutine may push (and close), and only one may pop.
type spscRing struct {
	slots []*pbatch
	mask  uint64

	head atomic.Uint64 // next slot to pop (consumer-owned)
	tail atomic.Uint64 // next slot to fill (producer-owned)

	closed      atomic.Bool
	notifyData  chan struct{} // producer → consumer: new batch available
	notifySpace chan struct{} // consumer → producer: slot freed
}

// newSPSCRing builds a ring with the given capacity (rounded up to a
// power of two, minimum 2).
func newSPSCRing(capacity int) *spscRing {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &spscRing{
		slots:       make([]*pbatch, n),
		mask:        uint64(n - 1),
		notifyData:  make(chan struct{}, 1),
		notifySpace: make(chan struct{}, 1),
	}
}

// len reports the current batch backlog (racy but monotonic enough for
// a gauge). The two loads are not atomic together: when the consumer
// advances head between them, head can be observed past tail and the
// uint64 difference wraps to an enormous value — clamp that to an empty
// ring instead of poisoning the gauge.
func (r *spscRing) len() int {
	t, h := r.tail.Load(), r.head.Load()
	if h >= t {
		return 0
	}
	return int(t - h)
}

// push enqueues one batch, blocking while the ring is full
// (backpressure on the dispatcher). Producer-only.
func (r *spscRing) push(b *pbatch) {
	for {
		t := r.tail.Load()
		if t-r.head.Load() < uint64(len(r.slots)) {
			r.slots[t&r.mask] = b
			r.tail.Store(t + 1)
			select {
			case r.notifyData <- struct{}{}:
			default:
			}
			return
		}
		// Full: park until the consumer frees a slot. The cap-1 notify
		// buffer means a wakeup sent between our check and this receive is
		// retained, so no wakeup is ever lost; a stale token just causes
		// one spurious re-check.
		<-r.notifySpace
	}
}

// tryPush enqueues one batch without blocking, returning false when the
// ring is full (the overload-shedding path: the caller drops the batch
// with accounting instead of stalling). Producer-only.
func (r *spscRing) tryPush(b *pbatch) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = b
	r.tail.Store(t + 1)
	select {
	case r.notifyData <- struct{}{}:
	default:
	}
	return true
}

// pop dequeues one batch, blocking while the ring is empty. It returns
// ok=false once the ring is closed and fully drained. Consumer-only.
func (r *spscRing) pop() (*pbatch, bool) {
	for {
		h := r.head.Load()
		if h < r.tail.Load() {
			b := r.slots[h&r.mask]
			r.slots[h&r.mask] = nil
			r.head.Store(h + 1)
			select {
			case r.notifySpace <- struct{}{}:
			default:
			}
			return b, true
		}
		if r.closed.Load() {
			// closed is stored after the producer's final push; an empty
			// ring observed after closed is a definitive end of stream.
			if r.head.Load() == r.tail.Load() {
				return nil, false
			}
			continue
		}
		<-r.notifyData
	}
}

// close marks the end of the stream. Producer-only; push must not be
// called afterwards. Closing notifyData wakes (and keeps waking) a
// parked consumer so it can observe the closed flag.
func (r *spscRing) close() {
	r.closed.Store(true)
	close(r.notifyData)
}

// obsChunkLen is the number of media observations per pooled chunk.
// Chunks are recycled as soon as a reconciliation pass consumes them, so
// the steady-state log footprint is one partially filled chunk per shard
// plus whatever accumulated since the last quiesce boundary.
const obsChunkLen = 512

// obsChunk is one fixed-size segment of a shard's media-observation log,
// chained oldest-first. The owning shard goroutine appends; the
// dispatcher consumes whole chains at quiesce boundaries (the sync-batch
// ack provides the happens-before edge in both directions).
type obsChunk struct {
	next *obsChunk
	n    int
	e    [obsChunkLen]mediaObs
}

var obsChunkPool = sync.Pool{New: func() any { return new(obsChunk) }}

func getObsChunk() *obsChunk { return obsChunkPool.Get().(*obsChunk) }

func putObsChunk(c *obsChunk) {
	c.n = 0
	c.next = nil
	obsChunkPool.Put(c)
}

// rawInfo carries the dispatch-relevant features of a frame extracted by
// rawScan: enough for the capture filter (global, stateful) and the
// shard hash, with the full decode deferred to the shard.
type rawInfo struct {
	src, dst         netip.Addr
	srcPort, dstPort uint16
	isTCP            bool
	payload          []byte // UDP payload (length-clamped); nil for TCP
}

// rawScan validates an Ethernet/IPv4/{UDP,TCP} frame with exactly the
// checks layers.Parser.Parse applies and extracts the flow features
// without building a Packet. It returns false for anything it does not
// fully replicate — IPv6, fragments, other ethertypes or protocols,
// truncated headers — in which case the caller must fall back to the
// full parse. The contract is strict: rawScan must never accept a frame
// the parser would reject (or derive different addresses, ports, or
// payload bounds), because the undecodable and filter counters must
// match the sequential pipeline byte for byte.
func rawScan(frame []byte, ri *rawInfo) bool {
	if len(frame) < 14+20 {
		return false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != layers.EtherTypeIPv4 {
		return false
	}
	ip := frame[14:]
	if ip[0]>>4 != 4 {
		return false
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl {
		return false
	}
	if totalLen := int(binary.BigEndian.Uint16(ip[2:4])); totalLen >= ihl && totalLen <= len(ip) {
		ip = ip[:totalLen] // strip Ethernet padding, as the parser does
	}
	if binary.BigEndian.Uint16(ip[6:8])&0x3fff != 0 {
		return false // any fragmentation: defer to the parser
	}
	rest := ip[ihl:]
	switch ip[9] {
	case layers.ProtoUDP:
		if len(rest) < 8 {
			return false
		}
		ri.srcPort = binary.BigEndian.Uint16(rest[0:2])
		ri.dstPort = binary.BigEndian.Uint16(rest[2:4])
		payload := rest[8:]
		if ulen := int(binary.BigEndian.Uint16(rest[4:6])); ulen >= 8 && ulen-8 <= len(payload) {
			payload = payload[:ulen-8]
		}
		ri.payload = payload
		ri.isTCP = false
	case layers.ProtoTCP:
		if len(rest) < 20 {
			return false
		}
		if hl := int(rest[12]>>4) * 4; hl < 20 || len(rest) < hl {
			return false
		}
		ri.srcPort = binary.BigEndian.Uint16(rest[0:2])
		ri.dstPort = binary.BigEndian.Uint16(rest[2:4])
		ri.payload = nil
		ri.isTCP = true
	default:
		return false
	}
	ri.src = netip.AddrFrom4([4]byte(ip[12:16]))
	ri.dst = netip.AddrFrom4([4]byte(ip[16:20]))
	return true
}
