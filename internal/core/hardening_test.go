package core

import (
	"bytes"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"zoomlens/internal/faultpcap"
	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// tracePCAP serializes a captured simulation trace to classic-pcap bytes
// so fault injection can corrupt the byte stream itself.
func tracePCAP(t testing.TB, tr *capturedTrace) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.WriterOptions{Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.frames {
		if err := w.WriteRecord(tr.at[i], tr.frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestDifferentialUnderFaults is the robustness gate: for every fault
// class (mid-record truncation, payload bit flips, timestamp jumps,
// duplicated records) the sequential analyzer and the parallel analyzer
// at 1 and 4 workers must consume the identical damaged capture without
// a single unrecovered panic and produce byte-identical results.
func TestDifferentialUnderFaults(t *testing.T) {
	tr, opts := seededTrace(t, 20)
	clean := tracePCAP(t, tr)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	for _, fault := range append([]faultpcap.Fault{faultpcap.None}, faultpcap.Faults()...) {
		fault := fault
		t.Run(fault.String(), func(t *testing.T) {
			damaged, err := faultpcap.Apply(clean, faultpcap.Options{Fault: fault, Seed: 42})
			if err != nil {
				t.Fatal(err)
			}

			seq := NewAnalyzer(cfg)
			if err := seq.ReadPCAP(bytes.NewReader(damaged)); err != nil {
				t.Fatalf("sequential ReadPCAP: %v", err)
			}
			ss := seq.Summary()
			if ss.PanicsRecovered != 0 {
				t.Errorf("sequential recovered %d panics; faults must degrade without panicking", ss.PanicsRecovered)
			}
			if fault == faultpcap.Truncate && !ss.Truncated {
				t.Error("truncated capture not flagged in summary")
			}
			if fault != faultpcap.Truncate && ss.Truncated {
				t.Errorf("fault %v wrongly flagged as truncation", fault)
			}
			if ss.Packets == 0 {
				t.Fatal("no packets analyzed from damaged capture")
			}

			for _, workers := range []int{1, 4} {
				pa := NewParallelAnalyzer(cfg, workers)
				if err := pa.ReadPCAP(bytes.NewReader(damaged)); err != nil {
					t.Fatalf("parallel(%d) ReadPCAP: %v", workers, err)
				}
				par := pa.Result()
				if ps := par.Summary(); ss != ps {
					t.Fatalf("parallel(%d) summary diverges:\nsequential %+v\nparallel   %+v", workers, ss, ps)
				}
				if !reflect.DeepEqual(seq.StreamIDs(), par.StreamIDs()) {
					t.Fatalf("parallel(%d) stream IDs diverge", workers)
				}
				for _, id := range seq.StreamIDs() {
					sm, _ := seq.MetricsFor(id)
					pm, ok := par.MetricsFor(id)
					if !ok {
						t.Fatalf("parallel(%d): stream %v missing", workers, id)
					}
					if sm.LossStats() != pm.LossStats() {
						t.Errorf("parallel(%d): stream %v loss stats diverge", workers, id)
					}
				}
				if !reflect.DeepEqual(seq.Copies.Samples, par.Copies.Samples) {
					t.Errorf("parallel(%d): RTT samples diverge", workers)
				}
			}
		})
	}
}

// fnvSum hashes a frame so panic injection keys on content, which is
// identical no matter which analyzer or shard sees the frame.
func fnvSum(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// setPanicHook installs a test-only panic injector on every analyzer a
// ParallelAnalyzer owns (the degenerate sequential one, or each shard).
func setPanicHook(pa *ParallelAnalyzer, hook func(time.Time, []byte)) {
	if pa.seq != nil {
		pa.seq.panicHook = hook
		return
	}
	for _, sh := range pa.shards {
		sh.a.panicHook = hook
	}
}

// TestPanicQuarantineDifferential injects deterministic panics keyed on
// frame content into the sequential and parallel pipelines and demands:
// no crash, identical summaries (including the PanicsRecovered count),
// and the offending frames preserved in each quarantine ring.
func TestPanicQuarantineDifferential(t *testing.T) {
	tr, opts := seededTrace(t, 10)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		PreFiltered:    true,
	}
	// Panic on ~1% of parseable frames. The parse guard matters: the
	// parallel dispatcher only ships frames that parse, so keying on
	// parseability keeps the sequential hook (which fires before the
	// parse) aligned with the shard hooks.
	hook := func(at time.Time, frame []byte) {
		var p layers.Parser
		var pkt layers.Packet
		if p.Parse(frame, &pkt) != nil {
			return
		}
		if fnvSum(frame)%101 == 0 {
			panic("injected fault")
		}
	}

	seqQ := NewQuarantine(0)
	seqCfg := cfg
	seqCfg.Quarantine = seqQ
	seq := NewAnalyzer(seqCfg)
	seq.panicHook = hook
	tr.feed(seq.Packet)
	seq.Finish()
	ss := seq.Summary()
	if ss.PanicsRecovered == 0 {
		t.Fatal("panic injection never fired; test is vacuous")
	}
	if got := seqQ.Total(); got != ss.PanicsRecovered {
		t.Errorf("quarantine holds %d frames, summary counts %d panics", got, ss.PanicsRecovered)
	}

	for _, workers := range []int{1, 4} {
		parQ := NewQuarantine(0)
		parCfg := cfg
		parCfg.Quarantine = parQ
		pa := NewParallelAnalyzer(parCfg, workers)
		setPanicHook(pa, hook)
		tr.feed(pa.Packet)
		pa.Finish()
		ps := pa.Summary()
		if ss != ps {
			t.Fatalf("parallel(%d) summary diverges under injected panics:\nsequential %+v\nparallel   %+v", workers, ss, ps)
		}
		if got := parQ.Total(); got != ps.PanicsRecovered {
			t.Errorf("parallel(%d): quarantine holds %d, summary counts %d", workers, got, ps.PanicsRecovered)
		}
	}

	// The quarantine ring must round-trip to a readable forensic pcap.
	var buf bytes.Buffer
	if err := seqQ.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			break
		}
		n++
	}
	if uint64(n) != seqQ.Total() {
		t.Errorf("forensic pcap has %d frames, quarantine captured %d", n, seqQ.Total())
	}
}

// floodFrame builds one valid server-based Zoom audio packet from a
// random source endpoint with a random SSRC — the worst case for state
// growth, since every packet asks the analyzer for a new flow, stream,
// and metric engine.
func floodFrame(rng *rand.Rand, dst netip.AddrPort, at time.Time) []byte {
	zp := zoom.Packet{
		ServerBased: true,
		SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: uint16(rng.Intn(1 << 16)), Direction: zoom.DirToSFU},
		Media: zoom.MediaEncap{
			Type:      zoom.TypeAudio,
			Sequence:  uint16(rng.Intn(1 << 16)),
			Timestamp: rng.Uint32(),
		},
		RTP: rtp.Packet{
			Header: rtp.Header{
				PayloadType:    99,
				SequenceNumber: uint16(rng.Intn(1 << 16)),
				Timestamp:      rng.Uint32(),
				SSRC:           rng.Uint32(),
			},
			Payload: []byte{0xde, 0xad, 0xbe, 0xef},
		},
	}
	payload, err := zp.Marshal()
	if err != nil {
		panic(err)
	}
	src := netip.AddrPortFrom(
		netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
		uint16(1024+rng.Intn(60000)),
	)
	return layers.EthernetIPv4UDP(src, dst, 64, payload)
}

// TestFloodHoldsCaps feeds one million adversarial packets — every one a
// valid Zoom media packet from a fresh random flow and SSRC — and
// verifies the configured caps hold the hot state flat throughout, with
// everything turned away or aged out accounted for in the summary.
func TestFloodHoldsCaps(t *testing.T) {
	const (
		packets    = 1_000_000
		maxFlows   = 512
		maxStreams = 1024
	)
	cfg := Config{
		PreFiltered:       true,
		MaxFlows:          maxFlows,
		MaxStreams:        maxStreams,
		MaxSubstreams:     4 * maxStreams,
		MaxTCP:            64,
		MaxMeetingStreams: 2 * maxStreams,
		MaxFinished:       maxStreams,
		FlowTTL:           5 * time.Second,
	}
	a := NewAnalyzer(cfg)
	rng := rand.New(rand.NewSource(99))
	dst := netip.AddrPortFrom(netip.AddrFrom4([4]byte{203, 0, 113, 7}), 8801)
	start := time.Date(2022, 3, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < packets; i++ {
		// 50 µs per packet = 20 kpps for 50 s: several FlowTTL windows,
		// so eviction churns while the flood sustains.
		at := start.Add(time.Duration(i) * 50 * time.Microsecond)
		a.Packet(at, floodFrame(rng, dst, at))
		if i%100_000 == 0 {
			if n := a.Flows.Totals().Flows; n > maxFlows {
				t.Fatalf("packet %d: %d live flows exceeds cap %d", i, n, maxFlows)
			}
			if n := a.Flows.Totals().Streams; n > maxStreams {
				t.Fatalf("packet %d: %d live streams exceeds cap %d", i, n, maxStreams)
			}
		}
	}
	a.Finish()

	if n := a.Flows.Totals().Flows; n > maxFlows {
		t.Errorf("final flow table %d exceeds cap %d", n, maxFlows)
	}
	if n := a.Flows.Totals().Streams; n > maxStreams {
		t.Errorf("final stream table %d exceeds cap %d", n, maxStreams)
	}
	if n := len(a.StreamMetrics); n > maxStreams {
		t.Errorf("%d live metric engines exceed stream cap %d", n, maxStreams)
	}
	if n := len(a.Finished); n > cfg.MaxFinished {
		t.Errorf("%d archived streams exceed MaxFinished %d", n, cfg.MaxFinished)
	}
	noClient := func(layers.FiveTuple) netip.AddrPort { return netip.AddrPort{} }
	if n := len(a.Dedup.Records(noClient)); n > cfg.MaxMeetingStreams {
		t.Errorf("%d dedup records exceed cap %d", n, cfg.MaxMeetingStreams)
	}

	s := a.Summary()
	if s.Packets != packets {
		t.Fatalf("analyzed %d packets, want %d", s.Packets, packets)
	}
	if s.RejectedPackets == 0 {
		t.Error("flood never hit a cap; RejectedPackets = 0")
	}
	if s.EvictedFlows == 0 || s.EvictedStreams == 0 {
		t.Errorf("TTL eviction never fired: evicted flows %d, streams %d", s.EvictedFlows, s.EvictedStreams)
	}
	if s.PanicsRecovered != 0 {
		t.Errorf("flood caused %d recovered panics", s.PanicsRecovered)
	}
	// Nothing vanished silently: the table's packet total (which counts
	// capped-out packets too) covers every decoded Zoom packet, and the
	// rejection counters broke down which ones were refused state.
	ev := a.Flows.Evictions()
	if got := a.Flows.Totals().Packets; got != s.ZoomUDP {
		t.Errorf("accounting leak: table counted %d packets, analyzer decoded %d", got, s.ZoomUDP)
	}
	if ev.RejectedFlowPackets == 0 {
		t.Error("flood never hit the flow cap")
	}
}
