package core

import (
	"io"
	"time"

	"zoomlens/internal/features"
	"zoomlens/internal/flow"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
)

// Engine is the analysis substrate behind every tool: the sequential
// Analyzer and the sharded ParallelAnalyzer both satisfy it, so callers
// choose a worker count without branching on the concrete type.
//
// Buffer ownership: the frame passed to Packet is borrowed for the
// duration of the call only — the engine copies whatever it needs to
// retain (shard batches, quarantined frames), so callers may reuse the
// buffer immediately, including the borrowed Data of pcap.NextInto.
//
// Call order: Packet (any number of times, capture order, one
// goroutine), interleaved with Snapshot as desired; then Finish exactly
// once; then the report accessors (Summary, Meetings, StreamIDs,
// MetricsFor, Result).
type Engine interface {
	// Packet ingests one captured frame, borrowed for the call.
	Packet(at time.Time, frame []byte)
	// Finish flushes all per-stream state; call once after the last packet.
	Finish()
	// Snapshot returns per-meeting rolling metrics over the trailing window.
	Snapshot(now time.Time, window time.Duration) []MeetingSnapshot
	// Summary computes the capture roll-up (after Finish).
	Summary() Summary
	// Meetings runs the §4.3 grouping (after Finish).
	Meetings() []meeting.Meeting
	// StreamIDs returns observed stream identifiers in deterministic order.
	StreamIDs() []flow.MediaStreamID
	// MetricsFor returns the metric engine of one stream.
	MetricsFor(id flow.MediaStreamID) (*metrics.StreamMetrics, bool)
	// Result returns the sequential-equivalent merged analyzer (after
	// Finish; the parallel engine panics before it).
	Result() *Analyzer
	// Checkpoint serializes the engine's complete mutable state so
	// RestoreAnalyzer can resume the run with byte-identical results.
	// Call it between Packet calls (it quiesces a parallel engine).
	Checkpoint(w io.Writer) error
	// CheckpointDelta serializes only the mutations since the last
	// checkpoint encode (full or delta), or ErrDeltaUnavailable when no
	// chain is armed — the caller then writes a full checkpoint.
	CheckpointDelta(w io.Writer) error
	// ApplyDelta replays one delta record onto an engine sitting exactly
	// at the record's base state. On error the engine may be partially
	// mutated: Discard it and restore from an earlier generation.
	ApplyDelta(r io.Reader) error
	// Rotate finalizes the current report window, returns it for
	// rendering, and re-seeds the live state for the next window.
	Rotate(now time.Time) *Analyzer
	// DrainFeatures returns the streaming feature rows emitted since the
	// previous drain, in (window, stream) order; nil when the feature
	// layer is disabled (Config.FeatureWindow == 0). Drain cadence never
	// affects row content or order. Call from the ingest goroutine.
	DrainFeatures() []features.Row
}

// Both pipelines satisfy Engine; a missing method is a compile error
// here rather than a surprise at a call site.
var (
	_ Engine = (*Analyzer)(nil)
	_ Engine = (*ParallelAnalyzer)(nil)
)

// Result returns the analyzer itself: the sequential pipeline is its
// own merged result.
func (a *Analyzer) Result() *Analyzer { return a }
