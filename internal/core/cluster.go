package core

// Multi-process cluster support: the pieces that let a front-end
// splitter process, N worker processes, and an aggregator process
// reproduce the in-process sharded pipeline across machine boundaries.
//
// The in-process ParallelAnalyzer splits per-packet work three ways: a
// dispatcher (raw scan + stateful capture filter + flow-hash routing),
// per-shard analyzers (everything per-flow), and a reconciliation pass
// that feeds the cross-flow Dedup/CopyMatcher in global capture order.
// Cluster mode maps each role onto a process:
//
//   - Router is the dispatcher extracted for the splitter process: same
//     rawScan fast path, same ClassifyFlow filter semantics, same
//     FNV-1a shard hash (shardFor — shared with shardIndexFor), same
//     counting. The splitter owns the head counters (packets, bytes,
//     filter drops, L2–L4 undecodable) exactly as the dispatcher does.
//   - A worker is a sequential Analyzer run with Config.PreFiltered
//     (the splitter already filtered) whose media observations are
//     diverted through SetClusterSink into an observation log instead
//     of its local Dedup/Copies, and whose packets carry the splitter's
//     global sequence number via PacketSeq. Its checkpoint, written
//     before Finish, is the exportable shard state.
//   - MergeCluster is ParallelAnalyzer.merge with process boundaries:
//     restored worker states stand in for shard analyzers, the k-way
//     merged observation logs stand in for the shard chains, and the
//     splitter's ClusterHead stands in for the dispatcher counters.
//
// The invariant carries over unchanged: the merged analyzer is
// byte-identical to a sequential run over the same capture.

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/features"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/zoom"
)

// ClusterObs is one media-stream observation exported by a cluster
// worker for the aggregator's cross-flow reconciliation: the exported
// form of the shard observation log entry.
type ClusterObs struct {
	// Seq is the splitter-assigned global capture sequence number of
	// the packet; the aggregator replays observations in Seq order.
	Seq  uint64
	At   time.Time
	Flow layers.FiveTuple
	Key  zoom.StreamKey
	// WireLen/PayloadLen carry the packet sizes the aggregator's feature
	// windower consumes (obslog v3).
	WireLen    int
	PayloadLen int
	PT         uint8
	RTPSeq     uint16
	RTPTS      uint32
}

// SetClusterSink diverts this analyzer's media observations to sink
// instead of its local Dedup/CopyMatcher — stream unification and RTP
// copy matching are cross-flow, so a cluster worker exports its
// observations for the aggregator to replay globally, exactly as an
// in-process shard logs them for the dispatcher.
func (a *Analyzer) SetClusterSink(sink func(ClusterObs)) error {
	a.obsSink = func(o mediaObs) {
		sink(ClusterObs{
			Seq: o.seq, At: o.at, Flow: o.flow, Key: o.key,
			WireLen: int(o.wireLen), PayloadLen: int(o.payloadLen),
			PT: o.pt, RTPSeq: o.rtpSeq, RTPTS: o.rtpTS,
		})
	}
	return nil
}

// SetClusterSink on the parallel wrapper delegates to the degenerate
// sequential engine. A multi-shard engine already owns an in-process
// reconciliation pipeline; nesting it under a second, cross-process one
// is not supported — cluster workers run with -workers 1.
func (pa *ParallelAnalyzer) SetClusterSink(sink func(ClusterObs)) error {
	if pa.seq == nil {
		return errors.New("core: cluster observation export requires a sequential engine (workers=1)")
	}
	return pa.seq.SetClusterSink(sink)
}

// PacketSeq ingests one frame carrying an externally assigned global
// capture sequence number (the splitter's epb_packetid). The sequence
// number tags the media observations this packet produces, so the
// aggregator can restore global capture order across workers.
func (a *Analyzer) PacketSeq(at time.Time, frame []byte, seq uint64) {
	a.obsSeq = seq
	a.Packet(at, frame)
}

// PacketSeq on the parallel wrapper delegates to the degenerate
// sequential engine; with real shards the sequence number is ignored
// (the dispatcher assigns its own).
func (pa *ParallelAnalyzer) PacketSeq(at time.Time, frame []byte, seq uint64) {
	if pa.seq != nil {
		pa.seq.PacketSeq(at, frame, seq)
		return
	}
	pa.Packet(at, frame)
}

// SetPanicHook installs a hook run inside the per-packet recover scope
// before parsing. Tests use it to inject deterministic panics into the
// quarantine path; production never sets it.
func (a *Analyzer) SetPanicHook(h func(at time.Time, frame []byte)) { a.panicHook = h }

// SetPanicHook on the parallel wrapper reaches the sequential engine or
// every shard analyzer. Call before the first packet.
func (pa *ParallelAnalyzer) SetPanicHook(h func(at time.Time, frame []byte)) {
	if pa.seq != nil {
		pa.seq.SetPanicHook(h)
		return
	}
	for _, sh := range pa.shards {
		sh.a.panicHook = h
	}
}

// ClusterHead is the splitter-side half of the merged accounting: the
// counters the in-process dispatcher owns, carried across the process
// boundary in the split manifest. Worker-side counters (zoom parse
// failures, TCP/STUN tallies, evictions) are summed from the restored
// worker states instead.
type ClusterHead struct {
	Packets         uint64
	Bytes           uint64
	Undecodable     uint64
	DroppedByFilter uint64
	PanicsRecovered uint64
	ShedPackets     uint64
	ShedBytes       uint64
	Truncated       bool
	FirstTS         time.Time
	LastTS          time.Time
}

// Router is the dispatcher's scan → filter → route stage extracted for
// the splitter process: it classifies each frame with the exact
// semantics (and counting) of the in-process parallel dispatcher and
// returns the worker shard the frame belongs to.
type Router struct {
	cfg    Config
	n      int
	filter *capture.Filter
	parser layers.Parser
	pkt    layers.Packet

	// Packets counts every frame offered, kept or not; it doubles as
	// the global capture sequence number stamped on forwarded frames
	// (1-based — only relative order matters downstream).
	Packets         uint64
	Bytes           uint64
	Undecodable     uint64
	DroppedByFilter uint64
	PanicsRecovered uint64
	firstTS         time.Time
	lastTS          time.Time
}

// NewRouter builds a router over n worker shards. The capture filter is
// stateful (the P2P table is armed by STUN on one flow and consulted by
// media on another), which is exactly why classification runs once,
// centrally, in the splitter.
func NewRouter(cfg Config, n int) *Router {
	if n < 1 {
		n = 1
	}
	protos := cfg.Protos
	if protos == nil {
		protos = rtcproto.DefaultSet()
	}
	return &Router{
		cfg: cfg,
		n:   n,
		filter: capture.NewFilter(capture.Config{
			ZoomNetworks:   cfg.ZoomNetworks,
			CampusNetworks: cfg.CampusNetworks,
			GenericRTC:     rtcproto.HasNonZoom(protos),
		}),
	}
}

// Route classifies one frame: shard is the worker it belongs to and
// keep reports whether it should be forwarded at all (undecodable and
// filter-dropped frames are counted here and never forwarded). Frames
// whose classification panics are counted, optionally quarantined, and
// not forwarded — the same containment the dispatcher applies.
func (r *Router) Route(at time.Time, frame []byte) (shard int, keep bool) {
	r.Packets++
	r.Bytes += uint64(len(frame))
	if r.firstTS.IsZero() || at.Before(r.firstTS) {
		r.firstTS = at
	}
	if at.After(r.lastTS) {
		r.lastTS = at
	}
	defer func() {
		if p := recover(); p != nil {
			r.PanicsRecovered++
			if r.cfg.Quarantine != nil {
				r.cfg.Quarantine.Add(at, frame, fmt.Sprintf("panic: %v", p))
			}
			shard, keep = 0, false
		}
	}()
	var ri rawInfo
	if !rawScan(frame, &ri) {
		return r.routeSlow(at, frame)
	}
	verdict := r.filter.ClassifyFlow(ri.src, ri.dst, !ri.isTCP, ri.srcPort, ri.dstPort, ri.payload, at)
	if !verdict.Keep() && !r.cfg.PreFiltered {
		r.DroppedByFilter++
		return 0, false
	}
	return shardFor(&r.cfg, r.n, ri.isTCP, ri.src, ri.dst, ri.srcPort, ri.dstPort), true
}

// routeSlow is the full-parse fallback for frames rawScan does not
// cover, with identical counting semantics to dispatchSlow.
func (r *Router) routeSlow(at time.Time, frame []byte) (int, bool) {
	if err := r.parser.Parse(frame, &r.pkt); err != nil {
		r.Undecodable++
		return 0, false
	}
	verdict := r.filter.Classify(&r.pkt, at)
	if !verdict.Keep() && !r.cfg.PreFiltered {
		r.DroppedByFilter++
		return 0, false
	}
	if r.pkt.HasTCP {
		return shardFor(&r.cfg, r.n, true, r.pkt.SrcAddr(), r.pkt.DstAddr(), r.pkt.TCP.SrcPort, r.pkt.TCP.DstPort), true
	}
	ft, ok := r.pkt.FiveTuple()
	if !ok {
		return 0, true
	}
	return shardFor(&r.cfg, r.n, false, ft.Src, ft.Dst, ft.SrcPort, ft.DstPort), true
}

// Head snapshots the router's dispatcher-side counters for the split
// manifest. The splitter never sheds (it has no rings), so the shed
// counters stay zero.
func (r *Router) Head(truncated bool) ClusterHead {
	return ClusterHead{
		Packets:         r.Packets,
		Bytes:           r.Bytes,
		Undecodable:     r.Undecodable,
		DroppedByFilter: r.DroppedByFilter,
		PanicsRecovered: r.PanicsRecovered,
		Truncated:       truncated,
		FirstTS:         r.firstTS,
		LastTS:          r.lastTS,
	}
}

// shardFor hashes flow features to one of n shards: FNV-1a over the
// directed five-tuple for UDP, over the client endpoint for TCP. It is
// the single routing hash shared by the in-process dispatcher
// (shardIndexFor) and the cluster splitter (Router), so a cluster
// worker receives exactly the flows the corresponding in-process shard
// would have.
func shardFor(cfg *Config, n int, isTCP bool, src, dst netip.Addr, srcPort, dstPort uint16) int {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	if isTCP {
		client, cport := dst, dstPort
		if cfg.isZoomAddr(dst) && !cfg.isZoomAddr(src) {
			client, cport = src, srcPort
		}
		a16 := client.As16()
		h = fnv1a(h, a16[:])
		tail := [3]byte{byte(cport >> 8), byte(cport), layers.ProtoTCP}
		h = fnv1a(h, tail[:])
		return int(h % uint64(n))
	}
	s16, d16 := src.As16(), dst.As16()
	h = fnv1a(h, s16[:])
	sp := [2]byte{byte(srcPort >> 8), byte(srcPort)}
	h = fnv1a(h, sp[:])
	h = fnv1a(h, d16[:])
	tail := [3]byte{byte(dstPort >> 8), byte(dstPort), layers.ProtoUDP}
	h = fnv1a(h, tail[:])
	return int(h % uint64(n))
}

// MergeCluster combines restored worker states into one sequential-
// equivalent analyzer: head supplies the splitter-side counters, next
// yields the k-way merged worker observation logs in global capture
// (Seq) order, and parts are the restored per-worker analyzers. The
// returned analyzer has NOT been finished — callers either Finish it to
// read the report or Checkpoint it first to keep the merged state
// portable (checkpoints always capture pre-Finish state).
func MergeCluster(cfg Config, parts []*Analyzer, head ClusterHead, next func() (ClusterObs, bool)) *Analyzer {
	rec := newReconState(cfg)
	for {
		o, ok := next()
		if !ok {
			break
		}
		unified := rec.dedup.Observe(meeting.StreamObs{
			Time: o.At, Flow: o.Flow, Key: o.Key, Seq: o.RTPSeq, TS: o.RTPTS,
		})
		rec.copies.Observe(unified, o.Flow, o.PT, o.RTPSeq, o.RTPTS, o.At)
		if rec.win != nil {
			rec.win.Observe(features.Obs{
				At: o.At, Flow: o.Flow, Key: o.Key,
				WireLen: o.WireLen, PayloadLen: o.PayloadLen,
				PT: o.PT, RTPSeq: o.RTPSeq, RTPTS: o.RTPTS,
			})
		}
	}
	return mergeParts(cfg, parts, head, rec)
}
