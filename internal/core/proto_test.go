package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"net/netip"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/rtp"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/stun"
	"zoomlens/internal/zoom"
)

// TestSTUNPortRequiresFraming is the regression test for the port-3478
// misclassification: a packet that merely lands on the well-known STUN
// port but lacks STUN framing must NOT count as STUN — it is counted in
// STUNPortNonSTUN and falls through to the protocol decoders.
func TestSTUNPortRequiresFraming(t *testing.T) {
	a := NewAnalyzer(Config{PreFiltered: true})
	src := netip.MustParseAddrPort("10.8.0.10:3478")
	dst := netip.MustParseAddrPort("203.0.113.7:8801")
	at := time.Unix(1700000000, 0)

	// A Zoom media packet whose source port happens to be 3478.
	zp := zoom.Packet{
		Media: zoom.MediaEncap{Type: zoom.TypeAudio, Sequence: 1, Timestamp: 48000},
		RTP: rtp.Packet{
			Header:  rtp.Header{PayloadType: zoom.PTAudioSpeak, SequenceNumber: 1, Timestamp: 48000, SSRC: 11},
			Payload: make([]byte, 60),
		},
	}
	payload, err := zp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	a.Packet(at, layers.EthernetIPv4UDP(src, dst, 64, payload))

	if a.STUNPackets != 0 {
		t.Errorf("STUNPackets = %d, want 0 (no STUN framing)", a.STUNPackets)
	}
	if a.STUNPortNonSTUN != 1 {
		t.Errorf("STUNPortNonSTUN = %d, want 1", a.STUNPortNonSTUN)
	}
	if a.ProtoDecoded[rtcproto.IDZoom] != 1 {
		t.Errorf("ProtoDecoded[zoom] = %d, want 1 (packet must fall through to the decoders)", a.ProtoDecoded[rtcproto.IDZoom])
	}

	// A real STUN packet on the same port counts as STUN, and not in the
	// mismatch counter.
	msg := stun.NewBindingRequest(stun.TransactionID{9})
	a.Packet(at.Add(time.Millisecond), layers.EthernetIPv4UDP(src, dst, 64, msg.Marshal()))
	if a.STUNPackets != 1 {
		t.Errorf("STUNPackets = %d, want 1", a.STUNPackets)
	}
	if a.STUNPortNonSTUN != 1 {
		t.Errorf("STUNPortNonSTUN = %d, want 1 (true STUN must not count)", a.STUNPortNonSTUN)
	}
}

// webrtcMediaFrames synthesizes a small standards-RTC exchange: an ICE
// STUN handshake from the campus client's bundled media port, then
// bidirectional RTP between client and an off-Zoom media server.
func webrtcMediaFrames(t *testing.T, client, server netip.AddrPort) (frames [][]byte, times []time.Time) {
	t.Helper()
	at := time.Unix(1700000000, 0)
	add := func(f []byte) {
		frames = append(frames, f)
		times = append(times, at)
		at = at.Add(10 * time.Millisecond)
	}
	// ICE connectivity check: client media port ↔ server STUN port.
	stunSrv := netip.AddrPortFrom(server.Addr(), stun.Port)
	tid := stun.TransactionID{1, 2, 3}
	req := stun.NewBindingRequest(tid)
	add(layers.EthernetIPv4UDP(client, stunSrv, 64, req.Marshal()))
	resp := stun.NewBindingResponse(tid, client)
	add(layers.EthernetIPv4UDP(stunSrv, client, 57, resp.Marshal()))
	// Media: Opus up, VP8 down, same bundled flow.
	for i := 0; i < 40; i++ {
		up := rtp.Packet{
			Header:  rtp.Header{PayloadType: 111, SequenceNumber: uint16(100 + i), Timestamp: uint32(48000 + 960*i), SSRC: 0xaaaa0001},
			Payload: make([]byte, 80),
		}
		raw, err := up.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		add(layers.EthernetIPv4UDP(client, server, 64, raw))
		down := rtp.Packet{
			Header:  rtp.Header{PayloadType: 96, SequenceNumber: uint16(500 + i), Timestamp: uint32(90000 + 3000*i), SSRC: 0xbbbb0002, Marker: i%2 == 1},
			Payload: make([]byte, 1000),
		}
		raw, err = down.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		add(layers.EthernetIPv4UDP(server, client, 57, raw))
	}
	return frames, times
}

// TestWebRTCEndToEnd drives a standards-RTC exchange through the full
// unfiltered pipeline: the ICE STUN handshake must arm the capture
// filter (GenericRTC mode — the server is NOT in a Zoom prefix), and the
// media must decode under the webrtc plugin into proto-tagged streams
// and a webrtc meeting.
func TestWebRTCEndToEnd(t *testing.T) {
	client := netip.MustParseAddrPort("10.8.0.10:50000")
	server := netip.MustParseAddrPort("198.51.100.40:50004")
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
		CampusNetworks: []netip.Prefix{netip.MustParsePrefix("10.8.0.0/16")},
	}
	a := NewAnalyzer(cfg)
	frames, times := webrtcMediaFrames(t, client, server)
	for i, f := range frames {
		a.Packet(times[i], f)
	}
	a.Finish()

	if a.DroppedByFilter != 0 {
		t.Errorf("DroppedByFilter = %d, want 0 (STUN must arm the generic filter)", a.DroppedByFilter)
	}
	if a.ProtoDecoded[rtcproto.IDWebRTC] != 80 {
		t.Errorf("ProtoDecoded[webrtc] = %d, want 80", a.ProtoDecoded[rtcproto.IDWebRTC])
	}
	if a.ZoomUDP != 0 {
		t.Errorf("ZoomUDP = %d, want 0 (nothing here is Zoom)", a.ZoomUDP)
	}
	ids := a.StreamIDs()
	if len(ids) != 2 {
		t.Fatalf("streams = %d, want 2 (audio up, video down)", len(ids))
	}
	kinds := map[zoom.MediaType]bool{}
	for _, id := range ids {
		if id.Key.Proto != uint8(rtcproto.IDWebRTC) {
			t.Errorf("stream %v proto = %d, want webrtc", id, id.Key.Proto)
		}
		kinds[id.Key.Type] = true
	}
	if !kinds[zoom.TypeAudio] || !kinds[zoom.TypeVideo] {
		t.Errorf("stream kinds = %v, want audio and video", kinds)
	}
	ms := a.Meetings()
	if len(ms) != 1 {
		t.Fatalf("meetings = %d, want 1", len(ms))
	}
	if ms[0].Proto != uint8(rtcproto.IDWebRTC) {
		t.Errorf("meeting proto = %d, want webrtc", ms[0].Proto)
	}
	reps := a.MeetingReports()
	if len(reps) != 1 || reps[0].App != "webrtc" {
		t.Fatalf("meeting reports = %+v, want one webrtc report", reps)
	}
}

// TestProtoPinnedToZoom pins the plugin set to Zoom alone: standards RTP
// then counts as undecodable instead of being claimed by the webrtc
// plugin, and GenericRTC filter arming is off (the ICE STUN exchange
// with a non-Zoom server no longer arms media flows).
func TestProtoPinnedToZoom(t *testing.T) {
	client := netip.MustParseAddrPort("10.8.0.10:50000")
	server := netip.MustParseAddrPort("198.51.100.40:50004")
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{netip.MustParsePrefix("203.0.113.0/24")},
		CampusNetworks: []netip.Prefix{netip.MustParsePrefix("10.8.0.0/16")},
		Protos:         []rtcproto.Plugin{rtcproto.Zoom()},
	}
	a := NewAnalyzer(cfg)
	frames, times := webrtcMediaFrames(t, client, server)
	for i, f := range frames {
		a.Packet(times[i], f)
	}
	a.Finish()
	if a.ProtoDecoded[rtcproto.IDWebRTC] != 0 {
		t.Errorf("ProtoDecoded[webrtc] = %d, want 0 with -proto zoom", a.ProtoDecoded[rtcproto.IDWebRTC])
	}
	if got := a.DroppedByFilter; got == 0 {
		t.Error("DroppedByFilter = 0, want the RTP flow dropped (GenericRTC arming off)")
	}
	if len(a.StreamIDs()) != 0 {
		t.Errorf("streams = %d, want 0", len(a.StreamIDs()))
	}
}

// TestCheckpointOldVersionRejected hand-crafts a checkpoint whose
// analyzer payload carries the pre-refactor state version: restore must
// fail with a clear versioned error, not misread the bytes.
func TestCheckpointOldVersionRejected(t *testing.T) {
	var enc statecodec.Writer
	writeCheckpointHeader(&enc, engineKindSequential)
	enc.U8(analyzerStateV2) // pre-protocol-plugin payload version
	// A few plausible varint fields; the reader must fail on the version
	// byte before interpreting any of this.
	for i := 0; i < 8; i++ {
		enc.U64(uint64(i))
	}
	var buf bytes.Buffer
	if err := sealCheckpoint(&buf, &enc); err != nil {
		t.Fatal(err)
	}
	// Sanity: the file itself is well-formed (magic + CRC pass).
	body := buf.Bytes()
	if got := crc32.Checksum(body[:len(body)-4], crcTable); got != binary.LittleEndian.Uint32(body[len(body)-4:]) {
		t.Fatal("test bug: CRC trailer does not match")
	}
	_, err := RestoreAnalyzer(bytes.NewReader(body), Config{})
	if err == nil {
		t.Fatal("restore of a V2 analyzer payload succeeded, want versioned rejection")
	}
	if !strings.Contains(err.Error(), "state version 2") || !strings.Contains(err.Error(), "supported: 3") {
		t.Errorf("error %q does not name the rejected and supported versions", err)
	}
}
