package core

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/metrics"
	"zoomlens/internal/netsim"
	"zoomlens/internal/pcap"
	"zoomlens/internal/sim"
	"zoomlens/internal/zoom"
)

func analyzerFor(opts sim.Options) *Analyzer {
	return NewAnalyzer(Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	})
}

// runMeetingCapture simulates a two-party on-campus meeting and streams
// the monitor output straight into an analyzer.
func runMeetingCapture(t *testing.T, seconds int, congested bool) (*Analyzer, sim.Options) {
	t.Helper()
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	m.Join(w.NewClient("alice", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("bob", true), sim.DefaultMediaSet())
	if congested {
		w.WanDown.Episodes = append(w.WanDown.Episodes, netsim.Congestion{
			Start:       opts.Start.Add(time.Duration(seconds/3) * time.Second),
			End:         opts.Start.Add(time.Duration(seconds/2) * time.Second),
			ExtraDelay:  25 * time.Millisecond,
			ExtraJitter: 30 * time.Millisecond,
			LossRate:    0.02,
		})
	}
	w.Run(opts.Start.Add(time.Duration(seconds) * time.Second))
	a.Finish()
	return a, opts
}

func TestEndToEndTwoPartyMeeting(t *testing.T) {
	a, _ := runMeetingCapture(t, 30, false)

	sum := a.Summary()
	if sum.Packets < 2000 {
		t.Fatalf("packets = %d", sum.Packets)
	}
	if sum.ZoomUDP == 0 || sum.TCPPackets == 0 {
		t.Fatalf("zoomUDP=%d tcp=%d", sum.ZoomUDP, sum.TCPPackets)
	}
	// Undecodable (control) traffic exists but is well under the ~10 %
	// the paper reports as an upper bound... allow up to 25 %.
	frac := float64(sum.Undecodable) / float64(sum.Packets)
	if frac == 0 || frac > 0.25 {
		t.Errorf("undecodable fraction = %v", frac)
	}
	// 2 participants × 2 media × (uplink + downlink) = 8 stream records.
	if sum.Streams != 8 {
		t.Errorf("streams = %d, want 8", sum.Streams)
	}
	if sum.Meetings != 1 {
		t.Errorf("meetings = %d, want 1", sum.Meetings)
	}
	ms := a.Meetings()[0]
	if got := ms.Participants(); got != 2 {
		t.Errorf("participants = %d", got)
	}
	// 4 unified streams (each participant's audio + video).
	if len(ms.Streams) != 4 {
		t.Errorf("unified streams = %d, want 4", len(ms.Streams))
	}
}

func TestEndToEndVideoMetricsMatchGroundTruth(t *testing.T) {
	a, _ := runMeetingCapture(t, 30, false)
	// Find a video stream with enough frames and check steady-state
	// frame rate ≈ 28 and most frames < 2000 B.
	var checked int
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeVideo {
			continue
		}
		sm, _ := a.MetricsFor(id)
		if sm.FramesTotal < 200 {
			continue
		}
		checked++
		n := len(sm.FrameRate.Samples)
		var sum float64
		var cnt int
		for _, s := range sm.FrameRate.Samples[n/2:] {
			sum += s.Value
			cnt++
		}
		fps := sum / float64(cnt)
		if fps < 24 || fps > 32 {
			t.Errorf("stream %v: mean fps = %v, want ≈28", id.Key, fps)
		}
		var under2000, frames int
		for _, s := range sm.FrameSize.Samples {
			frames++
			if s.Value < 2000 {
				under2000++
			}
		}
		if float64(under2000)/float64(frames) < 0.5 {
			t.Errorf("stream %v: frames <2000B = %v", id.Key, float64(under2000)/float64(frames))
		}
		// Jitter on an uncongested path stays low (median < 10 ms).
		if len(sm.JitterMS.Samples) > 10 {
			mid := sm.JitterMS.Samples[len(sm.JitterMS.Samples)/2].Value
			if mid > 10 {
				t.Errorf("stream %v: median jitter = %v ms", id.Key, mid)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no video streams with enough frames")
	}
}

func TestEndToEndRTTViaStreamCopies(t *testing.T) {
	a, opts := runMeetingCapture(t, 30, false)
	samples := a.Copies.Samples
	if len(samples) < 100 {
		t.Fatalf("rtt samples = %d, want many", len(samples))
	}
	// Monitor↔SFU RTT = 2×WanDelay plus jitter: mean in a plausible band.
	var sum time.Duration
	for _, s := range samples {
		sum += s.RTT
	}
	mean := sum / time.Duration(len(samples))
	lo, hi := 2*opts.WanDelay, 2*(opts.WanDelay+opts.WanJitter)+5*time.Millisecond
	if mean < lo || mean > hi {
		t.Errorf("mean rtt = %v, want in [%v, %v]", mean, lo, hi)
	}
}

func TestEndToEndTCPRTTDecomposition(t *testing.T) {
	a, opts := runMeetingCapture(t, 30, false)
	if len(a.TCP) == 0 {
		t.Fatal("no TCP trackers")
	}
	for client, tr := range a.TCP {
		sp := tr.Split()
		if sp.ToServerSamples == 0 || sp.ToClientSamples == 0 {
			t.Fatalf("client %v: samples %+v", client, sp)
		}
		// Monitor↔server ≈ 2×WanDelay; monitor↔client ≈ 2×CampusDelay.
		if sp.ToServerMean < 2*opts.WanDelay || sp.ToServerMean > 2*(opts.WanDelay+opts.WanJitter)+10*time.Millisecond {
			t.Errorf("server mean = %v", sp.ToServerMean)
		}
		if sp.ToClientMean < 2*opts.CampusDelay || sp.ToClientMean > 2*(opts.CampusDelay+opts.CampusJitter)+10*time.Millisecond {
			t.Errorf("client mean = %v", sp.ToClientMean)
		}
		if sp.ToServerMean <= sp.ToClientMean {
			t.Errorf("server leg (%v) should exceed client leg (%v)", sp.ToServerMean, sp.ToClientMean)
		}
	}
}

func TestEndToEndTable2And3Shares(t *testing.T) {
	a, _ := runMeetingCapture(t, 40, false)
	sum := a.Summary()
	shares := a.Flows.EncapShares(sum.Packets, sum.Bytes)
	byType := map[zoom.MediaType]float64{}
	var mediaPkts float64
	for _, s := range shares {
		byType[s.Type] = s.BytesPct
		mediaPkts += s.PacketsPct
	}
	if !(byType[zoom.TypeVideo] > byType[zoom.TypeAudio]) {
		t.Errorf("video bytes %% (%v) should dominate audio (%v)", byType[zoom.TypeVideo], byType[zoom.TypeAudio])
	}
	// Decoded media packets make up the large majority of all packets
	// (paper: 90 %).
	if mediaPkts < 60 {
		t.Errorf("decodable share = %v%%", mediaPkts)
	}
	pts := a.Flows.PayloadTypeShares(sum.Packets, sum.Bytes)
	var sawMain, sawFEC, sawSpeak bool
	for _, p := range pts {
		switch p.Substream {
		case zoom.SubVideoMain:
			sawMain = true
		case zoom.SubVideoFEC:
			sawFEC = true
		case zoom.SubAudioSpeaking:
			sawSpeak = true
		}
	}
	if !sawMain || !sawFEC || !sawSpeak {
		t.Errorf("substream coverage: main=%v fec=%v speak=%v", sawMain, sawFEC, sawSpeak)
	}
	// Table 3 ordering: video main is the most common substream.
	if pts[0].Substream != zoom.SubVideoMain {
		t.Errorf("top substream = %v", pts[0].Substream)
	}
}

func TestEndToEndJitterRisesUnderCongestion(t *testing.T) {
	a, opts := runMeetingCapture(t, 60, true)
	// Jitter samples on downlink video streams (SFU→client crosses the
	// congested WanDown) must be higher during the episode.
	congStart := opts.Start.Add(20 * time.Second)
	congEnd := opts.Start.Add(30 * time.Second)
	var quiet, busy []float64
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeVideo {
			continue
		}
		sm, _ := a.MetricsFor(id)
		for _, s := range sm.JitterMS.Samples {
			switch {
			case s.Time.After(congStart.Add(3*time.Second)) && s.Time.Before(congEnd):
				busy = append(busy, s.Value)
			case s.Time.Before(congStart):
				quiet = append(quiet, s.Value)
			}
		}
	}
	if len(quiet) == 0 || len(busy) == 0 {
		t.Fatalf("quiet=%d busy=%d", len(quiet), len(busy))
	}
	mq, mb := mean(quiet), mean(busy)
	if mb < mq*2 {
		t.Errorf("jitter quiet=%v busy=%v: congestion invisible", mq, mb)
	}
}

func TestEndToEndLossProducesDuplicates(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.WanLoss = 0.03
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(30 * time.Second))
	a.Finish()

	var dups uint64
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		dups += sm.LossStats().Duplicates
	}
	if dups == 0 {
		t.Error("no duplicates observed despite lossy WAN (§5.5: retransmissions appear as duplicates)")
	}
}

func TestPCAPRoundTripThroughAnalyzer(t *testing.T) {
	// Write the monitor stream to a pcap, then analyze the file: results
	// must match the live analysis.
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	var buf bytes.Buffer
	pw, err := pcap.NewWriter(&buf, pcap.WriterOptions{Nanosecond: true})
	if err != nil {
		t.Fatal(err)
	}
	live := analyzerFor(opts)
	w.Monitor = func(at time.Time, frame []byte) {
		live.Packet(at, frame)
		if err := pw.WriteRecord(at, frame); err != nil {
			t.Fatal(err)
		}
	}
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(10 * time.Second))
	live.Finish()

	fromFile := analyzerFor(opts)
	if err := fromFile.ReadPCAP(&buf); err != nil {
		t.Fatal(err)
	}
	ls, fs := live.Summary(), fromFile.Summary()
	if ls != fs {
		t.Errorf("live %+v != file %+v", ls, fs)
	}
}

func TestP2PMeetingAnalyzedEndToEnd(t *testing.T) {
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	m.EnableP2P(8 * time.Second)
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", false), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(30 * time.Second))
	a.Finish()

	if a.STUNPackets == 0 {
		t.Error("no STUN packets")
	}
	// P2P flows (neither endpoint a Zoom server) must appear.
	var sawP2PFlow bool
	for _, f := range a.Flows.Flows() {
		if f.P2P > 0 {
			sawP2PFlow = true
		}
	}
	if !sawP2PFlow {
		t.Error("no P2P-layout packets analyzed")
	}
	// The grouping heuristic must still see ONE meeting across the
	// SFU→P2P transition.
	if got := len(a.Meetings()); got != 1 {
		t.Errorf("meetings = %d, want 1 across mode switch", got)
	}
}

func TestSummaryDuration(t *testing.T) {
	a, opts := runMeetingCapture(t, 10, false)
	d := a.Summary().Duration
	if d < 8*time.Second || d > 10*time.Second {
		t.Errorf("duration = %v", d)
	}
	_ = opts
}

func mean(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

func BenchmarkAnalyzerThroughput(b *testing.B) {
	// Pre-generate a 10-second capture, then measure pure analysis speed.
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	type rec struct {
		at    time.Time
		frame []byte
	}
	var recs []rec
	w.Monitor = func(at time.Time, frame []byte) {
		cp := make([]byte, len(frame))
		copy(cp, frame)
		recs = append(recs, rec{at, cp})
	}
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(10 * time.Second))

	var totalBytes int64
	for _, r := range recs {
		totalBytes += int64(len(r.frame))
	}
	b.SetBytes(totalBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := analyzerFor(opts)
		for _, r := range recs {
			a.Packet(r.at, r.frame)
		}
		a.Finish()
	}
	b.ReportMetric(float64(len(recs))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

// TestClockRateDiscoveryEndToEnd reproduces the §5.2 parameter sweep on
// simulated traffic: video streams must infer the 90 kHz clock, audio
// the simulator's 16 kHz.
func TestClockRateDiscoveryEndToEnd(t *testing.T) {
	a, _ := runMeetingCapture(t, 20, false)
	var videoChecked, audioChecked int
	for _, id := range a.StreamIDs() {
		sm, _ := a.MetricsFor(id)
		obs := sm.FrameObservations()
		if len(obs) < 100 {
			continue
		}
		est, ok := metrics.InferClockRate(obs)
		if !ok {
			continue
		}
		switch id.Key.Type {
		case zoom.TypeVideo:
			videoChecked++
			if est.ClockRate != 90000 {
				t.Errorf("video stream %v inferred %v Hz", id.Key, est.ClockRate)
			}
		case zoom.TypeAudio:
			audioChecked++
			if est.ClockRate != 16000 {
				t.Errorf("audio stream %v inferred %v Hz", id.Key, est.ClockRate)
			}
		}
	}
	if videoChecked == 0 || audioChecked == 0 {
		t.Errorf("checked video=%d audio=%d streams", videoChecked, audioChecked)
	}
}

// TestTalkTimeEndToEnd verifies §4.2.3's talk quantification on
// simulated audio: speaking fractions must be sane and segments found.
func TestTalkTimeEndToEnd(t *testing.T) {
	a, _ := runMeetingCapture(t, 60, false)
	var checked int
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeAudio {
			continue
		}
		sm, _ := a.MetricsFor(id)
		if sm.Talk == nil || sm.Packets < 300 {
			continue
		}
		st := sm.Talk.Stats()
		if !st.ModeKnown {
			continue
		}
		checked++
		if st.SpeakingFraction < 0 || st.SpeakingFraction > 1 {
			t.Errorf("stream %v speaking fraction = %v", id.Key, st.SpeakingFraction)
		}
		if st.Speaking > 0 && st.Segments == 0 {
			t.Errorf("stream %v has speaking time but no segments", id.Key)
		}
	}
	if checked == 0 {
		t.Error("no audio streams checked")
	}
}

// TestScreenShareAnalyzedEndToEnd covers the marker-based frame
// assembly path (type 13 has no packets-in-frame field) and the sparse
// frame-rate behaviour of §6.2.
func TestScreenShareAnalyzedEndToEnd(t *testing.T) {
	opts := sim.DefaultOptions()
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	presenter := sim.DefaultMediaSet()
	presenter.Screen = true
	m.Join(w.NewClient("presenter", true), presenter)
	m.Join(w.NewClient("viewer", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(60 * time.Second))
	a.Finish()

	var checked int
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeScreenShare {
			continue
		}
		sm, _ := a.MetricsFor(id)
		if sm.Packets < 20 {
			continue
		}
		checked++
		if sm.FramesTotal == 0 {
			t.Errorf("screen share stream %v assembled no frames", id.Key)
		}
		// Frame sizes have the documented small-median shape.
		var under500, frames int
		for _, s := range sm.FrameSize.Samples {
			frames++
			if s.Value < 500 {
				under500++
			}
		}
		if frames > 20 && float64(under500)/float64(frames) < 0.4 {
			t.Errorf("stream %v: small-frame share = %v", id.Key, float64(under500)/float64(frames))
		}
	}
	if checked == 0 {
		t.Fatal("no screen share streams analyzed")
	}

	// While the screen share is active, other participants' video drops
	// to thumbnail rate (a user-driven effect, §5.1).
	var sawReduced bool
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeVideo {
			continue
		}
		sm, _ := a.MetricsFor(id)
		for _, s := range sm.EncoderRate.Samples {
			if s.Value > 12 && s.Value < 16 {
				sawReduced = true
			}
		}
	}
	if !sawReduced {
		t.Error("no thumbnail-rate video while screen sharing")
	}
}

// TestNATMergesMeetingsEndToEnd reproduces the Figure 9 limitation on
// real packets: two independent meetings whose campus participants share
// one NAT address are (incorrectly but expectedly) merged by the
// grouping heuristic, while the same meetings from distinct addresses
// stay separate.
func TestNATMergesMeetingsEndToEnd(t *testing.T) {
	run := func(nat bool) int {
		opts := sim.DefaultOptions()
		w := sim.NewWorld(opts)
		a := analyzerFor(opts)
		w.Monitor = a.Packet
		natAddr := netip.MustParseAddr("10.8.200.1")
		mk := func(name string) *sim.Client {
			if nat {
				return w.NewClientWithAddr(name, true, natAddr)
			}
			return w.NewClient(name, true)
		}
		m1 := w.NewMeeting()
		m1.Join(mk("a1"), sim.DefaultMediaSet())
		m1.Join(w.NewClient("a2", false), sim.DefaultMediaSet())
		m2 := w.NewMeeting()
		m2.Join(mk("b1"), sim.DefaultMediaSet())
		m2.Join(w.NewClient("b2", false), sim.DefaultMediaSet())
		w.Run(opts.Start.Add(15 * time.Second))
		a.Finish()
		return len(a.Meetings())
	}
	if got := run(false); got != 2 {
		t.Errorf("distinct addresses: %d meetings, want 2", got)
	}
	if got := run(true); got != 1 {
		t.Errorf("behind NAT: %d meetings, want 1 (the Figure 9 merge)", got)
	}
}

// TestCompactionBoundsMemoryWithoutChangingResults runs two meetings in
// sequence with auto-compaction and checks that (a) the first meeting's
// streams are archived, (b) totals and meeting inference are unchanged
// relative to an uncompacted analyzer.
func TestCompactionBoundsMemoryWithoutChangingResults(t *testing.T) {
	run := func(compact bool) (*Analyzer, int) {
		opts := sim.DefaultOptions()
		w := sim.NewWorld(opts)
		a := analyzerFor(opts)
		if compact {
			a.AutoCompact(5000, 30*time.Second)
		}
		w.Monitor = a.Packet
		m1 := w.NewMeeting()
		c1, c2 := w.NewClient("a", true), w.NewClient("b", true)
		m1.Join(c1, sim.DefaultMediaSet())
		m1.Join(c2, sim.DefaultMediaSet())
		w.Run(opts.Start.Add(20 * time.Second))
		m1.Leave(c1)
		m1.Leave(c2)
		// A quiet minute, then a second meeting.
		w.Eng.Schedule(opts.Start.Add(80*time.Second), func() {
			m2 := w.NewMeeting()
			m2.Join(w.NewClient("c", true), sim.DefaultMediaSet())
			m2.Join(w.NewClient("d", true), sim.DefaultMediaSet())
		})
		w.Run(opts.Start.Add(110 * time.Second))
		a.Finish()
		live := len(a.StreamMetrics)
		return a, live
	}
	plain, liveP := run(false)
	compacted, liveC := run(true)

	if len(compacted.Finished) == 0 {
		t.Fatal("nothing archived")
	}
	if liveC >= liveP {
		t.Errorf("live streams with compaction = %d, without = %d", liveC, liveP)
	}
	// Totals identical.
	sp, sc := plain.Summary(), compacted.Summary()
	if sp.Packets != sc.Packets || sp.ZoomUDP != sc.ZoomUDP || sp.Streams != sc.Streams {
		t.Errorf("summaries diverge: %+v vs %+v", sp, sc)
	}
	if sp.Meetings != sc.Meetings {
		t.Errorf("meetings diverge: %d vs %d", sp.Meetings, sc.Meetings)
	}
	// All streams reachable via AllStreamMetrics.
	count := 0
	compacted.AllStreamMetrics(func(id flow.MediaStreamID, sm *metrics.StreamMetrics) { count++ })
	if count != sp.Streams {
		t.Errorf("AllStreamMetrics visited %d, want %d", count, sp.Streams)
	}
}

// TestRetxHeuristicEndToEnd: on a lossy WAN, frames whose packets were
// retransmitted show the §5.5 delay signature (> RTT + ~100 ms), and
// the heuristic's suspects correlate with actual duplicate counts.
func TestRetxHeuristicEndToEnd(t *testing.T) {
	opts := sim.DefaultOptions()
	opts.WanLoss = 0.04
	w := sim.NewWorld(opts)
	a := analyzerFor(opts)
	w.Monitor = a.Packet
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	w.Run(opts.Start.Add(40 * time.Second))
	a.Finish()

	// Path RTT from the copy matcher.
	var rttSum time.Duration
	for _, s := range a.Copies.Samples {
		rttSum += s.RTT
	}
	if len(a.Copies.Samples) == 0 {
		t.Fatal("no RTT samples")
	}
	rtt := rttSum / time.Duration(len(a.Copies.Samples))

	var strong, analyzed int
	for _, id := range a.StreamIDs() {
		if id.Key.Type != zoom.TypeVideo {
			continue
		}
		sm, _ := a.MetricsFor(id)
		est := sm.EstimateRetransmissions(rtt)
		analyzed += est.FramesAnalyzed
		strong += est.StrongRetxFrames
	}
	if analyzed == 0 {
		t.Fatal("no multi-packet frames analyzed")
	}
	if strong == 0 {
		t.Error("no strong retransmission signatures despite 4% WAN loss")
	}
	// Sanity: the rate is a minority (loss is 4%, frames ~2 pkts).
	if frac := float64(strong) / float64(analyzed); frac > 0.5 {
		t.Errorf("strong fraction = %v, implausibly high", frac)
	}
}
