package core

// Incremental (delta) checkpoints. A full checkpoint rewrites the whole
// engine — linear in total stream count, which at the paper's 12-hour
// scale means paying for hundreds of thousands of idle streams on every
// cadence tick. A delta record instead carries only what changed since
// the previous checkpoint encode: per-layer dirty bits select the
// records to re-serialize, tombstones carry the deletions, and the
// bounded cross-flow layers (capture filter, copy matcher) ride along
// whole. Steady-state checkpoint cost therefore scales with churn.
//
// Chain discipline: a delta extends the engine state as of the last
// checkpoint encode (full or delta) and records that state's packet
// count as its base. ApplyDelta refuses a record whose base does not
// match the engine's current packet count, so deltas can only be
// replayed in order on top of the snapshot they were cut from. A failed
// apply may leave the engine partially mutated — callers must Discard
// it and restart the chain from an earlier generation.

import (
	"fmt"
	"io"
	"net/netip"
	"slices"

	"zoomlens/internal/features"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/metrics"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/zoom"
)

// ErrDeltaUnavailable reports that the engine cannot produce a delta
// record right now — no full checkpoint has armed the chain yet, the
// eviction backlog outgrew the tombstone cap, or the engine is past
// Finish. The caller falls back to a full checkpoint.
var ErrDeltaUnavailable = fmt.Errorf("core: delta checkpoint unavailable (write a full checkpoint)")

const (
	// V2 deltas carry the StreamKey protocol byte, the per-protocol
	// decode counters, and the STUN port-mismatch counter; V3 appends
	// the feature windower, which (like the capture filter) is bounded
	// cross-flow state and rides along whole. Older records are
	// rejected by version.
	analyzerDeltaV1 = 1
	analyzerDeltaV2 = 2
	analyzerDeltaV3 = 3
	parallelDeltaV1 = 1
	parallelDeltaV2 = 2
	parallelDeltaV3 = 3

	// maxCoreTombstones bounds the eviction backlog a delta carries;
	// past it the next delta encode reports unavailable and the caller
	// writes a full checkpoint (which resets the backlog).
	maxCoreTombstones = 1 << 20
)

// Discard releases an engine whose delta apply (or restore) failed:
// a parallel engine that has not finished still owns shard goroutines,
// which must be torn down before the engine is dropped. Safe to call on
// any engine, including nil results from a failed restore.
func Discard(eng Engine) {
	pa, ok := eng.(*ParallelAnalyzer)
	if !ok || pa == nil || pa.seq != nil || pa.merged != nil {
		return
	}
	pa.abandon()
}

func (a *Analyzer) tombstoneStreamMetric(id flow.MediaStreamID) {
	if !a.deltaArmed || a.deltaOverflow {
		return
	}
	if len(a.deadStreams) >= maxCoreTombstones {
		a.deltaOverflow = true
		return
	}
	a.deadStreams = append(a.deadStreams, id)
}

func (a *Analyzer) tombstoneTCP(client netip.AddrPort) {
	if !a.deltaArmed {
		return
	}
	delete(a.dirtyTCP, client)
	if a.deltaOverflow {
		return
	}
	if len(a.deadTCP) >= maxCoreTombstones {
		a.deltaOverflow = true
		return
	}
	a.deadTCP = append(a.deadTCP, client)
}

// markCheckpointed resets delta tracking after any checkpoint encode,
// restore, or delta apply: the current state is now fully captured, so
// dirty bits and tombstones clear, the baseline counters re-anchor, and
// the chain arms.
func (a *Analyzer) markCheckpointed() {
	a.Flows.MarkCheckpointed()
	a.Dedup.MarkCheckpointed()
	for _, sm := range a.StreamMetrics {
		sm.ClearDirty()
	}
	a.Copies.MarkCheckpointed()
	if a.dirtyTCP == nil {
		a.dirtyTCP = make(map[netip.AddrPort]struct{})
	}
	clear(a.dirtyTCP)
	a.deadStreams = a.deadStreams[:0]
	a.deadTCP = a.deadTCP[:0]
	a.deltaOverflow = false
	a.ckPackets = a.Packets
	a.ckFinishedLen = len(a.Finished)
	a.ckHeadDrops = 0
	a.deltaArmed = true
}

// disarmDelta turns delta tracking off (rotation starts a state lineage
// the old chain no longer describes).
func (a *Analyzer) disarmDelta() {
	a.deltaArmed = false
	a.deltaOverflow = false
	a.deadStreams = nil
	a.deadTCP = nil
	clear(a.dirtyTCP)
	a.Flows.Disarm()
	a.Dedup.Disarm()
	a.Copies.Disarm()
}

// deltaReady reports whether a delta encode is currently possible.
// Finish mutates every live metric engine without dirty tracking, so a
// finished analyzer reports unavailable (the driver's shutdown
// checkpoint is a full one anyway).
func (a *Analyzer) deltaReady() bool {
	return a.deltaArmed && !a.finished && !a.deltaOverflow &&
		!a.Flows.DeltaOverflow() && !a.Copies.DeltaOverflow()
}

// stateDelta encodes the analyzer's mutations since the last checkpoint
// encode (the payload behind the engineKindSequentialDelta header).
// Top-level scalars are cheap and always carried whole, in the exact
// order of State; the capture filter is small bounded cross-flow state
// and rides along whole, while the copy matcher (up to MaxPending live
// observations plus an ever-growing sample series) contributes its own
// delta.
func (a *Analyzer) stateDelta(w *statecodec.Writer) {
	w.U8(analyzerDeltaV3)
	w.U64(a.ckPackets)

	w.U64(a.ShedPackets)
	w.U64(a.ShedBytes)
	w.U64(a.Packets)
	w.U64(a.Bytes)
	w.U64(a.ZoomUDP)
	w.U64(a.Undecodable)
	w.U64(a.TCPPackets)
	w.U64(a.STUNPackets)
	w.U64(a.STUNPortNonSTUN)
	w.Int(len(a.ProtoDecoded))
	for _, v := range a.ProtoDecoded {
		w.U64(v)
	}
	w.U64(a.DroppedByFilter)
	w.U64(a.UDPKeptPackets)
	w.U64(a.UDPKeptBytes)
	w.U64(a.PanicsRecovered)
	w.Bool(a.Truncated)
	w.U64(a.EvictedTCP)
	w.U64(a.RejectedTCPPackets)
	w.U64(a.FinishedDropped)
	w.Bool(a.finished)
	w.Time(a.firstTS)
	w.Time(a.lastTS)
	w.U64(a.compactEvery)
	w.Duration(a.compactIdle)

	a.filter.State(w)
	a.Flows.StateDelta(w)
	a.Dedup.StateDelta(w)
	a.Copies.StateDelta(w)

	slices.SortFunc(a.deadStreams, flow.CompareStreamID)
	w.Int(len(a.deadStreams))
	for _, id := range a.deadStreams {
		id.Flow.EncodeTo(w)
		id.Key.EncodeTo(w)
	}

	dirty := make([]flow.MediaStreamID, 0, 64)
	for id, sm := range a.StreamMetrics {
		if sm.Dirty() {
			dirty = append(dirty, id)
		}
	}
	slices.SortFunc(dirty, flow.CompareStreamID)
	w.Int(len(dirty))
	for _, id := range dirty {
		id.Flow.EncodeTo(w)
		id.Key.EncodeTo(w)
		a.StreamMetrics[id].State(w)
	}

	sortAddrPorts(a.deadTCP)
	w.Int(len(a.deadTCP))
	for _, c := range a.deadTCP {
		w.AddrPort(c)
	}

	dirtyTCP := make([]netip.AddrPort, 0, len(a.dirtyTCP))
	for c := range a.dirtyTCP {
		dirtyTCP = append(dirtyTCP, c)
	}
	sortAddrPorts(dirtyTCP)
	w.Int(len(dirtyTCP))
	for _, c := range dirtyTCP {
		w.AddrPort(c)
		a.TCP[c].State(w)
		w.Time(a.tcpSeen[c])
	}

	// Archive delta: the Finished list only ever drops from the head
	// (MaxFinished) and appends at the tail, so the record carries the
	// baseline length, how many baseline entries were head-dropped, and
	// the appended tail in full.
	w.Int(a.ckFinishedLen)
	w.Int(a.ckHeadDrops)
	tail := a.Finished[a.ckFinishedLen-a.ckHeadDrops:]
	w.Int(len(tail))
	for i := range tail {
		f := &tail[i]
		f.ID.Flow.EncodeTo(w)
		f.ID.Key.EncodeTo(w)
		w.Time(f.LastSeen)
		f.Metrics.State(w)
	}

	// The feature windower has no dirty tracking (its live state is a
	// handful of open accumulators, bounded by idle eviction), so it
	// rides along whole like the capture filter.
	w.Bool(a.feats != nil)
	if a.feats != nil {
		a.feats.State(w)
	}
}

// applyDeltaPayload replays one analyzer delta payload onto the
// receiver. On error the analyzer may be partially mutated and must be
// discarded by the caller.
func (a *Analyzer) applyDeltaPayload(r *statecodec.Reader) error {
	r.Version("core.Analyzer delta", analyzerDeltaV3)
	base := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if base != a.Packets {
		r.Failf("core.Analyzer delta base %d packets does not match engine at %d packets", base, a.Packets)
		return r.Err()
	}

	a.ShedPackets = r.U64()
	a.ShedBytes = r.U64()
	a.Packets = r.U64()
	a.Bytes = r.U64()
	a.ZoomUDP = r.U64()
	a.Undecodable = r.U64()
	a.TCPPackets = r.U64()
	a.STUNPackets = r.U64()
	a.STUNPortNonSTUN = r.U64()
	if np := r.Count(8); np != len(a.ProtoDecoded) {
		r.Failf("core.Analyzer delta proto counter count %d (want %d)", np, len(a.ProtoDecoded))
		return r.Err()
	}
	for i := range a.ProtoDecoded {
		a.ProtoDecoded[i] = r.U64()
	}
	a.DroppedByFilter = r.U64()
	a.UDPKeptPackets = r.U64()
	a.UDPKeptBytes = r.U64()
	a.PanicsRecovered = r.U64()
	a.Truncated = r.Bool()
	a.EvictedTCP = r.U64()
	a.RejectedTCPPackets = r.U64()
	a.FinishedDropped = r.U64()
	a.finished = r.Bool()
	a.firstTS = r.Time()
	a.lastTS = r.Time()
	a.compactEvery = r.U64()
	a.compactIdle = r.Duration()

	if err := a.filter.Restore(r); err != nil {
		return err
	}
	if err := a.Flows.ApplyDelta(r); err != nil {
		return err
	}
	if err := a.Dedup.ApplyDelta(r); err != nil {
		return err
	}
	if err := a.Copies.ApplyDelta(r); err != nil {
		return err
	}

	nd := r.Count(8)
	for i := 0; i < nd; i++ {
		id := flow.MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		if err := r.Err(); err != nil {
			return err
		}
		delete(a.StreamMetrics, id)
	}

	nm := r.Count(12)
	for i := 0; i < nm; i++ {
		id := flow.MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		sm := new(metrics.StreamMetrics)
		if err := metrics.RestoreStreamMetricsInto(r, sm); err != nil {
			return err
		}
		a.StreamMetrics[id] = sm
	}

	ndt := r.Count(4)
	for i := 0; i < ndt; i++ {
		c := r.AddrPort()
		if err := r.Err(); err != nil {
			return err
		}
		delete(a.TCP, c)
		delete(a.tcpSeen, c)
	}

	nt := r.Count(4)
	for i := 0; i < nt; i++ {
		c := r.AddrPort()
		tr := tcprtt.NewTracker()
		if err := tr.Restore(r); err != nil {
			return err
		}
		a.TCP[c] = tr
		a.tcpSeen[c] = r.Time()
		if err := r.Err(); err != nil {
			return err
		}
	}

	baseLen := r.Int()
	headDrops := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if baseLen != len(a.Finished) {
		r.Failf("core.Analyzer delta archive baseline %d does not match engine archive %d", baseLen, len(a.Finished))
		return r.Err()
	}
	if headDrops < 0 || headDrops > baseLen {
		r.Failf("core.Analyzer delta archive head drops %d out of range (baseline %d)", headDrops, baseLen)
		return r.Err()
	}
	if headDrops > 0 {
		a.Finished = append(a.Finished[:0], a.Finished[headDrops:]...)
	}
	ntail := r.Count(14)
	for i := 0; i < ntail; i++ {
		id := flow.MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		last := r.Time()
		sm := new(metrics.StreamMetrics)
		if err := metrics.RestoreStreamMetricsInto(r, sm); err != nil {
			return err
		}
		a.Finished = append(a.Finished, FinishedStream{ID: id, LastSeen: last, Metrics: sm})
	}

	// Feature windower rides whole: the record's feature layer replaces
	// the engine's, presence included.
	a.feats = nil
	if r.Bool() {
		a.feats = features.RestoreWindower(r)
		if a.feats == nil {
			return r.Err()
		}
	}
	return r.Err()
}

// CheckpointDelta writes a delta record covering everything since the
// last checkpoint encode, or ErrDeltaUnavailable when no chain is armed
// (no full checkpoint yet, tombstone overflow, or a rotation broke the
// lineage) — the caller then writes a full checkpoint instead. A
// successful encode re-anchors the chain at the current state.
func (a *Analyzer) CheckpointDelta(w io.Writer) error {
	defer a.cfg.trace("checkpoint_delta")()
	if !a.deltaReady() {
		return ErrDeltaUnavailable
	}
	var enc statecodec.Writer
	enc.Grow(1 << 16)
	writeCheckpointHeader(&enc, engineKindSequentialDelta)
	a.stateDelta(&enc)
	if err := sealCheckpoint(w, &enc); err != nil {
		return err
	}
	a.markCheckpointed()
	return nil
}

// ApplyDelta replays one delta record (a full ZLCP file of the delta
// kind) onto the engine, which must sit exactly at the record's base —
// the state of the checkpoint the delta was cut from. On error the
// engine may be partially mutated: Discard it and restore from an
// earlier generation.
func (a *Analyzer) ApplyDelta(rd io.Reader) error {
	data, err := readAllCheckpoint(rd)
	if err != nil {
		return fmt.Errorf("core: reading delta: %w", err)
	}
	kind, r, err := openCheckpoint(data)
	if err != nil {
		return err
	}
	if kind != engineKindSequentialDelta {
		return fmt.Errorf("%w: engine kind %d is not a sequential delta", statecodec.ErrCorrupt, kind)
	}
	if err := a.applyDeltaPayload(r); err != nil {
		return err
	}
	if err := requireDrained(r); err != nil {
		return err
	}
	a.markCheckpointed()
	return nil
}

// markCheckpointed re-anchors the parallel chain after any checkpoint
// encode, restore, or delta apply (shards included).
func (pa *ParallelAnalyzer) markCheckpointed() {
	pa.rec.dedup.MarkCheckpointed()
	pa.rec.copies.MarkCheckpointed()
	for _, sh := range pa.shards {
		sh.a.markCheckpointed()
	}
	pa.ckPackets = pa.packets
	pa.deltaArmed = true
}

// CheckpointDelta quiesces the shards, advances reconciliation, and
// writes a parallel delta record: dispatcher scalars, the capture
// filter whole, the reconciliation Dedup and CopyMatcher as deltas, and
// one analyzer delta per shard. After Finish (or before any full
// checkpoint) it reports ErrDeltaUnavailable.
func (pa *ParallelAnalyzer) CheckpointDelta(w io.Writer) error {
	if pa.seq != nil {
		return pa.seq.CheckpointDelta(w)
	}
	if pa.merged != nil {
		return ErrDeltaUnavailable
	}
	if !pa.deltaArmed {
		return ErrDeltaUnavailable
	}
	defer pa.cfg.trace("checkpoint_delta")()
	pa.quiesce()
	pa.advanceRecon()
	if pa.rec.copies.DeltaOverflow() {
		return ErrDeltaUnavailable
	}
	for _, sh := range pa.shards {
		if !sh.a.deltaReady() {
			return ErrDeltaUnavailable
		}
	}
	var enc statecodec.Writer
	enc.Grow(1 << 16)
	writeCheckpointHeader(&enc, engineKindParallelDelta)
	enc.Int(pa.workers)
	enc.U8(parallelDeltaV3)
	enc.U64(pa.ckPackets)
	enc.U64(pa.shedPackets)
	enc.U64(pa.shedBytes)
	enc.U64(pa.nextSeq)
	enc.U64(pa.packets)
	enc.U64(pa.bytes)
	enc.U64(pa.undecodable)
	enc.U64(pa.dropped)
	enc.U64(pa.panics)
	enc.Bool(pa.truncated)
	enc.Time(pa.firstTS)
	enc.Time(pa.lastTS)
	pa.filter.State(&enc)
	pa.rec.dedup.StateDelta(&enc)
	pa.rec.copies.StateDelta(&enc)
	enc.Bool(pa.rec.win != nil)
	if pa.rec.win != nil {
		pa.rec.win.State(&enc)
	}
	for _, sh := range pa.shards {
		enc.U64(sh.ingested)
		sh.a.stateDelta(&enc)
	}
	if err := sealCheckpoint(w, &enc); err != nil {
		return err
	}
	pa.markCheckpointed()
	return nil
}

// ApplyDelta replays one parallel delta record. The engine must be
// quiescent at the record's base (the normal case: a freshly restored
// checkpoint being rolled forward through its chain). On error the
// engine may be partially mutated — Discard it.
func (pa *ParallelAnalyzer) ApplyDelta(rd io.Reader) error {
	if pa.seq != nil {
		return pa.seq.ApplyDelta(rd)
	}
	if pa.merged != nil {
		return fmt.Errorf("core: ParallelAnalyzer.ApplyDelta after Finish")
	}
	data, err := readAllCheckpoint(rd)
	if err != nil {
		return fmt.Errorf("core: reading delta: %w", err)
	}
	kind, r, err := openCheckpoint(data)
	if err != nil {
		return err
	}
	if kind != engineKindParallelDelta {
		return fmt.Errorf("%w: engine kind %d is not a parallel delta", statecodec.ErrCorrupt, kind)
	}
	pa.quiesce()
	workers := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if workers != pa.workers {
		return fmt.Errorf("%w: delta for %d workers applied to %d-worker engine", statecodec.ErrCorrupt, workers, pa.workers)
	}
	r.Version("core.ParallelAnalyzer delta", parallelDeltaV3)
	base := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if base != pa.packets {
		return fmt.Errorf("%w: delta base %d packets does not match engine at %d packets", statecodec.ErrCorrupt, base, pa.packets)
	}
	pa.shedPackets = r.U64()
	pa.shedBytes = r.U64()
	pa.nextSeq = r.U64()
	pa.packets = r.U64()
	pa.bytes = r.U64()
	pa.undecodable = r.U64()
	pa.dropped = r.U64()
	pa.panics = r.U64()
	pa.truncated = r.Bool()
	pa.firstTS = r.Time()
	pa.lastTS = r.Time()
	if err := pa.filter.Restore(r); err != nil {
		return err
	}
	if err := pa.rec.dedup.ApplyDelta(r); err != nil {
		return err
	}
	if err := pa.rec.copies.ApplyDelta(r); err != nil {
		return err
	}
	pa.rec.win = nil
	if r.Bool() {
		pa.rec.win = features.RestoreWindower(r)
		if pa.rec.win == nil {
			return r.Err()
		}
	}
	for _, sh := range pa.shards {
		sh.ingested = r.U64()
		if err := sh.a.applyDeltaPayload(r); err != nil {
			return err
		}
	}
	if err := requireDrained(r); err != nil {
		return err
	}
	pa.markCheckpointed()
	return nil
}
