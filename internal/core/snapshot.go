package core

import (
	"encoding/json"
	"io"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
)

// Periodic QoE snapshots: a live, per-meeting view of the §5 metrics
// over a trailing window, for continuous deployments that cannot wait
// for the end-of-capture report. Snapshots are strictly read-only over
// analyzer state — a run with snapshots enabled produces final reports
// byte-identical to a run without (the differential test pins this).
//
// Time is trace time (packet capture timestamps), not wall clock: the
// SnapshotWriter fires off the packet stream's own clock, which makes
// offline replays emit the same snapshots a live tap would have.

// MeetingSnapshot is one meeting's rolling QoE state, emitted as one
// JSON line per meeting per interval.
type MeetingSnapshot struct {
	// Time is the snapshot instant (trace time).
	Time time.Time `json:"time"`
	// Meeting is the §4.3 grouper's meeting ID (stable within a run
	// unless meetings merge).
	Meeting      int `json:"meeting"`
	Participants int `json:"participants"`
	// Streams counts the meeting's observed stream records (per flow and
	// SSRC, before unification).
	Streams int `json:"streams"`
	// Packets, Lost, and Retransmits are cumulative over the meeting's
	// streams since capture start.
	Packets     uint64 `json:"packets"`
	Lost        uint64 `json:"lost"`
	Retransmits uint64 `json:"retx"`
	// MediaBPS is the summed media bit rate over the trailing window.
	MediaBPS float64 `json:"media_bps"`
	// FPS is the mean delivered video frame rate over the window (0 when
	// no video frame completed in it).
	FPS float64 `json:"fps"`
	// JitterMS is the mean frame-level jitter over the window.
	JitterMS float64 `json:"jitter_ms"`
	// RTTMS is the mean §5.3 method-1 RTT over the window; RTTSamples
	// counts the samples behind it.
	RTTMS      float64 `json:"rtt_ms"`
	RTTSamples int     `json:"rtt_samples"`
}

// snapshotSource abstracts where the cross-flow state lives: the
// sequential analyzer reads its own Dedup/CopyMatcher, the parallel
// analyzer reads the live replica it advances at each quiesce.
type snapshotSource struct {
	dedup  *meeting.Dedup
	copies *metrics.CopyMatcher
	cfg    Config
	// lookup resolves one stream record to its metric engine (live or
	// archived), nil when unknown.
	lookup func(flow.MediaStreamID) *metrics.StreamMetrics
}

// Snapshot returns the per-meeting rolling metrics at trace time now
// over the trailing window. Read-only; call at any point between
// packets. Meetings are ordered by start time (the Meetings() order).
func (a *Analyzer) Snapshot(now time.Time, window time.Duration) []MeetingSnapshot {
	defer a.cfg.trace("snapshot")()
	a.o.snapshot()
	a.updateObsGauges()
	src := snapshotSource{
		dedup:  a.Dedup,
		copies: a.Copies,
		cfg:    a.cfg,
		lookup: a.lookupStreamMetrics,
	}
	return src.take(now, window)
}

// lookupStreamMetrics finds a stream's engine among live then archived
// streams.
func (a *Analyzer) lookupStreamMetrics(id flow.MediaStreamID) *metrics.StreamMetrics {
	if sm := a.StreamMetrics[id]; sm != nil {
		return sm
	}
	for i := range a.Finished {
		if a.Finished[i].ID == id {
			return a.Finished[i].Metrics
		}
	}
	return nil
}

// take computes the snapshot. Aggregation iterates the dedup records in
// their deterministic order, so identical analyzer state yields
// byte-identical snapshots (the sequential/parallel differential test
// relies on this).
func (s snapshotSource) take(now time.Time, window time.Duration) []MeetingSnapshot {
	if window <= 0 {
		window = time.Second
	}
	cut := now.Add(-window)
	recs := s.dedup.RecordsBy(s.cfg.clientOf())
	meetings := meeting.Group(recs)
	if len(meetings) == 0 {
		return nil
	}

	byUnified := make(map[meeting.UnifiedID]int, len(recs))
	out := make([]MeetingSnapshot, len(meetings))
	type agg struct {
		fpsSum, fpsN float64
		jitSum, jitN float64
		rttSum, rttN float64
		mediaBits    float64
	}
	aggs := make([]agg, len(meetings))
	for i, m := range meetings {
		out[i] = MeetingSnapshot{
			Time:         now,
			Meeting:      m.ID,
			Participants: m.Participants(),
		}
		for _, u := range m.Streams {
			byUnified[u] = i
		}
	}

	windowed := func(ser *metrics.Series) []metrics.Sample {
		// Samples are appended in time order; take the tail inside
		// (cut, now].
		ss := ser.Samples
		lo := len(ss)
		for lo > 0 && ss[lo-1].Time.After(cut) {
			lo--
		}
		hi := len(ss)
		for hi > lo && ss[hi-1].Time.After(now) {
			hi--
		}
		return ss[lo:hi]
	}

	for _, r := range recs {
		mi, ok := byUnified[r.Unified]
		if !ok {
			continue
		}
		out[mi].Streams++
		sm := s.lookup(flow.MediaStreamID{Flow: r.Flow, Key: r.Key})
		if sm == nil {
			continue
		}
		out[mi].Packets += sm.Packets
		ls := sm.LossStats()
		out[mi].Lost += ls.EstimatedLost
		out[mi].Retransmits += ls.Duplicates
		a := &aggs[mi]
		for _, smp := range windowed(&sm.MediaRate) {
			a.mediaBits += smp.Value
		}
		for _, smp := range windowed(&sm.FrameRate) {
			a.fpsSum += smp.Value
			a.fpsN++
		}
		for _, smp := range windowed(&sm.JitterMS) {
			a.jitSum += smp.Value
			a.jitN++
		}
	}

	// RTT samples carry their unified stream; fold each into its meeting.
	ss := s.copies.Samples
	lo := len(ss)
	for lo > 0 && ss[lo-1].Time.After(cut) {
		lo--
	}
	for _, rs := range ss[lo:] {
		if rs.Time.After(now) {
			continue
		}
		if mi, ok := byUnified[rs.Unified]; ok {
			aggs[mi].rttSum += float64(rs.RTT) / float64(time.Millisecond)
			aggs[mi].rttN++
		}
	}

	for i := range out {
		a := &aggs[i]
		// MediaRate emits one bin per stream per elapsed second; averaging
		// bins per stream then summing equals dividing the bit total by
		// the per-stream bin count only when streams align — instead
		// report bits per window second: total bits / window seconds.
		out[i].MediaBPS = a.mediaBits / window.Seconds()
		if a.fpsN > 0 {
			out[i].FPS = a.fpsSum / a.fpsN
		}
		if a.jitN > 0 {
			out[i].JitterMS = a.jitSum / a.jitN
		}
		if a.rttN > 0 {
			out[i].RTTMS = a.rttSum / a.rttN
			out[i].RTTSamples = int(a.rttN)
		}
	}
	return out
}

// SnapshotWriter emits JSON-line snapshots on a trace-time cadence: call
// Tick with every packet's capture timestamp and it snapshots whenever
// the interval elapses. The interval doubles as the trailing window.
type SnapshotWriter struct {
	// Interval is the cadence and trailing window; zero disables Tick.
	Interval time.Duration
	// W receives one JSON line per meeting per firing.
	W io.Writer
	// Snap produces the snapshot (Analyzer.Snapshot or
	// ParallelAnalyzer.Snapshot).
	Snap func(now time.Time, window time.Duration) []MeetingSnapshot

	next time.Time
	err  error
}

// Tick advances trace time. The first tick only arms the timer; after
// that, at most one snapshot fires per tick (bursts do not backfill).
func (w *SnapshotWriter) Tick(at time.Time) {
	if w == nil || w.Interval <= 0 {
		return
	}
	if w.next.IsZero() {
		w.next = at.Add(w.Interval)
		return
	}
	if at.Before(w.next) {
		return
	}
	w.next = at.Add(w.Interval)
	w.emit(at)
}

// Flush takes one final snapshot at the given time (end of capture).
func (w *SnapshotWriter) Flush(at time.Time) {
	if w == nil || w.Interval <= 0 {
		return
	}
	w.emit(at)
}

func (w *SnapshotWriter) emit(at time.Time) {
	enc := json.NewEncoder(w.W)
	for _, ms := range w.Snap(at, w.Interval) {
		if err := enc.Encode(ms); err != nil && w.err == nil {
			w.err = err
		}
	}
}

// Err reports the first write error, if any.
func (w *SnapshotWriter) Err() error {
	if w == nil {
		return nil
	}
	return w.err
}
