package core

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// checkpointBytes encodes a full checkpoint and fails the test on error.
func checkpointBytes(t *testing.T, eng Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	return buf.Bytes()
}

// TestDeltaCheckpointDifferential is the incremental-checkpoint
// equivalence gate: full checkpoint at cut1, delta records at cut2 and
// cut3, then a restore-and-replay (full + deltas) must land on state
// whose own full-checkpoint encoding is byte-identical to the live
// engine's — and finishing both must produce identical results — at one
// worker and sharded.
func TestDeltaCheckpointDifferential(t *testing.T) {
	tr, opts := seededTrace(t, 20)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	n := len(tr.frames)
	if n < 100 {
		t.Fatalf("trace too short: %d packets", n)
	}
	cut1, cut2, cut3 := n/4, n/2, 3*n/4

	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "sequential", 4: "parallel"}[workers], func(t *testing.T) {
			live := newTestEngine(cfg, workers)

			// Before any full checkpoint the chain is unarmed.
			if err := live.CheckpointDelta(io_Discard{}); !errors.Is(err, ErrDeltaUnavailable) {
				t.Fatalf("unarmed CheckpointDelta err = %v, want ErrDeltaUnavailable", err)
			}

			feed := func(eng Engine, from, to int) {
				for i := from; i < to; i++ {
					eng.Packet(tr.at[i], tr.frames[i])
				}
			}

			feed(live, 0, cut1)
			var full bytes.Buffer
			if err := live.Checkpoint(&full); err != nil {
				t.Fatal(err)
			}
			feed(live, cut1, cut2)
			var delta1 bytes.Buffer
			if err := live.CheckpointDelta(&delta1); err != nil {
				t.Fatalf("delta1: %v", err)
			}
			feed(live, cut2, cut3)
			var delta2 bytes.Buffer
			if err := live.CheckpointDelta(&delta2); err != nil {
				t.Fatalf("delta2: %v", err)
			}

			// Restore the full snapshot and roll it forward through the
			// chain.
			resumed, err := RestoreAnalyzer(bytes.NewReader(full.Bytes()), cfg)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if err := resumed.ApplyDelta(bytes.NewReader(delta1.Bytes())); err != nil {
				t.Fatalf("apply delta1: %v", err)
			}
			if err := resumed.ApplyDelta(bytes.NewReader(delta2.Bytes())); err != nil {
				t.Fatalf("apply delta2: %v", err)
			}

			// The rolled-forward state must encode byte-identically to the
			// live engine's (the checkpoint encoding is deterministic and
			// complete, so byte equality is state equality).
			liveCk := checkpointBytes(t, live)
			resumedCk := checkpointBytes(t, resumed)
			if !bytes.Equal(liveCk, resumedCk) {
				t.Fatalf("delta-replayed state encodes differently from live state (lens %d vs %d)",
					len(resumedCk), len(liveCk))
			}

			// And both runs must finish identically on the remaining trace.
			feed(live, cut3, n)
			feed(resumed, cut3, n)
			live.Finish()
			resumed.Finish()
			if !reflect.DeepEqual(live.Result().Summary(), resumed.Result().Summary()) {
				t.Errorf("summaries diverge:\nlive    %+v\nresumed %+v",
					live.Result().Summary(), resumed.Result().Summary())
			}
			if !reflect.DeepEqual(live.StreamIDs(), resumed.StreamIDs()) {
				t.Error("stream identifier sets diverge")
			}
		})
	}
}

// TestDeltaCheckpointWithEviction drives the tombstone path: state
// evicted and archived between the full checkpoint and the delta must
// be deleted/archived identically on the delta-replayed side.
func TestDeltaCheckpointWithEviction(t *testing.T) {
	tr, opts := seededTrace(t, 20)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
		MaxFinished:    4,
	}
	n := len(tr.frames)
	cut := n / 2

	live := NewAnalyzer(cfg)
	for i := 0; i < cut; i++ {
		live.Packet(tr.at[i], tr.frames[i])
	}
	var full bytes.Buffer
	if err := live.Checkpoint(&full); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < n; i++ {
		live.Packet(tr.at[i], tr.frames[i])
	}
	// Evict everything idle at the end of the trace: archives stream
	// metrics (tombstoning them), drops TCP trackers, folds flows into
	// aggregates — all of which the delta must carry. MaxFinished forces
	// head drops against the checkpoint baseline too.
	live.EvictIdle(tr.at[n-1].Add(time.Hour))
	var delta bytes.Buffer
	if err := live.CheckpointDelta(&delta); err != nil {
		t.Fatalf("delta after eviction: %v", err)
	}

	resumed, err := RestoreAnalyzer(bytes.NewReader(full.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.ApplyDelta(bytes.NewReader(delta.Bytes())); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got, want := checkpointBytes(t, resumed), checkpointBytes(t, live); !bytes.Equal(got, want) {
		t.Fatalf("post-eviction delta replay encodes differently (lens %d vs %d)", len(got), len(want))
	}
}

// TestDeltaChainInvariants pins the chain discipline: base mismatches
// are refused, rotation disarms the chain, parallel engines refuse
// deltas after Finish, and a delta record cannot bootstrap an engine.
func TestDeltaChainInvariants(t *testing.T) {
	tr, opts := seededTrace(t, 10)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	n := len(tr.frames)

	t.Run("base_mismatch", func(t *testing.T) {
		eng := NewAnalyzer(cfg)
		for i := 0; i < n/2; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		var full bytes.Buffer
		if err := eng.Checkpoint(&full); err != nil {
			t.Fatal(err)
		}
		for i := n / 2; i < n; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		var delta bytes.Buffer
		if err := eng.CheckpointDelta(&delta); err != nil {
			t.Fatal(err)
		}
		// A fresh engine sits at packet 0, not at the delta's base.
		fresh := NewAnalyzer(cfg)
		if err := fresh.ApplyDelta(bytes.NewReader(delta.Bytes())); err == nil {
			t.Fatal("delta applied to an engine not at its base")
		}
		// Applying the same delta twice must fail too: the first apply
		// moved the packet count past the base.
		resumed, err := RestoreAnalyzer(bytes.NewReader(full.Bytes()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.ApplyDelta(bytes.NewReader(delta.Bytes())); err != nil {
			t.Fatal(err)
		}
		if err := resumed.ApplyDelta(bytes.NewReader(delta.Bytes())); err == nil {
			t.Fatal("same delta applied twice")
		}
	})

	t.Run("rotate_disarms", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			eng := newTestEngine(cfg, workers)
			for i := 0; i < n/2; i++ {
				eng.Packet(tr.at[i], tr.frames[i])
			}
			if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			eng.Rotate(tr.at[n/2])
			if err := eng.CheckpointDelta(io_Discard{}); !errors.Is(err, ErrDeltaUnavailable) {
				t.Fatalf("workers=%d: post-rotate CheckpointDelta err = %v, want ErrDeltaUnavailable", workers, err)
			}
			// A fresh full checkpoint re-arms the chain.
			if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			if err := eng.CheckpointDelta(&bytes.Buffer{}); err != nil {
				t.Fatalf("workers=%d: re-armed CheckpointDelta: %v", workers, err)
			}
			eng.Finish()
		}
	})

	t.Run("finish_disarms", func(t *testing.T) {
		for _, workers := range []int{1, 4} {
			eng := newTestEngine(cfg, workers)
			eng.Packet(tr.at[0], tr.frames[0])
			if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
				t.Fatal(err)
			}
			eng.Finish()
			if err := eng.CheckpointDelta(io_Discard{}); !errors.Is(err, ErrDeltaUnavailable) {
				t.Fatalf("workers=%d: post-Finish CheckpointDelta err = %v, want ErrDeltaUnavailable", workers, err)
			}
		}
	})

	t.Run("delta_cannot_bootstrap", func(t *testing.T) {
		eng := NewAnalyzer(cfg)
		eng.Packet(tr.at[0], tr.frames[0])
		if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		eng.Packet(tr.at[1], tr.frames[1])
		var delta bytes.Buffer
		if err := eng.CheckpointDelta(&delta); err != nil {
			t.Fatal(err)
		}
		if restored, err := RestoreAnalyzer(bytes.NewReader(delta.Bytes()), cfg); err == nil {
			t.Fatalf("delta record bootstrapped an engine: %T", restored)
		}
	})
}

// TestCheckpointCRCTrailer pins the corruption detection added with the
// V2 file format: any single flipped bit in a checkpoint file must be
// rejected at restore (by the CRC trailer, before decoding begins), and
// a truncated file must error rather than half-restore.
func TestCheckpointCRCTrailer(t *testing.T) {
	tr, opts := seededTrace(t, 10)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	for _, workers := range []int{1, 2} {
		eng := newTestEngine(cfg, workers)
		for i := 0; i < len(tr.frames)/2; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		data := checkpointBytes(t, eng)
		eng.Finish()

		// Pristine restores.
		if _, err := RestoreAnalyzer(bytes.NewReader(data), cfg); err != nil {
			t.Fatalf("workers=%d: pristine restore: %v", workers, err)
		}
		// Sampled bit flips across the whole file (header, payload,
		// trailer) must all be caught.
		step := len(data)/64 + 1
		for off := 0; off < len(data); off += step {
			bad := append([]byte(nil), data...)
			bad[off] ^= 0x10
			if eng, err := RestoreAnalyzer(bytes.NewReader(bad), cfg); err == nil {
				Discard(eng)
				t.Fatalf("workers=%d: flipped bit at %d/%d restored cleanly", workers, off, len(data))
			}
		}
		// Truncations at sampled points must error.
		for _, cut := range []int{1, 5, len(data) / 3, len(data) - 1} {
			if eng, err := RestoreAnalyzer(bytes.NewReader(data[:cut]), cfg); err == nil {
				Discard(eng)
				t.Fatalf("workers=%d: truncation at %d/%d restored cleanly", workers, cut, len(data))
			}
		}
	}
}

// TestShedAccounting exercises the overload-shedding path: a shedding
// engine must never block on saturated shard rings, every dropped batch
// must be accounted in the summary, and with shedding off the engine
// must instead apply backpressure and analyze everything.
func TestShedAccounting(t *testing.T) {
	tr, opts := seededTrace(t, 10)
	base := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}

	t.Run("disabled_never_sheds", func(t *testing.T) {
		eng := NewParallelAnalyzer(base, 4)
		for i := range tr.frames {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		eng.Finish()
		s := eng.Summary()
		if s.ShedPackets != 0 || s.ShedBytes != 0 {
			t.Errorf("shedding disabled but summary reports shed %d packets / %d bytes",
				s.ShedPackets, s.ShedBytes)
		}
		if s.Packets != uint64(len(tr.frames)) {
			t.Errorf("packets = %d, want %d", s.Packets, len(tr.frames))
		}
	})

	t.Run("enabled_accounts_drops", func(t *testing.T) {
		cfg := base
		cfg.Shed = true
		eng := NewParallelAnalyzer(cfg, 4)
		// Tight-loop feeding outruns the small shard rings, so some
		// batches are shed; the call must never block.
		for i := range tr.frames {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		eng.Finish()
		s := eng.Summary()
		// The dispatcher counts every ingested packet; shed packets are a
		// subset that never reached a shard.
		if s.Packets != uint64(len(tr.frames)) {
			t.Errorf("packets = %d, want %d (ingest accounting must include shed)",
				s.Packets, len(tr.frames))
		}
		if s.ShedPackets > s.Packets {
			t.Errorf("shed %d > ingested %d", s.ShedPackets, s.Packets)
		}
		if s.ShedPackets > 0 && s.ShedBytes == 0 {
			t.Errorf("shed %d packets but 0 bytes", s.ShedPackets)
		}
	})
}

// io_Discard is a writer for calls whose output is irrelevant.
type io_Discard struct{}

func (io_Discard) Write(p []byte) (int, error) { return len(p), nil }

// newTestEngine mirrors the root package's newEngineFor helper.
func newTestEngine(cfg Config, workers int) Engine {
	if workers > 1 {
		return NewParallelAnalyzer(cfg, workers)
	}
	return NewAnalyzer(cfg)
}
