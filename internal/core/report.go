package core

import (
	"net/netip"
	"sort"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/meeting"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/zoom"
)

// This file answers the question the grouping heuristic exists for
// (§4.3): "judge whether only a single participant is affected by poor
// meeting performance or if the meeting in general suffers from
// problems" — by rolling stream metrics up to participants and
// meetings.

// ParticipantReport summarizes one client endpoint's streams within a
// meeting.
type ParticipantReport struct {
	// Client is the participant's IP address; with per-media-type UDP
	// flows one participant spans several ports, so ports are not part
	// of the identity (matching Meeting.Participants).
	Client netip.Addr
	// Streams is the number of stream records attributed to the client.
	Streams int
	// VideoFPSMean is the mean delivered video frame rate across the
	// participant's video streams (0 if none).
	VideoFPSMean float64
	// JitterP50MS is the worst per-stream median frame-level jitter
	// among the participant's video streams: a participant with one bad
	// path is affected even if their other streams are clean.
	JitterP50MS float64
	// LossRate is the worst per-stream loss estimate.
	LossRate float64
	// RetransmissionRate is the worst per-stream duplicate rate.
	RetransmissionRate float64
	// Degraded flags a participant whose metrics are materially worse
	// than the meeting median.
	Degraded bool

	videoStreams int // uplink video streams folded into VideoFPSMean
}

// MeetingReport is the per-meeting roll-up.
type MeetingReport struct {
	Meeting meeting.Meeting
	// App names the protocol plugin every stream of the meeting decoded
	// under ("zoom", "webrtc"): meetings never span applications.
	App          string
	Participants []ParticipantReport
	// MeetingWideDegradation is set when most participants are degraded
	// (a shared cause: the meeting "in general suffers"); if only some
	// are, the cause is likely on their individual paths.
	MeetingWideDegradation bool
	// MeanRTT is the mean monitor↔SFU RTT from stream copies belonging
	// to this meeting (0 when no copies were observed).
	MeanRTT time.Duration
}

// MeetingReports computes roll-ups for every inferred meeting.
func (a *Analyzer) MeetingReports() []MeetingReport {
	records := a.Dedup.RecordsBy(a.cfg.clientOf())
	meetings := meeting.Group(records)

	// Index stream records by unified ID for meeting membership, and
	// map each stream record to its metrics.
	type obsStream struct {
		rec meeting.StreamRecord
	}
	byUnified := map[meeting.UnifiedID][]obsStream{}
	for _, r := range records {
		byUnified[r.Unified] = append(byUnified[r.Unified], obsStream{rec: r})
	}

	// RTT samples per unified stream.
	rttByUnified := map[meeting.UnifiedID][]time.Duration{}
	for _, s := range a.Copies.Samples {
		rttByUnified[s.Unified] = append(rttByUnified[s.Unified], s.RTT)
	}

	var out []MeetingReport
	for _, m := range meetings {
		rep := MeetingReport{Meeting: m, App: rtcproto.NameOf(m.Proto)}
		perClient := map[netip.Addr]*ParticipantReport{}
		var rttSum time.Duration
		var rttN int
		for _, uid := range m.Streams {
			for _, rtt := range rttByUnified[uid] {
				rttSum += rtt
				rttN++
			}
			for _, os := range byUnified[uid] {
				cl := os.rec.Client.Addr()
				pr := perClient[cl]
				if pr == nil {
					pr = &ParticipantReport{Client: cl}
					perClient[cl] = pr
				}
				pr.Streams++
				// Quality attributes only from the participant's uplink
				// records: an SFU-forwarded copy inherits the *sender's*
				// impairments, so charging it to the receiver would smear
				// one bad path across the whole meeting.
				if os.rec.Flow.Src == cl {
					a.accumulateStream(os.rec, pr)
				}
			}
		}
		if rttN > 0 {
			rep.MeanRTT = rttSum / time.Duration(rttN)
		}
		for _, pr := range perClient {
			rep.Participants = append(rep.Participants, *pr)
		}
		sort.Slice(rep.Participants, func(i, j int) bool {
			return rep.Participants[i].Client.Compare(rep.Participants[j].Client) < 0
		})
		markDegraded(rep.Participants)
		degraded := 0
		for _, p := range rep.Participants {
			if p.Degraded {
				degraded++
			}
		}
		rep.MeetingWideDegradation = len(rep.Participants) > 1 && degraded*2 > len(rep.Participants)
		out = append(out, rep)
	}
	return out
}

// accumulateStream folds one stream record's metrics into a participant
// report (means weighted by stream count are adequate at this
// granularity).
func (a *Analyzer) accumulateStream(rec meeting.StreamRecord, pr *ParticipantReport) {
	id := streamIDFor(rec)
	sm, ok := a.StreamMetrics[id]
	if !ok {
		return
	}
	loss := sm.LossStats()
	if loss.ExpectedSpan > 0 {
		pr.LossRate = max64(pr.LossRate, float64(loss.EstimatedLost)/float64(loss.ExpectedSpan))
	}
	if loss.Received > 0 {
		pr.RetransmissionRate = max64(pr.RetransmissionRate, float64(loss.Duplicates)/float64(loss.Received))
	}
	if rec.Key.Type == zoom.TypeVideo {
		if n := len(sm.FrameRate.Samples); n > 0 {
			var sum float64
			for _, s := range sm.FrameRate.Samples[n/2:] {
				sum += s.Value
			}
			pr.videoStreams++
			pr.VideoFPSMean = combineMean(pr.VideoFPSMean, sum/float64(n-n/2), pr.videoStreams)
		}
		if n := len(sm.JitterMS.Samples); n > 0 {
			vals := make([]float64, n)
			for i, s := range sm.JitterMS.Samples {
				vals[i] = s.Value
			}
			sort.Float64s(vals)
			pr.JitterP50MS = max64(pr.JitterP50MS, vals[n/2])
		}
	}
}

func combineMean(prev, next float64, prevN int) float64 {
	if prevN <= 1 {
		return next
	}
	return (prev*float64(prevN-1) + next) / float64(prevN)
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func streamIDFor(rec meeting.StreamRecord) flow.MediaStreamID {
	return flow.MediaStreamID{Flow: rec.Flow, Key: rec.Key}
}

// markDegraded flags participants whose jitter or loss is well above
// the meeting median (at least 3× and above absolute floors).
func markDegraded(ps []ParticipantReport) {
	if len(ps) == 0 {
		return
	}
	jit := make([]float64, 0, len(ps))
	loss := make([]float64, 0, len(ps))
	for _, p := range ps {
		jit = append(jit, p.JitterP50MS)
		loss = append(loss, p.LossRate)
	}
	sort.Float64s(jit)
	sort.Float64s(loss)
	medJ, medL := jit[len(jit)/2], loss[len(loss)/2]
	for i := range ps {
		p := &ps[i]
		badJitter := p.JitterP50MS > 20 && p.JitterP50MS > 3*medJ
		badLoss := p.LossRate > 0.02 && p.LossRate > 3*medL
		// When the whole meeting is bad, medians are bad too: absolute
		// floors alone flag everyone.
		wholeBadJ := p.JitterP50MS > 40
		wholeBadL := p.LossRate > 0.05
		p.Degraded = badJitter || badLoss || wholeBadJ || wholeBadL
	}
}
