package core

// Sharded parallel analysis pipeline.
//
// The sequential Analyzer funnels every packet through one flow table
// and one metrics map — the bottleneck Zeek-style deployments solve by
// distributing flows across workers. Per-flow independence makes the
// pipeline shardable: all heavy per-packet work (frame decode, Zoom
// encapsulation parsing, frame assembly, jitter, loss, rate series, TCP
// RTT matching) only ever touches state keyed by the packet's flow, so
// hashing each flow to one of N worker shards preserves exact per-flow
// processing order while spreading the work over N cores.
//
// The dispatcher stays thin: it scans raw header bytes (rawScan) just
// far enough to run the capture filter and compute the shard hash, then
// copies the frame into a per-shard batch and hands the batch over an
// SPSC ring. The shard owns the full decode. Frames the raw scanner
// cannot handle (IPv6, fragments, anything unusual) fall back to a full
// dispatcher-side parse with identical semantics.
//
// Two stages are NOT per-flow and stay centralized:
//
//   - The capture filter (stateful P2P table armed by STUN exchanges on
//     one flow and consulted by media on another) runs in the single
//     dispatcher goroutine, exactly as the sequential path runs it.
//   - Stream unification (meeting.Dedup) and RTP copy matching
//     (metrics.CopyMatcher) correlate packets across flows. Shards log
//     compact per-packet observations into pooled chunks instead; a
//     reconciliation pass merges the logs in global capture order — each
//     packet carries the dispatcher's sequence number — and feeds them
//     through one Dedup and one CopyMatcher. Reconciliation is
//     incremental: it advances at every quiesce boundary (Snapshot,
//     Checkpoint, Rotate, a periodic cadence, and finally Finish), and
//     because the replay consumers are deterministic in observation
//     order, advancing early is indistinguishable from replaying
//     everything at Finish.
//
// The merge therefore yields results byte-identical to the sequential
// analyzer: per-stream metric engines saw the same packets in the same
// order, flow tables partition by five-tuple and union losslessly, TCP
// trackers partition by client endpoint, and the reconciled Dedup/Copies
// see the identical observation sequence.

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/features"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/zoom"
)

// mediaObs is one media-packet observation logged by a shard for the
// ordered Dedup/CopyMatcher reconciliation.
type mediaObs struct {
	seq  uint64 // global capture sequence number (dispatcher-assigned)
	at   time.Time
	flow layers.FiveTuple
	key  zoom.StreamKey
	// wireLen/payloadLen feed the streaming feature windower, which
	// shares the reconciliation stream.
	wireLen    int32
	payloadLen int32
	pt         uint8
	rtpSeq     uint16
	rtpTS      uint32
}

const (
	// shardBatchSize is how many packets the dispatcher buffers per shard
	// before handing the batch to the worker.
	shardBatchSize = 256
	// shardQueueDepth bounds each shard's ring; a full ring blocks the
	// dispatcher (backpressure) instead of buffering unboundedly.
	shardQueueDepth = 4
	// reconEvery is the periodic reconciliation cadence in packets: even
	// a run that never snapshots or checkpoints drains the shard
	// observation logs (and recycles their chunks) this often, bounding
	// log memory on long soaks.
	reconEvery = 1 << 20
)

// pbatch is one unit of work handed to a shard: frames copied
// back-to-back into data, with per-packet offsets in items. A batch with
// sync set carries no packets; the shard acknowledges on the channel
// after draining everything queued before it (the quiesce barrier — the
// ack's happens-before edge makes the shard's state safely readable from
// the dispatcher goroutine until more work is sent). Batches come from
// and return to the package-wide framePool.
type pbatch struct {
	items []pitem
	data  []byte
	sync  chan<- struct{}
}

// pitem is one packet within a batch: just the capture metadata and the
// frame's offsets into the batch buffer. The shard performs the decode.
type pitem struct {
	seq      uint64
	at       time.Time
	off, end int32
}

// pshard is one worker: a private Analyzer fed over an SPSC ring, with
// its own parser (shards decode their own frames) and a chunked log of
// media observations awaiting reconciliation.
type pshard struct {
	a     *pshardAnalyzer
	ring  *spscRing
	done  chan struct{}
	cur   *pbatch // batch under construction (dispatcher-owned)
	depth *obs.Gauge

	parser layers.Parser
	pkt    layers.Packet

	// obsHead/obsTail chain this shard's pending media observations,
	// oldest chunk first. The shard goroutine appends; the dispatcher
	// consumes and resets the chain at quiesce boundaries.
	obsHead, obsTail *obsChunk

	// ingested counts packets processed by this shard, driving the
	// TTL-eviction cadence (the shard analyzer's own Packet counter
	// never moves — the dispatcher owns packet accounting).
	ingested uint64
}

// pshardAnalyzer is just *Analyzer; the alias keeps struct literals in
// this file honest about which analyzers are shard-local.
type pshardAnalyzer = Analyzer

func (s *pshard) run() {
	defer close(s.done)
	for {
		b, ok := s.ring.pop()
		if !ok {
			return
		}
		// Consumer-side backlog update: the dispatcher only writes the
		// gauge on enqueue, so without this an idle shard would report its
		// last backlog forever.
		s.depth.Set(int64(s.ring.len()))
		if b.sync != nil {
			b.sync <- struct{}{}
			putBatch(b)
			continue
		}
		for i := range b.items {
			it := &b.items[i]
			s.runOne(it, b.data[it.off:it.end])
		}
		putBatch(b)
	}
}

// logObs appends one media observation to the shard's pending chain.
// Installed as the shard analyzer's obsSink.
func (s *pshard) logObs(o mediaObs) {
	c := s.obsTail
	if c == nil || c.n == obsChunkLen {
		nc := getObsChunk()
		if c == nil {
			s.obsHead = nc
		} else {
			c.next = nc
		}
		s.obsTail = nc
		c = nc
	}
	c.e[c.n] = o
	c.n++
}

// runOne decodes and processes one packet under the same panic
// quarantine as the sequential path: a frame that panics is counted on
// the shard analyzer (summed at merge) and deposited in the shared
// quarantine ring.
func (s *pshard) runOne(it *pitem, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.a.PanicsRecovered++
			if s.a.cfg.Quarantine != nil {
				s.a.cfg.Quarantine.Add(it.at, frame, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	if s.a.panicHook != nil {
		s.a.panicHook(it.at, frame)
	}
	if err := s.parser.Parse(frame, &s.pkt); err != nil {
		// Unreachable for frames admitted by rawScan (it is strictly no
		// more permissive than the parser) and for slow-path frames (the
		// dispatcher already parsed them); kept for defense in depth.
		s.a.Undecodable++
		s.a.o.undecodable()
		return
	}
	s.a.obsSeq = it.seq
	s.a.ingest(it.at, &s.pkt, len(frame))
	s.ingested++
	if ttl := s.a.cfg.FlowTTL; ttl > 0 && s.a.cfg.MaintainEvery > 0 && s.ingested%s.a.cfg.MaintainEvery == 0 {
		s.a.EvictIdle(it.at.Add(-ttl))
	}
	if s.a.o != nil && s.ingested%obsUpdateEvery == 0 {
		s.a.updateObsGauges()
	}
}

// ParallelAnalyzer is the sharded multi-core pipeline. Feed packets in
// capture order via Packet (or a whole file via ReadPCAP), call Finish
// once, then read results — either through the delegating accessors or
// via Result(), which returns a fully merged *Analyzer.
//
// With one worker it degenerates to the sequential Analyzer (no
// goroutines, no copies); with N > 1 it runs one dispatcher (raw scan +
// filter + route) plus N shard goroutines. Results are byte-identical to
// the sequential analyzer either way. AutoCompact is not supported in
// parallel mode; memory is bounded by ring backpressure instead.
type ParallelAnalyzer struct {
	cfg     Config
	workers int

	// Sequential degenerate case (workers == 1): all calls delegate here
	// and the fields below stay nil.
	seq *Analyzer

	parser layers.Parser
	pkt    layers.Packet
	filter *capture.Filter
	shards []*pshard

	// o holds the dispatcher's live-metric handles (shared counters plus
	// the unlabeled aggregate gauges, which Snapshot refreshes); qdepth
	// exposes each shard's ring backlog.
	o      *coreObs
	qdepth []*obs.Gauge

	// rec is the always-on reconciliation state for the cross-flow
	// stages: one Dedup and one CopyMatcher, configured exactly like the
	// sequential analyzer's, advanced through the shard logs in global
	// capture order at every quiesce boundary. At Finish it IS the merged
	// analyzer's cross-flow state — there is no separate merge-time
	// replay.
	rec reconState

	// Dispatcher-owned totals; the rest accumulate in the shards.
	nextSeq     uint64
	packets     uint64
	bytes       uint64
	undecodable uint64
	dropped     uint64
	panics      uint64 // dispatcher-side recoveries (shards count their own)
	truncated   bool
	firstTS     time.Time
	lastTS      time.Time

	// shedPackets/shedBytes count packets dropped at full shard rings
	// when Config.Shed is on (dispatcher-owned, like packets/bytes).
	shedPackets uint64
	shedBytes   uint64

	// Delta-checkpoint chain state: ckPackets is the dispatcher packet
	// count at the last checkpoint encode (the next delta's base);
	// deltaArmed is set by full checkpoints/restores and cleared by
	// rotation.
	ckPackets  uint64
	deltaArmed bool

	merged *Analyzer
}

// reconState is the incremental replacement for the old merge-time
// replay (and the old snapshot-only live replica): the authoritative
// cross-flow consumers, fed in global capture order.
type reconState struct {
	dedup  *meeting.Dedup
	copies *metrics.CopyMatcher
	// win is the streaming feature windower (nil unless
	// Config.FeatureWindow is set). Like dedup/copies it consumes the
	// globally ordered observation stream, which is exactly what makes
	// parallel feature rows byte-identical to sequential ones.
	win *features.Windower
}

func newReconState(cfg Config) reconState {
	d := meeting.NewDedup()
	d.MaxStreams = cfg.MaxMeetingStreams
	c := metrics.NewCopyMatcher()
	c.MaxPending = effectiveMaxCopyPending(cfg)
	rec := reconState{dedup: d, copies: c}
	if cfg.FeatureWindow > 0 {
		rec.win = features.NewWindower(cfg.FeatureWindow)
	}
	return rec
}

// NewParallelAnalyzer builds a sharded analyzer with the given worker
// count; workers <= 0 selects runtime.NumCPU().
func NewParallelAnalyzer(cfg Config, workers int) *ParallelAnalyzer {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	pa := &ParallelAnalyzer{cfg: cfg, workers: workers}
	if workers == 1 {
		pa.seq = NewAnalyzer(cfg)
		return pa
	}
	protos := cfg.Protos
	if protos == nil {
		protos = rtcproto.DefaultSet()
	}
	pa.filter = capture.NewFilter(capture.Config{
		ZoomNetworks:   cfg.ZoomNetworks,
		CampusNetworks: cfg.CampusNetworks,
		GenericRTC:     rtcproto.HasNonZoom(protos),
	})
	pa.rec = newReconState(cfg)
	pa.shards = make([]*pshard, workers)
	pa.qdepth = make([]*obs.Gauge, workers)
	shardCfg := scaleLimits(cfg, workers)
	for i := range pa.shards {
		sh := &pshard{
			a:    NewAnalyzer(shardCfg),
			ring: newSPSCRing(shardQueueDepth),
			done: make(chan struct{}),
		}
		// The shard analyzer registered unlabeled gauges at construction;
		// rebind so its occupancy series carry the shard label.
		sh.a.bindObs(strconv.Itoa(i))
		if cfg.Obs != nil {
			pa.qdepth[i] = cfg.Obs.Gauge("zoomlens_shard_queue_depth",
				"Batches queued per shard ring.", obs.L("shard", strconv.Itoa(i)))
		}
		sh.depth = pa.qdepth[i]
		sh.a.obsSink = sh.logObs
		pa.shards[i] = sh
		go sh.run()
	}
	// Registered after the shard loop so the unlabeled cap gauges reflect
	// the global configuration, not the transient per-shard binding each
	// NewAnalyzer performed before its rebind above.
	pa.o = newCoreObs(cfg.Obs, "", cfg)
	return pa
}

// scaleLimits divides the global state caps across workers: flows hash
// roughly uniformly over shards, so per-shard caps of ceil(cap/workers)
// keep the aggregate close to the configured bound. Zero (unlimited)
// stays zero.
func scaleLimits(cfg Config, workers int) Config {
	div := func(v int) int {
		if v <= 0 {
			return v
		}
		return (v + workers - 1) / workers
	}
	cfg.MaxFlows = div(cfg.MaxFlows)
	cfg.MaxStreams = div(cfg.MaxStreams)
	cfg.MaxSubstreams = div(cfg.MaxSubstreams)
	cfg.MaxTCP = div(cfg.MaxTCP)
	cfg.MaxFinished = div(cfg.MaxFinished)
	// MaxMeetingStreams stays global: shard Dedups never observe (the
	// obsSink diverts media observations to the reconciliation pass), so
	// the cap only binds on the reconciliation state.
	// FeatureWindow is zeroed for the same reason — the windower lives
	// on the reconciliation state, not in the shards.
	cfg.FeatureWindow = 0
	return cfg
}

// Workers returns the resolved worker count.
func (pa *ParallelAnalyzer) Workers() int { return pa.workers }

// Packet ingests one captured frame. The frame is borrowed for the
// duration of the call: the dispatcher copies it into a pooled shard
// batch before returning, so callers may reuse the buffer immediately,
// including the borrowed Data of pcap.NextInto. Not safe for concurrent
// use; one goroutine dispatches, the shards parallelize behind it.
func (pa *ParallelAnalyzer) Packet(at time.Time, frame []byte) {
	if pa.seq != nil {
		pa.seq.Packet(at, frame)
		return
	}
	pa.packets++
	pa.bytes += uint64(len(frame))
	pa.o.packetIn(len(frame))
	if pa.firstTS.IsZero() || at.Before(pa.firstTS) {
		pa.firstTS = at
	}
	if at.After(pa.lastTS) {
		pa.lastTS = at
	}
	pa.nextSeq++
	pa.dispatch(at, frame)
	if pa.nextSeq%reconEvery == 0 {
		pa.quiesce()
		pa.advanceRecon()
	}
}

// dispatch runs the centralized scan → filter → route stage under the
// same panic quarantine as the shards: a frame that blows up the scanner
// or the filter is counted and quarantined, never crashes the tap.
func (pa *ParallelAnalyzer) dispatch(at time.Time, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			pa.panics++
			pa.o.panicRecovered()
			if pa.cfg.Quarantine != nil {
				pa.cfg.Quarantine.Add(at, frame, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	var ri rawInfo
	if !rawScan(frame, &ri) {
		pa.dispatchSlow(at, frame)
		return
	}
	verdict := pa.filter.ClassifyFlow(ri.src, ri.dst, !ri.isTCP, ri.srcPort, ri.dstPort, ri.payload, at)
	if !verdict.Keep() && !pa.cfg.PreFiltered {
		pa.dropped++
		pa.o.filtered()
		return
	}
	pa.enqueue(pa.shardIndexFor(ri.isTCP, ri.src, ri.dst, ri.srcPort, ri.dstPort), at, frame)
}

// dispatchSlow is the fallback for frames rawScan does not cover: the
// original full-parse dispatch, with identical counting semantics.
func (pa *ParallelAnalyzer) dispatchSlow(at time.Time, frame []byte) {
	if err := pa.parser.Parse(frame, &pa.pkt); err != nil {
		pa.undecodable++
		pa.o.undecodable()
		return
	}
	verdict := pa.filter.Classify(&pa.pkt, at)
	if !verdict.Keep() && !pa.cfg.PreFiltered {
		pa.dropped++
		pa.o.filtered()
		return
	}
	pa.enqueue(pa.shardIndex(&pa.pkt), at, frame)
}

// enqueue copies the frame into the target shard's batch under
// construction and ships the batch when full.
func (pa *ParallelAnalyzer) enqueue(idx int, at time.Time, frame []byte) {
	sh := pa.shards[idx]
	if sh.cur == nil {
		sh.cur = getBatch()
	}
	b := sh.cur
	off := int32(len(b.data))
	b.data = append(b.data, frame...)
	b.items = append(b.items, pitem{seq: pa.nextSeq, at: at, off: off, end: int32(len(b.data))})
	if len(b.items) >= shardBatchSize {
		if pa.cfg.Shed {
			if !sh.ring.tryPush(b) {
				// Overload: the shard is behind and its ring is full. Drop
				// the whole batch with accounting instead of stalling the
				// dispatcher (live capture would otherwise lose packets
				// invisibly in the kernel).
				pa.shedPackets += uint64(len(b.items))
				pa.shedBytes += uint64(len(b.data))
				pa.o.shed(len(b.items), len(b.data))
				putBatch(b)
				sh.cur = nil
				return
			}
		} else {
			sh.ring.push(b)
		}
		sh.cur = nil
		// Producer-side backlog sample; the shard updates the same gauge
		// on dequeue, so it tracks both directions.
		sh.depth.Set(int64(sh.ring.len()))
	}
}

// shardIndex routes a parsed packet to a shard (the slow path; the fast
// path hashes the same features straight from rawScan via
// shardIndexFor).
func (pa *ParallelAnalyzer) shardIndex(pkt *layers.Packet) int {
	if pkt.HasTCP {
		return pa.shardIndexFor(true, pkt.SrcAddr(), pkt.DstAddr(), pkt.TCP.SrcPort, pkt.TCP.DstPort)
	}
	ft, ok := pkt.FiveTuple()
	if !ok {
		return 0
	}
	return pa.shardIndexFor(false, ft.Src, ft.Dst, ft.SrcPort, ft.DstPort)
}

// shardIndexFor hashes flow features to a shard. UDP hashes the directed
// five-tuple: every packet of a flow — and hence of any media stream on
// it — lands on one shard, preserving per-flow order. TCP hashes the
// client endpoint the sequential path keys its RTT trackers by, so both
// directions (and every connection) of one tracker share a shard. The
// hash itself (shardFor, in cluster.go) is shared with the cluster
// splitter's Router so a worker process receives exactly the flows the
// corresponding in-process shard would have.
func (pa *ParallelAnalyzer) shardIndexFor(isTCP bool, src, dst netip.Addr, srcPort, dstPort uint16) int {
	return shardFor(&pa.cfg, len(pa.shards), isTCP, src, dst, srcPort, dstPort)
}

func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Finish flushes the shards, waits for them to drain, reconciles the
// remaining observation logs, and merges shard state into one Analyzer.
// Call once after the last packet.
func (pa *ParallelAnalyzer) Finish() {
	if pa.seq != nil {
		pa.seq.Finish()
		pa.merged = pa.seq
		return
	}
	if pa.merged != nil {
		return
	}
	for _, sh := range pa.shards {
		if sh.cur != nil && len(sh.cur.items) > 0 {
			sh.ring.push(sh.cur)
		}
		sh.cur = nil
		sh.ring.close()
	}
	for _, sh := range pa.shards {
		<-sh.done
		// Single-threaded again once done is closed: flush each shard's
		// final occupancy and eviction mirrors before merging, and zero
		// the drained ring's backlog gauge.
		sh.a.updateObsGauges()
		sh.depth.Set(0)
	}
	pa.merged = pa.merge()
}

// merge combines shard state deterministically. Flow tables, stream
// metric maps, and TCP trackers partition across shards, so their union
// is exact; the cross-flow Dedup/CopyMatcher state is the reconciliation
// pass's, advanced here through any observations still unconsumed.
func (pa *ParallelAnalyzer) merge() *Analyzer {
	defer pa.cfg.trace("merge")()
	pa.advanceRecon()
	parts := make([]*Analyzer, len(pa.shards))
	for i, sh := range pa.shards {
		parts[i] = sh.a
	}
	m := mergeParts(pa.cfg, parts, ClusterHead{
		Packets:         pa.packets,
		Bytes:           pa.bytes,
		Undecodable:     pa.undecodable,
		DroppedByFilter: pa.dropped,
		PanicsRecovered: pa.panics,
		ShedPackets:     pa.shedPackets,
		ShedBytes:       pa.shedBytes,
		Truncated:       pa.truncated,
		FirstTS:         pa.firstTS,
		LastTS:          pa.lastTS,
	}, pa.rec)
	m.Finish()
	return m
}

// mergeParts unions per-shard (or per-worker-process) analyzer state
// under the head counters of the dispatcher (or cluster splitter), and
// adopts the reconciled cross-flow state. Shared by the in-process
// merge and cluster-mode MergeCluster; the result has not been
// finished.
func mergeParts(cfg Config, parts []*Analyzer, head ClusterHead, rec reconState) *Analyzer {
	m := NewAnalyzer(cfg)
	// The shards and the dispatcher already fed the shared counters and
	// mirrored their cumulative eviction stats; the merged analyzer
	// absorbs those same cumulative counts, so letting it mirror too
	// would double-count. Its gauges are redundant with the per-shard
	// series as well.
	m.o = nil
	m.Packets = head.Packets
	m.Bytes = head.Bytes
	m.Undecodable = head.Undecodable
	m.DroppedByFilter = head.DroppedByFilter
	m.PanicsRecovered = head.PanicsRecovered
	m.Truncated = head.Truncated
	m.ShedPackets = head.ShedPackets
	m.ShedBytes = head.ShedBytes
	m.firstTS = head.FirstTS
	m.lastTS = head.LastTS
	for _, sa := range parts {
		m.ZoomUDP += sa.ZoomUDP
		m.Undecodable += sa.Undecodable
		m.TCPPackets += sa.TCPPackets
		m.STUNPackets += sa.STUNPackets
		m.STUNPortNonSTUN += sa.STUNPortNonSTUN
		for i, v := range sa.ProtoDecoded {
			m.ProtoDecoded[i] += v
		}
		m.UDPKeptPackets += sa.UDPKeptPackets
		m.UDPKeptBytes += sa.UDPKeptBytes
		m.PanicsRecovered += sa.PanicsRecovered
		m.EvictedTCP += sa.EvictedTCP
		m.RejectedTCPPackets += sa.RejectedTCPPackets
		m.FinishedDropped += sa.FinishedDropped
		m.Flows.Absorb(sa.Flows)
		for id, sm := range sa.StreamMetrics {
			m.StreamMetrics[id] = sm
		}
		for client, tr := range sa.TCP {
			m.TCP[client] = tr
		}
		for client, seen := range sa.tcpSeen {
			m.tcpSeen[client] = seen
		}
		m.Finished = append(m.Finished, sa.Finished...)
	}
	// Shard archives interleave arbitrarily; order them the way one
	// sequential analyzer would have produced them (by idle-out time,
	// tie-broken by stream identity).
	sort.Slice(m.Finished, func(i, j int) bool {
		fi, fj := m.Finished[i], m.Finished[j]
		if !fi.LastSeen.Equal(fj.LastSeen) {
			return fi.LastSeen.Before(fj.LastSeen)
		}
		if fi.ID.Key.SSRC != fj.ID.Key.SSRC {
			return fi.ID.Key.SSRC < fj.ID.Key.SSRC
		}
		if fi.ID.Key.Type != fj.ID.Key.Type {
			return fi.ID.Key.Type < fj.ID.Key.Type
		}
		return fi.ID.Flow.String() < fj.ID.Flow.String()
	})
	m.Dedup = rec.dedup
	m.Copies = rec.copies
	// The merged analyzer adopts the reconciliation windower wholesale
	// (NewAnalyzer built a fresh, empty one when FeatureWindow is set —
	// discard it; the reconciled one holds the real state and pending
	// rows).
	m.feats = rec.win
	return m
}

// advanceRecon feeds every pending shard observation through the
// reconciliation Dedup/CopyMatcher in global capture order (a k-way
// merge by dispatcher sequence number; each shard chain is already
// seq-sorted because shards consume their ring FIFO), then recycles the
// consumed chunks. Call only while quiesced or after the shards exited.
func (pa *ParallelAnalyzer) advanceRecon() {
	type cursor struct {
		c *obsChunk
		i int
	}
	cur := make([]cursor, len(pa.shards))
	for si, sh := range pa.shards {
		cur[si] = cursor{c: sh.obsHead}
	}
	for {
		best := -1
		var bestSeq uint64
		for si := range cur {
			cc := &cur[si]
			for cc.c != nil && cc.i >= cc.c.n {
				cc.c, cc.i = cc.c.next, 0
			}
			if cc.c == nil {
				continue
			}
			if s := cc.c.e[cc.i].seq; best < 0 || s < bestSeq {
				best, bestSeq = si, s
			}
		}
		if best < 0 {
			break
		}
		o := &cur[best].c.e[cur[best].i]
		cur[best].i++
		unified := pa.rec.dedup.Observe(meeting.StreamObs{
			Time: o.at, Flow: o.flow, Key: o.key, Seq: o.rtpSeq, TS: o.rtpTS,
		})
		pa.rec.copies.Observe(unified, o.flow, o.pt, o.rtpSeq, o.rtpTS, o.at)
		if pa.rec.win != nil {
			pa.rec.win.Observe(features.Obs{
				At: o.at, Flow: o.flow, Key: o.key,
				WireLen: int(o.wireLen), PayloadLen: int(o.payloadLen),
				PT: o.pt, RTPSeq: o.rtpSeq, RTPTS: o.rtpTS,
			})
		}
	}
	for _, sh := range pa.shards {
		for c := sh.obsHead; c != nil; {
			nc := c.next
			putObsChunk(c)
			c = nc
		}
		sh.obsHead, sh.obsTail = nil, nil
	}
}

// ReadPCAP feeds an entire capture stream through the analyzer and
// finishes. Like the sequential path, a capture cut mid-record yields
// valid partial results with the Truncated flag set instead of an error.
func (pa *ParallelAnalyzer) ReadPCAP(r io.Reader) error {
	if pa.seq != nil {
		err := pa.seq.ReadPCAP(r)
		pa.merged = pa.seq
		return err
	}
	s, err := pcap.OpenStream(r)
	if err != nil {
		return err
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pa.Packet(rec.Timestamp, rec.Data)
	}
	pa.truncated = s.Truncated()
	pa.Finish()
	return nil
}

// quiesce flushes every shard's batch under construction and blocks
// until all shards have drained their rings. On return, shard state is
// safely readable from the dispatcher goroutine (the ack receive is the
// happens-before edge) and stays frozen until more work is dispatched.
func (pa *ParallelAnalyzer) quiesce() {
	ack := make(chan struct{}, len(pa.shards))
	for _, sh := range pa.shards {
		if sh.cur != nil && len(sh.cur.items) > 0 {
			sh.ring.push(sh.cur)
			sh.cur = nil
		}
		sb := getBatch()
		sb.sync = ack
		sh.ring.push(sb)
	}
	for range pa.shards {
		<-ack
	}
	for _, sh := range pa.shards {
		// Every ring is drained; report the quiesced backlog explicitly
		// (the shard-side update raced the last enqueue sample).
		sh.depth.Set(0)
	}
}

// Snapshot quiesces the shards and returns the per-meeting rolling
// metrics at trace time now over the trailing window. Call only from
// the dispatching goroutine (between Packet calls); results match the
// sequential analyzer's Snapshot at the same packet boundary.
func (pa *ParallelAnalyzer) Snapshot(now time.Time, window time.Duration) []MeetingSnapshot {
	if pa.seq != nil {
		return pa.seq.Snapshot(now, window)
	}
	if pa.merged != nil {
		return pa.merged.Snapshot(now, window)
	}
	defer pa.cfg.trace("snapshot")()
	pa.o.snapshot()
	pa.quiesce()
	pa.advanceRecon()
	src := snapshotSource{
		dedup:  pa.rec.dedup,
		copies: pa.rec.copies,
		cfg:    pa.cfg,
		lookup: pa.lookupShardStream,
	}
	snaps := src.take(now, window)
	pa.updateAggregateGauges()
	return snaps
}

// lookupShardStream resolves a stream record to its shard's metric
// engine (live, then archived). Valid only while quiesced.
func (pa *ParallelAnalyzer) lookupShardStream(id flow.MediaStreamID) *metrics.StreamMetrics {
	for _, sh := range pa.shards {
		if sm := sh.a.StreamMetrics[id]; sm != nil {
			return sm
		}
	}
	for _, sh := range pa.shards {
		for i := range sh.a.Finished {
			if sh.a.Finished[i].ID == id {
				return sh.a.Finished[i].Metrics
			}
		}
	}
	return nil
}

// updateAggregateGauges refreshes the unlabeled occupancy gauges with
// cross-shard totals (plus the reconciliation state's cross-flow
// tables). Valid only while quiesced.
func (pa *ParallelAnalyzer) updateAggregateGauges() {
	if pa.o == nil {
		return
	}
	var flows, streams, tcp, finished int
	for _, sh := range pa.shards {
		tot := sh.a.Flows.Totals()
		flows += tot.Flows
		streams += tot.Streams
		tcp += len(sh.a.TCP)
		finished += len(sh.a.Finished)
	}
	pa.o.occ["flows"].Set(int64(flows))
	pa.o.occ["streams"].Set(int64(streams))
	pa.o.occ["tcp"].Set(int64(tcp))
	pa.o.occ["finished"].Set(int64(finished))
	pa.o.occ["dedup_streams"].Set(int64(pa.rec.dedup.Len()))
	pa.o.occ["copy_pending"].Set(int64(pa.rec.copies.Pending()))
}

// Result returns the merged sequential-equivalent analyzer. It panics if
// Finish has not run yet.
func (pa *ParallelAnalyzer) Result() *Analyzer {
	if pa.merged == nil {
		panic(fmt.Sprintf("core: ParallelAnalyzer.Result before Finish (%d workers)", pa.workers))
	}
	return pa.merged
}

// Summary computes the capture roll-up (after Finish).
func (pa *ParallelAnalyzer) Summary() Summary { return pa.Result().Summary() }

// Meetings runs the §4.3 grouping (after Finish).
func (pa *ParallelAnalyzer) Meetings() []meeting.Meeting { return pa.Result().Meetings() }

// StreamIDs returns observed stream identifiers in deterministic order
// (after Finish).
func (pa *ParallelAnalyzer) StreamIDs() []flow.MediaStreamID { return pa.Result().StreamIDs() }

// MetricsFor returns the metric engine of one stream (after Finish).
func (pa *ParallelAnalyzer) MetricsFor(id flow.MediaStreamID) (*metrics.StreamMetrics, bool) {
	return pa.Result().MetricsFor(id)
}

// DrainFeatures returns the feature rows emitted since the previous
// drain (nil when the feature layer is disabled). Before Finish it
// quiesces the shards and advances reconciliation so the windower has
// consumed every dispatched packet; call only from the dispatching
// goroutine, like Snapshot.
func (pa *ParallelAnalyzer) DrainFeatures() []features.Row {
	if pa.seq != nil {
		return pa.seq.DrainFeatures()
	}
	if pa.merged != nil {
		return pa.merged.DrainFeatures()
	}
	if pa.rec.win == nil {
		return nil
	}
	pa.quiesce()
	pa.advanceRecon()
	return pa.rec.win.Drain()
}
