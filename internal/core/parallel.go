package core

// Sharded parallel analysis pipeline.
//
// The sequential Analyzer funnels every packet through one flow table
// and one metrics map — the bottleneck Zeek-style deployments solve by
// distributing flows across workers. Per-flow independence makes the
// pipeline shardable: all heavy per-packet work (Zoom encapsulation
// parsing, frame assembly, jitter, loss, rate series, TCP RTT matching)
// only ever touches state keyed by the packet's flow, so hashing each
// five-tuple to one of N worker shards preserves exact per-flow
// processing order while spreading the work over N cores.
//
// Two stages are NOT per-flow and stay centralized:
//
//   - The capture filter (stateful P2P table armed by STUN exchanges on
//     one flow and consulted by media on another) runs in the single
//     dispatcher goroutine, exactly as the sequential path runs it.
//   - Stream unification (meeting.Dedup) and RTP copy matching
//     (metrics.CopyMatcher) correlate packets across flows. Shards log
//     compact per-packet observations instead; Finish merges the logs in
//     global capture order — each packet carries the dispatcher's
//     sequence number — and replays them through one Dedup and one
//     CopyMatcher, reproducing the sequential call sequence exactly.
//
// The merge therefore yields results byte-identical to the sequential
// analyzer: per-stream metric engines saw the same packets in the same
// order, flow tables partition by five-tuple and union losslessly, TCP
// trackers partition by client endpoint, and the replayed Dedup/Copies
// see the identical observation sequence.

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/zoom"
)

// mediaObs is one media-packet observation logged by a shard for the
// ordered Dedup/CopyMatcher replay at merge time.
type mediaObs struct {
	seq    uint64 // global capture sequence number (dispatcher-assigned)
	at     time.Time
	flow   layers.FiveTuple
	key    zoom.StreamKey
	pt     uint8
	rtpSeq uint16
	rtpTS  uint32
}

const (
	// shardBatchSize is how many packets the dispatcher buffers per shard
	// before handing the batch to the worker.
	shardBatchSize = 256
	// shardQueueDepth bounds each shard's channel; a full channel blocks
	// the dispatcher (backpressure) instead of buffering unboundedly.
	shardQueueDepth = 4
)

// pbatch is one unit of work handed to a shard: frames copied
// back-to-back into data, with per-packet offsets in items. A batch with
// sync set carries no packets; the shard acknowledges on the channel
// after draining everything queued before it (the Snapshot quiesce
// barrier — the ack's happens-before edge makes the shard's state safely
// readable from the dispatcher goroutine until more work is sent).
// Batches come from and return to the package-wide framePool.
type pbatch struct {
	items []pitem
	data  []byte
	sync  chan<- struct{}
}

// pitem is one packet within a batch. pkt is the dispatcher's decode,
// rebased onto the batch's copy of the frame, so the shard never
// decodes a frame the dispatcher already decoded.
type pitem struct {
	seq      uint64
	at       time.Time
	off, end int
	pkt      layers.Packet
}

// pshard is one worker: a private Analyzer fed over a bounded channel.
type pshard struct {
	a    *Analyzer
	obs  []mediaObs
	ch   chan *pbatch
	done chan struct{}
	cur  *pbatch // batch under construction (dispatcher-owned)

	// ingested counts packets processed by this shard, driving the
	// TTL-eviction cadence (the shard analyzer's own Packet counter
	// never moves — the dispatcher owns packet accounting).
	ingested uint64
}

func (s *pshard) run() {
	defer close(s.done)
	for b := range s.ch {
		if b.sync != nil {
			b.sync <- struct{}{}
			putBatch(b)
			continue
		}
		for i := range b.items {
			it := &b.items[i]
			s.runOne(it, b.data[it.off:it.end])
		}
		putBatch(b)
	}
}

// runOne processes one packet under the same panic quarantine as the
// sequential path: a frame that panics is counted on the shard analyzer
// (summed at merge) and deposited in the shared quarantine ring. The
// packet arrives already decoded (it.pkt, rebased onto the batch copy
// of the frame by the dispatcher), so no shard ever re-decodes.
func (s *pshard) runOne(it *pitem, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.a.PanicsRecovered++
			if s.a.cfg.Quarantine != nil {
				s.a.cfg.Quarantine.Add(it.at, frame, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	if s.a.panicHook != nil {
		s.a.panicHook(it.at, frame)
	}
	s.a.obsSeq = it.seq
	s.a.ingest(it.at, &it.pkt, len(frame))
	s.ingested++
	if ttl := s.a.cfg.FlowTTL; ttl > 0 && s.a.cfg.MaintainEvery > 0 && s.ingested%s.a.cfg.MaintainEvery == 0 {
		s.a.EvictIdle(it.at.Add(-ttl))
	}
	if s.a.o != nil && s.ingested%obsUpdateEvery == 0 {
		s.a.updateObsGauges()
	}
}

// ParallelAnalyzer is the sharded multi-core pipeline. Feed packets in
// capture order via Packet (or a whole file via ReadPCAP), call Finish
// once, then read results — either through the delegating accessors or
// via Result(), which returns a fully merged *Analyzer.
//
// With one worker it degenerates to the sequential Analyzer (no
// goroutines, no copies); with N > 1 it runs one dispatcher (parse +
// filter + route) plus N shard goroutines. Results are byte-identical to
// the sequential analyzer either way. AutoCompact is not supported in
// parallel mode; memory is bounded by channel backpressure instead.
type ParallelAnalyzer struct {
	cfg     Config
	workers int

	// Sequential degenerate case (workers == 1): all calls delegate here
	// and the fields below stay nil.
	seq *Analyzer

	parser layers.Parser
	pkt    layers.Packet
	filter *capture.Filter
	shards []*pshard

	// o holds the dispatcher's live-metric handles (shared counters plus
	// the unlabeled aggregate gauges, which Snapshot refreshes); qdepth
	// exposes each shard's channel backlog.
	o      *coreObs
	qdepth []*obs.Gauge

	// Dispatcher-owned totals; the rest accumulate in the shards.
	nextSeq     uint64
	packets     uint64
	bytes       uint64
	undecodable uint64
	dropped     uint64
	panics      uint64 // dispatcher-side recoveries (shards count their own)
	truncated   bool
	firstTS     time.Time
	lastTS      time.Time

	merged *Analyzer

	// live is the snapshot-time replica of the cross-flow state (see
	// liveView); lazily created on the first Snapshot.
	live *liveView
}

// liveView incrementally replicates the cross-flow state (stream
// unification + copy matching) for snapshots, completely separate from
// the authoritative merge-time replay: each snapshot advances it through
// the shard observation logs from heads, in global capture order — the
// same deterministic replay Finish performs, just consumed as the run
// progresses. Final results therefore never depend on whether (or when)
// snapshots were taken.
type liveView struct {
	dedup  *meeting.Dedup
	copies *metrics.CopyMatcher
	heads  []int
}

// NewParallelAnalyzer builds a sharded analyzer with the given worker
// count; workers <= 0 selects runtime.NumCPU().
func NewParallelAnalyzer(cfg Config, workers int) *ParallelAnalyzer {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	pa := &ParallelAnalyzer{cfg: cfg, workers: workers}
	if workers == 1 {
		pa.seq = NewAnalyzer(cfg)
		return pa
	}
	pa.filter = capture.NewFilter(capture.Config{
		ZoomNetworks:   cfg.ZoomNetworks,
		CampusNetworks: cfg.CampusNetworks,
	})
	pa.shards = make([]*pshard, workers)
	pa.qdepth = make([]*obs.Gauge, workers)
	shardCfg := scaleLimits(cfg, workers)
	for i := range pa.shards {
		sh := &pshard{
			a:    NewAnalyzer(shardCfg),
			ch:   make(chan *pbatch, shardQueueDepth),
			done: make(chan struct{}),
		}
		// The shard analyzer registered unlabeled gauges at construction;
		// rebind so its occupancy series carry the shard label.
		sh.a.bindObs(strconv.Itoa(i))
		if cfg.Obs != nil {
			pa.qdepth[i] = cfg.Obs.Gauge("zoomlens_shard_queue_depth",
				"Batches queued per shard channel.", obs.L("shard", strconv.Itoa(i)))
		}
		sh.a.obsSink = func(o mediaObs) { sh.obs = append(sh.obs, o) }
		pa.shards[i] = sh
		go sh.run()
	}
	// Registered after the shard loop so the unlabeled cap gauges reflect
	// the global configuration, not the transient per-shard binding each
	// NewAnalyzer performed before its rebind above.
	pa.o = newCoreObs(cfg.Obs, "", cfg)
	return pa
}

// scaleLimits divides the global state caps across workers: flows hash
// roughly uniformly over shards, so per-shard caps of ceil(cap/workers)
// keep the aggregate close to the configured bound. Zero (unlimited)
// stays zero.
func scaleLimits(cfg Config, workers int) Config {
	div := func(v int) int {
		if v <= 0 {
			return v
		}
		return (v + workers - 1) / workers
	}
	cfg.MaxFlows = div(cfg.MaxFlows)
	cfg.MaxStreams = div(cfg.MaxStreams)
	cfg.MaxSubstreams = div(cfg.MaxSubstreams)
	cfg.MaxTCP = div(cfg.MaxTCP)
	cfg.MaxFinished = div(cfg.MaxFinished)
	// MaxMeetingStreams stays global: shard Dedups never observe (the
	// obsSink diverts media observations to the merge-time replay), so
	// the cap only binds on the merged analyzer.
	return cfg
}

// Workers returns the resolved worker count.
func (pa *ParallelAnalyzer) Workers() int { return pa.workers }

// Packet ingests one captured frame. The frame is borrowed for the
// duration of the call: the dispatcher copies it into a pooled shard
// batch before returning, so callers may reuse the buffer immediately,
// including the borrowed Data of pcap.NextInto. Not safe for concurrent
// use; one goroutine dispatches, the shards parallelize behind it.
func (pa *ParallelAnalyzer) Packet(at time.Time, frame []byte) {
	if pa.seq != nil {
		pa.seq.Packet(at, frame)
		return
	}
	pa.packets++
	pa.bytes += uint64(len(frame))
	pa.o.packetIn(len(frame))
	if pa.firstTS.IsZero() || at.Before(pa.firstTS) {
		pa.firstTS = at
	}
	if at.After(pa.lastTS) {
		pa.lastTS = at
	}
	pa.nextSeq++
	pa.dispatch(at, frame)
}

// dispatch runs the centralized parse → filter → route stage under the
// same panic quarantine as the shards: a frame that blows up the parser
// or the filter is counted and quarantined, never crashes the tap.
func (pa *ParallelAnalyzer) dispatch(at time.Time, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			pa.panics++
			pa.o.panicRecovered()
			if pa.cfg.Quarantine != nil {
				pa.cfg.Quarantine.Add(at, frame, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	if err := pa.parser.Parse(frame, &pa.pkt); err != nil {
		pa.undecodable++
		pa.o.undecodable()
		return
	}
	verdict := pa.filter.Classify(&pa.pkt, at)
	if !verdict.Keep() && !pa.cfg.PreFiltered {
		pa.dropped++
		pa.o.filtered()
		return
	}
	idx := pa.shardIndex(&pa.pkt)
	sh := pa.shards[idx]
	if sh.cur == nil {
		sh.cur = getBatch()
	}
	b := sh.cur
	off := len(b.data)
	b.data = append(b.data, frame...)
	b.items = append(b.items, pitem{seq: pa.nextSeq, at: at, off: off, end: len(b.data), pkt: pa.pkt})
	// Ship the dispatcher's decode along with the copy: re-point the
	// packet's frame-aliasing slices from the caller's (borrowed) buffer
	// onto the batch's stable copy, so the shard reuses the decode
	// instead of parsing again.
	b.items[len(b.items)-1].pkt.Rebase(frame, b.data[off:len(b.data)])
	if len(b.items) >= shardBatchSize {
		sh.ch <- b
		sh.cur = nil
		// Sampled at batch granularity: the backlog right after an enqueue
		// is the honest congestion signal (0 = keeping up, cap = the
		// dispatcher is about to block).
		pa.qdepth[idx].Set(int64(len(sh.ch)))
	}
}

// shardIndex routes a parsed packet to a shard. UDP hashes the directed
// five-tuple: every packet of a flow — and hence of any media stream on
// it — lands on one shard, preserving per-flow order. TCP hashes the
// client endpoint the sequential path keys its RTT trackers by, so both
// directions (and every connection) of one tracker share a shard.
func (pa *ParallelAnalyzer) shardIndex(pkt *layers.Packet) int {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	if pkt.HasTCP {
		fromClient := pa.cfg.isZoomAddr(pkt.DstAddr()) && !pa.cfg.isZoomAddr(pkt.SrcAddr())
		var client netip.AddrPort
		if fromClient {
			client = netip.AddrPortFrom(pkt.SrcAddr(), pkt.TCP.SrcPort)
		} else {
			client = netip.AddrPortFrom(pkt.DstAddr(), pkt.TCP.DstPort)
		}
		a16 := client.Addr().As16()
		h = fnv1a(h, a16[:])
		h = fnv1a(h, []byte{byte(client.Port() >> 8), byte(client.Port()), layers.ProtoTCP})
		return int(h % uint64(len(pa.shards)))
	}
	ft, ok := pkt.FiveTuple()
	if !ok {
		return 0
	}
	src, dst := ft.Src.As16(), ft.Dst.As16()
	h = fnv1a(h, src[:])
	h = fnv1a(h, []byte{byte(ft.SrcPort >> 8), byte(ft.SrcPort)})
	h = fnv1a(h, dst[:])
	h = fnv1a(h, []byte{byte(ft.DstPort >> 8), byte(ft.DstPort), ft.Proto})
	return int(h % uint64(len(pa.shards)))
}

func fnv1a(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Finish flushes the shards, waits for them to drain, and merges their
// state into one Analyzer. Call once after the last packet.
func (pa *ParallelAnalyzer) Finish() {
	if pa.seq != nil {
		pa.seq.Finish()
		pa.merged = pa.seq
		return
	}
	if pa.merged != nil {
		return
	}
	for _, sh := range pa.shards {
		if sh.cur != nil && len(sh.cur.items) > 0 {
			sh.ch <- sh.cur
		}
		sh.cur = nil
		close(sh.ch)
	}
	for _, sh := range pa.shards {
		<-sh.done
		// Single-threaded again once done is closed: flush each shard's
		// final occupancy and eviction mirrors before merging.
		sh.a.updateObsGauges()
	}
	pa.merged = pa.merge()
}

// merge combines shard state deterministically. Flow tables, stream
// metric maps, and TCP trackers partition across shards, so their union
// is exact; Dedup and CopyMatcher are rebuilt by replaying the logged
// media observations in global capture order.
func (pa *ParallelAnalyzer) merge() *Analyzer {
	defer pa.cfg.trace("merge")()
	m := NewAnalyzer(pa.cfg)
	// The shards and the dispatcher already fed the shared counters and
	// mirrored their cumulative eviction stats; the merged analyzer
	// absorbs those same cumulative counts, so letting it mirror too
	// would double-count. Its gauges are redundant with the per-shard
	// series as well.
	m.o = nil
	m.Packets = pa.packets
	m.Bytes = pa.bytes
	m.Undecodable = pa.undecodable
	m.DroppedByFilter = pa.dropped
	m.PanicsRecovered = pa.panics
	m.Truncated = pa.truncated
	m.firstTS = pa.firstTS
	m.lastTS = pa.lastTS
	for _, sh := range pa.shards {
		sa := sh.a
		m.ZoomUDP += sa.ZoomUDP
		m.Undecodable += sa.Undecodable
		m.TCPPackets += sa.TCPPackets
		m.STUNPackets += sa.STUNPackets
		m.UDPKeptPackets += sa.UDPKeptPackets
		m.UDPKeptBytes += sa.UDPKeptBytes
		m.PanicsRecovered += sa.PanicsRecovered
		m.EvictedTCP += sa.EvictedTCP
		m.RejectedTCPPackets += sa.RejectedTCPPackets
		m.FinishedDropped += sa.FinishedDropped
		m.Flows.Absorb(sa.Flows)
		for id, sm := range sa.StreamMetrics {
			m.StreamMetrics[id] = sm
		}
		for client, tr := range sa.TCP {
			m.TCP[client] = tr
		}
		for client, seen := range sa.tcpSeen {
			m.tcpSeen[client] = seen
		}
		m.Finished = append(m.Finished, sa.Finished...)
	}
	// Shard archives interleave arbitrarily; order them the way one
	// sequential analyzer would have produced them (by idle-out time,
	// tie-broken by stream identity).
	sort.Slice(m.Finished, func(i, j int) bool {
		fi, fj := m.Finished[i], m.Finished[j]
		if !fi.LastSeen.Equal(fj.LastSeen) {
			return fi.LastSeen.Before(fj.LastSeen)
		}
		if fi.ID.Key.SSRC != fj.ID.Key.SSRC {
			return fi.ID.Key.SSRC < fj.ID.Key.SSRC
		}
		if fi.ID.Key.Type != fj.ID.Key.Type {
			return fi.ID.Key.Type < fj.ID.Key.Type
		}
		return fi.ID.Flow.String() < fj.ID.Flow.String()
	})
	// K-way merge of the per-shard observation logs by global sequence
	// number. Each log is already seq-sorted (shards consume their
	// channel FIFO and the dispatcher assigns seq monotonically), so a
	// linear head scan per step suffices.
	heads := make([]int, len(pa.shards))
	for {
		best := -1
		var bestSeq uint64
		for si, sh := range pa.shards {
			if heads[si] >= len(sh.obs) {
				continue
			}
			if s := sh.obs[heads[si]].seq; best < 0 || s < bestSeq {
				best, bestSeq = si, s
			}
		}
		if best < 0 {
			break
		}
		o := pa.shards[best].obs[heads[best]]
		heads[best]++
		unified := m.Dedup.Observe(meeting.StreamObs{
			Time: o.at, Flow: o.flow, Key: o.key, Seq: o.rtpSeq, TS: o.rtpTS,
		})
		m.Copies.Observe(unified, o.flow, o.pt, o.rtpSeq, o.rtpTS, o.at)
	}
	m.Finish()
	return m
}

// ReadPCAP feeds an entire capture stream through the analyzer and
// finishes. Like the sequential path, a capture cut mid-record yields
// valid partial results with the Truncated flag set instead of an error.
func (pa *ParallelAnalyzer) ReadPCAP(r io.Reader) error {
	if pa.seq != nil {
		err := pa.seq.ReadPCAP(r)
		pa.merged = pa.seq
		return err
	}
	s, err := pcap.OpenStream(r)
	if err != nil {
		return err
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		pa.Packet(rec.Timestamp, rec.Data)
	}
	pa.truncated = s.Truncated()
	pa.Finish()
	return nil
}

// quiesce flushes every shard's batch under construction and blocks
// until all shards have drained their queues. On return, shard state is
// safely readable from the dispatcher goroutine (the ack receive is the
// happens-before edge) and stays frozen until more work is dispatched.
func (pa *ParallelAnalyzer) quiesce() {
	ack := make(chan struct{}, len(pa.shards))
	for _, sh := range pa.shards {
		if sh.cur != nil && len(sh.cur.items) > 0 {
			sh.ch <- sh.cur
			sh.cur = nil
		}
		sb := getBatch()
		sb.sync = ack
		sh.ch <- sb
	}
	for range pa.shards {
		<-ack
	}
}

// Snapshot quiesces the shards and returns the per-meeting rolling
// metrics at trace time now over the trailing window. Call only from
// the dispatching goroutine (between Packet calls); results match the
// sequential analyzer's Snapshot at the same packet boundary.
func (pa *ParallelAnalyzer) Snapshot(now time.Time, window time.Duration) []MeetingSnapshot {
	if pa.seq != nil {
		return pa.seq.Snapshot(now, window)
	}
	if pa.merged != nil {
		return pa.merged.Snapshot(now, window)
	}
	defer pa.cfg.trace("snapshot")()
	pa.o.snapshot()
	pa.quiesce()
	if pa.live == nil {
		d := meeting.NewDedup()
		d.MaxStreams = pa.cfg.MaxMeetingStreams
		c := metrics.NewCopyMatcher()
		c.MaxPending = effectiveMaxCopyPending(pa.cfg)
		pa.live = &liveView{dedup: d, copies: c, heads: make([]int, len(pa.shards))}
	}
	pa.advanceLive()
	src := snapshotSource{
		dedup:  pa.live.dedup,
		copies: pa.live.copies,
		cfg:    pa.cfg,
		lookup: pa.lookupShardStream,
	}
	snaps := src.take(now, window)
	pa.updateAggregateGauges()
	return snaps
}

// advanceLive replays newly logged shard observations into the live
// replica, in global capture order (the same k-way seq merge the final
// merge performs).
func (pa *ParallelAnalyzer) advanceLive() {
	lv := pa.live
	for {
		best := -1
		var bestSeq uint64
		for si, sh := range pa.shards {
			if lv.heads[si] >= len(sh.obs) {
				continue
			}
			if s := sh.obs[lv.heads[si]].seq; best < 0 || s < bestSeq {
				best, bestSeq = si, s
			}
		}
		if best < 0 {
			return
		}
		o := pa.shards[best].obs[lv.heads[best]]
		lv.heads[best]++
		unified := lv.dedup.Observe(meeting.StreamObs{
			Time: o.at, Flow: o.flow, Key: o.key, Seq: o.rtpSeq, TS: o.rtpTS,
		})
		lv.copies.Observe(unified, o.flow, o.pt, o.rtpSeq, o.rtpTS, o.at)
	}
}

// lookupShardStream resolves a stream record to its shard's metric
// engine (live, then archived). Valid only while quiesced.
func (pa *ParallelAnalyzer) lookupShardStream(id flow.MediaStreamID) *metrics.StreamMetrics {
	for _, sh := range pa.shards {
		if sm := sh.a.StreamMetrics[id]; sm != nil {
			return sm
		}
	}
	for _, sh := range pa.shards {
		for i := range sh.a.Finished {
			if sh.a.Finished[i].ID == id {
				return sh.a.Finished[i].Metrics
			}
		}
	}
	return nil
}

// updateAggregateGauges refreshes the unlabeled occupancy gauges with
// cross-shard totals (plus the live replica's cross-flow tables). Valid
// only while quiesced.
func (pa *ParallelAnalyzer) updateAggregateGauges() {
	if pa.o == nil {
		return
	}
	var flows, streams, tcp, finished int
	for _, sh := range pa.shards {
		tot := sh.a.Flows.Totals()
		flows += tot.Flows
		streams += tot.Streams
		tcp += len(sh.a.TCP)
		finished += len(sh.a.Finished)
	}
	pa.o.occ["flows"].Set(int64(flows))
	pa.o.occ["streams"].Set(int64(streams))
	pa.o.occ["tcp"].Set(int64(tcp))
	pa.o.occ["finished"].Set(int64(finished))
	pa.o.occ["dedup_streams"].Set(int64(pa.live.dedup.Len()))
	pa.o.occ["copy_pending"].Set(int64(pa.live.copies.Pending()))
}

// Result returns the merged sequential-equivalent analyzer. It panics if
// Finish has not run yet.
func (pa *ParallelAnalyzer) Result() *Analyzer {
	if pa.merged == nil {
		panic(fmt.Sprintf("core: ParallelAnalyzer.Result before Finish (%d workers)", pa.workers))
	}
	return pa.merged
}

// Summary computes the capture roll-up (after Finish).
func (pa *ParallelAnalyzer) Summary() Summary { return pa.Result().Summary() }

// Meetings runs the §4.3 grouping (after Finish).
func (pa *ParallelAnalyzer) Meetings() []meeting.Meeting { return pa.Result().Meetings() }

// StreamIDs returns observed stream identifiers in deterministic order
// (after Finish).
func (pa *ParallelAnalyzer) StreamIDs() []flow.MediaStreamID { return pa.Result().StreamIDs() }

// MetricsFor returns the metric engine of one stream (after Finish).
func (pa *ParallelAnalyzer) MetricsFor(id flow.MediaStreamID) (*metrics.StreamMetrics, bool) {
	return pa.Result().MetricsFor(id)
}
