package core

// Checkpoint/restore and windowed rotation for both engines.
//
// A checkpoint is the engine's complete mutable state behind the
// statecodec boundary: resume a run from it and the final report is
// byte-identical to a run that was never interrupted, at any worker
// count. The file format is
//
//	"ZLCP" | file version (u8) | engine kind (u8) | payload
//
// where kind 0 carries one sequential Analyzer payload and kind 1
// carries the parallel dispatcher's state, the reconciliation
// Dedup/CopyMatcher state, and each shard's analyzer state. The shard
// observation logs are never serialized: the checkpoint quiesces and
// advances the reconciliation pass first, so at encode time the logs
// are empty and the reconciliation state already reflects every
// dispatched packet.
//
// Restore never yields a partial engine: any decode error (truncated
// file, hostile count, unknown version) returns an error and the
// half-built engine is discarded.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net/netip"
	"slices"
	"strconv"
	"time"

	"zoomlens/internal/features"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/zoom"
)

const (
	checkpointMagic  = "ZLCP"
	checkpointFileV1 = 1
	// checkpointFileV2 appends a CRC32-C (Castagnoli) little-endian
	// trailer over all preceding bytes, so a torn or bit-flipped file is
	// detected before any decode work. Writers always emit V2; readers
	// still accept trailerless V1 files.
	checkpointFileV2 = 2

	engineKindSequential = 0
	engineKindParallel   = 1
	// Kinds 2/3 are delta records: mutations since the last checkpoint
	// of the matching engine kind, applied via ApplyDelta. They cannot
	// bootstrap an engine on their own, so RestoreAnalyzer rejects them.
	engineKindSequentialDelta = 2
	engineKindParallelDelta   = 3

	analyzerStateV1 = 1
	// analyzerStateV2 added the overload-shedding counters
	// (ShedPackets/ShedBytes). V1 payloads restore with them zero.
	analyzerStateV2 = 2
	// analyzerStateV3 added the protocol byte inside every encoded
	// zoom.StreamKey (the rtcproto plugin refactor) plus the per-protocol
	// decode counters and the STUN port-mismatch counter. V1/V2 payloads
	// interleave keys without the protocol byte and cannot be decoded;
	// they are rejected by version.
	analyzerStateV3 = 3
	// analyzerStateV4 appended the streaming feature-windower block
	// (presence flag + windower state) after the archived streams. V3
	// payloads restore with the feature layer absent.
	analyzerStateV4 = 4
	// parallelStateV2 dropped the per-shard observation logs (the
	// checkpoint reconciles them before encoding) and added the
	// reconciliation Dedup/CopyMatcher state. V1 files are rejected by
	// the version check rather than misread.
	parallelStateV2 = 2
	// parallelStateV3 added the dispatcher shedding counters. V2
	// payloads restore with them zero.
	parallelStateV3 = 3
	// parallelStateV4 carries analyzerStateV3 shard payloads (StreamKey
	// protocol byte); V2/V3 files are rejected by version.
	parallelStateV4 = 4
	// parallelStateV5 appended the reconciliation feature-windower block
	// after the reconciliation CopyMatcher, and carries analyzerStateV4
	// shard payloads. V4 files restore with the feature layer absent.
	parallelStateV5 = 5

	// maxCheckpointWorkers bounds the shard count a hostile checkpoint
	// can demand (each shard costs a goroutine and an analyzer).
	maxCheckpointWorkers = 4096
)

// crcTable is the Castagnoli polynomial used by the V2 file trailer.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

func writeCheckpointHeader(w *statecodec.Writer, kind uint8) {
	for i := 0; i < len(checkpointMagic); i++ {
		w.U8(checkpointMagic[i])
	}
	w.U8(checkpointFileV2)
	w.U8(kind)
}

// sealCheckpoint appends the V2 CRC trailer to the encoded record and
// writes the whole file in one Write.
func sealCheckpoint(w io.Writer, enc *statecodec.Writer) error {
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(enc.Bytes(), crcTable))
	enc.U8(tr[0])
	enc.U8(tr[1])
	enc.U8(tr[2])
	enc.U8(tr[3])
	_, err := w.Write(enc.Bytes())
	return err
}

// openCheckpoint validates a checkpoint file's magic, file version, and
// (for V2) CRC trailer, returning the engine kind and a reader
// positioned at the engine payload.
func openCheckpoint(data []byte) (kind uint8, r *statecodec.Reader, err error) {
	if len(data) < len(checkpointMagic)+2 {
		return 0, nil, fmt.Errorf("%w: not a checkpoint (short file)", statecodec.ErrCorrupt)
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return 0, nil, fmt.Errorf("%w: not a checkpoint (bad magic)", statecodec.ErrCorrupt)
	}
	switch v := data[len(checkpointMagic)]; v {
	case checkpointFileV1:
		// Legacy trailerless file: accepted as-is.
	case checkpointFileV2:
		if len(data) < len(checkpointMagic)+2+4 {
			return 0, nil, fmt.Errorf("%w: checkpoint too short for CRC trailer", statecodec.ErrCorrupt)
		}
		body, trailer := data[:len(data)-4], data[len(data)-4:]
		want := binary.LittleEndian.Uint32(trailer)
		if got := crc32.Checksum(body, crcTable); got != want {
			return 0, nil, fmt.Errorf("%w: checkpoint CRC mismatch (file %08x, computed %08x)", statecodec.ErrCorrupt, want, got)
		}
		data = body
	default:
		return 0, nil, fmt.Errorf("%w: checkpoint file version %d (supported: %d, %d)", statecodec.ErrCorrupt, v, checkpointFileV1, checkpointFileV2)
	}
	kind = data[len(checkpointMagic)+1]
	return kind, statecodec.NewReader(data[len(checkpointMagic)+2:]), nil
}

// readAllCheckpoint slurps a checkpoint stream into one buffer,
// right-sizing when the source announces its length.
func readAllCheckpoint(rd io.Reader) ([]byte, error) {
	if l, ok := rd.(interface{ Len() int }); ok {
		// bytes.Reader/bytes.Buffer style sources announce their size;
		// read into one right-sized buffer instead of letting io.ReadAll
		// double through the checkpoint (restores are on the recovery
		// path, where a 100 ms budget applies).
		data := make([]byte, l.Len())
		_, err := io.ReadFull(rd, data)
		return data, err
	}
	return io.ReadAll(rd)
}

// State encodes the analyzer's complete mutable state. Maps are written
// in sorted key order so identical state yields identical bytes.
func (a *Analyzer) State(w *statecodec.Writer) {
	w.U8(analyzerStateV4)
	w.U64(a.ShedPackets)
	w.U64(a.ShedBytes)
	w.U64(a.Packets)
	w.U64(a.Bytes)
	w.U64(a.ZoomUDP)
	w.U64(a.Undecodable)
	w.U64(a.TCPPackets)
	w.U64(a.STUNPackets)
	w.U64(a.STUNPortNonSTUN)
	w.Int(len(a.ProtoDecoded))
	for _, v := range a.ProtoDecoded {
		w.U64(v)
	}
	w.U64(a.DroppedByFilter)
	w.U64(a.UDPKeptPackets)
	w.U64(a.UDPKeptBytes)
	w.U64(a.PanicsRecovered)
	w.Bool(a.Truncated)
	w.U64(a.EvictedTCP)
	w.U64(a.RejectedTCPPackets)
	w.U64(a.FinishedDropped)
	w.Bool(a.finished)
	w.Time(a.firstTS)
	w.Time(a.lastTS)
	w.U64(a.compactEvery)
	w.Duration(a.compactIdle)

	a.filter.State(w)
	a.Flows.State(w)
	a.Dedup.State(w)
	a.Copies.State(w)

	ids := make([]flow.MediaStreamID, 0, len(a.StreamMetrics))
	for id := range a.StreamMetrics {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, flow.CompareStreamID)
	w.Int(len(ids))
	for _, id := range ids {
		id.Flow.EncodeTo(w)
		id.Key.EncodeTo(w)
		a.StreamMetrics[id].State(w)
	}

	clients := make([]netip.AddrPort, 0, len(a.TCP))
	for c := range a.TCP {
		clients = append(clients, c)
	}
	sortAddrPorts(clients)
	w.Int(len(clients))
	for _, c := range clients {
		w.AddrPort(c)
		a.TCP[c].State(w)
	}

	seen := make([]netip.AddrPort, 0, len(a.tcpSeen))
	for c := range a.tcpSeen {
		seen = append(seen, c)
	}
	sortAddrPorts(seen)
	w.Int(len(seen))
	for _, c := range seen {
		w.AddrPort(c)
		w.Time(a.tcpSeen[c])
	}

	w.Int(len(a.Finished))
	for i := range a.Finished {
		f := &a.Finished[i]
		f.ID.Flow.EncodeTo(w)
		f.ID.Key.EncodeTo(w)
		w.Time(f.LastSeen)
		f.Metrics.State(w)
	}

	// V4 feature block: the streaming windower, including pending rows,
	// so a restored run emits exactly the rows an uninterrupted one
	// would.
	w.Bool(a.feats != nil)
	if a.feats != nil {
		a.feats.State(w)
	}
}

func sortAddrPorts(aps []netip.AddrPort) {
	slices.SortFunc(aps, func(a, b netip.AddrPort) int {
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c
		}
		return int(a.Port()) - int(b.Port())
	})
}

// restoreState decodes a State payload into the receiver, replacing all
// mutable state but keeping its configuration and wiring (obs handles,
// obsSink, parser). The receiver must come from NewAnalyzer.
func (a *Analyzer) restoreState(r *statecodec.Reader) error {
	v := r.U8()
	switch v {
	case analyzerStateV3, analyzerStateV4:
		a.ShedPackets = r.U64()
		a.ShedBytes = r.U64()
	default:
		// V1/V2 payloads predate the StreamKey protocol byte and cannot
		// be decoded under the current key layout.
		r.Failf("core.Analyzer state version %d (supported: %d-%d)", v, analyzerStateV3, analyzerStateV4)
		return r.Err()
	}
	a.Packets = r.U64()
	a.Bytes = r.U64()
	a.ZoomUDP = r.U64()
	a.Undecodable = r.U64()
	a.TCPPackets = r.U64()
	a.STUNPackets = r.U64()
	a.STUNPortNonSTUN = r.U64()
	if np := r.Count(8); np != len(a.ProtoDecoded) {
		r.Failf("core.Analyzer proto counter count %d (want %d)", np, len(a.ProtoDecoded))
		return r.Err()
	}
	for i := range a.ProtoDecoded {
		a.ProtoDecoded[i] = r.U64()
	}
	a.DroppedByFilter = r.U64()
	a.UDPKeptPackets = r.U64()
	a.UDPKeptBytes = r.U64()
	a.PanicsRecovered = r.U64()
	a.Truncated = r.Bool()
	a.EvictedTCP = r.U64()
	a.RejectedTCPPackets = r.U64()
	a.FinishedDropped = r.U64()
	a.finished = r.Bool()
	a.firstTS = r.Time()
	a.lastTS = r.Time()
	a.compactEvery = r.U64()
	a.compactIdle = r.Duration()

	if err := a.filter.Restore(r); err != nil {
		return err
	}
	if err := a.Flows.Restore(r); err != nil {
		return err
	}
	if err := a.Dedup.Restore(r); err != nil {
		return err
	}
	if err := a.Copies.Restore(r); err != nil {
		return err
	}

	// Stream analyzers decode into chunk-allocated slabs: one allocation
	// per few thousand streams instead of one per stream. Restore-side GC
	// pressure was the difference between meeting the recovery-path time
	// budget and missing it. Chunking (rather than one slab sized by the
	// declared count) keeps a hostile count from forcing a huge up-front
	// allocation before the first element fails to decode.
	var smSlab []metrics.StreamMetrics
	nextSM := func(remaining int) *metrics.StreamMetrics {
		if len(smSlab) == 0 {
			smSlab = make([]metrics.StreamMetrics, min(remaining, 4096))
		}
		sm := &smSlab[0]
		smSlab = smSlab[1:]
		return sm
	}

	nm := r.Count(12)
	a.StreamMetrics = make(map[flow.MediaStreamID]*metrics.StreamMetrics, nm)
	for i := 0; i < nm; i++ {
		id := flow.MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		sm := nextSM(nm - i)
		if err := metrics.RestoreStreamMetricsInto(r, sm); err != nil {
			return err
		}
		if _, dup := a.StreamMetrics[id]; dup {
			r.Failf("core.Analyzer duplicate stream %v/%v", id.Flow, id.Key)
			return r.Err()
		}
		a.StreamMetrics[id] = sm
	}

	nt := r.Count(4)
	a.TCP = make(map[netip.AddrPort]*tcprtt.Tracker, nt)
	for i := 0; i < nt; i++ {
		c := r.AddrPort()
		tr := tcprtt.NewTracker()
		if err := tr.Restore(r); err != nil {
			return err
		}
		if _, dup := a.TCP[c]; dup {
			r.Failf("core.Analyzer duplicate TCP tracker %v", c)
			return r.Err()
		}
		a.TCP[c] = tr
	}

	ns := r.Count(4)
	a.tcpSeen = make(map[netip.AddrPort]time.Time, ns)
	for i := 0; i < ns; i++ {
		c := r.AddrPort()
		a.tcpSeen[c] = r.Time()
	}

	nf := r.Count(14)
	a.Finished = nil
	if nf > 0 {
		a.Finished = make([]FinishedStream, 0, nf)
	}
	for i := 0; i < nf; i++ {
		id := flow.MediaStreamID{Flow: layers.DecodeFiveTuple(r), Key: zoom.DecodeStreamKey(r)}
		last := r.Time()
		sm := nextSM(nf - i)
		if err := metrics.RestoreStreamMetricsInto(r, sm); err != nil {
			return err
		}
		a.Finished = append(a.Finished, FinishedStream{ID: id, LastSeen: last, Metrics: sm})
	}

	if v >= analyzerStateV4 {
		// The checkpoint's feature layer wins over the restoring
		// process's configuration: presence, window duration, and all
		// windower state (including undrained rows) come from the file.
		a.feats = nil
		if r.Bool() {
			a.feats = features.RestoreWindower(r)
			if a.feats == nil {
				return r.Err()
			}
		}
	}
	return r.Err()
}

// stateSizeHint estimates the encoded size so the writer can reserve
// once instead of doubling through megabytes (streams dominate at
// roughly 800 bytes each on production-shaped state).
func (a *Analyzer) stateSizeHint() int {
	return 4096 + 1024*(len(a.StreamMetrics)+len(a.Finished))
}

// Checkpoint writes the analyzer's complete state to w in one Write.
// A successful encode also resets delta tracking: the next
// CheckpointDelta describes mutations relative to this snapshot.
func (a *Analyzer) Checkpoint(w io.Writer) error {
	defer a.cfg.trace("checkpoint")()
	var enc statecodec.Writer
	enc.Grow(a.stateSizeHint())
	writeCheckpointHeader(&enc, engineKindSequential)
	a.State(&enc)
	if err := sealCheckpoint(w, &enc); err != nil {
		return err
	}
	a.markCheckpointed()
	return nil
}

// Checkpoint quiesces the shards (sync-batch barrier), advances the
// reconciliation pass so the observation logs are empty, and writes the
// dispatcher's state, the reconciliation state, and every shard's
// analyzer state. After Finish it checkpoints the merged result as a
// sequential payload — the parallel scaffolding is gone by then.
func (pa *ParallelAnalyzer) Checkpoint(w io.Writer) error {
	if pa.seq != nil {
		return pa.seq.Checkpoint(w)
	}
	if pa.merged != nil {
		return pa.merged.Checkpoint(w)
	}
	defer pa.cfg.trace("checkpoint")()
	pa.quiesce()
	pa.advanceRecon()
	var enc statecodec.Writer
	hint := 4096
	for _, sh := range pa.shards {
		hint += sh.a.stateSizeHint()
	}
	enc.Grow(hint)
	writeCheckpointHeader(&enc, engineKindParallel)
	enc.Int(pa.workers)
	enc.U8(parallelStateV5)
	enc.U64(pa.shedPackets)
	enc.U64(pa.shedBytes)
	enc.U64(pa.nextSeq)
	enc.U64(pa.packets)
	enc.U64(pa.bytes)
	enc.U64(pa.undecodable)
	enc.U64(pa.dropped)
	enc.U64(pa.panics)
	enc.Bool(pa.truncated)
	enc.Time(pa.firstTS)
	enc.Time(pa.lastTS)
	pa.filter.State(&enc)
	pa.rec.dedup.State(&enc)
	pa.rec.copies.State(&enc)
	// V5 feature block: the reconciliation windower (shards never carry
	// one — scaleLimits zeroes FeatureWindow).
	enc.Bool(pa.rec.win != nil)
	if pa.rec.win != nil {
		pa.rec.win.State(&enc)
	}
	for _, sh := range pa.shards {
		enc.U64(sh.ingested)
		sh.a.State(&enc)
	}
	if err := sealCheckpoint(w, &enc); err != nil {
		return err
	}
	pa.markCheckpointed()
	return nil
}

// restoreState decodes a parallel payload into a freshly constructed
// ParallelAnalyzer (quiescent: no batch has been dispatched yet, so the
// shard goroutines are parked on their channels and their analyzers are
// safely writable from this goroutine).
func (pa *ParallelAnalyzer) restoreState(r *statecodec.Reader) error {
	v := r.U8()
	switch v {
	case parallelStateV4, parallelStateV5:
		pa.shedPackets = r.U64()
		pa.shedBytes = r.U64()
	default:
		// V2/V3 shard payloads predate the StreamKey protocol byte.
		r.Failf("core.ParallelAnalyzer state version %d (supported: %d-%d)", v, parallelStateV4, parallelStateV5)
		return r.Err()
	}
	pa.nextSeq = r.U64()
	pa.packets = r.U64()
	pa.bytes = r.U64()
	pa.undecodable = r.U64()
	pa.dropped = r.U64()
	pa.panics = r.U64()
	pa.truncated = r.Bool()
	pa.firstTS = r.Time()
	pa.lastTS = r.Time()
	if err := pa.filter.Restore(r); err != nil {
		return err
	}
	if err := pa.rec.dedup.Restore(r); err != nil {
		return err
	}
	if err := pa.rec.copies.Restore(r); err != nil {
		return err
	}
	if v >= parallelStateV5 {
		// The checkpoint's feature layer wins over cfg (see the
		// sequential restore).
		pa.rec.win = nil
		if r.Bool() {
			pa.rec.win = features.RestoreWindower(r)
			if pa.rec.win == nil {
				return r.Err()
			}
		}
	}
	for _, sh := range pa.shards {
		sh.ingested = r.U64()
		if err := sh.a.restoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// abandon tears down a half-restored parallel analyzer's shard
// goroutines so a failed restore leaks nothing.
func (pa *ParallelAnalyzer) abandon() {
	for _, sh := range pa.shards {
		sh.cur = nil
		sh.ring.close()
	}
	for _, sh := range pa.shards {
		<-sh.done
	}
}

// RestoreAnalyzer rebuilds an engine from a checkpoint stream. The
// engine kind and worker count come from the checkpoint, not from cfg:
// a checkpoint taken at N workers restores to N workers (required for
// the shard-partitioned state to line up). cfg supplies everything that
// is configuration rather than state — networks, caps, quarantine, obs
// — and should match the original run's for byte-identical resumption.
//
// Errors never yield a partial engine: the input is either restored in
// full (including a trailing-bytes check) or rejected.
func RestoreAnalyzer(rd io.Reader, cfg Config) (Engine, error) {
	data, err := readAllCheckpoint(rd)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %w", err)
	}
	kind, r, err := openCheckpoint(data)
	if err != nil {
		return nil, err
	}
	switch kind {
	case engineKindSequential:
		a := NewAnalyzer(cfg)
		if err := a.restoreState(r); err != nil {
			return nil, err
		}
		if err := requireDrained(r); err != nil {
			return nil, err
		}
		a.markCheckpointed()
		return a, nil
	case engineKindParallel:
		workers := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if workers < 2 || workers > maxCheckpointWorkers {
			return nil, fmt.Errorf("%w: checkpoint worker count %d out of range", statecodec.ErrCorrupt, workers)
		}
		// Each shard payload is at least its version/state skeleton; a
		// worker count the remaining bytes cannot possibly cover is
		// corrupt, and rejecting it here avoids spinning up a large
		// engine only to tear it down on the first short read.
		if minShard := workers * 16; r.Remaining() < minShard {
			return nil, fmt.Errorf("%w: %d workers but only %d payload bytes", statecodec.ErrCorrupt, workers, r.Remaining())
		}
		pa := NewParallelAnalyzer(cfg, workers)
		if err := pa.restoreState(r); err != nil {
			pa.abandon()
			return nil, err
		}
		if err := requireDrained(r); err != nil {
			pa.abandon()
			return nil, err
		}
		pa.markCheckpointed()
		return pa, nil
	case engineKindSequentialDelta, engineKindParallelDelta:
		return nil, fmt.Errorf("%w: delta record cannot bootstrap an engine (apply it to a restored checkpoint)", statecodec.ErrCorrupt)
	default:
		return nil, fmt.Errorf("%w: unknown engine kind %d", statecodec.ErrCorrupt, kind)
	}
}

func requireDrained(r *statecodec.Reader) error {
	if err := r.Err(); err != nil {
		return err
	}
	if n := r.Remaining(); n > 0 {
		return fmt.Errorf("%w: %d trailing bytes after checkpoint payload", statecodec.ErrCorrupt, n)
	}
	return nil
}

// Rotate closes the current report window: it detaches everything
// accumulated so far into a finalized window analyzer (returned for
// rendering) and re-seeds the live state so the next window starts
// empty. Configuration and the capture filter's P2P table persist
// across windows — an armed P2P flow keeps matching after rotation,
// exactly as it would mid-window. now is the rotation boundary chosen
// by the caller; the window's own timestamps still come from its
// packets.
func (a *Analyzer) Rotate(now time.Time) *Analyzer {
	defer a.cfg.trace("rotate")()
	win := &Analyzer{
		cfg:                a.cfg,
		filter:             a.filter,
		Flows:              a.Flows,
		Dedup:              a.Dedup,
		StreamMetrics:      a.StreamMetrics,
		Copies:             a.Copies,
		TCP:                a.TCP,
		tcpSeen:            a.tcpSeen,
		Packets:            a.Packets,
		Bytes:              a.Bytes,
		ZoomUDP:            a.ZoomUDP,
		Undecodable:        a.Undecodable,
		TCPPackets:         a.TCPPackets,
		STUNPackets:        a.STUNPackets,
		STUNPortNonSTUN:    a.STUNPortNonSTUN,
		ProtoDecoded:       a.ProtoDecoded,
		DroppedByFilter:    a.DroppedByFilter,
		UDPKeptPackets:     a.UDPKeptPackets,
		UDPKeptBytes:       a.UDPKeptBytes,
		PanicsRecovered:    a.PanicsRecovered,
		Truncated:          a.Truncated,
		EvictedTCP:         a.EvictedTCP,
		RejectedTCPPackets: a.RejectedTCPPackets,
		FinishedDropped:    a.FinishedDropped,
		ShedPackets:        a.ShedPackets,
		ShedBytes:          a.ShedBytes,
		Finished:           a.Finished,
		firstTS:            a.firstTS,
		lastTS:             a.lastTS,
	}
	win.Finish()

	a.Flows = flow.NewTable()
	a.Flows.SetLimits(flow.Limits{
		MaxFlows:      a.cfg.MaxFlows,
		MaxStreams:    a.cfg.MaxStreams,
		MaxSubstreams: a.cfg.MaxSubstreams,
	})
	a.Dedup = meeting.NewDedup()
	a.Dedup.MaxStreams = a.cfg.MaxMeetingStreams
	a.Copies = metrics.NewCopyMatcher()
	a.Copies.MaxPending = effectiveMaxCopyPending(a.cfg)
	a.StreamMetrics = make(map[flow.MediaStreamID]*metrics.StreamMetrics)
	a.TCP = make(map[netip.AddrPort]*tcprtt.Tracker)
	a.tcpSeen = make(map[netip.AddrPort]time.Time)
	a.Packets, a.Bytes, a.ZoomUDP, a.Undecodable = 0, 0, 0, 0
	a.TCPPackets, a.STUNPackets, a.DroppedByFilter = 0, 0, 0
	a.STUNPortNonSTUN = 0
	a.ProtoDecoded = [rtcproto.NumIDs]uint64{}
	a.UDPKeptPackets, a.UDPKeptBytes, a.PanicsRecovered = 0, 0, 0
	a.EvictedTCP, a.RejectedTCPPackets, a.FinishedDropped = 0, 0, 0
	a.ShedPackets, a.ShedBytes = 0, 0
	a.Truncated = false
	a.Finished = nil
	a.firstTS, a.lastTS = time.Time{}, time.Time{}
	a.finished = false
	// The window took the cumulative eviction counts with it; re-baseline
	// the obs mirrors so the next window's deltas start from zero.
	a.o.resetMirrors()
	// Rotation starts a fresh state lineage: any checkpoint chain built
	// before it no longer describes this analyzer, so delta tracking
	// disarms until the next full checkpoint.
	a.disarmDelta()
	return win
}

// Rotate quiesces the shards, produces the window's merged report (the
// same deterministic merge Finish performs), and re-seeds every shard
// for the next window. The capture filter — dispatcher-owned and
// cross-window by design — is the only mutable state that survives.
// Rotate after Finish panics: the shards are gone.
func (pa *ParallelAnalyzer) Rotate(now time.Time) *Analyzer {
	if pa.seq != nil {
		return pa.seq.Rotate(now)
	}
	if pa.merged != nil {
		panic(fmt.Sprintf("core: ParallelAnalyzer.Rotate after Finish (%d workers)", pa.workers))
	}
	defer pa.cfg.trace("rotate")()
	pa.quiesce()
	// The feature windower is continuous across report windows (its
	// windows live on the capture clock, not the report grid): advance
	// reconciliation so it has consumed every dispatched packet, then
	// detach it so the merge's window report does not flush or adopt it.
	pa.advanceRecon()
	liveWin := pa.rec.win
	pa.rec.win = nil
	win := pa.merge()

	pa.packets, pa.bytes, pa.undecodable, pa.dropped, pa.panics = 0, 0, 0, 0, 0
	pa.shedPackets, pa.shedBytes = 0, 0
	pa.truncated = false
	pa.firstTS, pa.lastTS = time.Time{}, time.Time{}
	shardCfg := scaleLimits(pa.cfg, pa.workers)
	for i := range pa.shards {
		sh := pa.shards[i]
		na := NewAnalyzer(shardCfg)
		na.bindObs(strconv.Itoa(i))
		na.obsSink = sh.logObs
		sh.a = na
		sh.ingested = 0
	}
	// merge adopted the reconciliation Dedup/CopyMatcher into the window
	// report; the next window starts with fresh ones. The detached
	// feature windower reattaches — feature windows span report
	// rotations.
	pa.rec = newReconState(pa.cfg)
	pa.rec.win = liveWin
	// Fresh shard analyzers re-registered the unlabeled cap gauges with
	// their per-shard values; re-register the dispatcher's handles so the
	// unlabeled series reflect the global configuration again (same dance
	// as NewParallelAnalyzer).
	pa.o = newCoreObs(pa.cfg.Obs, "", pa.cfg)
	// Fresh shards and reconciliation state are unarmed; disarm the
	// dispatcher-level chain flag too so the next delta attempt reports
	// unavailable until a full checkpoint re-anchors the chain.
	pa.deltaArmed = false
	return win
}
