package core

import (
	"io"
	"sync"
	"time"

	"zoomlens/internal/pcap"
)

// Quarantine is a forensic ring buffer of frames whose processing
// panicked. A production tap must not crash on a hostile packet, but it
// must not lose the evidence either: the analyzer recovers, counts, and
// deposits the offending frame here, and the operator flushes the ring
// to a classic pcap file for offline dissection (the `-quarantine` flag
// of the cmd tools).
//
// The ring keeps the most recent capacity frames. It is safe for
// concurrent use — parallel analyzer shards share one ring.
type Quarantine struct {
	mu     sync.Mutex
	cap    int
	frames  []QuarantinedFrame // ring storage, oldest at (next % cap) once full
	next    int
	total   uint64
	dropped uint64
}

// QuarantinedFrame is one captured offender.
type QuarantinedFrame struct {
	Time   time.Time
	Reason string
	Frame  []byte

	// buf backs Frame while the entry sits in the ring; it is drawn from
	// the package framePool and recycled when the slot is overwritten.
	// Entries returned by Frames carry a fresh copy and a nil buf.
	buf *pbatch
}

// DefaultQuarantineCapacity bounds the forensic ring when the caller
// does not choose: enough to dissect an attack burst, small enough to
// never matter for memory.
const DefaultQuarantineCapacity = 1024

// NewQuarantine builds a ring holding up to capacity frames
// (DefaultQuarantineCapacity if capacity <= 0).
func NewQuarantine(capacity int) *Quarantine {
	if capacity <= 0 {
		capacity = DefaultQuarantineCapacity
	}
	return &Quarantine{cap: capacity}
}

// Add deposits one frame. The frame bytes are copied into a pooled
// buffer; callers may reuse their buffer.
func (q *Quarantine) Add(at time.Time, frame []byte, reason string) {
	b := getBatch()
	b.data = append(b.data, frame...)
	qf := QuarantinedFrame{Time: at, Reason: reason, Frame: b.data, buf: b}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.total++
	if len(q.frames) < q.cap {
		q.frames = append(q.frames, qf)
		q.next = len(q.frames) % q.cap
		return
	}
	if old := q.frames[q.next].buf; old != nil {
		putBatch(old)
	}
	q.dropped++
	q.frames[q.next] = qf
	q.next = (q.next + 1) % q.cap
}

// Total returns how many frames were ever quarantined (including any
// that have since been overwritten in the ring).
func (q *Quarantine) Total() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}

// Dropped returns how many quarantined frames were overwritten before
// being flushed — the ring saturating sheds the oldest evidence with
// accounting rather than growing or blocking the packet path.
func (q *Quarantine) Dropped() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Frames returns the retained frames, oldest first. Frame bytes are
// fresh copies owned by the caller: the ring's own storage is pooled
// and recycled as newer offenders overwrite old slots.
func (q *Quarantine) Frames() []QuarantinedFrame {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantinedFrame, 0, len(q.frames))
	if len(q.frames) < q.cap {
		out = append(out, q.frames...)
	} else {
		out = append(out, q.frames[q.next:]...)
		out = append(out, q.frames[:q.next]...)
	}
	for i := range out {
		cp := make([]byte, len(out[i].Frame))
		copy(cp, out[i].Frame)
		out[i].Frame = cp
		out[i].buf = nil
	}
	return out
}

// WritePCAP flushes the retained frames, oldest first, as a classic
// nanosecond pcap (Ethernet link type, matching the analyzer's input).
func (q *Quarantine) WritePCAP(w io.Writer) error {
	pw, err := pcap.NewWriter(w, pcap.WriterOptions{Nanosecond: true})
	if err != nil {
		return err
	}
	for _, f := range q.Frames() {
		if err := pw.WriteRecord(f.Time, f.Frame); err != nil {
			return err
		}
	}
	return nil
}
