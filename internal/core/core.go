// Package core assembles the paper's full passive-measurement pipeline:
// packets in, per-stream performance metrics and per-meeting structure
// out.
//
// The Analyzer consumes captured packets (from a pcap file or live from
// the simulator), applies the capture filter (§4.1/§6.1), parses Zoom
// encapsulations (§4.2), demultiplexes flows and streams (Figure 6),
// unifies stream copies and groups them into meetings (§4.3), and
// computes every metric of §5: bit rates, frame rate/size, latency (RTP
// copy matching and TCP RTT), frame-level jitter, loss/retransmission,
// and frame delay.
package core

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/features"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/obs"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtcproto"
	"zoomlens/internal/stun"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/zoom"
)

// Config parameterizes an Analyzer.
type Config struct {
	// ZoomNetworks and CampusNetworks configure the capture filter.
	ZoomNetworks   []netip.Prefix
	CampusNetworks []netip.Prefix
	// PreFiltered indicates the input contains only Zoom traffic (e.g.
	// the output of cmd/zoomcap); the filter still runs for P2P
	// bookkeeping but non-matching packets are analyzed anyway.
	PreFiltered bool

	// Protos is the ordered set of protocol plugins the UDP media path
	// tries; the first whose Probe accepts a payload claims it. Nil
	// means rtcproto.DefaultSet() (every registered plugin in canonical
	// probe order). A single-element set pins the analyzer to one
	// application's decoder.
	Protos []rtcproto.Plugin

	// Bounded-state hardening for continuous deployments (§6's 12-hour
	// tap, and beyond). All zero values mean unlimited/disabled — the
	// right default for one-shot trace analysis, where results must not
	// depend on caps.

	// MaxFlows, MaxStreams, and MaxSubstreams bound the flow table (see
	// flow.Limits). Entries turned away at a cap are counted, not
	// silently dropped.
	MaxFlows      int
	MaxStreams    int
	MaxSubstreams int
	// MaxTCP caps the number of TCP RTT trackers (one per Zoom control
	// client endpoint).
	MaxTCP int
	// MaxMeetingStreams caps the duplicate-stream detector's records.
	MaxMeetingStreams int
	// MaxFinished caps archived finished streams; at the cap the oldest
	// archive is dropped (and counted) to admit the newest.
	MaxFinished int
	// FlowTTL enables idle eviction: every MaintainEvery packets, flows,
	// streams, TCP trackers, and metric engines idle longer than FlowTTL
	// are evicted (metric engines are finalized and archived first), with
	// their report contributions preserved.
	FlowTTL time.Duration
	// MaintainEvery is the eviction cadence in packets (default 4096
	// when FlowTTL is set).
	MaintainEvery uint64
	// MaxCopyPending caps the RTT copy-matcher's pending map (§5.3
	// method 1). Zero derives a bound from MaxStreams when that is set,
	// otherwise the matcher's own default applies.
	MaxCopyPending int
	// Quarantine, when non-nil, receives the offending frame whenever
	// per-packet processing panics (see Quarantine). It may be shared
	// across analyzers; it is safe for concurrent use.
	Quarantine *Quarantine

	// Shed lets the parallel dispatcher drop packets (with accounting)
	// when a shard ring is full instead of blocking on it. Off by
	// default: a blocked dispatcher preserves the byte-identical
	// sequential-equivalence invariant, which shedding necessarily gives
	// up. Live taps that must never stall ingest turn it on and watch
	// the shed counters. The sequential analyzer has no queues and never
	// sheds.
	Shed bool

	// FeatureWindow, when positive, enables the streaming feature
	// windower: per-stream feature rows on the capture clock over
	// epoch-aligned windows of this duration (see internal/features).
	// Rows accumulate until DrainFeatures. Zero disables the layer
	// entirely — no per-packet cost.
	FeatureWindow time.Duration

	// Obs, when non-nil, receives live pipeline metrics: per-stage packet
	// counters, state-table occupancy against the caps above, eviction
	// and panic counts (see internal/obs). Nil costs one branch per hook.
	Obs *obs.Registry
	// Tracer, when non-nil, receives coarse stage timings (finish, merge,
	// snapshot). Nil is a no-op.
	Tracer obs.Tracer
}

// trace wraps Config.Tracer as a nil-safe stage timer.
func (cfg Config) trace(stage string) func() { return obs.Stage(cfg.Tracer, stage) }

// Analyzer is the end-to-end pipeline. Feed packets in capture order via
// Packet (or a whole file via ReadPCAP), then call Finish once before
// reading results.
type Analyzer struct {
	cfg    Config
	filter *capture.Filter
	parser layers.Parser
	// protos is the resolved plugin probe chain (Config.Protos, or the
	// canonical default set).
	protos []rtcproto.Plugin

	Flows *flow.Table
	Dedup *meeting.Dedup
	// StreamMetrics holds one metric engine per observed stream record
	// (per flow+SSRC+type, not per unified stream: SFU copies are
	// analyzed independently, as the paper does).
	StreamMetrics map[flow.MediaStreamID]*metrics.StreamMetrics
	// Copies matches stream copies for §5.3 method-1 RTT samples.
	Copies *metrics.CopyMatcher
	// TCP holds one RTT tracker per Zoom control connection, keyed by
	// the client-side endpoint.
	TCP map[netip.AddrPort]*tcprtt.Tracker

	// Totals.
	Packets     uint64
	Bytes       uint64
	ZoomUDP     uint64
	Undecodable uint64
	TCPPackets  uint64
	STUNPackets uint64
	// STUNPortNonSTUN counts packets on the well-known STUN port whose
	// payload lacks STUN framing. They are NOT counted in STUNPackets;
	// they fall through to the protocol decoders like any other UDP
	// payload.
	STUNPortNonSTUN uint64
	// ProtoDecoded counts successfully decoded media packets per
	// protocol plugin, indexed by rtcproto.ID.
	ProtoDecoded    [rtcproto.NumIDs]uint64
	DroppedByFilter uint64
	// UDPKeptPackets/UDPKeptBytes cover kept (Zoom) UDP traffic whether
	// or not it decoded — the Table 2/3 denominators.
	UDPKeptPackets uint64
	UDPKeptBytes   uint64
	// PanicsRecovered counts packets whose processing panicked; each was
	// quarantined (when a Quarantine is configured) instead of crashing
	// the process.
	PanicsRecovered uint64
	// Truncated reports that ReadPCAP hit a mid-record cut: everything up
	// to the cut was analyzed and the results are valid partial results.
	Truncated bool
	// EvictedTCP and RejectedTCPPackets are the TCP-tracker counterparts
	// of the flow table's eviction stats.
	EvictedTCP         uint64
	RejectedTCPPackets uint64
	// FinishedDropped counts archived streams discarded at MaxFinished.
	FinishedDropped uint64
	// ShedPackets/ShedBytes count packets dropped by overload shedding
	// (Config.Shed) instead of being analyzed. Only the parallel
	// dispatcher sheds; on a sequential analyzer these are nonzero only
	// after a merge or restore carried them over.
	ShedPackets uint64
	ShedBytes   uint64

	// Finished holds archived streams from Compact.
	Finished []FinishedStream

	compactEvery uint64
	compactIdle  time.Duration

	// finished makes Finish idempotent: ReadPCAP finishes internally, so
	// a caller following it with its own Finish must not flush (and
	// double-count) per-stream state again. Ingesting another packet
	// re-arms it.
	finished bool

	// tcpSeen tracks per-client TCP activity for idle eviction.
	tcpSeen map[netip.AddrPort]time.Time

	// Delta-checkpoint tracking (see delta.go). deltaArmed turns on
	// tombstone/dirty-set recording; it is set by the first checkpoint
	// encode, so runs that never checkpoint pay nothing beyond the
	// per-record dirty bools. ckPackets binds a delta to the exact
	// packet count of the checkpoint it extends; ckFinishedLen and
	// ckHeadDrops track the archived-stream baseline (the archive is
	// append-plus-head-drop only, so a delta carries the head-drop count
	// and the appended tail).
	deltaArmed    bool
	deltaOverflow bool
	dirtyTCP      map[netip.AddrPort]struct{}
	deadTCP       []netip.AddrPort
	deadStreams   []flow.MediaStreamID
	ckPackets     uint64
	ckFinishedLen int
	ckHeadDrops   int

	// panicHook, when set, runs inside the recover() scope of every
	// packet before parsing. Tests use it to inject deterministic panics;
	// production never sets it.
	panicHook func(at time.Time, frame []byte)

	firstTS time.Time
	lastTS  time.Time

	// o holds this analyzer's live-metric handles (nil when Config.Obs
	// is nil; every hook is nil-receiver safe).
	o *coreObs

	// recScratch is the reused flow observation passed to Flows.Observe
	// (which copies what it keeps), saving one heap allocation per media
	// packet on the hot path.
	recScratch flow.Record

	// obsSink, when non-nil, receives each media-stream observation
	// instead of it being fed to Dedup and Copies directly. The sharded
	// parallel analyzer uses this to log observations per shard and
	// replay them in global capture order at merge time (stream
	// unification and copy matching are inherently cross-flow, so they
	// cannot run independently per shard). obsSeq is the global capture
	// sequence number of the packet currently being ingested.
	obsSink func(mediaObs)
	obsSeq  uint64

	// feats is the streaming feature windower (Config.FeatureWindow).
	// It consumes the same globally ordered observation stream as
	// Dedup/Copies: inline here when the analyzer runs sequentially,
	// or on the reconciliation path when this analyzer's observations
	// are routed through obsSink (parallel shards, cluster workers) —
	// never both.
	feats *features.Windower
}

// NewAnalyzer builds an analyzer.
func NewAnalyzer(cfg Config) *Analyzer {
	if cfg.FlowTTL > 0 && cfg.MaintainEvery == 0 {
		cfg.MaintainEvery = 4096
	}
	protos := cfg.Protos
	if protos == nil {
		protos = rtcproto.DefaultSet()
	}
	a := &Analyzer{
		cfg:    cfg,
		protos: protos,
		filter: capture.NewFilter(capture.Config{
			ZoomNetworks:   cfg.ZoomNetworks,
			CampusNetworks: cfg.CampusNetworks,
			GenericRTC:     rtcproto.HasNonZoom(protos),
		}),
		Flows:         flow.NewTable(),
		Dedup:         meeting.NewDedup(),
		StreamMetrics: make(map[flow.MediaStreamID]*metrics.StreamMetrics),
		Copies:        metrics.NewCopyMatcher(),
		TCP:           make(map[netip.AddrPort]*tcprtt.Tracker),
		tcpSeen:       make(map[netip.AddrPort]time.Time),
		dirtyTCP:      make(map[netip.AddrPort]struct{}),
	}
	a.Flows.SetLimits(flow.Limits{
		MaxFlows:      cfg.MaxFlows,
		MaxStreams:    cfg.MaxStreams,
		MaxSubstreams: cfg.MaxSubstreams,
	})
	a.Dedup.MaxStreams = cfg.MaxMeetingStreams
	a.Copies.MaxPending = effectiveMaxCopyPending(cfg)
	if cfg.FeatureWindow > 0 {
		a.feats = features.NewWindower(cfg.FeatureWindow)
	}
	a.bindObs("")
	return a
}

// effectiveMaxCopyPending resolves the copy-matcher cap: explicit config
// wins; a bounded deployment without one still gets a cap derived from
// the stream cap (pending entries are per unmatched packet, so scale
// well above it); zero defers to the matcher's own default.
func effectiveMaxCopyPending(cfg Config) int {
	if cfg.MaxCopyPending > 0 {
		return cfg.MaxCopyPending
	}
	if cfg.MaxStreams > 0 {
		return 256 * cfg.MaxStreams
	}
	return 0
}

// Packet ingests one captured frame. The frame is borrowed for the
// duration of the call — anything the analyzer retains (quarantined
// frames) is copied — so callers may reuse the buffer immediately,
// including the borrowed Data of pcap.NextInto. A panic anywhere in
// per-packet processing is recovered, counted, and (when configured)
// quarantined — one hostile frame must not take down a production tap.
func (a *Analyzer) Packet(at time.Time, frame []byte) {
	a.finished = false
	a.Packets++
	a.Bytes += uint64(len(frame))
	a.o.packetIn(len(frame))
	if a.o != nil && a.Packets%obsUpdateEvery == 0 {
		a.updateObsGauges()
	}
	if a.firstTS.IsZero() || at.Before(a.firstTS) {
		a.firstTS = at
	}
	if at.After(a.lastTS) {
		a.lastTS = at
	}
	a.safeProcess(at, frame)
	a.maybeCompact(at)
	a.maybeMaintain(at)
}

// safeProcess runs the parse → filter → ingest path under a panic
// quarantine.
func (a *Analyzer) safeProcess(at time.Time, frame []byte) {
	defer func() {
		if r := recover(); r != nil {
			a.PanicsRecovered++
			a.o.panicRecovered()
			if a.cfg.Quarantine != nil {
				a.cfg.Quarantine.Add(at, frame, fmt.Sprintf("panic: %v", r))
			}
		}
	}()
	if a.panicHook != nil {
		a.panicHook(at, frame)
	}
	var pkt layers.Packet
	if err := a.parser.Parse(frame, &pkt); err != nil {
		a.Undecodable++
		a.o.undecodable()
		return
	}
	verdict := a.filter.Classify(&pkt, at)
	if !verdict.Keep() && !a.cfg.PreFiltered {
		a.DroppedByFilter++
		a.o.filtered()
		return
	}
	a.ingest(at, &pkt, len(frame))
}

// ingest processes a packet that has already been parsed and admitted by
// the capture filter. The sharded parallel analyzer calls this directly
// on worker-local analyzers after central classification.
func (a *Analyzer) ingest(at time.Time, pkt *layers.Packet, wireLen int) {
	switch {
	case pkt.HasTCP:
		a.TCPPackets++
		a.o.tcp()
		a.observeTCP(at, pkt)
	case pkt.HasUDP:
		a.observeUDP(at, pkt, wireLen)
	}
}

func (a *Analyzer) observeTCP(at time.Time, pkt *layers.Packet) {
	fromClient := a.isZoomAddr(pkt.DstAddr()) && !a.isZoomAddr(pkt.SrcAddr())
	var client netip.AddrPort
	if fromClient {
		client = netip.AddrPortFrom(pkt.SrcAddr(), pkt.TCP.SrcPort)
	} else {
		client = netip.AddrPortFrom(pkt.DstAddr(), pkt.TCP.DstPort)
	}
	tr := a.TCP[client]
	if tr == nil {
		if a.cfg.MaxTCP > 0 && len(a.TCP) >= a.cfg.MaxTCP {
			a.RejectedTCPPackets++
			return
		}
		tr = tcprtt.NewTracker()
		a.TCP[client] = tr
	}
	a.tcpSeen[client] = at
	if a.deltaArmed {
		a.dirtyTCP[client] = struct{}{}
	}
	tr.Observe(at, fromClient, &pkt.TCP, len(pkt.Payload))
}

func (a *Analyzer) observeUDP(at time.Time, pkt *layers.Packet, wireLen int) {
	// Classify STUN by payload framing (magic cookie + length), not by
	// port alone: Zoom P2P sends STUN on the media ports too, and a
	// non-STUN payload that merely lands on port 3478 must not be
	// silently absorbed into STUNPackets.
	if stun.Is(pkt.Payload) {
		a.STUNPackets++
		a.o.stun()
		return
	}
	if pkt.UDP.SrcPort == stun.Port || pkt.UDP.DstPort == stun.Port {
		// Port-only match: count the mismatch separately and let the
		// packet fall through to the protocol decoders.
		a.STUNPortNonSTUN++
	}
	a.UDPKeptPackets++
	a.UDPKeptBytes += uint64(wireLen)
	// Protocol plugin chain: the first plugin whose Probe accepts the
	// payload claims it — whether or not its Decode then succeeds — so
	// packet ownership is deterministic and independent of decode
	// strictness. Probes are mutually exclusive by construction (Zoom
	// first bytes < 0x80, RTP version bits require 0x80..0xBF).
	var mo rtcproto.MediaObs
	decoded := false
	for _, p := range a.protos {
		if !p.Probe(pkt.Payload) {
			continue
		}
		var err error
		mo, err = p.Decode(pkt.Payload)
		decoded = err == nil
		break
	}
	if !decoded {
		a.Undecodable++
		a.o.undecodable()
		a.o.protoUndecoded()
		return
	}
	proto := mo.Proto
	zp := mo.Pkt
	a.ProtoDecoded[proto]++
	a.o.protoDecoded(proto)
	if proto == rtcproto.IDZoom {
		a.ZoomUDP++
		a.o.zoomUDP()
	}
	ft, ok := pkt.FiveTuple()
	if !ok {
		return
	}
	a.recScratch = flow.Record{
		Time:          at,
		Flow:          ft,
		WireLen:       wireLen,
		UDPPayloadLen: len(pkt.Payload),
		Proto:         uint8(proto),
		Z:             zp,
	}
	st := a.Flows.Observe(&a.recScratch)

	if !zp.IsMedia() {
		return
	}
	a.o.media()
	if st == nil {
		// The flow table turned the packet away at a state cap (and
		// counted it); skip stream-level state too so caps bound the
		// whole pipeline, not just the table.
		return
	}
	key := zoom.StreamKey{SSRC: zp.RTP.SSRC, Type: zp.Media.Type, Proto: uint8(proto)}
	if a.obsSink != nil {
		a.obsSink(mediaObs{
			seq: a.obsSeq, at: at, flow: ft, key: key,
			wireLen: int32(wireLen), payloadLen: int32(len(pkt.Payload)),
			pt: zp.RTP.PayloadType, rtpSeq: zp.RTP.SequenceNumber, rtpTS: zp.RTP.Timestamp,
		})
	} else {
		unified := a.Dedup.Observe(meeting.StreamObs{
			Time: at, Flow: ft, Key: key,
			Seq: zp.RTP.SequenceNumber, TS: zp.RTP.Timestamp,
		})
		a.Copies.Observe(unified, ft, zp.RTP.PayloadType, zp.RTP.SequenceNumber, zp.RTP.Timestamp, at)
		if a.feats != nil {
			a.feats.Observe(features.Obs{
				At: at, Flow: ft, Key: key,
				WireLen: wireLen, PayloadLen: len(pkt.Payload),
				PT: zp.RTP.PayloadType, RTPSeq: zp.RTP.SequenceNumber, RTPTS: zp.RTP.Timestamp,
			})
		}
	}

	id := flow.MediaStreamID{Flow: ft, Key: key}
	sm := a.StreamMetrics[id]
	if sm == nil {
		sm = metrics.NewStreamMetrics(zp.Media.Type)
		a.StreamMetrics[id] = sm
	}
	sm.Observe(at, wireLen, &zp.Media, &zp.RTP)
	sm.MarkDirty()
}

func (a *Analyzer) isZoomAddr(addr netip.Addr) bool { return a.cfg.isZoomAddr(addr) }

func (cfg Config) isZoomAddr(addr netip.Addr) bool {
	for _, p := range cfg.ZoomNetworks {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

func (cfg Config) isCampusAddr(addr netip.Addr) bool {
	for _, p := range cfg.CampusNetworks {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// clientOf is the protocol-aware client derivation every grouping
// consumer (Meetings, MeetingReports, snapshots) uses: Zoom streams keep
// the Zoom-server convention, other protocols use campus membership.
func (cfg Config) clientOf() func(layers.FiveTuple, zoom.StreamKey) netip.AddrPort {
	return meeting.ClientOfProto(cfg.isZoomAddr, cfg.isCampusAddr)
}

// Finish flushes all per-stream state. It is idempotent: repeated calls
// without an intervening Packet are no-ops, so following ReadPCAP (which
// finishes internally) with an explicit Finish is safe.
func (a *Analyzer) Finish() {
	if a.finished {
		return
	}
	a.finished = true
	defer a.cfg.trace("finish")()
	for _, sm := range a.StreamMetrics {
		sm.Finish()
	}
	if a.feats != nil {
		a.feats.FinishFlush()
	}
	a.updateObsGauges()
}

// DrainFeatures returns the feature rows emitted since the previous
// drain (nil when the feature layer is disabled). Drain cadence never
// affects row content or order.
func (a *Analyzer) DrainFeatures() []features.Row {
	if a.feats == nil {
		return nil
	}
	return a.feats.Drain()
}

// ReadPCAP feeds an entire capture stream (classic pcap or pcapng)
// through the analyzer and finishes. A capture cut mid-record (a crashed
// or interrupted tcpdump) is not an error: everything before the cut is
// analyzed and a.Truncated is set.
func (a *Analyzer) ReadPCAP(r io.Reader) error {
	s, err := pcap.OpenStream(r)
	if err != nil {
		return err
	}
	var rec pcap.Record
	for {
		err := s.NextInto(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Packet(rec.Timestamp, rec.Data)
	}
	if s.Truncated() {
		a.Truncated = true
	}
	a.Finish()
	return nil
}

// Meetings runs the §4.3 grouping over everything observed.
func (a *Analyzer) Meetings() []meeting.Meeting {
	return meeting.Group(a.Dedup.RecordsBy(a.cfg.clientOf()))
}

// Summary is the Table 6 style capture roll-up, extended with the
// hardening counters a continuous deployment needs to trust partial
// results: how much state was aged out or turned away at caps, how many
// packets panicked (and were quarantined), and whether the input was
// truncated.
type Summary struct {
	Duration    time.Duration
	Packets     uint64
	Bytes       uint64
	ZoomUDP     uint64
	TCPPackets  uint64
	STUNPackets uint64
	// STUNPortNonSTUN counts packets on the STUN port that lacked STUN
	// framing (they went to the decoders, not into STUNPackets).
	STUNPortNonSTUN uint64
	// ProtoDecoded counts decoded media packets per protocol plugin,
	// indexed by rtcproto.ID (0 = zoom, 1 = webrtc).
	ProtoDecoded [rtcproto.NumIDs]uint64
	Undecodable  uint64
	Flows        int
	Streams      int
	Meetings     int
	// EvictedFlows/EvictedStreams count idle-TTL evictions; the evicted
	// entries' packets and bytes remain in the report aggregates.
	EvictedFlows   uint64
	EvictedStreams uint64
	// RejectedPackets counts packets refused new state at a hard cap
	// (flow, stream, substream, or TCP tracker).
	RejectedPackets uint64
	// PanicsRecovered counts packets whose processing panicked and was
	// contained.
	PanicsRecovered uint64
	// ShedPackets/ShedBytes count packets dropped by overload shedding
	// (Config.Shed): received and counted, but never analyzed.
	ShedPackets uint64
	ShedBytes   uint64
	// Truncated marks a capture cut mid-record: the summary covers the
	// readable prefix.
	Truncated bool
}

// Summary computes the capture roll-up.
func (a *Analyzer) Summary() Summary {
	tot := a.Flows.Totals()
	ev := a.Flows.Evictions()
	return Summary{
		Duration:        a.lastTS.Sub(a.firstTS),
		Packets:         a.Packets,
		Bytes:           a.Bytes,
		ZoomUDP:         a.ZoomUDP,
		TCPPackets:      a.TCPPackets,
		STUNPackets:     a.STUNPackets,
		STUNPortNonSTUN: a.STUNPortNonSTUN,
		ProtoDecoded:    a.ProtoDecoded,
		Undecodable:     a.Undecodable,
		Flows:           tot.Flows,
		Streams:         tot.Streams,
		Meetings:        len(a.Meetings()),
		EvictedFlows:    ev.EvictedFlows,
		EvictedStreams:  ev.EvictedStreams,
		RejectedPackets: ev.RejectedFlowPackets + ev.RejectedStreamPackets + ev.RejectedSubstreamPackets + a.RejectedTCPPackets,
		PanicsRecovered: a.PanicsRecovered,
		ShedPackets:     a.ShedPackets,
		ShedBytes:       a.ShedBytes,
		Truncated:       a.Truncated,
	}
}

// StreamIDs returns the observed stream identifiers in deterministic
// order.
func (a *Analyzer) StreamIDs() []flow.MediaStreamID {
	// Flow keys are rendered once up front: calling Flow.String() inside
	// the comparator allocates O(n log n) strings.
	type keyed struct {
		id      flow.MediaStreamID
		flowKey string
	}
	ks := make([]keyed, 0, len(a.StreamMetrics))
	for id := range a.StreamMetrics {
		ks = append(ks, keyed{id: id, flowKey: id.Flow.String()})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].id.Key.SSRC != ks[j].id.Key.SSRC {
			return ks[i].id.Key.SSRC < ks[j].id.Key.SSRC
		}
		if ks[i].id.Key.Type != ks[j].id.Key.Type {
			return ks[i].id.Key.Type < ks[j].id.Key.Type
		}
		return ks[i].flowKey < ks[j].flowKey
	})
	out := make([]flow.MediaStreamID, len(ks))
	for i, k := range ks {
		out[i] = k.id
	}
	return out
}

// MetricsFor returns the metric engine of one stream.
func (a *Analyzer) MetricsFor(id flow.MediaStreamID) (*metrics.StreamMetrics, bool) {
	sm, ok := a.StreamMetrics[id]
	return sm, ok
}
