// Package core assembles the paper's full passive-measurement pipeline:
// packets in, per-stream performance metrics and per-meeting structure
// out.
//
// The Analyzer consumes captured packets (from a pcap file or live from
// the simulator), applies the capture filter (§4.1/§6.1), parses Zoom
// encapsulations (§4.2), demultiplexes flows and streams (Figure 6),
// unifies stream copies and groups them into meetings (§4.3), and
// computes every metric of §5: bit rates, frame rate/size, latency (RTP
// copy matching and TCP RTT), frame-level jitter, loss/retransmission,
// and frame delay.
package core

import (
	"io"
	"net/netip"
	"sort"
	"time"

	"zoomlens/internal/capture"
	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/metrics"
	"zoomlens/internal/pcap"
	"zoomlens/internal/tcprtt"
	"zoomlens/internal/zoom"
)

// Config parameterizes an Analyzer.
type Config struct {
	// ZoomNetworks and CampusNetworks configure the capture filter.
	ZoomNetworks   []netip.Prefix
	CampusNetworks []netip.Prefix
	// PreFiltered indicates the input contains only Zoom traffic (e.g.
	// the output of cmd/zoomcap); the filter still runs for P2P
	// bookkeeping but non-matching packets are analyzed anyway.
	PreFiltered bool
}

// Analyzer is the end-to-end pipeline. Feed packets in capture order via
// Packet (or a whole file via ReadPCAP), then call Finish once before
// reading results.
type Analyzer struct {
	cfg    Config
	filter *capture.Filter
	parser layers.Parser

	Flows *flow.Table
	Dedup *meeting.Dedup
	// StreamMetrics holds one metric engine per observed stream record
	// (per flow+SSRC+type, not per unified stream: SFU copies are
	// analyzed independently, as the paper does).
	StreamMetrics map[flow.MediaStreamID]*metrics.StreamMetrics
	// Copies matches stream copies for §5.3 method-1 RTT samples.
	Copies *metrics.CopyMatcher
	// TCP holds one RTT tracker per Zoom control connection, keyed by
	// the client-side endpoint.
	TCP map[netip.AddrPort]*tcprtt.Tracker

	// Totals.
	Packets         uint64
	Bytes           uint64
	ZoomUDP         uint64
	Undecodable     uint64
	TCPPackets      uint64
	STUNPackets     uint64
	DroppedByFilter uint64
	// UDPKeptPackets/UDPKeptBytes cover kept (Zoom) UDP traffic whether
	// or not it decoded — the Table 2/3 denominators.
	UDPKeptPackets uint64
	UDPKeptBytes   uint64

	// Finished holds archived streams from Compact.
	Finished []FinishedStream

	compactEvery uint64
	compactIdle  time.Duration

	firstTS time.Time
	lastTS  time.Time
}

// NewAnalyzer builds an analyzer.
func NewAnalyzer(cfg Config) *Analyzer {
	return &Analyzer{
		cfg: cfg,
		filter: capture.NewFilter(capture.Config{
			ZoomNetworks:   cfg.ZoomNetworks,
			CampusNetworks: cfg.CampusNetworks,
		}),
		Flows:         flow.NewTable(),
		Dedup:         meeting.NewDedup(),
		StreamMetrics: make(map[flow.MediaStreamID]*metrics.StreamMetrics),
		Copies:        metrics.NewCopyMatcher(),
		TCP:           make(map[netip.AddrPort]*tcprtt.Tracker),
	}
}

// Packet ingests one captured frame.
func (a *Analyzer) Packet(at time.Time, frame []byte) {
	a.Packets++
	a.Bytes += uint64(len(frame))
	if a.firstTS.IsZero() || at.Before(a.firstTS) {
		a.firstTS = at
	}
	if at.After(a.lastTS) {
		a.lastTS = at
	}

	var pkt layers.Packet
	if err := a.parser.Parse(frame, &pkt); err != nil {
		a.Undecodable++
		return
	}
	verdict := a.filter.Classify(&pkt, at)
	if !verdict.Keep() && !a.cfg.PreFiltered {
		a.DroppedByFilter++
		return
	}

	switch {
	case pkt.HasTCP:
		a.TCPPackets++
		a.observeTCP(at, &pkt)
	case pkt.HasUDP:
		a.observeUDP(at, &pkt, len(frame))
	}
	a.maybeCompact(at)
}

func (a *Analyzer) observeTCP(at time.Time, pkt *layers.Packet) {
	fromClient := a.isZoomAddr(pkt.DstAddr()) && !a.isZoomAddr(pkt.SrcAddr())
	var client netip.AddrPort
	if fromClient {
		client = netip.AddrPortFrom(pkt.SrcAddr(), pkt.TCP.SrcPort)
	} else {
		client = netip.AddrPortFrom(pkt.DstAddr(), pkt.TCP.DstPort)
	}
	tr := a.TCP[client]
	if tr == nil {
		tr = tcprtt.NewTracker()
		a.TCP[client] = tr
	}
	tr.Observe(at, fromClient, &pkt.TCP, len(pkt.Payload))
}

func (a *Analyzer) observeUDP(at time.Time, pkt *layers.Packet, wireLen int) {
	if pkt.UDP.SrcPort == 3478 || pkt.UDP.DstPort == 3478 {
		a.STUNPackets++
		return
	}
	a.UDPKeptPackets++
	a.UDPKeptBytes += uint64(wireLen)
	zp, err := zoom.ParsePacket(pkt.Payload, zoom.ModeAuto)
	if err != nil {
		a.Undecodable++
		return
	}
	a.ZoomUDP++
	ft, ok := pkt.FiveTuple()
	if !ok {
		return
	}
	rec := &flow.Record{
		Time:          at,
		Flow:          ft,
		WireLen:       wireLen,
		UDPPayloadLen: len(pkt.Payload),
		Z:             zp,
	}
	a.Flows.Observe(rec)

	if !zp.IsMedia() {
		return
	}
	key := zoom.StreamKey{SSRC: zp.RTP.SSRC, Type: zp.Media.Type}
	unified := a.Dedup.Observe(meeting.StreamObs{
		Time: at, Flow: ft, Key: key,
		Seq: zp.RTP.SequenceNumber, TS: zp.RTP.Timestamp,
	})
	a.Copies.Observe(unified, ft, zp.RTP.PayloadType, zp.RTP.SequenceNumber, zp.RTP.Timestamp, at)

	id := flow.MediaStreamID{Flow: ft, Key: key}
	sm := a.StreamMetrics[id]
	if sm == nil {
		sm = metrics.NewStreamMetrics(zp.Media.Type)
		a.StreamMetrics[id] = sm
	}
	sm.Observe(at, wireLen, &zp.Media, &zp.RTP)
}

func (a *Analyzer) isZoomAddr(addr netip.Addr) bool {
	for _, p := range a.cfg.ZoomNetworks {
		if p.Contains(addr) {
			return true
		}
	}
	return false
}

// Finish flushes all per-stream state. Call once after the last packet.
func (a *Analyzer) Finish() {
	for _, sm := range a.StreamMetrics {
		sm.Finish()
	}
}

// ReadPCAP feeds an entire capture stream (classic pcap or pcapng)
// through the analyzer and finishes.
func (a *Analyzer) ReadPCAP(r io.Reader) error {
	next, err := pcap.OpenAny(r)
	if err != nil {
		return err
	}
	for {
		rec, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		a.Packet(rec.Timestamp, rec.Data)
	}
	a.Finish()
	return nil
}

// Meetings runs the §4.3 grouping over everything observed.
func (a *Analyzer) Meetings() []meeting.Meeting {
	clientOf := meeting.ClientOf(a.isZoomAddr)
	return meeting.Group(a.Dedup.Records(clientOf))
}

// Summary is the Table 6 style capture roll-up.
type Summary struct {
	Duration    time.Duration
	Packets     uint64
	Bytes       uint64
	ZoomUDP     uint64
	TCPPackets  uint64
	STUNPackets uint64
	Undecodable uint64
	Flows       int
	Streams     int
	Meetings    int
}

// Summary computes the capture roll-up.
func (a *Analyzer) Summary() Summary {
	tot := a.Flows.Totals()
	return Summary{
		Duration:    a.lastTS.Sub(a.firstTS),
		Packets:     a.Packets,
		Bytes:       a.Bytes,
		ZoomUDP:     a.ZoomUDP,
		TCPPackets:  a.TCPPackets,
		STUNPackets: a.STUNPackets,
		Undecodable: a.Undecodable,
		Flows:       tot.Flows,
		Streams:     tot.Streams,
		Meetings:    len(a.Meetings()),
	}
}

// StreamIDs returns the observed stream identifiers in deterministic
// order.
func (a *Analyzer) StreamIDs() []flow.MediaStreamID {
	out := make([]flow.MediaStreamID, 0, len(a.StreamMetrics))
	for id := range a.StreamMetrics {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.SSRC != out[j].Key.SSRC {
			return out[i].Key.SSRC < out[j].Key.SSRC
		}
		if out[i].Key.Type != out[j].Key.Type {
			return out[i].Key.Type < out[j].Key.Type
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// MetricsFor returns the metric engine of one stream.
func (a *Analyzer) MetricsFor(id flow.MediaStreamID) (*metrics.StreamMetrics, bool) {
	sm, ok := a.StreamMetrics[id]
	return sm, ok
}
