package core

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// FuzzCheckpointRestore feeds arbitrary bytes to the checkpoint decoder.
// The contract under fuzzing mirrors the packet parsers': never panic,
// and never hand back a partially restored engine — RestoreAnalyzer
// either returns an error (and no engine) or an engine healthy enough to
// ingest packets, finish, and summarize.
func FuzzCheckpointRestore(f *testing.F) {
	tr, opts := seededTrace(f, 1)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}

	// Seed with real checkpoints: empty and mid-trace, sequential and
	// parallel, so mutation starts from every valid layout. A short
	// packet prefix keeps the seeds a few KB — the mutator and the
	// interesting-input minimizer rerun these shapes constantly, and a
	// restore costs a full engine per exec.
	for _, workers := range []int{1, 2} {
		for _, cut := range []int{0, 100} {
			var eng Engine
			if workers > 1 {
				eng = NewParallelAnalyzer(cfg, workers)
			} else {
				eng = NewAnalyzer(cfg)
			}
			for i := 0; i < cut; i++ {
				eng.Packet(tr.at[i], tr.frames[i])
			}
			var buf bytes.Buffer
			if err := eng.Checkpoint(&buf); err != nil {
				f.Fatal(err)
			}
			eng.Finish()
			f.Add(buf.Bytes())
		}
	}
	// Seed real delta records too: the mutator must explore the delta
	// decode path (kinds 2 and 3), which ApplyDelta exercises below.
	for _, workers := range []int{1, 2} {
		var eng Engine
		if workers > 1 {
			eng = NewParallelAnalyzer(cfg, workers)
		} else {
			eng = NewAnalyzer(cfg)
		}
		for i := 0; i < 50; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
			f.Fatal(err)
		}
		for i := 50; i < 100; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		var delta bytes.Buffer
		if err := eng.CheckpointDelta(&delta); err != nil {
			f.Fatal(err)
		}
		eng.Finish()
		f.Add(delta.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte("ZLCP"))
	f.Add([]byte{'Z', 'L', 'C', 'P', 1, 0})
	f.Add([]byte{'Z', 'L', 'C', 'P', 1, 1})
	f.Add([]byte{'Z', 'L', 'C', 'P', 2, 2})
	f.Add([]byte{'Z', 'L', 'C', 'P', 2, 3})
	f.Add([]byte{'Z', 'L', 'C', 'P', 0xff})

	// deltaBase builds the armed engine every ApplyDelta attempt targets:
	// same trace prefix and a full checkpoint taken, so a valid mutated
	// delta could in principle apply cleanly.
	deltaBase := func(t *testing.T) Engine {
		eng := NewAnalyzer(cfg)
		for i := 0; i < 50; i++ {
			eng.Packet(tr.at[i], tr.frames[i])
		}
		if err := eng.Checkpoint(&bytes.Buffer{}); err != nil {
			t.Fatal(err)
		}
		return eng
	}

	at := time.Unix(1700000000, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := RestoreAnalyzer(bytes.NewReader(data), cfg)
		if err == nil {
			// A nil-error engine must be fully wired: accept a packet,
			// finish, and produce a summary without panicking.
			eng.Packet(at, []byte{0x45})
			eng.Finish()
			_ = eng.Result().Summary()
		} else if eng != nil {
			t.Fatalf("restore failed (%v) but still returned an engine", err)
		}

		// The delta decoder has the same contract: error or a coherent
		// engine, never a panic. A failed apply may leave the target
		// half-mutated — the caller contract is to discard it — but it
		// must never have corrupted it badly enough to crash teardown.
		target := deltaBase(t)
		if aerr := target.ApplyDelta(bytes.NewReader(data)); aerr == nil {
			target.Packet(at, []byte{0x45})
		}
		target.Finish()
		_ = target.Result().Summary()
	})
}
