package core

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// FuzzCheckpointRestore feeds arbitrary bytes to the checkpoint decoder.
// The contract under fuzzing mirrors the packet parsers': never panic,
// and never hand back a partially restored engine — RestoreAnalyzer
// either returns an error (and no engine) or an engine healthy enough to
// ingest packets, finish, and summarize.
func FuzzCheckpointRestore(f *testing.F) {
	tr, opts := seededTrace(f, 1)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}

	// Seed with real checkpoints: empty and mid-trace, sequential and
	// parallel, so mutation starts from every valid layout. A short
	// packet prefix keeps the seeds a few KB — the mutator and the
	// interesting-input minimizer rerun these shapes constantly, and a
	// restore costs a full engine per exec.
	for _, workers := range []int{1, 2} {
		for _, cut := range []int{0, 100} {
			var eng Engine
			if workers > 1 {
				eng = NewParallelAnalyzer(cfg, workers)
			} else {
				eng = NewAnalyzer(cfg)
			}
			for i := 0; i < cut; i++ {
				eng.Packet(tr.at[i], tr.frames[i])
			}
			var buf bytes.Buffer
			if err := eng.Checkpoint(&buf); err != nil {
				f.Fatal(err)
			}
			eng.Finish()
			f.Add(buf.Bytes())
		}
	}
	f.Add([]byte{})
	f.Add([]byte("ZLCP"))
	f.Add([]byte{'Z', 'L', 'C', 'P', 1, 0})
	f.Add([]byte{'Z', 'L', 'C', 'P', 1, 1})
	f.Add([]byte{'Z', 'L', 'C', 'P', 0xff})

	at := time.Unix(1700000000, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := RestoreAnalyzer(bytes.NewReader(data), cfg)
		if err != nil {
			if eng != nil {
				t.Fatalf("restore failed (%v) but still returned an engine", err)
			}
			return
		}
		// A nil-error engine must be fully wired: accept a packet,
		// finish, and produce a summary without panicking.
		eng.Packet(at, []byte{0x45})
		eng.Finish()
		_ = eng.Result().Summary()
	})
}
