package core

import (
	"net/netip"
	"reflect"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/metrics"
	"zoomlens/internal/netsim"
	"zoomlens/internal/sim"
	"zoomlens/internal/stun"
)

// capturedTrace records a simulated capture so the same packets can be
// replayed into several analyzers.
type capturedTrace struct {
	at     []time.Time
	frames [][]byte
}

func (tr *capturedTrace) record(at time.Time, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	tr.at = append(tr.at, at)
	tr.frames = append(tr.frames, cp)
}

func (tr *capturedTrace) feed(pkt func(time.Time, []byte)) {
	for i := range tr.frames {
		pkt(tr.at[i], tr.frames[i])
	}
}

// seededTrace simulates a small campus: one three-party SFU meeting with
// a congestion episode and WAN loss, plus a two-party meeting that goes
// P2P (exercising STUN, the mode transition, and copy-rich paths).
func seededTrace(t testing.TB, seconds int) (*capturedTrace, sim.Options) {
	t.Helper()
	opts := sim.DefaultOptions()
	opts.WanLoss = 0.01
	w := sim.NewWorld(opts)
	tr := &capturedTrace{}
	w.Monitor = tr.record
	m1 := w.NewMeeting()
	m1.Join(w.NewClient("a", true), sim.DefaultMediaSet())
	m1.Join(w.NewClient("b", true), sim.DefaultMediaSet())
	m1.Join(w.NewClient("c", true), sim.DefaultMediaSet())
	m2 := w.NewMeeting()
	m2.EnableP2P(5 * time.Second)
	m2.Join(w.NewClient("d", true), sim.DefaultMediaSet())
	m2.Join(w.NewClient("e", false), sim.DefaultMediaSet())
	w.WanDown.Episodes = append(w.WanDown.Episodes, netsim.Congestion{
		Start:       opts.Start.Add(time.Duration(seconds/3) * time.Second),
		End:         opts.Start.Add(time.Duration(seconds/2) * time.Second),
		ExtraDelay:  20 * time.Millisecond,
		ExtraJitter: 25 * time.Millisecond,
		LossRate:    0.02,
	})
	w.Run(opts.Start.Add(time.Duration(seconds) * time.Second))
	return tr, opts
}

// TestParallelMatchesSequential is the differential gate for the sharded
// pipeline: a 4-worker parallel analyzer must produce results identical
// to the sequential analyzer on the same seeded campus trace — summary,
// meetings, stream identifiers, per-stream loss stats and metric series,
// RTT samples, and TCP RTT decomposition. Run under -race this also
// exercises the worker pool for data races.
func TestParallelMatchesSequential(t *testing.T) {
	tr, opts := seededTrace(t, 20)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}

	seq := NewAnalyzer(cfg)
	tr.feed(seq.Packet)
	seq.Finish()

	pa := NewParallelAnalyzer(cfg, 4)
	if pa.Workers() != 4 {
		t.Fatalf("workers = %d", pa.Workers())
	}
	tr.feed(pa.Packet)
	pa.Finish()
	par := pa.Result()

	if s, p := seq.Summary(), par.Summary(); s != p {
		t.Fatalf("summary diverges:\nsequential %+v\nparallel   %+v", s, p)
	}
	if !reflect.DeepEqual(seq.Meetings(), par.Meetings()) {
		t.Errorf("meetings diverge:\nsequential %+v\nparallel   %+v", seq.Meetings(), par.Meetings())
	}
	sids, pids := seq.StreamIDs(), pa.StreamIDs()
	if !reflect.DeepEqual(sids, pids) {
		t.Fatalf("stream IDs diverge:\nsequential %v\nparallel   %v", sids, pids)
	}
	for _, id := range sids {
		ss, _ := seq.MetricsFor(id)
		ps, ok := pa.MetricsFor(id)
		if !ok {
			t.Fatalf("stream %v missing from parallel result", id)
		}
		if ss.LossStats() != ps.LossStats() {
			t.Errorf("stream %v loss stats diverge: %+v vs %+v", id, ss.LossStats(), ps.LossStats())
		}
		if ss.Packets != ps.Packets || ss.MediaBytes != ps.MediaBytes || ss.WireBytes != ps.WireBytes {
			t.Errorf("stream %v counters diverge", id)
		}
		if ss.FramesTotal != ps.FramesTotal || ss.FramesIncomplete != ps.FramesIncomplete {
			t.Errorf("stream %v frame counts diverge", id)
		}
		for name, pair := range map[string][2][]metrics.Sample{
			"frame_rate": {ss.FrameRate.Samples, ps.FrameRate.Samples},
			"media_rate": {ss.MediaRate.Samples, ps.MediaRate.Samples},
			"wire_rate":  {ss.WireRate.Samples, ps.WireRate.Samples},
			"jitter_ms":  {ss.JitterMS.Samples, ps.JitterMS.Samples},
			"frame_size": {ss.FrameSize.Samples, ps.FrameSize.Samples},
		} {
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Errorf("stream %v series %s diverges (%d vs %d samples)", id, name, len(pair[0]), len(pair[1]))
			}
		}
	}
	if !reflect.DeepEqual(seq.Copies.Samples, par.Copies.Samples) {
		t.Errorf("RTT samples diverge: %d vs %d", len(seq.Copies.Samples), len(par.Copies.Samples))
	}
	if len(seq.TCP) != len(par.TCP) {
		t.Fatalf("TCP trackers: %d vs %d", len(seq.TCP), len(par.TCP))
	}
	for client, st := range seq.TCP {
		pt, ok := par.TCP[client]
		if !ok {
			t.Fatalf("TCP tracker for %v missing", client)
		}
		if st.Split() != pt.Split() {
			t.Errorf("client %v TCP RTT split diverges: %+v vs %+v", client, st.Split(), pt.Split())
		}
	}
	// Flow-table reproductions (Tables 2/3) must match too.
	sSum := seq.Summary()
	if !reflect.DeepEqual(
		seq.Flows.EncapShares(sSum.Packets, sSum.Bytes),
		par.Flows.EncapShares(sSum.Packets, sSum.Bytes),
	) {
		t.Error("encap shares diverge")
	}
	if !reflect.DeepEqual(
		seq.Flows.PayloadTypeShares(sSum.Packets, sSum.Bytes),
		par.Flows.PayloadTypeShares(sSum.Packets, sSum.Bytes),
	) {
		t.Error("payload type shares diverge")
	}
}

// TestParallelWorkerCounts checks the summary stays identical across a
// range of shard counts, including the degenerate single-worker case.
func TestParallelWorkerCounts(t *testing.T) {
	tr, opts := seededTrace(t, 8)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	seq := NewAnalyzer(cfg)
	tr.feed(seq.Packet)
	seq.Finish()
	want := seq.Summary()
	for _, workers := range []int{1, 2, 3, 8} {
		pa := NewParallelAnalyzer(cfg, workers)
		tr.feed(pa.Packet)
		pa.Finish()
		if got := pa.Summary(); got != want {
			t.Errorf("workers=%d: summary %+v, want %+v", workers, got, want)
		}
	}
}

// TestParallelReadPCAP covers the pcap entry point of the parallel
// pipeline against the sequential one.
func TestParallelReadPCAP(t *testing.T) {
	tr, opts := seededTrace(t, 6)
	cfg := Config{
		ZoomNetworks:   []netip.Prefix{opts.ZoomNet},
		CampusNetworks: []netip.Prefix{opts.CampusNet},
	}
	seq := NewAnalyzer(cfg)
	tr.feed(seq.Packet)
	seq.Finish()

	pa := NewParallelAnalyzer(cfg, 4)
	tr.feed(pa.Packet)
	pa.Finish()
	if got, want := pa.Summary(), seq.Summary(); got != want {
		t.Fatalf("summary = %+v, want %+v", got, want)
	}
	// Finish twice is safe.
	pa.Finish()
}

// TestSTUNClassifiedByMagicCookie feeds STUN messages on non-3478 media
// ports: they must count as STUN, not fall through to the Zoom parser
// and inflate Undecodable/UDPKeptPackets.
func TestSTUNClassifiedByMagicCookie(t *testing.T) {
	a := NewAnalyzer(Config{PreFiltered: true})
	src := netip.MustParseAddrPort("10.8.0.10:8801")
	dst := netip.MustParseAddrPort("203.0.113.7:9000")
	msg := stun.NewBindingRequest(stun.TransactionID{1, 2, 3})
	frame := layers.EthernetIPv4UDP(src, dst, 64, msg.Marshal())
	at := time.Unix(1700000000, 0)
	a.Packet(at, frame)

	resp := stun.NewBindingResponse(stun.TransactionID{1, 2, 3}, src)
	a.Packet(at.Add(time.Millisecond), layers.EthernetIPv4UDP(dst, src, 64, resp.Marshal()))

	if a.STUNPackets != 2 {
		t.Errorf("STUNPackets = %d, want 2", a.STUNPackets)
	}
	if a.Undecodable != 0 {
		t.Errorf("Undecodable = %d, want 0 (STUN misclassified as failed Zoom parse)", a.Undecodable)
	}
	if a.UDPKeptPackets != 0 || a.UDPKeptBytes != 0 {
		t.Errorf("UDPKept = %d pkts / %d bytes, want 0 (STUN must not enter the Table 2/3 denominators)",
			a.UDPKeptPackets, a.UDPKeptBytes)
	}
}

// TestShardAffinity checks the routing invariants directly: both
// directions of a TCP connection share a shard, and a UDP flow always
// hashes to the same shard.
func TestShardAffinity(t *testing.T) {
	zoomNet := netip.MustParsePrefix("203.0.113.0/24")
	pa := NewParallelAnalyzer(Config{ZoomNetworks: []netip.Prefix{zoomNet}}, 7)
	defer pa.Finish()

	parser := &layers.Parser{}
	parse := func(frame []byte) *layers.Packet {
		var pkt layers.Packet
		if err := parser.Parse(frame, &pkt); err != nil {
			t.Fatal(err)
		}
		return &pkt
	}
	client := netip.MustParseAddrPort("10.8.0.10:50000")
	server := netip.MustParseAddrPort("203.0.113.7:443")
	up := parse(layers.EthernetIPv4TCP(client, server, 64, 100, 0, layers.TCPSyn, 1024, nil))
	down := parse(layers.EthernetIPv4TCP(server, client, 64, 1, 101, layers.TCPSyn|layers.TCPAck, 1024, nil))
	if pa.shardIndex(up) != pa.shardIndex(down) {
		t.Errorf("TCP directions on different shards: %d vs %d", pa.shardIndex(up), pa.shardIndex(down))
	}

	mediaSrc := netip.MustParseAddrPort("10.8.0.10:50001")
	mediaDst := netip.MustParseAddrPort("203.0.113.7:8801")
	u1 := parse(layers.EthernetIPv4UDP(mediaSrc, mediaDst, 64, []byte{1, 2, 3, 4}))
	u2 := parse(layers.EthernetIPv4UDP(mediaSrc, mediaDst, 64, []byte{9, 9, 9, 9, 9}))
	if pa.shardIndex(u1) != pa.shardIndex(u2) {
		t.Error("same UDP flow routed to different shards")
	}
}
