package core

import (
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/metrics"
)

// This file keeps the analyzer's memory bounded over long captures (the
// paper's deployment ran for 12+ hours against ~60 k streams): streams
// that have gone idle are finalized, their metric engines archived, and
// the hot maps shrunk. Archived results remain available for reports.

// FinishedStream is an archived, finalized stream.
type FinishedStream struct {
	ID       flow.MediaStreamID
	LastSeen time.Time
	Metrics  *metrics.StreamMetrics
}

// Compact finalizes and archives every stream whose last packet is
// older than cutoff, returning how many were archived. Archived streams
// disappear from StreamIDs/MetricsFor and appear in Finished; flow-level
// accounting (Tables 2/3/6) is unaffected.
func (a *Analyzer) Compact(cutoff time.Time) int {
	n := 0
	for id, sm := range a.StreamMetrics {
		st, ok := a.Flows.Stream(id)
		if !ok || st.LastSeen.After(cutoff) {
			continue
		}
		sm.Finish()
		a.Finished = append(a.Finished, FinishedStream{ID: id, LastSeen: st.LastSeen, Metrics: sm})
		delete(a.StreamMetrics, id)
		n++
	}
	if n > 0 {
		a.Dedup.Evict(cutoff)
	}
	return n
}

// AutoCompact enables periodic compaction: every `every` packets, the
// analyzer archives streams idle longer than idle. Zero disables.
func (a *Analyzer) AutoCompact(every uint64, idle time.Duration) {
	a.compactEvery = every
	a.compactIdle = idle
}

// maybeCompact is called from the packet path.
func (a *Analyzer) maybeCompact(at time.Time) {
	if a.compactEvery == 0 || a.Packets == 0 || a.Packets%a.compactEvery != 0 {
		return
	}
	a.Compact(at.Add(-a.compactIdle))
}

// AllStreamMetrics visits live and finished streams alike.
func (a *Analyzer) AllStreamMetrics(visit func(flow.MediaStreamID, *metrics.StreamMetrics)) {
	for _, f := range a.Finished {
		visit(f.ID, f.Metrics)
	}
	for id, sm := range a.StreamMetrics {
		visit(id, sm)
	}
}
