package core

import (
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/metrics"
)

// This file keeps the analyzer's memory bounded over long captures (the
// paper's deployment ran for 12+ hours against ~60 k streams): streams
// that have gone idle are finalized, their metric engines archived, and
// the hot maps shrunk. Archived results remain available for reports.
// Config.FlowTTL extends the same idea to every stateful map in the
// pipeline (flow table, TCP trackers, duplicate-stream detector), with
// evicted entries folded into the final report rather than dropped.

// FinishedStream is an archived, finalized stream.
type FinishedStream struct {
	ID       flow.MediaStreamID
	LastSeen time.Time
	Metrics  *metrics.StreamMetrics
}

// Compact finalizes and archives every stream whose last packet is
// older than cutoff, returning how many were archived. Archived streams
// disappear from StreamIDs/MetricsFor and appear in Finished; flow-level
// accounting (Tables 2/3/6) is unaffected. Streams whose flow-table
// entry has already been evicted are archived unconditionally — keeping
// their metric engines live would leak, since nothing will ever touch
// them again.
func (a *Analyzer) Compact(cutoff time.Time) int {
	n := 0
	for id, sm := range a.StreamMetrics {
		st, ok := a.Flows.Stream(id)
		if ok && st.LastSeen.After(cutoff) {
			continue
		}
		last := cutoff
		if ok {
			last = st.LastSeen
		}
		sm.Finish()
		a.archiveFinished(FinishedStream{ID: id, LastSeen: last, Metrics: sm})
		delete(a.StreamMetrics, id)
		a.tombstoneStreamMetric(id)
		n++
	}
	if n > 0 {
		a.Dedup.Evict(cutoff)
	}
	return n
}

// archiveFinished appends to the archive, enforcing Config.MaxFinished
// by dropping (and counting) the oldest entry.
func (a *Analyzer) archiveFinished(f FinishedStream) {
	if a.cfg.MaxFinished > 0 && len(a.Finished) >= a.cfg.MaxFinished {
		drop := len(a.Finished) - a.cfg.MaxFinished + 1
		a.FinishedDropped += uint64(drop)
		a.Finished = append(a.Finished[:0], a.Finished[drop:]...)
		if a.deltaArmed {
			// Account head drops against the checkpoint baseline first;
			// drops past it consumed entries appended since the last
			// checkpoint, which simply never reach a delta.
			if eat := min(drop, a.ckFinishedLen-a.ckHeadDrops); eat > 0 {
				a.ckHeadDrops += eat
			}
		}
	}
	a.Finished = append(a.Finished, f)
}

// AutoCompact enables periodic compaction: every `every` packets, the
// analyzer archives streams idle longer than idle. Zero disables.
func (a *Analyzer) AutoCompact(every uint64, idle time.Duration) {
	a.compactEvery = every
	a.compactIdle = idle
}

// maybeCompact is called from the packet path.
func (a *Analyzer) maybeCompact(at time.Time) {
	if a.compactEvery == 0 || a.Packets == 0 || a.Packets%a.compactEvery != 0 {
		return
	}
	a.Compact(at.Add(-a.compactIdle))
}

// maybeMaintain runs TTL eviction on the packet-count cadence configured
// by Config.FlowTTL / Config.MaintainEvery.
func (a *Analyzer) maybeMaintain(at time.Time) {
	if a.cfg.FlowTTL <= 0 || a.cfg.MaintainEvery == 0 || a.Packets%a.cfg.MaintainEvery != 0 {
		return
	}
	a.EvictIdle(at.Add(-a.cfg.FlowTTL))
}

// EvictIdle evicts every piece of per-flow state idle since before
// cutoff: metric engines are finalized and archived, flow-table entries
// fold into the report aggregates, idle TCP trackers and copy-linkage
// records are dropped. Counts of everything evicted surface in Summary.
func (a *Analyzer) EvictIdle(cutoff time.Time) {
	a.Compact(cutoff)
	a.Flows.EvictIdle(cutoff)
	a.Dedup.Evict(cutoff)
	for client, seen := range a.tcpSeen {
		if seen.After(cutoff) {
			continue
		}
		delete(a.TCP, client)
		delete(a.tcpSeen, client)
		a.tombstoneTCP(client)
		a.EvictedTCP++
	}
}

// AllStreamMetrics visits live and finished streams alike.
func (a *Analyzer) AllStreamMetrics(visit func(flow.MediaStreamID, *metrics.StreamMetrics)) {
	for _, f := range a.Finished {
		visit(f.ID, f.Metrics)
	}
	for id, sm := range a.StreamMetrics {
		visit(id, sm)
	}
}
