package rtp

import "encoding/binary"

// Additional RTCP marshallers for codec completeness. Zoom traffic only
// carries SRs (+ empty SDES), but the analyzer is reusable for RTP
// systems that do emit receiver reports and BYEs (Meet, Teams, …), and
// the simulator's tests exercise these paths.

// ReceiverReport is an RTCP RR (RFC 3550 §6.4.2).
type ReceiverReport struct {
	SSRC    uint32
	Reports []ReceptionReport
}

// MarshalRR serializes a receiver report.
func MarshalRR(rr ReceiverReport) []byte {
	words := 1 + 6*len(rr.Reports)
	out := make([]byte, 0, 4*(words+1))
	out = append(out, byte(Version<<6)|byte(len(rr.Reports)), RTCPTypeRR)
	out = binary.BigEndian.AppendUint16(out, uint16(words))
	out = binary.BigEndian.AppendUint32(out, rr.SSRC)
	for _, r := range rr.Reports {
		out = appendReceptionReport(out, r)
	}
	return out
}

// ParseRR decodes a single RR packet (not a compound).
func ParseRR(data []byte) (ReceiverReport, error) {
	var rr ReceiverReport
	if len(data) < 8 {
		return rr, ErrNotRTCP
	}
	if data[0]>>6 != Version || data[1] != RTCPTypeRR {
		return rr, ErrNotRTCP
	}
	count := int(data[0] & 0x1f)
	body := data[4:]
	if len(body) < 4+24*count {
		return rr, ErrNotRTCP
	}
	rr.SSRC = binary.BigEndian.Uint32(body[0:4])
	for i := 0; i < count; i++ {
		b := body[4+24*i:]
		rr.Reports = append(rr.Reports, parseReceptionReport(b))
	}
	return rr, nil
}

// MarshalBye serializes a BYE packet for the given sources.
func MarshalBye(ssrcs []uint32) []byte {
	words := len(ssrcs)
	out := make([]byte, 0, 4*(words+1))
	out = append(out, byte(Version<<6)|byte(len(ssrcs)), RTCPTypeBye)
	out = binary.BigEndian.AppendUint16(out, uint16(words))
	for _, s := range ssrcs {
		out = binary.BigEndian.AppendUint32(out, s)
	}
	return out
}

func appendReceptionReport(out []byte, rr ReceptionReport) []byte {
	out = binary.BigEndian.AppendUint32(out, rr.SSRC)
	out = append(out, rr.FractionLost, byte(rr.CumulativeLost>>16), byte(rr.CumulativeLost>>8), byte(rr.CumulativeLost))
	out = binary.BigEndian.AppendUint32(out, rr.HighestSeq)
	out = binary.BigEndian.AppendUint32(out, rr.Jitter)
	out = binary.BigEndian.AppendUint32(out, rr.LastSR)
	out = binary.BigEndian.AppendUint32(out, rr.DelaySinceLastSR)
	return out
}

func parseReceptionReport(b []byte) ReceptionReport {
	return ReceptionReport{
		SSRC:             binary.BigEndian.Uint32(b[0:4]),
		FractionLost:     b[4],
		CumulativeLost:   uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
		HighestSeq:       binary.BigEndian.Uint32(b[8:12]),
		Jitter:           binary.BigEndian.Uint32(b[12:16]),
		LastSR:           binary.BigEndian.Uint32(b[16:20]),
		DelaySinceLastSR: binary.BigEndian.Uint32(b[20:24]),
	}
}
