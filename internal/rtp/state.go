package rtp

import (
	"slices"

	"zoomlens/internal/statecodec"
)

// Checkpoint boundary for the RTP accumulators: the sequence tracker
// and the jitter estimator are the innermost mutable state of every
// metric engine, so they serialize here and the metrics layer composes
// them.

const (
	seqTrackerStateV1 = 1
	jitterStateV1     = 1
)

// State encodes the tracker for a checkpoint. The seen-window set is
// written sorted so identical state yields identical bytes.
func (t *SeqTracker) State(w *statecodec.Writer) {
	w.U8(seqTrackerStateV1)
	w.Bool(t.started)
	w.U16(t.maxSeq)
	w.U32(t.cycles)
	w.U64(t.received)
	w.U64(t.dups)
	w.U64(t.reorder)
	w.U32(t.baseExt)
	w.U32(t.seenWindow)
	var keyScratch [64]uint32
	keys := keyScratch[:0]
	for k := range t.seen {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.U32(k)
	}
}

// Restore rebuilds the tracker from a checkpoint, replacing all state.
func (t *SeqTracker) Restore(r *statecodec.Reader) error {
	r.Version("rtp.SeqTracker", seqTrackerStateV1)
	t.started = r.Bool()
	t.maxSeq = r.U16()
	t.cycles = r.U32()
	t.received = r.U64()
	t.dups = r.U64()
	t.reorder = r.U64()
	t.baseExt = r.U32()
	t.seenWindow = r.U32()
	n := r.Count(1)
	t.seen = make(map[uint32]struct{}, n)
	for i := 0; i < n; i++ {
		t.seen[r.U32()] = struct{}{}
	}
	return r.Err()
}

// State encodes the estimator for a checkpoint. The clock rate is part
// of the state: Restore rebuilds the estimator without needing the
// constructor arguments.
func (j *Jitter) State(w *statecodec.Writer) {
	w.U8(jitterStateV1)
	w.F64(j.clockRate)
	w.Bool(j.started)
	w.F64(j.prevR)
	w.U32(j.prevS)
	w.F64(j.j)
}

// Restore rebuilds the estimator from a checkpoint.
func (j *Jitter) Restore(r *statecodec.Reader) error {
	r.Version("rtp.Jitter", jitterStateV1)
	j.clockRate = r.F64()
	j.started = r.Bool()
	j.prevR = r.F64()
	j.prevS = r.U32()
	j.j = r.F64()
	if r.Err() == nil && !(j.clockRate > 0) {
		r.Failf("rtp.Jitter clock rate %v", j.clockRate)
	}
	return r.Err()
}
