// Package rtp implements the Real-time Transport Protocol (RFC 3550)
// header codec together with the sequence-number and timestamp arithmetic
// needed to analyze media streams: serial-number comparison, the extended
// highest-sequence bookkeeping from RFC 3550 Appendix A.1, and the
// interarrival jitter estimator from §6.4.1.
//
// Zoom embeds standard RTP inside its proprietary encapsulations; this
// package knows nothing about Zoom and is reusable for any RTP-bearing
// application (the paper notes the same techniques apply to Meet, Teams,
// Webex, and FaceTime).
package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Version is the only RTP version in use.
const Version = 2

// HeaderLen is the length of a fixed RTP header without CSRCs or
// extensions.
const HeaderLen = 12

// Errors returned by the codec.
var (
	ErrTruncated  = errors.New("rtp: truncated packet")
	ErrBadVersion = errors.New("rtp: bad version")
)

// Header is a decoded RTP header.
type Header struct {
	Padding        bool
	Marker         bool
	PayloadType    uint8
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	CSRC           []uint32
	// Extension holds the profile-defined extension header if the X bit
	// was set: the 16-bit profile identifier and the extension words.
	Extension        bool
	ExtensionProfile uint16
	ExtensionData    []byte // always a multiple of 4 bytes
}

// Packet is a decoded RTP packet: header plus payload. Payload aliases the
// input buffer passed to Parse.
type Packet struct {
	Header
	Payload []byte
}

// Parse decodes an RTP packet from data. The returned packet's Payload and
// ExtensionData alias data.
func Parse(data []byte) (Packet, error) {
	var p Packet
	if err := p.parse(data); err != nil {
		return Packet{}, err
	}
	return p, nil
}

func (p *Packet) parse(data []byte) error {
	if len(data) < HeaderLen {
		return fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, HeaderLen, len(data))
	}
	b0 := data[0]
	if v := b0 >> 6; v != Version {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	p.Padding = b0&0x20 != 0
	ext := b0&0x10 != 0
	cc := int(b0 & 0x0f)
	b1 := data[1]
	p.Marker = b1&0x80 != 0
	p.PayloadType = b1 & 0x7f
	p.SequenceNumber = binary.BigEndian.Uint16(data[2:4])
	p.Timestamp = binary.BigEndian.Uint32(data[4:8])
	p.SSRC = binary.BigEndian.Uint32(data[8:12])
	off := HeaderLen
	if cc > 0 {
		if len(data) < off+4*cc {
			return fmt.Errorf("%w: csrc list", ErrTruncated)
		}
		p.CSRC = make([]uint32, cc)
		for i := range p.CSRC {
			p.CSRC[i] = binary.BigEndian.Uint32(data[off : off+4])
			off += 4
		}
	} else {
		p.CSRC = nil
	}
	p.Extension = ext
	p.ExtensionProfile = 0
	p.ExtensionData = nil
	if ext {
		if len(data) < off+4 {
			return fmt.Errorf("%w: extension header", ErrTruncated)
		}
		p.ExtensionProfile = binary.BigEndian.Uint16(data[off : off+2])
		words := int(binary.BigEndian.Uint16(data[off+2 : off+4]))
		off += 4
		if len(data) < off+4*words {
			return fmt.Errorf("%w: extension body", ErrTruncated)
		}
		p.ExtensionData = data[off : off+4*words]
		off += 4 * words
	}
	payload := data[off:]
	if p.Padding {
		if len(payload) == 0 {
			return fmt.Errorf("%w: padding with empty payload", ErrTruncated)
		}
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload) {
			return fmt.Errorf("rtp: invalid padding length %d", pad)
		}
		payload = payload[:len(payload)-pad]
	}
	p.Payload = payload
	return nil
}

// MarshaledLen returns the number of bytes Marshal will produce.
func (p *Packet) MarshaledLen() int {
	n := HeaderLen + 4*len(p.CSRC) + len(p.Payload)
	if p.Extension {
		n += 4 + len(p.ExtensionData)
	}
	return n
}

// AppendMarshal appends the wire form of p to dst and returns the extended
// slice. Padding is not emitted (the Padding flag is serialized as clear);
// ExtensionData must be a multiple of 4 bytes.
func (p *Packet) AppendMarshal(dst []byte) ([]byte, error) {
	if p.Extension && len(p.ExtensionData)%4 != 0 {
		return dst, fmt.Errorf("rtp: extension data length %d not a multiple of 4", len(p.ExtensionData))
	}
	if len(p.CSRC) > 15 {
		return dst, fmt.Errorf("rtp: %d CSRCs exceeds 15", len(p.CSRC))
	}
	b0 := byte(Version << 6)
	if p.Extension {
		b0 |= 0x10
	}
	b0 |= byte(len(p.CSRC))
	b1 := p.PayloadType & 0x7f
	if p.Marker {
		b1 |= 0x80
	}
	dst = append(dst, b0, b1)
	dst = binary.BigEndian.AppendUint16(dst, p.SequenceNumber)
	dst = binary.BigEndian.AppendUint32(dst, p.Timestamp)
	dst = binary.BigEndian.AppendUint32(dst, p.SSRC)
	for _, c := range p.CSRC {
		dst = binary.BigEndian.AppendUint32(dst, c)
	}
	if p.Extension {
		dst = binary.BigEndian.AppendUint16(dst, p.ExtensionProfile)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.ExtensionData)/4))
		dst = append(dst, p.ExtensionData...)
	}
	dst = append(dst, p.Payload...)
	return dst, nil
}

// Marshal returns the wire form of p.
func (p *Packet) Marshal() ([]byte, error) {
	return p.AppendMarshal(make([]byte, 0, p.MarshaledLen()))
}

// SeqLess reports whether sequence number a is before b in RFC 1982 serial
// number arithmetic (16-bit).
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 0x8000
}

// SeqDiff returns the signed distance from a to b (b-a) interpreting the
// 16-bit values as serial numbers: positive when b is ahead of a.
func SeqDiff(a, b uint16) int {
	d := int16(b - a)
	return int(d)
}

// TSDiff returns the signed distance from timestamp a to b (b-a) in 32-bit
// serial arithmetic.
func TSDiff(a, b uint32) int64 {
	d := int32(b - a)
	return int64(d)
}

// SeqTracker maintains the extended (wraparound-corrected) sequence number
// state of one RTP substream, following RFC 3550 Appendix A.1, and counts
// duplicates, reorderings, and gaps. The Zoom paper (§5.5) relies on this
// analysis to estimate loss and retransmissions, noting that Zoom
// retransmits with the *same* sequence number, so duplicates usually mean
// retransmission.
type SeqTracker struct {
	started  bool
	maxSeq   uint16
	cycles   uint32 // count of wraps, shifted into the high 16 bits
	received uint64
	dups     uint64
	reorder  uint64
	baseExt  uint32

	// seen is a sliding window bitmap of recently received extended
	// sequence numbers, used to distinguish duplicates from reorderings.
	seen       map[uint32]struct{}
	seenWindow uint32
}

// NewSeqTracker returns a tracker with the default 512-packet duplicate
// window.
func NewSeqTracker() *SeqTracker {
	return &SeqTracker{seen: make(map[uint32]struct{}), seenWindow: 512}
}

// Observe records seq and classifies it. kind describes the packet's
// relationship to the stream so far.
func (t *SeqTracker) Observe(seq uint16) SeqKind {
	if !t.started {
		t.started = true
		t.maxSeq = seq
		t.baseExt = uint32(seq)
		t.received = 1
		t.remember(uint32(seq))
		return SeqInOrder
	}
	t.received++
	ext := t.extend(seq)
	if _, dup := t.seen[ext]; dup {
		t.dups++
		return SeqDuplicate
	}
	t.remember(ext)
	switch d := SeqDiff(t.maxSeq, seq); {
	case d > 0:
		if seq < t.maxSeq { // wrapped
			t.cycles += 1 << 16
		}
		t.maxSeq = seq
		if d == 1 {
			return SeqInOrder
		}
		return SeqGap
	case d == 0:
		t.dups++
		return SeqDuplicate
	default:
		t.reorder++
		return SeqReordered
	}
}

func (t *SeqTracker) extend(seq uint16) uint32 {
	ext := t.cycles | uint32(seq)
	// If seq appears to be just behind maxSeq across a wrap boundary,
	// attribute it to the previous cycle.
	if seq > t.maxSeq && seq-t.maxSeq > 0x8000 && t.cycles > 0 {
		ext -= 1 << 16
	}
	// If seq is ahead across the wrap (wrap not yet counted), it belongs
	// to the next cycle.
	if seq < t.maxSeq && t.maxSeq-seq > 0x8000 {
		ext += 1 << 16
	}
	return ext
}

func (t *SeqTracker) remember(ext uint32) {
	t.seen[ext] = struct{}{}
	if len(t.seen) > int(t.seenWindow)*2 {
		floor := ext - t.seenWindow
		for k := range t.seen {
			if k < floor {
				delete(t.seen, k)
			}
		}
	}
}

// SeqKind classifies an observed sequence number.
type SeqKind int

// Classification of an observed packet relative to the stream so far.
const (
	SeqInOrder   SeqKind = iota
	SeqGap               // jumped forward, skipping at least one number
	SeqDuplicate         // already seen (likely a Zoom retransmission)
	SeqReordered         // behind the maximum but not previously seen
)

func (k SeqKind) String() string {
	switch k {
	case SeqInOrder:
		return "in-order"
	case SeqGap:
		return "gap"
	case SeqDuplicate:
		return "duplicate"
	case SeqReordered:
		return "reordered"
	}
	return "unknown"
}

// Stats summarizes a tracker.
type Stats struct {
	Received   uint64
	Duplicates uint64
	Reordered  uint64
	// ExpectedSpan is the count of sequence numbers covered from the first
	// to the highest observed, inclusive.
	ExpectedSpan uint64
	// EstimatedLost is ExpectedSpan minus unique packets received (never
	// negative). Because Zoom retransmits with identical sequence numbers,
	// this is a lower bound on true network loss (§5.5).
	EstimatedLost uint64
}

// Stats returns the current counters.
func (t *SeqTracker) Stats() Stats {
	if !t.started {
		return Stats{}
	}
	highest := uint64(t.cycles) | uint64(t.maxSeq)
	span := highest - uint64(t.baseExt) + 1
	unique := t.received - t.dups
	var lost uint64
	if span > unique {
		lost = span - unique
	}
	return Stats{
		Received:      t.received,
		Duplicates:    t.dups,
		Reordered:     t.reorder,
		ExpectedSpan:  span,
		EstimatedLost: lost,
	}
}

// Jitter implements the RFC 3550 §6.4.1 interarrival jitter estimator:
//
//	D(i,j) = (Rj − Ri) − (Sj − Si)
//	J     += (|D| − J) / 16
//
// where R is arrival time and S is the RTP timestamp, both expressed in
// timestamp units. The Zoom paper applies this at frame granularity with
// variable packetization intervals (§5.4); callers feed it one sample per
// frame (first packet of each frame).
type Jitter struct {
	clockRate float64 // Hz
	started   bool
	prevR     float64 // arrival, seconds
	prevS     uint32  // RTP timestamp
	j         float64 // jitter in timestamp units
}

// NewJitter returns an estimator for a stream with the given RTP clock
// rate in Hz (90000 for Zoom video).
func NewJitter(clockRate float64) *Jitter {
	if clockRate <= 0 {
		panic("rtp: clock rate must be positive")
	}
	return &Jitter{clockRate: clockRate}
}

// Observe feeds one (arrival time, RTP timestamp) pair. arrival is in
// seconds of wall-clock time. It returns the updated jitter estimate in
// seconds.
func (j *Jitter) Observe(arrival float64, ts uint32) float64 {
	if !j.started {
		j.started = true
		j.prevR, j.prevS = arrival, ts
		return 0
	}
	dR := (arrival - j.prevR) * j.clockRate
	dS := float64(TSDiff(j.prevS, ts))
	d := dR - dS
	if d < 0 {
		d = -d
	}
	j.j += (d - j.j) / 16
	j.prevR, j.prevS = arrival, ts
	return j.Seconds()
}

// Seconds returns the current jitter estimate in seconds.
func (j *Jitter) Seconds() float64 { return j.j / j.clockRate }

// TimestampUnits returns the current jitter estimate in RTP timestamp
// units.
func (j *Jitter) TimestampUnits() float64 { return j.j }
