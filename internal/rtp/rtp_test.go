package rtp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestParseMarshalRoundTrip(t *testing.T) {
	p := Packet{
		Header: Header{
			Marker:           true,
			PayloadType:      98,
			SequenceNumber:   4711,
			Timestamp:        0xdeadbeef,
			SSRC:             0x1234,
			CSRC:             []uint32{7, 8},
			Extension:        true,
			ExtensionProfile: 0xbede,
			ExtensionData:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
		},
		Payload: []byte("encrypted media"),
	}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(wire) != p.MarshaledLen() {
		t.Errorf("len = %d, MarshaledLen = %d", len(wire), p.MarshaledLen())
	}
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Marker != p.Marker || got.PayloadType != p.PayloadType ||
		got.SequenceNumber != p.SequenceNumber || got.Timestamp != p.Timestamp ||
		got.SSRC != p.SSRC {
		t.Errorf("header mismatch: %+v", got.Header)
	}
	if len(got.CSRC) != 2 || got.CSRC[0] != 7 || got.CSRC[1] != 8 {
		t.Errorf("CSRC = %v", got.CSRC)
	}
	if !got.Extension || got.ExtensionProfile != 0xbede || !bytes.Equal(got.ExtensionData, p.ExtensionData) {
		t.Errorf("extension mismatch: %v %x %x", got.Extension, got.ExtensionProfile, got.ExtensionData)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestParsePadding(t *testing.T) {
	p := Packet{Header: Header{PayloadType: 112, SSRC: 9}, Payload: []byte{1, 2, 3}}
	wire, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Add 3 bytes of padding manually and set the P bit.
	wire = append(wire, 0, 0, 3)
	wire[0] |= 0x20
	got, err := Parse(wire)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !got.Padding {
		t.Error("Padding flag not set")
	}
	if !bytes.Equal(got.Payload, []byte{1, 2, 3}) {
		t.Errorf("payload = %v", got.Payload)
	}
}

func TestParseBadVersion(t *testing.T) {
	wire := make([]byte, 12)
	wire[0] = 1 << 6
	if _, err := Parse(wire); err == nil {
		t.Error("expected version error")
	}
}

func TestParseTruncated(t *testing.T) {
	if _, err := Parse([]byte{0x80, 98, 0}); err == nil {
		t.Error("expected truncation error")
	}
	// CSRC count promises more than present.
	wire := make([]byte, 12)
	wire[0] = 0x80 | 3
	if _, err := Parse(wire); err == nil {
		t.Error("expected truncation error for CSRC list")
	}
	// Extension bit with no extension header.
	wire2 := make([]byte, 12)
	wire2[0] = 0x80 | 0x10
	if _, err := Parse(wire2); err == nil {
		t.Error("expected truncation error for extension")
	}
}

func TestParseInvalidPadding(t *testing.T) {
	p := Packet{Header: Header{SSRC: 1}, Payload: []byte{9}}
	wire, _ := p.Marshal()
	wire[0] |= 0x20
	wire[len(wire)-1] = 200 // pad length larger than payload
	if _, err := Parse(wire); err == nil {
		t.Error("expected invalid padding error")
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint16
		less bool
		diff int
	}{
		{0, 1, true, 1},
		{1, 0, false, -1},
		{65535, 0, true, 1},
		{0, 65535, false, -1},
		{65530, 5, true, 11},
		{100, 100, false, 0},
		{0, 0x7fff, true, 32767},
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.less {
			t.Errorf("SeqLess(%d,%d) = %v, want %v", c.a, c.b, got, c.less)
		}
		if got := SeqDiff(c.a, c.b); got != c.diff {
			t.Errorf("SeqDiff(%d,%d) = %d, want %d", c.a, c.b, got, c.diff)
		}
	}
}

func TestQuickSeqDiffAntiSymmetric(t *testing.T) {
	f := func(a, b uint16) bool {
		d1, d2 := SeqDiff(a, b), SeqDiff(b, a)
		if a == b {
			return d1 == 0 && d2 == 0
		}
		// For the ambiguous half-way point both directions give -32768.
		if d1 == -32768 || d2 == -32768 {
			return true
		}
		return d1 == -d2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqTrackerInOrder(t *testing.T) {
	tr := NewSeqTracker()
	for i := 0; i < 1000; i++ {
		if k := tr.Observe(uint16(i)); k != SeqInOrder {
			t.Fatalf("seq %d classified %v", i, k)
		}
	}
	s := tr.Stats()
	if s.Received != 1000 || s.Duplicates != 0 || s.EstimatedLost != 0 || s.ExpectedSpan != 1000 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSeqTrackerWraparound(t *testing.T) {
	tr := NewSeqTracker()
	start := uint16(65500)
	for i := 0; i < 100; i++ {
		tr.Observe(start + uint16(i)) // wraps past 65535
	}
	s := tr.Stats()
	if s.EstimatedLost != 0 {
		t.Errorf("lost = %d across wraparound, want 0", s.EstimatedLost)
	}
	if s.ExpectedSpan != 100 {
		t.Errorf("span = %d, want 100", s.ExpectedSpan)
	}
}

func TestSeqTrackerLossAndRetransmission(t *testing.T) {
	tr := NewSeqTracker()
	tr.Observe(10)
	tr.Observe(11)
	if k := tr.Observe(13); k != SeqGap {
		t.Errorf("gap classified %v", k)
	}
	if k := tr.Observe(12); k != SeqReordered {
		t.Errorf("late arrival classified %v", k)
	}
	if k := tr.Observe(12); k != SeqDuplicate {
		t.Errorf("retransmission classified %v", k)
	}
	s := tr.Stats()
	if s.Duplicates != 1 || s.Reordered != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.EstimatedLost != 0 {
		t.Errorf("lost = %d after recovery, want 0", s.EstimatedLost)
	}
}

func TestSeqTrackerPermanentLoss(t *testing.T) {
	tr := NewSeqTracker()
	for i := 0; i < 50; i++ {
		if i%10 == 3 {
			continue // drop every 10th+3
		}
		tr.Observe(uint16(i))
	}
	s := tr.Stats()
	if s.EstimatedLost != 5 {
		t.Errorf("lost = %d, want 5", s.EstimatedLost)
	}
}

func TestSeqTrackerDuplicateAtMax(t *testing.T) {
	tr := NewSeqTracker()
	tr.Observe(5)
	if k := tr.Observe(5); k != SeqDuplicate {
		t.Errorf("dup at max classified %v", k)
	}
}

func TestJitterConstantSpacing(t *testing.T) {
	// Perfectly periodic stream: jitter must converge to ~0.
	j := NewJitter(90000)
	ts := uint32(0)
	for i := 0; i < 200; i++ {
		j.Observe(float64(i)*0.033, ts)
		ts += 2970 // 33 ms at 90 kHz — matches arrival spacing of 33 ms... close
	}
	// 0.033s * 90000 = 2970 exactly, so jitter should be 0.
	if got := j.Seconds(); got > 1e-9 {
		t.Errorf("jitter = %g, want ~0", got)
	}
}

func TestJitterRespondsToVariance(t *testing.T) {
	j := NewJitter(90000)
	ts := uint32(0)
	arrival := 0.0
	for i := 0; i < 100; i++ {
		delta := 0.033
		if i%2 == 0 {
			delta += 0.010 // alternate ±10 ms: classic jitter
		}
		arrival += delta
		j.Observe(arrival, ts)
		ts += 2970
	}
	got := j.Seconds()
	if got < 0.004 || got > 0.012 {
		t.Errorf("jitter = %g s, want in [4ms, 12ms]", got)
	}
}

func TestJitterVariablePacketizationCorrected(t *testing.T) {
	// Frames covering variable durations but delivered exactly on
	// schedule: the RTP-timestamp correction must keep jitter at zero.
	j := NewJitter(90000)
	ts := uint32(1000)
	arrival := 5.0
	deltasMS := []int{33, 66, 33, 99, 33, 33, 66}
	for i := 0; i < 300; i++ {
		d := deltasMS[i%len(deltasMS)]
		arrival += float64(d) / 1000
		ts += uint32(90 * d)
		j.Observe(arrival, ts)
	}
	if got := j.Seconds(); got > 1e-9 {
		t.Errorf("jitter = %g, want ~0 for on-schedule variable packetization", got)
	}
}

func TestJitterTimestampWraparound(t *testing.T) {
	j := NewJitter(90000)
	ts := uint32(math.MaxUint32 - 5000)
	arrival := 0.0
	for i := 0; i < 50; i++ {
		arrival += 0.033
		j.Observe(arrival, ts)
		ts += 2970 // wraps past 2^32
	}
	if got := j.Seconds(); got > 1e-9 {
		t.Errorf("jitter = %g across TS wraparound, want ~0", got)
	}
}

func TestQuickMarshalParseIdentity(t *testing.T) {
	f := func(pt uint8, seq uint16, ts, ssrc uint32, marker bool, payload []byte) bool {
		p := Packet{
			Header: Header{
				Marker:         marker,
				PayloadType:    pt & 0x7f,
				SequenceNumber: seq,
				Timestamp:      ts,
				SSRC:           ssrc,
			},
			Payload: payload,
		}
		wire, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Parse(wire)
		if err != nil {
			return false
		}
		return got.PayloadType == p.PayloadType && got.SequenceNumber == seq &&
			got.Timestamp == ts && got.SSRC == ssrc && got.Marker == marker &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParse(b *testing.B) {
	p := Packet{Header: Header{PayloadType: 98, SSRC: 42}, Payload: make([]byte, 1100)}
	wire, _ := p.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(wire); err != nil {
			b.Fatal(err)
		}
	}
}
