package rtp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestNTPRoundTrip(t *testing.T) {
	orig := time.Date(2022, 5, 5, 12, 34, 56, 789000000, time.UTC)
	n := NTPFromTime(orig)
	back := n.Time()
	if d := back.Sub(orig); d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("NTP round trip drift %v", d)
	}
}

func TestQuickNTPMonotonic(t *testing.T) {
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	f := func(aMS, bMS uint32) bool {
		ta := base.Add(time.Duration(aMS) * time.Millisecond)
		tb := base.Add(time.Duration(bMS) * time.Millisecond)
		na, nb := NTPFromTime(ta), NTPFromTime(tb)
		if aMS == bMS {
			return na == nb
		}
		if aMS < bMS {
			return na < nb
		}
		return na > nb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRRoundTrip(t *testing.T) {
	sr := SenderReport{
		SSRC:        0x00010203,
		NTPTS:       NTPFromTime(time.Date(2022, 5, 5, 15, 0, 0, 0, time.UTC)),
		RTPTS:       123456,
		PacketCount: 777,
		OctetCount:  88888,
	}
	wire := MarshalSR(sr, false)
	c, err := ParseCompound(wire)
	if err != nil {
		t.Fatalf("ParseCompound: %v", err)
	}
	if len(c.SenderReports) != 1 {
		t.Fatalf("got %d SRs", len(c.SenderReports))
	}
	got := c.SenderReports[0]
	if got.SSRC != sr.SSRC || got.NTPTS != sr.NTPTS || got.RTPTS != sr.RTPTS ||
		got.PacketCount != sr.PacketCount || got.OctetCount != sr.OctetCount {
		t.Errorf("SR = %+v, want %+v", got, sr)
	}
	if len(c.SDES) != 0 {
		t.Errorf("unexpected SDES: %+v", c.SDES)
	}
}

func TestSRWithEmptySDES(t *testing.T) {
	// Zoom media-encap type 34 = SR + SDES where SDES is always empty.
	sr := SenderReport{SSRC: 42, RTPTS: 9, PacketCount: 1, OctetCount: 2}
	wire := MarshalSR(sr, true)
	c, err := ParseCompound(wire)
	if err != nil {
		t.Fatalf("ParseCompound: %v", err)
	}
	if len(c.SenderReports) != 1 || len(c.SDES) != 1 {
		t.Fatalf("SRs=%d SDES=%d, want 1/1", len(c.SenderReports), len(c.SDES))
	}
	if c.SDES[0].SSRC != 42 {
		t.Errorf("SDES SSRC = %d", c.SDES[0].SSRC)
	}
	if c.SDES[0].CNAME != "" {
		t.Errorf("SDES CNAME = %q, want empty", c.SDES[0].CNAME)
	}
	ssrcs := c.ReferencedSSRCs()
	if len(ssrcs) != 2 || ssrcs[0] != 42 || ssrcs[1] != 42 {
		t.Errorf("ReferencedSSRCs = %v", ssrcs)
	}
}

func TestSRWithReceptionReports(t *testing.T) {
	sr := SenderReport{
		SSRC: 1,
		Reports: []ReceptionReport{{
			SSRC:             2,
			FractionLost:     10,
			CumulativeLost:   0x123456,
			HighestSeq:       99999,
			Jitter:           321,
			LastSR:           7,
			DelaySinceLastSR: 8,
		}},
	}
	wire := MarshalSR(sr, false)
	c, err := ParseCompound(wire)
	if err != nil {
		t.Fatalf("ParseCompound: %v", err)
	}
	got := c.SenderReports[0].Reports
	if len(got) != 1 {
		t.Fatalf("reports = %d", len(got))
	}
	if got[0] != sr.Reports[0] {
		t.Errorf("report = %+v, want %+v", got[0], sr.Reports[0])
	}
}

func TestParseCompoundRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x80},
		{0x00, 200, 0, 0}, // version 0
		{0x80, 99, 0, 0},  // unknown first type
		func() []byte { // declared length beyond buffer
			b := MarshalSR(SenderReport{SSRC: 1}, false)
			b[3] = 200
			return b
		}(),
	}
	for i, c := range cases {
		if _, err := ParseCompound(c); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseCompoundToleratesTrailingBye(t *testing.T) {
	wire := MarshalSR(SenderReport{SSRC: 5}, false)
	bye := []byte{0x80 | 1, RTCPTypeBye, 0, 1, 0, 0, 0, 5}
	wire = append(wire, bye...)
	c, err := ParseCompound(wire)
	if err != nil {
		t.Fatalf("ParseCompound: %v", err)
	}
	if !c.HasBye {
		t.Error("HasBye = false")
	}
}

func TestQuickSRRoundTrip(t *testing.T) {
	f := func(ssrc, rtpts, pc, oc uint32, ntp uint64, sdes bool) bool {
		sr := SenderReport{SSRC: ssrc, NTPTS: NTPTime(ntp), RTPTS: rtpts, PacketCount: pc, OctetCount: oc}
		c, err := ParseCompound(MarshalSR(sr, sdes))
		if err != nil || len(c.SenderReports) != 1 {
			return false
		}
		g := c.SenderReports[0]
		if sdes && len(c.SDES) != 1 {
			return false
		}
		return g.SSRC == ssrc && g.RTPTS == rtpts && g.PacketCount == pc && g.OctetCount == oc && g.NTPTS == NTPTime(ntp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
