package rtp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// RTCP packet types (RFC 3550 §12.1).
const (
	RTCPTypeSR   uint8 = 200
	RTCPTypeRR   uint8 = 201
	RTCPTypeSDES uint8 = 202
	RTCPTypeBye  uint8 = 203
	RTCPTypeApp  uint8 = 204
)

// ErrNotRTCP reports that a payload does not look like an RTCP packet.
var ErrNotRTCP = errors.New("rtcp: not an RTCP packet")

// NTPTime is a 64-bit NTP timestamp (seconds since 1900 in the high word,
// fraction in the low word).
type NTPTime uint64

var ntpEpoch = time.Date(1900, 1, 1, 0, 0, 0, 0, time.UTC)

// NTPFromTime converts a wall-clock time to NTP format.
func NTPFromTime(t time.Time) NTPTime {
	d := t.Sub(ntpEpoch)
	sec := uint64(d / time.Second)
	frac := uint64(d%time.Second) << 32 / uint64(time.Second)
	return NTPTime(sec<<32 | frac)
}

// Time converts an NTP timestamp back to wall-clock time.
func (n NTPTime) Time() time.Time {
	sec := uint64(n) >> 32
	frac := uint64(n) & 0xffffffff
	nsec := frac * uint64(time.Second) >> 32
	return ntpEpoch.Add(time.Duration(sec)*time.Second + time.Duration(nsec))
}

// SenderReport is an RTCP SR (RFC 3550 §6.4.1). Zoom emits one per media
// stream per second; the paper found no receiver reports in Zoom traffic
// (§4.2.1), so reception report blocks are parsed but normally empty.
type SenderReport struct {
	SSRC        uint32
	NTPTS       NTPTime
	RTPTS       uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReceptionReport
}

// ReceptionReport is one report block inside an SR or RR.
type ReceptionReport struct {
	SSRC             uint32
	FractionLost     uint8
	CumulativeLost   uint32 // 24-bit
	HighestSeq       uint32
	Jitter           uint32
	LastSR           uint32
	DelaySinceLastSR uint32
}

// SDESItem is one chunk of a source description packet. Zoom's SDES chunks
// are empty in practice (§4.2.3); we still support CNAME round-trips.
type SDESItem struct {
	SSRC  uint32
	CNAME string
}

// CompoundPacket is a parsed RTCP compound packet: any mix of SRs, RRs and
// SDES chunks found back to back in one UDP payload.
type CompoundPacket struct {
	SenderReports []SenderReport
	SDES          []SDESItem
	// HasBye records whether a BYE packet was present.
	HasBye bool
}

// ReferencedSSRCs returns every SSRC mentioned anywhere in the compound
// packet. The paper's RTCP discovery method (§4.2.1) searches payloads for
// SSRC values already seen in RTP packets.
func (c *CompoundPacket) ReferencedSSRCs() []uint32 {
	var out []uint32
	for _, sr := range c.SenderReports {
		out = append(out, sr.SSRC)
		for _, rr := range sr.Reports {
			out = append(out, rr.SSRC)
		}
	}
	for _, s := range c.SDES {
		out = append(out, s.SSRC)
	}
	return out
}

// ParseCompound parses an RTCP compound packet.
func ParseCompound(data []byte) (CompoundPacket, error) {
	var c CompoundPacket
	rest := data
	first := true
	for len(rest) > 0 {
		if len(rest) < 4 {
			return c, fmt.Errorf("%w: %d trailing bytes", ErrNotRTCP, len(rest))
		}
		b0 := rest[0]
		if b0>>6 != Version {
			return c, fmt.Errorf("%w: version %d", ErrNotRTCP, b0>>6)
		}
		count := int(b0 & 0x1f)
		ptype := rest[1]
		words := int(binary.BigEndian.Uint16(rest[2:4]))
		plen := 4 * (words + 1)
		if len(rest) < plen {
			return c, fmt.Errorf("%w: declared length %d exceeds %d", ErrNotRTCP, plen, len(rest))
		}
		body := rest[4:plen]
		switch ptype {
		case RTCPTypeSR:
			sr, err := parseSR(body, count)
			if err != nil {
				return c, err
			}
			c.SenderReports = append(c.SenderReports, sr)
		case RTCPTypeSDES:
			items, err := parseSDES(body, count)
			if err != nil {
				return c, err
			}
			c.SDES = append(c.SDES, items...)
		case RTCPTypeBye:
			c.HasBye = true
		case RTCPTypeRR, RTCPTypeApp:
			// Tolerated but not modeled: Zoom traffic contains no RRs.
		default:
			if first {
				return c, fmt.Errorf("%w: first packet type %d", ErrNotRTCP, ptype)
			}
		}
		rest = rest[plen:]
		first = false
	}
	if first {
		return c, fmt.Errorf("%w: empty payload", ErrNotRTCP)
	}
	return c, nil
}

func parseSR(body []byte, reportCount int) (SenderReport, error) {
	var sr SenderReport
	if len(body) < 24 {
		return sr, fmt.Errorf("%w: SR body %d bytes", ErrNotRTCP, len(body))
	}
	sr.SSRC = binary.BigEndian.Uint32(body[0:4])
	sr.NTPTS = NTPTime(binary.BigEndian.Uint64(body[4:12]))
	sr.RTPTS = binary.BigEndian.Uint32(body[12:16])
	sr.PacketCount = binary.BigEndian.Uint32(body[16:20])
	sr.OctetCount = binary.BigEndian.Uint32(body[20:24])
	rest := body[24:]
	if len(rest) < 24*reportCount {
		return sr, fmt.Errorf("%w: SR report blocks", ErrNotRTCP)
	}
	for i := 0; i < reportCount; i++ {
		b := rest[24*i:]
		sr.Reports = append(sr.Reports, ReceptionReport{
			SSRC:             binary.BigEndian.Uint32(b[0:4]),
			FractionLost:     b[4],
			CumulativeLost:   uint32(b[5])<<16 | uint32(b[6])<<8 | uint32(b[7]),
			HighestSeq:       binary.BigEndian.Uint32(b[8:12]),
			Jitter:           binary.BigEndian.Uint32(b[12:16]),
			LastSR:           binary.BigEndian.Uint32(b[16:20]),
			DelaySinceLastSR: binary.BigEndian.Uint32(b[20:24]),
		})
	}
	return sr, nil
}

func parseSDES(body []byte, chunkCount int) ([]SDESItem, error) {
	var items []SDESItem
	rest := body
	for i := 0; i < chunkCount; i++ {
		if len(rest) < 4 {
			return items, fmt.Errorf("%w: SDES chunk", ErrNotRTCP)
		}
		item := SDESItem{SSRC: binary.BigEndian.Uint32(rest[0:4])}
		rest = rest[4:]
		// Items until a zero terminator, then pad to 4 bytes.
		consumed := 0
		for len(rest) > 0 && rest[0] != 0 {
			if len(rest) < 2 {
				return items, fmt.Errorf("%w: SDES item header", ErrNotRTCP)
			}
			itemType, ln := rest[0], int(rest[1])
			if len(rest) < 2+ln {
				return items, fmt.Errorf("%w: SDES item body", ErrNotRTCP)
			}
			if itemType == 1 { // CNAME
				item.CNAME = string(rest[2 : 2+ln])
			}
			rest = rest[2+ln:]
			consumed += 2 + ln
		}
		// Skip the terminator and padding to the next 32-bit boundary.
		pad := 4 - (consumed % 4)
		if pad > len(rest) {
			pad = len(rest)
		}
		rest = rest[pad:]
		items = append(items, item)
	}
	return items, nil
}

// MarshalSR serializes a sender report, optionally followed by an SDES
// chunk (always structurally present when withSDES is set, matching Zoom's
// type-34 packets whose SDES is empty).
func MarshalSR(sr SenderReport, withSDES bool) []byte {
	words := 6 + 6*len(sr.Reports)
	out := make([]byte, 0, 4*(words+1)+12)
	b0 := byte(Version<<6) | byte(len(sr.Reports))
	out = append(out, b0, RTCPTypeSR)
	out = binary.BigEndian.AppendUint16(out, uint16(words))
	out = binary.BigEndian.AppendUint32(out, sr.SSRC)
	out = binary.BigEndian.AppendUint64(out, uint64(sr.NTPTS))
	out = binary.BigEndian.AppendUint32(out, sr.RTPTS)
	out = binary.BigEndian.AppendUint32(out, sr.PacketCount)
	out = binary.BigEndian.AppendUint32(out, sr.OctetCount)
	for _, rr := range sr.Reports {
		out = binary.BigEndian.AppendUint32(out, rr.SSRC)
		out = append(out, rr.FractionLost, byte(rr.CumulativeLost>>16), byte(rr.CumulativeLost>>8), byte(rr.CumulativeLost))
		out = binary.BigEndian.AppendUint32(out, rr.HighestSeq)
		out = binary.BigEndian.AppendUint32(out, rr.Jitter)
		out = binary.BigEndian.AppendUint32(out, rr.LastSR)
		out = binary.BigEndian.AppendUint32(out, rr.DelaySinceLastSR)
	}
	if withSDES {
		// One chunk: SSRC + terminator padded to a word (empty item list,
		// as observed in Zoom traffic).
		out = append(out, byte(Version<<6)|1, RTCPTypeSDES, 0, 2)
		out = binary.BigEndian.AppendUint32(out, sr.SSRC)
		out = append(out, 0, 0, 0, 0)
	}
	return out
}
