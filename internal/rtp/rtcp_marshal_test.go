package rtp

import (
	"testing"
	"testing/quick"
)

func TestRRRoundTrip(t *testing.T) {
	rr := ReceiverReport{
		SSRC: 42,
		Reports: []ReceptionReport{{
			SSRC: 7, FractionLost: 12, CumulativeLost: 345,
			HighestSeq: 99999, Jitter: 88, LastSR: 1, DelaySinceLastSR: 2,
		}},
	}
	got, err := ParseRR(MarshalRR(rr))
	if err != nil {
		t.Fatalf("ParseRR: %v", err)
	}
	if got.SSRC != 42 || len(got.Reports) != 1 || got.Reports[0] != rr.Reports[0] {
		t.Errorf("got %+v", got)
	}
}

func TestParseRRRejects(t *testing.T) {
	if _, err := ParseRR(nil); err == nil {
		t.Error("nil accepted")
	}
	sr := MarshalSR(SenderReport{SSRC: 1}, false)
	if _, err := ParseRR(sr); err == nil {
		t.Error("SR accepted as RR")
	}
	rr := MarshalRR(ReceiverReport{SSRC: 1, Reports: []ReceptionReport{{SSRC: 2}}})
	if _, err := ParseRR(rr[:10]); err == nil {
		t.Error("truncated RR accepted")
	}
}

func TestByeInCompound(t *testing.T) {
	wire := MarshalSR(SenderReport{SSRC: 5}, false)
	wire = append(wire, MarshalBye([]uint32{5})...)
	c, err := ParseCompound(wire)
	if err != nil {
		t.Fatalf("ParseCompound: %v", err)
	}
	if !c.HasBye {
		t.Error("BYE not detected")
	}
}

func TestQuickRRRoundTrip(t *testing.T) {
	f := func(ssrc, rssrc, hseq, jit uint32, fl uint8, cum uint32) bool {
		rr := ReceiverReport{SSRC: ssrc, Reports: []ReceptionReport{{
			SSRC: rssrc, FractionLost: fl, CumulativeLost: cum & 0xffffff,
			HighestSeq: hseq, Jitter: jit,
		}}}
		got, err := ParseRR(MarshalRR(rr))
		return err == nil && got.SSRC == ssrc && got.Reports[0] == rr.Reports[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
