package rtp

import "testing"

// FuzzRTPParse drives the RTP and RTCP codecs with arbitrary bytes: they
// must never panic, and anything that parses must re-marshal and
// re-parse without error.
func FuzzRTPParse(f *testing.F) {
	valid := Packet{
		Header: Header{
			Marker:         true,
			PayloadType:    111,
			SequenceNumber: 4242,
			Timestamp:      1234567,
			SSRC:           0xcafebabe,
			CSRC:           []uint32{1, 2},
		},
		Payload: []byte("opus-frame"),
	}
	b, err := valid.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	ext := valid
	ext.Extension = true
	ext.ExtensionProfile = 0xbede
	ext.ExtensionData = []byte{1, 2, 3, 4}
	if b, err = ext.Marshal(); err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add(MarshalSR(SenderReport{SSRC: 9, NTPTS: 1 << 40, RTPTS: 90000, PacketCount: 10, OctetCount: 1000}, true))
	f.Add([]byte{})
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		if p, err := Parse(data); err == nil {
			out, err := p.Marshal()
			if err != nil {
				t.Fatalf("re-marshal of parsed packet failed: %v", err)
			}
			if _, err := Parse(out); err != nil {
				t.Fatalf("re-parse of marshal output failed: %v", err)
			}
		}
		if cp, err := ParseCompound(data); err == nil {
			for _, sr := range cp.SenderReports {
				_ = MarshalSR(sr, false)
			}
		}
	})
}
