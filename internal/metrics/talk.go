package metrics

import (
	"time"

	"zoomlens/internal/zoom"
)

// TalkTracker quantifies when and how much a participant actually talks,
// using the audio substream split the paper discovered (§4.2.3): PT 112
// packets flow while the participant speaks (or emits significant
// sound), fixed 40-byte PT 99 packets during silence, and PT 113 when
// the mode cannot be determined (mobile clients).
type TalkTracker struct {
	// MergeGap joins speaking segments separated by less than this.
	MergeGap time.Duration

	segments []TalkSegment
	open     bool
	start    time.Time
	last     time.Time

	speakingPkts uint64
	silentPkts   uint64
	unknownPkts  uint64
	firstSeen    time.Time
	lastSeen     time.Time
}

// TalkSegment is one continuous speaking interval.
type TalkSegment struct {
	Start time.Time
	End   time.Time
}

// Duration returns the segment length.
func (s TalkSegment) Duration() time.Duration { return s.End.Sub(s.Start) }

// NewTalkTracker returns a tracker with a 500 ms merge gap.
func NewTalkTracker() *TalkTracker {
	return &TalkTracker{MergeGap: 500 * time.Millisecond}
}

// Observe feeds one audio packet of the stream.
func (t *TalkTracker) Observe(at time.Time, pt uint8) {
	if t.firstSeen.IsZero() {
		t.firstSeen = at
	}
	t.lastSeen = at
	switch zoom.ClassifySubstream(zoom.TypeAudio, pt) {
	case zoom.SubAudioSpeaking:
		t.speakingPkts++
		if t.open && at.Sub(t.last) <= t.MergeGap {
			t.last = at
			return
		}
		if t.open {
			t.segments = append(t.segments, TalkSegment{Start: t.start, End: t.last})
		}
		t.open = true
		t.start, t.last = at, at
	case zoom.SubAudioSilent:
		t.silentPkts++
		t.closeIfStale(at)
	case zoom.SubAudioMobile:
		t.unknownPkts++
	default:
		// FEC and unknown types don't affect talk state.
	}
}

func (t *TalkTracker) closeIfStale(at time.Time) {
	if t.open && at.Sub(t.last) > t.MergeGap {
		t.segments = append(t.segments, TalkSegment{Start: t.start, End: t.last})
		t.open = false
	}
}

// Finish closes any open segment.
func (t *TalkTracker) Finish() {
	if t.open {
		t.segments = append(t.segments, TalkSegment{Start: t.start, End: t.last})
		t.open = false
	}
}

// Segments returns the completed speaking intervals.
func (t *TalkTracker) Segments() []TalkSegment { return t.segments }

// TalkStats summarizes the stream.
type TalkStats struct {
	// Speaking is the total speaking time.
	Speaking time.Duration
	// Observed is the stream's observed span.
	Observed time.Duration
	// SpeakingFraction = Speaking / Observed.
	SpeakingFraction float64
	// Segments is the number of talk spurts.
	Segments int
	// ModeKnown is false when the stream used PT 113 exclusively: the
	// talk state cannot be determined (§4.2.3: "When type 113 is used,
	// we cannot tell if the participant talks or not").
	ModeKnown bool
}

// Stats returns the summary (call Finish first).
func (t *TalkTracker) Stats() TalkStats {
	var speaking time.Duration
	for _, s := range t.segments {
		speaking += s.Duration()
	}
	st := TalkStats{
		Speaking:  speaking,
		Segments:  len(t.segments),
		ModeKnown: t.speakingPkts+t.silentPkts > 0,
	}
	if !t.firstSeen.IsZero() {
		st.Observed = t.lastSeen.Sub(t.firstSeen)
	}
	if st.Observed > 0 {
		st.SpeakingFraction = float64(speaking) / float64(st.Observed)
	}
	return st
}
