// Package metrics derives the performance metrics of §5 of the paper
// from parsed Zoom packet streams: overall and per-media bit rates
// (§5.1), frame rate by both methods and frame size (§5.2), latency from
// RTP stream copies (§5.3), frame-level jitter (§5.4), and loss,
// retransmission, frame delay, and packetization time (§5.5).
package metrics

import (
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// Frame is a reassembled media frame.
type Frame struct {
	// RTPTimestamp identifies the frame within its stream.
	RTPTimestamp uint32
	// FrameSequence is the Zoom frame sequence number (video only).
	FrameSequence uint16
	// FirstPacket and Completed are the arrival times of the frame's
	// first and last packet at the monitor.
	FirstPacket time.Time
	Completed   time.Time
	// Packets is the number of distinct packets observed.
	Packets int
	// ExpectedPackets is the Zoom "# packets in frame" header value
	// (video only; 0 otherwise).
	ExpectedPackets int
	// Bytes is the summed RTP payload size: the frame size metric of
	// §5.2.
	Bytes int
	// SawMarker reports whether the RTP marker bit was seen (set on the
	// last packet of a frame).
	SawMarker bool
}

// Delay returns the frame delay of §5.5: time from first packet to full
// delivery. High values indicate retransmissions within the frame.
func (f *Frame) Delay() time.Duration { return f.Completed.Sub(f.FirstPacket) }

// FrameAssembler groups a substream's RTP packets into frames by RTP
// timestamp and decides completion.
//
// For video, the Zoom media encapsulation carries the expected number of
// packets per frame (Table 1), so a frame completes exactly when that
// many distinct sequence numbers arrived (§5.2 method 1). For audio and
// screen share, where the field is absent, a frame completes when its
// marker-bit packet and all preceding packets are present, falling back
// to "next frame started" as a completion signal for marker-less frames.
type FrameAssembler struct {
	// MaxOpenFrames bounds memory; oldest incomplete frames are flushed
	// (and reported incomplete) beyond it.
	MaxOpenFrames int
	// OnFrame receives every completed (or flushed) frame in completion
	// order. Flushed incomplete frames have SawMarker==false and
	// Packets < ExpectedPackets (when the latter is known).
	OnFrame func(Frame, bool) // (frame, complete)

	open   map[uint32]*openFrame
	order  []uint32 // insertion order of open frames
	free   []*openFrame
	lastTS uint32
	seen   bool
}

type openFrame struct {
	frame Frame
	// seqs holds the distinct sequence numbers seen for this frame.
	// Frames are at most a few hundred packets, so a linear dup scan over
	// a reused slice beats a per-frame map allocation on the hot path.
	seqs []uint16
}

// NewFrameAssembler returns an assembler delivering frames to onFrame.
func NewFrameAssembler(onFrame func(Frame, bool)) *FrameAssembler {
	return &FrameAssembler{
		MaxOpenFrames: 64,
		OnFrame:       onFrame,
		open:          make(map[uint32]*openFrame),
	}
}

// Observe ingests one RTP media packet of the substream.
func (a *FrameAssembler) Observe(at time.Time, media *zoom.MediaEncap, pkt *rtp.Packet) {
	if a.open == nil {
		// Lazily built so a restored-but-idle assembler costs no map.
		a.open = make(map[uint32]*openFrame)
	}
	ts := pkt.Timestamp
	of := a.open[ts]
	if of == nil {
		if n := len(a.free); n > 0 {
			of = a.free[n-1]
			a.free[n-1] = nil
			a.free = a.free[:n-1]
			of.frame = Frame{RTPTimestamp: ts, FirstPacket: at}
			of.seqs = of.seqs[:0]
		} else {
			of = &openFrame{frame: Frame{RTPTimestamp: ts, FirstPacket: at}}
		}
		if media.Type == zoom.TypeVideo {
			of.frame.FrameSequence = media.FrameSequence
			of.frame.ExpectedPackets = int(media.PacketsInFrame)
		}
		a.open[ts] = of
		a.order = append(a.order, ts)
		// A new frame starting is a completion hint for older marker-less
		// frames without a packet count: finish any frame strictly older
		// than the previous timestamp.
		if a.seen && rtp.TSDiff(a.lastTS, ts) > 0 {
			a.flushOlderThan(ts)
		}
	}
	for _, s := range of.seqs {
		if s == pkt.SequenceNumber {
			return // Zoom retransmission: same seq, do not double count
		}
	}
	of.seqs = append(of.seqs, pkt.SequenceNumber)
	of.frame.Packets++
	of.frame.Bytes += len(pkt.Payload)
	if pkt.Marker {
		of.frame.SawMarker = true
	}
	if at.After(of.frame.Completed) {
		of.frame.Completed = at
	}
	if a.seen {
		if rtp.TSDiff(a.lastTS, ts) > 0 {
			a.lastTS = ts
		}
	} else {
		a.lastTS = ts
		a.seen = true
	}

	if a.isComplete(of) {
		a.finish(ts, true)
	} else if len(a.open) > a.MaxOpenFrames {
		a.flushOldest()
	}
}

func (a *FrameAssembler) isComplete(of *openFrame) bool {
	if of.frame.ExpectedPackets > 0 {
		return of.frame.Packets >= of.frame.ExpectedPackets
	}
	// Without a count, the marker bit ends the frame. Single-packet
	// frames (all Zoom audio) carry the marker or complete on next-frame
	// start via flushOlderThan.
	return of.frame.SawMarker
}

func (a *FrameAssembler) finish(ts uint32, complete bool) {
	of := a.open[ts]
	if of == nil {
		return
	}
	delete(a.open, ts)
	for i, v := range a.order {
		if v == ts {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	if a.OnFrame != nil {
		a.OnFrame(of.frame, complete)
	}
	if len(a.free) < a.MaxOpenFrames {
		a.free = append(a.free, of)
	}
}

// flushOlderThan completes marker-less, countless frames older than ts.
func (a *FrameAssembler) flushOlderThan(ts uint32) {
	var stale []uint32
	for ots, of := range a.open {
		if ots == ts {
			continue
		}
		if of.frame.ExpectedPackets == 0 && rtp.TSDiff(ots, ts) > 0 {
			stale = append(stale, ots)
		}
	}
	for _, ots := range stale {
		a.finish(ots, true)
	}
}

func (a *FrameAssembler) flushOldest() {
	if len(a.order) == 0 {
		return
	}
	a.finish(a.order[0], false)
}

// Flush completes all open frames (end of stream). Frames with a known
// packet count that is not met are reported incomplete.
func (a *FrameAssembler) Flush() {
	for len(a.order) > 0 {
		ts := a.order[0]
		of := a.open[ts]
		complete := of != nil && (a.isComplete(of) || of.frame.ExpectedPackets == 0)
		a.finish(ts, complete)
	}
}

// FrameRateWindow implements §5.2 method 1: a sliding one-second window
// of completed frames whose occupancy is the delivered frame rate.
type FrameRateWindow struct {
	window time.Duration
	times  []time.Time // completion times, oldest first
}

// NewFrameRateWindow returns a window of the given width (the paper uses
// one second).
func NewFrameRateWindow(window time.Duration) *FrameRateWindow {
	if window <= 0 {
		window = time.Second
	}
	return &FrameRateWindow{window: window}
}

// Add records a completed frame and returns the frame rate at that
// instant (frames completed in the trailing window, per second).
func (w *FrameRateWindow) Add(completed time.Time) float64 {
	w.times = append(w.times, completed)
	return w.Rate(completed)
}

// Rate evicts frames older than the window relative to now and returns
// the current rate in frames per second.
func (w *FrameRateWindow) Rate(now time.Time) float64 {
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.times) && !w.times[i].After(cut) {
		i++
	}
	if i > 0 {
		w.times = append(w.times[:0], w.times[i:]...)
	}
	return float64(len(w.times)) * float64(time.Second) / float64(w.window)
}

// EncoderFrameRate implements §5.2 method 2: the encoder's intended frame
// rate FR = clockRate / ΔRTP between consecutive frames. It also yields
// the packetization time FR⁻¹ used by the stall analysis of §5.5.
type EncoderFrameRate struct {
	clockRate float64
	lastTS    uint32
	seen      bool
}

// NewEncoderFrameRate returns an estimator for a given RTP clock rate.
func NewEncoderFrameRate(clockRate float64) *EncoderFrameRate {
	return &EncoderFrameRate{clockRate: clockRate}
}

// Observe feeds the RTP timestamp of each new frame (in decode order) and
// returns (frame rate in fps, packetization time, ok). ok is false for
// the first frame and for non-increasing timestamps.
func (e *EncoderFrameRate) Observe(ts uint32) (fps float64, packetization time.Duration, ok bool) {
	if !e.seen {
		e.seen = true
		e.lastTS = ts
		return 0, 0, false
	}
	d := rtp.TSDiff(e.lastTS, ts)
	if d <= 0 {
		// Reordered or duplicated frame timestamp: keep the baseline.
		// Advancing lastTS here would regress it, inflating the next
		// in-order frame's ΔRTP and skewing both the method-2 frame rate
		// and the packetization time fed to stall analysis.
		return 0, 0, false
	}
	e.lastTS = ts
	fps = e.clockRate / float64(d)
	packetization = time.Duration(float64(d) / e.clockRate * float64(time.Second))
	return fps, packetization, true
}
