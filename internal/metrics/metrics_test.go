package metrics

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

// feedVideo pushes n video frames of pktsPerFrame packets each at the
// given fps into sm, returning the time after the last packet.
func feedVideo(sm *StreamMetrics, start time.Time, n, pktsPerFrame int, fps float64, payloadLen int) time.Time {
	seq := uint16(0)
	ts := uint32(10000)
	at := start
	frameGap := time.Duration(float64(time.Second) / fps)
	tsInc := uint32(zoom.VideoClockRate / fps)
	for f := 0; f < n; f++ {
		media := zoom.MediaEncap{
			Type: zoom.TypeVideo, Sequence: seq, Timestamp: ts,
			FrameSequence: uint16(f), PacketsInFrame: uint8(pktsPerFrame),
		}
		for p := 0; p < pktsPerFrame; p++ {
			pkt := rtp.Packet{
				Header: rtp.Header{
					PayloadType:    zoom.PTVideoMain,
					SequenceNumber: seq,
					Timestamp:      ts,
					SSRC:           1,
					Marker:         p == pktsPerFrame-1,
				},
				Payload: make([]byte, payloadLen),
			}
			sm.Observe(at, payloadLen+70, &media, &pkt)
			seq++
			at = at.Add(time.Millisecond) // back-to-back burst
		}
		at = at.Add(frameGap - time.Duration(pktsPerFrame)*time.Millisecond)
		ts += tsInc
	}
	return at
}

func TestFrameAssemblyVideo(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	feedVideo(sm, t0, 60, 3, 30, 1000)
	sm.Finish()
	if sm.FramesTotal != 60 {
		t.Fatalf("frames = %d, want 60", sm.FramesTotal)
	}
	if sm.FramesIncomplete != 0 {
		t.Errorf("incomplete = %d", sm.FramesIncomplete)
	}
	// Frame size = 3 packets × 1000 B.
	for _, s := range sm.FrameSize.Samples {
		if s.Value != 3000 {
			t.Fatalf("frame size = %v, want 3000", s.Value)
		}
	}
	// After warm-up the window rate should be ~30 fps.
	last := sm.FrameRate.Samples[len(sm.FrameRate.Samples)-1]
	if last.Value < 28 || last.Value > 31 {
		t.Errorf("method-1 frame rate = %v, want ~30", last.Value)
	}
	// Method 2 must agree exactly for a constant-rate encoder.
	enc := sm.EncoderRate.Samples[len(sm.EncoderRate.Samples)-1]
	if enc.Value < 29.9 || enc.Value > 30.1 {
		t.Errorf("method-2 frame rate = %v, want 30", enc.Value)
	}
	// Packetization time 1/30 s ≈ 33.3 ms.
	pt := sm.Packetization.Samples[0].Value
	if pt < 33 || pt < 33.0 && pt > 34 {
		t.Errorf("packetization = %v ms", pt)
	}
}

func TestEncoderRateDivergesUnderCongestion(t *testing.T) {
	// §5.2: during congestion delivered rate (method 1) drops below the
	// encoder rate (method 2) until the encoder adapts. Simulate stalled
	// delivery: frames generated at 30 fps but delivered in bursts.
	sm := NewStreamMetrics(zoom.TypeVideo)
	ts := uint32(0)
	at := t0
	for f := 0; f < 30; f++ {
		media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: ts, FrameSequence: uint16(f), PacketsInFrame: 1}
		pkt := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: uint16(f), Timestamp: ts, SSRC: 1, Marker: true}, Payload: make([]byte, 500)}
		sm.Observe(at, 570, &media, &pkt)
		ts += 3000 // encoder says exactly 30 fps
		if f%10 == 9 {
			at = at.Add(800 * time.Millisecond) // stall
		} else {
			at = at.Add(20 * time.Millisecond) // catch-up burst
		}
	}
	sm.Finish()
	// Encoder rate stays 30; delivered rate fluctuates above/below.
	for _, s := range sm.EncoderRate.Samples {
		if s.Value < 29.9 || s.Value > 30.1 {
			t.Fatalf("encoder rate = %v", s.Value)
		}
	}
	var sawLow bool
	for _, s := range sm.FrameRate.Samples[5:] {
		if s.Value < 20 {
			sawLow = true
		}
	}
	if !sawLow {
		t.Error("delivered rate never diverged below the encoder rate under stalls")
	}
}

func TestFrameDelayReflectsRetransmission(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: 5000, FrameSequence: 1, PacketsInFrame: 3}
	mk := func(seq uint16, marker bool) *rtp.Packet {
		return &rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: seq, Timestamp: 5000, SSRC: 1, Marker: marker}, Payload: make([]byte, 500)}
	}
	sm.Observe(t0, 570, &media, mk(0, false))
	sm.Observe(t0.Add(time.Millisecond), 570, &media, mk(1, false))
	// Third packet lost, retransmitted after 100ms+RTT (§5.5).
	sm.Observe(t0.Add(130*time.Millisecond), 570, &media, mk(2, true))
	sm.Finish()
	if sm.FramesTotal != 1 {
		t.Fatalf("frames = %d", sm.FramesTotal)
	}
	if d := sm.FrameDelay.Samples[0].Value; d < 129 || d > 131 {
		t.Errorf("frame delay = %v ms, want ~130", d)
	}
}

func TestDuplicatePacketsNotDoubleCounted(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: 5000, FrameSequence: 1, PacketsInFrame: 2}
	mk := func(seq uint16) *rtp.Packet {
		return &rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: seq, Timestamp: 5000, SSRC: 1}, Payload: make([]byte, 500)}
	}
	sm.Observe(t0, 570, &media, mk(0))
	sm.Observe(t0.Add(time.Millisecond), 570, &media, mk(0)) // retransmission
	sm.Observe(t0.Add(2*time.Millisecond), 570, &media, mk(1))
	sm.Finish()
	if sm.FramesTotal != 1 {
		t.Fatalf("frames = %d", sm.FramesTotal)
	}
	if sz := sm.FrameSize.Samples[0].Value; sz != 1000 {
		t.Errorf("frame size = %v, want 1000 (dup not double-counted)", sz)
	}
	loss := sm.LossStats()
	if loss.Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", loss.Duplicates)
	}
}

func TestAudioFramesCompleteViaNextFrame(t *testing.T) {
	// Audio packets carry no packet count and (in Zoom) no marker;
	// frames complete when the next one starts.
	sm := NewStreamMetrics(zoom.TypeAudio)
	at := t0
	ts := uint32(0)
	for i := 0; i < 50; i++ {
		media := zoom.MediaEncap{Type: zoom.TypeAudio, Timestamp: ts}
		pkt := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTAudioSpeak, SequenceNumber: uint16(i), Timestamp: ts, SSRC: 7}, Payload: make([]byte, 120)}
		sm.Observe(at, 190, &media, &pkt)
		at = at.Add(20 * time.Millisecond)
		ts += 320
	}
	sm.Finish()
	if sm.FramesTotal != 50 {
		t.Errorf("audio frames = %d, want 50", sm.FramesTotal)
	}
}

func TestMediaRateBins(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	feedVideo(sm, t0, 90, 2, 30, 1000) // 3 seconds at 30fps, 2kB/frame
	sm.Finish()
	if len(sm.MediaRate.Samples) < 3 {
		t.Fatalf("rate bins = %d", len(sm.MediaRate.Samples))
	}
	// Full middle bin: 30 frames × 2000 B × 8 = 480000 bits.
	mid := sm.MediaRate.Samples[1]
	if mid.Value < 400000 || mid.Value > 560000 {
		t.Errorf("media rate = %v bps, want ≈480k", mid.Value)
	}
	wire := sm.WireRate.Samples[1]
	if wire.Value <= mid.Value {
		t.Error("wire rate should exceed media rate")
	}
}

func TestJitterSeriesOnSmoothStreamIsLow(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	feedVideo(sm, t0, 120, 2, 30, 800)
	sm.Finish()
	if len(sm.JitterMS.Samples) == 0 {
		t.Fatal("no jitter samples")
	}
	last := sm.JitterMS.Samples[len(sm.JitterMS.Samples)-1]
	if last.Value > 1.0 {
		t.Errorf("jitter = %v ms on smooth stream", last.Value)
	}
}

func TestFECDoesNotInflateFrames(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	// One main frame + one FEC packet with the same timestamp.
	media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: 100, FrameSequence: 1, PacketsInFrame: 1}
	main := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: 0, Timestamp: 100, SSRC: 1, Marker: true}, Payload: make([]byte, 900)}
	fec := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTFEC, SequenceNumber: 0, Timestamp: 100, SSRC: 1}, Payload: make([]byte, 300)}
	sm.Observe(t0, 970, &media, &main)
	sm.Observe(t0.Add(time.Millisecond), 370, &media, &fec)
	sm.Finish()
	if sm.FramesTotal != 1 {
		t.Errorf("frames = %d, want 1 (FEC must not create frames)", sm.FramesTotal)
	}
	if sm.MediaBytes != 1200 {
		t.Errorf("media bytes = %d, want 1200 (FEC still counts for rate)", sm.MediaBytes)
	}
	if got := sm.SubstreamPTs(); len(got) != 2 || got[0] != 98 || got[1] != 110 {
		t.Errorf("substreams = %v", got)
	}
}

func TestSeriesBin(t *testing.T) {
	var s Series
	s.Add(t0.Add(100*time.Millisecond), 10)
	s.Add(t0.Add(600*time.Millisecond), 20)
	s.Add(t0.Add(2500*time.Millisecond), 30)
	bins := s.Bin(t0, time.Second, "mean")
	if len(bins) != 3 {
		t.Fatalf("bins = %d, want 3 (including empty middle)", len(bins))
	}
	if bins[0].Value != 15 || bins[1].Value != 0 || bins[2].Value != 30 {
		t.Errorf("bins = %+v", bins)
	}
	sums := s.Bin(t0, time.Second, "sum")
	if sums[0].Value != 30 {
		t.Errorf("sum bin = %v", sums[0].Value)
	}
	counts := s.Bin(t0, time.Second, "count")
	if counts[0].Value != 2 || counts[2].Value != 1 {
		t.Errorf("count bins = %+v", counts)
	}
}

func TestCopyMatcherRTT(t *testing.T) {
	cm := NewCopyMatcher()
	up := layers.FiveTuple{Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"), SrcPort: 52000, DstPort: 8801, Proto: layers.ProtoUDP}
	down := layers.FiveTuple{Src: netip.MustParseAddr("52.81.3.4"), Dst: netip.MustParseAddr("10.8.7.7"), SrcPort: 8801, DstPort: 61000, Proto: layers.ProtoUDP}
	const rttMS = 23
	var got []RTTSample
	for i := 0; i < 100; i++ {
		at := t0.Add(time.Duration(i) * 33 * time.Millisecond)
		cm.Observe(1, up, 98, uint16(i), uint32(i*2970), at)
		if s, ok := cm.Observe(1, down, 98, uint16(i), uint32(i*2970), at.Add(rttMS*time.Millisecond)); ok {
			got = append(got, s)
		}
	}
	if len(got) != 100 {
		t.Fatalf("samples = %d, want 100", len(got))
	}
	for _, s := range got {
		if s.RTT != rttMS*time.Millisecond {
			t.Fatalf("rtt = %v", s.RTT)
		}
	}
	if len(cm.SeriesMS().Samples) != 100 {
		t.Error("SeriesMS size mismatch")
	}
}

func TestCopyMatcherIgnoresSameFlowAndStale(t *testing.T) {
	cm := NewCopyMatcher()
	up := layers.FiveTuple{Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"), SrcPort: 52000, DstPort: 8801, Proto: layers.ProtoUDP}
	down := up.Reverse()
	cm.Observe(1, up, 98, 7, 100, t0)
	// Retransmission on the same flow: no sample.
	if _, ok := cm.Observe(1, up, 98, 7, 100, t0.Add(time.Millisecond)); ok {
		t.Error("same-flow duplicate produced a sample")
	}
	// A copy arriving after MaxAge: no sample.
	if _, ok := cm.Observe(1, down, 98, 7, 100, t0.Add(time.Minute)); ok {
		t.Error("stale copy produced a sample")
	}
	// Different unified stream: no match.
	cm2 := NewCopyMatcher()
	cm2.Observe(1, up, 98, 9, 500, t0)
	if _, ok := cm2.Observe(2, down, 98, 9, 500, t0.Add(time.Millisecond)); ok {
		t.Error("cross-stream match")
	}
}

func TestFrameRateWindowEviction(t *testing.T) {
	w := NewFrameRateWindow(time.Second)
	for i := 0; i < 30; i++ {
		w.Add(t0.Add(time.Duration(i) * 33 * time.Millisecond))
	}
	if r := w.Rate(t0.Add(time.Second)); r < 28 || r > 31 {
		t.Errorf("rate = %v", r)
	}
	// Ten seconds later everything evicts.
	if r := w.Rate(t0.Add(11 * time.Second)); r != 0 {
		t.Errorf("rate after idle = %v, want 0", r)
	}
}

func TestEncoderFrameRate(t *testing.T) {
	e := NewEncoderFrameRate(90000)
	if _, _, ok := e.Observe(1000); ok {
		t.Error("first frame should not produce a rate")
	}
	fps, pt, ok := e.Observe(1000 + 3000)
	if !ok || fps != 30 {
		t.Errorf("fps = %v ok=%v", fps, ok)
	}
	if pt != time.Second/30 {
		t.Errorf("packetization = %v", pt)
	}
	// Non-increasing timestamp: not ok.
	if _, _, ok := e.Observe(1000); ok {
		t.Error("backwards timestamp accepted")
	}
}
