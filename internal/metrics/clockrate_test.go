package metrics

import (
	"math/rand"
	"testing"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

func framesAtClock(rate float64, fps float64, n int, jitter time.Duration, seed int64) []FrameObservation {
	rng := rand.New(rand.NewSource(seed))
	var out []FrameObservation
	at := t0
	ts := uint32(1000)
	period := time.Duration(float64(time.Second) / fps)
	for i := 0; i < n; i++ {
		j := time.Duration(0)
		if jitter > 0 {
			j = time.Duration(rng.Int63n(int64(jitter)))
		}
		out = append(out, FrameObservation{At: at.Add(j), TS: ts})
		at = at.Add(period)
		ts += uint32(rate / fps)
	}
	return out
}

func TestInferClockRate90kVideo(t *testing.T) {
	frames := framesAtClock(90000, 28, 200, 4*time.Millisecond, 1)
	est, ok := InferClockRate(frames)
	if !ok {
		t.Fatalf("inference failed: %+v", est)
	}
	if est.ClockRate != 90000 {
		t.Errorf("clock = %v, want 90000", est.ClockRate)
	}
}

func TestInferClockRateAudio(t *testing.T) {
	// 16 kHz audio at 50 packets/s.
	frames := framesAtClock(16000, 50, 300, time.Millisecond, 2)
	est, ok := InferClockRate(frames)
	if !ok || est.ClockRate != 16000 {
		t.Errorf("clock = %+v ok=%v, want 16000", est, ok)
	}
}

func TestInferClockRateAllCandidatesRecoverable(t *testing.T) {
	for i, rate := range CandidateClockRates {
		frames := framesAtClock(rate, 25, 200, 2*time.Millisecond, int64(10+i))
		est, ok := InferClockRate(frames)
		if !ok || est.ClockRate != rate {
			t.Errorf("rate %v: got %+v ok=%v", rate, est, ok)
		}
	}
}

func TestInferClockRateRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var frames []FrameObservation
	at := t0
	for i := 0; i < 100; i++ {
		at = at.Add(time.Duration(1+rng.Intn(80)) * time.Millisecond)
		frames = append(frames, FrameObservation{At: at, TS: rng.Uint32() % (1 << 20)})
	}
	// Mostly decreasing/random timestamps: few usable transitions or a
	// huge error either way.
	if est, ok := InferClockRate(frames); ok && est.Error < 0.1 {
		t.Errorf("noise inferred confidently: %+v", est)
	}
}

func TestInferClockRateTooFewFrames(t *testing.T) {
	frames := framesAtClock(90000, 30, 5, 0, 4)
	if _, ok := InferClockRate(frames); ok {
		t.Error("inference succeeded on 5 frames")
	}
}

func TestInferClockRateFromStreamMetrics(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	at := t0
	ts := uint32(0)
	for i := 0; i < 150; i++ {
		media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: ts, PacketsInFrame: 1}
		pkt := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: uint16(i), Timestamp: ts, SSRC: 1, Marker: true}, Payload: make([]byte, 500)}
		sm.Observe(at, 570, &media, &pkt)
		at = at.Add(time.Second / 28)
		ts += 90000 / 28
	}
	sm.Finish()
	obs := sm.FrameObservations()
	if len(obs) < 100 {
		t.Fatalf("observations = %d", len(obs))
	}
	est, ok := InferClockRate(obs)
	if !ok || est.ClockRate != 90000 {
		t.Errorf("est = %+v ok=%v", est, ok)
	}
}
