package metrics

import (
	"testing"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// TestBinPreOriginSample is the regression test for the truncation bug:
// int64(d/width) rounds toward zero, so a sample 0.5s before the origin
// used to land in bin 0 alongside samples from [origin, origin+1s) and
// contaminate its aggregate. Floor division must put it in bin -1.
func TestBinPreOriginSample(t *testing.T) {
	origin := time.Unix(1700000000, 0)
	var s Series
	s.Add(origin.Add(-500*time.Millisecond), 100) // belongs in bin -1
	s.Add(origin.Add(200*time.Millisecond), 10)   // bin 0
	s.Add(origin.Add(700*time.Millisecond), 20)   // bin 0

	got := s.Bin(origin, time.Second, "mean")
	if len(got) != 2 {
		t.Fatalf("got %d bins, want 2: %+v", len(got), got)
	}
	if want := origin.Add(-time.Second); !got[0].Time.Equal(want) || got[0].Value != 100 {
		t.Errorf("bin -1 = %v/%v, want %v/100", got[0].Time, got[0].Value, want)
	}
	if !got[1].Time.Equal(origin) || got[1].Value != 15 {
		t.Errorf("bin 0 = %v/%v, want %v/15 (pre-origin sample leaked in?)", got[1].Time, got[1].Value, origin)
	}
}

// TestBinPreOriginExactBoundary checks that a sample exactly on a
// negative bin boundary does not get shifted an extra bin down by the
// floor correction (d%width == 0 must not decrement).
func TestBinPreOriginExactBoundary(t *testing.T) {
	origin := time.Unix(1700000000, 0)
	var s Series
	s.Add(origin.Add(-2*time.Second), 7) // exactly bin -2
	s.Add(origin, 3)                     // bin 0

	got := s.Bin(origin, time.Second, "sum")
	if len(got) != 3 {
		t.Fatalf("got %d bins, want 3: %+v", len(got), got)
	}
	if want := origin.Add(-2 * time.Second); !got[0].Time.Equal(want) || got[0].Value != 7 {
		t.Errorf("bin -2 = %v/%v, want %v/7", got[0].Time, got[0].Value, want)
	}
	if got[1].Value != 0 {
		t.Errorf("bin -1 = %v, want empty 0", got[1].Value)
	}
	if got[2].Value != 3 {
		t.Errorf("bin 0 = %v, want 3", got[2].Value)
	}
}

func observeAt(sm *StreamMetrics, at time.Time, seq uint16) {
	media := &zoom.MediaEncap{}
	pkt := &rtp.Packet{
		Header:  rtp.Header{PayloadType: 98, SequenceNumber: seq, Timestamp: uint32(seq) * 3000},
		Payload: make([]byte, 200),
	}
	sm.Observe(at, 250, media, pkt)
}

// TestRateSeriesLongGapCapped is the regression test for unbounded
// gap-fill: one packet, 12 idle hours, one packet used to append one
// zero-rate sample per elapsed second (~43k per series). With the idle
// cap the series must skip the silent span.
func TestRateSeriesLongGapCapped(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	start := time.Unix(1700000000, 0)
	observeAt(sm, start, 1)
	observeAt(sm, start.Add(12*time.Hour), 2)
	sm.Finish()

	if n := len(sm.WireRate.Samples); n > 4 {
		t.Fatalf("WireRate has %d samples after a 12h gap, want a handful (gap-fill not capped)", n)
	}
	if n := len(sm.MediaRate.Samples); n > 4 {
		t.Fatalf("MediaRate has %d samples after a 12h gap, want a handful", n)
	}
	// Both active seconds must still be represented.
	times := map[time.Time]bool{}
	for _, s := range sm.WireRate.Samples {
		times[s.Time] = true
	}
	if !times[start.Truncate(time.Second)] || !times[start.Add(12*time.Hour).Truncate(time.Second)] {
		t.Errorf("active seconds missing from rate series: %+v", sm.WireRate.Samples)
	}
}

// TestRateSeriesShortGapUnchanged verifies gaps below the cap still
// gap-fill with explicit zero samples, as the Figure 8-style rate plots
// rely on.
func TestRateSeriesShortGapUnchanged(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	start := time.Unix(1700000000, 0)
	observeAt(sm, start, 1)
	observeAt(sm, start.Add(5*time.Second), 2)
	sm.Finish()

	if n := len(sm.WireRate.Samples); n != 6 {
		t.Fatalf("WireRate has %d samples across a 5s gap, want 6 (zero-filled)", n)
	}
	for i, s := range sm.WireRate.Samples[1:5] {
		if s.Value != 0 {
			t.Errorf("gap sample %d = %v, want 0", i+1, s.Value)
		}
	}
}

// TestRateSeriesGapCapDisabled checks MaxIdleGap=0 restores the old
// exhaustive gap-fill behaviour.
func TestRateSeriesGapCapDisabled(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	sm.MaxIdleGap = 0
	start := time.Unix(1700000000, 0)
	observeAt(sm, start, 1)
	observeAt(sm, start.Add(5*time.Minute), 2)
	sm.Finish()

	if n := len(sm.WireRate.Samples); n != 301 {
		t.Fatalf("WireRate has %d samples with cap disabled, want 301", n)
	}
}
