package metrics

import (
	"sort"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// Sample is one timestamped metric value.
type Sample struct {
	Time  time.Time
	Value float64
}

// Series is an append-only time series.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(t time.Time, v float64) { s.Samples = append(s.Samples, Sample{t, v}) }

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = sm.Value
	}
	return out
}

// Bin aggregates the series into fixed bins of the given width starting
// at origin, applying agg ("mean", "sum", "count", "last") per bin.
// Empty bins between the first and last sample yield 0.
func (s *Series) Bin(origin time.Time, width time.Duration, agg string) []Sample {
	if len(s.Samples) == 0 {
		return nil
	}
	type acc struct {
		sum   float64
		count int
		last  float64
	}
	bins := map[int64]*acc{}
	var minIdx, maxIdx int64
	first := true
	for _, sm := range s.Samples {
		// Floor division: samples earlier than origin must land in
		// negative bins, not get truncated toward zero into bin 0.
		d := sm.Time.Sub(origin)
		idx := int64(d / width)
		if d < 0 && d%width != 0 {
			idx--
		}
		a := bins[idx]
		if a == nil {
			a = &acc{}
			bins[idx] = a
		}
		a.sum += sm.Value
		a.count++
		a.last = sm.Value
		if first {
			minIdx, maxIdx = idx, idx
			first = false
		} else {
			if idx < minIdx {
				minIdx = idx
			}
			if idx > maxIdx {
				maxIdx = idx
			}
		}
	}
	out := make([]Sample, 0, maxIdx-minIdx+1)
	for i := minIdx; i <= maxIdx; i++ {
		t := origin.Add(time.Duration(i) * width)
		a := bins[i]
		var v float64
		if a != nil {
			switch agg {
			case "sum":
				v = a.sum
			case "count":
				v = float64(a.count)
			case "last":
				v = a.last
			default:
				v = a.sum / float64(a.count)
			}
		}
		out = append(out, Sample{t, v})
	}
	return out
}

// StreamMetrics analyzes one media stream (one SSRC + media type on one
// or more flows after unification) and produces every per-stream metric
// in Table 4.
type StreamMetrics struct {
	// ClockRate is the stream's RTP clock. Video uses
	// zoom.VideoClockRate; for audio/screen share the paper (and we)
	// treat the clock as unknown and skip wall-clock jitter.
	ClockRate float64

	MediaType zoom.MediaType

	// Per-substream state, keyed by RTP payload type.
	subs map[uint8]*substreamState

	// Series produced. Frame-indexed series carry one sample per frame;
	// rate series carry one sample per packet bin flush.
	FrameRate     Series // §5.2 method 1, sampled at each frame completion
	EncoderRate   Series // §5.2 method 2
	FrameSize     Series // bytes per frame
	FrameDelay    Series // §5.5, milliseconds
	JitterMS      Series // §5.4 frame-level jitter, milliseconds
	Packetization Series // milliseconds per frame

	// Counters.
	Packets          uint64
	MediaBytes       uint64
	WireBytes        uint64
	FramesTotal      uint64
	FramesIncomplete uint64

	// mainSeq is the shared non-FEC sequence tracker (see sub()).
	mainSeq *rtp.SeqTracker

	// Stall predicts playback stalls from frame delay vs packetization
	// time (§5.5's future-work analysis); only active when the clock
	// rate is known.
	Stall *StallDetector

	// Talk quantifies speaking time from the audio substream split
	// (§4.2.3); only active for audio streams.
	Talk *TalkTracker

	// frameObs records (completion time, RTP timestamp) per completed
	// frame for clock-rate inference (§5.2's parameter sweep).
	frameObs []FrameObservation

	// rate accounting in one-second bins
	binStart  time.Time
	binWire   uint64
	binMedia  uint64
	haveBin   bool
	MediaRate Series // bits per second, one sample per elapsed second
	WireRate  Series

	// finished guards Finish against double invocation: ReadPCAP calls
	// Finish internally, and a second Finish must not re-flush the open
	// rate bin (flushBin advances binStart, so an unguarded second call
	// appended a spurious zero-rate sample per invocation).
	finished bool

	// MaxIdleGap caps zero-rate gap-fill in the rate series: when the
	// stream is silent for longer than this, the rate bins skip ahead to
	// the next packet instead of emitting one zero sample per elapsed
	// second (an idle stream spanning a 12-hour campus trace would
	// otherwise append ~43k useless samples per series). Zero disables
	// the cap. The semantics mirror Compact's idle archiving: a stream
	// idle that long is effectively over until it speaks again.
	MaxIdleGap time.Duration

	// dirty marks the accumulator as mutated since the last checkpoint
	// encode; delta checkpoints re-serialize only dirty streams.
	dirty bool
}

// MarkDirty flags the stream as mutated since the last checkpoint encode.
func (sm *StreamMetrics) MarkDirty() { sm.dirty = true }

// Dirty reports whether the stream mutated since the last checkpoint
// encode.
func (sm *StreamMetrics) Dirty() bool { return sm.dirty }

// ClearDirty resets the mutation flag (called when a checkpoint encode
// captures the stream).
func (sm *StreamMetrics) ClearDirty() { sm.dirty = false }

// DefaultMaxIdleGap is the default rate-series gap-fill cap.
const DefaultMaxIdleGap = 60 * time.Second

type substreamState struct {
	assembler *FrameAssembler
	seq       *rtp.SeqTracker
	window    *FrameRateWindow
	encoder   *EncoderFrameRate
	jitter    *rtp.Jitter
	isMain    bool
	tsSeen    map[uint32]struct{}
}

// NewStreamMetrics builds an analyzer for one stream.
func NewStreamMetrics(mt zoom.MediaType) *StreamMetrics {
	sm := &StreamMetrics{MediaType: mt, subs: make(map[uint8]*substreamState), MaxIdleGap: DefaultMaxIdleGap}
	if mt == zoom.TypeVideo {
		sm.ClockRate = zoom.VideoClockRate
		sm.Stall = NewStallDetector()
	}
	if mt == zoom.TypeAudio {
		sm.Talk = NewTalkTracker()
	}
	return sm
}

// subBlock bundles a substream's value components into one allocation.
// Substream construction runs once per (stream, payload type) — tens of
// thousands of times during a checkpoint restore — and four separately
// allocated husks per substream showed up as measurable GC pressure
// there; the assembler's open-frame map is allocated lazily for the
// same reason (most restored assemblers have no open frames).
type subBlock struct {
	st        substreamState
	window    FrameRateWindow
	encoder   EncoderFrameRate
	assembler FrameAssembler
}

// newSubBlock returns a substream with window/encoder/assembler wired to
// block-mates. The caller fills in isMain, seq, jitter, and the
// assembler's OnFrame.
func newSubBlock(clockRate float64) *substreamState {
	b := &subBlock{
		window:    FrameRateWindow{window: time.Second},
		encoder:   EncoderFrameRate{clockRate: clockRate},
		assembler: FrameAssembler{MaxOpenFrames: 64},
	}
	b.st.window = &b.window
	b.st.encoder = &b.encoder
	b.st.assembler = &b.assembler
	return &b.st
}

func (sm *StreamMetrics) sub(pt uint8) *substreamState {
	st := sm.subs[pt]
	if st == nil {
		st = newSubBlock(sm.ClockRate)
		st.isMain = !zoom.ClassifySubstream(sm.MediaType, pt).IsFEC()
		// Sequence-number spaces: FEC uses its own sequence numbers; all
		// other substreams of a stream share one space (§4.2.3 — audio
		// types 99/112 interleave within a single counter). Share the
		// tracker accordingly so mode flips do not register false loss.
		if st.isMain {
			if sm.mainSeq == nil {
				sm.mainSeq = rtp.NewSeqTracker()
			}
			st.seq = sm.mainSeq
		} else {
			st.seq = rtp.NewSeqTracker()
		}
		if sm.ClockRate > 0 {
			st.jitter = rtp.NewJitter(sm.ClockRate)
		}
		st.assembler.OnFrame = func(f Frame, complete bool) {
			sm.onFrame(st, f, complete)
		}
		sm.subs[pt] = st
	}
	return st
}

// Observe ingests one media packet belonging to this stream. wireLen is
// the packet's on-the-wire length.
func (sm *StreamMetrics) Observe(at time.Time, wireLen int, media *zoom.MediaEncap, pkt *rtp.Packet) {
	sm.finished = false
	sm.Packets++
	sm.MediaBytes += uint64(len(pkt.Payload))
	sm.WireBytes += uint64(wireLen)
	sm.binAdd(at, wireLen, len(pkt.Payload))

	if sm.Talk != nil {
		sm.Talk.Observe(at, pkt.PayloadType)
	}
	st := sm.sub(pkt.PayloadType)
	st.seq.Observe(pkt.SequenceNumber)
	if !st.isMain {
		return // FEC substreams share timestamps; do not double-count frames
	}
	if st.jitter != nil {
		// Frame-level jitter: sample on the first packet of each frame.
		// The assembler tells us it is the first by tracking open frames,
		// but observing per packet with identical timestamps is idempotent
		// for D calculation only if we filter; cheapest correct filter is
		// to sample when this timestamp has not been seen yet.
		if !st.seenTS(pkt.Timestamp) {
			j := st.jitter.Observe(timeToSeconds(at), pkt.Timestamp)
			sm.JitterMS.Add(at, j*1000)
		}
	}
	st.assembler.Observe(at, media, pkt)
}

// seenTS tracks recently seen frame timestamps per substream for jitter
// first-packet detection.
func (st *substreamState) seenTS(ts uint32) bool {
	if st.tsSeen == nil {
		st.tsSeen = make(map[uint32]struct{})
	}
	if _, ok := st.tsSeen[ts]; ok {
		return true
	}
	st.tsSeen[ts] = struct{}{}
	// Sweep only when the map is well above the steady-state live set
	// (~300 timestamps for a 90 kHz clock over the 10 s retention window),
	// so each full-map sweep reclaims hundreds of stale entries and the
	// cost amortizes to O(1) per insert. A 256 threshold sat below the
	// live set and degenerated into a full sweep on every insert.
	if len(st.tsSeen) > 1024 {
		for k := range st.tsSeen {
			if rtp.TSDiff(k, ts) > 90000*10 {
				delete(st.tsSeen, k)
			}
		}
	}
	return false
}

func (sm *StreamMetrics) onFrame(st *substreamState, f Frame, complete bool) {
	sm.FramesTotal++
	sm.frameObs = append(sm.frameObs, FrameObservation{At: f.Completed, TS: f.RTPTimestamp})
	if !complete {
		sm.FramesIncomplete++
	}
	sm.FrameSize.Add(f.Completed, float64(f.Bytes))
	sm.FrameDelay.Add(f.Completed, float64(f.Delay())/float64(time.Millisecond))
	rate := st.window.Add(f.Completed)
	sm.FrameRate.Add(f.Completed, rate)
	if sm.ClockRate > 0 {
		if fps, pt, ok := st.encoder.Observe(f.RTPTimestamp); ok {
			sm.EncoderRate.Add(f.Completed, fps)
			sm.Packetization.Add(f.Completed, float64(pt)/float64(time.Millisecond))
			if sm.Stall != nil {
				sm.Stall.ObserveFrame(f.Completed, f.Delay(), pt)
			}
		}
	}
}

func (sm *StreamMetrics) binAdd(at time.Time, wire, media int) {
	if !sm.haveBin {
		sm.haveBin = true
		sm.binStart = at.Truncate(time.Second)
	}
	if sm.MaxIdleGap > 0 && at.Sub(sm.binStart) > sm.MaxIdleGap {
		// Long idle gap: flush the open bin, emit nothing for the silent
		// span, and resume at the current second.
		sm.flushBin()
		sm.binStart = at.Truncate(time.Second)
	}
	for at.Sub(sm.binStart) >= time.Second {
		sm.flushBin()
	}
	sm.binWire += uint64(wire)
	sm.binMedia += uint64(media)
}

func (sm *StreamMetrics) flushBin() {
	sm.WireRate.Add(sm.binStart, float64(sm.binWire)*8)
	sm.MediaRate.Add(sm.binStart, float64(sm.binMedia)*8)
	sm.binStart = sm.binStart.Add(time.Second)
	sm.binWire, sm.binMedia = 0, 0
}

// Finish flushes assemblers and the open rate bin. Finish is
// idempotent: repeated calls without an intervening Observe are no-ops.
func (sm *StreamMetrics) Finish() {
	if sm.finished {
		return
	}
	sm.finished = true
	for _, st := range sm.subs {
		st.assembler.Flush()
	}
	if sm.haveBin {
		sm.flushBin()
		if sm.Stall != nil {
			sm.Stall.Finish(sm.binStart)
		}
	}
	if sm.Talk != nil {
		sm.Talk.Finish()
	}
}

// LossStats aggregates the §5.5 sequence analysis across the stream's
// sequence spaces (the shared main space plus each FEC space).
func (sm *StreamMetrics) LossStats() rtp.Stats {
	var out rtp.Stats
	seen := map[*rtp.SeqTracker]struct{}{}
	for _, st := range sm.subs {
		if _, dup := seen[st.seq]; dup {
			continue
		}
		seen[st.seq] = struct{}{}
		s := st.seq.Stats()
		out.Received += s.Received
		out.Duplicates += s.Duplicates
		out.Reordered += s.Reordered
		out.ExpectedSpan += s.ExpectedSpan
		out.EstimatedLost += s.EstimatedLost
	}
	return out
}

// SubstreamPTs returns the payload types observed, sorted.
func (sm *StreamMetrics) SubstreamPTs() []uint8 {
	out := make([]uint8, 0, len(sm.subs))
	for pt := range sm.subs {
		out = append(out, pt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func timeToSeconds(t time.Time) float64 {
	return float64(t.UnixNano()) / float64(time.Second)
}
