package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"zoomlens/internal/rtp"
)

// Property tests on the Series binning invariants that every figure and
// feature row depends on.

func genSeries(rng *rand.Rand) Series {
	var s Series
	n := rng.Intn(200)
	at := t0.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
	for i := 0; i < n; i++ {
		at = at.Add(time.Duration(rng.Intn(2000)) * time.Millisecond)
		s.Add(at, float64(rng.Intn(1000)))
	}
	return s
}

func TestQuickBinSumConservation(t *testing.T) {
	f := func(s Series) bool {
		var total float64
		for _, x := range s.Samples {
			total += x.Value
		}
		var binned float64
		for _, b := range s.Bin(t0, time.Second, "sum") {
			binned += b.Value
		}
		return math.Abs(total-binned) < 1e-6
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genSeries(rng))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBinCountConservation(t *testing.T) {
	f := func(s Series) bool {
		var counted float64
		for _, b := range s.Bin(t0, time.Second, "count") {
			counted += b.Value
		}
		return int(counted) == len(s.Samples)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genSeries(rng))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickBinsContiguousAndOrdered(t *testing.T) {
	f := func(s Series) bool {
		bins := s.Bin(t0, time.Second, "mean")
		for i := 1; i < len(bins); i++ {
			if bins[i].Time.Sub(bins[i-1].Time) != time.Second {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vals []reflect.Value, rng *rand.Rand) {
			vals[0] = reflect.ValueOf(genSeries(rng))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickFrameRateWindowNeverNegativeAndEvicts(t *testing.T) {
	f := func(gapsMS []uint16) bool {
		w := NewFrameRateWindow(time.Second)
		at := t0
		for _, g := range gapsMS {
			at = at.Add(time.Duration(g%500) * time.Millisecond)
			if w.Add(at) < 0 {
				return false
			}
		}
		// After a long idle everything evicts.
		return w.Rate(at.Add(time.Hour)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSeqTrackerReceivedConserved(t *testing.T) {
	f := func(seqs []uint16) bool {
		tr := rtp.NewSeqTracker()
		for _, s := range seqs {
			tr.Observe(s)
		}
		st := tr.Stats()
		if len(seqs) == 0 {
			return st.Received == 0
		}
		return st.Received == uint64(len(seqs)) && st.Duplicates <= st.Received
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
