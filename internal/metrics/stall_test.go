package metrics

import (
	"testing"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

func TestStallDetectorHealthyStreamNeverStalls(t *testing.T) {
	d := NewStallDetector()
	at := t0
	const pt = 33 * time.Millisecond
	for i := 0; i < 1000; i++ {
		at = at.Add(pt)
		if d.ObserveFrame(at, 2*time.Millisecond, pt) {
			t.Fatalf("stall at frame %d on a healthy stream", i)
		}
	}
	if len(d.Events) != 0 || d.Stalled() {
		t.Errorf("events=%d stalled=%v", len(d.Events), d.Stalled())
	}
	if d.BufferedMedia() <= 0 {
		t.Error("buffer drained on a healthy stream")
	}
}

func TestStallDetectorStallsWhenDeliveryStops(t *testing.T) {
	d := NewStallDetector()
	at := t0
	const pt = 33 * time.Millisecond
	for i := 0; i < 30; i++ {
		at = at.Add(pt)
		d.ObserveFrame(at, 2*time.Millisecond, pt)
	}
	// Delivery freezes for 2 s; the next frame arrives very late.
	at = at.Add(2 * time.Second)
	stalled := d.ObserveFrame(at, 2*time.Second, pt)
	if !stalled && !d.Stalled() {
		t.Fatal("no stall after a 2-second delivery freeze")
	}
	// Smooth delivery resumes; the stall must close.
	for i := 0; i < 30; i++ {
		at = at.Add(pt / 2) // catch-up burst refills the buffer
		d.ObserveFrame(at, time.Millisecond, pt)
	}
	if d.Stalled() {
		t.Fatal("stall never closed despite catch-up")
	}
	if len(d.Events) != 1 {
		t.Fatalf("events = %d, want 1", len(d.Events))
	}
	if d.Events[0].Duration <= 0 {
		t.Errorf("stall duration = %v", d.Events[0].Duration)
	}
	if d.TotalStallTime() != d.Events[0].Duration {
		t.Error("TotalStallTime mismatch")
	}
}

func TestStallDetectorChronicLateness(t *testing.T) {
	// Every frame takes twice its packetization time to deliver: the
	// buffer must drain and stall within a bounded number of frames.
	d := NewStallDetector()
	at := t0
	const pt = 33 * time.Millisecond
	stalledAt := -1
	for i := 0; i < 60; i++ {
		at = at.Add(2 * pt)
		if d.ObserveFrame(at, 2*pt, pt) {
			stalledAt = i
			break
		}
	}
	if stalledAt < 0 {
		t.Fatal("chronic 2× lateness never stalled")
	}
	// 120 ms of initial buffer at a 33 ms/frame deficit: ~4 frames.
	if stalledAt > 10 {
		t.Errorf("stalled after %d frames, want quickly", stalledAt)
	}
}

func TestStallDetectorFinishClosesOpenStall(t *testing.T) {
	d := NewStallDetector()
	at := t0
	const pt = 33 * time.Millisecond
	d.ObserveFrame(at, time.Millisecond, pt)
	at = at.Add(5 * time.Second)
	d.ObserveFrame(at, 5*time.Second, pt)
	if !d.Stalled() {
		t.Fatal("expected open stall")
	}
	d.Finish(at.Add(time.Second))
	if d.Stalled() || len(d.Events) != 1 {
		t.Fatalf("stalled=%v events=%d", d.Stalled(), len(d.Events))
	}
}

func TestStreamMetricsStallIntegration(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	if sm.Stall == nil {
		t.Fatal("video stream has no stall detector")
	}
	// 60 healthy frames, then a 3-second freeze, then recovery.
	ts := uint32(0)
	at := t0
	send := func(delay time.Duration) {
		media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: ts, PacketsInFrame: 1}
		pkt := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: uint16(ts / 3000), Timestamp: ts, SSRC: 1, Marker: true}, Payload: make([]byte, 700)}
		sm.Observe(at.Add(delay), 770, &media, &pkt)
		ts += 3000
		at = at.Add(33 * time.Millisecond)
	}
	for i := 0; i < 60; i++ {
		send(0)
	}
	at = at.Add(3 * time.Second)
	for i := 0; i < 90; i++ {
		send(0)
	}
	sm.Finish()
	if len(sm.Stall.Events) == 0 {
		t.Error("no stall detected across a 3-second freeze")
	}
	// Audio streams have no clock, hence no stall detector.
	if NewStreamMetrics(zoom.TypeAudio).Stall != nil {
		t.Error("audio stream unexpectedly has a stall detector")
	}
}
