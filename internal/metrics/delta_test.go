package metrics

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/statecodec"
)

func copyFlow(host byte, port uint16) layers.FiveTuple {
	return layers.FiveTuple{
		Src:     netip.AddrFrom4([4]byte{10, 8, 1, host}),
		Dst:     netip.MustParseAddr("52.81.3.4"),
		SrcPort: port,
		DstPort: 8801,
		Proto:   layers.ProtoUDP,
	}
}

func matcherState(t *testing.T, cm *CopyMatcher) []byte {
	t.Helper()
	var w statecodec.Writer
	cm.State(&w)
	return w.Bytes()
}

// Drive the matcher through samples, refreshes, and deletions; full
// checkpoint into a replica; mutate both further via a delta; the full
// encodings (deterministic, complete) must stay byte-identical.
func TestCopyMatcherDeltaRoundTrip(t *testing.T) {
	live := NewCopyMatcher()
	up := copyFlow(2, 52000)
	down := copyFlow(9, 61000).Reverse()
	for i := 0; i < 50; i++ {
		at := t0.Add(time.Duration(i) * 33 * time.Millisecond)
		live.Observe(meeting.UnifiedID(1+i%3), up, 98, uint16(i), uint32(i*2970), at)
		if i%2 == 0 { // match half of them into Samples
			live.Observe(meeting.UnifiedID(1+i%3), down, 98, uint16(i), uint32(i*2970), at.Add(7*time.Millisecond))
		}
	}

	var full statecodec.Writer
	live.State(&full)
	live.MarkCheckpointed()
	replica := NewCopyMatcher()
	if err := replica.Restore(statecodec.NewReader(full.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	replica.MarkCheckpointed()

	// Churn: new observations, matches (deletions), and a same-flow
	// refresh of a surviving pending entry.
	for i := 50; i < 80; i++ {
		at := t0.Add(time.Duration(i) * 33 * time.Millisecond)
		live.Observe(meeting.UnifiedID(1+i%3), up, 98, uint16(i), uint32(i*2970), at)
		if i%3 == 0 {
			live.Observe(meeting.UnifiedID(1+i%3), down, 98, uint16(i), uint32(i*2970), at.Add(9*time.Millisecond))
		}
	}
	live.Observe(meeting.UnifiedID(2), up, 98, 49, uint32(49*2970), t0.Add(3*time.Second))

	if live.DeltaOverflow() {
		t.Fatal("unexpected delta overflow")
	}
	var delta statecodec.Writer
	live.StateDelta(&delta)
	live.MarkCheckpointed()
	if err := replica.ApplyDelta(statecodec.NewReader(delta.Bytes())); err != nil {
		t.Fatalf("apply delta: %v", err)
	}
	replica.MarkCheckpointed()

	if !bytes.Equal(matcherState(t, live), matcherState(t, replica)) {
		t.Fatal("replica state diverged from live matcher after delta apply")
	}

	// A second delta on top must also converge (chain discipline).
	live.Observe(meeting.UnifiedID(5), up, 110, 9000, 1, t0.Add(4*time.Second))
	var d2 statecodec.Writer
	live.StateDelta(&d2)
	if err := replica.ApplyDelta(statecodec.NewReader(d2.Bytes())); err != nil {
		t.Fatalf("apply second delta: %v", err)
	}
	if !bytes.Equal(matcherState(t, live), matcherState(t, replica)) {
		t.Fatal("replica diverged after second delta")
	}
}

// GC evictions must reach the replica as tombstones: over-cap churn on
// the live matcher deletes old pending entries, and after the delta the
// replica must agree exactly.
func TestCopyMatcherDeltaCarriesGCEvictions(t *testing.T) {
	live := NewCopyMatcher()
	live.MaxPending = 64
	up := copyFlow(2, 52000)

	for i := 0; i < 64; i++ {
		live.Observe(1, up, 98, uint16(i), uint32(i), t0)
	}
	var full statecodec.Writer
	live.State(&full)
	live.MarkCheckpointed()
	replica := NewCopyMatcher()
	if err := replica.Restore(statecodec.NewReader(full.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	replica.MarkCheckpointed()

	// Push past the cap far enough in the future that the age-based GC
	// sweeps the baseline entries.
	for i := 64; i < 128; i++ {
		live.Observe(1, up, 98, uint16(i), uint32(i), t0.Add(time.Minute))
	}
	if live.Pending() >= 128 {
		t.Fatalf("gc did not run: %d pending", live.Pending())
	}

	var delta statecodec.Writer
	live.StateDelta(&delta)
	if err := replica.ApplyDelta(statecodec.NewReader(delta.Bytes())); err != nil {
		t.Fatalf("apply delta: %v", err)
	}
	if !bytes.Equal(matcherState(t, live), matcherState(t, replica)) {
		t.Fatal("replica diverged after gc-heavy delta")
	}
}

func TestCopyMatcherDeltaBaseMismatch(t *testing.T) {
	live := NewCopyMatcher()
	up := copyFlow(2, 52000)
	down := copyFlow(9, 61000).Reverse()
	live.MarkCheckpointed()
	live.Observe(1, up, 98, 7, 100, t0)
	live.Observe(1, down, 98, 7, 100, t0.Add(time.Millisecond))
	var delta statecodec.Writer
	live.StateDelta(&delta)

	// A matcher with a different sample count is the wrong base.
	other := NewCopyMatcher()
	other.Samples = append(other.Samples, RTTSample{Time: t0, RTT: time.Millisecond, Unified: 9})
	if err := other.ApplyDelta(statecodec.NewReader(delta.Bytes())); err == nil {
		t.Fatal("delta applied onto wrong sample baseline")
	}
}

func TestCopyMatcherDisarmStopsTracking(t *testing.T) {
	cm := NewCopyMatcher()
	cm.MarkCheckpointed()
	cm.Observe(1, copyFlow(2, 52000), 98, 1, 1, t0)
	if len(cm.dirty) != 1 {
		t.Fatalf("dirty = %d, want 1", len(cm.dirty))
	}
	cm.Disarm()
	cm.Observe(1, copyFlow(2, 52000), 98, 2, 2, t0)
	if cm.dirty != nil || cm.dead != nil {
		t.Fatal("disarmed matcher kept tracking")
	}
}
