package metrics

import (
	"testing"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// feedFrameWithDelay pushes one 2-packet video frame whose second packet
// arrives after the given delay.
func feedFrameWithDelay(sm *StreamMetrics, at time.Time, seq *uint16, ts *uint32, delay time.Duration) {
	media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: *ts, PacketsInFrame: 2}
	mk := func(s uint16, marker bool) *rtp.Packet {
		return &rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: s, Timestamp: *ts, SSRC: 1, Marker: marker}, Payload: make([]byte, 600)}
	}
	sm.Observe(at, 670, &media, mk(*seq, false))
	sm.Observe(at.Add(delay), 670, &media, mk(*seq+1, true))
	*seq += 2
	*ts += 3000
}

func TestEstimateRetransmissionsHealthy(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	at := t0
	seq, ts := uint16(0), uint32(0)
	for i := 0; i < 100; i++ {
		feedFrameWithDelay(sm, at, &seq, &ts, 500*time.Microsecond)
		at = at.Add(33 * time.Millisecond)
	}
	sm.Finish()
	est := sm.EstimateRetransmissions(20 * time.Millisecond)
	if est.FramesAnalyzed == 0 {
		t.Fatal("no frames analyzed")
	}
	if est.SuspectedRetxFrames != 0 || est.StrongRetxFrames != 0 {
		t.Errorf("healthy stream: %+v", est)
	}
}

func TestEstimateRetransmissionsDetectsDelayedFrames(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	at := t0
	seq, ts := uint16(0), uint32(0)
	const rtt = 20 * time.Millisecond
	for i := 0; i < 100; i++ {
		delay := 500 * time.Microsecond
		switch {
		case i%10 == 3:
			delay = rtt + 5*time.Millisecond // weak signal: > RTT
		case i%10 == 7:
			delay = rtt + RetxTimeout + 10*time.Millisecond // strong signature
		}
		feedFrameWithDelay(sm, at, &seq, &ts, delay)
		at = at.Add(200 * time.Millisecond)
	}
	sm.Finish()
	est := sm.EstimateRetransmissions(rtt)
	if est.SuspectedRetxFrames != 20 {
		t.Errorf("suspected = %d, want 20 (both kinds exceed the RTT)", est.SuspectedRetxFrames)
	}
	if est.StrongRetxFrames != 10 {
		t.Errorf("strong = %d, want 10", est.StrongRetxFrames)
	}
	if est.SuspectedRate < 0.19 || est.SuspectedRate > 0.21 {
		t.Errorf("rate = %v", est.SuspectedRate)
	}
}

func TestEstimateRetransmissionsEdgeCases(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeVideo)
	if est := sm.EstimateRetransmissions(20 * time.Millisecond); est.FramesAnalyzed != 0 {
		t.Errorf("empty stream: %+v", est)
	}
	if est := sm.EstimateRetransmissions(0); est.FramesAnalyzed != 0 {
		t.Errorf("zero rtt: %+v", est)
	}
}
