package metrics

import (
	"cmp"
	"slices"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/statecodec"
)

// Delta checkpoints for the copy matcher. The matcher's state is a
// pending map (bounded by MaxPending, but at the cap that is still tens
// of thousands of entries to sort and re-serialize) plus an append-only
// Samples slice; encoding both whole inside every delta record made the
// matcher the dominant cost of an otherwise churn-proportional delta.
// Instead the matcher tracks, while armed, which pending keys were
// upserted (dirty) or deleted (dead) since the last checkpoint encode,
// and remembers the Samples length at that encode — Samples only ever
// grows, so the delta carries just the tail.

const copyMatcherDeltaV1 = 1

// maxCopyDelta bounds the mutation backlog a delta is willing to carry;
// past it the matcher flags overflow and the owner falls back to a full
// snapshot (which resets everything).
const maxCopyDelta = 1 << 20

// touch records an upsert of k while armed. A key can flip between the
// dirty and dead sets (matched then re-observed before the next
// checkpoint); the sets stay disjoint so apply order cannot matter.
func (cm *CopyMatcher) touch(k copyKey) {
	if !cm.armed || cm.overflow {
		return
	}
	delete(cm.dead, k)
	if len(cm.dirty) >= maxCopyDelta {
		cm.overflow = true
		return
	}
	if cm.dirty == nil {
		cm.dirty = make(map[copyKey]struct{})
	}
	cm.dirty[k] = struct{}{}
}

// bury records a deletion of k while armed.
func (cm *CopyMatcher) bury(k copyKey) {
	if !cm.armed || cm.overflow {
		return
	}
	delete(cm.dirty, k)
	if len(cm.dead) >= maxCopyDelta {
		cm.overflow = true
		return
	}
	if cm.dead == nil {
		cm.dead = make(map[copyKey]struct{})
	}
	cm.dead[k] = struct{}{}
}

// DeltaOverflow reports whether the mutation backlog outgrew what a
// delta can carry; the owner must fall back to a full snapshot.
func (cm *CopyMatcher) DeltaOverflow() bool { return cm.overflow }

// MarkCheckpointed resets delta tracking after a checkpoint encode
// (full or delta), restore, or delta apply: the current state is fully
// captured, so the mutation sets clear, the Samples baseline re-anchors,
// and the matcher arms for the next delta.
func (cm *CopyMatcher) MarkCheckpointed() {
	clear(cm.dirty)
	clear(cm.dead)
	cm.ckSamples = len(cm.Samples)
	cm.overflow = false
	cm.armed = true
}

// Disarm turns delta tracking off.
func (cm *CopyMatcher) Disarm() {
	cm.dirty = nil
	cm.dead = nil
	cm.overflow = false
	cm.armed = false
}

func compareCopyKey(a, b copyKey) int {
	if c := cmp.Compare(a.unified, b.unified); c != 0 {
		return c
	}
	if a.pt != b.pt {
		return int(a.pt) - int(b.pt)
	}
	if a.seq != b.seq {
		return int(a.seq) - int(b.seq)
	}
	return int(a.ts) - int(b.ts)
}

func sortedCopyKeys(m map[copyKey]struct{}) []copyKey {
	keys := make([]copyKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareCopyKey)
	return keys
}

// StateDelta encodes the matcher mutations since the last checkpoint
// encode: the appended Samples tail, deletion tombstones, and upserted
// pending entries (written whole, same wire shape as State). The record
// carries the baseline Samples length so an apply against the wrong
// base state fails loudly. Callers must check DeltaOverflow first and
// call MarkCheckpointed after a successful encode.
func (cm *CopyMatcher) StateDelta(w *statecodec.Writer) {
	w.U8(copyMatcherDeltaV1)
	w.Duration(cm.MaxAge)
	w.Int(cm.MaxPending)

	w.Int(cm.ckSamples)
	tail := cm.Samples[cm.ckSamples:]
	w.Int(len(tail))
	for _, s := range tail {
		w.Time(s.Time)
		w.Duration(s.RTT)
		w.I64(int64(s.Unified))
	}

	dead := sortedCopyKeys(cm.dead)
	w.Int(len(dead))
	for _, k := range dead {
		w.I64(int64(k.unified))
		w.U8(k.pt)
		w.U16(k.seq)
		w.U32(k.ts)
	}

	dirty := sortedCopyKeys(cm.dirty)
	w.Int(len(dirty))
	for _, k := range dirty {
		o := cm.pending[k]
		w.I64(int64(k.unified))
		w.U8(k.pt)
		w.U16(k.seq)
		w.U32(k.ts)
		w.Time(o.at)
		o.flow.EncodeTo(w)
	}
}

// ApplyDelta replays one matcher delta onto the receiver, which must
// hold exactly the state the delta was cut from (checked against the
// Samples baseline). On error the matcher may be partially mutated and
// the owner must discard the engine.
func (cm *CopyMatcher) ApplyDelta(r *statecodec.Reader) error {
	r.Version("metrics.CopyMatcher delta", copyMatcherDeltaV1)
	cm.MaxAge = r.Duration()
	cm.MaxPending = r.Int()

	base := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if base != len(cm.Samples) {
		r.Failf("metrics.CopyMatcher delta baseline %d samples does not match matcher at %d samples", base, len(cm.Samples))
		return r.Err()
	}
	nt := r.Count(3)
	for i := 0; i < nt; i++ {
		cm.Samples = append(cm.Samples, RTTSample{Time: r.Time(), RTT: r.Duration(), Unified: meeting.UnifiedID(r.I64())})
	}

	nd := r.Count(8)
	for i := 0; i < nd; i++ {
		k := copyKey{unified: meeting.UnifiedID(r.I64()), pt: r.U8(), seq: r.U16(), ts: r.U32()}
		if err := r.Err(); err != nil {
			return err
		}
		delete(cm.pending, k)
	}

	nu := r.Count(12)
	if cm.pending == nil {
		cm.pending = make(map[copyKey]obs, nu)
	}
	for i := 0; i < nu; i++ {
		k := copyKey{unified: meeting.UnifiedID(r.I64()), pt: r.U8(), seq: r.U16(), ts: r.U32()}
		o := obs{at: r.Time(), flow: layers.DecodeFiveTuple(r)}
		if err := r.Err(); err != nil {
			return err
		}
		cm.pending[k] = o
	}
	return r.Err()
}
