package metrics

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
)

// TestEncoderFrameRateReorderingKeepsBaseline is the regression test for
// the §5.2 method-2 fix: a reordered or duplicated frame timestamp must
// not advance the baseline, or the next in-order frame measures an
// inflated ΔRTP (and a deflated frame rate).
func TestEncoderFrameRateReorderingKeepsBaseline(t *testing.T) {
	e := NewEncoderFrameRate(90000)
	e.Observe(3000)
	if fps, _, ok := e.Observe(6000); !ok || fps != 30 {
		t.Fatalf("in-order frame: fps=%v ok=%v, want 30", fps, ok)
	}
	// A late duplicate of the first frame arrives out of order.
	if _, _, ok := e.Observe(3000); ok {
		t.Fatal("reordered timestamp produced a rate")
	}
	// The next in-order frame is 3000 ticks after the *last in-order*
	// frame (6000): the rate must be 30 fps. With the regressed baseline
	// it would measure ΔRTP=6000 → 15 fps.
	fps, pt, ok := e.Observe(9000)
	if !ok {
		t.Fatal("in-order frame after reordering not measured")
	}
	if fps != 30 {
		t.Fatalf("fps after reordering = %v, want 30 (baseline regressed)", fps)
	}
	if pt != time.Second/30 {
		t.Fatalf("packetization after reordering = %v, want %v", pt, time.Second/30)
	}

	// An exact duplicate of the newest frame must not measure either.
	if _, _, ok := e.Observe(9000); ok {
		t.Fatal("duplicate timestamp produced a rate")
	}
	if fps, _, ok := e.Observe(12000); !ok || fps != 30 {
		t.Fatalf("fps after duplicate = %v ok=%v, want 30", fps, ok)
	}
}

// TestCopyMatcherStaleRefreshTakesObservingFlow is the regression test
// for the §5.3 fix: when a copy arrives after MaxAge, the refreshed
// pending entry must record the observing packet's own flow. The buggy
// refresh kept the original flow with the new timestamp, so (a) a later
// packet on the *refreshing* flow paired against its own observation as
// a bogus RTT sample, and (b) a genuine copy on the original flow was
// rejected as same-flow.
func TestCopyMatcherStaleRefreshTakesObservingFlow(t *testing.T) {
	flowA := layers.FiveTuple{Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"), SrcPort: 52000, DstPort: 8801, Proto: layers.ProtoUDP}
	flowB := layers.FiveTuple{Src: netip.MustParseAddr("52.81.3.4"), Dst: netip.MustParseAddr("10.8.7.7"), SrcPort: 8801, DstPort: 61000, Proto: layers.ProtoUDP}

	cm := NewCopyMatcher()
	cm.Observe(1, flowA, 98, 7, 100, t0)
	// The copy on flow B arrives after MaxAge: no sample, entry refreshed.
	stale := t0.Add(cm.MaxAge + time.Second)
	if _, ok := cm.Observe(1, flowB, 98, 7, 100, stale); ok {
		t.Fatal("stale copy produced a sample")
	}
	// Another packet on flow B (a retransmission of the refreshed
	// observation): with the old-flow bug this paired B against B.
	if s, ok := cm.Observe(1, flowB, 98, 7, 100, stale.Add(500*time.Millisecond)); ok {
		t.Fatalf("same-flow packet paired against its own refresh: %+v", s)
	}
	// A genuine copy back on flow A pairs against the refreshed flow-B
	// entry. The refresh above replaced the entry's timestamp too, so the
	// RTT is measured from the most recent same-flow send.
	s, ok := cm.Observe(1, flowA, 98, 7, 100, stale.Add(1500*time.Millisecond))
	if !ok {
		t.Fatal("cross-flow copy after refresh did not pair")
	}
	if s.RTT != time.Second {
		t.Fatalf("rtt = %v, want 1s (measured from the refreshed observation)", s.RTT)
	}
}

// TestCopyMatcherMaxPending checks the GC threshold honors the
// configured cap instead of the old hardcoded 1<<16, and that occupancy
// is observable.
func TestCopyMatcherMaxPending(t *testing.T) {
	flowA := layers.FiveTuple{Src: netip.MustParseAddr("10.8.1.2"), Dst: netip.MustParseAddr("52.81.3.4"), SrcPort: 52000, DstPort: 8801, Proto: layers.ProtoUDP}
	cm := NewCopyMatcher()
	cm.MaxPending = 64

	// Old entries age out once the cap is crossed.
	for i := 0; i < 64; i++ {
		cm.Observe(1, flowA, 98, uint16(i), uint32(i), t0)
	}
	if cm.Pending() != 64 {
		t.Fatalf("pending = %d, want 64", cm.Pending())
	}
	late := t0.Add(cm.MaxAge + time.Second)
	cm.Observe(1, flowA, 98, 1000, 1000, late)
	if got := cm.Pending(); got != 1 {
		t.Fatalf("pending after GC = %d, want 1 (stale entries collected at cap)", got)
	}

	// A burst younger than MaxAge still shrinks deterministically: the
	// age bound halves until the map fits, keeping the newest entries.
	cm2 := NewCopyMatcher()
	cm2.MaxPending = 16
	for i := 0; i < 200; i++ {
		cm2.Observe(1, flowA, 98, uint16(i), uint32(i), t0.Add(time.Duration(i)*10*time.Millisecond))
	}
	if got := cm2.Pending(); got > 16+1 {
		t.Fatalf("pending after burst = %d, want <= 17", got)
	}
}
