package metrics

import (
	"time"
)

// This file implements the retransmission heuristic sketched in §5.5 and
// §8: "If the delivery of a frame (normally consisting of packets sent
// back-to-back) takes longer than the connection's RTT, at least one
// retransmission likely happened within this frame" — and the stronger
// §5.5 signal that a retransmitted packet arrives elevated by the
// ~100 ms NACK timeout plus the RTT.

// RetxFrameEstimate summarizes the frame-delay-based retransmission
// analysis of one stream.
type RetxFrameEstimate struct {
	// FramesAnalyzed is the number of frames with a delay sample.
	FramesAnalyzed int
	// SuspectedRetxFrames is the count of frames whose delay exceeded
	// the RTT (at least one packet likely retransmitted, §8).
	SuspectedRetxFrames int
	// StrongRetxFrames is the count of frames whose delay also exceeded
	// the retransmission timeout + RTT (the §5.5 signature).
	StrongRetxFrames int
	// SuspectedRate is SuspectedRetxFrames / FramesAnalyzed.
	SuspectedRate float64
}

// RetxTimeout is the retransmission trigger the paper observed ("a
// timeout that appears to be 100ms").
const RetxTimeout = 100 * time.Millisecond

// EstimateRetransmissions applies the heuristic to the stream's frame
// delays given the path RTT (e.g. from the stream-copy matcher or the
// TCP proxy). Only multi-packet frames carry signal — single-packet
// frames have zero delay by construction — so streams of single-packet
// frames yield FramesAnalyzed == 0.
func (sm *StreamMetrics) EstimateRetransmissions(rtt time.Duration) RetxFrameEstimate {
	var est RetxFrameEstimate
	if rtt <= 0 {
		return est
	}
	rttMS := float64(rtt) / float64(time.Millisecond)
	strongMS := rttMS + float64(RetxTimeout)/float64(time.Millisecond)
	for i, d := range sm.FrameDelay.Samples {
		// Pair with frame sizes to skip single-packet frames: their
		// delay is 0 and analyzing them would dilute the rate.
		if i < len(sm.FrameSize.Samples) && sm.FrameDelay.Samples[i].Value == 0 {
			continue
		}
		est.FramesAnalyzed++
		if d.Value > rttMS {
			est.SuspectedRetxFrames++
		}
		if d.Value > strongMS {
			est.StrongRetxFrames++
		}
	}
	if est.FramesAnalyzed > 0 {
		est.SuspectedRate = float64(est.SuspectedRetxFrames) / float64(est.FramesAnalyzed)
	}
	return est
}
