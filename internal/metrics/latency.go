package metrics

import (
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
)

// RTTSample is one latency measurement.
type RTTSample struct {
	Time time.Time
	RTT  time.Duration
	// Unified is the stream whose copies produced the sample.
	Unified meeting.UnifiedID
}

// CopyMatcher implements §5.3 method 1: when the monitor sees both the
// uplink copy of a stream (client → SFU) and a downlink copy of the same
// stream (SFU → another on-campus client), packets with matching RTP
// sequence numbers measure the round trip from the monitor to the SFU
// and back (Figure 11, solid lines).
//
// Matching is keyed on (unified stream, payload type, sequence number);
// all four features of the duplicate-detection heuristic (time, SSRC,
// seq, timestamp) participate because unified IDs already encode
// SSRC/timestamp proximity and the age limit bounds time.
type CopyMatcher struct {
	// MaxAge bounds how long a first observation waits for its copy.
	MaxAge time.Duration
	// Samples receives each RTT measurement.
	Samples []RTTSample

	pending map[copyKey]obs
}

type copyKey struct {
	unified meeting.UnifiedID
	pt      uint8
	seq     uint16
	ts      uint32
}

type obs struct {
	at   time.Time
	flow layers.FiveTuple
}

// NewCopyMatcher returns a matcher with a 5-second age bound.
func NewCopyMatcher() *CopyMatcher {
	return &CopyMatcher{MaxAge: 5 * time.Second, pending: make(map[copyKey]obs)}
}

// Observe ingests one media packet observation annotated with its
// unified stream ID and returns an RTT sample if this packet pairs with
// an earlier copy on a different flow.
func (cm *CopyMatcher) Observe(unified meeting.UnifiedID, flow layers.FiveTuple, pt uint8, seq uint16, ts uint32, at time.Time) (RTTSample, bool) {
	k := copyKey{unified, pt, seq, ts}
	if prev, ok := cm.pending[k]; ok {
		if prev.flow != flow {
			age := at.Sub(prev.at)
			if age >= 0 && age <= cm.MaxAge {
				s := RTTSample{Time: at, RTT: age, Unified: unified}
				cm.Samples = append(cm.Samples, s)
				delete(cm.pending, k)
				return s, true
			}
		}
		// Same flow (a retransmission) or stale: refresh the pending
		// observation so later copies match the most recent send.
		cm.pending[k] = obs{at: at, flow: prev.flow}
		return RTTSample{}, false
	}
	cm.pending[k] = obs{at: at, flow: flow}
	if len(cm.pending) > 1<<16 {
		cm.gc(at)
	}
	return RTTSample{}, false
}

func (cm *CopyMatcher) gc(now time.Time) {
	for k, o := range cm.pending {
		if now.Sub(o.at) > cm.MaxAge {
			delete(cm.pending, k)
		}
	}
}

// SeriesMS renders the samples as a millisecond time series.
func (cm *CopyMatcher) SeriesMS() Series {
	var s Series
	s.Name = "rtt_ms"
	for _, sm := range cm.Samples {
		s.Add(sm.Time, float64(sm.RTT)/float64(time.Millisecond))
	}
	return s
}
