package metrics

import (
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
)

// RTTSample is one latency measurement.
type RTTSample struct {
	Time time.Time
	RTT  time.Duration
	// Unified is the stream whose copies produced the sample.
	Unified meeting.UnifiedID
}

// CopyMatcher implements §5.3 method 1: when the monitor sees both the
// uplink copy of a stream (client → SFU) and a downlink copy of the same
// stream (SFU → another on-campus client), packets with matching RTP
// sequence numbers measure the round trip from the monitor to the SFU
// and back (Figure 11, solid lines).
//
// Matching is keyed on (unified stream, payload type, sequence number);
// all four features of the duplicate-detection heuristic (time, SSRC,
// seq, timestamp) participate because unified IDs already encode
// SSRC/timestamp proximity and the age limit bounds time.
type CopyMatcher struct {
	// MaxAge bounds how long a first observation waits for its copy.
	MaxAge time.Duration
	// MaxPending triggers garbage collection of the pending map beyond
	// this many entries, bounding matcher state on long captures. Zero
	// selects DefaultMaxPending; wire it to the analyzer's bounded-state
	// caps in continuous deployments.
	MaxPending int
	// Samples receives each RTT measurement.
	Samples []RTTSample

	pending map[copyKey]obs

	// Delta-checkpoint tracking (see delta.go): armed by
	// MarkCheckpointed, nil/false on matchers that never checkpoint so
	// the hot path pays only a branch.
	dirty     map[copyKey]struct{}
	dead      map[copyKey]struct{}
	ckSamples int
	armed     bool
	overflow  bool
}

// DefaultMaxPending is the pending-entry GC threshold when MaxPending is
// unset.
const DefaultMaxPending = 1 << 16

type copyKey struct {
	unified meeting.UnifiedID
	pt      uint8
	seq     uint16
	ts      uint32
}

type obs struct {
	at   time.Time
	flow layers.FiveTuple
}

// NewCopyMatcher returns a matcher with a 5-second age bound.
func NewCopyMatcher() *CopyMatcher {
	return &CopyMatcher{MaxAge: 5 * time.Second, pending: make(map[copyKey]obs)}
}

// Observe ingests one media packet observation annotated with its
// unified stream ID and returns an RTT sample if this packet pairs with
// an earlier copy on a different flow.
func (cm *CopyMatcher) Observe(unified meeting.UnifiedID, flow layers.FiveTuple, pt uint8, seq uint16, ts uint32, at time.Time) (RTTSample, bool) {
	k := copyKey{unified, pt, seq, ts}
	if prev, ok := cm.pending[k]; ok {
		if prev.flow != flow {
			age := at.Sub(prev.at)
			if age >= 0 && age <= cm.MaxAge {
				s := RTTSample{Time: at, RTT: age, Unified: unified}
				cm.Samples = append(cm.Samples, s)
				delete(cm.pending, k)
				cm.bury(k)
				return s, true
			}
		}
		// Same flow (a retransmission) or stale: refresh the pending
		// observation so later copies match the most recent send. The
		// refreshed entry must carry the *observing* packet's flow — a
		// stale cross-flow copy supersedes the old observation entirely,
		// and keeping the old flow with the new timestamp would let a
		// later same-flow packet pair against it as a bogus RTT sample.
		cm.pending[k] = obs{at: at, flow: flow}
		cm.touch(k)
		return RTTSample{}, false
	}
	cm.pending[k] = obs{at: at, flow: flow}
	cm.touch(k)
	if len(cm.pending) > cm.maxPending() {
		cm.gc(at)
	}
	return RTTSample{}, false
}

func (cm *CopyMatcher) maxPending() int {
	if cm.MaxPending > 0 {
		return cm.MaxPending
	}
	return DefaultMaxPending
}

// Pending reports the pending-map occupancy (for the observability
// gauges).
func (cm *CopyMatcher) Pending() int { return len(cm.pending) }

// gc removes entries older than MaxAge; if the map is still over the
// cap (a burst of unmatched observations younger than MaxAge), the age
// bound halves until the map fits, keeping the newest entries — a
// deterministic eviction order, so capped runs stay reproducible.
func (cm *CopyMatcher) gc(now time.Time) {
	age := cm.MaxAge
	for {
		for k, o := range cm.pending {
			if now.Sub(o.at) > age {
				delete(cm.pending, k)
				cm.bury(k)
			}
		}
		if len(cm.pending) <= cm.maxPending() || age < time.Millisecond {
			return
		}
		age /= 2
	}
}

// SeriesMS renders the samples as a millisecond time series.
func (cm *CopyMatcher) SeriesMS() Series {
	var s Series
	s.Name = "rtt_ms"
	for _, sm := range cm.Samples {
		s.Add(sm.Time, float64(sm.RTT)/float64(time.Millisecond))
	}
	return s
}
