package metrics

import (
	"testing"
	"time"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

func TestTalkTrackerSegments(t *testing.T) {
	tr := NewTalkTracker()
	at := t0
	// 2 s speaking, 3 s silence, 1 s speaking.
	for i := 0; i < 100; i++ {
		tr.Observe(at, zoom.PTAudioSpeak)
		at = at.Add(20 * time.Millisecond)
	}
	for i := 0; i < 30; i++ {
		tr.Observe(at, zoom.PTAudioSilent)
		at = at.Add(100 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		tr.Observe(at, zoom.PTAudioSpeak)
		at = at.Add(20 * time.Millisecond)
	}
	tr.Finish()
	st := tr.Stats()
	if st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
	if !st.ModeKnown {
		t.Error("ModeKnown = false")
	}
	// Speaking ≈ 3 s of ≈ 6 s observed.
	if st.Speaking < 2500*time.Millisecond || st.Speaking > 3500*time.Millisecond {
		t.Errorf("speaking = %v", st.Speaking)
	}
	if st.SpeakingFraction < 0.35 || st.SpeakingFraction > 0.65 {
		t.Errorf("fraction = %v", st.SpeakingFraction)
	}
}

func TestTalkTrackerShortGapsMerge(t *testing.T) {
	tr := NewTalkTracker()
	at := t0
	for i := 0; i < 200; i++ {
		tr.Observe(at, zoom.PTAudioSpeak)
		// A 300 ms hiccup every 50 packets stays within the merge gap.
		if i%50 == 49 {
			at = at.Add(300 * time.Millisecond)
		} else {
			at = at.Add(20 * time.Millisecond)
		}
	}
	tr.Finish()
	if st := tr.Stats(); st.Segments != 1 {
		t.Errorf("segments = %d, want 1 (gaps under MergeGap merge)", st.Segments)
	}
}

func TestTalkTrackerUnknownMode(t *testing.T) {
	tr := NewTalkTracker()
	at := t0
	for i := 0; i < 100; i++ {
		tr.Observe(at, zoom.PTAudioMobile)
		at = at.Add(20 * time.Millisecond)
	}
	tr.Finish()
	st := tr.Stats()
	if st.ModeKnown {
		t.Error("PT-113-only stream reported a known mode")
	}
	if st.Segments != 0 {
		t.Errorf("segments = %d for unknown-mode stream", st.Segments)
	}
}

func TestTalkTrackerViaStreamMetrics(t *testing.T) {
	sm := NewStreamMetrics(zoom.TypeAudio)
	if sm.Talk == nil {
		t.Fatal("audio stream has no talk tracker")
	}
	at := t0
	seq := uint16(0)
	push := func(pt uint8, payload int, n int, gap time.Duration) {
		for i := 0; i < n; i++ {
			media := zoom.MediaEncap{Type: zoom.TypeAudio, Timestamp: uint32(seq) * 320}
			pkt := rtp.Packet{Header: rtp.Header{PayloadType: pt, SequenceNumber: seq, Timestamp: uint32(seq) * 320, SSRC: 5}, Payload: make([]byte, payload)}
			sm.Observe(at, payload+70, &media, &pkt)
			seq++
			at = at.Add(gap)
		}
	}
	push(zoom.PTAudioSpeak, 110, 100, 20*time.Millisecond)
	push(zoom.PTAudioSilent, 40, 20, 100*time.Millisecond)
	push(zoom.PTAudioSpeak, 110, 100, 20*time.Millisecond)
	sm.Finish()
	st := sm.Talk.Stats()
	if st.Segments != 2 {
		t.Errorf("segments = %d, want 2", st.Segments)
	}
	// Video streams have no talk tracker.
	if NewStreamMetrics(zoom.TypeVideo).Talk != nil {
		t.Error("video stream has a talk tracker")
	}
}
