package metrics

import (
	"slices"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/meeting"
	"zoomlens/internal/rtp"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Checkpoint boundary for the metric accumulators. StreamMetrics is the
// deepest composite in the system — per-substream frame assemblers,
// shared sequence trackers, jitter estimators, rate bins, stall and talk
// models — and every piece is mid-computation state that must survive a
// restore exactly for the byte-identical-report invariant to hold.

const (
	streamMetricsStateV1 = 1
	copyMatcherStateV1   = 1
)

func putSeries(w *statecodec.Writer, s *Series) {
	w.String(s.Name)
	w.Int(len(s.Samples))
	for _, sm := range s.Samples {
		w.Time(sm.Time)
		w.F64(sm.Value)
	}
}

func getSeries(r *statecodec.Reader, s *Series) {
	s.Name = r.String()
	n := r.Count(9)
	s.Samples = nil
	if n > 0 {
		s.Samples = make([]Sample, 0, n)
	}
	for i := 0; i < n; i++ {
		s.Samples = append(s.Samples, Sample{Time: r.Time(), Value: r.F64()})
	}
}

// State encodes the stream analyzer for a checkpoint.
func (sm *StreamMetrics) State(w *statecodec.Writer) {
	w.U8(streamMetricsStateV1)
	w.F64(sm.ClockRate)
	w.U8(uint8(sm.MediaType))
	w.Duration(sm.MaxIdleGap)
	w.Bool(sm.finished)

	w.U64(sm.Packets)
	w.U64(sm.MediaBytes)
	w.U64(sm.WireBytes)
	w.U64(sm.FramesTotal)
	w.U64(sm.FramesIncomplete)

	putSeries(w, &sm.FrameRate)
	putSeries(w, &sm.EncoderRate)
	putSeries(w, &sm.FrameSize)
	putSeries(w, &sm.FrameDelay)
	putSeries(w, &sm.JitterMS)
	putSeries(w, &sm.Packetization)
	putSeries(w, &sm.MediaRate)
	putSeries(w, &sm.WireRate)

	w.Bool(sm.haveBin)
	w.Time(sm.binStart)
	w.U64(sm.binWire)
	w.U64(sm.binMedia)

	w.Int(len(sm.frameObs))
	for _, fo := range sm.frameObs {
		w.Time(fo.At)
		w.U32(fo.TS)
	}

	// The shared main-space sequence tracker encodes once; substreams
	// record only whether they reference it.
	w.Bool(sm.mainSeq != nil)
	if sm.mainSeq != nil {
		sm.mainSeq.State(w)
	}

	w.Bool(sm.Stall != nil)
	if sm.Stall != nil {
		sm.Stall.state(w)
	}
	w.Bool(sm.Talk != nil)
	if sm.Talk != nil {
		sm.Talk.state(w)
	}

	// Stack-backed scratch: substream counts are tiny, and a checkpoint
	// walks tens of thousands of streams — per-stream heap slices here
	// dominate encode time via GC pressure.
	var ptScratch [16]uint8
	pts := ptScratch[:0]
	for pt := range sm.subs {
		pts = append(pts, pt)
	}
	slices.Sort(pts)
	w.Int(len(pts))
	for _, pt := range pts {
		st := sm.subs[pt]
		w.U8(pt)
		w.Bool(st.isMain)
		if !st.isMain {
			st.seq.State(w) // FEC substreams own their sequence space
		}
		w.Duration(st.window.window)
		w.Int(len(st.window.times))
		for _, t := range st.window.times {
			w.Time(t)
		}
		w.U32(st.encoder.lastTS)
		w.Bool(st.encoder.seen)
		w.Bool(st.jitter != nil)
		if st.jitter != nil {
			st.jitter.State(w)
		}
		var tsScratch [64]uint32
		tss := tsScratch[:0]
		for ts := range st.tsSeen {
			tss = append(tss, ts)
		}
		slices.Sort(tss)
		w.Int(len(tss))
		for _, ts := range tss {
			w.U32(ts)
		}
		st.assembler.state(w)
	}
}

// RestoreStreamMetrics rebuilds a stream analyzer from a checkpoint. All
// construction happens here (not via NewStreamMetrics): every field,
// including the type-dependent stall/talk models, comes from the state.
func RestoreStreamMetrics(r *statecodec.Reader) (*StreamMetrics, error) {
	sm := new(StreamMetrics)
	if err := RestoreStreamMetricsInto(r, sm); err != nil {
		return nil, err
	}
	return sm, nil
}

// RestoreStreamMetricsInto is RestoreStreamMetrics decoding into
// caller-provided (typically slab-allocated) storage: a checkpoint
// restore walks tens of thousands of streams, and the per-stream struct
// allocation dominates restore GC pressure when each one is separate.
// Any previous contents of sm are discarded.
func RestoreStreamMetricsInto(r *statecodec.Reader, sm *StreamMetrics) error {
	r.Version("metrics.StreamMetrics", streamMetricsStateV1)
	*sm = StreamMetrics{subs: make(map[uint8]*substreamState)}
	sm.ClockRate = r.F64()
	sm.MediaType = zoom.MediaType(r.U8())
	sm.MaxIdleGap = r.Duration()
	sm.finished = r.Bool()

	sm.Packets = r.U64()
	sm.MediaBytes = r.U64()
	sm.WireBytes = r.U64()
	sm.FramesTotal = r.U64()
	sm.FramesIncomplete = r.U64()

	getSeries(r, &sm.FrameRate)
	getSeries(r, &sm.EncoderRate)
	getSeries(r, &sm.FrameSize)
	getSeries(r, &sm.FrameDelay)
	getSeries(r, &sm.JitterMS)
	getSeries(r, &sm.Packetization)
	getSeries(r, &sm.MediaRate)
	getSeries(r, &sm.WireRate)

	sm.haveBin = r.Bool()
	sm.binStart = r.Time()
	sm.binWire = r.U64()
	sm.binMedia = r.U64()

	nfo := r.Count(5)
	if nfo > 0 {
		sm.frameObs = make([]FrameObservation, 0, nfo)
	}
	for i := 0; i < nfo; i++ {
		sm.frameObs = append(sm.frameObs, FrameObservation{At: r.Time(), TS: r.U32()})
	}

	if r.Bool() {
		sm.mainSeq = rtp.NewSeqTracker()
		if err := sm.mainSeq.Restore(r); err != nil {
			return err
		}
	}
	if r.Bool() {
		sm.Stall = NewStallDetector()
		if err := sm.Stall.restore(r); err != nil {
			return err
		}
	}
	if r.Bool() {
		sm.Talk = NewTalkTracker()
		if err := sm.Talk.restore(r); err != nil {
			return err
		}
	}

	nsubs := r.Count(8)
	for i := 0; i < nsubs; i++ {
		pt := r.U8()
		st := newSubBlock(sm.ClockRate)
		st.isMain = r.Bool()
		if st.isMain {
			if sm.mainSeq == nil {
				r.Failf("metrics.StreamMetrics main substream %d without shared tracker", pt)
				return r.Err()
			}
			st.seq = sm.mainSeq
		} else {
			st.seq = rtp.NewSeqTracker()
			if err := st.seq.Restore(r); err != nil {
				return err
			}
		}
		if d := r.Duration(); d > 0 {
			st.window.window = d
		}
		nt := r.Count(3)
		if nt > 0 {
			st.window.times = make([]time.Time, 0, nt)
		}
		for j := 0; j < nt; j++ {
			st.window.times = append(st.window.times, r.Time())
		}
		st.encoder.lastTS = r.U32()
		st.encoder.seen = r.Bool()
		if r.Bool() {
			st.jitter = &rtp.Jitter{}
			if err := st.jitter.Restore(r); err != nil {
				return err
			}
		}
		nts := r.Count(1)
		if nts > 0 {
			st.tsSeen = make(map[uint32]struct{}, nts)
		}
		for j := 0; j < nts; j++ {
			st.tsSeen[r.U32()] = struct{}{}
		}
		st.assembler.OnFrame = func(f Frame, complete bool) {
			sm.onFrame(st, f, complete)
		}
		if err := st.assembler.restore(r); err != nil {
			return err
		}
		if r.Err() != nil {
			return r.Err()
		}
		sm.subs[pt] = st
	}
	return r.Err()
}

func (a *FrameAssembler) state(w *statecodec.Writer) {
	w.Int(a.MaxOpenFrames)
	w.U32(a.lastTS)
	w.Bool(a.seen)
	// Open frames in insertion (order-slice) order: flushOldest evicts
	// the head, so the order is behavioral state.
	w.Int(len(a.order))
	for _, ts := range a.order {
		of := a.open[ts]
		w.U32(ts)
		w.U16(of.frame.FrameSequence)
		w.Time(of.frame.FirstPacket)
		w.Time(of.frame.Completed)
		w.Int(of.frame.Packets)
		w.Int(of.frame.ExpectedPackets)
		w.Int(of.frame.Bytes)
		w.Bool(of.frame.SawMarker)
		// Serialize in sorted order (not arrival order) so the encoding is
		// canonical; dup detection is order-independent on restore.
		var seqScratch [32]uint16
		seqs := append(seqScratch[:0], of.seqs...)
		slices.Sort(seqs)
		w.Int(len(seqs))
		for _, s := range seqs {
			w.U16(s)
		}
	}
}

func (a *FrameAssembler) restore(r *statecodec.Reader) error {
	a.MaxOpenFrames = r.Int()
	a.lastTS = r.U32()
	a.seen = r.Bool()
	n := r.Count(10)
	a.open = nil
	if n > 0 {
		a.open = make(map[uint32]*openFrame, n)
	}
	a.order = nil
	if n > 0 {
		a.order = make([]uint32, 0, n)
	}
	for i := 0; i < n; i++ {
		ts := r.U32()
		of := &openFrame{frame: Frame{RTPTimestamp: ts}}
		of.frame.FrameSequence = r.U16()
		of.frame.FirstPacket = r.Time()
		of.frame.Completed = r.Time()
		of.frame.Packets = r.Int()
		of.frame.ExpectedPackets = r.Int()
		of.frame.Bytes = r.Int()
		of.frame.SawMarker = r.Bool()
		ns := r.Count(1)
		if ns > 0 {
			of.seqs = make([]uint16, 0, ns)
		}
		for j := 0; j < ns; j++ {
			of.seqs = append(of.seqs, r.U16())
		}
		if r.Err() != nil {
			return r.Err()
		}
		a.open[ts] = of
		a.order = append(a.order, ts)
	}
	return r.Err()
}

func (d *StallDetector) state(w *statecodec.Writer) {
	w.Duration(d.InitialBuffer)
	w.Duration(d.ResumeThreshold)
	w.Int(len(d.Events))
	for _, e := range d.Events {
		w.Time(e.Start)
		w.Duration(e.Duration)
		w.Int(e.FramesLate)
	}
	w.Bool(d.started)
	w.Duration(d.buffer)
	w.Bool(d.stalled)
	w.Time(d.stallAt)
	w.Int(d.lateRun)
	w.Time(d.lastSeen)
}

func (d *StallDetector) restore(r *statecodec.Reader) error {
	d.InitialBuffer = r.Duration()
	d.ResumeThreshold = r.Duration()
	n := r.Count(3)
	d.Events = nil
	if n > 0 {
		d.Events = make([]StallEvent, 0, n)
	}
	for i := 0; i < n; i++ {
		d.Events = append(d.Events, StallEvent{Start: r.Time(), Duration: r.Duration(), FramesLate: r.Int()})
	}
	d.started = r.Bool()
	d.buffer = r.Duration()
	d.stalled = r.Bool()
	d.stallAt = r.Time()
	d.lateRun = r.Int()
	d.lastSeen = r.Time()
	return r.Err()
}

func (t *TalkTracker) state(w *statecodec.Writer) {
	w.Duration(t.MergeGap)
	w.Int(len(t.segments))
	for _, s := range t.segments {
		w.Time(s.Start)
		w.Time(s.End)
	}
	w.Bool(t.open)
	w.Time(t.start)
	w.Time(t.last)
	w.U64(t.speakingPkts)
	w.U64(t.silentPkts)
	w.U64(t.unknownPkts)
	w.Time(t.firstSeen)
	w.Time(t.lastSeen)
}

func (t *TalkTracker) restore(r *statecodec.Reader) error {
	t.MergeGap = r.Duration()
	n := r.Count(2)
	t.segments = nil
	if n > 0 {
		t.segments = make([]TalkSegment, 0, n)
	}
	for i := 0; i < n; i++ {
		t.segments = append(t.segments, TalkSegment{Start: r.Time(), End: r.Time()})
	}
	t.open = r.Bool()
	t.start = r.Time()
	t.last = r.Time()
	t.speakingPkts = r.U64()
	t.silentPkts = r.U64()
	t.unknownPkts = r.U64()
	t.firstSeen = r.Time()
	t.lastSeen = r.Time()
	return r.Err()
}

// State encodes the copy matcher for a checkpoint. Pending observations
// are live latency state: a downlink copy arriving after restore must
// still pair with its uplink observation from before the checkpoint.
func (cm *CopyMatcher) State(w *statecodec.Writer) {
	w.U8(copyMatcherStateV1)
	w.Duration(cm.MaxAge)
	w.Int(cm.MaxPending)
	w.Int(len(cm.Samples))
	for _, s := range cm.Samples {
		w.Time(s.Time)
		w.Duration(s.RTT)
		w.I64(int64(s.Unified))
	}
	keys := make([]copyKey, 0, len(cm.pending))
	for k := range cm.pending {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, compareCopyKey)
	w.Int(len(keys))
	for _, k := range keys {
		o := cm.pending[k]
		w.I64(int64(k.unified))
		w.U8(k.pt)
		w.U16(k.seq)
		w.U32(k.ts)
		w.Time(o.at)
		o.flow.EncodeTo(w)
	}
}

// Restore rebuilds the matcher from a checkpoint, replacing all state.
func (cm *CopyMatcher) Restore(r *statecodec.Reader) error {
	r.Version("metrics.CopyMatcher", copyMatcherStateV1)
	cm.MaxAge = r.Duration()
	cm.MaxPending = r.Int()
	n := r.Count(3)
	cm.Samples = nil
	if n > 0 {
		cm.Samples = make([]RTTSample, 0, n)
	}
	for i := 0; i < n; i++ {
		cm.Samples = append(cm.Samples, RTTSample{Time: r.Time(), RTT: r.Duration(), Unified: meeting.UnifiedID(r.I64())})
	}
	np := r.Count(12)
	cm.pending = make(map[copyKey]obs, np)
	for i := 0; i < np; i++ {
		k := copyKey{unified: meeting.UnifiedID(r.I64()), pt: r.U8(), seq: r.U16(), ts: r.U32()}
		o := obs{at: r.Time(), flow: layers.DecodeFiveTuple(r)}
		if r.Err() != nil {
			return r.Err()
		}
		cm.pending[k] = o
	}
	return r.Err()
}
