package metrics

import (
	"math"
	"time"
)

// This file implements the parameter sweep of §5.2: "Through a simple
// parameter sweep and comparing the result with data obtained through
// the method above [the delivered frame rate], we found that Zoom's
// video streams use a sampling rate of 90 kHz."
//
// The idea: for the true clock rate, the encoder frame rate implied by
// RTP timestamp increments (method 2) matches the delivered frame rate
// measured from arrival times (method 1). A wrong candidate scales
// method 2 by the ratio of the rates, producing a large mismatch.

// CandidateClockRates are the RTP clock rates worth sweeping: the
// audio rates of RFC 3551 and common codecs, and the 90 kHz video rate.
var CandidateClockRates = []float64{8000, 16000, 24000, 44100, 48000, 90000}

// ClockRateEstimate is the sweep result.
type ClockRateEstimate struct {
	// ClockRate is the winning candidate in Hz.
	ClockRate float64
	// Error is the winning candidate's mean relative mismatch between
	// implied and observed frame rate (0 = perfect).
	Error float64
	// Frames is the number of frame transitions used.
	Frames int
}

// FrameObservation is one completed frame's (arrival time, RTP
// timestamp) pair, in order.
type FrameObservation struct {
	At time.Time
	TS uint32
}

// InferClockRate sweeps the candidates over consecutive frame pairs and
// returns the best. ok is false with fewer than 8 usable transitions or
// when even the best candidate mismatches badly (no periodic structure).
func InferClockRate(frames []FrameObservation) (ClockRateEstimate, bool) {
	var best ClockRateEstimate
	best.Error = math.Inf(1)
	// Usable transitions: positive time and timestamp deltas, bounded
	// gaps (idle periods would dominate the error).
	type delta struct {
		dt float64 // seconds
		dc float64 // clock ticks
	}
	var deltas []delta
	for i := 1; i < len(frames); i++ {
		dt := frames[i].At.Sub(frames[i-1].At).Seconds()
		dc := float64(int32(frames[i].TS - frames[i-1].TS))
		if dt <= 0 || dt > 2 || dc <= 0 {
			continue
		}
		deltas = append(deltas, delta{dt, dc})
	}
	if len(deltas) < 8 {
		return best, false
	}
	for _, rate := range CandidateClockRates {
		var errSum float64
		for _, d := range deltas {
			implied := d.dc / rate // seconds of media the increment claims
			rel := math.Abs(implied-d.dt) / d.dt
			errSum += rel
		}
		meanErr := errSum / float64(len(deltas))
		if meanErr < best.Error {
			best = ClockRateEstimate{ClockRate: rate, Error: meanErr, Frames: len(deltas)}
		}
	}
	// Jitter perturbs dt; accept up to 25 % mean mismatch.
	return best, best.Error < 0.25
}

// FrameObservations extracts (completion time, RTP timestamp) pairs
// from a stream's completed frames, for clock inference.
func (sm *StreamMetrics) FrameObservations() []FrameObservation {
	// FrameSize samples are recorded once per frame at completion, but
	// they don't carry the timestamp; reconstruct from the jitter series
	// is wrong. Instead the assembler path records them here.
	return sm.frameObs
}
