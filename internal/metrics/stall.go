package metrics

import (
	"time"
)

// This file implements the stall analysis the paper sketches at the end
// of §5.5 and leaves as future work: "we can compare a frame's
// packetization time with its delay. If the delay is larger than the
// packetization time over the course of several frames, the jitter
// buffer gets drained and the video will eventually stall."
//
// StallDetector models a receiver-side jitter buffer in media time: each
// completed frame contributes its packetization time (the media it
// covers) and consumes the wall-clock delay it took to be delivered.
// Sustained delivery deficits drain the buffer; when the modeled buffer
// is empty, playback stalls until enough media accumulates again.

// StallEvent is one predicted playback stall.
type StallEvent struct {
	// Start is when the modeled jitter buffer ran dry.
	Start time.Time
	// Duration is how long playback starved before the buffer refilled
	// to the resume threshold.
	Duration time.Duration
	// FramesLate is the number of frames whose delivery deficit
	// contributed to this stall.
	FramesLate int
}

// StallDetector accumulates frame delivery timing and predicts stalls.
type StallDetector struct {
	// InitialBuffer is the media time buffered before playback starts
	// (Zoom-like conferencing buffers are small; default 120 ms).
	InitialBuffer time.Duration
	// ResumeThreshold is the media time that must accumulate after a
	// stall before playback resumes (default 60 ms).
	ResumeThreshold time.Duration

	// Events is the list of completed stalls.
	Events []StallEvent

	started  bool
	buffer   time.Duration // buffered media time
	stalled  bool
	stallAt  time.Time
	lateRun  int
	lastSeen time.Time
}

// NewStallDetector returns a detector with conferencing-scale defaults.
func NewStallDetector() *StallDetector {
	return &StallDetector{
		InitialBuffer:   120 * time.Millisecond,
		ResumeThreshold: 60 * time.Millisecond,
	}
}

// ObserveFrame feeds one completed frame: completed is its delivery
// time, delay the §5.5 frame delay (first→last packet), packetization
// the media time the frame covers (from §5.2 method 2). Returns true if
// this observation opened a new stall.
func (d *StallDetector) ObserveFrame(completed time.Time, delay, packetization time.Duration) bool {
	if packetization <= 0 {
		return false
	}
	if !d.started {
		d.started = true
		d.buffer = d.InitialBuffer
		d.lastSeen = completed
	}

	// Frames deliver media worth `packetization`; getting them costs
	// wall-clock `gap` since the previous frame (bounded below by the
	// intra-frame delay). The difference drains or refills the buffer.
	gap := completed.Sub(d.lastSeen)
	if gap < 0 {
		gap = 0
	}
	d.lastSeen = completed
	cost := gap
	if delay > cost {
		cost = delay
	}
	d.buffer += packetization - cost

	if delay > packetization {
		d.lateRun++
	} else {
		d.lateRun = 0
	}

	const maxBuffer = 2 * time.Second
	if d.buffer > maxBuffer {
		d.buffer = maxBuffer
	}

	switch {
	case !d.stalled && d.buffer <= 0:
		d.stalled = true
		d.stallAt = completed
		d.buffer = 0
		return true
	case d.stalled && d.buffer >= d.ResumeThreshold:
		d.Events = append(d.Events, StallEvent{
			Start:      d.stallAt,
			Duration:   completed.Sub(d.stallAt),
			FramesLate: d.lateRun,
		})
		d.stalled = false
		d.lateRun = 0
	}
	return false
}

// Stalled reports whether playback is currently starved.
func (d *StallDetector) Stalled() bool { return d.stalled }

// BufferedMedia returns the current modeled buffer level.
func (d *StallDetector) BufferedMedia() time.Duration { return d.buffer }

// Finish closes an open stall at the given end-of-stream time.
func (d *StallDetector) Finish(end time.Time) {
	if d.stalled {
		d.Events = append(d.Events, StallEvent{
			Start:      d.stallAt,
			Duration:   end.Sub(d.stallAt),
			FramesLate: d.lateRun,
		})
		d.stalled = false
	}
}

// TotalStallTime sums all stall durations.
func (d *StallDetector) TotalStallTime() time.Duration {
	var sum time.Duration
	for _, e := range d.Events {
		sum += e.Duration
	}
	return sum
}
