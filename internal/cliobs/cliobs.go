// Package cliobs wires the shared live-observability surface of the
// zoomlens command-line tools: the -metrics-addr endpoint (Prometheus
// text format, expvar, pprof), the -trace stage-timing report, and — for
// the analysis tools — -snapshot-interval / -snapshot-out periodic QoE
// snapshots.
package cliobs

import (
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"zoomlens/internal/core"
	"zoomlens/internal/obs"
)

// Flags holds the shared observability flag values.
type Flags struct {
	MetricsAddr      string
	Trace            bool
	SnapshotInterval time.Duration
	SnapshotOut      string
}

// RegisterMetrics installs the endpoint and tracing flags (the subset
// every tool supports).
func RegisterMetrics(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsAddr, "metrics-addr", "",
		"serve live metrics on this address: Prometheus text at /metrics, expvar, pprof (empty = disabled; use 127.0.0.1:0 for an ephemeral port)")
	fs.BoolVar(&f.Trace, "trace", false,
		"print a per-stage wall-clock timing report to stderr at exit")
	return f
}

// Register installs all shared flags, including the QoE snapshot pair
// (analysis tools only — the snapshots come from an Analyzer).
func Register(fs *flag.FlagSet) *Flags {
	f := RegisterMetrics(fs)
	fs.DurationVar(&f.SnapshotInterval, "snapshot-interval", 0,
		"emit per-meeting QoE snapshots as JSON lines every interval of trace time (0 = disabled)")
	fs.StringVar(&f.SnapshotOut, "snapshot-out", "",
		"snapshot destination path (empty or \"-\" = stderr)")
	return f
}

// Setup is one run's live observability state.
type Setup struct {
	// Registry is non-nil when -metrics-addr is set; hand it to
	// core.Config.Obs.
	Registry *obs.Registry
	// Tracer is non-nil when -trace and/or -metrics-addr is set; hand it
	// to core.Config.Tracer and use Stage for CLI-level stages.
	Tracer obs.Tracer

	stats *obs.StageStats
	srv   *http.Server
	snapF *os.File
	snapW io.Writer
}

// Apply builds the run's observability from the parsed flags. The
// endpoint address is logged so callers (and tests, with port 0) can
// find it. Call Close before exiting.
func (f *Flags) Apply() (*Setup, error) {
	s := &Setup{snapW: os.Stderr}
	if f.MetricsAddr != "" {
		s.Registry = obs.NewRegistry()
		srv, addr, err := obs.Serve(f.MetricsAddr, s.Registry)
		if err != nil {
			return nil, err
		}
		s.srv = srv
		log.Printf("metrics: listening on http://%s/metrics", addr)
	}
	var trs obs.MultiTracer
	if f.Trace {
		s.stats = obs.NewStageStats()
		trs = append(trs, s.stats)
	}
	if s.Registry != nil {
		trs = append(trs, obs.NewRegistryTracer(s.Registry))
	}
	if len(trs) > 0 {
		s.Tracer = trs
	}
	if f.SnapshotOut != "" && f.SnapshotOut != "-" {
		sf, err := os.Create(f.SnapshotOut)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.snapF = sf
		s.snapW = sf
	}
	return s, nil
}

// SnapshotWriter builds the trace-time snapshot writer; with a zero
// interval it ignores every Tick, so callers can wire it
// unconditionally.
func (f *Flags) SnapshotWriter(s *Setup, snap func(time.Time, time.Duration) []core.MeetingSnapshot) *core.SnapshotWriter {
	return &core.SnapshotWriter{Interval: f.SnapshotInterval, W: s.snapW, Snap: snap}
}

// SnapshotSink returns the destination the -snapshot-out flag selected
// (stderr by default). Line-oriented side channels — the engine
// driver's live QoE prediction records — share it with the periodic
// snapshots, so one flag steers all trace-time JSON lines.
func (s *Setup) SnapshotSink() io.Writer { return s.snapW }

// Stage times one CLI stage under the configured tracer (no-op when
// tracing is off). Use as: defer setup.Stage("ingest")().
func (s *Setup) Stage(name string) func() { return obs.Stage(s.Tracer, name) }

// Close shuts the endpoint down, closes the snapshot file, and prints
// the stage report.
func (s *Setup) Close() {
	if s == nil {
		return
	}
	if s.srv != nil {
		s.srv.Close()
	}
	if s.snapF != nil {
		s.snapF.Close()
	}
	if s.stats != nil {
		os.Stderr.WriteString(s.stats.Report())
	}
}
