// Package agg is the cluster aggregator tier: it merges per-worker
// engine states and observation logs into one sequential-equivalent
// analyzer (byte-identical to a single-engine run over the same
// capture), and merges the operational outputs — status JSON lines,
// Prometheus text expositions, rotated window reports — into one
// meeting-level view. It sits above internal/cluster because restoring
// worker state rides the engine driver's chain-aware checkpoint
// restore (internal/engine), which the cluster package must not import.
package agg

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"zoomlens/internal/cluster"
	"zoomlens/internal/core"
	"zoomlens/internal/engine"
)

// LoadPart restores one worker's engine state (a legacy .zlcp file or a
// chain base path, exactly as -restore accepts). Cluster workers run
// sequentially, so a parallel-engine checkpoint is rejected — its
// shard-partitioned state belongs to an in-process pipeline, not a
// cluster part.
func LoadPart(path string, cfg core.Config) (*core.Analyzer, error) {
	eng, _, err := engine.RestoreEngine(path, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("agg: part %s: %w", path, err)
	}
	switch e := eng.(type) {
	case *core.Analyzer:
		return e, nil
	default:
		core.Discard(eng)
		return nil, fmt.Errorf("agg: part %s holds a parallel engine state; cluster workers run with -workers 1", path)
	}
}

// Aggregate merges a cluster run: the manifest's head counters, each
// worker's pre-Finish engine state, and the k-way merged observation
// logs. The returned analyzer has not been finished — Checkpoint it to
// keep the merged state portable, or Finish it to read the report.
// obsPaths may exceed statePaths when a migrated worker left logs from
// more than one life; order does not matter (the merge is by sequence
// number).
func Aggregate(cfg core.Config, man cluster.Manifest, statePaths, obsPaths []string) (*core.Analyzer, error) {
	// Workers ran pre-filtered (the splitter already classified), but
	// the merged analyzer stands in for a single engine over the raw
	// capture; it must not inherit the workers' PreFiltered view.
	parts := make([]*core.Analyzer, 0, len(statePaths))
	for _, p := range statePaths {
		a, err := LoadPart(p, cfg)
		if err != nil {
			return nil, err
		}
		parts = append(parts, a)
	}
	readers := make([]*cluster.ObsReader, 0, len(obsPaths))
	for _, p := range obsPaths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("agg: obs log: %w", err)
		}
		or, err := cluster.NewObsReader(data)
		if err != nil {
			return nil, fmt.Errorf("agg: obs log %s: %w", p, err)
		}
		readers = append(readers, or)
	}
	next, errf := cluster.MergeObs(readers)
	merged := core.MergeCluster(cfg, parts, man.Head(), next)
	if err := errf(); err != nil {
		return nil, fmt.Errorf("agg: observation replay: %w", err)
	}
	return merged, nil
}

// MergeStatus merges per-worker status JSON lines into one object:
// numeric fields sum, booleans OR, strings keep the first non-empty
// value. It is an operational roll-up (counts of what the fleet did),
// not part of the byte-identical report path.
func MergeStatus(lines [][]byte) ([]byte, error) {
	var merged map[string]any
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal(ln, &m); err != nil {
			return nil, fmt.Errorf("agg: status line %d: %w", i, err)
		}
		if merged == nil {
			merged = m
			continue
		}
		for k, v := range m {
			merged[k] = mergeStatusValue(k, merged[k], v)
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("agg: no status lines")
	}
	return json.Marshal(merged)
}

func mergeStatusValue(key string, a, b any) any {
	switch av := a.(type) {
	case nil:
		return b
	case float64:
		if bv, ok := b.(float64); ok {
			return av + bv
		}
	case bool:
		if bv, ok := b.(bool); ok {
			return av || bv
		}
	case string:
		if av == "" {
			if bv, ok := b.(string); ok {
				return bv
			}
		}
		return av
	case map[string]any:
		if bv, ok := b.(map[string]any); ok {
			for k, v := range bv {
				av[k] = mergeStatusValue(k, av[k], v)
			}
			return av
		}
	}
	return a
}

// MergeProm merges Prometheus text expositions: samples with the same
// series (name plus label set) sum; HELP/TYPE headers and series order
// follow the first exposition they appear in. Counters sum exactly;
// gauges sum too, which is the meaningful cluster roll-up for the
// occupancy and backlog gauges the engine exports.
func MergeProm(dumps []string) string {
	type series struct {
		key   string
		value float64
	}
	var order []string // series keys + comment lines, first-seen order
	seen := map[string]int{}
	var vals []series
	for _, dump := range dumps {
		for _, ln := range strings.Split(dump, "\n") {
			if ln == "" {
				continue
			}
			if strings.HasPrefix(ln, "#") {
				if _, ok := seen[ln]; !ok {
					seen[ln] = -1
					order = append(order, ln)
				}
				continue
			}
			sp := strings.LastIndexByte(ln, ' ')
			if sp < 0 {
				continue
			}
			key := ln[:sp]
			v, err := strconv.ParseFloat(ln[sp+1:], 64)
			if err != nil {
				continue
			}
			if idx, ok := seen[key]; ok && idx >= 0 {
				vals[idx].value += v
				continue
			}
			seen[key] = len(vals)
			vals = append(vals, series{key: key, value: v})
			order = append(order, key)
		}
	}
	var b strings.Builder
	for _, ln := range order {
		if idx, ok := seen[ln]; ok && idx >= 0 {
			fmt.Fprintf(&b, "%s %s\n", vals[idx].key,
				strconv.FormatFloat(vals[idx].value, 'g', -1, 64))
			continue
		}
		b.WriteString(ln)
		b.WriteByte('\n')
	}
	return b.String()
}

// MergeWindowFiles merges per-worker rotated window reports: for every
// window index present under any prefix, the workers' files merge into
// <outPrefix>-NNNN.json (numeric summary fields sum, Duration and End
// take the max, Start the min). Worker windows rotate on each worker's
// own trace clock, so this is an approximate operational view — the
// byte-identical path is the state + observation-log merge.
func MergeWindowFiles(prefixes []string, outPrefix string) (int, error) {
	byIndex := map[int][]map[string]any{}
	for _, p := range prefixes {
		for idx := 0; ; idx++ {
			data, err := os.ReadFile(fmt.Sprintf("%s-%04d.json", p, idx))
			if err != nil {
				break
			}
			var m map[string]any
			if err := json.Unmarshal(data, &m); err != nil {
				return 0, fmt.Errorf("agg: window %s-%04d.json: %w", p, idx, err)
			}
			byIndex[idx] = append(byIndex[idx], m)
		}
	}
	indexes := make([]int, 0, len(byIndex))
	for idx := range byIndex {
		indexes = append(indexes, idx)
	}
	sort.Ints(indexes)
	for _, idx := range indexes {
		ms := byIndex[idx]
		merged := ms[0]
		for _, m := range ms[1:] {
			for k, v := range m {
				merged[k] = mergeWindowValue(k, merged[k], v)
			}
		}
		data, err := json.Marshal(merged)
		if err != nil {
			return 0, err
		}
		path := fmt.Sprintf("%s-%04d.json", outPrefix, idx)
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return 0, err
		}
	}
	return len(indexes), nil
}

func mergeWindowValue(key string, a, b any) any {
	switch av := a.(type) {
	case nil:
		return b
	case float64:
		bv, ok := b.(float64)
		if !ok {
			return a
		}
		switch key {
		case "window":
			return av // same index by construction
		case "Duration":
			if bv > av {
				return bv
			}
			return av
		default:
			return av + bv
		}
	case bool:
		if bv, ok := b.(bool); ok {
			return av || bv
		}
	case string:
		// RFC3339 timestamps order lexicographically: window bounds take
		// the union, everything else keeps the first value.
		if bv, ok := b.(string); ok {
			switch key {
			case "start":
				if bv < av {
					return bv
				}
			case "end":
				if bv > av {
					return bv
				}
			}
		}
		return av
	case map[string]any:
		if bv, ok := b.(map[string]any); ok {
			for k, v := range bv {
				av[k] = mergeWindowValue(k, av[k], v)
			}
			return av
		}
	}
	return a
}
