package agg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMergeStatus(t *testing.T) {
	a := []byte(`{"partial":false,"reason":"","packets":10,"rotations":1,"truncated":false}`)
	b := []byte(`{"partial":true,"reason":"interrupted","packets":32,"rotations":2,"truncated":false}`)
	out, err := MergeStatus([][]byte{a, b})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(out, &m); err != nil {
		t.Fatal(err)
	}
	if got := m["packets"].(float64); got != 42 {
		t.Errorf("packets = %v, want 42 (summed)", got)
	}
	if got := m["rotations"].(float64); got != 3 {
		t.Errorf("rotations = %v, want 3", got)
	}
	if m["partial"] != true {
		t.Errorf("partial = %v, want true (ORed)", m["partial"])
	}
	if m["reason"] != "interrupted" {
		t.Errorf("reason = %v, want first non-empty string", m["reason"])
	}
	if _, err := MergeStatus(nil); err == nil {
		t.Error("MergeStatus(nil) did not fail")
	}
}

func TestMergeProm(t *testing.T) {
	d1 := "# HELP x packets\n# TYPE x counter\nx 3\ny{shard=\"0\"} 1\n"
	d2 := "# HELP x packets\n# TYPE x counter\nx 4\ny{shard=\"1\"} 5\n"
	out := MergeProm([]string{d1, d2})
	for _, want := range []string{
		"# HELP x packets\n",
		"x 7\n",
		"y{shard=\"0\"} 1\n",
		"y{shard=\"1\"} 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged exposition lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# HELP x") != 1 {
		t.Errorf("duplicate HELP header:\n%s", out)
	}
	// Order: comments precede their first series, first-seen order kept.
	if !strings.HasPrefix(out, "# HELP x packets\n# TYPE x counter\nx 7\n") {
		t.Errorf("merged exposition order wrong:\n%s", out)
	}
}

func TestMergeWindowFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(prefix string, idx int, body string) {
		t.Helper()
		path := filepath.Join(dir, fmt.Sprintf("%s-%04d.json", prefix, idx))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a", 0, `{"window":0,"start":"2022-01-01T00:00:00Z","end":"2022-01-01T00:01:00Z","summary":{"Packets":5}}`)
	write("b", 0, `{"window":0,"start":"2022-01-01T00:00:10Z","end":"2022-01-01T00:01:30Z","summary":{"Packets":7}}`)
	write("a", 1, `{"window":1,"start":"2022-01-01T00:01:00Z","end":"2022-01-01T00:02:00Z","summary":{"Packets":2}}`)

	n, err := MergeWindowFiles([]string{filepath.Join(dir, "a"), filepath.Join(dir, "b")}, filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("merged %d windows, want 2", n)
	}
	data, err := os.ReadFile(filepath.Join(dir, "out-0000.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if got := m["window"].(float64); got != 0 {
		t.Errorf("window = %v, want 0 (not summed)", got)
	}
	if got := m["start"].(string); got != "2022-01-01T00:00:00Z" {
		t.Errorf("start = %q, want min", got)
	}
	if got := m["end"].(string); got != "2022-01-01T00:01:30Z" {
		t.Errorf("end = %q, want max", got)
	}
	if got := m["summary"].(map[string]any)["Packets"].(float64); got != 12 {
		t.Errorf("summary packets = %v, want 12 (summed)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "out-0001.json")); err != nil {
		t.Errorf("singleton window not carried through: %v", err)
	}
}
