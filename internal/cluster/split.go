package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"zoomlens/internal/core"
	"zoomlens/internal/pcap"
)

// Splitter fans one capture out to N worker streams: each frame is
// classified by the shared dispatch path (core.Router — rawScan, the
// stateful capture filter, the FNV-1a flow hash) and the kept ones are
// written whole to the owning worker's pcapng stream, stamped with the
// global capture sequence number as an epb_packetid option. A worker
// process is just the ordinary engine driver reading that stream.
type Splitter struct {
	router *core.Router
	outs   []*pcap.NGWriter
	// kept counts frames forwarded per worker (the manifest's sanity
	// cross-check against each worker's own packet count).
	kept []uint64
}

// NewSplitter builds a splitter over n worker streams; attach each
// stream with Attach before feeding packets.
func NewSplitter(cfg core.Config, n int) *Splitter {
	if n < 1 {
		n = 1
	}
	return &Splitter{
		router: core.NewRouter(cfg, n),
		outs:   make([]*pcap.NGWriter, n),
		kept:   make([]uint64, n),
	}
}

// Workers returns the fan-out width.
func (s *Splitter) Workers() int { return len(s.outs) }

// Attach binds worker i's output stream, writing the pcapng section
// and interface headers. Re-attaching mid-split rotates that worker's
// stream to a new file — the drain point of a checkpoint-based worker
// migration — without disturbing the router's filter state or the
// global sequence numbering.
func (s *Splitter) Attach(i int, w io.Writer) error {
	ng, err := pcap.NewNGWriter(w, uint16(pcap.LinkTypeEthernet))
	if err != nil {
		return err
	}
	s.outs[i] = ng
	return nil
}

// Packet routes one frame, forwarding it to its worker when the
// dispatch path keeps it.
func (s *Splitter) Packet(at time.Time, frame []byte) error {
	shard, keep := s.router.Route(at, frame)
	if !keep {
		return nil
	}
	if s.outs[shard] == nil {
		return fmt.Errorf("cluster: worker %d has no attached output", shard)
	}
	s.kept[shard]++
	return s.outs[shard].WriteRecordID(at, frame, s.router.Packets)
}

// Head returns the splitter-side merged-accounting counters.
func (s *Splitter) Head(truncated bool) core.ClusterHead { return s.router.Head(truncated) }

// Manifest builds the split manifest for the aggregator.
func (s *Splitter) Manifest(truncated bool) Manifest {
	h := s.router.Head(truncated)
	kept := make([]uint64, len(s.kept))
	copy(kept, s.kept)
	return Manifest{
		Version:         1,
		Workers:         len(s.outs),
		Packets:         h.Packets,
		Bytes:           h.Bytes,
		Undecodable:     h.Undecodable,
		DroppedByFilter: h.DroppedByFilter,
		PanicsRecovered: h.PanicsRecovered,
		Truncated:       h.Truncated,
		FirstTS:         h.FirstTS,
		LastTS:          h.LastTS,
		KeptPerWorker:   kept,
	}
}

// Manifest is the JSON file the splitter leaves beside its output
// streams: the head counters the aggregator folds into the merged
// report, plus the fan-out shape for sanity checks.
type Manifest struct {
	Version         int       `json:"version"`
	Workers         int       `json:"workers"`
	Packets         uint64    `json:"packets"`
	Bytes           uint64    `json:"bytes"`
	Undecodable     uint64    `json:"undecodable"`
	DroppedByFilter uint64    `json:"dropped_by_filter"`
	PanicsRecovered uint64    `json:"panics_recovered"`
	Truncated       bool      `json:"truncated"`
	FirstTS         time.Time `json:"first_ts"`
	LastTS          time.Time `json:"last_ts"`
	KeptPerWorker   []uint64  `json:"kept_per_worker"`
}

// Head converts the manifest back to the merge-time head counters.
func (m Manifest) Head() core.ClusterHead {
	return core.ClusterHead{
		Packets:         m.Packets,
		Bytes:           m.Bytes,
		Undecodable:     m.Undecodable,
		DroppedByFilter: m.DroppedByFilter,
		PanicsRecovered: m.PanicsRecovered,
		Truncated:       m.Truncated,
		FirstTS:         m.FirstTS,
		LastTS:          m.LastTS,
	}
}

// MarshalManifest renders m as indented JSON with a trailing newline.
func MarshalManifest(m Manifest) ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteManifest writes m as JSON to path.
func WriteManifest(path string, m Manifest) error {
	data, err := MarshalManifest(m)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadManifest loads a manifest written by WriteManifest.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("cluster: manifest %s: %w", path, err)
	}
	if m.Version != 1 {
		return Manifest{}, fmt.Errorf("cluster: manifest %s: version %d not supported", path, m.Version)
	}
	return m, nil
}
