// Package cluster implements multi-process scale-out of the analysis
// pipeline: a flow-hash splitter that fans one capture out to N worker
// processes as pcapng streams, the observation-log format workers use
// to export their cross-flow media observations, and the split manifest
// that carries the splitter's head counters to the aggregator. The
// aggregator itself lives in cluster/agg (it needs the engine driver's
// checkpoint-restore machinery; this package stays importable by the
// driver).
package cluster

import (
	"fmt"
	"io"

	"zoomlens/internal/core"
	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Observation logs ("ZLOB" files) are a concatenation of segments, each
// a magic header followed by tagged records. A worker opens its log in
// append mode, so a drained-and-migrated worker's second life simply
// appends a new segment to the same file — sequence numbers only ever
// grow, so readers see one ordered stream.
const (
	obsMagic = "ZLOB"
	// obsVersion 2 added the protocol byte inside every encoded
	// zoom.StreamKey; version 3 added the wire and payload lengths that
	// feed the feature windower. Older logs are rejected.
	obsVersion = 3
	// obsTagRecord precedes every record; the 'Z' of a segment header
	// is the only other byte legal at a record boundary.
	obsTagRecord = 0x01
	// obsFlushLen is the buffered-encode threshold at which the writer
	// spills to the underlying stream.
	obsFlushLen = 64 << 10
)

// ObsWriter streams ClusterObs records to w in the observation-log
// format. Writes are buffered; call Flush (or just Flush at shutdown)
// to push the tail out. Errors are sticky and surface on Flush/Err.
type ObsWriter struct {
	w   io.Writer
	enc statecodec.Writer
	err error
}

// NewObsWriter starts a new log segment on w.
func NewObsWriter(w io.Writer) *ObsWriter {
	ow := &ObsWriter{w: w}
	for i := 0; i < len(obsMagic); i++ {
		ow.enc.U8(obsMagic[i])
	}
	ow.enc.U8(obsVersion)
	return ow
}

// Add appends one observation record.
func (ow *ObsWriter) Add(o core.ClusterObs) {
	if ow.err != nil {
		return
	}
	ow.enc.U8(obsTagRecord)
	ow.enc.U64(o.Seq)
	ow.enc.Time(o.At)
	o.Flow.EncodeTo(&ow.enc)
	o.Key.EncodeTo(&ow.enc)
	ow.enc.U8(o.PT)
	ow.enc.U16(o.RTPSeq)
	ow.enc.U32(o.RTPTS)
	ow.enc.U32(uint32(o.WireLen))
	ow.enc.U32(uint32(o.PayloadLen))
	if ow.enc.Len() >= obsFlushLen {
		ow.flush()
	}
}

func (ow *ObsWriter) flush() {
	if ow.err != nil || ow.enc.Len() == 0 {
		return
	}
	_, ow.err = ow.w.Write(ow.enc.Bytes())
	ow.enc.Reset()
}

// Flush pushes buffered records to the underlying writer and reports
// the first error encountered.
func (ow *ObsWriter) Flush() error {
	ow.flush()
	return ow.err
}

// Err reports the sticky write error, if any.
func (ow *ObsWriter) Err() error { return ow.err }

// ObsReader decodes an observation log from memory. Records within one
// log are ordered by Seq (a worker receives and processes its frames in
// splitter order; a migrated worker's appended segment continues where
// the first life stopped).
type ObsReader struct {
	r *statecodec.Reader
}

// NewObsReader validates the leading segment header and returns a
// reader over data.
func NewObsReader(data []byte) (*ObsReader, error) {
	or := &ObsReader{r: statecodec.NewReader(data)}
	if err := or.header(); err != nil {
		return nil, err
	}
	return or, nil
}

// header consumes one segment header at the current position.
func (or *ObsReader) header() error {
	for i := 0; i < len(obsMagic); i++ {
		if or.r.U8() != obsMagic[i] {
			return fmt.Errorf("cluster: not an observation log (bad magic)")
		}
	}
	if v := or.r.U8(); v != obsVersion {
		return fmt.Errorf("cluster: observation log version %d not supported", v)
	}
	return or.r.Err()
}

// Next returns the next observation, ok=false at a clean end of log.
// A decode error ends the stream with the error.
func (or *ObsReader) Next() (core.ClusterObs, bool, error) {
	for {
		if or.r.Err() != nil {
			return core.ClusterObs{}, false, or.r.Err()
		}
		if or.r.Remaining() == 0 {
			return core.ClusterObs{}, false, nil
		}
		switch tag := or.r.U8(); tag {
		case obsTagRecord:
			var o core.ClusterObs
			o.Seq = or.r.U64()
			o.At = or.r.Time()
			o.Flow = layers.DecodeFiveTuple(or.r)
			o.Key = zoom.DecodeStreamKey(or.r)
			o.PT = or.r.U8()
			o.RTPSeq = or.r.U16()
			o.RTPTS = or.r.U32()
			o.WireLen = int(or.r.U32())
			o.PayloadLen = int(or.r.U32())
			if err := or.r.Err(); err != nil {
				return core.ClusterObs{}, false, err
			}
			return o, true, nil
		case obsMagic[0]:
			// A new segment header (an appended second life): consume the
			// rest of the magic and the version, then continue.
			for i := 1; i < len(obsMagic); i++ {
				if or.r.U8() != obsMagic[i] {
					return core.ClusterObs{}, false, fmt.Errorf("cluster: corrupt observation log (bad segment magic)")
				}
			}
			if v := or.r.U8(); v != obsVersion {
				return core.ClusterObs{}, false, fmt.Errorf("cluster: observation log version %d not supported", v)
			}
		default:
			return core.ClusterObs{}, false, fmt.Errorf("cluster: corrupt observation log (tag 0x%02x)", tag)
		}
	}
}

// MergeObs k-way merges per-worker observation logs into one stream in
// global capture (Seq) order — the aggregator-side equivalent of the
// in-process reconciliation's k-way merge over shard chains. The
// returned next function matches core.MergeCluster's contract; errf
// reports the first decode error after the stream ends.
func MergeObs(readers []*ObsReader) (next func() (core.ClusterObs, bool), errf func() error) {
	type cursor struct {
		o  core.ClusterObs
		ok bool
	}
	cur := make([]cursor, len(readers))
	var firstErr error
	advance := func(i int) {
		o, ok, err := readers[i].Next()
		if err != nil && firstErr == nil {
			firstErr = err
		}
		cur[i] = cursor{o: o, ok: ok && err == nil}
	}
	for i := range readers {
		advance(i)
	}
	next = func() (core.ClusterObs, bool) {
		best := -1
		for i := range cur {
			if !cur[i].ok {
				continue
			}
			if best < 0 || cur[i].o.Seq < cur[best].o.Seq {
				best = i
			}
		}
		if best < 0 {
			return core.ClusterObs{}, false
		}
		o := cur[best].o
		advance(best)
		return o, true
	}
	errf = func() error { return firstErr }
	return next, errf
}
