package layers

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestRebaseUDP pins the slice-retargeting contract the parallel
// dispatcher relies on: after Rebase(old, fresh), every frame-aliasing
// slice in the Packet points into fresh at the same offset, so the old
// buffer can be reused immediately.
func TestRebaseUDP(t *testing.T) {
	payload := []byte("rebase me")
	old := EthernetIPv4UDP(ap("10.8.1.2:52143"), ap("52.81.1.9:8801"), 64, payload)

	var p Packet
	if err := (&Parser{First: FirstEthernet}).Parse(old, &p); err != nil {
		t.Fatal(err)
	}
	fresh := make([]byte, len(old))
	copy(fresh, old)
	p.Rebase(old, fresh)

	if !bytes.Equal(p.Payload, payload) {
		t.Fatalf("payload after rebase = %q", p.Payload)
	}
	// Prove aliasing: mutating fresh must show through, mutating old must
	// not.
	old[len(old)-1] ^= 0xff
	if !bytes.Equal(p.Payload, payload) {
		t.Error("payload still aliases the old buffer")
	}
	fresh[len(fresh)-1] ^= 0xff
	if bytes.Equal(p.Payload, payload) {
		t.Error("payload does not alias the fresh buffer")
	}
}

// TestRebaseTCPOptions covers the second frame-aliasing slice: TCP
// options, and a rebase onto a subslice of a larger batch buffer (extra
// capacity beyond the frame), which is exactly how the dispatcher calls
// it.
func TestRebaseTCPOptions(t *testing.T) {
	base := EthernetIPv4TCP(ap("10.8.1.2:44123"), ap("52.81.1.9:443"), 57, 1000, 2000, TCPAck, 65535, []byte{9, 9})
	// The builder emits a bare 20-byte TCP header; splice four NOP option
	// bytes in after it (data offset 5 → 6, IP total length += 4) so the
	// parser populates TCP.Options.
	const tcpOff = 14 + 20
	old := append(append(append([]byte(nil), base[:tcpOff+20]...), 1, 1, 1, 1), base[tcpOff+20:]...)
	binary.BigEndian.PutUint16(old[14+2:], binary.BigEndian.Uint16(old[14+2:])+4)
	old[tcpOff+12] = 6 << 4

	var p Packet
	if err := (&Parser{First: FirstEthernet}).Parse(old, &p); err != nil {
		t.Fatal(err)
	}
	if len(p.TCP.Options) != 4 {
		t.Fatalf("options = %x, want 4 NOP bytes", p.TCP.Options)
	}
	wantPayload := append([]byte(nil), p.Payload...)
	wantOpts := append([]byte(nil), p.TCP.Options...)

	// Batch-style destination: the frame copy sits mid-buffer with live
	// capacity after it.
	batch := make([]byte, 0, 4*len(old))
	batch = append(batch, 0xee, 0xee, 0xee)
	start := len(batch)
	batch = append(batch, old...)
	fresh := batch[start:len(batch):len(batch)]
	p.Rebase(old, fresh)

	if !bytes.Equal(p.Payload, wantPayload) {
		t.Errorf("payload = %x, want %x", p.Payload, wantPayload)
	}
	if !bytes.Equal(p.TCP.Options, wantOpts) {
		t.Errorf("options = %x, want %x", p.TCP.Options, wantOpts)
	}
	for i := range old {
		old[i] = 0xaa
	}
	if !bytes.Equal(p.Payload, wantPayload) || !bytes.Equal(p.TCP.Options, wantOpts) {
		t.Error("rebased slices still alias the old buffer")
	}
}
