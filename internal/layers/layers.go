// Package layers decodes and encodes the link, network, and transport
// headers that carry Zoom traffic: Ethernet, IPv4, IPv6, UDP, and TCP.
//
// The decoder follows the gopacket idiom of decoding into preallocated
// layer structs so that per-packet work allocates nothing: a Parser is
// created once and its Parse method overwrites the same Packet value for
// every input. Slices held by the decoded layers alias the input buffer.
package layers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// EtherType values understood by the decoder.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeIPv6 uint16 = 0x86dd
)

// IP protocol numbers understood by the decoder.
const (
	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17
)

// Errors returned by the decoder. All wrap ErrTruncated or ErrUnsupported
// so callers can classify failures without string matching.
var (
	ErrTruncated   = errors.New("layers: truncated packet")
	ErrUnsupported = errors.New("layers: unsupported protocol")
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Src       [6]byte
	Dst       [6]byte
	EtherType uint16
}

const ethernetLen = 14

// IPv4 is a decoded IPv4 header. Options are preserved but not
// interpreted.
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	TotalLen uint16
	ID       uint16
	Flags    uint8 // top 3 bits of the fragment word
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      netip.Addr
	Dst      netip.Addr
}

// HeaderLen returns the header length in bytes.
func (ip *IPv4) HeaderLen() int { return int(ip.IHL) * 4 }

// MoreFragments reports whether the MF flag is set.
func (ip *IPv4) MoreFragments() bool { return ip.Flags&0x1 != 0 }

// IsFragment reports whether this packet is part of a fragmented datagram
// other than an unfragmented one.
func (ip *IPv4) IsFragment() bool { return ip.MoreFragments() || ip.FragOff != 0 }

// IPv6 is a decoded IPv6 fixed header. Extension headers other than
// hop-by-hop/destination options are not traversed; packets using them
// decode as unsupported.
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	PayloadLen   uint16
	NextHeader   uint8
	HopLimit     uint8
	Src          netip.Addr
	Dst          netip.Addr
}

const ipv6Len = 40

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16
}

const udpLen = 8

// TCPFlags holds the TCP flag bits.
type TCPFlags uint8

// TCP flag bit values.
const (
	TCPFin TCPFlags = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// Has reports whether all flags in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// TCP is a decoded TCP header. Options are preserved raw.
type TCP struct {
	SrcPort    uint16
	DstPort    uint16
	Seq        uint32
	Ack        uint32
	DataOffset uint8 // header length in 32-bit words
	Flags      TCPFlags
	Window     uint16
	Checksum   uint16
	Urgent     uint16
	Options    []byte
}

// HeaderLen returns the header length in bytes.
func (t *TCP) HeaderLen() int { return int(t.DataOffset) * 4 }

// Packet is the result of decoding one frame. Presence booleans indicate
// which layers were found; Payload is the transport payload (UDP data or
// TCP segment data).
type Packet struct {
	HasEthernet bool
	Ethernet    Ethernet
	HasIPv4     bool
	IPv4        IPv4
	HasIPv6     bool
	IPv6        IPv6
	HasUDP      bool
	UDP         UDP
	HasTCP      bool
	TCP         TCP
	Payload     []byte
}

// Rebase re-points every slice in p that aliases old onto the
// equivalent range of fresh, which must hold a copy of the same frame
// bytes. The decoder only ever derives Payload and TCP.Options by
// reslicing its input, so each view's offset within old is recoverable
// by cap arithmetic: for s := old[i:j:*], cap(s) == cap(old)-i. This
// lets a dispatcher decode a frame once in a transient buffer, copy the
// bytes somewhere stable, and ship the decoded Packet along without
// re-decoding.
func (p *Packet) Rebase(old, fresh []byte) {
	if p.Payload != nil {
		p.Payload = rebased(p.Payload, old, fresh)
	}
	if p.TCP.Options != nil {
		p.TCP.Options = rebased(p.TCP.Options, old, fresh)
	}
}

func rebased(s, old, fresh []byte) []byte {
	off := cap(old) - cap(s)
	return fresh[off : off+len(s)]
}

// SrcAddr returns the network-layer source address, or the zero Addr if no
// IP layer was decoded.
func (p *Packet) SrcAddr() netip.Addr {
	switch {
	case p.HasIPv4:
		return p.IPv4.Src
	case p.HasIPv6:
		return p.IPv6.Src
	}
	return netip.Addr{}
}

// DstAddr returns the network-layer destination address, or the zero Addr
// if no IP layer was decoded.
func (p *Packet) DstAddr() netip.Addr {
	switch {
	case p.HasIPv4:
		return p.IPv4.Dst
	case p.HasIPv6:
		return p.IPv6.Dst
	}
	return netip.Addr{}
}

// SrcPort returns the transport source port, or 0 if no transport layer
// was decoded.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.HasUDP:
		return p.UDP.SrcPort
	case p.HasTCP:
		return p.TCP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 if no transport
// layer was decoded.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.HasUDP:
		return p.UDP.DstPort
	case p.HasTCP:
		return p.TCP.DstPort
	}
	return 0
}

// FiveTuple is a hashable flow key. Addrs are stored as netip.Addr, which
// compares by value.
type FiveTuple struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// Reverse returns the tuple with endpoints swapped.
func (ft FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: ft.Dst, Dst: ft.Src, SrcPort: ft.DstPort, DstPort: ft.SrcPort, Proto: ft.Proto}
}

// String renders the tuple as "src:sport->dst:dport/proto".
func (ft FiveTuple) String() string {
	proto := "?"
	switch ft.Proto {
	case ProtoUDP:
		proto = "udp"
	case ProtoTCP:
		proto = "tcp"
	}
	return fmt.Sprintf("%s:%d->%s:%d/%s", ft.Src, ft.SrcPort, ft.Dst, ft.DstPort, proto)
}

// FiveTuple extracts the flow key of a decoded packet. ok is false when
// either the network or transport layer is missing.
func (p *Packet) FiveTuple() (ft FiveTuple, ok bool) {
	ft.Src = p.SrcAddr()
	ft.Dst = p.DstAddr()
	if !ft.Src.IsValid() {
		return FiveTuple{}, false
	}
	switch {
	case p.HasUDP:
		ft.Proto = ProtoUDP
	case p.HasTCP:
		ft.Proto = ProtoTCP
	default:
		return FiveTuple{}, false
	}
	ft.SrcPort = p.SrcPort()
	ft.DstPort = p.DstPort()
	return ft, true
}

// FirstLayer selects what the first bytes of the input contain.
type FirstLayer int

// First-layer options for Parser.
const (
	FirstEthernet FirstLayer = iota
	FirstIPv4
	FirstIP // sniff the version nibble: IPv4 or IPv6
)

// Parser decodes frames into a reusable Packet.
type Parser struct {
	First FirstLayer
}

// Parse decodes data into pkt, overwriting all fields. On error the packet
// contains the layers decoded so far; Payload is nil.
func (ps *Parser) Parse(data []byte, pkt *Packet) error {
	*pkt = Packet{}
	switch ps.First {
	case FirstEthernet:
		return ps.parseEthernet(data, pkt)
	case FirstIPv4:
		return ps.parseIPv4(data, pkt)
	case FirstIP:
		if len(data) == 0 {
			return fmt.Errorf("%w: empty packet", ErrTruncated)
		}
		switch data[0] >> 4 {
		case 4:
			return ps.parseIPv4(data, pkt)
		case 6:
			return ps.parseIPv6(data, pkt)
		}
		return fmt.Errorf("%w: IP version %d", ErrUnsupported, data[0]>>4)
	}
	return fmt.Errorf("%w: first layer %d", ErrUnsupported, ps.First)
}

func (ps *Parser) parseEthernet(data []byte, pkt *Packet) error {
	if len(data) < ethernetLen {
		return fmt.Errorf("%w: ethernet header", ErrTruncated)
	}
	copy(pkt.Ethernet.Dst[:], data[0:6])
	copy(pkt.Ethernet.Src[:], data[6:12])
	pkt.Ethernet.EtherType = binary.BigEndian.Uint16(data[12:14])
	pkt.HasEthernet = true
	rest := data[ethernetLen:]
	switch pkt.Ethernet.EtherType {
	case EtherTypeIPv4:
		return ps.parseIPv4(rest, pkt)
	case EtherTypeIPv6:
		return ps.parseIPv6(rest, pkt)
	}
	return fmt.Errorf("%w: ethertype %#04x", ErrUnsupported, pkt.Ethernet.EtherType)
}

func (ps *Parser) parseIPv4(data []byte, pkt *Packet) error {
	if len(data) < 20 {
		return fmt.Errorf("%w: ipv4 header", ErrTruncated)
	}
	if v := data[0] >> 4; v != 4 {
		return fmt.Errorf("%w: ipv4 version %d", ErrUnsupported, v)
	}
	ip := &pkt.IPv4
	ip.IHL = data[0] & 0x0f
	if ip.HeaderLen() < 20 || len(data) < ip.HeaderLen() {
		return fmt.Errorf("%w: ipv4 header length %d", ErrTruncated, ip.HeaderLen())
	}
	ip.TOS = data[1]
	ip.TotalLen = binary.BigEndian.Uint16(data[2:4])
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	frag := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(frag >> 13)
	ip.FragOff = frag & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Checksum = binary.BigEndian.Uint16(data[10:12])
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	pkt.HasIPv4 = true
	if int(ip.TotalLen) >= ip.HeaderLen() && int(ip.TotalLen) <= len(data) {
		data = data[:ip.TotalLen] // strip Ethernet padding
	}
	rest := data[ip.HeaderLen():]
	if ip.IsFragment() && ip.FragOff != 0 {
		// Non-first fragments have no transport header.
		pkt.Payload = rest
		return nil
	}
	return ps.parseTransport(ip.Protocol, rest, pkt)
}

func (ps *Parser) parseIPv6(data []byte, pkt *Packet) error {
	if len(data) < ipv6Len {
		return fmt.Errorf("%w: ipv6 header", ErrTruncated)
	}
	if v := data[0] >> 4; v != 6 {
		return fmt.Errorf("%w: ipv6 version %d", ErrUnsupported, v)
	}
	ip := &pkt.IPv6
	ip.TrafficClass = data[0]<<4 | data[1]>>4
	ip.FlowLabel = binary.BigEndian.Uint32(data[0:4]) & 0xfffff
	ip.PayloadLen = binary.BigEndian.Uint16(data[4:6])
	ip.NextHeader = data[6]
	ip.HopLimit = data[7]
	ip.Src = netip.AddrFrom16([16]byte(data[8:24]))
	ip.Dst = netip.AddrFrom16([16]byte(data[24:40]))
	pkt.HasIPv6 = true
	rest := data[ipv6Len:]
	if int(ip.PayloadLen) <= len(rest) {
		rest = rest[:ip.PayloadLen]
	}
	next := ip.NextHeader
	// Traverse simple extension headers (hop-by-hop 0, routing 43,
	// destination options 60) which share the (next, len) layout.
	for next == 0 || next == 43 || next == 60 {
		if len(rest) < 8 {
			return fmt.Errorf("%w: ipv6 extension header", ErrTruncated)
		}
		extLen := 8 + int(rest[1])*8
		if len(rest) < extLen {
			return fmt.Errorf("%w: ipv6 extension header body", ErrTruncated)
		}
		next = rest[0]
		rest = rest[extLen:]
	}
	return ps.parseTransport(next, rest, pkt)
}

func (ps *Parser) parseTransport(proto uint8, data []byte, pkt *Packet) error {
	switch proto {
	case ProtoUDP:
		if len(data) < udpLen {
			return fmt.Errorf("%w: udp header", ErrTruncated)
		}
		u := &pkt.UDP
		u.SrcPort = binary.BigEndian.Uint16(data[0:2])
		u.DstPort = binary.BigEndian.Uint16(data[2:4])
		u.Length = binary.BigEndian.Uint16(data[4:6])
		u.Checksum = binary.BigEndian.Uint16(data[6:8])
		pkt.HasUDP = true
		payload := data[udpLen:]
		if int(u.Length) >= udpLen && int(u.Length)-udpLen <= len(payload) {
			payload = payload[:int(u.Length)-udpLen]
		}
		pkt.Payload = payload
		return nil
	case ProtoTCP:
		if len(data) < 20 {
			return fmt.Errorf("%w: tcp header", ErrTruncated)
		}
		t := &pkt.TCP
		t.SrcPort = binary.BigEndian.Uint16(data[0:2])
		t.DstPort = binary.BigEndian.Uint16(data[2:4])
		t.Seq = binary.BigEndian.Uint32(data[4:8])
		t.Ack = binary.BigEndian.Uint32(data[8:12])
		t.DataOffset = data[12] >> 4
		t.Flags = TCPFlags(data[13] & 0x3f)
		t.Window = binary.BigEndian.Uint16(data[14:16])
		t.Checksum = binary.BigEndian.Uint16(data[16:18])
		t.Urgent = binary.BigEndian.Uint16(data[18:20])
		hl := t.HeaderLen()
		if hl < 20 || len(data) < hl {
			return fmt.Errorf("%w: tcp header length %d", ErrTruncated, hl)
		}
		t.Options = data[20:hl]
		pkt.HasTCP = true
		pkt.Payload = data[hl:]
		return nil
	}
	return fmt.Errorf("%w: ip protocol %d", ErrUnsupported, proto)
}
