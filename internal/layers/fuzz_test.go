package layers

import (
	"net/netip"
	"testing"
)

// FuzzLayersParse drives the Ethernet/IP/UDP/TCP decoder with arbitrary
// frames: it must never panic, and every frame it accepts must yield
// safe accessor results (the analyzer calls these on each packet).
func FuzzLayersParse(f *testing.F) {
	src := netip.MustParseAddrPort("10.8.1.2:50000")
	dst := netip.MustParseAddrPort("203.0.113.5:8801")
	f.Add(EthernetIPv4UDP(src, dst, 64, []byte("payload")))
	f.Add(EthernetIPv4TCP(src, dst, 64, 1000, 2000, TCPAck|TCPPsh, 4096, []byte("segment")))
	f.Add(EthernetIPv6UDP(netip.MustParseAddrPort("[2001:db8::1]:4000"), netip.MustParseAddrPort("[2001:db8::2]:8801"), 64, []byte("p6")))
	f.Add([]byte{})
	f.Add(make([]byte, 14))

	f.Fuzz(func(t *testing.T, data []byte) {
		var p Parser
		var pkt Packet
		if err := p.Parse(data, &pkt); err != nil {
			return
		}
		_ = pkt.SrcAddr()
		_ = pkt.DstAddr()
		_ = pkt.SrcPort()
		_ = pkt.DstPort()
		if ft, ok := pkt.FiveTuple(); ok {
			_ = ft.Reverse()
			_ = ft.String()
		}
	})
}
