package layers

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte("zoom media payload bytes")
	src, dst := ap("10.8.1.2:52143"), ap("52.81.1.9:8801")
	raw := EthernetIPv4UDP(src, dst, 64, payload)

	var p Packet
	ps := &Parser{First: FirstEthernet}
	if err := ps.Parse(raw, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.HasEthernet || !p.HasIPv4 || !p.HasUDP || p.HasTCP || p.HasIPv6 {
		t.Fatalf("layer presence = eth:%v ip4:%v udp:%v tcp:%v ip6:%v", p.HasEthernet, p.HasIPv4, p.HasUDP, p.HasTCP, p.HasIPv6)
	}
	if p.IPv4.Src != src.Addr() || p.IPv4.Dst != dst.Addr() {
		t.Errorf("addrs = %v->%v, want %v->%v", p.IPv4.Src, p.IPv4.Dst, src.Addr(), dst.Addr())
	}
	if p.UDP.SrcPort != src.Port() || p.UDP.DstPort != dst.Port() {
		t.Errorf("ports = %d->%d, want %d->%d", p.UDP.SrcPort, p.UDP.DstPort, src.Port(), dst.Port())
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q, want %q", p.Payload, payload)
	}
	if p.IPv4.TTL != 64 {
		t.Errorf("TTL = %d, want 64", p.IPv4.TTL)
	}
	if !VerifyIPv4Checksum(raw[14:34]) {
		t.Error("IPv4 checksum invalid")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	src, dst := ap("10.8.1.2:44123"), ap("52.81.1.9:443")
	raw := EthernetIPv4TCP(src, dst, 57, 1000, 2000, TCPAck|TCPPsh, 65535, payload)

	var p Packet
	ps := &Parser{First: FirstEthernet}
	if err := ps.Parse(raw, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.HasTCP {
		t.Fatal("TCP layer missing")
	}
	if p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Errorf("seq/ack = %d/%d, want 1000/2000", p.TCP.Seq, p.TCP.Ack)
	}
	if !p.TCP.Flags.Has(TCPAck | TCPPsh) {
		t.Errorf("flags = %b", p.TCP.Flags)
	}
	if p.TCP.Flags.Has(TCPSyn) {
		t.Error("SYN unexpectedly set")
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %v, want %v", p.Payload, payload)
	}
	if p.TCP.Window != 65535 {
		t.Errorf("window = %d", p.TCP.Window)
	}
}

func TestFiveTuple(t *testing.T) {
	src, dst := ap("10.8.1.2:52143"), ap("52.81.1.9:8801")
	raw := EthernetIPv4UDP(src, dst, 64, nil)
	var p Packet
	if err := (&Parser{}).Parse(raw, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ft, ok := p.FiveTuple()
	if !ok {
		t.Fatal("FiveTuple not ok")
	}
	want := FiveTuple{Src: src.Addr(), Dst: dst.Addr(), SrcPort: src.Port(), DstPort: dst.Port(), Proto: ProtoUDP}
	if ft != want {
		t.Errorf("ft = %+v, want %+v", ft, want)
	}
	if ft.Reverse().Reverse() != ft {
		t.Error("double Reverse not identity")
	}
	rev := ft.Reverse()
	if rev.Src != dst.Addr() || rev.SrcPort != dst.Port() {
		t.Errorf("Reverse = %+v", rev)
	}
	if got := ft.String(); got != "10.8.1.2:52143->52.81.1.9:8801/udp" {
		t.Errorf("String = %q", got)
	}
}

func TestParseTruncated(t *testing.T) {
	raw := EthernetIPv4UDP(ap("10.0.0.1:1"), ap("10.0.0.2:2"), 64, []byte("hello"))
	ps := &Parser{}
	var p Packet
	for cut := 0; cut < len(raw)-5; cut += 3 {
		err := ps.Parse(raw[:cut], &p)
		if cut < 14+20+8 && err == nil {
			t.Errorf("cut=%d: expected truncation error", cut)
		}
	}
}

func TestParseUnsupportedEtherType(t *testing.T) {
	raw := make([]byte, 20)
	raw[12], raw[13] = 0x08, 0x06 // ARP
	var p Packet
	err := (&Parser{}).Parse(raw, &p)
	if err == nil {
		t.Fatal("expected error for ARP ethertype")
	}
	if !p.HasEthernet {
		t.Error("ethernet layer should still decode")
	}
}

func TestEthernetPaddingStripped(t *testing.T) {
	// Short UDP payload: Ethernet pads to 60 bytes. The parser must strip
	// padding using the IPv4 total length.
	raw := EthernetIPv4UDP(ap("10.0.0.1:1000"), ap("10.0.0.2:2000"), 64, []byte{0xaa})
	padded := append(raw, make([]byte, 60-len(raw))...)
	var p Packet
	if err := (&Parser{}).Parse(padded, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(p.Payload) != 1 || p.Payload[0] != 0xaa {
		t.Errorf("payload = %x, want aa", p.Payload)
	}
}

func TestParseIPv6UDP(t *testing.T) {
	// Hand-built IPv6+UDP datagram.
	srcA := netip.MustParseAddr("2001:db8::1")
	dstA := netip.MustParseAddr("2001:db8::2")
	payload := []byte("v6 payload")
	pkt := make([]byte, 0, 64)
	pkt = append(pkt, 0x60, 0, 0, 0)
	udpLenTotal := 8 + len(payload)
	pkt = append(pkt, byte(udpLenTotal>>8), byte(udpLenTotal), ProtoUDP, 64)
	s16, d16 := srcA.As16(), dstA.As16()
	pkt = append(pkt, s16[:]...)
	pkt = append(pkt, d16[:]...)
	pkt = append(pkt, 0x30, 0x39, 0x22, 0x61) // ports 12345 -> 8801
	pkt = append(pkt, byte(udpLenTotal>>8), byte(udpLenTotal), 0, 0)
	pkt = append(pkt, payload...)

	var p Packet
	if err := (&Parser{First: FirstIP}).Parse(pkt, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.HasIPv6 || !p.HasUDP {
		t.Fatalf("presence ip6:%v udp:%v", p.HasIPv6, p.HasUDP)
	}
	if p.IPv6.Src != srcA || p.IPv6.Dst != dstA {
		t.Errorf("addrs %v->%v", p.IPv6.Src, p.IPv6.Dst)
	}
	if p.UDP.DstPort != 8801 {
		t.Errorf("dst port = %d", p.UDP.DstPort)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
	ft, ok := p.FiveTuple()
	if !ok || ft.Src != srcA {
		t.Errorf("five-tuple %+v ok=%v", ft, ok)
	}
}

func TestParseFirstIPv4(t *testing.T) {
	full := EthernetIPv4UDP(ap("10.0.0.1:5"), ap("10.0.0.2:6"), 64, []byte("x"))
	var p Packet
	if err := (&Parser{First: FirstIPv4}).Parse(full[14:], &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.HasEthernet {
		t.Error("unexpected ethernet layer")
	}
	if !p.HasUDP || string(p.Payload) != "x" {
		t.Errorf("udp:%v payload:%q", p.HasUDP, p.Payload)
	}
}

func TestIPv4FragmentNonFirst(t *testing.T) {
	raw := EthernetIPv4UDP(ap("10.0.0.1:5"), ap("10.0.0.2:6"), 64, []byte("abcdef"))
	// Set fragment offset to 100 (non-first fragment).
	raw[14+6] = 0x20 // MF + offset high bits
	raw[14+7] = 100
	var p Packet
	if err := (&Parser{}).Parse(raw, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.HasUDP {
		t.Error("non-first fragment should not decode a UDP layer")
	}
	if !p.IPv4.IsFragment() {
		t.Error("IsFragment = false")
	}
}

func TestInternetChecksumKnownVector(t *testing.T) {
	// RFC 1071 example data.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := internetChecksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
}

func TestQuickUDPPayloadRoundTrip(t *testing.T) {
	f := func(payload []byte, sport, dport uint16, a, b [4]byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src := netip.AddrPortFrom(netip.AddrFrom4(a), sport)
		dst := netip.AddrPortFrom(netip.AddrFrom4(b), dport)
		raw := EthernetIPv4UDP(src, dst, 64, payload)
		var p Packet
		if err := (&Parser{}).Parse(raw, &p); err != nil {
			return false
		}
		return bytes.Equal(p.Payload, payload) &&
			p.UDP.SrcPort == sport && p.UDP.DstPort == dport &&
			p.IPv4.Src == src.Addr() && p.IPv4.Dst == dst.Addr() &&
			VerifyIPv4Checksum(raw[14:34])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(payload []byte, seq, ack uint32, flags uint8) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		src, dst := ap("10.9.9.9:32000"), ap("52.81.0.1:443")
		raw := EthernetIPv4TCP(src, dst, 60, seq, ack, TCPFlags(flags&0x3f), 4096, payload)
		var p Packet
		if err := (&Parser{}).Parse(raw, &p); err != nil {
			return false
		}
		return p.TCP.Seq == seq && p.TCP.Ack == ack &&
			p.TCP.Flags == TCPFlags(flags&0x3f) && bytes.Equal(p.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuilderReuseNoCrossContamination(t *testing.T) {
	var b Builder
	p1 := b.BuildUDP(ap("10.0.0.1:1"), ap("10.0.0.2:2"), 64, []byte("first"))
	p2 := b.BuildUDP(ap("10.0.0.3:3"), ap("10.0.0.4:4"), 64, []byte("second!"))
	var d1, d2 Packet
	ps := &Parser{}
	if err := ps.Parse(p1, &d1); err != nil {
		t.Fatal(err)
	}
	if err := ps.Parse(p2, &d2); err != nil {
		t.Fatal(err)
	}
	if string(d1.Payload) != "first" || string(d2.Payload) != "second!" {
		t.Errorf("payloads %q %q", d1.Payload, d2.Payload)
	}
	if d1.IPv4.Src == d2.IPv4.Src {
		t.Error("builder reuse leaked addresses")
	}
}

func BenchmarkParseUDP(b *testing.B) {
	raw := EthernetIPv4UDP(ap("10.8.1.2:52143"), ap("52.81.1.9:8801"), 64, make([]byte, 1100))
	var p Packet
	ps := &Parser{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ps.Parse(raw, &p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	var bld Builder
	payload := make([]byte, 1100)
	src, dst := ap("10.8.1.2:52143"), ap("52.81.1.9:8801")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bld.BuildUDP(src, dst, 64, payload)
	}
}

func TestEthernetIPv6UDPRoundTrip(t *testing.T) {
	src := netip.MustParseAddrPort("[2001:db8::1]:40000")
	dst := netip.MustParseAddrPort("[2001:db8::2]:8801")
	payload := []byte("v6 zoom payload")
	raw := EthernetIPv6UDP(src, dst, 64, payload)
	var p Packet
	if err := (&Parser{}).Parse(raw, &p); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !p.HasIPv6 || !p.HasUDP {
		t.Fatalf("presence ip6:%v udp:%v", p.HasIPv6, p.HasUDP)
	}
	if p.IPv6.Src != src.Addr() || p.UDP.DstPort != 8801 {
		t.Errorf("decoded %v:%d", p.IPv6.Src, p.UDP.DstPort)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload %q", p.Payload)
	}
	if p.IPv6.HopLimit != 64 {
		t.Errorf("hop limit %d", p.IPv6.HopLimit)
	}
	ft, ok := p.FiveTuple()
	if !ok || ft.Proto != ProtoUDP {
		t.Errorf("five tuple %v ok=%v", ft, ok)
	}
}

func TestEthernetIPv6UDPPanicsOnV4(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for IPv4 input")
		}
	}()
	EthernetIPv6UDP(ap("10.0.0.1:1"), ap("10.0.0.2:2"), 64, nil)
}
