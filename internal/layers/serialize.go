package layers

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// Builder assembles wire-format packets for the simulator and for tests.
// All methods append to an internal buffer that is reused across calls to
// Reset, so steady-state packet construction allocates only the final
// copy handed to the caller.
type Builder struct {
	buf []byte
}

// Reset clears the builder for a new packet.
func (b *Builder) Reset() { b.buf = b.buf[:0] }

// Bytes returns a copy of the assembled packet.
func (b *Builder) Bytes() []byte {
	out := make([]byte, len(b.buf))
	copy(out, b.buf)
	return out
}

// AppendRaw appends arbitrary bytes (a payload).
func (b *Builder) AppendRaw(p []byte) { b.buf = append(b.buf, p...) }

// EthernetIPv4UDP builds a complete Ethernet+IPv4+UDP packet around
// payload, with correct lengths and checksums. MAC addresses are derived
// deterministically from the IP addresses (this repository never needs
// real MACs).
func EthernetIPv4UDP(src, dst netip.AddrPort, ttl uint8, payload []byte) []byte {
	var b Builder
	b.appendEthernet(src.Addr(), dst.Addr(), EtherTypeIPv4)
	b.appendIPv4UDP(src, dst, ttl, payload)
	return b.Bytes()
}

// EthernetIPv4TCP builds a complete Ethernet+IPv4+TCP packet. The TCP
// header uses no options.
func EthernetIPv4TCP(src, dst netip.AddrPort, ttl uint8, seq, ack uint32, flags TCPFlags, window uint16, payload []byte) []byte {
	var b Builder
	b.appendEthernet(src.Addr(), dst.Addr(), EtherTypeIPv4)
	b.appendIPv4TCP(src, dst, ttl, seq, ack, flags, window, payload)
	return b.Bytes()
}

// BuildUDP appends into b (after Reset) and returns the assembled bytes.
// It is the allocation-conscious variant of EthernetIPv4UDP for the
// simulator hot path.
func (b *Builder) BuildUDP(src, dst netip.AddrPort, ttl uint8, payload []byte) []byte {
	b.Reset()
	b.appendEthernet(src.Addr(), dst.Addr(), EtherTypeIPv4)
	b.appendIPv4UDP(src, dst, ttl, payload)
	return b.Bytes()
}

// BuildTCP is the allocation-conscious variant of EthernetIPv4TCP.
func (b *Builder) BuildTCP(src, dst netip.AddrPort, ttl uint8, seq, ack uint32, flags TCPFlags, window uint16, payload []byte) []byte {
	b.Reset()
	b.appendEthernet(src.Addr(), dst.Addr(), EtherTypeIPv4)
	b.appendIPv4TCP(src, dst, ttl, seq, ack, flags, window, payload)
	return b.Bytes()
}

func macFor(a netip.Addr) [6]byte {
	var m [6]byte
	b := a.As4()
	m[0] = 0x02 // locally administered
	m[1] = 0x5a // 'Z'
	copy(m[2:], b[:])
	return m
}

func (b *Builder) appendEthernet(src, dst netip.Addr, etherType uint16) {
	sm, dm := macFor(src), macFor(dst)
	b.buf = append(b.buf, dm[:]...)
	b.buf = append(b.buf, sm[:]...)
	b.buf = binary.BigEndian.AppendUint16(b.buf, etherType)
}

func (b *Builder) appendIPv4UDP(src, dst netip.AddrPort, ttl uint8, payload []byte) {
	totalLen := 20 + udpLen + len(payload)
	b.appendIPv4Header(src.Addr(), dst.Addr(), ttl, ProtoUDP, totalLen)
	udpStart := len(b.buf)
	b.buf = binary.BigEndian.AppendUint16(b.buf, src.Port())
	b.buf = binary.BigEndian.AppendUint16(b.buf, dst.Port())
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(udpLen+len(payload)))
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0) // checksum placeholder
	b.buf = append(b.buf, payload...)
	cs := transportChecksum(src.Addr(), dst.Addr(), ProtoUDP, b.buf[udpStart:])
	if cs == 0 {
		cs = 0xffff // UDP: zero checksum means "not computed"
	}
	binary.BigEndian.PutUint16(b.buf[udpStart+6:], cs)
}

func (b *Builder) appendIPv4TCP(src, dst netip.AddrPort, ttl uint8, seq, ack uint32, flags TCPFlags, window uint16, payload []byte) {
	totalLen := 20 + 20 + len(payload)
	b.appendIPv4Header(src.Addr(), dst.Addr(), ttl, ProtoTCP, totalLen)
	tcpStart := len(b.buf)
	b.buf = binary.BigEndian.AppendUint16(b.buf, src.Port())
	b.buf = binary.BigEndian.AppendUint16(b.buf, dst.Port())
	b.buf = binary.BigEndian.AppendUint32(b.buf, seq)
	b.buf = binary.BigEndian.AppendUint32(b.buf, ack)
	b.buf = append(b.buf, 5<<4, byte(flags))
	b.buf = binary.BigEndian.AppendUint16(b.buf, window)
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0) // checksum placeholder
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0) // urgent
	b.buf = append(b.buf, payload...)
	cs := transportChecksum(src.Addr(), dst.Addr(), ProtoTCP, b.buf[tcpStart:])
	binary.BigEndian.PutUint16(b.buf[tcpStart+16:], cs)
}

func (b *Builder) appendIPv4Header(src, dst netip.Addr, ttl uint8, proto uint8, totalLen int) {
	if !src.Is4() || !dst.Is4() {
		panic(fmt.Sprintf("layers: appendIPv4Header requires IPv4 addresses, got %v -> %v", src, dst))
	}
	start := len(b.buf)
	b.buf = append(b.buf, 0x45, 0) // version 4, IHL 5, TOS 0
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(totalLen))
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0)      // ID
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0x4000) // DF
	b.buf = append(b.buf, ttl, proto, 0, 0)              // checksum placeholder
	s4, d4 := src.As4(), dst.As4()
	b.buf = append(b.buf, s4[:]...)
	b.buf = append(b.buf, d4[:]...)
	cs := internetChecksum(b.buf[start : start+20])
	binary.BigEndian.PutUint16(b.buf[start+10:], cs)
}

// internetChecksum computes the RFC 1071 ones-complement checksum of data.
func internetChecksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// transportChecksum computes the UDP/TCP checksum including the IPv4
// pseudo-header.
func transportChecksum(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	var pseudo [12]byte
	s4, d4 := src.As4(), dst.As4()
	copy(pseudo[0:4], s4[:])
	copy(pseudo[4:8], d4[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	var sum uint32
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum reports whether the IPv4 header checksum of a decoded
// packet's raw header bytes is valid.
func VerifyIPv4Checksum(header []byte) bool {
	if len(header) < 20 {
		return false
	}
	return internetChecksum(header) == 0
}

// EthernetIPv6UDP builds a complete Ethernet+IPv6+UDP packet around
// payload with a correct UDP checksum (mandatory for IPv6).
func EthernetIPv6UDP(src, dst netip.AddrPort, hopLimit uint8, payload []byte) []byte {
	if !src.Addr().Is6() || src.Addr().Is4In6() || !dst.Addr().Is6() || dst.Addr().Is4In6() {
		panic(fmt.Sprintf("layers: EthernetIPv6UDP requires IPv6 addresses, got %v -> %v", src.Addr(), dst.Addr()))
	}
	var b Builder
	sm, dm := mac6For(src.Addr()), mac6For(dst.Addr())
	b.buf = append(b.buf, dm[:]...)
	b.buf = append(b.buf, sm[:]...)
	b.buf = binary.BigEndian.AppendUint16(b.buf, EtherTypeIPv6)

	udpLenTotal := udpLen + len(payload)
	b.buf = append(b.buf, 0x60, 0, 0, 0)
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(udpLenTotal))
	b.buf = append(b.buf, ProtoUDP, hopLimit)
	s16, d16 := src.Addr().As16(), dst.Addr().As16()
	b.buf = append(b.buf, s16[:]...)
	b.buf = append(b.buf, d16[:]...)

	udpStart := len(b.buf)
	b.buf = binary.BigEndian.AppendUint16(b.buf, src.Port())
	b.buf = binary.BigEndian.AppendUint16(b.buf, dst.Port())
	b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(udpLenTotal))
	b.buf = binary.BigEndian.AppendUint16(b.buf, 0)
	b.buf = append(b.buf, payload...)
	cs := transportChecksum6(src.Addr(), dst.Addr(), ProtoUDP, b.buf[udpStart:])
	if cs == 0 {
		cs = 0xffff
	}
	binary.BigEndian.PutUint16(b.buf[udpStart+6:], cs)
	return b.Bytes()
}

func mac6For(a netip.Addr) [6]byte {
	var m [6]byte
	b := a.As16()
	m[0] = 0x02
	m[1] = 0x5b
	copy(m[2:], b[12:16])
	return m
}

// transportChecksum6 computes the UDP/TCP checksum over the IPv6
// pseudo-header.
func transportChecksum6(src, dst netip.Addr, proto uint8, segment []byte) uint16 {
	var pseudo [40]byte
	s16, d16 := src.As16(), dst.As16()
	copy(pseudo[0:16], s16[:])
	copy(pseudo[16:32], d16[:])
	binary.BigEndian.PutUint32(pseudo[32:36], uint32(len(segment)))
	pseudo[39] = proto
	var sum uint32
	for i := 0; i < len(pseudo); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i : i+2]))
	}
	for i := 0; i+1 < len(segment); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(segment[i : i+2]))
	}
	if len(segment)%2 == 1 {
		sum += uint32(segment[len(segment)-1]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
