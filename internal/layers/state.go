package layers

import (
	"zoomlens/internal/statecodec"
)

// Checkpoint codec for the identity types other layers key their state
// by. FiveTuple has no behavior to separate — its state is itself — so
// it carries no version byte; the containing layer's version governs.

// EncodeTo appends the tuple's wire form to w.
func (ft FiveTuple) EncodeTo(w *statecodec.Writer) {
	w.Addr(ft.Src)
	w.Addr(ft.Dst)
	w.U16(ft.SrcPort)
	w.U16(ft.DstPort)
	w.U8(ft.Proto)
}

// DecodeFiveTuple reads a tuple written by EncodeTo.
func DecodeFiveTuple(r *statecodec.Reader) FiveTuple {
	return FiveTuple{
		Src:     r.Addr(),
		Dst:     r.Addr(),
		SrcPort: r.U16(),
		DstPort: r.U16(),
		Proto:   r.U8(),
	}
}

// Compare orders tuples lexicographically by (Src, Dst, SrcPort,
// DstPort, Proto). Checkpoint encoders sort map keys with it so
// identical state always produces identical checkpoint bytes.
func (ft FiveTuple) Compare(o FiveTuple) int {
	if c := ft.Src.Compare(o.Src); c != 0 {
		return c
	}
	if c := ft.Dst.Compare(o.Dst); c != 0 {
		return c
	}
	if ft.SrcPort != o.SrcPort {
		if ft.SrcPort < o.SrcPort {
			return -1
		}
		return 1
	}
	if ft.DstPort != o.DstPort {
		if ft.DstPort < o.DstPort {
			return -1
		}
		return 1
	}
	if ft.Proto != o.Proto {
		if ft.Proto < o.Proto {
			return -1
		}
		return 1
	}
	return 0
}
