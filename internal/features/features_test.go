package features

import (
	"bytes"
	"math"
	"net/netip"
	"reflect"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/qos"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

func testFlow(srcPort uint16) layers.FiveTuple {
	return layers.FiveTuple{
		Src:     netip.MustParseAddr("10.0.0.2"),
		Dst:     netip.MustParseAddr("144.195.1.1"),
		SrcPort: srcPort,
		DstPort: 8801,
		Proto:   17,
	}
}

// steadyObs builds a steady 30 pps video stream over the given span.
func steadyObs(span time.Duration, ft layers.FiveTuple, ssrc uint32) []Obs {
	var obs []Obs
	at := t0
	seq := uint16(100)
	ts := uint32(9000)
	for at.Before(t0.Add(span)) {
		obs = append(obs, Obs{
			At:         at,
			Flow:       ft,
			Key:        zoom.StreamKey{SSRC: ssrc, Type: zoom.TypeVideo},
			WireLen:    970,
			PayloadLen: 900,
			PT:         98,
			RTPSeq:     seq,
			RTPTS:      ts,
		})
		at = at.Add(time.Second / 30)
		seq++
		ts += 3000
	}
	return obs
}

func TestWindowerSteadyStream(t *testing.T) {
	obs := steadyObs(5*time.Second, testFlow(50000), 42)
	rows := BatchRows(obs, time.Second)
	if len(rows) < 5 || len(rows) > 6 {
		t.Fatalf("rows = %d for a 5 s stream at 1 s windows", len(rows))
	}
	mid := rows[2]
	if mid.ID.Key.SSRC != 42 || mid.ID.Key.Type != zoom.TypeVideo {
		t.Errorf("identity: %+v", mid.ID)
	}
	if mid.Packets != 30 {
		t.Errorf("packets = %d, want 30", mid.Packets)
	}
	if r := mid.PktRate(); r < 29 || r > 31 {
		t.Errorf("pkt rate = %v", r)
	}
	// 30 pps × 970 B ≈ 232.8 kbps wire.
	if k := mid.WireKbps(); k < 200 || k > 260 {
		t.Errorf("wire kbps = %v", k)
	}
	// Steady 33.3 ms spacing; the IAT gap crosses window edges, so mid
	// windows see a full complement of gaps.
	if mid.IATMeanMS < 32 || mid.IATMeanMS > 35 {
		t.Errorf("iat mean = %v", mid.IATMeanMS)
	}
	if mid.IATStdMS > 1 {
		t.Errorf("iat std = %v for a steady stream", mid.IATStdMS)
	}
	// Every gap exceeds BurstGap, so each packet is its own burst.
	if mid.Bursts != int(mid.Packets) || mid.MaxBurstPkts != 1 {
		t.Errorf("bursts = %d max = %d", mid.Bursts, mid.MaxBurstPkts)
	}
	if mid.SizeMeanB != 970 || mid.SizeStdB != 0 || mid.SizeMinB != 970 || mid.SizeMaxB != 970 {
		t.Errorf("sizes: mean=%v std=%v min=%d max=%d", mid.SizeMeanB, mid.SizeStdB, mid.SizeMinB, mid.SizeMaxB)
	}
	if mid.SizeEntropy != 0 {
		t.Errorf("entropy = %v for constant sizes", mid.SizeEntropy)
	}
	if mid.SeqLost != 0 || mid.SeqDup != 0 {
		t.Errorf("oracle loss = %d dup = %d on a clean stream", mid.SeqLost, mid.SeqDup)
	}
	if mid.FrameMarks != 30 {
		t.Errorf("frame marks = %d, want 30", mid.FrameMarks)
	}
	// Windows sit on the absolute grid.
	for _, r := range rows {
		if r.Start.UnixNano()%int64(time.Second) != 0 {
			t.Errorf("window start %v off the grid", r.Start)
		}
	}
}

func TestWindowerOracleColumns(t *testing.T) {
	obs := steadyObs(2*time.Second, testFlow(50000), 7)
	// Drop two packets and duplicate one within the first window.
	mangled := make([]Obs, 0, len(obs))
	for i, o := range obs {
		if i == 5 || i == 6 {
			continue // loss of 2
		}
		mangled = append(mangled, o)
		if i == 10 {
			mangled = append(mangled, o) // duplicate
		}
	}
	rows := BatchRows(mangled, time.Second)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	first := rows[0]
	if first.SeqLost != 2 {
		t.Errorf("seq lost = %d, want 2", first.SeqLost)
	}
	if first.SeqDup != 1 {
		t.Errorf("seq dup = %d, want 1", first.SeqDup)
	}
}

func TestWindowerBursts(t *testing.T) {
	ft := testFlow(50001)
	var obs []Obs
	at := t0
	// 4 bursts of 5 packets at 1 ms spacing, bursts 100 ms apart.
	for b := 0; b < 4; b++ {
		for p := 0; p < 5; p++ {
			obs = append(obs, Obs{At: at, Flow: ft, Key: zoom.StreamKey{SSRC: 1, Type: zoom.TypeVideo}, WireLen: 1200, RTPSeq: uint16(b*5 + p), RTPTS: uint32(b)})
			at = at.Add(time.Millisecond)
		}
		at = at.Add(100 * time.Millisecond)
	}
	rows := BatchRows(obs, time.Second)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Bursts != 4 || rows[0].MaxBurstPkts != 5 {
		t.Errorf("bursts = %d max = %d, want 4/5", rows[0].Bursts, rows[0].MaxBurstPkts)
	}
	if rows[0].FrameMarks != 4 {
		t.Errorf("frame marks = %d, want 4", rows[0].FrameMarks)
	}
}

func TestWindowerEntropy(t *testing.T) {
	ft := testFlow(50002)
	var obs []Obs
	at := t0
	// Half tiny, half large packets → two occupied log buckets → 1 bit.
	for i := 0; i < 40; i++ {
		size := 40
		if i%2 == 1 {
			size = 1200
		}
		obs = append(obs, Obs{At: at, Flow: ft, Key: zoom.StreamKey{SSRC: 2, Type: zoom.TypeAudio}, WireLen: size, RTPSeq: uint16(i)})
		at = at.Add(20 * time.Millisecond)
	}
	rows := BatchRows(obs, time.Second)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].SizeEntropy-1) > 1e-9 {
		t.Errorf("entropy = %v, want 1 bit", rows[0].SizeEntropy)
	}
}

// TestWindowerEmissionOrder verifies rows come out ordered by
// (window, stream identity) — the cross-tier determinism contract.
func TestWindowerEmissionOrder(t *testing.T) {
	a := steadyObs(3*time.Second, testFlow(50003), 9)
	b := steadyObs(3*time.Second, testFlow(40000), 3)
	// Interleave in capture order.
	var merged []Obs
	for i, j := 0, 0; i < len(a) || j < len(b); {
		if j >= len(b) || (i < len(a) && !a[i].At.After(b[j].At)) {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	rows := BatchRows(merged, time.Second)
	for i := 1; i < len(rows); i++ {
		p, c := rows[i-1], rows[i]
		if p.Start.After(c.Start) {
			t.Fatalf("window order violated at %d", i)
		}
		if p.Start.Equal(c.Start) && flow.CompareStreamID(p.ID, c.ID) >= 0 {
			t.Fatalf("stream order violated within window at %d", i)
		}
	}
}

// TestWindowerDrainTiming verifies that drain cadence never changes the
// emitted rows: draining after every observation concatenates to the
// same sequence as one final drain.
func TestWindowerDrainTiming(t *testing.T) {
	obs := steadyObs(4*time.Second, testFlow(50004), 11)
	want := BatchRows(obs, time.Second)

	w := NewWindower(time.Second)
	var got []Row
	for _, o := range obs {
		w.Observe(o)
		got = append(got, w.Drain()...)
	}
	w.FinishFlush()
	got = append(got, w.Drain()...)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("drain cadence changed rows: got %d want %d", len(got), len(want))
	}
}

func TestWindowerStateRoundTrip(t *testing.T) {
	obs := steadyObs(3500*time.Millisecond, testFlow(50005), 13)
	cut := len(obs) * 2 / 3

	// Uninterrupted run.
	want := BatchRows(obs, time.Second)

	// Run to the cut, checkpoint mid-window with rows pending, restore,
	// run the rest.
	w := NewWindower(time.Second)
	for _, o := range obs[:cut] {
		w.Observe(o)
	}
	var sw statecodec.Writer
	w.State(&sw)
	r := statecodec.NewReader(sw.Bytes())
	w2 := RestoreWindower(r)
	if w2 == nil || r.Err() != nil {
		t.Fatalf("restore: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("restore left %d bytes", r.Remaining())
	}
	for _, o := range obs[cut:] {
		w2.Observe(o)
	}
	w2.FinishFlush()
	got := w2.Drain()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restore changed rows: got %d want %d", len(got), len(want))
	}

	// Drain-before-checkpoint variant: rows drained pre-cut plus rows
	// drained post-restore must concatenate to the same sequence.
	w3 := NewWindower(time.Second)
	for _, o := range obs[:cut] {
		w3.Observe(o)
	}
	pre := w3.Drain()
	var sw2 statecodec.Writer
	w3.State(&sw2)
	w4 := RestoreWindower(statecodec.NewReader(sw2.Bytes()))
	if w4 == nil {
		t.Fatal("restore failed")
	}
	for _, o := range obs[cut:] {
		w4.Observe(o)
	}
	w4.FinishFlush()
	all := append(append([]Row{}, pre...), w4.Drain()...)
	if !reflect.DeepEqual(all, want) {
		t.Fatalf("drain+restore changed rows: got %d want %d", len(all), len(want))
	}
}

func TestRestoreWindowerRejectsBadVersion(t *testing.T) {
	var sw statecodec.Writer
	NewWindower(time.Second).State(&sw)
	b := append([]byte{}, sw.Bytes()...)
	b[0] = 99
	r := statecodec.NewReader(b)
	if w := RestoreWindower(r); w != nil || r.Err() == nil {
		t.Fatal("version 99 accepted")
	}
}

func TestRestoreWindowerRejectsTruncated(t *testing.T) {
	obs := steadyObs(2*time.Second, testFlow(50006), 17)
	w := NewWindower(time.Second)
	for _, o := range obs {
		w.Observe(o)
	}
	var sw statecodec.Writer
	w.State(&sw)
	b := sw.Bytes()
	for _, n := range []int{1, len(b) / 2, len(b) - 1} {
		r := statecodec.NewReader(b[:n])
		if got := RestoreWindower(r); got != nil {
			t.Fatalf("truncated state at %d bytes accepted", n)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	obs := steadyObs(3*time.Second, testFlow(50007), 21)
	rows := BatchRows(obs, time.Second)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "#zoomlens-features v2\n") {
		t.Fatalf("missing version line: %q", out[:40])
	}
	if !strings.Contains(out, "proto,app,ssrc") {
		t.Fatal("header missing proto/app columns")
	}
	if !strings.Contains(out, ",zoom,") {
		t.Fatal("rows missing app name")
	}
	got, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip rows = %d, want %d", len(got), len(rows))
	}
	for i := range got {
		w := rows[i]
		w.ID.Flow = layers.FiveTuple{} // flow is documented as not round-tripped
		if !reflect.DeepEqual(got[i], w) {
			t.Fatalf("row %d mismatch:\n got %+v\nwant %+v", i, got[i], w)
		}
	}
}

func TestReadCSVRejects(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad version": "#zoomlens-features v1\n",
		"no header":   "#zoomlens-features v2\n",
		"bad header":  "#zoomlens-features v2\nwindow_start,nope\n",
		"short row":   "#zoomlens-features v2\n" + strings.Join(Columns, ",") + "\n1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLabelFromQoS(t *testing.T) {
	cases := []struct {
		fps, lat float64
		want     Label
	}{
		{30, 50, LabelGood},
		{25, 100, LabelGood},
		{20, 100, LabelDegraded},
		{25, 200, LabelDegraded},
		{10, 100, LabelBad},
		{25, 400, LabelBad},
	}
	for _, c := range cases {
		e := qos.Entry{Stats: qos.Stats{VideoFPS: c.fps, LatencyMS: c.lat}}
		if got := LabelFromQoS(e, 30); got != c.want {
			t.Errorf("fps=%v lat=%v: got %v want %v", c.fps, c.lat, got, c.want)
		}
	}
	if LabelGood.String() != "good" || LabelBad.String() != "bad" {
		t.Error("label strings")
	}
}

func TestJoin(t *testing.T) {
	obs := steadyObs(5*time.Second, testFlow(50008), 23)
	rows := BatchRows(obs, time.Second)
	var entries []qos.Entry
	for i := 0; i < 5; i++ {
		entries = append(entries, qos.Entry{
			Time:  t0.Add(time.Duration(i)*time.Second + 500*time.Millisecond),
			Stats: qos.Stats{VideoFPS: 30, LatencyMS: 40},
		})
	}
	labeled := Join(rows, entries, 30)
	if len(labeled) < 5 {
		t.Fatalf("labeled = %d", len(labeled))
	}
	for _, l := range labeled {
		if l.Label != LabelGood {
			t.Errorf("window %v labeled %v", l.Start, l.Label)
		}
	}
	if got := Join(nil, entries, 30); got != nil {
		t.Errorf("Join(nil) = %v", got)
	}
	// QoS entries from a different period: nothing joins.
	if got := Join(rows, []qos.Entry{{Time: t0.Add(time.Hour)}}, 30); len(got) != 0 {
		t.Errorf("joined = %d, want 0", len(got))
	}
}

// TestJoinWindowEdge is the regression test for the second-edge
// boundary: an entry exactly on a window edge labels the window the
// edge opens, never the one it closes; one nanosecond earlier labels
// the closing window.
func TestJoinWindowEdge(t *testing.T) {
	obs := steadyObs(2*time.Second, testFlow(50009), 29)
	rows := BatchRows(obs, time.Second)
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	edge := rows[1].Start // exactly on the edge between windows 0 and 1

	// Entry exactly on the edge must label window 1 only.
	labeled := Join(rows, []qos.Entry{{Time: edge, Stats: qos.Stats{VideoFPS: 30, LatencyMS: 40}}}, 30)
	if len(labeled) != 1 {
		t.Fatalf("edge entry labeled %d rows, want 1", len(labeled))
	}
	if !labeled[0].Start.Equal(rows[1].Start) {
		t.Errorf("edge entry labeled window starting %v, want %v (the window the edge opens)",
			labeled[0].Start, rows[1].Start)
	}

	// One nanosecond before the edge must label window 0 only.
	labeled = Join(rows, []qos.Entry{{Time: edge.Add(-time.Nanosecond), Stats: qos.Stats{VideoFPS: 1, LatencyMS: 900}}}, 30)
	if len(labeled) != 1 {
		t.Fatalf("pre-edge entry labeled %d rows, want 1", len(labeled))
	}
	if !labeled[0].Start.Equal(rows[0].Start) {
		t.Errorf("pre-edge entry labeled window starting %v, want %v (the closing window)",
			labeled[0].Start, rows[0].Start)
	}
	if labeled[0].Label != LabelBad {
		t.Errorf("label = %v, want bad", labeled[0].Label)
	}

	// Two entries in one window: last in input order wins.
	labeled = Join(rows, []qos.Entry{
		{Time: rows[0].Start.Add(100 * time.Millisecond), Stats: qos.Stats{VideoFPS: 30, LatencyMS: 40}},
		{Time: rows[0].Start.Add(900 * time.Millisecond), Stats: qos.Stats{VideoFPS: 1, LatencyMS: 900}},
	}, 30)
	if len(labeled) != 1 || labeled[0].Label != LabelBad {
		t.Fatalf("last-wins violated: %+v", labeled)
	}
}

func TestWindowerIdleEviction(t *testing.T) {
	ft := testFlow(50010)
	w := NewWindower(time.Second)
	// One packet, then a long silence driven by a second stream.
	w.Observe(Obs{At: t0, Flow: ft, Key: zoom.StreamKey{SSRC: 5, Type: zoom.TypeVideo}, WireLen: 100})
	other := testFlow(50011)
	at := t0
	for i := 0; i < idleEvictWindows+4; i++ {
		at = at.Add(time.Second)
		w.Observe(Obs{At: at, Flow: other, Key: zoom.StreamKey{SSRC: 6, Type: zoom.TypeVideo}, WireLen: 100, RTPSeq: uint16(i)})
	}
	if len(w.streams) != 1 {
		t.Fatalf("idle stream not evicted: %d streams live", len(w.streams))
	}
}
