package features

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"zoomlens/internal/metrics"
	"zoomlens/internal/qos"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

func streamWithTraffic(t *testing.T, seconds int) *metrics.StreamMetrics {
	t.Helper()
	sm := metrics.NewStreamMetrics(zoom.TypeVideo)
	ts := uint32(0)
	at := t0
	for i := 0; i < seconds*30; i++ {
		media := zoom.MediaEncap{Type: zoom.TypeVideo, Timestamp: ts, PacketsInFrame: 1}
		pkt := rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SequenceNumber: uint16(i), Timestamp: ts, SSRC: 42, Marker: true}, Payload: make([]byte, 900)}
		sm.Observe(at, 970, &media, &pkt)
		ts += 3000
		at = at.Add(time.Second / 30)
	}
	sm.Finish()
	return sm
}

func TestExtractRows(t *testing.T) {
	sm := streamWithTraffic(t, 10)
	rows := Extract(42, zoom.TypeVideo, sm)
	if len(rows) < 8 || len(rows) > 11 {
		t.Fatalf("rows = %d for a 10 s stream", len(rows))
	}
	mid := rows[len(rows)/2]
	if mid.SSRC != 42 || mid.MediaType != zoom.TypeVideo {
		t.Errorf("identity: %+v", mid)
	}
	// 30 fps × 900 B ≈ 216 kbps media.
	if mid.MediaKbps < 150 || mid.MediaKbps > 280 {
		t.Errorf("media kbps = %v", mid.MediaKbps)
	}
	if mid.WireKbps <= mid.MediaKbps {
		t.Errorf("wire (%v) should exceed media (%v)", mid.WireKbps, mid.MediaKbps)
	}
	if mid.FPSDelivered < 25 || mid.FPSDelivered > 33 {
		t.Errorf("fps = %v", mid.FPSDelivered)
	}
	if mid.FPSEncoder < 29 || mid.FPSEncoder > 31 {
		t.Errorf("encoder fps = %v", mid.FPSEncoder)
	}
	if mid.MeanFrameSize != 900 || mid.MaxFrameSize != 900 {
		t.Errorf("frame sizes = %v/%v", mid.MeanFrameSize, mid.MaxFrameSize)
	}
	if mid.Stalled {
		t.Error("healthy second marked stalled")
	}
	// Rows ordered by time.
	for i := 1; i < len(rows); i++ {
		if !rows[i].Time.After(rows[i-1].Time) {
			t.Fatal("rows out of order")
		}
	}
}

func TestExtractEmptyStream(t *testing.T) {
	sm := metrics.NewStreamMetrics(zoom.TypeAudio)
	if rows := Extract(1, zoom.TypeAudio, sm); rows != nil {
		t.Errorf("rows = %v for empty stream", rows)
	}
}

func TestLabelFromQoS(t *testing.T) {
	cases := []struct {
		fps, lat float64
		want     Label
	}{
		{28, 20, LabelGood},
		{23, 120, LabelGood},
		{14, 40, LabelDegraded},
		{28, 200, LabelDegraded},
		{5, 40, LabelBad},
		{14, 500, LabelBad},
	}
	for _, c := range cases {
		e := qos.Entry{Stats: qos.Stats{VideoFPS: c.fps, LatencyMS: c.lat}}
		if got := LabelFromQoS(e, 28); got != c.want {
			t.Errorf("LabelFromQoS(fps=%v lat=%v) = %v, want %v", c.fps, c.lat, got, c.want)
		}
	}
	if LabelGood.String() != "good" || LabelBad.String() != "bad" {
		t.Error("label strings")
	}
}

func TestJoinMatchesBySecond(t *testing.T) {
	sm := streamWithTraffic(t, 6)
	rows := Extract(42, zoom.TypeVideo, sm)
	rec := qos.NewRecorder("c")
	for i := 0; i < 6; i++ {
		rec.Record(t0.Add(time.Duration(i)*time.Second), qos.Stats{VideoFPS: 28, LatencyMS: 25})
	}
	labeled := Join(rows, rec.Entries, 28)
	if len(labeled) == 0 {
		t.Fatal("no joined rows")
	}
	for _, lr := range labeled {
		if lr.Label != LabelGood {
			t.Errorf("label = %v at %v", lr.Label, lr.Time)
		}
	}
	// QoS entries from a different period: nothing joins.
	rec2 := qos.NewRecorder("c2")
	rec2.Record(t0.Add(time.Hour), qos.Stats{})
	if got := Join(rows, rec2.Entries, 28); len(got) != 0 {
		t.Errorf("joined = %d, want 0", len(got))
	}
}

func TestWriteCSV(t *testing.T) {
	sm := streamWithTraffic(t, 3)
	rows := Extract(42, zoom.TypeVideo, sm)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(rows)+1 {
		t.Fatalf("lines = %d, want %d", len(lines), len(rows)+1)
	}
	if got := strings.Split(lines[0], ","); len(got) != len(Columns) {
		t.Errorf("header fields = %d, want %d", len(got), len(Columns))
	}
	for _, line := range lines[1:] {
		if n := len(strings.Split(line, ",")); n != len(Columns) {
			t.Errorf("row fields = %d, want %d: %s", n, len(Columns), line)
		}
	}
	if !strings.Contains(lines[1], "video") {
		t.Errorf("row: %s", lines[1])
	}
}
