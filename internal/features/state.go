package features

import (
	"slices"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// featuresStateV1 is the windower layer's state format version.
const featuresStateV1 = 1

// State encodes the windower — configuration, clock, per-stream
// continuity state, open accumulators, and the undrained pending rows —
// so a restored engine emits exactly the rows an uninterrupted run
// would. Streams are written sorted by identity for byte-identical
// checkpoints.
func (w *Windower) State(sw *statecodec.Writer) {
	sw.U8(featuresStateV1)
	sw.Duration(w.window)
	sw.Time(w.clock)
	sw.I64(w.curIdx)
	sw.Bool(w.started)

	ids := make([]flow.MediaStreamID, 0, len(w.streams))
	for id := range w.streams {
		ids = append(ids, id)
	}
	slices.SortFunc(ids, flow.CompareStreamID)
	sw.Int(len(ids))
	for _, id := range ids {
		s := w.streams[id]
		id.Flow.EncodeTo(sw)
		id.Key.EncodeTo(sw)
		sw.Time(s.lastAt)
		for i := range s.seqValid {
			sw.Bool(s.seqValid[i])
			sw.U16(s.lastSeq[i])
		}
		sw.Bool(s.tsValid)
		sw.U32(s.lastTS)
		sw.Bool(s.open)
		if s.open {
			encodeAcc(sw, &s.acc)
		}
	}

	sw.Int(len(w.pending))
	for i := range w.pending {
		encodeRow(sw, &w.pending[i])
	}
}

func encodeAcc(sw *statecodec.Writer, a *winAcc) {
	sw.U64(a.pkts)
	sw.U64(a.wireBytes)
	sw.U64(a.payloadBytes)
	sw.U64(a.iatN)
	sw.F64(a.iatSum)
	sw.F64(a.iatSumSq)
	sw.F64(a.iatMin)
	sw.F64(a.iatMax)
	sw.Int(a.bursts)
	sw.Int(a.curRun)
	sw.Int(a.maxRun)
	sw.F64(a.sizeSum)
	sw.F64(a.sizeSumSq)
	sw.Int(a.sizeMin)
	sw.Int(a.sizeMax)
	for _, c := range a.hist {
		sw.U64(c)
	}
	sw.Int(a.seqLost)
	sw.Int(a.seqDup)
	sw.Int(a.frameMarks)
}

func decodeAcc(r *statecodec.Reader, a *winAcc) {
	a.pkts = r.U64()
	a.wireBytes = r.U64()
	a.payloadBytes = r.U64()
	a.iatN = r.U64()
	a.iatSum = r.F64()
	a.iatSumSq = r.F64()
	a.iatMin = r.F64()
	a.iatMax = r.F64()
	a.bursts = r.Int()
	a.curRun = r.Int()
	a.maxRun = r.Int()
	a.sizeSum = r.F64()
	a.sizeSumSq = r.F64()
	a.sizeMin = r.Int()
	a.sizeMax = r.Int()
	for i := range a.hist {
		a.hist[i] = r.U64()
	}
	a.seqLost = r.Int()
	a.seqDup = r.Int()
	a.frameMarks = r.Int()
}

func encodeRow(sw *statecodec.Writer, r *Row) {
	sw.Time(r.Start)
	sw.Duration(r.Window)
	r.ID.Flow.EncodeTo(sw)
	r.ID.Key.EncodeTo(sw)
	sw.U64(r.Packets)
	sw.U64(r.WireBytes)
	sw.U64(r.PayloadBytes)
	sw.F64(r.IATMeanMS)
	sw.F64(r.IATStdMS)
	sw.F64(r.IATMinMS)
	sw.F64(r.IATMaxMS)
	sw.Int(r.Bursts)
	sw.Int(r.MaxBurstPkts)
	sw.F64(r.SizeMeanB)
	sw.F64(r.SizeStdB)
	sw.Int(r.SizeMinB)
	sw.Int(r.SizeMaxB)
	sw.F64(r.SizeEntropy)
	sw.Int(r.SeqLost)
	sw.Int(r.SeqDup)
	sw.Int(r.FrameMarks)
}

func decodeRow(r *statecodec.Reader) Row {
	var row Row
	row.Start = r.Time().UTC()
	row.Window = r.Duration()
	row.ID.Flow = layers.DecodeFiveTuple(r)
	row.ID.Key = zoom.DecodeStreamKey(r)
	row.Packets = r.U64()
	row.WireBytes = r.U64()
	row.PayloadBytes = r.U64()
	row.IATMeanMS = r.F64()
	row.IATStdMS = r.F64()
	row.IATMinMS = r.F64()
	row.IATMaxMS = r.F64()
	row.Bursts = r.Int()
	row.MaxBurstPkts = r.Int()
	row.SizeMeanB = r.F64()
	row.SizeStdB = r.F64()
	row.SizeMinB = r.Int()
	row.SizeMaxB = r.Int()
	row.SizeEntropy = r.F64()
	row.SeqLost = r.Int()
	row.SeqDup = r.Int()
	row.FrameMarks = r.Int()
	return row
}

// RestoreWindower decodes a windower encoded by State. The window
// duration comes from the checkpoint (it is part of the emitted rows'
// identity), so a restored engine keeps the original grid regardless of
// the restoring process's configuration.
func RestoreWindower(r *statecodec.Reader) *Windower {
	r.Version("features.windower", featuresStateV1)
	w := &Windower{
		window:  r.Duration(),
		clock:   r.Time(),
		curIdx:  r.I64(),
		started: r.Bool(),
		streams: make(map[flow.MediaStreamID]*streamWin),
	}
	if w.window >= time.Millisecond {
		w.setWindow(w.curIdx)
	}
	if w.window < time.Millisecond {
		if r.Err() == nil {
			r.Failf("features.windower: bad window %v", w.window)
		}
		return nil
	}
	n := r.Count(8)
	for i := 0; i < n && r.Err() == nil; i++ {
		var id flow.MediaStreamID
		id.Flow = layers.DecodeFiveTuple(r)
		id.Key = zoom.DecodeStreamKey(r)
		s := &streamWin{}
		s.lastAt = r.Time()
		for j := range s.seqValid {
			s.seqValid[j] = r.Bool()
			s.lastSeq[j] = r.U16()
		}
		s.tsValid = r.Bool()
		s.lastTS = r.U32()
		s.open = r.Bool()
		if s.open {
			decodeAcc(r, &s.acc)
		}
		if r.Err() == nil {
			w.streams[id] = s
		}
	}
	np := r.Count(8)
	for i := 0; i < np && r.Err() == nil; i++ {
		row := decodeRow(r)
		if r.Err() == nil {
			w.pending = append(w.pending, row)
		}
	}
	if r.Err() != nil {
		return nil
	}
	return w
}
