package features

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"zoomlens/internal/rtcproto"
	"zoomlens/internal/zoom"
)

// FormatVersion is the feature-CSV format version. v2 added the
// proto/app columns (PR 9 application tags) and the streaming-window
// layout; readers reject other versions.
const FormatVersion = 2

// versionLine is the first line of every feature CSV.
const versionLine = "#zoomlens-features v2"

// Columns is the CSV header, in emission order.
var Columns = []string{
	"window_start", "window_ms",
	"proto", "app", "ssrc", "media_type", "flow",
	"packets", "wire_bytes", "payload_bytes",
	"pkt_rate", "wire_kbps",
	"iat_mean_ms", "iat_std_ms", "iat_min_ms", "iat_max_ms",
	"bursts", "max_burst_pkts",
	"size_mean_b", "size_std_b", "size_min_b", "size_max_b",
	"size_entropy_bits",
	"seq_lost", "seq_dup", "frame_marks",
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSVWriter streams feature rows to one CSV destination: the versioned
// header goes out on construction, each WriteRows call appends, and the
// file is complete after any Flush — so a live tap's periodic drains
// build the same file a batch run would write in one call.
type CSVWriter struct {
	bw *bufio.Writer
}

// NewCSVWriter writes the version line and header and returns a
// streaming writer. Write errors are sticky in the underlying
// bufio.Writer and surface on Flush.
func NewCSVWriter(w io.Writer) *CSVWriter {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, versionLine)
	fmt.Fprintln(bw, strings.Join(Columns, ","))
	return &CSVWriter{bw: bw}
}

// WriteRows appends rows in input order.
func (cw *CSVWriter) WriteRows(rows []Row) {
	for i := range rows {
		writeRow(cw.bw, &rows[i])
	}
}

// Flush pushes buffered lines out and reports the first write error.
func (cw *CSVWriter) Flush() error { return cw.bw.Flush() }

// WriteCSV writes the versioned header followed by one line per row.
// Rows are written in input order; the Windower already emits them
// ordered by (window, stream identity), so the file is deterministic.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := NewCSVWriter(w)
	cw.WriteRows(rows)
	return cw.Flush()
}

func writeRow(bw *bufio.Writer, r *Row) {
	fmt.Fprintf(bw, "%s,%d,%d,%s,%d,%s,%s,%d,%d,%d,%s,%s,%s,%s,%s,%s,%d,%d,%s,%s,%d,%d,%s,%d,%d,%d\n",
		r.Start.UTC().Format(time.RFC3339Nano),
		r.Window.Milliseconds(),
		r.ID.Key.Proto,
		rtcproto.NameOf(r.ID.Key.Proto),
		r.ID.Key.SSRC,
		r.ID.Key.Type,
		r.ID.Flow,
		r.Packets, r.WireBytes, r.PayloadBytes,
		fmtF(r.PktRate()), fmtF(r.WireKbps()),
		fmtF(r.IATMeanMS), fmtF(r.IATStdMS), fmtF(r.IATMinMS), fmtF(r.IATMaxMS),
		r.Bursts, r.MaxBurstPkts,
		fmtF(r.SizeMeanB), fmtF(r.SizeStdB), r.SizeMinB, r.SizeMaxB,
		fmtF(r.SizeEntropy),
		r.SeqLost, r.SeqDup, r.FrameMarks)
}

// ReadCSV parses a feature CSV produced by WriteCSV. The flow column is
// parsed for stream identity only as far as training needs: the SSRC,
// media type, and proto are restored exactly, while Row.ID.Flow is left
// zero (the five-tuple string is not round-tripped — the training and
// evaluation paths key on window and stream fields, not addresses).
func ReadCSV(r io.Reader) ([]Row, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("features: empty input")
	}
	if got := strings.TrimSpace(sc.Text()); got != versionLine {
		return nil, fmt.Errorf("features: bad version line %q (want %q)", got, versionLine)
	}
	if !sc.Scan() {
		return nil, fmt.Errorf("features: missing header")
	}
	if got := strings.TrimSpace(sc.Text()); got != strings.Join(Columns, ",") {
		return nil, fmt.Errorf("features: header mismatch")
	}
	var rows []Row
	line := 2
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		row, err := parseRow(text)
		if err != nil {
			return nil, fmt.Errorf("features: line %d: %w", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

func parseRow(text string) (Row, error) {
	f := strings.Split(text, ",")
	if len(f) != len(Columns) {
		return Row{}, fmt.Errorf("want %d fields, got %d", len(Columns), len(f))
	}
	var (
		r   Row
		err error
	)
	pErr := func(e error) {
		if err == nil && e != nil {
			err = e
		}
	}
	pU64 := func(s string) uint64 {
		v, e := strconv.ParseUint(s, 10, 64)
		pErr(e)
		return v
	}
	pInt := func(s string) int {
		v, e := strconv.Atoi(s)
		pErr(e)
		return v
	}
	pF := func(s string) float64 {
		v, e := strconv.ParseFloat(s, 64)
		pErr(e)
		return v
	}
	start, e := time.Parse(time.RFC3339Nano, f[0])
	pErr(e)
	r.Start = start.UTC()
	r.Window = time.Duration(pU64(f[1])) * time.Millisecond
	proto := pU64(f[2])
	if proto > 255 {
		pErr(fmt.Errorf("proto %d out of range", proto))
	}
	r.ID.Key.Proto = uint8(proto)
	// f[3] (app name) is derived from proto; ignored on read.
	r.ID.Key.SSRC = uint32(pU64(f[4]))
	mt, e := parseMediaType(f[5])
	pErr(e)
	r.ID.Key.Type = mt
	// f[6] (flow) intentionally not round-tripped; see doc comment.
	r.Packets = pU64(f[7])
	r.WireBytes = pU64(f[8])
	r.PayloadBytes = pU64(f[9])
	// f[10]/f[11] (pkt_rate, wire_kbps) are derived; ignored on read.
	r.IATMeanMS = pF(f[12])
	r.IATStdMS = pF(f[13])
	r.IATMinMS = pF(f[14])
	r.IATMaxMS = pF(f[15])
	r.Bursts = pInt(f[16])
	r.MaxBurstPkts = pInt(f[17])
	r.SizeMeanB = pF(f[18])
	r.SizeStdB = pF(f[19])
	r.SizeMinB = pInt(f[20])
	r.SizeMaxB = pInt(f[21])
	r.SizeEntropy = pF(f[22])
	r.SeqLost = pInt(f[23])
	r.SeqDup = pInt(f[24])
	r.FrameMarks = pInt(f[25])
	return r, err
}

// parseMediaType inverts zoom.MediaType.String.
func parseMediaType(s string) (zoom.MediaType, error) {
	switch s {
	case "screenshare":
		return zoom.TypeScreenShare, nil
	case "audio":
		return zoom.TypeAudio, nil
	case "video":
		return zoom.TypeVideo, nil
	case "rtcp-sr":
		return zoom.TypeRTCPSR, nil
	case "rtcp-sr-sdes":
		return zoom.TypeRTCPSRSDES, nil
	}
	var v int
	if _, err := fmt.Sscanf(s, "unknown(%d)", &v); err == nil && v >= 0 && v <= 255 {
		return zoom.MediaType(v), nil
	}
	return 0, fmt.Errorf("bad media_type %q", s)
}
