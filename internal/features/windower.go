package features

import (
	"math"
	"math/bits"
	"slices"
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/zoom"
)

const (
	// BurstGap is the inter-arrival gap that separates bursts: packets
	// no more than this far apart belong to one burst.
	BurstGap = 5 * time.Millisecond
	// sizeBuckets is the logarithmic histogram width behind SizeEntropy:
	// bucket i holds wire lengths in [2^(i-1), 2^i) (bucket 0 holds
	// zero-length frames), with everything ≥ 2^14 folded into the top
	// bucket.
	sizeBuckets = 15
	// idleEvictWindows bounds per-stream windower state: a stream whose
	// last packet is this many windows in the past is forgotten at the
	// next window close. Eviction is a pure function of the observation
	// sequence, so it never breaks cross-tier determinism.
	idleEvictWindows = 64
)

// winAcc accumulates one stream's statistics for the window currently
// open.
type winAcc struct {
	pkts         uint64
	wireBytes    uint64
	payloadBytes uint64

	iatN     uint64
	iatSum   float64 // ms
	iatSumSq float64
	iatMin   float64
	iatMax   float64

	bursts int
	curRun int
	maxRun int

	sizeSum   float64
	sizeSumSq float64
	sizeMin   int
	sizeMax   int
	hist      [sizeBuckets]uint64

	seqLost    int
	seqDup     int
	frameMarks int
}

// streamWin is one stream's windower state: the cross-window continuity
// fields (previous arrival, previous RTP sequence/timestamp) plus the
// open-window accumulator.
type streamWin struct {
	lastAt time.Time
	// seqValid/lastSeq track the previous RTP sequence number separately
	// for the main (index 0) and FEC (index 1) substreams: Zoom
	// interleaves them — independent sequence spaces — under one SSRC,
	// while the main substream rotates payload types over a single
	// counter (audio speak/silent/mobile), so neither a single tracker
	// nor a per-payload-type one reads continuity correctly.
	seqValid [2]bool
	lastSeq  [2]uint16
	tsValid  bool
	lastTS   uint32
	open     bool
	acc      winAcc
}

// Windower builds per-stream feature rows over fixed, epoch-aligned
// windows of the capture clock. It is driven by the analyzer's media
// observation stream in global capture order; all of its behavior —
// window closes, stream eviction, emission order — is a pure function
// of that sequence, which is what makes rows byte-identical across the
// sequential, parallel, and cluster tiers.
//
// The capture clock is the maximum observation timestamp seen so far.
// When it crosses into a new window, every open window closes and its
// rows are emitted sorted by stream identity; rows then wait in a
// pending buffer until Drain. Out-of-order timestamps (capture jitter)
// fold into the currently open window rather than resurrecting a closed
// one.
type Windower struct {
	window  time.Duration
	clock   time.Time
	curIdx  int64
	started bool
	// curEndNs is the first nanosecond past the current window — the
	// cached close boundary, so the hot path compares instead of
	// dividing. Derived from curIdx; never encoded.
	curEndNs int64

	streams map[flow.MediaStreamID]*streamWin
	pending []Row

	// lastID/lastStream memoize the previous lookup: frames arrive as
	// bursts of same-stream packets, so most observations hit the
	// stream just touched and skip hashing the wide composite key.
	// Pure cache — never encoded, invalidated on eviction.
	lastID     flow.MediaStreamID
	lastStream *streamWin
}

// NewWindower builds a windower over the given window duration.
// Durations below a millisecond are rejected by rounding up — window
// semantics need a sane grid.
func NewWindower(window time.Duration) *Windower {
	if window < time.Millisecond {
		window = time.Millisecond
	}
	return &Windower{
		window:  window,
		streams: make(map[flow.MediaStreamID]*streamWin),
	}
}

// Window returns the configured window duration.
func (w *Windower) Window() time.Duration { return w.window }

// Observe feeds one media observation. Observations must arrive in
// global capture order (the order the analyzer's reconciliation path
// produces).
func (w *Windower) Observe(o Obs) {
	if o.At.After(w.clock) || !w.started {
		if !w.started {
			w.setWindow(windowIndex(o.At, w.window))
			w.started = true
		} else if o.At.UnixNano() >= w.curEndNs {
			w.closeOpen()
			w.setWindow(windowIndex(o.At, w.window))
		}
		if o.At.After(w.clock) {
			w.clock = o.At
		}
	}
	id := flow.MediaStreamID{Flow: o.Flow, Key: o.Key}
	s := w.lastStream
	if s == nil || id != w.lastID {
		s = w.streams[id]
		if s == nil {
			s = &streamWin{}
			w.streams[id] = s
		}
		w.lastID, w.lastStream = id, s
	}
	a := &s.acc
	if !s.open {
		*a = winAcc{}
		s.open = true
	}
	a.pkts++
	a.wireBytes += uint64(o.WireLen)
	a.payloadBytes += uint64(o.PayloadLen)

	// Inter-arrival and burst shape. The gap spans window boundaries (it
	// is a property of the stream, not the window); a negative gap from
	// capture-timestamp jitter clamps to zero.
	if !s.lastAt.IsZero() {
		gap := o.At.Sub(s.lastAt)
		if gap < 0 {
			gap = 0
		}
		ms := float64(gap) / float64(time.Millisecond)
		if a.iatN == 0 || ms < a.iatMin {
			a.iatMin = ms
		}
		if a.iatN == 0 || ms > a.iatMax {
			a.iatMax = ms
		}
		a.iatN++
		a.iatSum += ms
		a.iatSumSq += ms * ms
		if a.pkts > 1 && gap <= BurstGap {
			a.curRun++
		} else {
			a.bursts++
			a.curRun = 1
		}
	} else {
		a.bursts++
		a.curRun = 1
	}
	if a.curRun > a.maxRun {
		a.maxRun = a.curRun
	}
	s.lastAt = o.At

	// Size distribution.
	sz := float64(o.WireLen)
	a.sizeSum += sz
	a.sizeSumSq += sz * sz
	if a.pkts == 1 || o.WireLen < a.sizeMin {
		a.sizeMin = o.WireLen
	}
	if o.WireLen > a.sizeMax {
		a.sizeMax = o.WireLen
	}
	b := bits.Len(uint(o.WireLen))
	if b >= sizeBuckets {
		b = sizeBuckets - 1
	}
	a.hist[b]++

	// Oracle columns from the RTP header. Continuity is judged within the
	// packet's substream class (main vs FEC); non-Zoom protocols carry
	// FEC/RTX on their own SSRCs, so all of their packets are main.
	sub := 0
	if o.Key.Proto == 0 && zoom.ClassifySubstream(o.Key.Type, o.PT).IsFEC() {
		sub = 1
	}
	if s.seqValid[sub] {
		switch d := o.RTPSeq - s.lastSeq[sub]; {
		case d == 0:
			a.seqDup++
		case d < 0x8000:
			a.seqLost += int(d) - 1
		default:
			// Reordered/late packet: neither a loss nor a duplicate.
		}
	}
	s.seqValid[sub], s.lastSeq[sub] = true, o.RTPSeq
	if !s.tsValid || o.RTPTS != s.lastTS {
		a.frameMarks++
	}
	s.lastTS, s.tsValid = o.RTPTS, true
}

// setWindow moves the open window to index k and recomputes the cached
// close boundary: the smallest UnixNano whose windowIndex exceeds k.
// windowIndex truncates toward zero, so pre-epoch indices end one past
// k*window rather than at (k+1)*window.
func (w *Windower) setWindow(k int64) {
	w.curIdx = k
	if k < 0 {
		w.curEndNs = k*int64(w.window) + 1
	} else {
		w.curEndNs = (k + 1) * int64(w.window)
	}
}

// closeOpen closes every open stream window at curIdx, appending rows
// to the pending buffer sorted by stream identity, and evicts streams
// idle past the eviction horizon.
func (w *Windower) closeOpen() {
	var ids []flow.MediaStreamID
	horizon := w.clock.Add(-time.Duration(idleEvictWindows) * w.window)
	for id, s := range w.streams {
		if s.open {
			ids = append(ids, id)
		} else if s.lastAt.Before(horizon) {
			delete(w.streams, id)
			if w.lastStream == s {
				w.lastStream = nil
			}
		}
	}
	if len(ids) == 0 {
		return
	}
	slices.SortFunc(ids, flow.CompareStreamID)
	start := time.Unix(0, w.curIdx*int64(w.window)).UTC()
	for _, id := range ids {
		s := w.streams[id]
		w.pending = append(w.pending, s.row(start, w.window, id))
		s.open = false
	}
}

// row renders the open accumulator as an emitted Row.
func (s *streamWin) row(start time.Time, window time.Duration, id flow.MediaStreamID) Row {
	a := &s.acc
	r := Row{
		Start:        start,
		Window:       window,
		ID:           id,
		Packets:      a.pkts,
		WireBytes:    a.wireBytes,
		PayloadBytes: a.payloadBytes,
		Bursts:       a.bursts,
		MaxBurstPkts: a.maxRun,
		SizeMinB:     a.sizeMin,
		SizeMaxB:     a.sizeMax,
		SeqLost:      a.seqLost,
		SeqDup:       a.seqDup,
		FrameMarks:   a.frameMarks,
	}
	if a.iatN > 0 {
		n := float64(a.iatN)
		r.IATMeanMS = a.iatSum / n
		r.IATStdMS = stddev(a.iatSumSq, a.iatSum, n)
		r.IATMinMS = a.iatMin
		r.IATMaxMS = a.iatMax
	}
	if a.pkts > 0 {
		n := float64(a.pkts)
		r.SizeMeanB = a.sizeSum / n
		r.SizeStdB = stddev(a.sizeSumSq, a.sizeSum, n)
		r.SizeEntropy = entropy(a.hist[:], a.pkts)
	}
	return r
}

func stddev(sumSq, sum, n float64) float64 {
	v := sumSq/n - (sum/n)*(sum/n)
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

func entropy(hist []uint64, total uint64) float64 {
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// FinishFlush closes every still-open window (emitting partial final
// windows) without advancing the clock. The analyzer calls it from
// Finish so the last window of a capture is not lost.
func (w *Windower) FinishFlush() {
	if !w.started {
		return
	}
	w.closeOpen()
}

// Drain returns the emitted rows accumulated since the previous Drain
// and clears the pending buffer. Drain timing affects only when rows
// become visible, never their content or order — the checkpoint state
// carries undrained rows, so a resumed run emits exactly the rows an
// uninterrupted one would.
func (w *Windower) Drain() []Row {
	rows := w.pending
	w.pending = nil
	return rows
}

// PendingRows reports how many emitted rows await Drain.
func (w *Windower) PendingRows() int { return len(w.pending) }

// BatchRows replays a recorded observation sequence through a fresh
// windower and returns every row: the batch mode of the same streaming
// pipeline, used by offline dataset builds and the streaming-vs-batch
// differential tests.
func BatchRows(obs []Obs, window time.Duration) []Row {
	w := NewWindower(window)
	for _, o := range obs {
		w.Observe(o)
	}
	w.FinishFlush()
	return w.Drain()
}
