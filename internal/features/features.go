// Package features turns per-stream metric series into per-second
// feature vectors for machine-learned QoE inference — the application
// the paper proposes in §8 ("our system can help automatically generate
// large, feature-rich data sets from real-world traffic", citing
// Bronzino et al.'s encrypted-video QoE work).
//
// Each row describes one stream-second: passive, in-network observables
// only. When ground truth is available (simulation, or an instrumented
// client), rows can be joined with labels to train models; LabelFromQoS
// derives a simple quality label from the client's own statistics.
package features

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"zoomlens/internal/metrics"
	"zoomlens/internal/qos"
	"zoomlens/internal/zoom"
)

// Row is one stream-second feature vector.
type Row struct {
	Time      time.Time
	SSRC      uint32
	MediaType zoom.MediaType

	// Passive observables (§5 metrics, binned to the second).
	MediaKbps     float64
	WireKbps      float64
	FPSDelivered  float64
	FPSEncoder    float64
	MeanFrameSize float64
	MaxFrameSize  float64
	JitterMS      float64
	FrameDelayMS  float64
	Frames        float64
	// Stalled reports the stall model's state during this second.
	Stalled bool
}

// Columns is the CSV header, kept in sync with WriteCSV.
var Columns = []string{
	"time", "ssrc", "media_type",
	"media_kbps", "wire_kbps", "fps_delivered", "fps_encoder",
	"mean_frame_bytes", "max_frame_bytes", "jitter_ms", "frame_delay_ms",
	"frames", "stalled",
}

// Extract converts one stream's metrics into per-second rows covering
// the stream's active interval.
func Extract(ssrc uint32, mt zoom.MediaType, sm *metrics.StreamMetrics) []Row {
	if len(sm.MediaRate.Samples) == 0 {
		return nil
	}
	origin := sm.MediaRate.Samples[0].Time.Truncate(time.Second)
	sec := func(s []metrics.Sample) map[int64]float64 {
		out := make(map[int64]float64, len(s))
		for _, x := range s {
			out[x.Time.Unix()] = x.Value
		}
		return out
	}
	media := sec(sm.MediaRate.Samples) // already 1-second bins
	wire := sec(sm.WireRate.Samples)
	fps := sec(sm.FrameRate.Bin(origin, time.Second, "last"))
	enc := sec(sm.EncoderRate.Bin(origin, time.Second, "mean"))
	meanSize := sec(sm.FrameSize.Bin(origin, time.Second, "mean"))
	maxSize := sec(maxBin(sm.FrameSize, origin))
	jit := sec(sm.JitterMS.Bin(origin, time.Second, "mean"))
	delay := sec(sm.FrameDelay.Bin(origin, time.Second, "mean"))
	frames := sec(sm.FrameSize.Bin(origin, time.Second, "count"))

	stalledAt := map[int64]bool{}
	if sm.Stall != nil {
		for _, e := range sm.Stall.Events {
			for t := e.Start.Unix(); t <= e.Start.Add(e.Duration).Unix(); t++ {
				stalledAt[t] = true
			}
		}
	}

	keys := make([]int64, 0, len(media))
	for k := range media {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	rows := make([]Row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, Row{
			Time:          time.Unix(k, 0).UTC(),
			SSRC:          ssrc,
			MediaType:     mt,
			MediaKbps:     media[k] / 1000,
			WireKbps:      wire[k] / 1000,
			FPSDelivered:  fps[k],
			FPSEncoder:    enc[k],
			MeanFrameSize: meanSize[k],
			MaxFrameSize:  maxSize[k],
			JitterMS:      jit[k],
			FrameDelayMS:  delay[k],
			Frames:        frames[k],
			Stalled:       stalledAt[k],
		})
	}
	return rows
}

func maxBin(s metrics.Series, origin time.Time) []metrics.Sample {
	byBin := map[int64]float64{}
	for _, sm := range s.Samples {
		k := sm.Time.Unix()
		if sm.Value > byBin[k] {
			byBin[k] = sm.Value
		}
	}
	out := make([]metrics.Sample, 0, len(byBin))
	for k, v := range byBin {
		out = append(out, metrics.Sample{Time: time.Unix(k, 0).UTC(), Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// Label is a coarse quality label for supervised training.
type Label int

// Quality labels derived from client-side ground truth.
const (
	LabelGood Label = iota
	LabelDegraded
	LabelBad
)

func (l Label) String() string {
	switch l {
	case LabelGood:
		return "good"
	case LabelDegraded:
		return "degraded"
	case LabelBad:
		return "bad"
	}
	return "unknown"
}

// LabelFromQoS derives a label from a client's QoS entry: full frame
// rate and low latency → good; halved frame rate or elevated latency →
// degraded; worse → bad. targetFPS is the nominal sender rate.
func LabelFromQoS(e qos.Entry, targetFPS float64) Label {
	switch {
	case e.VideoFPS >= 0.8*targetFPS && e.LatencyMS < 150:
		return LabelGood
	case e.VideoFPS >= 0.45*targetFPS && e.LatencyMS < 300:
		return LabelDegraded
	default:
		return LabelBad
	}
}

// LabeledRow joins a feature row with a ground-truth label.
type LabeledRow struct {
	Row
	Label Label
}

// Join matches rows to QoS entries by second. Rows without a matching
// entry are dropped (the client was not recording).
func Join(rows []Row, entries []qos.Entry, targetFPS float64) []LabeledRow {
	byTime := make(map[int64]qos.Entry, len(entries))
	for _, e := range entries {
		byTime[e.Time.Unix()] = e
	}
	out := make([]LabeledRow, 0, len(rows))
	for _, r := range rows {
		e, ok := byTime[r.Time.Unix()]
		if !ok {
			continue
		}
		out = append(out, LabeledRow{Row: r, Label: LabelFromQoS(e, targetFPS)})
	}
	return out
}

// WriteCSV writes rows (with an optional header) to w.
func WriteCSV(w io.Writer, rows []Row, header bool) error {
	if header {
		if err := writeLine(w, Columns); err != nil {
			return err
		}
	}
	for _, r := range rows {
		rec := []string{
			r.Time.Format(time.RFC3339),
			strconv.FormatUint(uint64(r.SSRC), 10),
			r.MediaType.String(),
			f1(r.MediaKbps), f1(r.WireKbps), f1(r.FPSDelivered), f1(r.FPSEncoder),
			f1(r.MeanFrameSize), f1(r.MaxFrameSize), f2(r.JitterMS), f2(r.FrameDelayMS),
			f1(r.Frames), strconv.FormatBool(r.Stalled),
		}
		if err := writeLine(w, rec); err != nil {
			return err
		}
	}
	return nil
}

func writeLine(w io.Writer, fields []string) error {
	for i, f := range fields {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, f); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
