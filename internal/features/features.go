// Package features is the streaming feature-extraction layer of the
// engine: per-stream windowed feature vectors built on the capture
// clock for machine-learned QoE inference — the application the paper
// proposes in §8 ("our system can help automatically generate large,
// feature-rich data sets from real-world traffic"), extended to the
// header-free scenario of Sharma et al. (frame rate/freeze prediction
// from flow statistics) and Song et al. (QoS prediction over concurrent
// RTP flows).
//
// The Windower consumes the analyzer's per-packet media observations —
// the same globally ordered stream the cross-flow Dedup/CopyMatcher
// reconciliation consumes — and emits one Row per stream per window.
// Because the observation stream is identical across the sequential,
// sharded-parallel, and cluster execution tiers, the emitted rows are
// byte-identical across all three.
//
// A Row's inputs split in two:
//
//   - Header-free observables: packet/byte counts and rates,
//     inter-arrival statistics, burst shape, and packet-size
//     distribution (including entropy). These need nothing beyond the
//     five-tuple and capture timestamps, so they survive full header
//     encryption — the "what if you can't parse the RTP header at all"
//     scenario.
//   - Oracle columns: loss/duplicate estimates from RTP sequence
//     numbers and frame transitions from RTP timestamps. They require a
//     readable RTP header and exist for dataset enrichment and model
//     comparison; header-free predictors must not consume them.
package features

import (
	"time"

	"zoomlens/internal/flow"
	"zoomlens/internal/layers"
	"zoomlens/internal/qos"
	"zoomlens/internal/zoom"
)

// Obs is one media-packet observation: the windower's input record,
// mirroring the fields the analyzer's reconciliation path carries per
// packet.
type Obs struct {
	At   time.Time
	Flow layers.FiveTuple
	Key  zoom.StreamKey
	// WireLen/PayloadLen are the captured frame and UDP payload sizes —
	// the header-free size observables.
	WireLen    int
	PayloadLen int
	// PT/RTPSeq/RTPTS are header-derived (oracle) inputs.
	PT     uint8
	RTPSeq uint16
	RTPTS  uint32
}

// Row is one stream-window feature vector.
type Row struct {
	// Start is the window's inclusive start on the capture clock; the
	// window covers [Start, Start+Window). Windows are aligned to
	// absolute multiples of Window since the Unix epoch.
	Start  time.Time
	Window time.Duration
	// ID identifies the stream (flow five-tuple + SSRC/type/proto).
	ID flow.MediaStreamID

	// Header-free observables.
	Packets      uint64
	WireBytes    uint64
	PayloadBytes uint64
	// Inter-arrival statistics in milliseconds. The gap to the stream's
	// previous packet counts even when that packet fell in an earlier
	// window; a stream's very first packet contributes no gap.
	IATMeanMS float64
	IATStdMS  float64
	IATMinMS  float64
	IATMaxMS  float64
	// Bursts counts maximal runs of packets separated by no more than
	// BurstGap within the window; MaxBurstPkts is the longest run.
	Bursts       int
	MaxBurstPkts int
	// Packet-size (wire length) distribution.
	SizeMeanB float64
	SizeStdB  float64
	SizeMinB  int
	SizeMaxB  int
	// SizeEntropy is the Shannon entropy (bits) of the wire-length
	// distribution over logarithmic size buckets.
	SizeEntropy float64

	// Oracle columns (RTP-header derived; optional).
	SeqLost    int
	SeqDup     int
	FrameMarks int
}

// PktRate is the window-normalized packet rate (packets/s).
func (r Row) PktRate() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.Packets) / r.Window.Seconds()
}

// WireKbps is the window-normalized wire bitrate in kbit/s.
func (r Row) WireKbps() float64 {
	if r.Window <= 0 {
		return 0
	}
	return float64(r.WireBytes) * 8 / 1000 / r.Window.Seconds()
}

// windowIndex floors t onto the absolute window grid: index i covers
// [i*window, (i+1)*window) on the Unix timeline. A timestamp exactly on
// an edge belongs to the window it opens.
func windowIndex(t time.Time, window time.Duration) int64 {
	return t.UnixNano() / int64(window)
}

// Label is a coarse quality label for supervised training.
type Label int

// Quality labels derived from client-side ground truth.
const (
	LabelGood Label = iota
	LabelDegraded
	LabelBad
	// NumLabels sizes per-class arrays.
	NumLabels = 3
)

func (l Label) String() string {
	switch l {
	case LabelGood:
		return "good"
	case LabelDegraded:
		return "degraded"
	case LabelBad:
		return "bad"
	}
	return "unknown"
}

// LabelFromQoS derives a label from a client's QoS entry: full frame
// rate and low latency → good; halved frame rate or elevated latency →
// degraded; worse → bad. targetFPS is the nominal sender rate.
func LabelFromQoS(e qos.Entry, targetFPS float64) Label {
	switch {
	case e.VideoFPS >= 0.8*targetFPS && e.LatencyMS < 150:
		return LabelGood
	case e.VideoFPS >= 0.45*targetFPS && e.LatencyMS < 300:
		return LabelDegraded
	default:
		return LabelBad
	}
}

// LabeledRow joins a feature row with a ground-truth label.
type LabeledRow struct {
	Row
	Label Label
}

// Join matches rows to QoS entries by window bin. An entry at time T
// labels the row whose window [Start, Start+Window) contains T — bin
// matching is floor-based on the same absolute grid the Windower emits
// on. The boundary semantics follow the half-open window: an entry
// falling exactly on a window edge labels the window that edge opens,
// never the one it closes, while an entry one nanosecond earlier labels
// the closing window (regression-tested in TestJoinWindowEdge). When
// several entries land in one window the last in input order wins. Rows
// without a matching entry are dropped (the client was not recording).
func Join(rows []Row, entries []qos.Entry, targetFPS float64) []LabeledRow {
	if len(rows) == 0 {
		return nil
	}
	win := rows[0].Window
	if win <= 0 {
		return nil
	}
	byBin := make(map[int64]qos.Entry, len(entries))
	for _, e := range entries {
		byBin[windowIndex(e.Time, win)] = e
	}
	out := make([]LabeledRow, 0, len(rows))
	for _, r := range rows {
		e, ok := byBin[windowIndex(r.Start, win)]
		if !ok {
			continue
		}
		out = append(out, LabeledRow{Row: r, Label: LabelFromQoS(e, targetFPS)})
	}
	return out
}
