package capture

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/stun"
	"zoomlens/internal/zoom"
)

var (
	zoomNets   = []netip.Prefix{netip.MustParsePrefix("52.81.0.0/16"), netip.MustParsePrefix("149.137.0.0/17")}
	campusNets = []netip.Prefix{netip.MustParsePrefix("10.8.0.0/16")}
	t0         = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)
)

func decode(t *testing.T, raw []byte) *layers.Packet {
	t.Helper()
	var p layers.Packet
	if err := (&layers.Parser{}).Parse(raw, &p); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return &p
}

func newTestFilter() *Filter {
	return NewFilter(Config{ZoomNetworks: zoomNets, CampusNetworks: campusNets})
}

func TestClassifyServerTraffic(t *testing.T) {
	f := newTestFilter()
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52000"), ap("52.81.3.4:8801"), 64, []byte("media"))
	if v := f.Classify(decode(t, raw), t0); v != KeepServer {
		t.Errorf("verdict = %v, want KeepServer", v)
	}
	// Reverse direction too.
	raw = layers.EthernetIPv4UDP(ap("52.81.3.4:8801"), ap("10.8.1.2:52000"), 64, []byte("media"))
	if v := f.Classify(decode(t, raw), t0); v != KeepServer {
		t.Errorf("reverse verdict = %v, want KeepServer", v)
	}
	// TCP 443 control traffic to a Zoom server.
	rawTCP := layers.EthernetIPv4TCP(ap("10.8.1.2:40000"), ap("52.81.3.4:443"), 64, 1, 1, layers.TCPAck, 100, nil)
	if v := f.Classify(decode(t, rawTCP), t0); v != KeepServer {
		t.Errorf("tcp verdict = %v, want KeepServer", v)
	}
}

func TestClassifyDropsNonZoom(t *testing.T) {
	f := newTestFilter()
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52000"), ap("93.184.216.34:443"), 64, []byte("quic"))
	if v := f.Classify(decode(t, raw), t0); v != Drop {
		t.Errorf("verdict = %v, want Drop", v)
	}
	if f.Stats().Dropped != 1 {
		t.Errorf("stats = %+v", f.Stats())
	}
}

func stunPacket(client, server netip.AddrPort) []byte {
	m := stun.NewBindingRequest(stun.NewTransactionID())
	return layers.EthernetIPv4UDP(client, server, 64, m.Marshal())
}

func TestP2PDetectionLifecycle(t *testing.T) {
	f := newTestFilter()
	client := ap("10.8.1.2:52143")
	zc := ap("52.81.200.1:3478")
	peer := ap("203.0.113.50:44000")

	// Before STUN, a P2P-looking flow drops.
	media := layers.EthernetIPv4UDP(client, peer, 64, []byte("x"))
	if v := f.Classify(decode(t, media), t0); v != Drop {
		t.Fatalf("pre-STUN verdict = %v, want Drop", v)
	}

	// STUN exchange arms the table with the client endpoint.
	if v := f.Classify(decode(t, stunPacket(client, zc)), t0); v != KeepSTUN {
		t.Fatalf("stun verdict = %v, want KeepSTUN", v)
	}
	if f.P2PTableLen() != 1 {
		t.Fatalf("table len = %d", f.P2PTableLen())
	}

	// The same client endpoint to a new peer is now P2P, both directions.
	if v := f.Classify(decode(t, media), t0.Add(5*time.Second)); v != KeepP2P {
		t.Errorf("post-STUN verdict = %v, want KeepP2P", v)
	}
	back := layers.EthernetIPv4UDP(peer, client, 64, []byte("y"))
	if v := f.Classify(decode(t, back), t0.Add(6*time.Second)); v != KeepP2P {
		t.Errorf("reverse verdict = %v, want KeepP2P", v)
	}
}

func TestP2PTimeoutExpires(t *testing.T) {
	f := NewFilter(Config{ZoomNetworks: zoomNets, CampusNetworks: campusNets, P2PTimeout: 10 * time.Second})
	client := ap("10.8.1.2:52143")
	f.Classify(decode(t, stunPacket(client, ap("52.81.200.1:3478"))), t0)
	media := layers.EthernetIPv4UDP(client, ap("203.0.113.50:44000"), 64, []byte("x"))
	if v := f.Classify(decode(t, media), t0.Add(11*time.Second)); v != Drop {
		t.Errorf("expired verdict = %v, want Drop", v)
	}
	if f.Stats().P2PEvicted != 1 {
		t.Errorf("evictions = %d", f.Stats().P2PEvicted)
	}
}

func TestP2PRefreshKeepsEntryAlive(t *testing.T) {
	f := NewFilter(Config{ZoomNetworks: zoomNets, CampusNetworks: campusNets, P2PTimeout: 10 * time.Second})
	client := ap("10.8.1.2:52143")
	peer := ap("203.0.113.50:44000")
	f.Classify(decode(t, stunPacket(client, ap("52.81.200.1:3478"))), t0)
	// Media every 5 s for a minute: each packet refreshes the entry.
	for i := 1; i <= 12; i++ {
		media := layers.EthernetIPv4UDP(client, peer, 64, []byte("x"))
		if v := f.Classify(decode(t, media), t0.Add(time.Duration(i*5)*time.Second)); v != KeepP2P {
			t.Fatalf("packet %d verdict = %v, want KeepP2P", i, v)
		}
	}
}

func TestSTUNFromOffCampusNotRegistered(t *testing.T) {
	f := newTestFilter()
	offCampus := ap("198.51.100.9:40000")
	if v := f.Classify(decode(t, stunPacket(offCampus, ap("52.81.200.1:3478"))), t0); v != KeepSTUN {
		t.Fatalf("verdict = %v", v)
	}
	if f.P2PTableLen() != 0 {
		t.Errorf("off-campus endpoint registered; table len = %d", f.P2PTableLen())
	}
}

func TestNonSTUNPort3478PayloadNotRegistered(t *testing.T) {
	f := newTestFilter()
	// Port 3478 to a Zoom server but payload is not STUN: stays server
	// traffic, does not arm the table.
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52143"), ap("52.81.200.1:3478"), 64, []byte("not stun at all......"))
	if v := f.Classify(decode(t, raw), t0); v != KeepServer {
		t.Errorf("verdict = %v, want KeepServer", v)
	}
	if f.P2PTableLen() != 0 {
		t.Errorf("table len = %d, want 0", f.P2PTableLen())
	}
}

func TestValidateP2P(t *testing.T) {
	pkt := zoom.Packet{
		Media: zoom.MediaEncap{Type: zoom.TypeAudio, Sequence: 1, Timestamp: 2},
		RTP: rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTAudioSpeak, SSRC: 5},
			Payload: []byte("audio")},
	}
	wire, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !ValidateP2P(wire) {
		t.Error("ValidateP2P = false for genuine Zoom P2P payload")
	}
	if ValidateP2P([]byte("definitely not zoom media")) {
		t.Error("ValidateP2P = true for garbage")
	}
}

func TestAnonymizerDeterministicAndCampusOnly(t *testing.T) {
	an := NewAnonymizer([]byte("secret"), campusNets)
	campus := netip.MustParseAddr("10.8.1.2")
	server := netip.MustParseAddr("52.81.3.4")
	a1, a2 := an.Addr(campus), an.Addr(campus)
	if a1 != a2 {
		t.Error("anonymization not deterministic")
	}
	if a1 == campus {
		t.Error("campus address not anonymized")
	}
	if !a1.Is4() {
		t.Error("anonymized v4 address is not v4")
	}
	if got := an.Addr(server); got != server {
		t.Errorf("server address changed: %v", got)
	}
	// Different key → different mapping.
	an2 := NewAnonymizer([]byte("other"), campusNets)
	if an2.Addr(campus) == a1 {
		t.Error("different keys produced the same mapping")
	}
	// Distinct inputs stay distinct (collision would break flow analysis).
	other := netip.MustParseAddr("10.8.1.3")
	if an.Addr(other) == a1 {
		t.Error("two campus addresses collided")
	}
}

func TestAnonymizeInPlacePreservesParsability(t *testing.T) {
	an := NewAnonymizer([]byte("k"), campusNets)
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52000"), ap("52.81.3.4:8801"), 64, []byte("payload"))
	an.AnonymizeInPlace(raw)
	var p layers.Packet
	if err := (&layers.Parser{}).Parse(raw, &p); err != nil {
		t.Fatalf("anonymized frame failed to parse: %v", err)
	}
	if p.IPv4.Src == netip.MustParseAddr("10.8.1.2") {
		t.Error("source not anonymized")
	}
	if p.IPv4.Dst != netip.MustParseAddr("52.81.3.4") {
		t.Error("server address should be preserved")
	}
	if !layers.VerifyIPv4Checksum(raw[14:34]) {
		t.Error("IPv4 checksum invalid after anonymization")
	}
	if string(p.Payload) != "payload" {
		t.Errorf("payload = %q", p.Payload)
	}
}

func TestResourceModelTable5Shape(t *testing.T) {
	reports := DefaultPipelineModel().Resources(DefaultTofinoBudget())
	if len(reports) != 3 {
		t.Fatalf("components = %d, want 3", len(reports))
	}
	byName := map[string]UsageReport{}
	for _, r := range reports {
		byName[r.Component] = r
	}
	ip, p2p, anon := byName["Zoom IP Match"], byName["P2P Detection"], byName["Anonymization"]
	// Table 5 shapes: the IP match is tiny; P2P detection dominates SRAM
	// and hash units; anonymization uses the most stages and instructions.
	if ip.Stages != 2 || p2p.Stages != 7 || anon.Stages != 11 {
		t.Errorf("stages = %d/%d/%d, want 2/7/11", ip.Stages, p2p.Stages, anon.Stages)
	}
	if !(p2p.SRAMPct > ip.SRAMPct && p2p.SRAMPct > anon.SRAMPct) {
		t.Errorf("P2P should dominate SRAM: %v / %v / %v", ip.SRAMPct, p2p.SRAMPct, anon.SRAMPct)
	}
	if !(p2p.HashUnitsPct > anon.HashUnitsPct && anon.HashUnitsPct > ip.HashUnitsPct) {
		t.Errorf("hash unit ordering wrong: %v / %v / %v", ip.HashUnitsPct, p2p.HashUnitsPct, anon.HashUnitsPct)
	}
	if !(anon.InstrPct > p2p.InstrPct && p2p.InstrPct > ip.InstrPct) {
		t.Errorf("instruction ordering wrong: %v / %v / %v", ip.InstrPct, p2p.InstrPct, anon.InstrPct)
	}
	// "Lightweight": every metric under 20 % of the budget.
	for _, r := range reports {
		for name, v := range map[string]float64{"tcam": r.TCAMPct, "sram": r.SRAMPct, "instr": r.InstrPct, "hash": r.HashUnitsPct} {
			if v > 20 {
				t.Errorf("%s %s = %.1f%%, want < 20%%", r.Component, name, v)
			}
		}
	}
	if s := FormatTable(reports); len(s) == 0 {
		t.Error("FormatTable empty")
	}
}

func TestResourceModelWithoutAnonymization(t *testing.T) {
	m := DefaultPipelineModel()
	m.IncludeAnonymization = false
	if got := len(m.Resources(DefaultTofinoBudget())); got != 2 {
		t.Errorf("components = %d, want 2", got)
	}
}

func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }

func BenchmarkClassifyServer(b *testing.B) {
	f := newTestFilter()
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52000"), ap("52.81.3.4:8801"), 64, make([]byte, 1100))
	var p layers.Packet
	if err := (&layers.Parser{}).Parse(raw, &p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := f.Classify(&p, t0); v != KeepServer {
			b.Fatal(v)
		}
	}
}

func BenchmarkClassifyDrop(b *testing.B) {
	f := newTestFilter()
	raw := layers.EthernetIPv4UDP(ap("10.8.1.2:52000"), ap("93.184.1.1:443"), 64, make([]byte, 600))
	var p layers.Packet
	if err := (&layers.Parser{}).Parse(raw, &p); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := f.Classify(&p, t0); v != Drop {
			b.Fatal(v)
		}
	}
}

// TestP2PPortReuseFalsePositiveFiltered reproduces §4.1's false-positive
// scenario: after a meeting's STUN exchange, a different application
// reuses the same ephemeral port. Without format validation the flow is
// (wrongly) kept; with it, only genuine Zoom payloads pass.
func TestP2PPortReuseFalsePositiveFiltered(t *testing.T) {
	client := ap("10.8.1.2:52143")
	zc := ap("52.81.200.1:3478")
	otherPeer := ap("198.51.100.77:9999")

	zoomPayload := func() []byte {
		pkt := zoom.Packet{
			Media: zoom.MediaEncap{Type: zoom.TypeVideo, Sequence: 1, Timestamp: 2, PacketsInFrame: 1},
			RTP:   rtp.Packet{Header: rtp.Header{PayloadType: zoom.PTVideoMain, SSRC: 5}, Payload: []byte("x")},
		}
		w, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}()

	for _, validate := range []bool{false, true} {
		f := NewFilter(Config{
			ZoomNetworks: zoomNets, CampusNetworks: campusNets,
			ValidateP2PPayload: validate,
		})
		f.Classify(decode(t, stunPacket(client, zc)), t0)
		// Port reuse: a game/QUIC-ish payload from the armed endpoint.
		garbage := layers.EthernetIPv4UDP(client, otherPeer, 64, []byte("totally not zoom media traffic"))
		v := f.Classify(decode(t, garbage), t0.Add(time.Second))
		if validate && v != Drop {
			t.Errorf("validate=on: verdict = %v, want Drop", v)
		}
		if !validate && v != KeepP2P {
			t.Errorf("validate=off: verdict = %v, want KeepP2P (the paper's false positive)", v)
		}
		// A genuine Zoom P2P payload passes either way.
		genuine := layers.EthernetIPv4UDP(client, ap("203.0.113.5:44000"), 64, zoomPayload)
		if v := f.Classify(decode(t, genuine), t0.Add(2*time.Second)); v != KeepP2P {
			t.Errorf("validate=%v: genuine payload verdict = %v", validate, v)
		}
		if validate && f.Stats().P2PFormatRejected != 1 {
			t.Errorf("rejected = %d, want 1", f.Stats().P2PFormatRejected)
		}
	}
}
