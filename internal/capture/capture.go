// Package capture implements the Zoom traffic identification pipeline of
// the paper: the stateless match on Zoom's published server networks, the
// stateful STUN-based detection of peer-to-peer media flows (§4.1), and a
// software model of the P4/Tofino data-plane program of §6.1 (Figure 13)
// including its anonymization stage and an analytic resource-usage model
// that regenerates Table 5.
package capture

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/stun"
	"zoomlens/internal/webrtc"
	"zoomlens/internal/zoom"
)

// Verdict is the outcome of the filter for one packet.
type Verdict int

// Filter outcomes.
const (
	// Drop means the packet is not Zoom traffic.
	Drop Verdict = iota
	// KeepServer means the packet matched a Zoom server network.
	KeepServer
	// KeepSTUN means the packet is a STUN exchange with a Zoom server.
	KeepSTUN
	// KeepP2P means the packet matched the stateful P2P table.
	KeepP2P
)

func (v Verdict) String() string {
	switch v {
	case Drop:
		return "drop"
	case KeepServer:
		return "server"
	case KeepSTUN:
		return "stun"
	case KeepP2P:
		return "p2p"
	}
	return "unknown"
}

// Keep reports whether the packet should be captured.
func (v Verdict) Keep() bool { return v != Drop }

// Config parameterizes the filter.
type Config struct {
	// ZoomNetworks is the list of server prefixes published by Zoom.
	ZoomNetworks []netip.Prefix
	// CampusNetworks identifies on-campus clients; used to pick which
	// side of a STUN exchange to remember and which addresses to
	// anonymize.
	CampusNetworks []netip.Prefix
	// P2PTimeout bounds how long a STUN-registered (address, port) pair
	// remains a valid P2P match (§4.1: "within a configurable timeout").
	P2PTimeout time.Duration
	// MaxP2PEntries bounds the stateful tables, mirroring the fixed-size
	// register arrays of the Tofino program.
	MaxP2PEntries int
	// ValidateP2PPayload additionally checks that packets matched by the
	// stateful P2P table actually carry the Zoom media format, filtering
	// the port-reuse false positives §4.1 describes ("they can easily be
	// filtered out by inspecting the packet format"). The Tofino cannot
	// do this at line rate; the software pipeline can.
	ValidateP2PPayload bool
	// GenericRTC widens the filter beyond Zoom-specific heuristics: a
	// STUN exchange on the well-known port arms the endpoint table even
	// when neither side is in a Zoom server network (a standards RTC
	// service's media servers are not in Zoom's published prefixes, so
	// the STUN handshake is the only stateless hint that the endpoint
	// is about to carry media), and P2P payload validation accepts
	// standards RTP in addition to the Zoom media format. The analyzer
	// enables it when a non-Zoom protocol plugin is configured.
	GenericRTC bool
}

// DefaultP2PTimeout matches the tens-of-seconds window in which Zoom
// establishes the direct connection after the STUN exchange (§3).
const DefaultP2PTimeout = 60 * time.Second

// Filter classifies packets per Figure 13. It is not safe for concurrent
// use; the Tofino pipeline it models is inherently sequential per packet.
type Filter struct {
	cfg      Config
	zoomNets *prefixMatcher
	campus   *prefixMatcher
	p2p      map[netip.AddrPort]time.Time // campus-side STUN endpoints
	stats    FilterStats
}

// FilterStats counts filter decisions, mirroring the counters the authors
// added to their P4 program (Appendix A, Figure 17).
type FilterStats struct {
	Processed   uint64
	ZoomServer  uint64
	ZoomSTUN    uint64
	ZoomP2P     uint64
	Dropped     uint64
	P2PEvicted  uint64
	P2PInserted uint64
	// P2PFormatRejected counts table hits whose payload failed Zoom
	// format validation (port-reuse false positives).
	P2PFormatRejected uint64
}

// NewFilter builds a filter. Zero-valued timeout and table size take
// defaults.
func NewFilter(cfg Config) *Filter {
	if cfg.P2PTimeout == 0 {
		cfg.P2PTimeout = DefaultP2PTimeout
	}
	if cfg.MaxP2PEntries == 0 {
		cfg.MaxP2PEntries = 65536
	}
	return &Filter{
		cfg:      cfg,
		zoomNets: newPrefixMatcher(cfg.ZoomNetworks),
		campus:   newPrefixMatcher(cfg.CampusNetworks),
		p2p:      make(map[netip.AddrPort]time.Time),
	}
}

// Stats returns a copy of the decision counters.
func (f *Filter) Stats() FilterStats { return f.stats }

// Classify runs one decoded packet through the pipeline and returns the
// verdict. ts is the capture timestamp, used for P2P table aging.
func (f *Filter) Classify(pkt *layers.Packet, ts time.Time) Verdict {
	var srcPort, dstPort uint16
	var payload []byte
	if pkt.HasUDP {
		srcPort, dstPort, payload = pkt.UDP.SrcPort, pkt.UDP.DstPort, pkt.Payload
	}
	return f.ClassifyFlow(pkt.SrcAddr(), pkt.DstAddr(), pkt.HasUDP, srcPort, dstPort, payload, ts)
}

// ClassifyFlow runs the pipeline on pre-extracted flow features, exactly
// equivalent to Classify on a decoded packet with those features. It
// exists for dispatchers that route on raw header bytes and defer the
// full decode to a worker: the filter is the one stateful, cross-flow
// stage that must still see every packet in global capture order, and
// this entry point lets it do so without a full per-packet decode.
// srcPort, dstPort, and payload are only consulted when hasUDP is true
// (payload must then be the UDP payload, for STUN and Zoom format
// checks).
func (f *Filter) ClassifyFlow(src, dst netip.Addr, hasUDP bool, srcPort, dstPort uint16, payload []byte, ts time.Time) Verdict {
	f.stats.Processed++
	if !src.IsValid() || !dst.IsValid() {
		f.stats.Dropped++
		return Drop
	}

	// Stage 1: stateless match on Zoom server networks (TCP 443 control
	// traffic and UDP 8801 media both land here).
	if f.zoomNets.contains(src) || f.zoomNets.contains(dst) {
		// Stage 2: STUN exchanges with a Zoom server on port 3478 arm the
		// P2P tables with the campus endpoint (IP + ephemeral port).
		if hasUDP && (srcPort == stun.Port || dstPort == stun.Port) && stun.Is(payload) {
			f.registerSTUN(src, dst, srcPort, dstPort, ts)
			f.stats.ZoomSTUN++
			return KeepSTUN
		}
		f.stats.ZoomServer++
		return KeepServer
	}

	// Generic RTC mode: STUN exchanges with any server on the
	// well-known port arm the endpoint table (stage 2 without the
	// server-prefix precondition).
	if f.cfg.GenericRTC && hasUDP && (srcPort == stun.Port || dstPort == stun.Port) && stun.Is(payload) {
		f.registerSTUN(src, dst, srcPort, dstPort, ts)
		f.stats.ZoomSTUN++
		return KeepSTUN
	}

	// Stage 3: stateful P2P lookup — non-server UDP whose campus-side
	// endpoint was recently seen in a STUN exchange.
	if hasUDP {
		if f.lookupP2P(netip.AddrPortFrom(src, srcPort), ts) ||
			f.lookupP2P(netip.AddrPortFrom(dst, dstPort), ts) {
			if f.cfg.ValidateP2PPayload && !f.validP2PPayload(payload) {
				f.stats.P2PFormatRejected++
				f.stats.Dropped++
				return Drop
			}
			f.stats.ZoomP2P++
			return KeepP2P
		}
	}
	f.stats.Dropped++
	return Drop
}

// validP2PPayload applies format validation to a P2P table hit: the
// Zoom media grammar always counts; under GenericRTC a standards RTP
// header does too.
func (f *Filter) validP2PPayload(payload []byte) bool {
	if ValidateP2P(payload) {
		return true
	}
	return f.cfg.GenericRTC && webrtc.Probe(payload)
}

func (f *Filter) registerSTUN(src, dst netip.Addr, srcPort, dstPort uint16, ts time.Time) {
	// Remember the campus-side endpoint: the non-3478 side of the
	// exchange that is not the Zoom server.
	var ep netip.AddrPort
	switch {
	case dstPort == stun.Port:
		ep = netip.AddrPortFrom(src, srcPort)
	case srcPort == stun.Port:
		ep = netip.AddrPortFrom(dst, dstPort)
	default:
		return
	}
	if f.campus.any() && !f.campus.contains(ep.Addr()) {
		// With campus knowledge, only campus endpoints are registered
		// (the P4 program writes "the campus peer's address").
		return
	}
	if _, exists := f.p2p[ep]; !exists {
		if len(f.p2p) >= f.cfg.MaxP2PEntries {
			f.evictExpired(ts)
			if len(f.p2p) >= f.cfg.MaxP2PEntries {
				return // table full, like a hash-table insertion failure on the switch
			}
		}
		f.stats.P2PInserted++
	}
	f.p2p[ep] = ts
}

func (f *Filter) lookupP2P(ep netip.AddrPort, ts time.Time) bool {
	seen, ok := f.p2p[ep]
	if !ok {
		return false
	}
	if ts.Sub(seen) > f.cfg.P2PTimeout {
		delete(f.p2p, ep)
		f.stats.P2PEvicted++
		return false
	}
	// Refresh: active media keeps the entry alive.
	f.p2p[ep] = ts
	return true
}

func (f *Filter) evictExpired(ts time.Time) {
	for ep, seen := range f.p2p {
		if ts.Sub(seen) > f.cfg.P2PTimeout {
			delete(f.p2p, ep)
			f.stats.P2PEvicted++
		}
	}
}

// P2PTableLen reports the current number of armed P2P endpoints.
func (f *Filter) P2PTableLen() int { return len(f.p2p) }

// ValidateP2P confirms a suspected P2P packet actually carries the Zoom
// media format (§4.1: false positives from port reuse "can easily be
// filtered out by inspecting the packet format").
func ValidateP2P(payload []byte) bool {
	_, err := zoom.ParsePacket(payload, zoom.ModeP2P)
	return err == nil
}

// prefixMatcher is a longest-prefix-match set. The Tofino implements this
// in TCAM; a sorted slice scan is plenty here (Zoom publishes ~117
// prefixes).
type prefixMatcher struct {
	prefixes []netip.Prefix
}

func newPrefixMatcher(ps []netip.Prefix) *prefixMatcher {
	m := &prefixMatcher{prefixes: make([]netip.Prefix, len(ps))}
	copy(m.prefixes, ps)
	return m
}

func (m *prefixMatcher) any() bool { return len(m.prefixes) > 0 }

func (m *prefixMatcher) contains(a netip.Addr) bool {
	for _, p := range m.prefixes {
		if p.Contains(a) {
			return true
		}
	}
	return false
}

// Anonymizer replaces campus addresses with a one-way mapping, modeling
// the ONTAS-based anonymization stage of the capture program (§6.1).
// Two modes are available: keyed-hash (default — stable pseudorandom
// addresses, maximal hiding) and prefix-preserving (Crypto-PAn — subnet
// structure survives so operators can still aggregate by building).
// Non-campus (Zoom server) addresses pass through in both modes so
// server-side analysis still works.
type Anonymizer struct {
	key    []byte
	campus *prefixMatcher
	cache  map[netip.Addr]netip.Addr
	prefix *PrefixPreservingAnonymizer
}

// NewAnonymizer builds a keyed-hash anonymizer with a secret key and
// the campus networks whose addresses must be hidden.
func NewAnonymizer(key []byte, campus []netip.Prefix) *Anonymizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &Anonymizer{key: k, campus: newPrefixMatcher(campus), cache: make(map[netip.Addr]netip.Addr)}
}

// NewPrefixAnonymizer builds a prefix-preserving (Crypto-PAn style)
// anonymizer for campus addresses.
func NewPrefixAnonymizer(key []byte, campus []netip.Prefix) *Anonymizer {
	return &Anonymizer{
		campus: newPrefixMatcher(campus),
		prefix: NewPrefixPreservingAnonymizer(key),
	}
}

// Addr returns the anonymized form of a: campus addresses map one-way
// per the anonymizer's mode; other addresses are returned unchanged.
func (an *Anonymizer) Addr(a netip.Addr) netip.Addr {
	if !an.campus.contains(a) {
		return a
	}
	if an.prefix != nil {
		return an.prefix.Addr(a)
	}
	if out, ok := an.cache[a]; ok {
		return out
	}
	mac := hmac.New(sha256.New, an.key)
	b := a.As16()
	mac.Write(b[:])
	sum := mac.Sum(nil)
	var out netip.Addr
	if a.Is4() {
		var v [4]byte
		v[0] = 10
		copy(v[1:], sum[:3])
		out = netip.AddrFrom4(v)
	} else {
		var v [16]byte
		v[0] = 0xfd
		copy(v[1:], sum[:15])
		out = netip.AddrFrom16(v)
	}
	an.cache[a] = out
	return out
}

// AnonymizeInPlace rewrites the IPv4 source and destination addresses of
// a raw Ethernet frame in place and fixes the header checksum. Frames
// without IPv4 pass through unchanged. Transport checksums are zeroed
// (the capture system does not re-derive them; analysis never verifies
// them on anonymized traces).
func (an *Anonymizer) AnonymizeInPlace(frame []byte) {
	const ethLen = 14
	if len(frame) < ethLen+20 || binary.BigEndian.Uint16(frame[12:14]) != 0x0800 {
		return
	}
	ip := frame[ethLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ihl < 20 || len(ip) < ihl {
		return
	}
	src := netip.AddrFrom4([4]byte(ip[12:16]))
	dst := netip.AddrFrom4([4]byte(ip[16:20]))
	s4, d4 := an.Addr(src).As4(), an.Addr(dst).As4()
	copy(ip[12:16], s4[:])
	copy(ip[16:20], d4[:])
	// Recompute the IPv4 header checksum.
	ip[10], ip[11] = 0, 0
	var sum uint32
	for i := 0; i < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	binary.BigEndian.PutUint16(ip[10:12], ^uint16(sum))
	// Zero the transport checksum.
	switch ip[9] {
	case 17:
		if len(ip) >= ihl+8 {
			ip[ihl+6], ip[ihl+7] = 0, 0
		}
	case 6:
		if len(ip) >= ihl+18 {
			ip[ihl+16], ip[ihl+17] = 0, 0
		}
	}
}
