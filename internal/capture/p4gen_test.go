package capture

import (
	"net/netip"
	"strings"
	"testing"
)

func TestGenerateP4Structure(t *testing.T) {
	nets := []netip.Prefix{
		netip.MustParsePrefix("52.81.0.0/16"),
		netip.MustParsePrefix("149.137.0.0/17"),
	}
	src := GenerateP4(nets, 1<<16)

	for _, want := range []string{
		"#include <v1model.p4>",
		"PORT_STUN   = 3478",
		"P2P_SLOTS   = 65536",
		"table zoom_src_net",
		"table zoom_dst_net",
		"register<bit<48>>(P2P_SLOTS) p2p_sources",
		"mark_to_drop",
		"V1Switch(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("generated P4 missing %q", want)
		}
	}
	// Each prefix appears in both tables.
	if got := strings.Count(src, "0x34510000 &&& 0xffff0000"); got != 2 {
		t.Errorf("52.81.0.0/16 entry count = %d, want 2", got)
	}
	if got := strings.Count(src, "0x95890000 &&& 0xffff8000"); got != 2 {
		t.Errorf("149.137.0.0/17 entry count = %d, want 2", got)
	}
	// Balanced braces (a cheap syntactic sanity check).
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Error("unbalanced braces in generated P4")
	}
}

func TestGenerateP4DefaultSlots(t *testing.T) {
	src := GenerateP4(nil, 0)
	if !strings.Contains(src, "P2P_SLOTS   = 65536") {
		t.Error("default slot count not applied")
	}
}

func TestMaskFor(t *testing.T) {
	cases := map[int]uint32{0: 0, 8: 0xff000000, 16: 0xffff0000, 24: 0xffffff00, 32: 0xffffffff, 40: 0xffffffff}
	for bits, want := range cases {
		if got := maskFor(bits); got != want {
			t.Errorf("maskFor(%d) = %#08x, want %#08x", bits, got, want)
		}
	}
}
