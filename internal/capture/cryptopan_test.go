package capture

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestPrefixPreservation(t *testing.T) {
	an := NewPrefixPreservingAnonymizer([]byte("secret"))
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		// Two addresses sharing a random-length prefix.
		k := rng.Intn(33)
		base := rng.Uint32()
		var mask uint32
		if k > 0 {
			mask = ^uint32(0) << (32 - k)
		}
		x := base
		y := (base & mask) | (rng.Uint32() &^ mask)
		// Force a differing bit right after the shared prefix when k<32.
		if k < 32 {
			y = (y &^ (1 << (31 - k))) | ((^x) & (1 << (31 - k)))
		}
		ax := an.Addr(u32addr(x))
		ay := an.Addr(u32addr(y))
		wantShared := CommonPrefixLen(u32addr(x), u32addr(y))
		got := CommonPrefixLen(ax, ay)
		if got != wantShared {
			t.Fatalf("trial %d: original share %d bits, anonymized share %d", trial, wantShared, got)
		}
	}
}

func TestPrefixPreservingDeterministicPerKey(t *testing.T) {
	a1 := NewPrefixPreservingAnonymizer([]byte("k1"))
	a2 := NewPrefixPreservingAnonymizer([]byte("k1"))
	a3 := NewPrefixPreservingAnonymizer([]byte("k2"))
	addr := netip.MustParseAddr("10.8.1.2")
	if a1.Addr(addr) != a2.Addr(addr) {
		t.Error("same key, different mapping")
	}
	if a1.Addr(addr) == a3.Addr(addr) {
		t.Error("different keys, same mapping (collision is ~2^-32)")
	}
	if a1.Addr(addr) == addr {
		t.Error("address mapped to itself (possible but ~2^-32; likely a no-op bug)")
	}
}

func TestPrefixPreservingInjective(t *testing.T) {
	// The bitwise construction is a permutation: distinct inputs map to
	// distinct outputs.
	an := NewPrefixPreservingAnonymizer([]byte("inj"))
	seen := map[netip.Addr]netip.Addr{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		in := u32addr(rng.Uint32())
		out := an.Addr(in)
		if prev, ok := seen[out]; ok && prev != in {
			t.Fatalf("collision: %v and %v both map to %v", prev, in, out)
		}
		seen[out] = in
	}
}

func TestPrefixPreservingIPv6PassThrough(t *testing.T) {
	an := NewPrefixPreservingAnonymizer([]byte("x"))
	v6 := netip.MustParseAddr("2001:db8::1")
	if an.Addr(v6) != v6 {
		t.Error("IPv6 should pass through")
	}
}

func TestQuickPrefixPropertyAdjacent(t *testing.T) {
	an := NewPrefixPreservingAnonymizer([]byte("q"))
	f := func(v uint32, bit uint8) bool {
		b := bit % 32
		x := v
		y := v ^ (1 << (31 - b)) // differ exactly at position b
		return CommonPrefixLen(an.Addr(u32addr(x)), an.Addr(u32addr(y))) == int(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func u32addr(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func BenchmarkPrefixPreservingAddr(b *testing.B) {
	an := NewPrefixPreservingAnonymizer([]byte("bench"))
	rng := rand.New(rand.NewSource(1))
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = u32addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = an.Addr(addrs[i&1023])
	}
}

func TestAnonymizerPrefixMode(t *testing.T) {
	an := NewPrefixAnonymizer([]byte("k"), campusNets)
	a := netip.MustParseAddr("10.8.1.2")
	b := netip.MustParseAddr("10.8.1.99") // same /24
	c := netip.MustParseAddr("10.8.77.1") // same /16 only
	aa, ab, ac := an.Addr(a), an.Addr(b), an.Addr(c)
	if aa == a {
		t.Error("campus address unchanged")
	}
	if CommonPrefixLen(aa, ab) < 24 {
		t.Errorf("same /24 inputs diverge at bit %d", CommonPrefixLen(aa, ab))
	}
	if CommonPrefixLen(aa, ac) < 16 || CommonPrefixLen(aa, ac) >= 24 {
		t.Errorf("same /16 inputs share %d bits", CommonPrefixLen(aa, ac))
	}
	// Server addresses untouched.
	srv := netip.MustParseAddr("52.81.3.4")
	if an.Addr(srv) != srv {
		t.Error("server address changed in prefix mode")
	}
}
