package capture

import "fmt"

// This file models the hardware cost of the Tofino capture program well
// enough to regenerate Table 5 of the paper: resource usage percentages
// by functional component (Zoom IP match, P2P detection, anonymization).
//
// The model assigns each pipeline primitive a cost in the switch's
// resource units and sums per component, then normalizes by the Tofino's
// per-pipeline budget. Constants for the budget follow the publicly
// known Tofino 1 architecture (12 stages per pipe; TCAM/SRAM blocks,
// VLIW instruction slots and hash distribution units per stage).

// TofinoBudget is the per-pipeline resource budget used for
// normalization.
type TofinoBudget struct {
	Stages       int
	TCAMBlocks   int // 44 bits × 512 entries each
	SRAMBlocks   int // 128 KB each
	Instructions int // VLIW instruction slots
	HashUnits    int
}

// DefaultTofinoBudget approximates a Tofino 1 pipeline.
func DefaultTofinoBudget() TofinoBudget {
	return TofinoBudget{
		Stages:       12,
		TCAMBlocks:   12 * 24,
		SRAMBlocks:   12 * 80,
		Instructions: 12 * 32,
		HashUnits:    12 * 6,
	}
}

// ComponentUsage is the absolute resource consumption of one functional
// component of the P4 program.
type ComponentUsage struct {
	Name         string
	Stages       int
	TCAMBlocks   float64
	SRAMBlocks   float64
	Instructions float64
	HashUnits    float64
}

// UsageReport is the Table 5 equivalent: per-component usage as a
// fraction of the pipeline budget.
type UsageReport struct {
	Component    string
	Stages       int
	TCAMPct      float64
	SRAMPct      float64
	InstrPct     float64
	HashUnitsPct float64
}

// PipelineModel describes the deployed capture program in terms the
// resource model understands.
type PipelineModel struct {
	// ZoomPrefixes is the number of server prefixes installed in the
	// longest-prefix-match table.
	ZoomPrefixes int
	// CampusPrefixes is the number of campus networks matched.
	CampusPrefixes int
	// P2PTableEntries is the size of each stateful register array for
	// P2P sources and destinations.
	P2PTableEntries int
	// AnonTableEntries is the size of the anonymization mapping tables.
	AnonTableEntries int
	// IncludeAnonymization toggles the optional anonymization stage.
	IncludeAnonymization bool
}

// DefaultPipelineModel mirrors the paper's deployment: the full published
// Zoom prefix list, 64k-entry P2P registers, and ONTAS anonymization.
func DefaultPipelineModel() PipelineModel {
	return PipelineModel{
		ZoomPrefixes:         117,
		CampusPrefixes:       64,
		P2PTableEntries:      1 << 18,
		AnonTableEntries:     1 << 16,
		IncludeAnonymization: true,
	}
}

// Resources computes per-component usage for the model under a budget.
func (m PipelineModel) Resources(b TofinoBudget) []UsageReport {
	comps := m.componentUsage()
	out := make([]UsageReport, 0, len(comps))
	for _, c := range comps {
		out = append(out, UsageReport{
			Component:    c.Name,
			Stages:       c.Stages,
			TCAMPct:      pct(c.TCAMBlocks, b.TCAMBlocks),
			SRAMPct:      pct(c.SRAMBlocks, b.SRAMBlocks),
			InstrPct:     pct(c.Instructions, b.Instructions),
			HashUnitsPct: pct(c.HashUnits, b.HashUnits),
		})
	}
	return out
}

func pct(used float64, budget int) float64 {
	if budget == 0 {
		return 0
	}
	return 100 * used / float64(budget)
}

func (m PipelineModel) componentUsage() []ComponentUsage {
	// Cost accounting, in budget units:
	//  - Exact/LPM matching on IP pairs costs TCAM blocks proportional to
	//    prefix count (each block holds 512 44-bit entries; an IPv4 LPM
	//    key consumes one entry per prefix, matched against src and dst).
	//  - Stateful register arrays cost SRAM blocks: entries × width /
	//    128 KB per block.
	//  - Every table apply and register action costs VLIW instructions.
	//  - Register index computation costs hash units (CRC over IP+port).
	ipMatch := ComponentUsage{
		Name:   "Zoom IP Match",
		Stages: 2, // src match, dst match
		// Two TCAM tables (src, dst); round up to whole blocks.
		TCAMBlocks:   2 * blocks(m.ZoomPrefixes, 512),
		SRAMBlocks:   1, // action data + counters
		Instructions: 5,
		HashUnits:    0,
	}
	// P2P detection: STUN port match, two register arrays (sources,
	// destinations) keyed by hash(IP, port). Each entry stores the full
	// (IP, port) pair for verification, a timeout timestamp, and 4-way
	// bucket overhead to keep the collision rate low at line rate —
	// 26 bytes per logical entry, calibrated against the deployed
	// program's reported SRAM footprint (Table 5).
	regBytes := float64(m.P2PTableEntries) * 26
	p2p := ComponentUsage{
		Name:         "P2P Detection",
		Stages:       7,                                 // hash, 2×read, compare, 2×write, verdict
		TCAMBlocks:   blocks(m.CampusPrefixes, 512) + 2, // campus match + port ternary
		SRAMBlocks:   2 * regBytes / (128 * 1024),
		Instructions: 13,
		HashUnits:    12, // CRC units for (IP, port) indexes, both directions and both tables
	}
	out := []ComponentUsage{ipMatch, p2p}
	if m.IncludeAnonymization {
		anonBytes := float64(m.AnonTableEntries) * 8 // original → anonymized IPv4 pair
		out = append(out, ComponentUsage{
			Name:         "Anonymization",
			Stages:       11, // the ONTAS pass dominates the pipeline depth
			TCAMBlocks:   blocks(m.CampusPrefixes, 512) + 3,
			SRAMBlocks:   anonBytes/(128*1024) + 6, // mapping tables + checksum adjust tables
			Instructions: 20,
			HashUnits:    6,
		})
	}
	return out
}

func blocks(entries, perBlock int) float64 {
	if entries == 0 {
		return 0
	}
	n := (entries + perBlock - 1) / perBlock
	return float64(n)
}

// FormatTable renders the reports in the layout of Table 5.
func FormatTable(reports []UsageReport) string {
	s := fmt.Sprintf("%-14s", "Resource Type")
	for _, r := range reports {
		s += fmt.Sprintf("%18s", r.Component)
	}
	s += "\n" + fmt.Sprintf("%-14s", "Stages")
	for _, r := range reports {
		s += fmt.Sprintf("%18d", r.Stages)
	}
	rows := []struct {
		name string
		get  func(UsageReport) float64
	}{
		{"TCAM", func(r UsageReport) float64 { return r.TCAMPct }},
		{"SRAM", func(r UsageReport) float64 { return r.SRAMPct }},
		{"Instructions", func(r UsageReport) float64 { return r.InstrPct }},
		{"Hash Units", func(r UsageReport) float64 { return r.HashUnitsPct }},
	}
	for _, row := range rows {
		s += "\n" + fmt.Sprintf("%-14s", row.name)
		for _, r := range reports {
			s += fmt.Sprintf("%17.1f%%", row.get(r))
		}
	}
	return s + "\n"
}
