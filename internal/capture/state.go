package capture

import (
	"net/netip"
	"slices"
	"time"

	"zoomlens/internal/statecodec"
)

// Checkpoint boundary for the capture filter. The STUN-armed P2P table
// is live classification state: a restored run must keep recognizing
// P2P media flows whose arming STUN exchange happened before the
// checkpoint, or its reports diverge from an uninterrupted run. The
// prefix matchers and config are rebuilt by NewFilter, not serialized.

const filterStateV1 = 1

// State encodes the filter's mutable state for a checkpoint.
func (f *Filter) State(w *statecodec.Writer) {
	w.U8(filterStateV1)
	w.U64(f.stats.Processed)
	w.U64(f.stats.ZoomServer)
	w.U64(f.stats.ZoomSTUN)
	w.U64(f.stats.ZoomP2P)
	w.U64(f.stats.Dropped)
	w.U64(f.stats.P2PEvicted)
	w.U64(f.stats.P2PInserted)
	w.U64(f.stats.P2PFormatRejected)

	eps := make([]netip.AddrPort, 0, len(f.p2p))
	for ep := range f.p2p {
		eps = append(eps, ep)
	}
	slices.SortFunc(eps, func(a, b netip.AddrPort) int {
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c
		}
		return int(a.Port()) - int(b.Port())
	})
	w.Int(len(eps))
	for _, ep := range eps {
		w.AddrPort(ep)
		w.Time(f.p2p[ep])
	}
}

// Restore rebuilds the filter's mutable state from a checkpoint,
// keeping the configuration the filter was constructed with.
func (f *Filter) Restore(r *statecodec.Reader) error {
	r.Version("capture.Filter", filterStateV1)
	f.stats.Processed = r.U64()
	f.stats.ZoomServer = r.U64()
	f.stats.ZoomSTUN = r.U64()
	f.stats.ZoomP2P = r.U64()
	f.stats.Dropped = r.U64()
	f.stats.P2PEvicted = r.U64()
	f.stats.P2PInserted = r.U64()
	f.stats.P2PFormatRejected = r.U64()

	n := r.Count(4)
	f.p2p = make(map[netip.AddrPort]time.Time, n)
	for i := 0; i < n; i++ {
		ep := r.AddrPort()
		f.p2p[ep] = r.Time()
	}
	return r.Err()
}
