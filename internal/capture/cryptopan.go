package capture

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"net/netip"
	"sync"
)

// PrefixPreservingAnonymizer implements Crypto-PAn style one-way IPv4
// address anonymization: two addresses sharing a k-bit prefix map to
// anonymized addresses sharing a k-bit prefix. This is the property the
// ONTAS system used in the paper's capture pipeline relies on — campus
// operators can still aggregate anonymized traffic by subnet or
// building without being able to invert the mapping.
//
// The construction is the standard one (Xu et al., 2002): for each bit
// position i, the anonymized bit is the original bit XOR the most
// significant bit of a keyed PRF applied to the i-bit prefix. AES-128
// is the PRF; the key is derived from the caller's secret.
type PrefixPreservingAnonymizer struct {
	block cipher.Block
	pad   [16]byte

	mu    sync.Mutex
	cache map[[4]byte][4]byte
}

// NewPrefixPreservingAnonymizer derives the AES key and padding block
// from an arbitrary-length secret.
func NewPrefixPreservingAnonymizer(secret []byte) *PrefixPreservingAnonymizer {
	sum := sha256.Sum256(secret)
	block, err := aes.NewCipher(sum[:16])
	if err != nil {
		panic("capture: aes key: " + err.Error())
	}
	a := &PrefixPreservingAnonymizer{block: block, cache: make(map[[4]byte][4]byte)}
	// The pad randomizes the PRF input for short prefixes.
	a.block.Encrypt(a.pad[:], sum[16:32])
	return a
}

// Addr anonymizes an IPv4 address prefix-preservingly. Non-IPv4
// addresses are returned unchanged.
func (a *PrefixPreservingAnonymizer) Addr(addr netip.Addr) netip.Addr {
	if !addr.Is4() {
		return addr
	}
	in := addr.As4()
	a.mu.Lock()
	if out, ok := a.cache[in]; ok {
		a.mu.Unlock()
		return netip.AddrFrom4(out)
	}
	a.mu.Unlock()

	orig := binary.BigEndian.Uint32(in[:])
	var result uint32
	var input, output [16]byte
	for i := 0; i < 32; i++ {
		// PRF input: the i-bit prefix of the original address, padded
		// with the keyed pad so different prefix lengths decorrelate.
		var prefix uint32
		if i > 0 {
			prefix = orig &^ (1<<(32-i) - 1) // keep top i bits
		}
		copy(input[:], a.pad[:])
		binary.BigEndian.PutUint32(input[0:4], prefix|(binary.BigEndian.Uint32(a.pad[0:4])&(1<<(32-i)-1)))
		input[4] ^= byte(i) // bind the position
		a.block.Encrypt(output[:], input[:])
		flip := uint32(output[0]>>7) & 1
		bit := (orig >> (31 - i)) & 1
		result |= (bit ^ flip) << (31 - i)
	}
	var out [4]byte
	binary.BigEndian.PutUint32(out[:], result)
	a.mu.Lock()
	if len(a.cache) < 1<<20 {
		a.cache[in] = out
	}
	a.mu.Unlock()
	return netip.AddrFrom4(out)
}

// CommonPrefixLen returns the length of the longest common bit prefix of
// two IPv4 addresses (a test/verification helper for the
// prefix-preservation property).
func CommonPrefixLen(x, y netip.Addr) int {
	a, b := x.As4(), y.As4()
	av := binary.BigEndian.Uint32(a[:])
	bv := binary.BigEndian.Uint32(b[:])
	d := av ^ bv
	if d == 0 {
		return 32
	}
	n := 0
	for d&0x80000000 == 0 {
		n++
		d <<= 1
	}
	return n
}
