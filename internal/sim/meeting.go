package sim

import (
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/stun"
)

// meetingMode is the current media topology.
type meetingMode int

const (
	modeSFU meetingMode = iota
	modeP2P
)

// App selects which conferencing application a meeting models.
type App int

// Applications.
const (
	// AppZoom is the paper's subject: proprietary SFU + media
	// encapsulations, Zoom-net servers, zone-controller STUN for P2P.
	AppZoom App = iota
	// AppWebRTC is a standards-based RTC application (Meet/Webex-shaped):
	// plain RTP/SRTP over one bundled UDP flow to a media server outside
	// Zoom's prefixes, found by the capture filter only through its
	// ICE-style STUN exchange.
	AppWebRTC
)

// Meeting orchestrates participants, the SFU↔P2P transitions of §3, and
// the STUN establishment of §4.1.
type Meeting struct {
	w        *World
	id       int
	ssrcBase uint32
	app      App

	participants []*Client
	mode         meetingMode
	// p2pEnabled permits direct connections for two-party meetings.
	p2pEnabled bool
	// reverted records that the meeting fell back to the SFU after a
	// third participant joined: it then never returns to P2P (§3).
	reverted bool
	// P2PSwitchDelay is how long after the second join the direct
	// connection activates ("within tens of seconds").
	P2PSwitchDelay time.Duration
}

// ID returns the meeting's simulator-internal identifier (not present in
// any packet, per §4.3).
func (m *Meeting) ID() int { return m.id }

// App returns the application this meeting models.
func (m *Meeting) App() App { return m.app }

// serverAddr is the address of the application's server side: the Zoom
// multimedia router or the standards-RTC media server.
func (m *Meeting) serverAddr() netip.Addr {
	if m.app == AppWebRTC {
		return m.w.Opts.WebRTCAddr
	}
	return m.w.Opts.SFUAddr
}

// EnableP2P allows this meeting to use a direct connection while it has
// exactly two participants.
func (m *Meeting) EnableP2P(switchDelay time.Duration) {
	m.p2pEnabled = true
	if switchDelay <= 0 {
		switchDelay = 12 * time.Second
	}
	m.P2PSwitchDelay = switchDelay
}

// Join adds a client to the meeting at the current virtual time.
func (m *Meeting) Join(c *Client, set MediaSet) {
	c.meeting = m
	c.set = set
	c.active = true
	c.mediaPort = m.w.ephemeralPort()
	m.participants = append(m.participants, c)
	c.recv = newReceiver(c)
	c.startTCPControl()
	if m.app == AppWebRTC {
		// ICE before media: the connectivity check (STUN from the media
		// port to the server's well-known STUN port) completes before the
		// first RTP packet, exactly the ordering the GenericRTC capture
		// filter depends on to arm the endpoint.
		c.sendICESTUN()
		m.w.Eng.After(webrtcICEDelay, func() {
			if c.active {
				c.startSenders()
			}
		})
	} else {
		c.startSenders()
	}
	m.updateThumbnails()

	if m.app == AppWebRTC {
		// Standards-RTC meetings always relay through the media server in
		// this model; the Zoom-specific P2P transitions do not apply.
		if len(m.participants) >= 3 {
			m.reverted = true
		}
		return
	}
	switch {
	case len(m.participants) == 2 && m.p2pEnabled && !m.reverted:
		// Second participant: begin the STUN exchange now, switch later.
		m.prepareP2P()
	case len(m.participants) >= 3 && m.mode == modeP2P:
		// Third participant: revert to the SFU immediately and stay.
		m.switchToSFU()
		m.reverted = true
	case len(m.participants) >= 3:
		m.reverted = true
	}
}

// Leave removes a client. Streams stop; remaining participants continue.
func (m *Meeting) Leave(c *Client) {
	c.active = false
	for _, s := range c.senders {
		s.stopped = true
	}
	if c.tcp != nil {
		c.tcp.stop()
	}
	for i, p := range m.participants {
		if p == c {
			m.participants = append(m.participants[:i], m.participants[i+1:]...)
			break
		}
	}
	if m.mode == modeP2P && len(m.participants) < 2 {
		m.switchToSFU()
	}
	m.updateThumbnails()
}

// Participants returns the current participant count.
func (m *Meeting) Participants() int { return len(m.participants) }

// updateThumbnails applies the §5.1 user-interface effect: while someone
// shares a screen, other participants' video is displayed as thumbnails
// and Zoom halves its frame rate — a rate change with no network cause.
func (m *Meeting) updateThumbnails() {
	sharing := false
	for _, p := range m.participants {
		if p.active && p.set.Screen {
			sharing = true
			break
		}
	}
	for _, p := range m.participants {
		if !p.active {
			continue
		}
		for _, s := range p.senders {
			if s.video != nil {
				s.thumbnail = sharing && !p.set.Screen
				s.video.SetReduced(s.thumbnail || s.congested)
			}
		}
	}
}

// IsP2P reports the current mode.
func (m *Meeting) IsP2P() bool { return m.mode == modeP2P }

// audioForwarded reports whether the SFU relays this sender's audio:
// only the first maxAudioForward unmuted participants' audio is
// replicated, modeling Zoom's active-speaker audio selection.
const maxAudioForward = 3

func (m *Meeting) audioForwarded(from *Client) bool {
	n := 0
	for _, p := range m.participants {
		if !p.set.Audio || !p.active {
			continue
		}
		if p == from {
			return n < maxAudioForward
		}
		n++
	}
	return false
}

func (m *Meeting) otherParticipant(c *Client) *Client {
	for _, p := range m.participants {
		if p != c {
			return p
		}
	}
	return nil
}

// prepareP2P performs the Figure 2 sequence: each client exchanges STUN
// binding requests with the zone controller from the ephemeral port it
// will later use for the P2P flow, then the meeting switches.
func (m *Meeting) prepareP2P() {
	for _, c := range m.participants {
		c.p2pPort = m.w.ephemeralPort()
		c.sendSTUN()
	}
	m.w.Eng.After(m.P2PSwitchDelay, func() {
		if len(m.participants) == 2 && !m.reverted {
			m.switchToP2P()
		}
	})
}

// sendSTUN emits the binding request/response pair with the zone
// controller on UDP 3478 (cleartext, crossing the monitor for campus
// clients).
func (c *Client) sendSTUN() {
	w := c.w
	zc := netip.AddrPortFrom(w.Opts.ZCAddr, stun.Port)
	src := netip.AddrPortFrom(c.Addr, c.p2pPort)
	// Several binding requests, as observed ("a series of STUN binding
	// requests").
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * 200 * time.Millisecond
		w.Eng.After(delay, func() {
			tid := stun.NewTransactionID()
			req := stun.NewBindingRequest(tid)
			frame := c.builder.BuildUDP(src, zc, 64, req.Marshal())
			p := w.pathToSFU(c)
			p.deliver(frame, func(at time.Time) {
				// Zone controller answers with the reflexive address.
				resp := stun.NewBindingResponse(tid, src)
				respFrame := w.sfu.builder.BuildUDP(zc, src, 57, resp.Marshal())
				rp := w.pathFromSFU(c)
				rp.deliver(respFrame, nil, nil)
			}, nil)
		})
	}
}

// webrtcICEDelay is how long after the ICE STUN exchange begins that a
// webrtc-app client starts sending media (connectivity checks complete
// first; "tens to hundreds of milliseconds" in practice).
const webrtcICEDelay = 500 * time.Millisecond

// sendICESTUN performs the ICE-style connectivity check of a
// standards-RTC client: STUN binding requests from the media port to
// the media server's well-known STUN port, answered with the reflexive
// address. Crossing the monitor, this exchange is what arms the capture
// filter's endpoint table (GenericRTC mode) — the server's address
// carries no Zoom-prefix hint.
func (c *Client) sendICESTUN() {
	w := c.w
	srv := netip.AddrPortFrom(w.Opts.WebRTCAddr, stun.Port)
	src := netip.AddrPortFrom(c.Addr, c.mediaPort)
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * 150 * time.Millisecond
		w.Eng.After(delay, func() {
			tid := stun.NewTransactionID()
			req := stun.NewBindingRequest(tid)
			frame := c.builder.BuildUDP(src, srv, 64, req.Marshal())
			p := w.pathToSFU(c)
			p.deliver(frame, func(at time.Time) {
				resp := stun.NewBindingResponse(tid, src)
				respFrame := w.sfu.builder.BuildUDP(srv, src, 57, resp.Marshal())
				rp := w.pathFromSFU(c)
				rp.deliver(respFrame, nil, nil)
			}, nil)
		})
	}
}

// switchToP2P moves the meeting to the direct connection: both clients
// start new flows from their STUN-announced ports; all media types share
// one UDP flow (§3).
func (m *Meeting) switchToP2P() {
	m.mode = modeP2P
	for _, c := range m.participants {
		c.mediaPort = c.p2pPort
	}
}

// switchToSFU (re)establishes server relaying with fresh ephemeral
// ports.
func (m *Meeting) switchToSFU() {
	m.mode = modeSFU
	for _, c := range m.participants {
		c.mediaPort = m.w.ephemeralPort()
		c.mediaPorts = nil // fresh flows per media type
	}
}

// controlConn is the TLS-like TCP control connection every client keeps
// to a Zoom server on port 443 (§3), exercised by the paper's TCP-RTT
// method (§5.3 method 2). The simulator models periodic request/response
// exchanges with correct sequence/acknowledgment numbers; payloads are
// opaque.
type controlConn struct {
	c        *Client
	srcPort  uint16
	seq      uint32 // client's next seq
	ack      uint32 // server's next seq (what the client acks)
	stopped  bool
	interval time.Duration
}

func (c *Client) startTCPControl() {
	cc := &controlConn{
		c:        c,
		srcPort:  c.w.ephemeralPort(),
		seq:      uint32(c.rng.Int31()),
		ack:      uint32(c.rng.Int31()),
		interval: time.Second,
	}
	c.tcp = cc
	c.w.Eng.After(jitterStart(c.rng, cc.interval), cc.tick)
}

func (cc *controlConn) stop() { cc.stopped = true }

func (cc *controlConn) tick() {
	c := cc.c
	if cc.stopped || !c.active {
		return
	}
	w := c.w
	server := netip.AddrPortFrom(w.Opts.SFUAddr, 443)
	if c.meeting != nil {
		// The control connection goes to the meeting's application: a
		// webrtc-app client talks TLS to its own service, not to Zoom.
		server = netip.AddrPortFrom(c.meeting.serverAddr(), 443)
	}
	client := netip.AddrPortFrom(c.Addr, cc.srcPort)

	reqLen := 64 + c.rng.Intn(192)
	respLen := 64 + c.rng.Intn(512)
	reqSeq, reqAck := cc.seq, cc.ack
	cc.seq += uint32(reqLen)

	req := c.builder.BuildTCP(client, server, 64, reqSeq, reqAck, layers.TCPAck|layers.TCPPsh, 65535, c.encryptedPayload(reqLen))
	up := w.pathToSFU(c)
	up.deliver(req, func(time.Time) {
		// Server response: ACK of the request plus its own data.
		respSeq := cc.ack
		cc.ack += uint32(respLen)
		resp := w.sfu.builder.BuildTCP(server, client, 57, respSeq, cc.seq, layers.TCPAck|layers.TCPPsh, 65535, c.encryptedPayload(respLen))
		down := w.pathFromSFU(c)
		down.deliver(resp, func(time.Time) {
			// Client ACKs the response.
			fin := c.builder.BuildTCP(client, server, 64, cc.seq, cc.ack, layers.TCPAck, 65535, nil)
			up2 := w.pathToSFU(c)
			up2.deliver(fin, nil, nil)
		}, nil)
	}, nil)

	c.w.Eng.After(cc.interval, cc.tick)
}
