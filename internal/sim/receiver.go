package sim

import (
	"time"

	"zoomlens/internal/qos"
	"zoomlens/internal/zoom"
)

// receiver is the receiving half of a client: it reassembles incoming
// video frames, maintains the client's own QoS statistics (the ground
// truth the paper reads via the Zoom SDK, §5 "Validation of Metrics"),
// and drives the sender-side rate adaptation of its peers through
// feedback.
type receiver struct {
	c *Client
	// QoS is the per-second statistics log, mimicking the SDK's update
	// cadence and smoothing quirks.
	QoS *qos.Recorder

	// Per-frame accounting for delivered video fps.
	frameSeen   map[frameKey]int
	frameDone   map[frameKey]bool
	deliveredIn int // frames completed in the current second

	// Smoothed packet interarrival jitter, Zoom-style (extremely long
	// smoothing; stays tiny, §5.4).
	lastArrival  time.Time
	lastTS       uint32
	zoomJitterMS float64

	// Congestion signal for adaptation feedback: RFC-style jitter with
	// normal smoothing.
	recentJitterMS float64
}

type frameKey struct {
	ssrc uint32
	ts   uint32
}

func newReceiver(c *Client) *receiver {
	r := &receiver{
		c:         c,
		QoS:       qos.NewRecorder(c.Name),
		frameSeen: make(map[frameKey]int),
		frameDone: make(map[frameKey]bool),
	}
	c.w.Eng.After(time.Second, r.tickSecond)
	return r
}

// receiveMedia is called on final delivery of a media packet to this
// client.
func (c *Client) receiveMedia(at time.Time, pkt *wirePacket) {
	if !c.active || c.recv == nil {
		return
	}
	c.recv.observe(at, pkt)
}

func (r *receiver) observe(at time.Time, pkt *wirePacket) {
	if pkt.mediaType != zoom.TypeVideo || (pkt.pt != zoom.PTVideoMain && pkt.pt != webrtcPTVideo) {
		return
	}
	// Jitter accounting on the first packet of each frame.
	k := frameKey{pkt.ssrc, pkt.rtpTS}
	if r.frameSeen[k] == 0 {
		if !r.lastArrival.IsZero() {
			dR := at.Sub(r.lastArrival).Seconds() * zoom.VideoClockRate
			dS := float64(int32(pkt.rtpTS - r.lastTS))
			d := dR - dS
			if d < 0 {
				d = -d
			}
			ms := d / zoom.VideoClockRate * 1000
			// Zoom's reported jitter never exceeded ~2 ms in the paper's
			// experiments even under heavy congestion (§5.4); the paper
			// hypothesizes FEC-aware or heavily smoothed computation. We
			// model it as a glacial EWMA over clamped samples.
			zs := ms
			if zs > 4 {
				zs = 4
			}
			r.zoomJitterMS += (zs - r.zoomJitterMS) / 4096
			// Adaptation signal: responsive EWMA.
			r.recentJitterMS += (ms - r.recentJitterMS) / 8
		}
		r.lastArrival, r.lastTS = at, pkt.rtpTS
	}
	r.frameSeen[k]++
	if !r.frameDone[k] && pkt.nPkts > 0 && r.frameSeen[k] >= int(pkt.nPkts) {
		r.frameDone[k] = true
		r.deliveredIn++
	}
	if len(r.frameSeen) > 4096 {
		r.gc()
	}
}

func (r *receiver) gc() {
	for k := range r.frameSeen {
		if int32(r.lastTS-k.ts) > 10*zoom.VideoClockRate {
			delete(r.frameSeen, k)
			delete(r.frameDone, k)
		}
	}
}

// tickSecond logs QoS once per second and sends adaptation feedback to
// the video sender(s).
func (r *receiver) tickSecond() {
	c := r.c
	if !c.active {
		return
	}
	now := c.w.Now()

	// Ground-truth latency: Zoom reports a client↔server (or peer) RTT
	// estimate, refreshed only every five seconds (§5.3, Figure 10b).
	rtt := r.currentPathRTT(now)
	r.QoS.Record(now, qos.Stats{
		VideoFPS:  float64(r.deliveredIn),
		LatencyMS: float64(rtt) / float64(time.Millisecond),
		JitterMS:  r.zoomJitterMS,
	})
	r.deliveredIn = 0

	// Feedback to senders: everyone in the meeting sending video learns
	// this receiver's congestion signal. This models Zoom's control
	// traffic (which we also emit as opaque packets) closing the
	// adaptation loop at the sender (§3: Zoom adapts the sender's bit-
	// and frame rate, using jitter rather than absolute delay).
	if m := c.meeting; m != nil {
		for _, p := range m.participants {
			if p == c || !p.active {
				continue
			}
			p.onFeedback(r.recentJitterMS)
		}
	}
	c.w.Eng.After(time.Second, r.tickSecond)
}

// currentPathRTT derives the true current RTT from link state.
func (r *receiver) currentPathRTT(now time.Time) time.Duration {
	c := r.c
	m := c.meeting
	if m == nil {
		return 0
	}
	if m.mode == modeP2P {
		if o := m.otherParticipant(c); o != nil {
			p := c.w.pathP2P(c, o)
			return pathRTT(p, now)
		}
	}
	up := c.w.pathToSFU(c)
	return pathRTT(up, now)
}

func pathRTT(p *path, now time.Time) time.Duration {
	var oneWay time.Duration
	if p.pre != nil {
		mn, mx := p.pre.CurrentDelayBounds(now)
		oneWay += (mn + mx) / 2
	}
	if p.post != nil {
		mn, mx := p.post.CurrentDelayBounds(now)
		oneWay += (mn + mx) / 2
	}
	return 2 * oneWay
}

// onFeedback adapts this client's video sender to the receiver-reported
// jitter: sustained high jitter halves the frame rate; sustained calm
// restores it.
func (c *Client) onFeedback(jitterMS float64) {
	for _, s := range c.senders {
		if s.video == nil {
			continue
		}
		switch {
		case jitterMS > 12 && !s.congested:
			c.badSeconds++
			if c.badSeconds >= 2 {
				s.congested = true
				c.goodSeconds = 0
			}
		case jitterMS < 6 && s.congested:
			c.goodSeconds++
			if c.goodSeconds >= 5 {
				s.congested = false
				c.badSeconds = 0
			}
		default:
			if jitterMS <= 12 {
				c.badSeconds = 0
			}
			if jitterMS >= 6 {
				c.goodSeconds = 0
			}
		}
		s.video.SetReduced(s.thumbnail || s.congested)
	}
}
