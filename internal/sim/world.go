// Package sim is a discrete-event simulator of Zoom meetings over a
// campus network, producing byte-exact packets in the wire format
// reverse-engineered by the paper (§4.2). It stands in for the paper's
// unobtainable inputs — proprietary Zoom clients, an SFU, and a campus
// border tap — while exercising exactly the analysis code paths the
// authors ran on real traffic.
//
// The model implements the behaviours the paper reports:
//
//   - server-based meetings relay all media through an SFU (multimedia
//     router) on UDP port 8801, with the 8-byte Zoom SFU encapsulation
//     and per-media-type Zoom media encapsulations (Tables 1–2);
//   - two-party meetings switch to a direct P2P flow after a cleartext
//     STUN exchange with a zone controller on port 3478, and revert to
//     the SFU when a third participant joins (§3, §4.1, Figure 2);
//   - SSRCs are small, meeting-unique, non-random values (§4.2.3);
//   - each media stream carries main and FEC substreams (Table 3),
//     RTCP sender reports once per second (types 33/34), and silent
//     audio uses fixed 40-byte type-99 packets;
//   - lost packets are retransmitted with the same RTP sequence number,
//     up to two times, after a ~100 ms + RTT timeout (§5.5);
//   - senders adapt frame rate (28→14 fps) to congestion feedback
//     rather than relying on the SFU (§3);
//   - a TCP control connection to the server carries periodic
//     TLS-like traffic used for the paper's TCP-RTT latency proxy
//     (§5.3 method 2); and
//   - a fraction of packets are opaque control traffic that the
//     analyzer cannot decode, matching the ~10 % undecodable share in
//     Table 2.
//
// A monitor callback taps every packet crossing the campus border, in
// both directions, with border-crossing timestamps — the paper's vantage
// point.
package sim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"zoomlens/internal/netsim"
	"zoomlens/internal/zoom"
)

// Options configures a simulated world.
type Options struct {
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// Start is the virtual start time.
	Start time.Time

	// CampusNet is the prefix campus clients are allocated from.
	CampusNet netip.Prefix
	// ExternalNet is the prefix off-campus clients are allocated from.
	ExternalNet netip.Prefix
	// SFUAddr and ZCAddr are the Zoom multimedia router and zone
	// controller addresses; both must fall in ZoomNet.
	SFUAddr netip.Addr
	ZCAddr  netip.Addr
	// ZoomNet is the prefix announced as Zoom's (for the capture filter).
	ZoomNet netip.Prefix
	// WebRTCAddr is the media server of the standards-RTC application
	// (webrtc-app meetings relay through it). It must NOT fall in
	// ZoomNet: a standards RTC service's servers are not in Zoom's
	// published prefixes, so the capture filter can only find these
	// flows via the STUN exchange (GenericRTC mode).
	WebRTCAddr netip.Addr

	// CampusDelay/CampusJitter shape client↔border legs.
	CampusDelay  time.Duration
	CampusJitter time.Duration
	// WanDelay/WanJitter/WanLoss shape border↔server legs (and the
	// external half of P2P paths).
	WanDelay  time.Duration
	WanJitter time.Duration
	WanLoss   float64

	// SkipExternalDelivery elides SFU→off-campus forwarding. Those legs
	// never cross the monitor (the paper's vantage point cannot see
	// them, §6.1), so campus-scale workloads can skip simulating them;
	// external receivers then produce no QoS ground truth or feedback.
	SkipExternalDelivery bool
}

// DefaultOptions is a healthy campus: 2 ms to the border, 10 ms to the
// SFU, mild jitter, light loss.
func DefaultOptions() Options {
	return Options{
		Seed:         1,
		Start:        time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC),
		CampusNet:    netip.MustParsePrefix("10.8.0.0/16"),
		ExternalNet:  netip.MustParsePrefix("203.0.113.0/24"),
		ZoomNet:      netip.MustParsePrefix("52.81.0.0/16"),
		SFUAddr:      netip.MustParseAddr("52.81.10.20"),
		ZCAddr:       netip.MustParseAddr("52.81.200.1"),
		WebRTCAddr:   netip.MustParseAddr("198.51.100.40"),
		CampusDelay:  2 * time.Millisecond,
		CampusJitter: 1 * time.Millisecond,
		WanDelay:     10 * time.Millisecond,
		WanJitter:    8 * time.Millisecond,
		WanLoss:      0.0005,
	}
}

// MonitorFunc receives every frame crossing the campus border.
type MonitorFunc func(at time.Time, frame []byte)

// World owns the engine, topology, and the SFU.
type World struct {
	Eng  *netsim.Engine
	Opts Options
	// Monitor taps border-crossing packets; nil disables capture.
	Monitor MonitorFunc

	rng        *rand.Rand
	nextCampus uint32
	nextExt    uint32
	nextMeet   int
	sfu        *sfu

	// WanUp/WanDown are the border↔SFU legs shared by all campus
	// clients; congestion episodes are typically installed here.
	WanUp   *netsim.Link
	WanDown *netsim.Link

	// Stats for the Figure 17 reproduction.
	MonitorPackets uint64
	MonitorBytes   uint64
}

// NewWorld builds a world.
func NewWorld(opts Options) *World {
	if opts.Start.IsZero() {
		opts = DefaultOptions()
	}
	w := &World{
		Eng:  netsim.NewEngine(opts.Start),
		Opts: opts,
		rng:  rand.New(rand.NewSource(opts.Seed)),
	}
	w.WanUp = netsim.NewLink(w.Eng, opts.WanDelay, opts.WanJitter, opts.WanLoss, opts.Seed^0x1111)
	w.WanDown = netsim.NewLink(w.Eng, opts.WanDelay, opts.WanJitter, opts.WanLoss, opts.Seed^0x2222)
	w.sfu = newSFU(w)
	return w
}

// Now returns virtual time.
func (w *World) Now() time.Time { return w.Eng.Now() }

// Run advances the simulation.
func (w *World) Run(until time.Time) { w.Eng.Run(until) }

// allocAddr hands out client addresses.
func (w *World) allocAddr(campus bool) netip.Addr {
	var p netip.Prefix
	var n *uint32
	if campus {
		p, n = w.Opts.CampusNet, &w.nextCampus
	} else {
		p, n = w.Opts.ExternalNet, &w.nextExt
	}
	*n++
	a4 := p.Addr().As4()
	v := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	v += *n + 1
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

func (w *World) ephemeralPort() uint16 {
	return uint16(49152 + w.rng.Intn(16000))
}

// tap delivers a frame copy to the monitor with the border timestamp.
func (w *World) tap(at time.Time, frame []byte) {
	w.MonitorPackets++
	w.MonitorBytes += uint64(len(frame))
	if w.Monitor != nil {
		w.Monitor(at, frame)
	}
}

// path is an ordered pair of legs with an optional monitor tap between
// them. Packets traverse leg[0], are tapped, then traverse leg[1]. For
// off-campus endpoints a path may have a single leg and no tap.
type path struct {
	w *World
	// pre is the leg before the border (nil if the sender is external
	// and the receiver is too — fully outside, never tapped).
	pre *netsim.Link
	// post is the leg after the border.
	post *netsim.Link
	// tapped reports whether this path crosses the border.
	tapped bool
	// rttHint is a rough full-path RTT for retransmission timers.
	rttHint time.Duration
}

// deliver sends one frame along the path. onArrive (optional) runs at
// final delivery; onLost runs if any leg drops the packet.
func (p *path) deliver(frame []byte, onArrive func(at time.Time), onLost func()) {
	fail := onLost
	if fail == nil {
		fail = func() {}
	}
	arrive := onArrive
	if arrive == nil {
		arrive = func(time.Time) {}
	}
	switch {
	case p.pre != nil && p.post != nil:
		ok, _ := p.pre.Send(func(at time.Time) {
			if p.tapped {
				p.w.tap(at, frame)
			}
			ok2, _ := p.post.Send(func(at2 time.Time) { arrive(at2) })
			if !ok2 {
				fail()
			}
		})
		if !ok {
			fail()
		}
	case p.pre != nil:
		ok, _ := p.pre.Send(func(at time.Time) {
			if p.tapped {
				p.w.tap(at, frame)
			}
			arrive(at)
		})
		if !ok {
			fail()
		}
	default:
		arrive(p.w.Now())
	}
}

// NewMeeting creates a meeting; clients join it with Meeting.Join.
func (w *World) NewMeeting() *Meeting {
	w.nextMeet++
	m := &Meeting{
		w:  w,
		id: w.nextMeet,
		// SSRC bases are small and structured, not random (§4.2.3).
		ssrcBase: uint32(0x01000000 + w.nextMeet*0x100),
	}
	return m
}

// NewWebRTCMeeting creates a meeting of the standards-RTC application:
// participants relay plain RTP/SRTP through the WebRTCAddr media server
// after an ICE-style STUN exchange, with no Zoom encapsulations on the
// wire.
func (w *World) NewWebRTCMeeting() *Meeting {
	m := w.NewMeeting()
	m.app = AppWebRTC
	return m
}

// SFUAddrPort returns the media server endpoint.
func (w *World) SFUAddrPort() netip.AddrPort {
	return netip.AddrPortFrom(w.Opts.SFUAddr, zoom.ServerMediaPort)
}

// webrtcMediaPort is the UDP port the standards-RTC media server sends
// media from (distinct from the STUN port so the analyzer's STUN-port
// accounting stays meaningful).
const webrtcMediaPort = 50004

// WebRTCAddrPort returns the standards-RTC media server endpoint.
func (w *World) WebRTCAddrPort() netip.AddrPort {
	return netip.AddrPortFrom(w.Opts.WebRTCAddr, webrtcMediaPort)
}

func (w *World) String() string {
	return fmt.Sprintf("sim.World{t=%s, meetings=%d}", w.Now().Format("15:04:05"), w.nextMeet)
}

// clientLinks builds the per-client legs. Campus clients get a pair of
// links to the border; external clients get direct links to the server
// side (never tapped for server traffic).
type clientLinks struct {
	up   *netsim.Link // client → border (campus) or client → far end (external)
	down *netsim.Link // border → client or far end → client
}

func (w *World) newClientLinks(campus bool, seed int64) clientLinks {
	base, jit := w.Opts.CampusDelay, w.Opts.CampusJitter
	if !campus {
		base, jit = w.Opts.WanDelay, w.Opts.WanJitter
	}
	return clientLinks{
		up:   netsim.NewLink(w.Eng, base, jit, 0, seed^0x3333),
		down: netsim.NewLink(w.Eng, base, jit, 0, seed^0x4444),
	}
}

// pathToSFU builds the client→SFU path.
func (w *World) pathToSFU(c *Client) *path {
	if c.Campus {
		return &path{
			w: w, pre: c.links.up, post: w.WanUp, tapped: true,
			rttHint: 2 * (w.Opts.CampusDelay + w.Opts.WanDelay),
		}
	}
	return &path{w: w, pre: c.links.up, tapped: false, rttHint: 2 * w.Opts.WanDelay}
}

// pathFromSFU builds the SFU→client path.
func (w *World) pathFromSFU(c *Client) *path {
	if c.Campus {
		return &path{
			w: w, pre: w.WanDown, post: c.links.down, tapped: true,
			rttHint: 2 * (w.Opts.CampusDelay + w.Opts.WanDelay),
		}
	}
	return &path{w: w, pre: c.links.down, tapped: false, rttHint: 2 * w.Opts.WanDelay}
}

// pathP2P builds the a→b direct path. It crosses the border (and is
// tapped) iff exactly one endpoint is on campus.
func (w *World) pathP2P(a, b *Client) *path {
	switch {
	case a.Campus && !b.Campus:
		return &path{w: w, pre: a.links.up, post: b.links.down, tapped: true,
			rttHint: 2 * (w.Opts.CampusDelay + w.Opts.WanDelay)}
	case !a.Campus && b.Campus:
		return &path{w: w, pre: a.links.up, post: b.links.down, tapped: true,
			rttHint: 2 * (w.Opts.CampusDelay + w.Opts.WanDelay)}
	case a.Campus && b.Campus:
		// Intra-campus: never crosses the border; invisible to the
		// monitor (a documented limitation of border vantage points).
		return &path{w: w, pre: a.links.up, post: b.links.down, tapped: false,
			rttHint: 4 * w.Opts.CampusDelay}
	default:
		return &path{w: w, pre: a.links.up, post: b.links.down, tapped: false,
			rttHint: 4 * w.Opts.WanDelay}
	}
}
