package sim

import (
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/zoom"
)

// sfu models a Zoom multimedia router: it replicates every media packet
// to all other meeting participants without rewriting RTP headers or
// timestamps (§4.3.1), re-wrapping only the SFU encapsulation (new
// per-destination sequence numbers, direction byte 0x04).
type sfu struct {
	w *World
	// sfuSeq numbers outgoing SFU encapsulations per destination client.
	sfuSeq  map[*Client]uint16
	builder layers.Builder
}

func newSFU(w *World) *sfu {
	return &sfu{w: w, sfuSeq: make(map[*Client]uint16)}
}

// receive handles one uplink packet from a participant.
func (s *sfu) receive(at time.Time, from *Client, pkt *wirePacket) {
	m := from.meeting
	if m == nil || m.mode != modeSFU {
		return
	}
	if pkt.mediaType == 0 {
		return // opaque control traffic terminates at the server
	}
	// Zoom's SFU forwards only a few concurrent audio streams (active
	// speakers); everyone's video/screen is replicated.
	if flowMediaType(pkt) == zoom.TypeAudio && !m.audioForwarded(from) {
		return
	}
	for _, p := range m.participants {
		if p == from || !p.active {
			continue
		}
		if s.w.Opts.SkipExternalDelivery && !p.Campus {
			continue
		}
		s.forward(p, pkt)
	}
}

// forward re-wraps and sends one packet to a downlink participant.
func (s *sfu) forward(to *Client, pkt *wirePacket) {
	var payload []byte
	src := s.w.SFUAddrPort()
	if to.meeting.app == AppWebRTC {
		// The standards SFU relays the RTP packet unchanged (header
		// rewriting is out of model) from its media port.
		payload = pkt.payload
		src = s.w.WebRTCAddrPort()
	} else {
		s.sfuSeq[to]++
		// Rebuild the SFU encapsulation with the from-SFU direction while
		// leaving the inner media encapsulation and RTP bytes untouched:
		// Zoom's SFU does not translate timestamps or sequence numbers.
		inner := pkt.payload[zoom.SFUEncapLen:]
		hdr := zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: s.sfuSeq[to], Direction: zoom.DirFromSFU}
		payload = hdr.AppendMarshal(make([]byte, 0, zoom.SFUEncapLen+len(inner)))
		payload = append(payload, inner...)
	}

	frame := s.builder.BuildUDP(src, netip.AddrPortFrom(to.Addr, to.portFor(flowMediaType(pkt))), 57, payload)
	p := s.w.pathFromSFU(to)
	fwd := *pkt
	fwd.payload = payload
	p.deliver(frame,
		func(arrive time.Time) { to.receiveMedia(arrive, &fwd) },
		func() {
			// Downlink loss: the SFU retransmits to this client with the
			// same RTP sequence number after the NACK timeout.
			s.w.Eng.After(retxTimeout+p.rttHint, func() {
				if to.active && to.meeting != nil && to.meeting.mode == modeSFU {
					s.retransmit(to, &fwd, frame, p, 1)
				}
			})
		},
	)
}

func (s *sfu) retransmit(to *Client, pkt *wirePacket, frame []byte, p *path, retries int) {
	p.deliver(frame,
		func(arrive time.Time) { to.receiveMedia(arrive, pkt) },
		func() {
			if retries > 0 {
				s.w.Eng.After(retxTimeout+p.rttHint, func() {
					if to.active {
						s.retransmit(to, pkt, frame, p, retries-1)
					}
				})
			}
		},
	)
}
