package sim

import (
	"math/rand"
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/media"
	"zoomlens/internal/qos"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// MediaSet selects which media a participant sends.
type MediaSet struct {
	Video        bool
	VideoConfig  media.VideoConfig
	Audio        bool
	AudioConfig  media.AudioConfig
	Screen       bool
	ScreenConfig media.ScreenShareConfig
	// Mobile marks clients whose audio uses the PT-113 "mode unknown"
	// substream (§4.2.3).
	Mobile bool
	// FECRate is the fraction of frames that get a FEC packet (PT 110).
	FECRate float64
}

// DefaultMediaSet is a camera+microphone participant.
func DefaultMediaSet() MediaSet {
	return MediaSet{
		Video:        true,
		VideoConfig:  media.DefaultVideoConfig(),
		Audio:        true,
		AudioConfig:  media.DefaultAudioConfig(),
		ScreenConfig: media.DefaultScreenShareConfig(),
		FECRate:      0.09,
	}
}

// Client is one meeting participant endpoint.
type Client struct {
	Name   string
	Campus bool
	Addr   netip.Addr

	w     *World
	rng   *rand.Rand
	links clientLinks

	meeting *Meeting
	set     MediaSet

	// mediaPort is the client-side UDP port of the current media flow.
	// In server mode each media type gets its own flow/port (§3: "there
	// is always one flow per media type in use"); in P2P mode all media
	// share this single port. Ports change on SFU↔P2P transitions.
	mediaPort  uint16
	mediaPorts map[zoom.MediaType]uint16
	// p2pPort is the ephemeral port announced in the STUN exchange and
	// used for a subsequent P2P flow.
	p2pPort uint16

	senders []*streamSender
	recv    *receiver
	tcp     *controlConn

	builder layers.Builder

	// Rate-adaptation hysteresis (driven by receiver feedback).
	badSeconds  int
	goodSeconds int

	// sfuSeq numbers the Zoom SFU encapsulation for packets this client
	// sends to the server.
	sfuSeq uint16

	active bool
}

// NewClient creates a client. Campus clients sit behind the monitor.
func (w *World) NewClient(name string, campus bool) *Client {
	return w.NewClientWithAddr(name, campus, w.allocAddr(campus))
}

// NewClientWithAddr creates a client at a specific address. Giving two
// clients the same campus address models NAT (a personal hotspot or a
// large-scale NAT in front of the monitor) — the condition under which
// the grouping heuristic merges distinct meetings (Figure 9).
func (w *World) NewClientWithAddr(name string, campus bool, addr netip.Addr) *Client {
	c := &Client{
		Name:   name,
		Campus: campus,
		Addr:   addr,
		w:      w,
		rng:    rand.New(rand.NewSource(w.rng.Int63())),
	}
	c.links = w.newClientLinks(campus, c.rng.Int63())
	return c
}

// MediaAddrPort returns the client's current media endpoint for a
// given media type (P2P mode uses one port for everything).
func (c *Client) MediaAddrPort() netip.AddrPort {
	return netip.AddrPortFrom(c.Addr, c.mediaPort)
}

// portFor returns the client-side UDP port carrying mt in the current
// meeting mode.
func (c *Client) portFor(mt zoom.MediaType) uint16 {
	if c.meeting != nil && (c.meeting.mode == modeP2P || c.meeting.app == AppWebRTC) {
		// P2P and webrtc-app meetings bundle all media on one UDP flow
		// (WebRTC's BUNDLE: the flow the ICE STUN exchange armed).
		return c.mediaPort
	}
	if p, ok := c.mediaPorts[mt]; ok {
		return p
	}
	if c.mediaPorts == nil {
		c.mediaPorts = make(map[zoom.MediaType]uint16)
	}
	p := c.w.ephemeralPort()
	c.mediaPorts[mt] = p
	return p
}

// flowMediaType maps a packet to the media type whose flow carries it
// (RTCP reports ride their stream's flow).
func flowMediaType(pkt *wirePacket) zoom.MediaType {
	switch pkt.mediaType {
	case zoom.TypeRTCPSR, zoom.TypeRTCPSRSDES:
		return pkt.rtcpFlowType
	case 0:
		return zoom.TypeVideo // opaque control rides the busiest flow
	}
	return pkt.mediaType
}

// DegradeAccess adds persistent extra jitter and loss to this client's
// access links (both directions) — a bad Wi-Fi or last mile affecting
// only this participant.
func (c *Client) DegradeAccess(extraJitter time.Duration, loss float64) {
	c.links.up.Jitter += extraJitter
	c.links.up.LossRate += loss
	c.links.down.Jitter += extraJitter
	c.links.down.LossRate += loss
}

// QoS returns the client's ground-truth statistics recorder (the
// SDK-instrumented view of §5 "Validation of Metrics"), or nil before
// the client joins a meeting.
func (c *Client) QoS() *qos.Recorder {
	if c.recv == nil {
		return nil
	}
	return c.recv.QoS
}

// streamSender produces one media stream (one SSRC).
type streamSender struct {
	c         *Client
	mediaType zoom.MediaType
	ssrc      uint32
	clock     float64 // RTP clock rate

	rtpTS     uint32
	mainSeq   uint16 // RTP seq of the main substream
	fecSeq    uint16 // RTP seq of the FEC substream
	mediaSeq  uint16 // Zoom media encapsulation seq
	frameSeq  uint16 // Zoom frame sequence (video)
	pktCount  uint32 // for RTCP SR
	byteCount uint32

	video  *media.VideoSource
	audio  *media.AudioSource
	screen *media.ScreenShareSource

	// thumbnail marks user-interface-driven rate reduction (screen share
	// in the meeting); congested marks network-driven reduction.
	thumbnail bool
	congested bool
	// paused suspends emission (mute / camera off) while keeping the
	// stream's SSRC and counters, so resuming continues the same stream.
	paused bool

	// lastDur is the media time covered by the previously sent frame;
	// the RTP timestamp advances by it when the *next* frame is sampled
	// (frame i's timestamp reflects its sampling instant).
	lastDur time.Duration

	stopped bool
}

// MTU-ish payload budget per RTP packet.
const maxRTPPayload = 1150

// startSenders builds and schedules this client's stream senders.
func (c *Client) startSenders() {
	idx := uint32(len(c.meeting.participants)) // stable per participant
	mk := func(mt zoom.MediaType, streamIdx uint32, clock float64) *streamSender {
		return &streamSender{
			c:         c,
			mediaType: mt,
			ssrc:      c.meeting.ssrcBase + idx*8 + streamIdx,
			clock:     clock,
			rtpTS:     uint32(c.rng.Intn(1 << 20)),
			mainSeq:   uint16(c.rng.Intn(1 << 14)),
			fecSeq:    uint16(c.rng.Intn(1 << 14)),
		}
	}
	if c.set.Audio {
		s := mk(zoom.TypeAudio, 1, zoom.AudioClockRate)
		cfg := c.set.AudioConfig
		if cfg.PacketInterval == 0 {
			cfg = media.DefaultAudioConfig()
		}
		cfg.AlwaysUnknownMode = c.set.Mobile
		s.audio = media.NewAudioSource(cfg, c.rng.Int63())
		c.senders = append(c.senders, s)
		c.w.Eng.After(jitterStart(c.rng, cfg.PacketInterval), s.tickAudio)
	}
	if c.set.Video {
		s := mk(zoom.TypeVideo, 2, zoom.VideoClockRate)
		cfg := c.set.VideoConfig
		if cfg.FPS == 0 {
			cfg = media.DefaultVideoConfig()
		}
		s.video = media.NewVideoSource(cfg, c.rng.Int63())
		c.senders = append(c.senders, s)
		c.w.Eng.After(jitterStart(c.rng, 33*time.Millisecond), s.tickVideo)
	}
	if c.set.Screen {
		s := mk(zoom.TypeScreenShare, 3, zoom.VideoClockRate)
		cfg := c.set.ScreenConfig
		if cfg.MeanChangeInterval == 0 {
			cfg = media.DefaultScreenShareConfig()
		}
		s.screen = media.NewScreenShareSource(cfg, c.rng.Int63())
		c.senders = append(c.senders, s)
		c.w.Eng.After(jitterStart(c.rng, 500*time.Millisecond), s.tickScreen)
	}
	// One RTCP SR per stream per second (§4.2.3), staggered.
	c.w.Eng.After(jitterStart(c.rng, time.Second), c.tickRTCP)
	// Opaque control traffic: ~1 packet/100 ms while active, giving the
	// ~10 % undecodable share of Table 2. Zoom-specific (SFU type 0x07);
	// the webrtc app has no equivalent in-band control stream here.
	if c.meeting.app == AppZoom {
		c.w.Eng.After(jitterStart(c.rng, 100*time.Millisecond), c.tickControl)
	}
}

func jitterStart(rng *rand.Rand, max time.Duration) time.Duration {
	return time.Duration(rng.Int63n(int64(max)) + 1)
}

func (s *streamSender) alive() bool {
	return !s.stopped && s.c.active
}

// SetMuted pauses/resumes the client's audio stream mid-meeting. While
// muted the participant emits no audio packets at all (they become a
// "passive participant" for that medium, §4.3.1).
func (c *Client) SetMuted(muted bool) {
	for _, s := range c.senders {
		if s.audio != nil {
			s.paused = muted
		}
	}
}

// SetVideoEnabled pauses/resumes the client's camera stream mid-meeting.
func (c *Client) SetVideoEnabled(on bool) {
	for _, s := range c.senders {
		if s.video != nil {
			s.paused = !on
		}
	}
}

func (s *streamSender) tickVideo() {
	if !s.alive() {
		return
	}
	f := s.video.Next()
	if s.paused {
		// Camera off: no packets; the RTP timeline resumes where it
		// stopped (frames simply stop being sampled).
		s.c.w.Eng.After(f.Duration, s.tickVideo)
		return
	}
	s.rtpTS += uint32(s.lastDur.Seconds() * s.clock)
	s.lastDur = f.Duration
	s.sendFrame(zoom.PTVideoMain, f.Bytes, true)
	s.c.w.Eng.After(f.Duration, s.tickVideo)
}

func (s *streamSender) tickAudio() {
	if !s.alive() {
		return
	}
	f := s.audio.Next()
	if s.paused {
		s.c.w.Eng.After(f.Duration, s.tickAudio)
		return
	}
	s.rtpTS += uint32(s.lastDur.Seconds() * s.clock)
	s.lastDur = f.Duration
	pt := zoom.PTAudioSpeak
	if s.c.set.Mobile {
		pt = zoom.PTAudioMobile
	} else if f.Silent {
		pt = zoom.PTAudioSilent
	}
	s.sendFrame(pt, f.Bytes, false)
	s.c.w.Eng.After(f.Duration, s.tickAudio)
}

func (s *streamSender) tickScreen() {
	if !s.alive() {
		return
	}
	f, gap := s.screen.Next()
	s.rtpTS += uint32(s.lastDur.Seconds() * s.clock)
	s.lastDur = gap
	s.sendFrame(zoom.PTScreenShare, f.Bytes, false)
	s.c.w.Eng.After(gap, s.tickScreen)
}

// sendFrame packetizes one frame and transmits its packets plus optional
// FEC. hasCount marks media types whose encapsulation carries the
// packets-in-frame field (video).
func (s *streamSender) sendFrame(pt uint8, bytes int, hasCount bool) {
	nPkts := (bytes + maxRTPPayload - 1) / maxRTPPayload
	if nPkts == 0 {
		nPkts = 1
	}
	s.frameSeq++
	// Packets of a frame go out back to back but still serialize on the
	// access link (~250 µs per MTU at ~40 Mbit/s); without this spacing,
	// link jitter would reorder intra-frame packets far more than real
	// networks do.
	const serialization = 250 * time.Microsecond
	for i := 0; i < nPkts; i++ {
		sz := maxRTPPayload
		if i == nPkts-1 {
			sz = bytes - maxRTPPayload*(nPkts-1)
			if sz <= 0 {
				sz = 1
			}
		}
		pkt := s.buildMediaPacket(pt, sz, i == nPkts-1, uint8(nPkts), hasCount, false)
		if i == 0 {
			s.c.transmitMedia(s, pkt, 2)
		} else {
			s.c.w.Eng.After(time.Duration(i)*serialization, func() {
				s.c.transmitMedia(s, pkt, 2)
			})
		}
	}
	// FEC intensity varies by media type (Table 3: FEC ≈ 10 % of video
	// packets, ≈ 3 % of audio, and screen share carries none).
	fecRate := s.c.set.FECRate
	if s.c.meeting.app == AppWebRTC {
		// The standards app carries no separate FEC substream in this
		// model (no PT-110 equivalent; protection is in-band).
		fecRate = 0
	}
	switch s.mediaType {
	case zoom.TypeAudio:
		fecRate *= 0.33
	case zoom.TypeScreenShare:
		fecRate = 0
	}
	if fecRate > 0 && s.c.rng.Float64() < fecRate*float64(nPkts) {
		// FEC packets are sized like the media they protect.
		fecSize := bytes * 2 / 3
		if fecSize > maxRTPPayload {
			fecSize = maxRTPPayload
		}
		if fecSize < 30 {
			fecSize = 30
		}
		fec := s.buildMediaPacket(zoom.PTFEC, fecSize, false, 0, hasCount, true)
		s.c.w.Eng.After(time.Duration(nPkts)*serialization, func() {
			s.c.transmitMedia(s, fec, 2)
		})
	}
	s.pktCount += uint32(nPkts)
	s.byteCount += uint32(bytes)
}

// wirePacket carries both the bytes and the metadata the receiving side
// needs (the receiver could re-parse, but the simulator keeps ground
// truth attached).
type wirePacket struct {
	payload   []byte // UDP payload (Zoom encapsulations + RTP/RTCP)
	mediaType zoom.MediaType
	pt        uint8
	ssrc      uint32
	rtpSeq    uint16
	rtpTS     uint32
	marker    bool
	frameSeq  uint16
	nPkts     uint8
	sender    *Client
	// rtcpFlowType records, for RTCP packets, the media type of the
	// stream they describe (which selects the carrying flow).
	rtcpFlowType zoom.MediaType
	// p2p is set for P2P packets (no SFU encapsulation).
	p2p bool
}

// Standards RTP payload types the webrtc app uses: the conventional
// Opus and VP8 dynamic mappings (both in the analyzer's known-PT maps).
const (
	webrtcPTAudio = 111
	webrtcPTVideo = 96
)

// buildWebRTCPacket emits one packet of a webrtc-app stream: a plain
// RTP header in the clear over SRTP-ciphertext payload — no Zoom
// encapsulations, one sequence space, marker bit on the last packet of
// a frame (how standards stacks delimit frames).
func (s *streamSender) buildWebRTCPacket(payloadLen int, marker bool, nPkts uint8) *wirePacket {
	s.mainSeq++
	pt := uint8(webrtcPTVideo)
	if s.mediaType == zoom.TypeAudio {
		pt = webrtcPTAudio
	}
	rp := rtp.Packet{
		Header: rtp.Header{
			PayloadType:    pt,
			SequenceNumber: s.mainSeq,
			Timestamp:      s.rtpTS,
			SSRC:           s.ssrc,
			Marker:         marker,
		},
		Payload: s.c.encryptedPayload(payloadLen),
	}
	wire, err := rp.Marshal()
	if err != nil {
		panic("sim: marshal webrtc packet: " + err.Error())
	}
	return &wirePacket{
		payload:   wire,
		mediaType: s.mediaType,
		pt:        pt,
		ssrc:      s.ssrc,
		rtpSeq:    s.mainSeq,
		rtpTS:     s.rtpTS,
		marker:    marker,
		frameSeq:  s.frameSeq,
		nPkts:     nPkts,
		sender:    s.c,
	}
}

func (s *streamSender) buildMediaPacket(pt uint8, payloadLen int, marker bool, nPkts uint8, hasCount, fec bool) *wirePacket {
	if s.c.meeting.app == AppWebRTC {
		return s.buildWebRTCPacket(payloadLen, marker, nPkts)
	}
	s.mediaSeq++
	seq := &s.mainSeq
	if fec {
		seq = &s.fecSeq
	}
	*seq++
	p2p := s.c.meeting.mode == modeP2P
	zp := zoom.Packet{
		ServerBased: !p2p,
		Media: zoom.MediaEncap{
			Type:      s.mediaType,
			Sequence:  s.mediaSeq,
			Timestamp: s.rtpTS,
		},
		RTP: rtp.Packet{
			Header: rtp.Header{
				PayloadType:    pt,
				SequenceNumber: *seq,
				Timestamp:      s.rtpTS,
				SSRC:           s.ssrc,
				Marker:         marker,
			},
			Payload: s.c.encryptedPayload(payloadLen),
		},
	}
	if hasCount && s.mediaType == zoom.TypeVideo {
		zp.Media.FrameSequence = s.frameSeq
		zp.Media.PacketsInFrame = nPkts
	}
	if !p2p {
		s.c.sfuSeq++
		zp.SFU = zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: s.c.sfuSeq, Direction: zoom.DirToSFU}
	}
	wire, err := zp.Marshal()
	if err != nil {
		panic("sim: marshal media packet: " + err.Error())
	}
	return &wirePacket{
		payload:   wire,
		mediaType: s.mediaType,
		pt:        pt,
		ssrc:      s.ssrc,
		rtpSeq:    *seq,
		rtpTS:     s.rtpTS,
		marker:    marker,
		frameSeq:  s.frameSeq,
		nPkts:     nPkts,
		sender:    s.c,
		p2p:       p2p,
	}
}

// entropyPool is a shared block of random bytes that encryptedPayload
// slices at random offsets: each payload still looks uniformly random at
// any fixed offset across packets (what §4.2.1's analysis expects of
// ciphertext) at a fraction of the cost of per-packet rng.Read.
var entropyPool = func() []byte {
	b := make([]byte, 1<<17)
	r := rand.New(rand.NewSource(0x5eedf00d))
	r.Read(b)
	return b
}()

// encryptedPayload produces pseudorandom bytes standing in for SRTP
// ciphertext.
func (c *Client) encryptedPayload(n int) []byte {
	if n <= 0 {
		return nil
	}
	b := make([]byte, n)
	off := c.rng.Intn(len(entropyPool) - 1)
	for copied := 0; copied < n; {
		m := copy(b[copied:], entropyPool[off:])
		copied += m
		off = 0
	}
	// Perturb a position so no two payloads are byte-identical.
	b[c.rng.Intn(n)] ^= byte(1 + c.rng.Intn(255))
	return b
}

// tickRTCP emits one sender report per active stream each second.
func (c *Client) tickRTCP() {
	if !c.active {
		return
	}
	for _, s := range c.senders {
		if s.stopped {
			continue
		}
		withSDES := c.rng.Float64() < 0.7 // most SRs carry an (empty) SDES
		if c.meeting.app == AppWebRTC {
			// Standards compound RTCP: SR (+SDES), demultiplexed from RTP
			// by the RFC 5761 payload-type octet, on the bundled flow.
			wire := rtp.MarshalSR(rtp.SenderReport{
				SSRC:        s.ssrc,
				NTPTS:       rtp.NTPFromTime(c.w.Now()),
				RTPTS:       s.rtpTS,
				PacketCount: s.pktCount,
				OctetCount:  s.byteCount,
			}, withSDES)
			c.transmitMedia(s, &wirePacket{
				payload: wire, mediaType: zoom.TypeRTCPSR, ssrc: s.ssrc, sender: c,
				rtcpFlowType: s.mediaType,
			}, 0)
			continue
		}
		mt := zoom.TypeRTCPSR
		if withSDES {
			mt = zoom.TypeRTCPSRSDES
		}
		p2p := c.meeting.mode == modeP2P
		zp := zoom.Packet{
			ServerBased: !p2p,
			Media:       zoom.MediaEncap{Type: mt, Sequence: s.mediaSeq, Timestamp: s.rtpTS},
			RTCP: rtp.CompoundPacket{SenderReports: []rtp.SenderReport{{
				SSRC:        s.ssrc,
				NTPTS:       rtp.NTPFromTime(c.w.Now()),
				RTPTS:       s.rtpTS,
				PacketCount: s.pktCount,
				OctetCount:  s.byteCount,
			}}},
		}
		if !p2p {
			c.sfuSeq++
			zp.SFU = zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: c.sfuSeq, Direction: zoom.DirToSFU}
		}
		wire, err := zp.Marshal()
		if err != nil {
			panic("sim: marshal rtcp: " + err.Error())
		}
		c.transmitMedia(s, &wirePacket{
			payload: wire, mediaType: mt, ssrc: s.ssrc, sender: c, p2p: p2p,
			rtcpFlowType: s.mediaType,
		}, 0)
	}
	c.w.Eng.After(time.Second, c.tickRTCP)
}

// tickControl emits opaque (undecodable) control packets: SFU
// encapsulation type 7 followed by pseudorandom bytes. They account for
// the <10 % of packets the paper could not decode (§4.2.2).
func (c *Client) tickControl() {
	if !c.active {
		return
	}
	if c.meeting.mode != modeP2P {
		c.sfuSeq++
		hdr := zoom.SFUEncap{Type: 0x07, Sequence: c.sfuSeq, Direction: zoom.DirToSFU}
		payload := hdr.AppendMarshal(nil)
		payload = append(payload, c.encryptedPayload(40+c.rng.Intn(80))...)
		c.transmitMedia(nil, &wirePacket{payload: payload, sender: c, mediaType: 0}, 0)
	}
	c.w.Eng.After(80*time.Millisecond+time.Duration(c.rng.Intn(int(80*time.Millisecond))), c.tickControl)
}

// transmitMedia frames the packet in UDP/IP and sends it toward the
// meeting's current destination (SFU or peer), retrying on loss up to
// `retries` times with the same RTP sequence number (§5.5).
func (c *Client) transmitMedia(s *streamSender, pkt *wirePacket, retries int) {
	if !c.active {
		return
	}
	m := c.meeting
	if m == nil {
		return
	}
	var dst netip.AddrPort
	var p *path
	var to *Client
	if pkt.p2p && m.mode == modeP2P {
		to = m.otherParticipant(c)
		if to == nil {
			return
		}
		dst = netip.AddrPortFrom(to.Addr, to.mediaPort)
		p = c.w.pathP2P(c, to)
	} else if !pkt.p2p && m.mode == modeSFU {
		dst = c.w.SFUAddrPort()
		if m.app == AppWebRTC {
			dst = c.w.WebRTCAddrPort()
		}
		p = c.w.pathToSFU(c)
	} else {
		return // packet built for a mode the meeting already left
	}
	srcPort := c.portFor(flowMediaType(pkt))
	frame := c.builder.BuildUDP(netip.AddrPortFrom(c.Addr, srcPort), dst, 64, pkt.payload)
	p.deliver(frame,
		func(arrive time.Time) {
			if to != nil {
				to.receiveMedia(arrive, pkt)
			} else {
				c.w.sfu.receive(arrive, c, pkt)
			}
		},
		func() {
			if retries > 0 {
				c.w.Eng.After(retxTimeout+p.rttHint, func() {
					c.retransmit(pkt, retries-1)
				})
			}
		},
	)
}

// retxTimeout is the retransmission trigger delay observed in §5.5
// ("elevated by at least the current RTT to the SFU plus a timeout that
// appears to be 100ms").
const retxTimeout = 100 * time.Millisecond

func (c *Client) retransmit(pkt *wirePacket, retries int) {
	// Retransmissions reuse identical bytes (same RTP sequence number).
	c.transmitMedia(nil, pkt, retries)
}
