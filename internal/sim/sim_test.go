package sim

import (
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/netsim"
	"zoomlens/internal/stun"
	"zoomlens/internal/zoom"
)

// captured collects monitor output in decoded form.
type captured struct {
	at      time.Time
	pkt     layers.Packet
	zoomPkt *zoom.Packet // nil if not parseable as Zoom
	isSTUN  bool
}

func runCapture(t *testing.T, w *World, until time.Time) []captured {
	t.Helper()
	var out []captured
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var c captured
		c.at = at
		if err := parser.Parse(frame, &c.pkt); err != nil {
			t.Fatalf("monitor saw unparseable frame: %v", err)
		}
		if c.pkt.HasUDP {
			if stun.Is(c.pkt.Payload) {
				c.isSTUN = true
			} else if zp, err := zoom.ParsePacket(c.pkt.Payload, zoom.ModeAuto); err == nil {
				c.zoomPkt = &zp
			}
		}
		out = append(out, c)
	}
	w.Run(until)
	return out
}

func TestTwoPartySFUMeetingProducesDecodableTraffic(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	a := w.NewClient("alice", true)
	b := w.NewClient("bob", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())

	caps := runCapture(t, w, opts.Start.Add(20*time.Second))
	if len(caps) < 1000 {
		t.Fatalf("monitor saw %d packets, want ≥1000", len(caps))
	}

	var media, rtcp, opaque, tcp, toSFU, fromSFU int
	types := map[zoom.MediaType]int{}
	ssrcs := map[uint32]bool{}
	for _, c := range caps {
		if c.pkt.HasTCP {
			tcp++
			continue
		}
		if c.isSTUN {
			continue
		}
		if c.zoomPkt == nil {
			opaque++
			continue
		}
		zp := c.zoomPkt
		if !zp.ServerBased {
			t.Fatal("SFU meeting produced P2P-layout packet")
		}
		if zp.SFU.FromSFU() {
			fromSFU++
		} else {
			toSFU++
		}
		types[zp.Media.Type]++
		if zp.IsMedia() {
			media++
			ssrcs[zp.RTP.SSRC] = true
		} else {
			rtcp++
		}
	}
	if media == 0 || rtcp == 0 || tcp == 0 {
		t.Fatalf("media=%d rtcp=%d tcp=%d", media, rtcp, tcp)
	}
	if types[zoom.TypeVideo] == 0 || types[zoom.TypeAudio] == 0 {
		t.Errorf("types = %v", types)
	}
	if types[zoom.TypeScreenShare] != 0 {
		t.Errorf("unexpected screen share: %v", types)
	}
	// Both directions visible (uplinks and SFU-forwarded downlinks).
	if toSFU == 0 || fromSFU == 0 {
		t.Errorf("toSFU=%d fromSFU=%d", toSFU, fromSFU)
	}
	// 2 participants × (audio + video) = 4 SSRCs, FEC shares SSRC.
	if len(ssrcs) != 4 {
		t.Errorf("ssrcs = %d, want 4", len(ssrcs))
	}
	// Opaque control traffic exists but is a modest minority.
	frac := float64(opaque) / float64(len(caps))
	if frac <= 0 || frac > 0.25 {
		t.Errorf("opaque fraction = %v", frac)
	}
}

func TestVideoDominatesBytes(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), DefaultMediaSet())
	m.Join(w.NewClient("b", true), DefaultMediaSet())
	byType := map[zoom.MediaType]uint64{}
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var p layers.Packet
		if parser.Parse(frame, &p) != nil || !p.HasUDP {
			return
		}
		if zp, err := zoom.ParsePacket(p.Payload, zoom.ModeAuto); err == nil {
			byType[zp.Media.Type] += uint64(len(frame))
		}
	}
	w.Run(opts.Start.Add(30 * time.Second))
	if byType[zoom.TypeVideo] <= 5*byType[zoom.TypeAudio] {
		t.Errorf("video bytes %d should dominate audio bytes %d", byType[zoom.TypeVideo], byType[zoom.TypeAudio])
	}
}

func TestP2PSwitchAndRevert(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	m.EnableP2P(10 * time.Second)
	a := w.NewClient("a", true)
	b := w.NewClient("b", false) // external peer so P2P crosses the border
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())

	// Before the switch delay: SFU mode.
	w.Run(opts.Start.Add(5 * time.Second))
	if m.IsP2P() {
		t.Fatal("switched to P2P too early")
	}
	w.Run(opts.Start.Add(15 * time.Second))
	if !m.IsP2P() {
		t.Fatal("did not switch to P2P")
	}
	portDuringP2P := a.mediaPort
	if portDuringP2P != a.p2pPort {
		t.Error("P2P flow does not use the STUN-announced port")
	}

	// Third participant forces revert, permanently.
	c := w.NewClient("c", true)
	m.Join(c, DefaultMediaSet())
	if m.IsP2P() {
		t.Fatal("still P2P after third join")
	}
	m.Leave(c)
	w.Run(opts.Start.Add(40 * time.Second))
	if m.IsP2P() {
		t.Error("returned to P2P after revert (must stay on SFU, §3)")
	}
}

func TestP2PTrafficVisibleAtMonitorAndSTUNPrecedes(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	m.EnableP2P(8 * time.Second)
	a := w.NewClient("a", true)
	b := w.NewClient("b", false)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())
	caps := runCapture(t, w, opts.Start.Add(25*time.Second))

	var stunAt, firstP2PAt time.Time
	var p2pCount int
	for _, c := range caps {
		if c.isSTUN && stunAt.IsZero() {
			stunAt = c.at
			if c.pkt.UDP.DstPort != stun.Port && c.pkt.UDP.SrcPort != stun.Port {
				t.Error("STUN packet not on port 3478")
			}
		}
		if c.zoomPkt != nil && !c.zoomPkt.ServerBased {
			if firstP2PAt.IsZero() {
				firstP2PAt = c.at
			}
			p2pCount++
		}
	}
	if stunAt.IsZero() {
		t.Fatal("no STUN exchange seen at monitor")
	}
	if p2pCount == 0 {
		t.Fatal("no P2P media seen at monitor")
	}
	if !stunAt.Before(firstP2PAt) {
		t.Error("STUN exchange did not precede P2P media")
	}
}

func TestIntraCampusP2PInvisible(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	m.EnableP2P(5 * time.Second)
	a := w.NewClient("a", true)
	b := w.NewClient("b", true) // both on campus
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())
	caps := runCapture(t, w, opts.Start.Add(20*time.Second))
	if !m.IsP2P() {
		t.Fatal("did not switch")
	}
	for _, c := range caps {
		if c.zoomPkt != nil && !c.zoomPkt.ServerBased && c.at.After(opts.Start.Add(6*time.Second)) {
			t.Fatal("intra-campus P2P media visible at the border monitor")
		}
	}
}

func TestRetransmissionsProduceDuplicateSeqAtMonitor(t *testing.T) {
	opts := DefaultOptions()
	opts.WanLoss = 0.05 // lossy WAN: duplicates guaranteed
	w := NewWorld(opts)
	m := w.NewMeeting()
	m.Join(w.NewClient("a", true), DefaultMediaSet())
	m.Join(w.NewClient("b", true), DefaultMediaSet())

	type key struct {
		ssrc uint32
		pt   uint8
		seq  uint16
		dir  uint8
		dst  uint16
	}
	seen := map[key]int{}
	dups := 0
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var p layers.Packet
		if parser.Parse(frame, &p) != nil || !p.HasUDP {
			return
		}
		zp, err := zoom.ParsePacket(p.Payload, zoom.ModeAuto)
		if err != nil || !zp.IsMedia() {
			return
		}
		k := key{zp.RTP.SSRC, zp.RTP.PayloadType, zp.RTP.SequenceNumber, zp.SFU.Direction, p.UDP.DstPort}
		seen[k]++
		if seen[k] == 2 {
			dups++
		}
	}
	w.Run(opts.Start.Add(30 * time.Second))
	if dups == 0 {
		t.Error("no duplicate sequence numbers at monitor despite downstream loss")
	}
}

func TestRateAdaptationUnderCongestion(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	a := w.NewClient("a", true)
	b := w.NewClient("b", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())

	// Congest the downlink from t+20s to t+40s (like the paper's
	// bandwidth-test cross-traffic).
	ep := netsim.Congestion{
		Start:       opts.Start.Add(20 * time.Second),
		End:         opts.Start.Add(40 * time.Second),
		ExtraDelay:  30 * time.Millisecond,
		ExtraJitter: 40 * time.Millisecond,
		LossRate:    0.02,
	}
	w.WanDown.Episodes = append(w.WanDown.Episodes, ep)
	w.Run(opts.Start.Add(70 * time.Second))

	// Ground truth from the receiver's QoS log: fps must dip during the
	// episode and recover after.
	entries := b.recv.QoS.Entries
	if len(entries) < 60 {
		t.Fatalf("qos entries = %d", len(entries))
	}
	avg := func(from, to time.Duration) float64 {
		var sum float64
		var n int
		for _, e := range entries {
			d := e.Time.Sub(opts.Start)
			if d >= from && d < to {
				sum += e.VideoFPS
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	before := avg(10*time.Second, 20*time.Second)
	during := avg(28*time.Second, 40*time.Second)
	after := avg(55*time.Second, 70*time.Second)
	if before < 24 {
		t.Errorf("pre-congestion fps = %v, want ≈28", before)
	}
	if during > before-6 {
		t.Errorf("during-congestion fps = %v vs before %v: no adaptation visible", during, before)
	}
	if after < before-6 {
		t.Errorf("post-congestion fps = %v, did not recover (before=%v)", after, before)
	}
}

func TestQoSLatencyHeldForFiveSeconds(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	a := w.NewClient("a", true)
	b := w.NewClient("b", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())
	w.Run(opts.Start.Add(30 * time.Second))
	entries := b.recv.QoS.Entries
	if len(entries) < 20 {
		t.Fatalf("entries = %d", len(entries))
	}
	changes := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].LatencyMS != entries[i-1].LatencyMS {
			changes++
		}
	}
	// With a 5-second refresh, at most ~1/5 of the entries change.
	if changes > len(entries)/4 {
		t.Errorf("latency changed %d times in %d entries; refresh hold broken", changes, len(entries))
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		opts := DefaultOptions()
		opts.Seed = 77
		w := NewWorld(opts)
		m := w.NewMeeting()
		m.Join(w.NewClient("a", true), DefaultMediaSet())
		m.Join(w.NewClient("b", true), DefaultMediaSet())
		w.Run(opts.Start.Add(10 * time.Second))
		return w.MonitorPackets, w.MonitorBytes
	}
	p1, b1 := run()
	p2, b2 := run()
	if p1 != p2 || b1 != b2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", p1, b1, p2, b2)
	}
}

func TestLeaveStopsStreams(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	a := w.NewClient("a", true)
	b := w.NewClient("b", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())
	w.Run(opts.Start.Add(5 * time.Second))
	m.Leave(a)
	countAt := w.MonitorPackets
	w.Run(opts.Start.Add(6 * time.Second))
	afterLeave := w.MonitorPackets - countAt
	// Only b's uplink remains (no downlinks since a left).
	w.Run(opts.Start.Add(20 * time.Second))
	if m.Participants() != 1 {
		t.Errorf("participants = %d", m.Participants())
	}
	if afterLeave == 0 {
		t.Error("remaining participant stopped sending")
	}
}

func TestMuteAndCameraToggles(t *testing.T) {
	opts := DefaultOptions()
	w := NewWorld(opts)
	m := w.NewMeeting()
	a := w.NewClient("a", true)
	b := w.NewClient("b", true)
	m.Join(a, DefaultMediaSet())
	m.Join(b, DefaultMediaSet())

	type counts struct{ audio, video int }
	perSecond := map[int64]*counts{}
	parser := &layers.Parser{}
	w.Monitor = func(at time.Time, frame []byte) {
		var p layers.Packet
		if parser.Parse(frame, &p) != nil || !p.HasUDP {
			return
		}
		zp, err := zoom.ParsePacket(p.Payload, zoom.ModeAuto)
		if err != nil || !zp.IsMedia() {
			return
		}
		// Only a's uplink streams.
		if p.SrcAddr() != a.Addr {
			return
		}
		c := perSecond[at.Unix()]
		if c == nil {
			c = &counts{}
			perSecond[at.Unix()] = c
		}
		switch zp.Media.Type {
		case zoom.TypeAudio:
			c.audio++
		case zoom.TypeVideo:
			c.video++
		}
	}

	w.Eng.Schedule(opts.Start.Add(5*time.Second), func() { a.SetMuted(true) })
	w.Eng.Schedule(opts.Start.Add(10*time.Second), func() { a.SetMuted(false) })
	w.Eng.Schedule(opts.Start.Add(15*time.Second), func() { a.SetVideoEnabled(false) })
	w.Run(opts.Start.Add(20 * time.Second))

	get := func(sec int64) counts {
		c := perSecond[opts.Start.Unix()+sec]
		if c == nil {
			return counts{}
		}
		return *c
	}
	if get(3).audio == 0 {
		t.Error("no audio before mute")
	}
	if got := get(7); got.audio != 0 {
		t.Errorf("audio while muted: %d pkts", got.audio)
	}
	if get(12).audio == 0 {
		t.Error("no audio after unmute")
	}
	if get(12).video == 0 {
		t.Error("no video before camera off")
	}
	if got := get(18); got.video != 0 {
		t.Errorf("video after camera off: %d pkts", got.video)
	}
}
