package tcprtt

import (
	"testing"
	"time"

	"zoomlens/internal/layers"
)

var t0 = time.Date(2022, 5, 5, 9, 0, 0, 0, time.UTC)

// exchange simulates, at the monitor, a client whose one-way delay to the
// monitor is dClient and a server at dServer. Client sends data at seq;
// server ACKs. The monitor sees the data at send+dClient... for
// simplicity we directly schedule what the monitor observes.
func TestToServerRTT(t *testing.T) {
	tr := NewTracker()
	// Client data passes the monitor at t0; server ACK passes at t0+30ms.
	data := &layers.TCP{Seq: 1000, Ack: 500, Flags: layers.TCPAck | layers.TCPPsh}
	tr.Observe(t0, true, data, 200)
	ack := &layers.TCP{Seq: 500, Ack: 1200, Flags: layers.TCPAck}
	tr.Observe(t0.Add(30*time.Millisecond), false, ack, 0)

	if len(tr.Samples) != 1 {
		t.Fatalf("samples = %d, want 1", len(tr.Samples))
	}
	s := tr.Samples[0]
	if s.RTT != 30*time.Millisecond {
		t.Errorf("rtt = %v, want 30ms", s.RTT)
	}
	if s.Side != ToServer {
		t.Errorf("side = %v, want to-server", s.Side)
	}
}

func TestToClientRTT(t *testing.T) {
	tr := NewTracker()
	// Server data, client ACK 8 ms later: monitor↔client leg.
	data := &layers.TCP{Seq: 9000, Ack: 100, Flags: layers.TCPAck}
	tr.Observe(t0, false, data, 50)
	ack := &layers.TCP{Seq: 100, Ack: 9050, Flags: layers.TCPAck}
	tr.Observe(t0.Add(8*time.Millisecond), true, ack, 0)
	if len(tr.Samples) != 1 || tr.Samples[0].Side != ToClient || tr.Samples[0].RTT != 8*time.Millisecond {
		t.Fatalf("samples = %+v", tr.Samples)
	}
}

func TestRetransmissionIgnoredKarn(t *testing.T) {
	tr := NewTracker()
	data := &layers.TCP{Seq: 1000, Ack: 0, Flags: layers.TCPAck}
	tr.Observe(t0, true, data, 100)
	// Retransmission of the same segment 200 ms later.
	tr.Observe(t0.Add(200*time.Millisecond), true, data, 100)
	// ACK arrives: ambiguous, must not produce a sample.
	ack := &layers.TCP{Seq: 0, Ack: 1100, Flags: layers.TCPAck}
	tr.Observe(t0.Add(230*time.Millisecond), false, ack, 0)
	if len(tr.Samples) != 0 {
		t.Fatalf("samples = %+v, want none (Karn)", tr.Samples)
	}
	// A later fresh segment samples normally again.
	data2 := &layers.TCP{Seq: 1100, Ack: 0, Flags: layers.TCPAck}
	tr.Observe(t0.Add(300*time.Millisecond), true, data2, 100)
	ack2 := &layers.TCP{Seq: 0, Ack: 1200, Flags: layers.TCPAck}
	tr.Observe(t0.Add(325*time.Millisecond), false, ack2, 0)
	if len(tr.Samples) != 1 || tr.Samples[0].RTT != 25*time.Millisecond {
		t.Fatalf("samples = %+v", tr.Samples)
	}
}

func TestCumulativeAckClearsEarlierSegmentsWithoutSampling(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 3; i++ {
		d := &layers.TCP{Seq: uint32(1000 + i*100), Flags: layers.TCPAck}
		tr.Observe(t0.Add(time.Duration(i)*time.Millisecond), true, d, 100)
	}
	// One cumulative ACK for all three segments.
	ack := &layers.TCP{Ack: 1300, Flags: layers.TCPAck}
	tr.Observe(t0.Add(40*time.Millisecond), false, ack, 0)
	if len(tr.Samples) != 1 {
		t.Fatalf("samples = %d, want 1 (only the exactly-matching segment)", len(tr.Samples))
	}
	// The matched segment was sent at t0+2ms.
	if tr.Samples[0].RTT != 38*time.Millisecond {
		t.Errorf("rtt = %v", tr.Samples[0].RTT)
	}
	// Nothing outstanding now: a duplicate ACK produces nothing.
	tr.Observe(t0.Add(50*time.Millisecond), false, ack, 0)
	if len(tr.Samples) != 1 {
		t.Errorf("duplicate ACK produced a sample")
	}
}

func TestSynCountsAsOneByte(t *testing.T) {
	tr := NewTracker()
	syn := &layers.TCP{Seq: 7000, Flags: layers.TCPSyn}
	tr.Observe(t0, true, syn, 0)
	synAck := &layers.TCP{Seq: 3000, Ack: 7001, Flags: layers.TCPSyn | layers.TCPAck}
	tr.Observe(t0.Add(12*time.Millisecond), false, synAck, 0)
	if len(tr.Samples) != 1 || tr.Samples[0].RTT != 12*time.Millisecond {
		t.Fatalf("samples = %+v", tr.Samples)
	}
}

func TestSplitDecomposition(t *testing.T) {
	tr := NewTracker()
	// Repeated exchanges: server leg 30 ms, client leg 5 ms.
	seqC, seqS := uint32(1), uint32(1)
	at := t0
	for i := 0; i < 20; i++ {
		d := &layers.TCP{Seq: seqC, Flags: layers.TCPAck}
		tr.Observe(at, true, d, 100)
		tr.Observe(at.Add(30*time.Millisecond), false, &layers.TCP{Seq: seqS, Ack: seqC + 100, Flags: layers.TCPAck}, 100)
		tr.Observe(at.Add(35*time.Millisecond), true, &layers.TCP{Seq: seqC + 100, Ack: seqS + 100, Flags: layers.TCPAck}, 0)
		seqC += 100
		seqS += 100
		at = at.Add(time.Second)
	}
	sp := tr.Split()
	if sp.ToServerSamples != 20 || sp.ToClientSamples != 20 {
		t.Fatalf("split counts = %+v", sp)
	}
	if sp.ToServerMean != 30*time.Millisecond {
		t.Errorf("server mean = %v", sp.ToServerMean)
	}
	if sp.ToClientMean != 5*time.Millisecond {
		t.Errorf("client mean = %v", sp.ToClientMean)
	}
}

func TestPureAcksProduceNoOutstanding(t *testing.T) {
	tr := NewTracker()
	for i := 0; i < 100; i++ {
		a := &layers.TCP{Seq: 1, Ack: uint32(i), Flags: layers.TCPAck}
		tr.Observe(t0.Add(time.Duration(i)*time.Millisecond), true, a, 0)
	}
	if len(tr.clientToServer.outstanding) != 0 {
		t.Errorf("outstanding = %d, want 0", len(tr.clientToServer.outstanding))
	}
}

func BenchmarkObserve(b *testing.B) {
	tr := NewTracker()
	data := &layers.TCP{Seq: 0, Flags: layers.TCPAck}
	ack := &layers.TCP{Flags: layers.TCPAck}
	at := t0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.Seq = uint32(i * 100)
		tr.Observe(at, true, data, 100)
		ack.Ack = uint32(i*100 + 100)
		tr.Observe(at.Add(time.Millisecond), false, ack, 0)
		at = at.Add(2 * time.Millisecond)
	}
}
