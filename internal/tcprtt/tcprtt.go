// Package tcprtt measures round-trip times of TCP connections passively
// by matching the sequence numbers of outgoing data segments with the
// acknowledgment numbers of incoming segments, the technique the paper
// uses on Zoom's TLS control connection as a proxy for media latency
// (§5.3 method 2, Figure 11).
//
// A monitor between client and server sees both directions. For a
// segment travelling client→server, the time until the server's ACK
// passes the monitor measures the monitor↔server RTT; for a
// server→client segment, the matching client ACK measures the
// monitor↔client RTT. The difference localizes congestion upstream or
// downstream of the vantage point.
//
// Karn's rule is applied: segments whose sequence range was already
// outstanding (retransmissions) are not used for samples.
package tcprtt

import (
	"time"

	"zoomlens/internal/layers"
)

// Side labels which leg of the path a sample measured, relative to the
// monitor.
type Side int

// Sample sides.
const (
	// ToServer samples measure monitor → server → monitor.
	ToServer Side = iota
	// ToClient samples measure monitor → client → monitor.
	ToClient
)

func (s Side) String() string {
	if s == ToServer {
		return "to-server"
	}
	return "to-client"
}

// Sample is one RTT measurement.
type Sample struct {
	Time time.Time
	RTT  time.Duration
	Side Side
}

// Tracker measures one TCP connection. Create with NewTracker, feed every
// packet of the connection (both directions) to Observe in capture order.
type Tracker struct {
	// MaxOutstanding bounds the per-direction table of unacked segments.
	MaxOutstanding int
	// Samples accumulates measurements in arrival order.
	Samples []Sample

	clientToServer dirState // data sent by client, acked by server
	serverToClient dirState
}

type dirState struct {
	// outstanding maps an expected ack number (seq+len) to send time.
	outstanding map[uint32]time.Time
	// retx marks expected-ack values seen more than once (Karn).
	retx map[uint32]bool
	// highestSeen tracks the highest end-of-segment for retransmission
	// detection.
	highestEnd uint32
	started    bool
}

func (d *dirState) init() {
	if d.outstanding == nil {
		d.outstanding = make(map[uint32]time.Time)
		d.retx = make(map[uint32]bool)
	}
}

// NewTracker returns a tracker for one connection. clientIsSrc tells
// Observe which direction is client→server: pass the client's 5-tuple
// orientation via the first argument of Observe instead (fromClient).
func NewTracker() *Tracker {
	return &Tracker{MaxOutstanding: 4096}
}

// Observe ingests one TCP packet. fromClient reports the packet's
// direction (true: client→server). The TCP header and payload length come
// from the decoded packet.
func (t *Tracker) Observe(at time.Time, fromClient bool, tcp *layers.TCP, payloadLen int) {
	var sendDir, ackDir *dirState
	var side Side
	if fromClient {
		sendDir, ackDir = &t.clientToServer, &t.serverToClient
		side = ToClient // the ACK we may carry answers server data; see below
	} else {
		sendDir, ackDir = &t.serverToClient, &t.clientToServer
		side = ToServer
	}
	sendDir.init()
	ackDir.init()

	// Record outgoing data (SYN and FIN each consume one sequence number
	// and elicit an ACK too).
	seqLen := uint32(payloadLen)
	if tcp.Flags.Has(layers.TCPSyn) || tcp.Flags.Has(layers.TCPFin) {
		seqLen++
	}
	if seqLen > 0 {
		expectedAck := tcp.Seq + seqLen
		if _, dup := sendDir.outstanding[expectedAck]; dup || (sendDir.started && seq32LE(expectedAck, sendDir.highestEnd)) {
			// Retransmission or old data: poison this ack value (Karn).
			sendDir.retx[expectedAck] = true
			sendDir.outstanding[expectedAck] = at
		} else {
			sendDir.outstanding[expectedAck] = at
			if !sendDir.started || seq32LE(sendDir.highestEnd, expectedAck) {
				sendDir.highestEnd = expectedAck
				sendDir.started = true
			}
		}
		if len(sendDir.outstanding) > t.MaxOutstanding {
			sendDir.evictBefore(at.Add(-10 * time.Second))
		}
	}

	// Match this packet's ACK against the opposite direction's
	// outstanding data. The sample side: an ACK travelling
	// client→server answers data the monitor saw going server→client
	// earlier; the elapsed time is monitor→client→monitor (ToClient).
	if tcp.Flags.Has(layers.TCPAck) {
		if sent, ok := ackDir.outstanding[tcp.Ack]; ok {
			if !ackDir.retx[tcp.Ack] {
				rtt := at.Sub(sent)
				if rtt >= 0 {
					t.Samples = append(t.Samples, Sample{Time: at, RTT: rtt, Side: side})
				}
			}
			delete(ackDir.outstanding, tcp.Ack)
			delete(ackDir.retx, tcp.Ack)
			// A cumulative ACK also covers all earlier outstanding
			// segments; drop them without sampling (their exact ack time
			// is unknown).
			for exp := range ackDir.outstanding {
				if seq32LE(exp, tcp.Ack) {
					delete(ackDir.outstanding, exp)
					delete(ackDir.retx, exp)
				}
			}
		}
	}
}

func (d *dirState) evictBefore(cut time.Time) {
	for k, at := range d.outstanding {
		if at.Before(cut) {
			delete(d.outstanding, k)
			delete(d.retx, k)
		}
	}
}

// seq32LE reports a ≤ b in 32-bit serial arithmetic.
func seq32LE(a, b uint32) bool {
	return a == b || int32(b-a) > 0
}

// SplitStats summarizes RTT per side: the decomposition the paper uses to
// place congestion inside or outside the campus.
type SplitStats struct {
	ToServerSamples int
	ToClientSamples int
	ToServerMean    time.Duration
	ToClientMean    time.Duration
}

// Split computes per-side means.
func (t *Tracker) Split() SplitStats {
	var s SplitStats
	var sumS, sumC time.Duration
	for _, sm := range t.Samples {
		if sm.Side == ToServer {
			s.ToServerSamples++
			sumS += sm.RTT
		} else {
			s.ToClientSamples++
			sumC += sm.RTT
		}
	}
	if s.ToServerSamples > 0 {
		s.ToServerMean = sumS / time.Duration(s.ToServerSamples)
	}
	if s.ToClientSamples > 0 {
		s.ToClientMean = sumC / time.Duration(s.ToClientSamples)
	}
	return s
}
