package tcprtt

import (
	"slices"
	"time"

	"zoomlens/internal/statecodec"
)

// Checkpoint boundary for the TCP RTT tracker: samples already taken
// plus both directions' outstanding-segment tables (an ACK arriving
// after restore must still match data sent before the checkpoint).

const trackerStateV1 = 1

// State encodes the tracker for a checkpoint.
func (t *Tracker) State(w *statecodec.Writer) {
	w.U8(trackerStateV1)
	w.Int(t.MaxOutstanding)
	w.Int(len(t.Samples))
	for _, s := range t.Samples {
		w.Time(s.Time)
		w.Duration(s.RTT)
		w.U8(uint8(s.Side))
	}
	t.clientToServer.state(w)
	t.serverToClient.state(w)
}

func (d *dirState) state(w *statecodec.Writer) {
	w.Bool(d.started)
	w.U32(d.highestEnd)
	keys := make([]uint32, 0, len(d.outstanding))
	for k := range d.outstanding {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.U32(k)
		w.Time(d.outstanding[k])
		w.Bool(d.retx[k])
	}
}

// Restore rebuilds the tracker from a checkpoint, replacing all state.
func (t *Tracker) Restore(r *statecodec.Reader) error {
	r.Version("tcprtt.Tracker", trackerStateV1)
	t.MaxOutstanding = r.Int()
	n := r.Count(3)
	t.Samples = make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		s := Sample{Time: r.Time(), RTT: r.Duration(), Side: Side(r.U8())}
		if r.Err() != nil {
			return r.Err()
		}
		t.Samples = append(t.Samples, s)
	}
	if err := t.clientToServer.restore(r); err != nil {
		return err
	}
	if err := t.serverToClient.restore(r); err != nil {
		return err
	}
	return r.Err()
}

func (d *dirState) restore(r *statecodec.Reader) error {
	d.started = r.Bool()
	d.highestEnd = r.U32()
	n := r.Count(3)
	d.outstanding = make(map[uint32]time.Time, n)
	d.retx = make(map[uint32]bool, n)
	for i := 0; i < n; i++ {
		k := r.U32()
		at := r.Time()
		retx := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		d.outstanding[k] = at
		if retx {
			d.retx[k] = true
		}
	}
	return r.Err()
}
