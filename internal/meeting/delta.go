package meeting

import (
	"slices"

	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Delta checkpoints for the duplicate detector re-serialize only stream
// records whose dirty bit is set, plus the full (order-sensitive) bySSRC
// lists of SSRC keys whose membership changed. Stream records are never
// deleted from d.streams — Evict only unlinks them from the index — so
// there are no tombstones: a delta is scalars + upserts + list rewrites.

// dedupDeltaV2 added the protocol byte inside every encoded
// zoom.StreamKey; V1 deltas are rejected by version.
const (
	dedupDeltaV1 = 1
	dedupDeltaV2 = 2
)

func (d *Dedup) markSSRCDirty(k zoom.StreamKey) {
	if !d.armed {
		return
	}
	if d.dirtySSRC == nil {
		d.dirtySSRC = make(map[zoom.StreamKey]struct{})
	}
	d.dirtySSRC[k] = struct{}{}
}

// MarkCheckpointed resets delta tracking after a checkpoint encode (full
// or delta) or a restore, arming the detector for the next delta.
func (d *Dedup) MarkCheckpointed() {
	for _, s := range d.streams {
		s.dirty = false
	}
	clear(d.dirtySSRC)
	d.armed = true
}

// Disarm turns delta tracking off.
func (d *Dedup) Disarm() {
	d.dirtySSRC = nil
	d.armed = false
}

func (d *Dedup) encodeScalars(w *statecodec.Writer) {
	w.I64(d.TSWindow)
	w.Duration(d.TimeWindow)
	w.Int(d.MaxStreams)
	w.U64(d.Dropped)
	w.I64(int64(d.nextID))
}

func (d *Dedup) decodeScalars(r *statecodec.Reader) {
	d.TSWindow = r.I64()
	d.TimeWindow = r.Duration()
	d.MaxStreams = r.Int()
	d.Dropped = r.U64()
	d.nextID = UnifiedID(r.I64())
}

func sortedFlowKeys(keys []flowKey) {
	slices.SortFunc(keys, func(a, b flowKey) int {
		if c := a.flow.Compare(b.flow); c != 0 {
			return c
		}
		return a.key.Compare(b.key)
	})
}

// StateDelta encodes the detector mutations since the last checkpoint
// encode. Dirty stream records are written whole, keyed by (flow, key);
// each dirty SSRC's index list is rewritten as an ordered sequence of
// (flow, key) references so insertion order — which matchExisting's
// tie-break depends on — survives the round trip. Callers must call
// MarkCheckpointed after a successful encode.
func (d *Dedup) StateDelta(w *statecodec.Writer) {
	w.U8(dedupDeltaV2)
	d.encodeScalars(w)

	dirty := make([]flowKey, 0, 64)
	for k, s := range d.streams {
		if s.dirty {
			dirty = append(dirty, k)
		}
	}
	sortedFlowKeys(dirty)
	w.Int(len(dirty))
	for _, k := range dirty {
		s := d.streams[k]
		s.flow.EncodeTo(w)
		s.key.EncodeTo(w)
		w.I64(int64(s.unified))
		w.Time(s.firstSeen)
		w.Time(s.lastSeen)
		w.U32(s.firstTS)
		w.U32(s.lastTS)
		w.Bool(s.evicted)
	}

	ssrcKeys := make([]zoom.StreamKey, 0, len(d.dirtySSRC))
	for k := range d.dirtySSRC {
		ssrcKeys = append(ssrcKeys, k)
	}
	slices.SortFunc(ssrcKeys, zoom.StreamKey.Compare)
	w.Int(len(ssrcKeys))
	for _, k := range ssrcKeys {
		k.EncodeTo(w)
		list := d.bySSRC[k] // nil (deleted key) encodes as an empty list
		w.Int(len(list))
		for _, s := range list {
			s.flow.EncodeTo(w)
			s.key.EncodeTo(w)
		}
	}
}

// ApplyDelta replays a StateDelta record: dirty streams upserted whole,
// then each rewritten SSRC list rebuilt by resolving its (flow, key)
// references against the stream table (an empty list deletes the key).
// On error the detector may hold partially applied state and must be
// discarded.
func (d *Dedup) ApplyDelta(r *statecodec.Reader) error {
	r.Version("meeting.Dedup delta", dedupDeltaV2)
	d.decodeScalars(r)

	n := r.Count(12)
	for i := 0; i < n; i++ {
		flow := layers.DecodeFiveTuple(r)
		key := zoom.DecodeStreamKey(r)
		if r.Err() != nil {
			return r.Err()
		}
		k := flowKey{flow, key}
		s := d.streams[k]
		if s == nil {
			s = &streamState{flow: flow, key: key}
			d.streams[k] = s
		}
		s.unified = UnifiedID(r.I64())
		s.firstSeen = r.Time()
		s.lastSeen = r.Time()
		s.firstTS = r.U32()
		s.lastTS = r.U32()
		s.evicted = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
	}

	nk := r.Count(4)
	for i := 0; i < nk; i++ {
		k := zoom.DecodeStreamKey(r)
		nl := r.Count(1)
		if r.Err() != nil {
			return r.Err()
		}
		if nl == 0 {
			delete(d.bySSRC, k)
			continue
		}
		list := make([]*streamState, 0, nl)
		for j := 0; j < nl; j++ {
			ref := flowKey{layers.DecodeFiveTuple(r), zoom.DecodeStreamKey(r)}
			if r.Err() != nil {
				return r.Err()
			}
			s := d.streams[ref]
			if s == nil {
				r.Failf("meeting.Dedup delta dangling stream ref %v", ref.flow)
				return r.Err()
			}
			list = append(list, s)
		}
		d.bySSRC[k] = list
	}
	if r.Err() != nil {
		return r.Err()
	}
	d.MarkCheckpointed()
	return nil
}
