package meeting

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/zoom"
)

var t0 = time.Date(2022, 5, 5, 10, 0, 0, 0, time.UTC)

func ft(src string, sport uint16, dst string, dport uint16) layers.FiveTuple {
	return layers.FiveTuple{
		Src: netip.MustParseAddr(src), Dst: netip.MustParseAddr(dst),
		SrcPort: sport, DstPort: dport, Proto: layers.ProtoUDP,
	}
}

var (
	sfu      = "52.81.3.4"
	c1       = "10.8.1.2"
	c2       = "10.8.7.7"
	vKey     = zoom.StreamKey{SSRC: 100, Type: zoom.TypeVideo}
	up1      = ft(c1, 52000, sfu, 8801) // C1 → SFU
	down2    = ft(sfu, 8801, c2, 61000) // SFU → C2 (copy of C1's stream)
	serverIs = func(a netip.Addr) bool { return a == netip.MustParseAddr(sfu) }
)

func feed(d *Dedup, flow layers.FiveTuple, key zoom.StreamKey, start time.Time, startSeq uint16, startTS uint32, n int) UnifiedID {
	var last UnifiedID
	for i := 0; i < n; i++ {
		last = d.Observe(StreamObs{
			Time: start.Add(time.Duration(i) * 33 * time.Millisecond),
			Flow: flow, Key: key,
			Seq: startSeq + uint16(i), TS: startTS + uint32(i)*2970,
		})
	}
	return last
}

func TestDedupLinksSFUCopy(t *testing.T) {
	d := NewDedup()
	id1 := feed(d, up1, vKey, t0, 0, 10000, 30)
	// The SFU-forwarded copy appears 40 ms later with the same SSRC and
	// nearly the same timestamps on a different 5-tuple.
	id2 := feed(d, down2, vKey, t0.Add(40*time.Millisecond), 0, 10000, 30)
	if id1 != id2 {
		t.Errorf("copy got unified ID %d, want %d", id2, id1)
	}
}

func TestDedupLinksP2PTransition(t *testing.T) {
	d := NewDedup()
	id1 := feed(d, up1, vKey, t0, 0, 10000, 30)
	// Meeting switches to P2P: new 5-tuple with fresh ports, same SSRC,
	// RTP timeline continues.
	p2p := ft(c1, 52999, "203.0.113.9", 47000)
	id2 := feed(d, p2p, vKey, t0.Add(time.Second), 30, 10000+30*2970, 30)
	if id1 != id2 {
		t.Errorf("post-transition stream got ID %d, want %d", id2, id1)
	}
}

func TestDedupDistinguishesSameSSRCFarApart(t *testing.T) {
	d := NewDedup()
	id1 := feed(d, up1, vKey, t0, 0, 10000, 10)
	// Same SSRC in a *different meeting* hours later with unrelated
	// timestamps: must NOT link (SSRCs are only unique per meeting).
	other := ft(c2, 61500, sfu, 8801)
	id2 := feed(d, other, vKey, t0.Add(3*time.Hour), 0, 3_000_000_000, 10)
	if id1 == id2 {
		t.Error("unrelated streams with recycled SSRC were linked")
	}
}

func TestDedupTimestampWindowEnforced(t *testing.T) {
	d := NewDedup()
	id1 := feed(d, up1, vKey, t0, 0, 10000, 10)
	// Same SSRC immediately after, but timestamps far outside the window.
	other := ft(c2, 61500, sfu, 8801)
	id2 := feed(d, other, vKey, t0.Add(time.Second), 0, 10000+100*zoom.VideoClockRate, 10)
	if id1 == id2 {
		t.Error("streams with distant RTP timestamps were linked")
	}
}

func TestDedupSameFlowRestartKeepsID(t *testing.T) {
	d := NewDedup()
	id1 := feed(d, up1, vKey, t0, 0, 10000, 5)
	id2 := feed(d, up1, vKey, t0.Add(time.Minute), 5, 10000+5*2970, 5)
	if id1 != id2 {
		t.Error("same (flow, SSRC) stream changed unified ID")
	}
}

func TestClientOf(t *testing.T) {
	co := ClientOf(serverIs)
	if got := co(up1); got != netip.MustParseAddrPort("10.8.1.2:52000") {
		t.Errorf("client of uplink = %v", got)
	}
	if got := co(down2); got != netip.MustParseAddrPort("10.8.7.7:61000") {
		t.Errorf("client of downlink = %v", got)
	}
	p2p := ft(c1, 52999, "203.0.113.9", 47000)
	if got := co(p2p); got != netip.MustParseAddrPort("10.8.1.2:52999") {
		t.Errorf("client of p2p = %v", got)
	}
}

// TestGroupTwoPartyMeeting reproduces Figure 8: two participants, each
// sending an audio stream through the SFU, observed on four flows (two
// uplinks, two downlinks). The heuristic must infer a single meeting with
// two clients.
func TestGroupTwoPartyMeeting(t *testing.T) {
	d := NewDedup()
	aKey1 := zoom.StreamKey{SSRC: 200, Type: zoom.TypeAudio}
	aKey2 := zoom.StreamKey{SSRC: 201, Type: zoom.TypeAudio}
	up1 := ft(c1, 52000, sfu, 8801)
	down1 := ft(sfu, 8801, c1, 52000)
	up2 := ft(c2, 61000, sfu, 8801)
	down2 := ft(sfu, 8801, c2, 61000)

	feed(d, up1, aKey1, t0, 0, 5000, 50)                            // S1: C1 → SFU
	feed(d, down2, aKey1, t0.Add(45*time.Millisecond), 0, 5000, 50) // S1 copy: SFU → C2
	feed(d, up2, aKey2, t0.Add(time.Second), 0, 9000, 50)           // S2: C2 → SFU
	feed(d, down1, aKey2, t0.Add(time.Second+45*time.Millisecond), 0, 9000, 50)

	meetings := Group(d.Records(ClientOf(serverIs)))
	if len(meetings) != 1 {
		t.Fatalf("meetings = %d, want 1", len(meetings))
	}
	m := meetings[0]
	if got := m.Participants(); got != 2 {
		t.Errorf("participants = %d, want 2", got)
	}
	if len(m.Streams) != 2 {
		t.Errorf("unified streams = %d, want 2", len(m.Streams))
	}
}

func TestGroupSeparateMeetingsStaySeparate(t *testing.T) {
	d := NewDedup()
	feed(d, ft(c1, 52000, sfu, 8801), zoom.StreamKey{SSRC: 300, Type: zoom.TypeVideo}, t0, 0, 1000, 20)
	feed(d, ft(c2, 61000, sfu, 8801), zoom.StreamKey{SSRC: 301, Type: zoom.TypeVideo}, t0.Add(time.Minute), 0, 900000, 20)
	meetings := Group(d.Records(ClientOf(serverIs)))
	if len(meetings) != 2 {
		t.Fatalf("meetings = %d, want 2", len(meetings))
	}
}

func TestGroupMergesViaSharedClient(t *testing.T) {
	// A client adds screen share mid-meeting: new SSRC, same client
	// IP+port → same meeting.
	d := NewDedup()
	feed(d, ft(c1, 52000, sfu, 8801), zoom.StreamKey{SSRC: 400, Type: zoom.TypeVideo}, t0, 0, 1000, 20)
	feed(d, ft(c1, 52000, sfu, 8801), zoom.StreamKey{SSRC: 401, Type: zoom.TypeScreenShare}, t0.Add(30*time.Second), 0, 500000, 20)
	meetings := Group(d.Records(ClientOf(serverIs)))
	if len(meetings) != 1 {
		t.Fatalf("meetings = %d, want 1", len(meetings))
	}
	if len(meetings[0].Streams) != 2 {
		t.Errorf("streams = %d, want 2", len(meetings[0].Streams))
	}
}

func TestGroupMergeViaUnifiedStream(t *testing.T) {
	// Two clients first appear as separate meetings; a stream copy that
	// links them (same unified ID seen at both) must merge the meetings.
	g := NewGrouper()
	cl1 := netip.MustParseAddrPort("10.8.1.2:52000")
	cl2 := netip.MustParseAddrPort("10.8.7.7:61000")
	m1 := g.Add(StreamRecord{Unified: 1, Client: cl1, Start: t0, End: t0.Add(time.Minute)})
	m2 := g.Add(StreamRecord{Unified: 2, Client: cl2, Start: t0, End: t0.Add(time.Minute)})
	if m1 == m2 {
		t.Fatal("expected two meetings initially")
	}
	// Stream 1's copy arrives at client 2.
	m3 := g.Add(StreamRecord{Unified: 1, Client: cl2, Start: t0.Add(time.Second), End: t0.Add(time.Minute)})
	ms := g.Meetings()
	if len(ms) != 1 {
		t.Fatalf("meetings after merge = %d, want 1", len(ms))
	}
	if m3 != ms[0].ID {
		t.Errorf("Add returned %d, meeting is %d", m3, ms[0].ID)
	}
	if got := ms[0].Participants(); got != 2 {
		t.Errorf("participants = %d", got)
	}
}

// TestGroupNATLimitation documents the Figure 9 limitation: two distinct
// meetings behind one NAT IP are (incorrectly but expectedly) merged.
func TestGroupNATLimitation(t *testing.T) {
	g := NewGrouper()
	nat := netip.MustParseAddr("10.8.200.1")
	g.Add(StreamRecord{Unified: 1, Client: netip.AddrPortFrom(nat, 40000), Start: t0, End: t0.Add(time.Minute)})
	g.Add(StreamRecord{Unified: 2, Client: netip.AddrPortFrom(nat, 40001), Start: t0, End: t0.Add(time.Minute)})
	if got := len(g.Meetings()); got != 1 {
		t.Errorf("meetings = %d; the NAT limitation should merge them", got)
	}
}

func TestMeetingTimeSpan(t *testing.T) {
	g := NewGrouper()
	cl := netip.MustParseAddrPort("10.8.1.2:52000")
	g.Add(StreamRecord{Unified: 1, Client: cl, Start: t0.Add(time.Minute), End: t0.Add(2 * time.Minute)})
	g.Add(StreamRecord{Unified: 2, Client: cl, Start: t0, End: t0.Add(90 * time.Second)})
	m := g.Meetings()[0]
	if !m.Start.Equal(t0) || !m.End.Equal(t0.Add(2*time.Minute)) {
		t.Errorf("span = [%v, %v]", m.Start, m.End)
	}
}

func BenchmarkDedupObserve(b *testing.B) {
	d := NewDedup()
	obs := StreamObs{Flow: up1, Key: vKey, TS: 1000}
	at := t0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs.Time = at
		obs.Seq = uint16(i)
		obs.TS = uint32(i) * 2970
		d.Observe(obs)
		at = at.Add(33 * time.Millisecond)
	}
}
