// Package meeting implements the two-step heuristic of §4.3 that groups
// observed media streams into Zoom meetings without any meeting
// identifier in the packets:
//
// Step 1 (duplicate detection): streams are keyed by IP 5-tuple and SSRC.
// When a new stream starts, an existing stream with the same SSRC but a
// different 5-tuple whose most recent RTP timestamp is within a small
// range of the new stream's first timestamp is the *same media* — either
// an SFU-forwarded copy traversing the monitor twice, or the same stream
// after an SFU↔P2P transition (Zoom's SFU does not rewrite timestamps or
// sequence numbers). All such streams share a unified stream ID.
//
// Step 2 (meeting assignment): stream records are assigned to meetings
// via three mappings — unified stream ID, client IP, and client IP+port.
// Any match joins the stream to that meeting; matches pointing at
// different meetings merge them; no match creates a meeting.
//
// The heuristic's documented limitations (passive participants are
// invisible; NAT can merge distinct meetings — Figure 9) hold here too
// and are exercised in the tests.
package meeting

import (
	"net/netip"
	"sort"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// UnifiedID identifies one logical media stream (a participant's audio,
// video, or screen share) across all its observed copies.
type UnifiedID int

// StreamObs is the per-packet observation fed to step 1.
type StreamObs struct {
	Time time.Time
	Flow layers.FiveTuple
	Key  zoom.StreamKey
	Seq  uint16
	TS   uint32
}

// streamState is the per-(flow, SSRC, type) record kept by the detector.
type streamState struct {
	unified   UnifiedID
	firstSeen time.Time
	lastSeen  time.Time
	firstTS   uint32
	lastTS    uint32
	flow      layers.FiveTuple
	key       zoom.StreamKey
	// evicted marks states removed from the copy-linkage index by Evict.
	evicted bool
	// dirty marks the record as mutated since the last checkpoint encode
	// (delta checkpoints re-serialize only dirty records).
	dirty bool
}

// Dedup performs step 1. It is deliberately streaming: each observation
// either lands in an existing stream or creates one, possibly linking it
// to an existing unified stream.
type Dedup struct {
	// TSWindow is the maximum RTP-timestamp distance between an existing
	// stream's most recent timestamp and a new stream's first timestamp
	// for them to be considered copies. The default (§4.3.2 "a small
	// range") corresponds to two seconds of 90 kHz video.
	TSWindow int64
	// TimeWindow bounds the wall-clock gap for the same linkage.
	TimeWindow time.Duration
	// MaxStreams caps the number of stream records the detector retains
	// (0 = unlimited). At the cap, observations for new streams are
	// assigned fresh unified IDs but not stored — they are invisible to
	// Records() and counted in Dropped, so a flood of garbage streams
	// cannot grow the detector without bound.
	MaxStreams int
	// Dropped counts stream records turned away at MaxStreams.
	Dropped uint64

	streams map[flowKey]*streamState
	// bySSRC indexes live streams for copy lookup.
	bySSRC map[zoom.StreamKey][]*streamState
	nextID UnifiedID

	// Delta-checkpoint tracking (see delta.go). armed turns on
	// dirty-SSRC-list recording; it is set by the first checkpoint
	// encode, so runs that never checkpoint pay nothing.
	armed     bool
	dirtySSRC map[zoom.StreamKey]struct{}
}

type flowKey struct {
	flow layers.FiveTuple
	key  zoom.StreamKey
}

// NewDedup returns a detector with the default windows.
func NewDedup() *Dedup {
	return &Dedup{
		TSWindow:   2 * zoom.VideoClockRate,
		TimeWindow: 10 * time.Second,
		streams:    make(map[flowKey]*streamState),
		bySSRC:     make(map[zoom.StreamKey][]*streamState),
	}
}

// Observe ingests one media packet observation and returns the unified
// stream ID it belongs to.
func (d *Dedup) Observe(o StreamObs) UnifiedID {
	k := flowKey{o.Flow, o.Key}
	if s, ok := d.streams[k]; ok {
		s.lastSeen = o.Time
		s.lastTS = o.TS
		s.dirty = true
		return s.unified
	}
	s := &streamState{
		firstSeen: o.Time,
		lastSeen:  o.Time,
		firstTS:   o.TS,
		lastTS:    o.TS,
		flow:      o.Flow,
		key:       o.Key,
	}
	// Step 1 linkage: same SSRC+type on a different 5-tuple with an RTP
	// timestamp in range.
	s.unified = d.matchExisting(o)
	if s.unified == 0 {
		d.nextID++
		s.unified = d.nextID
	}
	if d.MaxStreams > 0 && len(d.streams) >= d.MaxStreams {
		d.Dropped++
		return s.unified
	}
	s.dirty = true
	d.streams[k] = s
	d.bySSRC[o.Key] = append(d.bySSRC[o.Key], s)
	d.markSSRCDirty(o.Key)
	return s.unified
}

func (d *Dedup) matchExisting(o StreamObs) UnifiedID {
	best := UnifiedID(0)
	var bestGap int64 = 1 << 62
	for _, cand := range d.bySSRC[o.Key] {
		if cand.flow == o.Flow {
			continue
		}
		if o.Time.Sub(cand.lastSeen) > d.TimeWindow || cand.firstSeen.After(o.Time) {
			continue
		}
		gap := rtp.TSDiff(cand.lastTS, o.TS)
		if gap < 0 {
			gap = -gap
		}
		if gap <= d.TSWindow && gap < bestGap {
			bestGap = gap
			best = cand.unified
		}
	}
	return best
}

// StreamRecord is the step-2 input: one observed stream with its unified
// identity and the endpoint judged to be the client.
type StreamRecord struct {
	Unified UnifiedID
	Flow    layers.FiveTuple
	Key     zoom.StreamKey
	Start   time.Time
	End     time.Time
	// Client is the campus/client endpoint of the flow (not the SFU).
	Client netip.AddrPort
}

// Evict drops live-matching state for streams idle since before cutoff.
// Their identity survives in the records the detector has already
// produced (and reproduces via Records); only the copy-linkage indexes
// shrink, so very old streams can no longer be linked to new ones —
// which is also correct, since the TimeWindow would reject them anyway.
func (d *Dedup) Evict(cutoff time.Time) {
	for _, s := range d.streams {
		if s.evicted || s.lastSeen.After(cutoff) {
			continue
		}
		// Remove from the SSRC index but keep the record for Records().
		list := d.bySSRC[s.key]
		for i, cand := range list {
			if cand == s {
				d.bySSRC[s.key] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(d.bySSRC[s.key]) == 0 {
			delete(d.bySSRC, s.key)
		}
		s.evicted = true
		s.dirty = true
		d.markSSRCDirty(s.key)
	}
}

// Len reports the number of retained stream records (for the
// observability occupancy gauges; compare against MaxStreams).
func (d *Dedup) Len() int { return len(d.streams) }

// Records returns one StreamRecord per observed (flow, SSRC, type)
// stream, ordered by start time, deriving the client endpoint with
// clientOf.
func (d *Dedup) Records(clientOf func(layers.FiveTuple) netip.AddrPort) []StreamRecord {
	return d.RecordsBy(func(ft layers.FiveTuple, _ zoom.StreamKey) netip.AddrPort {
		return clientOf(ft)
	})
}

// RecordsBy is Records with a key-aware client derivation: clientOf also
// receives the stream's key, so multi-protocol pipelines can apply
// per-protocol endpoint conventions (see ClientOfProto).
func (d *Dedup) RecordsBy(clientOf func(layers.FiveTuple, zoom.StreamKey) netip.AddrPort) []StreamRecord {
	out := make([]StreamRecord, 0, len(d.streams))
	flowKeys := make([]string, 0, len(d.streams))
	for _, s := range d.streams {
		out = append(out, StreamRecord{
			Unified: s.unified,
			Flow:    s.flow,
			Key:     s.key,
			Start:   s.firstSeen,
			End:     s.lastSeen,
			Client:  clientOf(s.flow, s.key),
		})
		// Rendered once up front: String() inside the comparator would
		// allocate O(n log n) strings.
		flowKeys = append(flowKeys, s.flow.String())
	}
	order := make([]int, len(out))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		if flowKeys[i] != flowKeys[j] {
			return flowKeys[i] < flowKeys[j]
		}
		// Full tiebreak keeps the order deterministic when two streams of
		// one flow start on the same packet timestamp.
		if out[i].Key.SSRC != out[j].Key.SSRC {
			return out[i].Key.SSRC < out[j].Key.SSRC
		}
		return out[i].Key.Type < out[j].Key.Type
	})
	sorted := make([]StreamRecord, len(out))
	for pos, idx := range order {
		sorted[pos] = out[idx]
	}
	return sorted
}

// ClientOf returns a 5-tuple's client endpoint using the convention of
// the paper's capture: the side that is not a Zoom server. serverIs
// reports whether an address belongs to Zoom; for P2P flows (neither side
// a server) the source endpoint is used, so both directions of a P2P flow
// yield that flow's two participants.
func ClientOf(serverIs func(netip.Addr) bool) func(layers.FiveTuple) netip.AddrPort {
	return func(ft layers.FiveTuple) netip.AddrPort {
		switch {
		case serverIs(ft.Src) && !serverIs(ft.Dst):
			return netip.AddrPortFrom(ft.Dst, ft.DstPort)
		case serverIs(ft.Dst) && !serverIs(ft.Src):
			return netip.AddrPortFrom(ft.Src, ft.SrcPort)
		default:
			return netip.AddrPortFrom(ft.Src, ft.SrcPort)
		}
	}
}

// ClientOfProto derives client endpoints per protocol. Zoom streams
// (StreamKey.Proto zero) keep the ClientOf convention exactly — the side
// that is not a Zoom server — so Zoom-only results are unchanged. Other
// protocols publish no server prefixes; the only structural hint is
// campus membership, so the campus side of the flow is the client (the
// source endpoint when membership does not disambiguate, mirroring
// ClientOf's P2P fallback).
func ClientOfProto(zoomServerIs, campusIs func(netip.Addr) bool) func(layers.FiveTuple, zoom.StreamKey) netip.AddrPort {
	zoomOf := ClientOf(zoomServerIs)
	return func(ft layers.FiveTuple, key zoom.StreamKey) netip.AddrPort {
		if key.Proto == 0 {
			return zoomOf(ft)
		}
		switch {
		case campusIs(ft.Src) && !campusIs(ft.Dst):
			return netip.AddrPortFrom(ft.Src, ft.SrcPort)
		case campusIs(ft.Dst) && !campusIs(ft.Src):
			return netip.AddrPortFrom(ft.Dst, ft.DstPort)
		default:
			return netip.AddrPortFrom(ft.Src, ft.SrcPort)
		}
	}
}

// Meeting is one inferred meeting: the set of unified streams, client
// endpoints, and its observed time span.
type Meeting struct {
	ID      int
	Streams []UnifiedID
	Clients []netip.AddrPort
	Start   time.Time
	End     time.Time
	// Proto is the protocol-plugin ID every stream of this meeting
	// decoded under (rtcproto.ID numeric value). Meetings never span
	// applications: the grouper's client-endpoint maps are qualified by
	// protocol, so a host running Zoom and a standards-RTC app
	// concurrently yields two meetings.
	Proto uint8
}

// Participants estimates the number of active participants as the count
// of distinct client IP addresses (§4.3's accuracy caveats apply).
func (m *Meeting) Participants() int {
	ips := map[netip.Addr]struct{}{}
	for _, c := range m.Clients {
		ips[c.Addr()] = struct{}{}
	}
	return len(ips)
}

// Grouper performs step 2 over stream records.
//
// The client maps are qualified by protocol plugin: a campus host in a
// Zoom meeting and a WebRTC call at once must not have the two merged
// into one "meeting" just because the client IP matches. Unified IDs
// need no qualification — step 1 keys streams by zoom.StreamKey, which
// already embeds Proto, so a unified stream can never span protocols.
type Grouper struct {
	nextMeeting int
	byUnified   map[UnifiedID]int
	byClientIP  map[clientIPKey]int
	byClient    map[clientKey]int
	meetings    map[int]*meetingState
}

type clientKey struct {
	ep    netip.AddrPort
	proto uint8
}

type clientIPKey struct {
	addr  netip.Addr
	proto uint8
}

type meetingState struct {
	id      int
	proto   uint8
	streams map[UnifiedID]struct{}
	clients map[netip.AddrPort]struct{}
	start   time.Time
	end     time.Time
}

// NewGrouper returns an empty grouper.
func NewGrouper() *Grouper {
	return &Grouper{
		byUnified:  make(map[UnifiedID]int),
		byClientIP: make(map[clientIPKey]int),
		byClient:   make(map[clientKey]int),
		meetings:   make(map[int]*meetingState),
	}
}

// Add assigns one stream record to a meeting, merging meetings when the
// record's keys match more than one, and returns the meeting ID.
func (g *Grouper) Add(r StreamRecord) int {
	matches := map[int]struct{}{}
	if id, ok := g.byUnified[r.Unified]; ok {
		matches[id] = struct{}{}
	}
	if id, ok := g.byClient[clientKey{r.Client, r.Key.Proto}]; ok {
		matches[id] = struct{}{}
	}
	if id, ok := g.byClientIP[clientIPKey{r.Client.Addr(), r.Key.Proto}]; ok {
		matches[id] = struct{}{}
	}
	var target *meetingState
	switch len(matches) {
	case 0:
		g.nextMeeting++
		target = &meetingState{
			id:      g.nextMeeting,
			proto:   r.Key.Proto,
			streams: make(map[UnifiedID]struct{}),
			clients: make(map[netip.AddrPort]struct{}),
			start:   r.Start,
			end:     r.End,
		}
		g.meetings[target.id] = target
	default:
		ids := make([]int, 0, len(matches))
		for id := range matches {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		target = g.meetings[ids[0]]
		for _, id := range ids[1:] {
			g.merge(target, g.meetings[id])
		}
	}
	target.streams[r.Unified] = struct{}{}
	target.clients[r.Client] = struct{}{}
	if r.Start.Before(target.start) {
		target.start = r.Start
	}
	if r.End.After(target.end) {
		target.end = r.End
	}
	g.byUnified[r.Unified] = target.id
	g.byClient[clientKey{r.Client, r.Key.Proto}] = target.id
	g.byClientIP[clientIPKey{r.Client.Addr(), r.Key.Proto}] = target.id
	return target.id
}

func (g *Grouper) merge(dst, src *meetingState) {
	if src == dst || src == nil {
		return
	}
	for s := range src.streams {
		dst.streams[s] = struct{}{}
		g.byUnified[s] = dst.id
	}
	for c := range src.clients {
		dst.clients[c] = struct{}{}
		g.byClient[clientKey{c, src.proto}] = dst.id
		g.byClientIP[clientIPKey{c.Addr(), src.proto}] = dst.id
	}
	if src.start.Before(dst.start) {
		dst.start = src.start
	}
	if src.end.After(dst.end) {
		dst.end = src.end
	}
	delete(g.meetings, src.id)
}

// Group runs step 2 over a full set of records and returns the meetings
// ordered by start time.
func Group(records []StreamRecord) []Meeting {
	g := NewGrouper()
	for _, r := range records {
		g.Add(r)
	}
	return g.Meetings()
}

// Meetings returns the current meetings, ordered by start time.
func (g *Grouper) Meetings() []Meeting {
	out := make([]Meeting, 0, len(g.meetings))
	for _, m := range g.meetings {
		mm := Meeting{ID: m.id, Start: m.start, End: m.end, Proto: m.proto}
		for s := range m.streams {
			mm.Streams = append(mm.Streams, s)
		}
		sort.Slice(mm.Streams, func(i, j int) bool { return mm.Streams[i] < mm.Streams[j] })
		for c := range m.clients {
			mm.Clients = append(mm.Clients, c)
		}
		sort.Slice(mm.Clients, func(i, j int) bool {
			if c := mm.Clients[i].Addr().Compare(mm.Clients[j].Addr()); c != 0 {
				return c < 0
			}
			return mm.Clients[i].Port() < mm.Clients[j].Port()
		})
		out = append(out, mm)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
