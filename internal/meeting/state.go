package meeting

import (
	"slices"

	"zoomlens/internal/layers"
	"zoomlens/internal/statecodec"
	"zoomlens/internal/zoom"
)

// Checkpoint boundary for step-1 duplicate detection. The bySSRC index
// lists are ORDER-SENSITIVE state: matchExisting's strict less-than gap
// comparison favors earlier entries on ties, so the checkpoint stores
// each list as indices into a deterministically sorted stream table,
// preserving insertion order exactly. (The step-2 Grouper is rebuilt
// from records on every Meetings() call and carries no state here.)

// dedupStateV2 added the protocol byte inside every encoded
// zoom.StreamKey (the rtcproto plugin refactor); V1 state is rejected
// by version.
const (
	dedupStateV1 = 1
	dedupStateV2 = 2
)

// State encodes the detector for a checkpoint.
func (d *Dedup) State(w *statecodec.Writer) {
	w.U8(dedupStateV2)
	w.I64(d.TSWindow)
	w.Duration(d.TimeWindow)
	w.Int(d.MaxStreams)
	w.U64(d.Dropped)
	w.I64(int64(d.nextID))

	// Stream table, sorted by (flow, key) for deterministic bytes; index
	// positions are what the bySSRC lists reference.
	keys := make([]flowKey, 0, len(d.streams))
	for k := range d.streams {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, func(a, b flowKey) int {
		if c := a.flow.Compare(b.flow); c != 0 {
			return c
		}
		return a.key.Compare(b.key)
	})
	index := make(map[*streamState]int, len(keys))
	w.Int(len(keys))
	for i, k := range keys {
		s := d.streams[k]
		index[s] = i
		s.flow.EncodeTo(w)
		s.key.EncodeTo(w)
		w.I64(int64(s.unified))
		w.Time(s.firstSeen)
		w.Time(s.lastSeen)
		w.U32(s.firstTS)
		w.U32(s.lastTS)
		w.Bool(s.evicted)
	}

	ssrcKeys := make([]zoom.StreamKey, 0, len(d.bySSRC))
	for k := range d.bySSRC {
		ssrcKeys = append(ssrcKeys, k)
	}
	slices.SortFunc(ssrcKeys, zoom.StreamKey.Compare)
	w.Int(len(ssrcKeys))
	for _, k := range ssrcKeys {
		k.EncodeTo(w)
		list := d.bySSRC[k]
		w.Int(len(list))
		for _, s := range list {
			w.Int(index[s])
		}
	}
}

// Restore rebuilds the detector from a checkpoint, replacing all state
// including the tunable windows (they were live when the checkpoint was
// taken and a mid-run change would alter linkage decisions).
func (d *Dedup) Restore(r *statecodec.Reader) error {
	r.Version("meeting.Dedup", dedupStateV2)
	d.TSWindow = r.I64()
	d.TimeWindow = r.Duration()
	d.MaxStreams = r.Int()
	d.Dropped = r.U64()
	d.nextID = UnifiedID(r.I64())

	n := r.Count(12)
	d.streams = make(map[flowKey]*streamState, n)
	table := make([]*streamState, 0, n)
	for i := 0; i < n; i++ {
		s := &streamState{}
		s.flow = layers.DecodeFiveTuple(r)
		s.key = zoom.DecodeStreamKey(r)
		s.unified = UnifiedID(r.I64())
		s.firstSeen = r.Time()
		s.lastSeen = r.Time()
		s.firstTS = r.U32()
		s.lastTS = r.U32()
		s.evicted = r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		d.streams[flowKey{s.flow, s.key}] = s
		table = append(table, s)
	}

	nk := r.Count(4)
	d.bySSRC = make(map[zoom.StreamKey][]*streamState, nk)
	for i := 0; i < nk; i++ {
		k := zoom.DecodeStreamKey(r)
		nl := r.Count(1)
		list := make([]*streamState, 0, nl)
		for j := 0; j < nl; j++ {
			idx := r.Int()
			if r.Err() != nil {
				return r.Err()
			}
			if idx < 0 || idx >= len(table) {
				r.Failf("meeting.Dedup dangling stream index %d of %d", idx, len(table))
				return r.Err()
			}
			list = append(list, table[idx])
		}
		d.bySSRC[k] = list
	}
	return r.Err()
}
