package rtcproto

import (
	"strings"
	"testing"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

func names(set []Plugin) string {
	out := make([]string, len(set))
	for i, p := range set {
		out[i] = p.Name()
	}
	return strings.Join(out, ",")
}

func TestParseSet(t *testing.T) {
	cases := []struct {
		spec string
		want string // comma-joined names, "" = expect error
	}{
		{"", "zoom,webrtc"},
		{"auto", "zoom,webrtc"},
		{" auto ", "zoom,webrtc"},
		{"zoom", "zoom"},
		{"webrtc", "webrtc"},
		{"zoom,webrtc", "zoom,webrtc"},
		// Canonical order regardless of spelling order, duplicates folded.
		{"webrtc,zoom", "zoom,webrtc"},
		{"zoom, zoom", "zoom"},
		{"bogus", ""},
		{"zoom,bogus", ""},
		{"auto,zoom", ""},
		{",,", ""},
	}
	for _, c := range cases {
		set, err := ParseSet(c.spec)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseSet(%q) = %s, want error", c.spec, names(set))
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSet(%q): %v", c.spec, err)
			continue
		}
		if got := names(set); got != c.want {
			t.Errorf("ParseSet(%q) = %s, want %s", c.spec, got, c.want)
		}
	}
}

func TestSetNames(t *testing.T) {
	for _, spec := range []string{"auto", "zoom", "webrtc", "zoom,webrtc"} {
		set, err := ParseSet(spec)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := ParseSet(SetNames(set))
		if err != nil {
			t.Fatalf("round trip of %q: %v", spec, err)
		}
		if names(rt) != names(set) {
			t.Errorf("SetNames round trip of %q: %s != %s", spec, names(rt), names(set))
		}
	}
}

func TestNameOf(t *testing.T) {
	if got := NameOf(uint8(IDZoom)); got != "zoom" {
		t.Errorf("NameOf(IDZoom) = %q", got)
	}
	if got := NameOf(uint8(IDWebRTC)); got != "webrtc" {
		t.Errorf("NameOf(IDWebRTC) = %q", got)
	}
	if got := NameOf(9); got != "proto(9)" {
		t.Errorf("NameOf(9) = %q", got)
	}
}

func TestHasNonZoom(t *testing.T) {
	if HasNonZoom([]Plugin{Zoom()}) {
		t.Error("HasNonZoom(zoom only) = true")
	}
	if !HasNonZoom(DefaultSet()) {
		t.Error("HasNonZoom(default set) = false")
	}
	if !HasNonZoom([]Plugin{WebRTC()}) {
		t.Error("HasNonZoom(webrtc only) = false")
	}
}

// TestProbeDisjoint proves the byte-identical differential invariant's
// foundation: no payload is claimed by both plugins, so enabling the
// webrtc plugin cannot change how a Zoom packet is classified. Zoom's
// grammar accepts first bytes < 0x80 only; RTP's version bits demand
// 0x80–0xBF.
func TestProbeDisjoint(t *testing.T) {
	payload := make([]byte, 64)
	for b := 0; b < 256; b++ {
		payload[0] = byte(b)
		z := Zoom().Probe(payload)
		w := WebRTC().Probe(payload)
		if z && w {
			t.Fatalf("first byte %#02x claimed by both plugins", b)
		}
		if z && b >= 0x80 {
			t.Errorf("zoom probe accepted first byte %#02x (>= 0x80)", b)
		}
		if w && (b < 0x80 || b > 0xBF) {
			t.Errorf("webrtc probe accepted first byte %#02x outside RTP v2 range", b)
		}
	}
}

// TestWebRTCDecodeNormalization checks the zoom.Packet container a
// webrtc decode produces: kind maps to the Zoom media-type codes and the
// media-framing sequence/timestamp mirror the RTP header.
func TestWebRTCDecodeNormalization(t *testing.T) {
	rp := rtp.Packet{
		Header: rtp.Header{
			PayloadType:    111, // conventional Opus: audio
			SequenceNumber: 4242,
			Timestamp:      96000,
			SSRC:           0xdecafbad,
			Marker:         true,
		},
		Payload: make([]byte, 80),
	}
	raw, err := rp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !WebRTC().Probe(raw) {
		t.Fatal("webrtc probe rejected a marshaled RTP packet")
	}
	if Zoom().Probe(raw) {
		t.Fatal("zoom probe claimed a standards RTP packet")
	}
	mo, err := WebRTC().Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if mo.Proto != IDWebRTC {
		t.Errorf("Proto = %v, want IDWebRTC", mo.Proto)
	}
	zp := mo.Pkt
	if zp.Media.Type != zoom.TypeAudio {
		t.Errorf("media type = %v, want TypeAudio", zp.Media.Type)
	}
	if zp.Media.Sequence != 4242 || zp.Media.Timestamp != 96000 {
		t.Errorf("media seq/ts = %d/%d, want 4242/96000", zp.Media.Sequence, zp.Media.Timestamp)
	}
	if zp.RTP.SSRC != 0xdecafbad || !zp.RTP.Marker {
		t.Errorf("RTP header not mirrored: ssrc=%#x marker=%t", zp.RTP.SSRC, zp.RTP.Marker)
	}
	if zp.SFU.Type != 0 || zp.ServerBased {
		t.Error("non-Zoom decode must leave the SFU framing zero")
	}

	// Video payload type.
	rp.PayloadType = 96
	rp.Payload = make([]byte, 1100)
	raw, err = rp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mo, err = WebRTC().Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if mo.Pkt.Media.Type != zoom.TypeVideo {
		t.Errorf("media type = %v, want TypeVideo", mo.Pkt.Media.Type)
	}

	// RTCP sender report, with and without the SDES chunk.
	sr := rtp.SenderReport{SSRC: 7, RTPTS: 1234, PacketCount: 10, OctetCount: 1000}
	for _, withSDES := range []bool{false, true} {
		raw := rtp.MarshalSR(sr, withSDES)
		mo, err := WebRTC().Decode(raw)
		if err != nil {
			t.Fatalf("decode SR (sdes=%t): %v", withSDES, err)
		}
		want := zoom.TypeRTCPSR
		if withSDES {
			want = zoom.TypeRTCPSRSDES
		}
		if mo.Pkt.Media.Type != want {
			t.Errorf("SR (sdes=%t) media type = %v, want %v", withSDES, mo.Pkt.Media.Type, want)
		}
		if mo.Pkt.Media.Timestamp != 1234 {
			t.Errorf("SR media timestamp = %d, want 1234", mo.Pkt.Media.Timestamp)
		}
	}
}

// TestZoomPluginDecode round-trips one Zoom media packet through the
// plugin and confirms the probe mirrors ParsePacket's grammar.
func TestZoomPluginDecode(t *testing.T) {
	zp := zoom.Packet{
		Media: zoom.MediaEncap{Type: zoom.TypeAudio, Sequence: 9, Timestamp: 48000},
		RTP: rtp.Packet{
			Header:  rtp.Header{PayloadType: zoom.PTAudioSpeak, SequenceNumber: 9, Timestamp: 48000, SSRC: 5},
			Payload: make([]byte, 60),
		},
	}
	raw, err := zp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !Zoom().Probe(raw) {
		t.Fatal("zoom probe rejected a marshaled Zoom packet")
	}
	if WebRTC().Probe(raw) {
		t.Fatal("webrtc probe claimed a Zoom packet")
	}
	mo, err := Zoom().Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if mo.Proto != IDZoom {
		t.Errorf("Proto = %v, want IDZoom", mo.Proto)
	}
	if mo.Pkt.Media.Type != zoom.TypeAudio || mo.Pkt.RTP.SSRC != 5 {
		t.Errorf("decoded packet mismatch: %+v", mo.Pkt)
	}
}
