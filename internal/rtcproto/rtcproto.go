// Package rtcproto defines the protocol-plugin boundary that turns the
// Zoom-specific decode path into a pluggable RTC protocol family
// (ROADMAP item 3; Chang et al. measure Zoom/Webex/Meet side by side
// with exactly this structure). A Plugin recognizes and decodes one
// application's UDP media encapsulation into a normalized MediaObs;
// the analysis pipeline above the decode (flow/stream demux, meeting
// grouping, QoE metrics) is protocol-agnostic and consumes MediaObs
// only.
//
// The normalized media container is zoom.Packet: Zoom's encapsulation
// is a strict superset of standards RTP (SFU framing + media framing +
// RTP), so every other protocol maps onto its media-type + RTP fields
// with the extra framing left zero. zoom.StreamKey carries the plugin's
// ID in its Proto field, so streams from different applications never
// collide anywhere downstream (dedup, metrics, checkpoints, reports).
//
// Probe order is deterministic: zoom before webrtc, because Zoom's
// type-byte grammar (first byte 5/13/15/16/33/34) and the RTP version
// bits (first byte 0x80–0xBF) are disjoint — zoom is cheaper to reject
// and more specific to accept. A registry built by ParseSet preserves
// this canonical order regardless of how the user spells the list, so
// the same flags always produce the same classification (the
// byte-identical differential invariant depends on it).
package rtcproto

import (
	"fmt"
	"strings"

	"zoomlens/internal/webrtc"
	"zoomlens/internal/zoom"
)

// ID identifies a protocol plugin. The value is stored in
// zoom.StreamKey.Proto and serialized into checkpoints, deltas, and
// cluster observation logs — assigned values are wire format and must
// never be renumbered.
type ID uint8

// Assigned plugin IDs. IDZoom is 0 so that every pre-existing
// StreamKey literal (constructed throughout the Zoom pipeline without
// naming Proto) denotes a Zoom stream.
const (
	IDZoom   ID = 0
	IDWebRTC ID = 1
	// NumIDs is the number of assigned IDs (array-sizing constant for
	// per-protocol counters).
	NumIDs = 2
)

func (id ID) String() string {
	switch id {
	case IDZoom:
		return "zoom"
	case IDWebRTC:
		return "webrtc"
	}
	return fmt.Sprintf("proto(%d)", uint8(id))
}

// MediaObs is one decoded media observation: the protocol that claimed
// the packet plus the normalized packet content.
type MediaObs struct {
	Proto ID
	// Pkt is the normalized media container (see the package comment).
	// For non-Zoom protocols ServerBased is false and the SFU/media
	// framing fields beyond Type/Sequence/Timestamp are zero.
	Pkt zoom.Packet
}

// Plugin recognizes and decodes one application's RTC traffic.
type Plugin interface {
	// Name is the stable flag-level name ("zoom", "webrtc").
	Name() string
	// ID is the assigned wire identifier.
	ID() ID
	// Probe cheaply reports whether payload plausibly belongs to this
	// protocol. A true result is a claim: the registry stops at the
	// first plugin whose Probe accepts, whether or not Decode then
	// succeeds, so Probe must be strict enough not to steal another
	// protocol's packets.
	Probe(payload []byte) bool
	// Decode fully parses payload. Probe(payload) is a precondition.
	Decode(payload []byte) (MediaObs, error)
}

// zoomPlugin adapts zoom.ParsePacket. Probe mirrors ParsePacket's
// ModeAuto grammar exactly: a payload can decode iff its first byte is
// the SFU media marker or a known media-encapsulation type.
type zoomPlugin struct{}

func (zoomPlugin) Name() string { return "zoom" }
func (zoomPlugin) ID() ID       { return IDZoom }

func (zoomPlugin) Probe(payload []byte) bool {
	if len(payload) == 0 {
		return false
	}
	return payload[0] == zoom.SFUTypeMedia || zoom.MediaType(payload[0]).HeaderLen() > 0
}

func (zoomPlugin) Decode(payload []byte) (MediaObs, error) {
	zp, err := zoom.ParsePacket(payload, zoom.ModeAuto)
	if err != nil {
		return MediaObs{}, err
	}
	return MediaObs{Proto: IDZoom, Pkt: zp}, nil
}

// webrtcPlugin adapts internal/webrtc, normalizing its packets into
// the zoom.Packet container: the inferred kind maps onto the Zoom
// media-type codes and the media-framing sequence/timestamp mirror the
// RTP header (WebRTC has no second sequence space).
type webrtcPlugin struct{}

func (webrtcPlugin) Name() string { return "webrtc" }
func (webrtcPlugin) ID() ID       { return IDWebRTC }

func (webrtcPlugin) Probe(payload []byte) bool { return webrtc.Probe(payload) }

func (webrtcPlugin) Decode(payload []byte) (MediaObs, error) {
	wp, err := webrtc.Parse(payload)
	if err != nil {
		return MediaObs{}, err
	}
	var zp zoom.Packet
	if wp.IsRTCP {
		zp.Media = zoom.MediaEncap{Type: zoom.TypeRTCPSR}
		if len(wp.RTCP.SenderReports) > 0 {
			sr := wp.RTCP.SenderReports[0]
			zp.Media.Timestamp = sr.RTPTS
		}
		if len(wp.RTCP.SDES) > 0 {
			zp.Media.Type = zoom.TypeRTCPSRSDES
		}
		zp.RTCP = wp.RTCP
		return MediaObs{Proto: IDWebRTC, Pkt: zp}, nil
	}
	mt := zoom.TypeVideo
	if wp.Kind == webrtc.KindAudio {
		mt = zoom.TypeAudio
	}
	zp.Media = zoom.MediaEncap{
		Type:      mt,
		Sequence:  wp.RTP.SequenceNumber,
		Timestamp: wp.RTP.Timestamp,
	}
	zp.RTP = wp.RTP
	return MediaObs{Proto: IDWebRTC, Pkt: zp}, nil
}

// canonical is the full plugin family in probe order.
var canonical = []Plugin{zoomPlugin{}, webrtcPlugin{}}

// DefaultSet returns the full plugin family in canonical probe order
// (what "-proto auto" selects). The returned slice is fresh; callers
// may keep it.
func DefaultSet() []Plugin {
	out := make([]Plugin, len(canonical))
	copy(out, canonical)
	return out
}

// Zoom returns the Zoom plugin alone (pre-refactor behavior).
func Zoom() Plugin { return zoomPlugin{} }

// WebRTC returns the standards RTP/SRTP plugin.
func WebRTC() Plugin { return webrtcPlugin{} }

// ByName resolves a plugin by its flag-level name.
func ByName(name string) (Plugin, error) {
	for _, p := range canonical {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("rtcproto: unknown protocol %q (have %s)", name, strings.Join(Names(), ", "))
}

// Names returns the flag-level plugin names in canonical order.
func Names() []string {
	out := make([]string, len(canonical))
	for i, p := range canonical {
		out[i] = p.Name()
	}
	return out
}

// NameOf returns the flag-level name for a wire ID (for report and
// metric labels).
func NameOf(proto uint8) string { return ID(proto).String() }

// ParseSet parses a -proto flag value: "auto" (or empty) selects the
// full family, a single name selects that plugin alone, and a
// comma-separated list selects a subset. The result is always in
// canonical probe order with duplicates removed, regardless of the
// spelling order, so classification never depends on how the list was
// written.
func ParseSet(spec string) ([]Plugin, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "auto" {
		return DefaultSet(), nil
	}
	want := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if name == "auto" {
			return nil, fmt.Errorf("rtcproto: %q cannot combine auto with protocol names", spec)
		}
		if _, err := ByName(name); err != nil {
			return nil, err
		}
		want[name] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("rtcproto: empty protocol list %q", spec)
	}
	var out []Plugin
	for _, p := range canonical {
		if want[p.Name()] {
			out = append(out, p)
		}
	}
	return out, nil
}

// HasNonZoom reports whether the set contains any plugin besides Zoom.
// The capture filter uses it to decide whether generic (non-Zoom-net)
// STUN exchanges should arm media flows.
func HasNonZoom(set []Plugin) bool {
	for _, p := range set {
		if p.ID() != IDZoom {
			return true
		}
	}
	return false
}

// SetNames renders a plugin set back to its canonical flag spelling.
func SetNames(set []Plugin) string {
	if len(set) == len(canonical) {
		return "auto"
	}
	names := make([]string, len(set))
	for i, p := range set {
		names[i] = p.Name()
	}
	return strings.Join(names, ",")
}
