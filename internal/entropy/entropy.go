// Package entropy implements the header-analysis methodology of §4.2.1:
// extract 8-, 16-, and 32-bit value sequences at every offset of a UDP
// flow's payloads and classify each sequence as encrypted/random,
// identifier-like (horizontal lines in the paper's plots), or
// counter-like (angled lines: sequence numbers, timestamps), reproducing
// Figures 3–5 programmatically.
package entropy

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// FieldClass is the inferred nature of a byte range.
type FieldClass int

// Classification outcomes, mirroring Figure 4.
const (
	// ClassRandom marks near-uniform values: encrypted payload or MACs.
	ClassRandom FieldClass = iota
	// ClassIdentifier marks few distinct values (stream IDs, type codes,
	// bitmasks) — horizontal lines.
	ClassIdentifier
	// ClassCounter marks mostly monotone values with regular increments
	// (sequence numbers, timestamps) — angled lines, possibly wrapping.
	ClassCounter
	// ClassConstant marks a single value.
	ClassConstant
	// ClassMixed marks sequences with structure that fits none of the
	// above cleanly (e.g. several interleaved counters).
	ClassMixed
)

func (c FieldClass) String() string {
	switch c {
	case ClassRandom:
		return "random"
	case ClassIdentifier:
		return "identifier"
	case ClassCounter:
		return "counter"
	case ClassConstant:
		return "constant"
	case ClassMixed:
		return "mixed"
	}
	return "unknown"
}

// Sequence is the value series of one (offset, width) slot across a
// flow's packets.
type Sequence struct {
	Offset int
	Width  int // bytes: 1, 2, or 4
	Values []uint64
}

// Extract pulls the value sequence at (offset, width) from each payload
// long enough to contain it.
func Extract(payloads [][]byte, offset, width int) Sequence {
	s := Sequence{Offset: offset, Width: width}
	for _, p := range payloads {
		if len(p) < offset+width {
			continue
		}
		var v uint64
		switch width {
		case 1:
			v = uint64(p[offset])
		case 2:
			v = uint64(binary.BigEndian.Uint16(p[offset:]))
		case 4:
			v = uint64(binary.BigEndian.Uint32(p[offset:]))
		default:
			panic(fmt.Sprintf("entropy: unsupported width %d", width))
		}
		s.Values = append(s.Values, v)
	}
	return s
}

// Analysis is the classification of one sequence with its evidence.
type Analysis struct {
	Sequence
	Class FieldClass
	// NormEntropy is the Shannon entropy of the observed values
	// normalized by the maximum possible for the width (1.0 = uniform).
	NormEntropy float64
	// DistinctRatio is |distinct values| / |values|.
	DistinctRatio float64
	// MonotoneRatio is the fraction of consecutive deltas that are
	// non-negative in serial arithmetic (counters wrap).
	MonotoneRatio float64
	// CoverageRatio is the span of values relative to the width's range.
	CoverageRatio float64
}

// Classify analyzes one sequence. Sequences shorter than 8 samples
// return ClassMixed (insufficient evidence).
func Classify(s Sequence) Analysis {
	a := Analysis{Sequence: s, Class: ClassMixed}
	n := len(s.Values)
	if n < 8 {
		return a
	}
	distinct := map[uint64]struct{}{}
	var mn, mx uint64 = math.MaxUint64, 0
	for _, v := range s.Values {
		distinct[v] = struct{}{}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	a.DistinctRatio = float64(len(distinct)) / float64(n)
	space := math.Pow(2, float64(8*s.Width))
	a.CoverageRatio = float64(mx-mn) / (space - 1)
	a.NormEntropy = normEntropy(s.Values, s.Width)
	a.MonotoneRatio = monotoneRatio(s.Values, s.Width)

	switch {
	case len(distinct) == 1:
		a.Class = ClassConstant
	case a.MonotoneRatio >= 0.78 && len(distinct) > 16:
		// Angled lines: consistently advancing values. Values may repeat
		// (an RTP timestamp is shared by every packet of a frame) and a
		// minority substream may interleave its own counter (FEC uses a
		// separate sequence space, §4.2.3), so the threshold tolerates
		// some backward steps.
		a.Class = ClassCounter
	case a.DistinctRatio <= 0.1 || (len(distinct) <= 8 && n >= 16):
		// Horizontal lines: few values repeated many times.
		a.Class = ClassIdentifier
	case a.NormEntropy >= 0.85 && a.CoverageRatio >= 0.5:
		// Near-uniform over most of the space: encrypted.
		a.Class = ClassRandom
	default:
		a.Class = ClassMixed
	}
	return a
}

func normEntropy(vals []uint64, width int) float64 {
	// For 32-bit fields, bucket by the top 16 bits to keep the histogram
	// meaningful at realistic sample counts.
	shift := 0
	bits := 8 * width
	if bits > 16 {
		shift = bits - 16
		bits = 16
	}
	counts := map[uint64]int{}
	for _, v := range vals {
		counts[v>>shift]++
	}
	var h float64
	n := float64(len(vals))
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	maxH := math.Min(float64(bits), math.Log2(n))
	if maxH <= 0 {
		return 0
	}
	return h / maxH
}

func monotoneRatio(vals []uint64, width int) float64 {
	if len(vals) < 2 {
		return 0
	}
	half := uint64(1) << (8*width - 1)
	mask := uint64(1)<<(8*width) - 1
	nonneg := 0
	for i := 1; i < len(vals); i++ {
		d := (vals[i] - vals[i-1]) & mask
		// Serial arithmetic: a forward step is one smaller than half the
		// space (this treats wraparound as forward).
		if d < half {
			nonneg++
		}
	}
	return float64(nonneg) / float64(len(vals)-1)
}

// Sweep runs Extract+Classify for all offsets up to maxOffset at widths
// 1, 2 and 4, returning analyses ordered by offset then width — the
// automated version of the paper's "hundreds of such plots".
func Sweep(payloads [][]byte, maxOffset int) []Analysis {
	var out []Analysis
	for off := 0; off < maxOffset; off++ {
		for _, w := range []int{1, 2, 4} {
			seq := Extract(payloads, off, w)
			if len(seq.Values) == 0 {
				continue
			}
			out = append(out, Classify(seq))
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Offset != out[j].Offset {
			return out[i].Offset < out[j].Offset
		}
		return out[i].Width < out[j].Width
	})
	return out
}

// RTPSignature describes the pattern the paper searched for first: a
// 2-byte counter (RTP sequence number) followed by a 4-byte counter (RTP
// timestamp) followed by a 4-byte identifier (SSRC).
type RTPSignature struct {
	// Offset of the 2-byte sequence-number field; the timestamp begins at
	// Offset+2 and the SSRC at Offset+6.
	Offset int
	// SSRCValues is the distinct identifier values seen.
	SSRCValues []uint64
}

// FindRTP scans a sweep result for offsets matching the RTP header
// signature (§4.2.1). The returned offsets are candidates for "the RTP
// header starts at offset X-2" (the signature begins at the sequence
// number, which is 2 bytes into the RTP header).
func FindRTP(payloads [][]byte, maxOffset int) []RTPSignature {
	var out []RTPSignature
	for off := 0; off+10 <= maxOffset; off++ {
		seq2 := Classify(Extract(payloads, off, 2))
		if seq2.Class != ClassCounter {
			continue
		}
		ts4 := Classify(Extract(payloads, off+2, 4))
		if ts4.Class != ClassCounter {
			continue
		}
		ssrc4 := Classify(Extract(payloads, off+6, 4))
		if ssrc4.Class != ClassIdentifier && ssrc4.Class != ClassConstant {
			continue
		}
		sig := RTPSignature{Offset: off}
		seen := map[uint64]struct{}{}
		for _, v := range ssrc4.Values {
			if _, ok := seen[v]; !ok {
				seen[v] = struct{}{}
				sig.SSRCValues = append(sig.SSRCValues, v)
			}
		}
		out = append(out, sig)
	}
	return out
}
