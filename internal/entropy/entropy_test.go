package entropy

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

func constSeq(v uint64, n int) Sequence {
	s := Sequence{Width: 1}
	for i := 0; i < n; i++ {
		s.Values = append(s.Values, v)
	}
	return s
}

func TestClassifyConstant(t *testing.T) {
	a := Classify(constSeq(5, 100))
	if a.Class != ClassConstant {
		t.Errorf("class = %v, want constant", a.Class)
	}
}

func TestClassifyCounter(t *testing.T) {
	s := Sequence{Width: 2}
	for i := 0; i < 200; i++ {
		s.Values = append(s.Values, uint64(i*7)&0xffff)
	}
	a := Classify(s)
	if a.Class != ClassCounter {
		t.Errorf("class = %v (mono=%v distinct=%v), want counter", a.Class, a.MonotoneRatio, a.DistinctRatio)
	}
}

func TestClassifyCounterWithWraparound(t *testing.T) {
	s := Sequence{Width: 2}
	v := uint64(65000)
	for i := 0; i < 300; i++ {
		s.Values = append(s.Values, v&0xffff)
		v += 13
	}
	a := Classify(s)
	if a.Class != ClassCounter {
		t.Errorf("class = %v, want counter across wraparound", a.Class)
	}
}

func TestClassifyIdentifier(t *testing.T) {
	s := Sequence{Width: 4}
	ids := []uint64{16778241, 16778242, 16778243}
	for i := 0; i < 300; i++ {
		s.Values = append(s.Values, ids[i%3])
	}
	a := Classify(s)
	if a.Class != ClassIdentifier {
		t.Errorf("class = %v, want identifier", a.Class)
	}
}

func TestClassifyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, w := range []int{1, 2, 4} {
		s := Sequence{Width: w}
		mask := uint64(1)<<(8*w) - 1
		for i := 0; i < 2000; i++ {
			s.Values = append(s.Values, rng.Uint64()&mask)
		}
		a := Classify(s)
		if a.Class != ClassRandom {
			t.Errorf("width %d: class = %v (H=%v cover=%v), want random", w, a.Class, a.NormEntropy, a.CoverageRatio)
		}
	}
}

func TestClassifyShortSequenceInsufficient(t *testing.T) {
	a := Classify(Sequence{Width: 1, Values: []uint64{1, 2, 3}})
	if a.Class != ClassMixed {
		t.Errorf("class = %v, want mixed for short sequence", a.Class)
	}
}

func TestExtractWidthsAndOffsets(t *testing.T) {
	payloads := [][]byte{
		{0x01, 0x02, 0x03, 0x04, 0x05, 0x06},
		{0x11, 0x12, 0x13, 0x14, 0x15, 0x16},
		{0xff}, // too short for most slots
	}
	s1 := Extract(payloads, 0, 1)
	if len(s1.Values) != 3 || s1.Values[2] != 0xff {
		t.Errorf("s1 = %+v", s1)
	}
	s2 := Extract(payloads, 1, 2)
	if len(s2.Values) != 2 || s2.Values[0] != 0x0203 {
		t.Errorf("s2 = %+v", s2)
	}
	s4 := Extract(payloads, 2, 4)
	if len(s4.Values) != 2 || s4.Values[1] != 0x13141516 {
		t.Errorf("s4 = %+v", s4)
	}
}

// zoomVideoPayloads synthesizes server-based Zoom video packets with
// encrypted-looking payload, as the campus trace would contain.
func zoomVideoPayloads(t *testing.T, n int) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	out := make([][]byte, 0, n)
	ts := uint32(100000)
	for i := 0; i < n; i++ {
		enc := make([]byte, 600)
		rng.Read(enc)
		p := zoom.Packet{
			ServerBased: true,
			SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: uint16(i), Direction: zoom.DirFromSFU},
			Media: zoom.MediaEncap{
				Type: zoom.TypeVideo, Sequence: uint16(i), Timestamp: ts,
				FrameSequence: uint16(i / 3), PacketsInFrame: 3,
			},
			RTP: rtp.Packet{
				Header: rtp.Header{
					PayloadType:    zoom.PTVideoMain,
					SequenceNumber: uint16(4000 + i),
					Timestamp:      ts,
					SSRC:           16778241,
				},
				Payload: enc,
			},
		}
		if i%3 == 2 {
			ts += 3000
		}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, wire)
	}
	return out
}

// TestSweepRecoversZoomStructure is the Figure 5 reproduction: the sweep
// must classify the SFU sequence, media sequence/timestamp, RTP
// seq/ts as counters, the type bytes and SSRC as identifiers/constants,
// and the encrypted payload as random.
func TestSweepRecoversZoomStructure(t *testing.T) {
	payloads := zoomVideoPayloads(t, 900)
	get := func(off, width int) Analysis { return Classify(Extract(payloads, off, width)) }

	// SFU encap: type byte constant 0x05; seq at 1-2 counts.
	if a := get(0, 1); a.Class != ClassConstant {
		t.Errorf("sfu type: %v", a.Class)
	}
	if a := get(1, 2); a.Class != ClassCounter {
		t.Errorf("sfu seq: %v", a.Class)
	}
	// Media encap at offset 8: type byte 16 constant; seq at 8+9; ts at 8+11.
	if a := get(8, 1); a.Class != ClassConstant {
		t.Errorf("media type: %v", a.Class)
	}
	if a := get(17, 2); a.Class != ClassCounter {
		t.Errorf("media seq: %v", a.Class)
	}
	if a := get(19, 4); a.Class != ClassCounter {
		t.Errorf("media ts: %v", a.Class)
	}
	// RTP header at 8+24=32: seq at 34, ts at 36, SSRC at 40.
	if a := get(34, 2); a.Class != ClassCounter {
		t.Errorf("rtp seq: %v", a.Class)
	}
	if a := get(36, 4); a.Class != ClassCounter {
		t.Errorf("rtp ts: %v", a.Class)
	}
	if a := get(40, 4); a.Class != ClassConstant {
		t.Errorf("ssrc: %v", a.Class)
	}
	// Encrypted payload well past the headers.
	if a := get(100, 4); a.Class != ClassRandom {
		t.Errorf("payload: %v (H=%v)", a.Class, a.NormEntropy)
	}
}

func TestFindRTPLocatesHeader(t *testing.T) {
	payloads := zoomVideoPayloads(t, 900)
	sigs := FindRTP(payloads, 64)
	// The RTP sequence number lives at offset 34 (8 SFU + 24 media + 2).
	found := false
	for _, s := range sigs {
		if s.Offset == 34 {
			found = true
			if len(s.SSRCValues) != 1 || s.SSRCValues[0] != 16778241 {
				t.Errorf("ssrc values = %v", s.SSRCValues)
			}
		}
	}
	if !found {
		offs := make([]int, len(sigs))
		for i, s := range sigs {
			offs[i] = s.Offset
		}
		t.Errorf("RTP signature not found at 34; candidates = %v", offs)
	}
}

func TestFindRTPNoFalsePositiveOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payloads := make([][]byte, 500)
	for i := range payloads {
		b := make([]byte, 64)
		rng.Read(b)
		payloads[i] = b
	}
	if sigs := FindRTP(payloads, 48); len(sigs) != 0 {
		t.Errorf("signatures in pure noise: %+v", sigs)
	}
}

func TestSweepOrdering(t *testing.T) {
	payloads := [][]byte{make([]byte, 16), make([]byte, 16)}
	for i := range payloads {
		binary.BigEndian.PutUint32(payloads[i], uint32(i))
	}
	res := Sweep(payloads, 8)
	for i := 1; i < len(res); i++ {
		if res[i].Offset < res[i-1].Offset {
			t.Fatal("sweep results not ordered by offset")
		}
	}
}
