package entropy

import (
	"math/rand"
	"strings"
	"testing"
)

func plotRows(s string) []string {
	var rows []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "|") {
			rows = append(rows, line[1:])
		}
	}
	return rows
}

func TestPlotConstantIsOneHorizontalLine(t *testing.T) {
	s := Sequence{Width: 1}
	for i := 0; i < 100; i++ {
		s.Values = append(s.Values, 128)
	}
	rows := plotRows(Plot(s, 40, 10))
	occupied := 0
	for _, r := range rows {
		if strings.TrimSpace(r) != "" {
			occupied++
		}
	}
	if occupied != 1 {
		t.Errorf("constant plotted on %d rows, want 1", occupied)
	}
}

func TestPlotCounterWrapsAcrossRows(t *testing.T) {
	s := Sequence{Width: 2}
	v := uint64(0)
	for i := 0; i < 400; i++ {
		s.Values = append(s.Values, v&0xffff)
		v += 400 // wraps ~2.5 times
	}
	rows := plotRows(Plot(s, 60, 12))
	occupied := 0
	for _, r := range rows {
		if strings.TrimSpace(r) != "" {
			occupied++
		}
	}
	// An angled, wrapping line touches most rows.
	if occupied < 9 {
		t.Errorf("counter touched %d rows, want nearly all", occupied)
	}
}

func TestPlotRandomFillsPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Sequence{Width: 2}
	for i := 0; i < 2000; i++ {
		s.Values = append(s.Values, uint64(rng.Intn(1<<16)))
	}
	rows := plotRows(Plot(s, 40, 10))
	var cells, filled int
	for _, r := range rows {
		for _, c := range r {
			cells++
			if c != ' ' {
				filled++
			}
		}
	}
	if frac := float64(filled) / float64(cells); frac < 0.6 {
		t.Errorf("random data filled %.2f of the plane, want most", frac)
	}
}

func TestPlotEmptyAndTinyDimensions(t *testing.T) {
	if got := Plot(Sequence{Width: 1}, 40, 10); !strings.Contains(got, "no samples") {
		t.Errorf("empty plot: %q", got)
	}
	// Degenerate dimensions clamp, never panic.
	s := Sequence{Width: 1, Values: []uint64{1, 2, 3}}
	if got := Plot(s, 0, 0); len(got) == 0 {
		t.Error("tiny plot empty")
	}
}
