package entropy

import (
	"fmt"
	"strings"
)

// Plot renders a value sequence as an ASCII scatter — the terminal
// version of the paper's Figure 3/5 plots (packet index on the x axis,
// field value on the y axis) used to "quickly and visually inspect"
// candidate header fields.
//
// width and height are the plot dimensions in characters; the value
// axis is scaled to the full range of the field's width so that
// identifiers appear as horizontal lines, counters as angled lines that
// wrap, and encrypted data as uniform noise, exactly as in the paper.
func Plot(s Sequence, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	if len(s.Values) == 0 {
		return "(no samples)\n"
	}
	space := float64(uint64(1)<<(8*s.Width) - 1)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	n := len(s.Values)
	for i, v := range s.Values {
		x := i * width / n
		if x >= width {
			x = width - 1
		}
		y := int(float64(v) / space * float64(height-1))
		if y >= height {
			y = height - 1
		}
		row := height - 1 - y // origin bottom-left
		if grid[row][x] == ' ' {
			grid[row][x] = '.'
		} else if grid[row][x] == '.' {
			grid[row][x] = 'o'
		} else {
			grid[row][x] = '@'
		}
	}
	var b strings.Builder
	maxLabel := fmt.Sprintf("%d", uint64(1)<<(8*s.Width)-1)
	fmt.Fprintf(&b, "offset %d, width %d — %d samples (y: 0..%s, x: packet index)\n",
		s.Offset, s.Width, n, maxLabel)
	b.WriteString("^\n")
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + ">\n")
	return b.String()
}
