package trace

// StreamGen is the soak-harness workload: a streamed (never
// materialized) synthetic capture holding a configurable number of
// concurrent Zoom media streams alive on a compressed trace clock, with
// steady stream churn so eviction, archiving, and delta-checkpoint
// dirty-tracking all see realistic turnover. Unlike the simulator-backed
// Schedule/Runner path, memory is O(streams), not O(packets): each
// Next call synthesizes one frame into a reused buffer.

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/pcap"
	"zoomlens/internal/rtp"
	"zoomlens/internal/zoom"
)

// StreamConfig shapes a StreamGen workload.
type StreamConfig struct {
	// Seed drives all randomness (stream identities, churn order).
	Seed int64
	// Start is the trace-clock origin.
	Start time.Time
	// Streams is the number of concurrently live media streams.
	Streams int
	// Packets is the total packet budget; Next returns io.EOF after it.
	Packets int
	// Interval is the trace-clock gap between consecutive packets
	// (global, not per stream): the compressed soak clock.
	Interval time.Duration
	// ChurnEvery retires one stream (replacing it with a fresh identity)
	// every that many packets. 0 disables churn.
	ChurnEvery int
	// ZoomNet is the address range the servers are drawn from; the
	// analyzer's capture filter must be configured with it.
	ZoomNet netip.Prefix
	// CampusNet is the client address range.
	CampusNet netip.Prefix
}

// DefaultStreamConfig returns a laptop-scale soak shape; tests scale
// Streams/Packets up.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		Seed:       1,
		Start:      time.Date(2022, 5, 5, 10, 0, 0, 0, time.UTC),
		Streams:    1000,
		Packets:    100000,
		Interval:   50 * time.Microsecond,
		ChurnEvery: 64,
		ZoomNet:    netip.MustParsePrefix("52.81.0.0/16"),
		CampusNet:  netip.MustParsePrefix("10.8.0.0/16"),
	}
}

// soakStream is one live synthetic stream's generator state.
type soakStream struct {
	client  netip.AddrPort
	server  netip.AddrPort
	ssrc    uint32
	video   bool
	rtpSeq  uint16
	rtpTS   uint32
	mediaSq uint16
	sfuSeq  uint16
	frameSq uint8
}

// StreamGen emits the workload one record at a time. Not safe for
// concurrent use; Data in the produced record is valid until the next
// call (the same borrowed-buffer contract as pcap.Stream.NextInto).
type StreamGen struct {
	cfg     StreamConfig
	rng     *rand.Rand
	streams []soakStream
	payload []byte
	now     time.Time
	emitted int
	next    int // round-robin cursor
	nextID  uint32
}

// NewStreamGen builds a generator; it validates the config eagerly so a
// misconfigured soak fails at setup, not mid-run.
func NewStreamGen(cfg StreamConfig) (*StreamGen, error) {
	if cfg.Streams <= 0 || cfg.Packets <= 0 {
		return nil, fmt.Errorf("trace: StreamGen needs Streams > 0 and Packets > 0")
	}
	if cfg.Interval <= 0 {
		return nil, fmt.Errorf("trace: StreamGen needs a positive Interval")
	}
	if !cfg.ZoomNet.IsValid() || !cfg.CampusNet.IsValid() {
		return nil, fmt.Errorf("trace: StreamGen needs valid ZoomNet and CampusNet prefixes")
	}
	g := &StreamGen{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		streams: make([]soakStream, cfg.Streams),
		payload: make([]byte, 160),
		now:     cfg.Start,
	}
	g.rng.Read(g.payload)
	for i := range g.streams {
		g.streams[i] = g.newStream()
	}
	return g, nil
}

// newStream draws a fresh stream identity.
func (g *StreamGen) newStream() soakStream {
	g.nextID++
	id := g.nextID
	// Spread clients across the campus prefix and ports so five-tuples
	// stay unique; servers sit on the Zoom media port.
	client := netip.AddrPortFrom(randomAddrIn(g.rng, g.cfg.CampusNet), uint16(20000+g.rng.Intn(40000)))
	server := netip.AddrPortFrom(randomAddrIn(g.rng, g.cfg.ZoomNet), 8801)
	return soakStream{
		client: client,
		server: server,
		ssrc:   0x10000 + id,
		video:  id%3 != 0,
		rtpSeq: uint16(g.rng.Intn(1 << 16)),
		rtpTS:  g.rng.Uint32(),
	}
}

// Emitted returns how many records the generator has produced.
func (g *StreamGen) Emitted() int { return g.emitted }

// Now returns the current trace-clock time.
func (g *StreamGen) Now() time.Time { return g.now }

// Next fills rec with the next synthetic record. rec.Data borrows the
// generator's buffer and is valid until the following call. Returns
// io.EOF once the packet budget is spent.
func (g *StreamGen) Next(rec *pcap.Record) error {
	if g.emitted >= g.cfg.Packets {
		return io.EOF
	}
	if g.cfg.ChurnEvery > 0 && g.emitted > 0 && g.emitted%g.cfg.ChurnEvery == 0 {
		g.streams[g.rng.Intn(len(g.streams))] = g.newStream()
	}
	s := &g.streams[g.next%len(g.streams)]
	g.next++

	mt, pt := zoom.TypeAudio, zoom.PTAudioSpeak
	if s.video {
		mt, pt = zoom.TypeVideo, zoom.PTVideoMain
	}
	s.rtpSeq++
	s.rtpTS += 3000
	s.mediaSq++
	s.sfuSeq++
	p := zoom.Packet{
		ServerBased: true,
		SFU:         zoom.SFUEncap{Type: zoom.SFUTypeMedia, Sequence: s.sfuSeq, Direction: zoom.DirFromSFU},
		Media: zoom.MediaEncap{
			Type:      mt,
			Sequence:  s.mediaSq,
			Timestamp: s.rtpTS,
		},
		RTP: rtp.Packet{
			Header: rtp.Header{
				PayloadType:    pt,
				SequenceNumber: s.rtpSeq,
				Timestamp:      s.rtpTS,
				SSRC:           s.ssrc,
			},
			Payload: g.payload,
		},
	}
	if s.video {
		s.frameSq++
		p.Media.FrameSequence = uint16(s.frameSq)
		p.Media.PacketsInFrame = 1
		p.RTP.Header.Marker = true
	}
	payload, err := p.Marshal()
	if err != nil {
		return fmt.Errorf("trace: marshaling soak packet: %w", err)
	}
	frame := layers.EthernetIPv4UDP(s.server, s.client, 64, payload)

	g.now = g.now.Add(g.cfg.Interval)
	g.emitted++
	rec.Timestamp = g.now
	rec.Data = frame
	rec.OriginalLen = len(frame)
	return nil
}
