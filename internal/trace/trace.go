// Package trace generates campus-scale Zoom workloads: a schedule of
// meetings over a working day whose aggregate traffic reproduces the
// shapes of the paper's 12-hour capture (§6.2, Appendix A): arrival
// spikes at full and half hours, a lunchtime dip, decline after the end
// of the work day, and a mix of meeting sizes and media usage. It also
// generates non-Zoom background traffic so the capture filter's
// all-vs-Zoom packet-rate comparison (Figure 17) is meaningful.
package trace

import (
	"math"
	"math/rand"
	"net/netip"
	"time"

	"zoomlens/internal/layers"
	"zoomlens/internal/media"
	"zoomlens/internal/netsim"
	"zoomlens/internal/sim"
)

// Config shapes the workload.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// Start is the trace start (the paper's capture began at 09:45
	// local; campus figures run 10:00–22:00).
	Start time.Time
	// Duration is the total trace length.
	Duration time.Duration
	// MeetingsPerHourPeak is the arrival rate at the busiest times. The
	// paper's campus hosted hundreds of concurrent meetings; the default
	// here is laptop-scale and configurable upward.
	MeetingsPerHourPeak float64
	// MeanMeetingMinutes is the mean meeting duration.
	MeanMeetingMinutes float64
	// BackgroundPPS is the average non-Zoom background packet rate at
	// peak (Figure 17's "All" line).
	BackgroundPPS float64
	// WebRTCFraction is the fraction of meetings that belong to the
	// standards-RTC application instead of Zoom (mixed-app campus
	// traffic). 0 keeps the workload all-Zoom and byte-identical to
	// pre-mixed-app traces at the same seed.
	WebRTCFraction float64
}

// DefaultConfig is a small but shape-faithful campus day.
func DefaultConfig() Config {
	return Config{
		Seed:                1,
		Start:               time.Date(2022, 5, 5, 10, 0, 0, 0, time.UTC),
		Duration:            12 * time.Hour,
		MeetingsPerHourPeak: 12,
		MeanMeetingMinutes:  35,
		BackgroundPPS:       400,
	}
}

// MeetingPlan is one scheduled meeting.
type MeetingPlan struct {
	Start        time.Time
	Duration     time.Duration
	Participants int
	// OnCampus is how many participants are inside the monitored campus.
	OnCampus int
	// Screen marks a meeting with a screen-sharing presenter.
	Screen bool
	// P2P marks two-party meetings that will switch to a direct
	// connection.
	P2P bool
	// Mobile marks a meeting with one mobile-audio participant.
	Mobile bool
	// WebRTC marks a meeting of the standards-RTC application (plain
	// RTP/SRTP through a non-Zoom media server).
	WebRTC bool
}

// Schedule draws the meeting plan for the configured day.
func Schedule(cfg Config) []MeetingPlan {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var plans []MeetingPlan
	// Sample arrivals minute by minute with an intensity that encodes
	// the diurnal shape.
	minutes := int(cfg.Duration / time.Minute)
	for m := 0; m < minutes; m++ {
		at := cfg.Start.Add(time.Duration(m) * time.Minute)
		rate := cfg.MeetingsPerHourPeak / 60 * Intensity(at)
		// Poisson thinning: expected `rate` meetings this minute.
		n := poisson(rng, rate)
		for i := 0; i < n; i++ {
			plans = append(plans, drawMeeting(rng, cfg, at))
		}
	}
	return plans
}

// Intensity returns the relative meeting-arrival intensity at a given
// wall-clock time: spikes at :00 (and smaller at :30), a lunch dip
// around 12:30–13:30, and decline after 17:00 (Figure 14's shape).
func Intensity(at time.Time) float64 {
	h := float64(at.Hour()) + float64(at.Minute())/60
	// Diurnal envelope: ramp up to ~10:00, plateau, lunch dip, afternoon
	// plateau, evening decline.
	var envelope float64
	switch {
	case h < 8:
		envelope = 0.1
	case h < 10:
		envelope = 0.4 + 0.3*(h-8)
	case h < 12.25:
		envelope = 1.0
	case h < 13.5:
		envelope = 0.55 // lunch dip
	case h < 17:
		envelope = 0.95
	case h < 20:
		envelope = 0.45 - 0.1*(h-17)
	default:
		envelope = 0.12
	}
	// Meetings start on the hour (strong) and half hour (weaker).
	min := at.Minute()
	boost := 1.0
	switch {
	case min == 0 || min == 59 || min == 1:
		boost = 6
	case min == 30 || min == 29 || min == 31:
		boost = 3
	case min%15 == 0:
		boost = 1.5
	}
	return envelope * boost
}

func drawMeeting(rng *rand.Rand, cfg Config, at time.Time) MeetingPlan {
	p := MeetingPlan{Start: at}
	// Duration: exponential with floor, most meetings 20-60 minutes.
	p.Duration = time.Duration((10 + rng.ExpFloat64()*(cfg.MeanMeetingMinutes-10)) * float64(time.Minute))
	if p.Duration > 3*time.Hour {
		p.Duration = 3 * time.Hour
	}
	// Size: mostly small meetings; a tail of large ones.
	switch r := rng.Float64(); {
	case r < 0.35:
		p.Participants = 2
	case r < 0.65:
		p.Participants = 3 + rng.Intn(3)
	case r < 0.9:
		p.Participants = 6 + rng.Intn(10)
	default:
		// Large meetings; the tail is capped for simulation cost — the
		// monitor-visible traffic of a 40-person meeting differs from a
		// 20-person one only by the (invisible) off-campus legs.
		p.Participants = 16 + rng.Intn(8)
	}
	// At least one participant on campus (we only schedule meetings the
	// monitor can see); most others off campus.
	p.OnCampus = 1
	for i := 1; i < p.Participants; i++ {
		if rng.Float64() < 0.35 {
			p.OnCampus++
		}
	}
	p.Screen = rng.Float64() < 0.3
	p.P2P = p.Participants == 2 && rng.Float64() < 0.5
	p.Mobile = rng.Float64() < 0.15
	// Drawn last, and only when mixing is on: an all-Zoom schedule
	// consumes exactly the same random sequence as before this knob
	// existed, keeping zoom-only traces byte-identical per seed.
	if cfg.WebRTCFraction > 0 && rng.Float64() < cfg.WebRTCFraction {
		p.WebRTC = true
		p.P2P = false // the standards app always relays in this model
	}
	return p
}

func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	// Knuth's method; lambda here is small (≪ 10).
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 100 {
			return k
		}
	}
}

// Runner instantiates a schedule in a simulator world.
type Runner struct {
	W   *sim.World
	Cfg Config
	rng *rand.Rand

	// ActiveMeetings gauges concurrency over time (diagnostics).
	started, ended int
}

// NewRunner builds a runner over a fresh world whose monitor the caller
// sets before Run.
func NewRunner(cfg Config, w *sim.World) *Runner {
	return &Runner{W: w, Cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))}
}

// Install schedules every meeting (joins, leaves), occasional WAN
// congestion episodes, and the background traffic into the world's
// engine. Call before the world runs.
func (r *Runner) Install(plans []MeetingPlan) {
	for i, p := range plans {
		p := p
		i := i
		r.W.Eng.Schedule(p.Start, func() { r.startMeeting(i, p) })
	}
	if r.Cfg.BackgroundPPS > 0 {
		r.W.Eng.Schedule(r.Cfg.Start, r.tickBackground)
	}
	r.installCongestion()
}

// installCongestion sprinkles short congestion episodes over the WAN
// legs (~4/hour, 10–40 s) so that the jitter distribution has the tail
// the paper observes in the wild (Figure 15d: ~5 % of samples exceed
// 40 ms).
func (r *Runner) installCongestion() {
	// A dedicated random stream keeps congestion placement from
	// perturbing the meeting composition draws.
	rng := rand.New(rand.NewSource(r.Cfg.Seed ^ 0xc0196e57))
	at := r.Cfg.Start
	end := r.Cfg.Start.Add(r.Cfg.Duration)
	for {
		at = at.Add(time.Duration((1 + rng.ExpFloat64()*4) * float64(time.Minute)))
		if !at.Before(end) {
			return
		}
		// Most episodes are mild; a minority are severe enough to push
		// frame-level jitter past Zoom's 40 ms guidance — the long tail
		// of Figure 15d.
		jitterAmp := time.Duration(40+rng.Intn(80)) * time.Millisecond
		if rng.Float64() < 0.3 {
			jitterAmp = time.Duration(150+rng.Intn(150)) * time.Millisecond
		}
		ep := netsim.Congestion{
			Start:       at,
			End:         at.Add(time.Duration(12+rng.Intn(35)) * time.Second),
			ExtraDelay:  time.Duration(10+rng.Intn(40)) * time.Millisecond,
			ExtraJitter: jitterAmp,
			LossRate:    0.01 * rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			r.W.WanDown.Episodes = append(r.W.WanDown.Episodes, ep)
		} else {
			r.W.WanUp.Episodes = append(r.W.WanUp.Episodes, ep)
		}
	}
}

func (r *Runner) startMeeting(idx int, p MeetingPlan) {
	var m *sim.Meeting
	if p.WebRTC {
		m = r.W.NewWebRTCMeeting()
	} else {
		m = r.W.NewMeeting()
	}
	if p.P2P {
		m.EnableP2P(10*time.Second + time.Duration(r.rng.Intn(20))*time.Second)
	}
	r.started++
	for i := 0; i < p.Participants; i++ {
		campus := i < p.OnCampus
		c := r.W.NewClient("", campus)
		set := sim.DefaultMediaSet()
		// Meeting-size dependent behaviour: in large meetings many
		// participants mute (no audio stream at all — passive
		// participants, §4.3.1) and some keep video off; unmuted
		// participants speak in turn, so the speaking substream
		// dominates audio traffic (Table 3).
		if p.Participants > 2 && i > 1 {
			set.Audio = r.rng.Float64() < 0.3 // most are muted
			set.Video = r.rng.Float64() < 0.7
		}
		// Some senders are displayed as thumbnails: Zoom halves their
		// frame rate for *user-interface* reasons, not network ones —
		// the source of Figure 16's uncorrelated low-fps cluster.
		if set.Video && r.rng.Float64() < 0.3 {
			set.VideoConfig.FPS = 14
			set.VideoConfig.MeanFrameBytes = 900
		}
		if p.Screen && i == 0 {
			set.Screen = true
		}
		if p.Mobile && i == 1 {
			set.Mobile = true
		}
		// Participants trickle in over the first minute.
		delay := time.Duration(r.rng.Intn(60)) * time.Second
		if i == 0 {
			delay = 0
		}
		r.W.Eng.After(delay, func() { m.Join(c, set) })
		// Mid-meeting churn: some participants toggle camera or mute
		// partway through (§4.3.1's passive-participant dynamics).
		if set.Video && r.rng.Float64() < 0.2 {
			off := delay + time.Duration(60+r.rng.Intn(120))*time.Second
			on := off + time.Duration(30+r.rng.Intn(90))*time.Second
			r.W.Eng.After(off, func() { c.SetVideoEnabled(false) })
			r.W.Eng.After(on, func() { c.SetVideoEnabled(true) })
		}
		if set.Audio && r.rng.Float64() < 0.25 {
			off := delay + time.Duration(30+r.rng.Intn(120))*time.Second
			on := off + time.Duration(20+r.rng.Intn(120))*time.Second
			r.W.Eng.After(off, func() { c.SetMuted(true) })
			r.W.Eng.After(on, func() { c.SetMuted(false) })
		}
		// And leave at the end (some early).
		stay := p.Duration - time.Duration(r.rng.Intn(120))*time.Second
		if stay < time.Minute {
			stay = time.Minute
		}
		r.W.Eng.After(stay, func() { m.Leave(c); r.ended++ })
	}
	_ = idx
}

// tickBackground emits non-Zoom packets (web, DNS-ish noise) crossing
// the border so the capture filter has something to drop (Figure 17).
func (r *Runner) tickBackground() {
	now := r.W.Now()
	rate := r.Cfg.BackgroundPPS * Intensity(now) / 6 // de-boosted average
	if rate < 20 {
		rate = 20
	}
	// Emit a small burst each 100 ms tick.
	n := poisson(r.rng, rate/10)
	var b layers.Builder
	for i := 0; i < n; i++ {
		src := netip.AddrPortFrom(randomAddrIn(r.rng, r.W.Opts.CampusNet), uint16(30000+r.rng.Intn(30000)))
		dst := netip.AddrPortFrom(randomAddrIn(r.rng, netip.MustParsePrefix("93.184.0.0/16")), 443)
		payload := make([]byte, 40+r.rng.Intn(1200))
		r.rng.Read(payload)
		frame := b.BuildUDP(src, dst, 64, payload)
		r.W.Eng.After(0, func() {}) // keep engine time coherent
		r.tapBackground(now, frame)
	}
	if now.Sub(r.Cfg.Start) < r.Cfg.Duration {
		r.W.Eng.After(100*time.Millisecond, r.tickBackground)
	}
}

func (r *Runner) tapBackground(at time.Time, frame []byte) {
	if r.W.Monitor != nil {
		r.W.Monitor(at, frame)
	}
	r.W.MonitorPackets++
	r.W.MonitorBytes += uint64(len(frame))
}

func randomAddrIn(rng *rand.Rand, p netip.Prefix) netip.Addr {
	a := p.Addr().As4()
	host := rng.Uint32() >> p.Bits()
	v := uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
	v |= host
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// MediaDefaults re-exported for workload construction convenience.
var MediaDefaults = media.DefaultVideoConfig
