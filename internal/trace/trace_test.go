package trace

import (
	"net/netip"
	"testing"
	"time"

	"zoomlens/internal/sim"
)

func TestIntensityShape(t *testing.T) {
	day := func(h, m int) time.Time {
		return time.Date(2022, 5, 5, h, m, 0, 0, time.UTC)
	}
	// Hour-boundary spike dominates mid-hour.
	if Intensity(day(11, 0)) <= Intensity(day(11, 17)) {
		t.Error("no spike at the full hour")
	}
	// Half-hour spike smaller than full-hour but above baseline.
	if !(Intensity(day(11, 30)) > Intensity(day(11, 17)) && Intensity(day(11, 30)) < Intensity(day(11, 0))) {
		t.Error("half-hour spike out of order")
	}
	// Lunch dip.
	if Intensity(day(12, 45)) >= Intensity(day(11, 17)) {
		t.Error("no lunch dip")
	}
	// Evening decline.
	if Intensity(day(21, 17)) >= Intensity(day(15, 17))/2 {
		t.Error("no evening decline")
	}
}

func TestScheduleStatistics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MeetingsPerHourPeak = 60 // enough samples for stable stats
	plans := Schedule(cfg)
	if len(plans) < 100 {
		t.Fatalf("plans = %d", len(plans))
	}
	var two, withScreen, p2p, big int
	perHour := map[int]int{}
	for _, p := range plans {
		if p.Participants == 2 {
			two++
		}
		if p.Participants >= 16 {
			big++
		}
		if p.Screen {
			withScreen++
		}
		if p.P2P {
			p2p++
			if p.Participants != 2 {
				t.Error("P2P planned for a meeting with >2 participants")
			}
		}
		if p.OnCampus < 1 || p.OnCampus > p.Participants {
			t.Errorf("on-campus = %d of %d", p.OnCampus, p.Participants)
		}
		if p.Duration < 10*time.Minute || p.Duration > 3*time.Hour {
			t.Errorf("duration = %v", p.Duration)
		}
		perHour[p.Start.Hour()]++
	}
	n := len(plans)
	if f := float64(two) / float64(n); f < 0.2 || f > 0.5 {
		t.Errorf("two-party fraction = %v", f)
	}
	if f := float64(withScreen) / float64(n); f < 0.15 || f > 0.45 {
		t.Errorf("screen fraction = %v", f)
	}
	if p2p == 0 || big == 0 {
		t.Errorf("p2p=%d big=%d", p2p, big)
	}
	// Diurnal: 11:00 busier than 12:00 (lunch) and much busier than 21:00.
	if perHour[11] <= perHour[21] {
		t.Errorf("perHour[11]=%d vs perHour[21]=%d", perHour[11], perHour[21])
	}
}

func TestScheduleDeterministic(t *testing.T) {
	a := Schedule(DefaultConfig())
	b := Schedule(DefaultConfig())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("plan %d differs", i)
		}
	}
}

func TestRunnerProducesTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 5 * time.Minute
	cfg.MeetingsPerHourPeak = 25
	cfg.BackgroundPPS = 100

	opts := sim.DefaultOptions()
	opts.Start = cfg.Start
	opts.SkipExternalDelivery = true
	w := sim.NewWorld(opts)

	var zoomish, background int
	w.Monitor = func(at time.Time, frame []byte) {
		// Very rough split by destination: background goes to 93.184/16.
		if len(frame) >= 34 && frame[30] == 93 {
			background++
		} else {
			zoomish++
		}
	}
	r := NewRunner(cfg, w)
	plans := Schedule(cfg)
	if len(plans) == 0 {
		t.Fatal("no plans in 10 minutes at rate 40/h")
	}
	r.Install(plans)
	w.Run(cfg.Start.Add(cfg.Duration))

	if zoomish < 1000 {
		t.Errorf("zoom packets = %d", zoomish)
	}
	if background == 0 {
		t.Error("no background packets")
	}
}

func TestRandomAddrInPrefix(t *testing.T) {
	p := netip.MustParsePrefix("10.8.0.0/16")
	r := NewRunner(DefaultConfig(), sim.NewWorld(sim.DefaultOptions()))
	for i := 0; i < 100; i++ {
		a := randomAddrIn(r.rng, p)
		if !p.Contains(a) {
			t.Fatalf("%v outside %v", a, p)
		}
	}
}
