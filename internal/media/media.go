// Package media models the content side of Zoom streams: frame
// generators for video, audio, and screen sharing whose rate, size, and
// cadence statistics match the behaviour the paper reports.
//
//   - Video: ~28 fps normally, dropping to ~14 fps in thumbnail mode or
//     under heavy congestion (§6.2); 90 kHz RTP clock; keyframes several
//     times larger than delta frames; most frames under 2000 bytes.
//   - Audio: one 20 ms packet cadence; payload type 112 with ~wideband
//     Opus-sized payloads while speaking, fixed 40-byte type-99 packets
//     during silence (§4.2.3); speaking alternates in talk spurts.
//   - Screen share: new frames only when the picture changes; ~15 % of
//     one-second windows produce no frame at all, half five or fewer;
//     slide flips produce large frames followed by small incremental
//     updates, >50 % of frames under 500 bytes with a long tail (§6.2).
//
// Generators are deterministic given a seed and advance on explicit
// Next* calls from the simulator clock.
package media

import (
	"math"
	"math/rand"
	"time"
)

// Frame is one generated media frame.
type Frame struct {
	// Bytes is the encoded frame size.
	Bytes int
	// Duration is the media time the frame covers (the packetization
	// interval); the RTP timestamp advances by Duration × clock rate.
	Duration time.Duration
	// Keyframe marks video IDR frames and screen-share full refreshes.
	Keyframe bool
	// Silent marks audio frames generated during silence (PT 99).
	Silent bool
}

// VideoConfig parameterizes a video source.
type VideoConfig struct {
	// FPS is the target frame rate (Zoom: ~28, reduced mode ~14).
	FPS float64
	// MeanFrameBytes is the average delta-frame size. With FPS it sets
	// the bit rate: 28 fps × 1100 B ≈ 250 kbit/s before FEC.
	MeanFrameBytes int
	// KeyframeInterval is the number of frames between keyframes.
	KeyframeInterval int
	// KeyframeScale multiplies the mean size for keyframes.
	KeyframeScale float64
	// Motion in [0,1] scales frame-size variance (high-motion video
	// produces bursty sizes; cf. Chang et al. finding in §3).
	Motion float64
}

// DefaultVideoConfig is a 28 fps ~2.2 Mbit/s camera stream, matching the
// "usually around 28 fps" observation of §6.2 and Figure 15's video
// frame-size mass below 2000 bytes.
func DefaultVideoConfig() VideoConfig {
	return VideoConfig{
		FPS:              28,
		MeanFrameBytes:   1500,
		KeyframeInterval: 120,
		KeyframeScale:    3.5,
		Motion:           0.25,
	}
}

// VideoSource generates video frames.
type VideoSource struct {
	cfg   VideoConfig
	rng   *rand.Rand
	seed  int64
	count int
	// reducedUntilFrame implements abrupt 28→14 fps adaptation.
	reduced bool
}

// NewVideoSource builds a deterministic source.
func NewVideoSource(cfg VideoConfig, seed int64) *VideoSource {
	if cfg.FPS <= 0 {
		cfg = DefaultVideoConfig()
	}
	return &VideoSource{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// SetReduced toggles reduced-rate mode (~half frame rate, smaller
// frames), Zoom's response to congestion or thumbnail display (§6.2).
func (v *VideoSource) SetReduced(r bool) { v.reduced = r }

// Reduced reports the current mode.
func (v *VideoSource) Reduced() bool { return v.reduced }

// CurrentFPS returns the momentary target frame rate.
func (v *VideoSource) CurrentFPS() float64 {
	if v.reduced {
		return v.cfg.FPS / 2
	}
	return v.cfg.FPS
}

// Next produces the next frame. The caller schedules the following call
// after Frame.Duration.
func (v *VideoSource) Next() Frame {
	fps := v.CurrentFPS()
	// Encoder cadence wobbles slightly (±5 %): Zoom's timestamps show
	// variable packetization intervals (§5.4).
	wobble := 1 + (v.rng.Float64()-0.5)*0.1
	dur := time.Duration(float64(time.Second) / fps * wobble)

	mean := float64(v.cfg.MeanFrameBytes)
	if v.reduced {
		mean *= 0.55
	}
	// Lognormal-ish size: exp(N(0, sigma)) keeps sizes positive with a
	// long tail controlled by motion.
	sigma := 0.25 + 0.5*v.cfg.Motion
	size := mean * math.Exp(v.rng.NormFloat64()*sigma-sigma*sigma/2)
	f := Frame{Duration: dur}
	if v.cfg.KeyframeInterval > 0 && v.count%v.cfg.KeyframeInterval == 0 {
		f.Keyframe = true
		size *= v.cfg.KeyframeScale
	}
	if size < 200 {
		size = 200
	}
	if size > 12000 {
		size = 12000
	}
	f.Bytes = int(size)
	v.count++
	return f
}

// AudioConfig parameterizes an audio source.
type AudioConfig struct {
	// PacketInterval is the audio frame cadence (Zoom: 20 ms).
	PacketInterval time.Duration
	// SpeakingBytes is the mean payload while talking.
	SpeakingBytes int
	// MeanTalkSpurt and MeanSilence shape the on/off alternation.
	MeanTalkSpurt time.Duration
	MeanSilence   time.Duration
	// AlwaysUnknownMode emits every packet as the PT-113 style stream
	// (mobile clients, §4.2.3) — the source stays in "speaking" forever
	// and Silent is never set.
	AlwaysUnknownMode bool
}

// DefaultAudioConfig models a desktop participant in a conversation.
func DefaultAudioConfig() AudioConfig {
	return AudioConfig{
		PacketInterval: 20 * time.Millisecond,
		SpeakingBytes:  110,
		MeanTalkSpurt:  8 * time.Second,
		MeanSilence:    15 * time.Second,
	}
}

// SilentPayloadBytes is the fixed payload of silence packets (§4.2.3).
const SilentPayloadBytes = 40

// SilentPacketInterval is the cadence of silence packets. Zoom emits
// far fewer packets during silence than while speaking (Table 3: the
// silent substream is ~8× smaller than the speaking one even though
// participants are silent much of the time), so silence keep-alives go
// out at a reduced rate.
const SilentPacketInterval = 100 * time.Millisecond

// AudioSource generates one audio frame per PacketInterval, alternating
// talk spurts and silence.
type AudioSource struct {
	cfg      AudioConfig
	rng      *rand.Rand
	seed     int64
	count    int
	speaking bool
	// remaining is the time left in the current spurt/silence.
	remaining time.Duration
}

// NewAudioSource builds a deterministic source that starts mid-silence.
func NewAudioSource(cfg AudioConfig, seed int64) *AudioSource {
	if cfg.PacketInterval <= 0 {
		cfg = DefaultAudioConfig()
	}
	s := &AudioSource{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed))}
	s.speaking = false
	s.remaining = s.draw(cfg.MeanSilence)
	return s
}

func (a *AudioSource) draw(mean time.Duration) time.Duration {
	if mean <= 0 {
		return time.Second
	}
	return time.Duration(a.rng.ExpFloat64() * float64(mean))
}

// Speaking reports the current talk state.
func (a *AudioSource) Speaking() bool { return a.cfg.AlwaysUnknownMode || a.speaking }

// Next produces the next audio frame: PacketInterval long while
// speaking, SilentPacketInterval long during silence.
func (a *AudioSource) Next() Frame {
	a.count++
	interval := a.cfg.PacketInterval
	if !a.Speaking() {
		interval = SilentPacketInterval
	}
	if !a.cfg.AlwaysUnknownMode {
		a.remaining -= interval
		if a.remaining <= 0 {
			a.speaking = !a.speaking
			if a.speaking {
				a.remaining = a.draw(a.cfg.MeanTalkSpurt)
			} else {
				a.remaining = a.draw(a.cfg.MeanSilence)
			}
			interval = a.cfg.PacketInterval
			if !a.speaking {
				interval = SilentPacketInterval
			}
		}
	}
	f := Frame{Duration: interval}
	if a.Speaking() {
		// Opus VBR wiggle around the mean.
		size := float64(a.cfg.SpeakingBytes) * (0.7 + 0.6*a.rng.Float64())
		f.Bytes = int(size)
		if f.Bytes < 20 {
			f.Bytes = 20
		}
	} else {
		f.Bytes = SilentPayloadBytes
		f.Silent = true
	}
	return f
}

// ScreenShareConfig parameterizes a screen-share source.
type ScreenShareConfig struct {
	// MeanChangeInterval is the mean time between picture changes (slide
	// flips, typing bursts).
	MeanChangeInterval time.Duration
	// BigChangeBytes is the mean size of a full refresh (slide flip).
	BigChangeBytes int
	// SmallChangeBytes is the mean size of incremental updates.
	SmallChangeBytes int
	// BigChangeProb is the probability a change is a full refresh.
	BigChangeProb float64
	// BurstFrames is how many incremental frames follow a change.
	BurstFrames int
}

// DefaultScreenShareConfig models slide-driven presentations: long idle
// stretches (15 % of seconds produce no frame; half produce ≤5), small
// incremental frames (>50 % under 500 B) with a long tail from flips.
func DefaultScreenShareConfig() ScreenShareConfig {
	return ScreenShareConfig{
		MeanChangeInterval: 1100 * time.Millisecond,
		BigChangeBytes:     9000,
		SmallChangeBytes:   330,
		BigChangeProb:      0.08,
		BurstFrames:        8,
	}
}

// ScreenShareSource generates frames only when the picture changes.
type ScreenShareSource struct {
	cfg       ScreenShareConfig
	rng       *rand.Rand
	seed      int64
	count     int
	burstLeft int
}

// NewScreenShareSource builds a deterministic source.
func NewScreenShareSource(cfg ScreenShareConfig, seed int64) *ScreenShareSource {
	if cfg.MeanChangeInterval <= 0 {
		cfg = DefaultScreenShareConfig()
	}
	return &ScreenShareSource{cfg: cfg, seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Next produces the next frame and the delay until the one after it.
// Unlike video, the inter-frame gap varies wildly: bursts of updates at
// ~10 fps during activity, then nothing for seconds.
func (s *ScreenShareSource) Next() (Frame, time.Duration) {
	s.count++
	var f Frame
	if s.burstLeft > 0 {
		s.burstLeft--
		f.Bytes = s.size(float64(s.cfg.SmallChangeBytes))
		f.Duration = 100 * time.Millisecond
		return f, 100 * time.Millisecond
	}
	// A new change event.
	if s.rng.Float64() < s.cfg.BigChangeProb {
		f.Keyframe = true
		f.Bytes = s.size(float64(s.cfg.BigChangeBytes))
	} else {
		f.Bytes = s.size(float64(s.cfg.SmallChangeBytes))
	}
	s.burstLeft = s.rng.Intn(s.cfg.BurstFrames + 1)
	gap := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.MeanChangeInterval))
	if gap < 100*time.Millisecond {
		gap = 100 * time.Millisecond
	}
	f.Duration = gap
	return f, gap
}

func (s *ScreenShareSource) size(mean float64) int {
	v := mean * math.Exp(s.rng.NormFloat64()*0.6-0.18)
	if v < 60 {
		v = 60
	}
	if v > 60000 {
		v = 60000
	}
	return int(v)
}
