package media

import (
	"zoomlens/internal/statecodec"
)

// Checkpoint boundary for the media generators. math/rand exposes no
// way to export a generator's internal state, so each source records
// its seed and how many Next calls it has served; Restore re-seeds a
// fresh generator and replays that many draws. Replay is exact because
// a source's random consumption depends only on its own deterministic
// state evolution, never on external inputs. maxReplay bounds the work
// a corrupt count can demand.

const (
	videoStateV1  = 1
	audioStateV1  = 1
	screenStateV1 = 1

	maxReplay = 1 << 26
)

// State encodes the source for a checkpoint.
func (v *VideoSource) State(w *statecodec.Writer) {
	w.U8(videoStateV1)
	w.F64(v.cfg.FPS)
	w.Int(v.cfg.MeanFrameBytes)
	w.Int(v.cfg.KeyframeInterval)
	w.F64(v.cfg.KeyframeScale)
	w.F64(v.cfg.Motion)
	w.I64(v.seed)
	w.Int(v.count)
	w.Bool(v.reduced)
}

// RestoreVideoSource rebuilds a source from a checkpoint by replay.
func RestoreVideoSource(r *statecodec.Reader) (*VideoSource, error) {
	r.Version("media.VideoSource", videoStateV1)
	var cfg VideoConfig
	cfg.FPS = r.F64()
	cfg.MeanFrameBytes = r.Int()
	cfg.KeyframeInterval = r.Int()
	cfg.KeyframeScale = r.F64()
	cfg.Motion = r.F64()
	seed := r.I64()
	count := r.Int()
	reduced := r.Bool()
	if err := checkReplay(r, count); err != nil {
		return nil, err
	}
	v := NewVideoSource(cfg, seed)
	if v.cfg != cfg {
		r.Failf("media.VideoSource config rejected by constructor")
		return nil, r.Err()
	}
	for i := 0; i < count; i++ {
		v.Next()
	}
	v.reduced = reduced
	return v, nil
}

// State encodes the source for a checkpoint.
func (a *AudioSource) State(w *statecodec.Writer) {
	w.U8(audioStateV1)
	w.Duration(a.cfg.PacketInterval)
	w.Int(a.cfg.SpeakingBytes)
	w.Duration(a.cfg.MeanTalkSpurt)
	w.Duration(a.cfg.MeanSilence)
	w.Bool(a.cfg.AlwaysUnknownMode)
	w.I64(a.seed)
	w.Int(a.count)
}

// RestoreAudioSource rebuilds a source from a checkpoint by replay; the
// speaking state and spurt remainder re-derive themselves.
func RestoreAudioSource(r *statecodec.Reader) (*AudioSource, error) {
	r.Version("media.AudioSource", audioStateV1)
	var cfg AudioConfig
	cfg.PacketInterval = r.Duration()
	cfg.SpeakingBytes = r.Int()
	cfg.MeanTalkSpurt = r.Duration()
	cfg.MeanSilence = r.Duration()
	cfg.AlwaysUnknownMode = r.Bool()
	seed := r.I64()
	count := r.Int()
	if err := checkReplay(r, count); err != nil {
		return nil, err
	}
	a := NewAudioSource(cfg, seed)
	if a.cfg != cfg {
		r.Failf("media.AudioSource config rejected by constructor")
		return nil, r.Err()
	}
	for i := 0; i < count; i++ {
		a.Next()
	}
	return a, nil
}

// State encodes the source for a checkpoint.
func (s *ScreenShareSource) State(w *statecodec.Writer) {
	w.U8(screenStateV1)
	w.Duration(s.cfg.MeanChangeInterval)
	w.Int(s.cfg.BigChangeBytes)
	w.Int(s.cfg.SmallChangeBytes)
	w.F64(s.cfg.BigChangeProb)
	w.Int(s.cfg.BurstFrames)
	w.I64(s.seed)
	w.Int(s.count)
}

// RestoreScreenShareSource rebuilds a source from a checkpoint by
// replay; the burst position re-derives itself.
func RestoreScreenShareSource(r *statecodec.Reader) (*ScreenShareSource, error) {
	r.Version("media.ScreenShareSource", screenStateV1)
	var cfg ScreenShareConfig
	cfg.MeanChangeInterval = r.Duration()
	cfg.BigChangeBytes = r.Int()
	cfg.SmallChangeBytes = r.Int()
	cfg.BigChangeProb = r.F64()
	cfg.BurstFrames = r.Int()
	seed := r.I64()
	count := r.Int()
	if err := checkReplay(r, count); err != nil {
		return nil, err
	}
	if cfg.BurstFrames < 0 {
		r.Failf("media.ScreenShareSource negative burst frames")
		return nil, r.Err()
	}
	s := NewScreenShareSource(cfg, seed)
	if s.cfg != cfg {
		r.Failf("media.ScreenShareSource config rejected by constructor")
		return nil, r.Err()
	}
	for i := 0; i < count; i++ {
		s.Next()
	}
	return s, nil
}

func checkReplay(r *statecodec.Reader, count int) error {
	if r.Err() != nil {
		return r.Err()
	}
	if count < 0 || count > maxReplay {
		r.Failf("media replay count %d out of range", count)
	}
	return r.Err()
}
