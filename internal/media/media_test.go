package media

import (
	"testing"
	"time"
)

func TestVideoSourceRateAndSizes(t *testing.T) {
	v := NewVideoSource(DefaultVideoConfig(), 1)
	var total time.Duration
	var bytes, keyframes, under2000 int
	const n = 2000
	for i := 0; i < n; i++ {
		f := v.Next()
		total += f.Duration
		bytes += f.Bytes
		if f.Keyframe {
			keyframes++
		}
		if f.Bytes < 2000 {
			under2000++
		}
		if f.Bytes < 200 || f.Bytes > 12000 {
			t.Fatalf("frame size %d out of bounds", f.Bytes)
		}
	}
	fps := float64(n) / total.Seconds()
	if fps < 26 || fps > 30 {
		t.Errorf("fps = %v, want ~28", fps)
	}
	if keyframes != n/120+1 && keyframes != n/120 {
		t.Errorf("keyframes = %d", keyframes)
	}
	// Figure 15c: the majority of video frames are under 2000 bytes.
	if frac := float64(under2000) / n; frac < 0.6 {
		t.Errorf("frames <2000B = %v, want majority", frac)
	}
	// Overall bit rate should be plausible for a camera stream (≥150kbps, ≤2Mbps).
	bps := float64(bytes*8) / total.Seconds()
	if bps < 150_000 || bps > 2_000_000 {
		t.Errorf("bit rate = %v", bps)
	}
}

func TestVideoReducedMode(t *testing.T) {
	v := NewVideoSource(DefaultVideoConfig(), 2)
	if v.CurrentFPS() != 28 {
		t.Errorf("fps = %v", v.CurrentFPS())
	}
	v.SetReduced(true)
	if !v.Reduced() || v.CurrentFPS() != 14 {
		t.Errorf("reduced fps = %v", v.CurrentFPS())
	}
	var total time.Duration
	for i := 0; i < 280; i++ {
		total += v.Next().Duration
	}
	fps := 280 / total.Seconds()
	if fps < 13 || fps > 15 {
		t.Errorf("reduced effective fps = %v", fps)
	}
}

func TestVideoDeterministic(t *testing.T) {
	a, b := NewVideoSource(DefaultVideoConfig(), 7), NewVideoSource(DefaultVideoConfig(), 7)
	for i := 0; i < 100; i++ {
		fa, fb := a.Next(), b.Next()
		if fa != fb {
			t.Fatalf("frame %d differs: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestAudioAlternatesAndSilencePayload(t *testing.T) {
	a := NewAudioSource(DefaultAudioConfig(), 3)
	var speaking, silent int
	transitions := 0
	prev := a.Speaking()
	for i := 0; i < 30000; i++ { // ≥10 minutes of audio
		f := a.Next()
		if f.Silent {
			silent++
			if f.Duration != SilentPacketInterval {
				t.Fatalf("silent frame duration %v, want %v", f.Duration, SilentPacketInterval)
			}
			if f.Bytes != SilentPayloadBytes {
				t.Fatalf("silent payload %d, want %d", f.Bytes, SilentPayloadBytes)
			}
		} else {
			speaking++
			if f.Duration != 20*time.Millisecond {
				t.Fatalf("speaking frame duration %v", f.Duration)
			}
			if f.Bytes < 20 || f.Bytes > 200 {
				t.Fatalf("speaking payload %d", f.Bytes)
			}
		}
		if a.Speaking() != prev {
			transitions++
			prev = a.Speaking()
		}
	}
	if speaking == 0 || silent == 0 {
		t.Errorf("speaking=%d silent=%d, want both", speaking, silent)
	}
	if transitions < 10 {
		t.Errorf("transitions = %d, want a conversation", transitions)
	}
	// With an 8s/15s time duty cycle but silence packets at 1/5 the
	// cadence, the *packet* share of speaking is much higher than the
	// time share — the Table 3 effect (speaking ≈ 8× silent packets).
	frac := float64(speaking) / float64(speaking+silent)
	if frac < 0.4 || frac > 0.9 {
		t.Errorf("speaking packet fraction = %v", frac)
	}
}

func TestAudioUnknownModeNeverSilent(t *testing.T) {
	cfg := DefaultAudioConfig()
	cfg.AlwaysUnknownMode = true
	a := NewAudioSource(cfg, 4)
	for i := 0; i < 1000; i++ {
		if f := a.Next(); f.Silent {
			t.Fatal("unknown-mode audio produced a silent frame")
		}
	}
}

func TestScreenShareSparseness(t *testing.T) {
	s := NewScreenShareSource(DefaultScreenShareConfig(), 5)
	// Generate ~20 minutes of screen sharing; bucket frames per second.
	perSecond := map[int]int{}
	var under500, frames int
	now := time.Duration(0)
	for now < 20*time.Minute {
		f, gap := s.Next()
		perSecond[int(now/time.Second)]++
		frames++
		if f.Bytes < 500 {
			under500++
		}
		now += gap
	}
	totalSeconds := int(now / time.Second)
	zeroSeconds := totalSeconds - len(perSecond)
	zeroFrac := float64(zeroSeconds) / float64(totalSeconds)
	// §6.2: "roughly 15% of frame rate samples for screen sharing showed
	// a frame rate of zero". Allow a generous band.
	if zeroFrac < 0.05 || zeroFrac > 0.5 {
		t.Errorf("zero-fps seconds = %v, want sparse (≈0.15)", zeroFrac)
	}
	// "over half of screen-sharing frames are smaller than 500 bytes"
	if frac := float64(under500) / float64(frames); frac < 0.5 {
		t.Errorf("frames <500B = %v, want >0.5", frac)
	}
	// ≈half of active seconds should have ≤5 frames.
	var low int
	for _, c := range perSecond {
		if c <= 5 {
			low++
		}
	}
	if frac := float64(low+zeroSeconds) / float64(totalSeconds); frac < 0.4 {
		t.Errorf("seconds with ≤5 fps = %v, want ≈half or more", frac)
	}
}

func TestScreenShareLongTail(t *testing.T) {
	s := NewScreenShareSource(DefaultScreenShareConfig(), 6)
	var max int
	for i := 0; i < 5000; i++ {
		f, _ := s.Next()
		if f.Bytes > max {
			max = f.Bytes
		}
	}
	if max < 5000 {
		t.Errorf("max frame = %d, want long tail past 5000", max)
	}
}
