package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if q := c.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := c.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Error("At on empty CDF")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("Quantile on empty CDF should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("Points on empty CDF")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		c := NewCDF(samples)
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFPointsCoverRange(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 10 {
		t.Errorf("range = [%v, %v]", pts[0][0], pts[10][0])
	}
	if pts[10][1] != 1 {
		t.Errorf("final cumulative = %v", pts[10][1])
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-12 {
		t.Errorf("r = %v, want 1", r)
	}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-12 {
		t.Errorf("r = %v, want -1", r)
	}
	// Independent noise: |r| small.
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i], b[i] = rng.Float64(), rng.Float64()
	}
	if r := Pearson(a, b); math.Abs(r) > 0.05 {
		t.Errorf("independent r = %v", r)
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{2})) {
		t.Error("n=1 should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Error("zero variance should be NaN")
	}
}

func TestMeanStdDev(t *testing.T) {
	s := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(s); m != 5 {
		t.Errorf("mean = %v", m)
	}
	if sd := StdDev(s); math.Abs(sd-2) > 1e-12 {
		t.Errorf("stddev = %v", sd)
	}
}

func TestMeanAbsError(t *testing.T) {
	est := []float64{1, 2, 3}
	truth := []float64{1, 3, 5}
	if got := MeanAbsError(est, truth); got != 1 {
		t.Errorf("mae = %v", got)
	}
	if !math.IsNaN(MeanAbsError(nil, nil)) {
		t.Error("empty mae should be NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "Demo", Headers: []string{"Name", "Value"}}
	tbl.AddRow("alpha", F(3.14159, 2))
	tbl.AddRow("b", "42")
	s := tbl.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "3.14") {
		t.Errorf("rendered:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	for i := 0; i < 10; i++ {
		if f := h.Fraction(i); math.Abs(f-0.1) > 1e-12 {
			t.Errorf("bucket %d = %v", i, f)
		}
	}
	h.Add(-5) // clamps low
	h.Add(99) // clamps high
	if h.Buckets[0] != 11 || h.Buckets[9] != 11 {
		t.Errorf("clamping: %v", h.Buckets)
	}
	if h.Total() != 102 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestPlotCDFs(t *testing.T) {
	series := map[string]*CDF{
		"video": NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}),
		"audio": NewCDF([]float64{0.1, 0.2, 0.3}),
	}
	out := PlotCDFs(series, 0, 40, 10)
	if !strings.Contains(out, "a = audio (n=3)") || !strings.Contains(out, "b = video (n=10)") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	plotRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows++
		}
	}
	if plotRows != 10 {
		t.Errorf("plot rows = %d", plotRows)
	}
	// Degenerate inputs.
	if got := PlotCDFs(map[string]*CDF{"x": NewCDF(nil)}, 0, 40, 10); !strings.Contains(got, "no samples") {
		t.Errorf("empty: %q", got)
	}
	// Tiny dims clamp, no panic.
	_ = PlotCDFs(series, 5, 1, 1)
}
