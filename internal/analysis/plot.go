package analysis

import (
	"fmt"
	"math"
	"strings"
)

// PlotCDFs renders one or more labeled CDFs as an ASCII chart — the
// terminal rendering of the Figure 15 panels. The x axis spans [0, xMax]
// (pass 0 to use the largest p99 across series, keeping long tails from
// flattening the plot); the y axis is cumulative probability.
func PlotCDFs(series map[string]*CDF, xMax float64, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	// Stable label order.
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sortStrings(labels)

	if xMax <= 0 {
		for _, l := range labels {
			if c := series[l]; c.N() > 0 {
				if v := c.Quantile(0.99); v > xMax {
					xMax = v
				}
			}
		}
	}
	if xMax <= 0 || math.IsNaN(xMax) {
		return "(no samples)\n"
	}

	marks := "abcdefghij"
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for li, l := range labels {
		c := series[l]
		if c.N() == 0 {
			continue
		}
		mark := marks[li%len(marks)]
		for x := 0; x < width; x++ {
			v := xMax * float64(x) / float64(width-1)
			p := c.At(v)
			y := int(p * float64(height-1))
			row := height - 1 - y
			if grid[row][x] == ' ' {
				grid[row][x] = mark
			} else {
				grid[row][x] = '*' // overlap
			}
		}
	}
	var b strings.Builder
	b.WriteString("P(X<=x)\n")
	for i, row := range grid {
		p := 1 - float64(i)/float64(height-1)
		fmt.Fprintf(&b, "%4.2f |%s|\n", p, row)
	}
	fmt.Fprintf(&b, "      0%s%.4g\n", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", xMax))), xMax)
	for li, l := range labels {
		fmt.Fprintf(&b, "      %c = %s (n=%d)\n", marks[li%len(marks)], l, series[l].N())
	}
	return b.String()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
